// Performance-regression guardrails for the hot-path work on the
// cycle-level simulator. Three invariants are pinned here:
//
//  1. Bit-identical timing: the optimizations (flat cache slabs, MRU
//     records, machine reuse, trace replay) must not change a single
//     cycle of any campaign. Golden cycle counts captured from the
//     pre-optimization simulator make any drift a test failure, not a
//     silently different paper artifact.
//  2. Zero-alloc steady state: after the first run of a workload warms
//     the platform's cached machine, further runs must not allocate.
//  3. Replay equivalence: the decode-once trace-replay fast path must
//     produce byte-identical results to full interpretation, run by
//     run, for trace-stable workloads on both platform builds.
package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/tvca"
)

// goldenCycles holds the first 32 per-run cycle counts of the TVCA
// campaign (8-frame reduced config, BaseSeed 42, run seeds via
// DeriveRunSeed) as measured on the seed-revision simulator. These
// values are load-bearing: every pWCET figure in the paper replication
// is a function of such series.
var goldenCycles = map[string][32]uint64{
	"DET": {
		274108, 274110, 274108, 274108, 274109, 274109, 274110, 274110,
		274184, 274110, 274109, 274110, 274108, 274110, 274109, 274109,
		274109, 274108, 274108, 274110, 274110, 274110, 274109, 274109,
		274110, 274108, 274110, 274109, 274107, 274110, 274109, 274108,
	},
	"RAND": {
		274913, 274668, 268679, 273524, 278908, 279268, 279386, 276072,
		272700, 283549, 276174, 278044, 272165, 278784, 271816, 278198,
		276290, 287184, 273482, 272410, 273029, 275831, 274793, 285034,
		272507, 272000, 271933, 274997, 274918, 281580, 268458, 270112,
	},
}

func goldenApp(t *testing.T) *tvca.App {
	t.Helper()
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestGoldenCampaignCycles pins the exact cycle counts of the first 32
// TVCA runs on both platform builds. A failure here means a change
// altered simulated timing — which invalidates every measured
// distribution — not merely a performance property.
func TestGoldenCampaignCycles(t *testing.T) {
	app := goldenApp(t)
	for _, pc := range []platform.Config{platform.DET(), platform.RAND()} {
		want, ok := goldenCycles[pc.Name]
		if !ok {
			t.Fatalf("no golden series for platform %q", pc.Name)
		}
		p, err := platform.New(pc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(want); i++ {
			r, err := p.Run(app, i, platform.DeriveRunSeed(42, i))
			if err != nil {
				t.Fatalf("%s run %d: %v", pc.Name, i, err)
			}
			if r.Cycles != want[i] {
				t.Errorf("%s run %d: got %d cycles, golden %d — simulated timing changed",
					pc.Name, i, r.Cycles, want[i])
			}
		}
	}
}

// TestSteadyStateZeroAlloc asserts the allocation-free run loop: once
// the platform has a cached machine for the workload (first run), a
// full measurement run — reseed, flush, reload, interpret, drain —
// performs zero heap allocations.
func TestSteadyStateZeroAlloc(t *testing.T) {
	app := goldenApp(t)
	p, err := platform.New(platform.RAND())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(app, 0, platform.DeriveRunSeed(42, 0)); err != nil {
		t.Fatal(err)
	}
	run := 1
	avg := testing.AllocsPerRun(50, func() {
		if _, err := p.Run(app, run, platform.DeriveRunSeed(42, run)); err != nil {
			t.Fatal(err)
		}
		run++
	})
	if avg != 0 {
		t.Errorf("steady-state run allocates: %.1f allocs/run, want 0", avg)
	}
}

// TestReplayBitIdentical runs a trace-stable workload (MatMul declares
// TraceStable) through the decode-once replay fast path and through
// full interpretation, on both platform builds, and requires every run
// to match exactly in cycles, instructions and path. 600 runs cover a
// full reduced-campaign's worth of placement/replacement randomization.
func TestReplayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("600-run replay equivalence campaign")
	}
	w := kernels.MatMul{N: 12, Seed: 7}
	for _, pc := range []platform.Config{platform.DET(), platform.RAND()} {
		fast, err := platform.New(pc)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := platform.New(pc)
		if err != nil {
			t.Fatal(err)
		}
		slow.SetReplay(false)
		for i := 0; i < 600; i++ {
			seed := platform.DeriveRunSeed(42, i)
			fr, err := fast.Run(w, i, seed)
			if err != nil {
				t.Fatalf("%s replay run %d: %v", pc.Name, i, err)
			}
			sr, err := slow.Run(w, i, seed)
			if err != nil {
				t.Fatalf("%s interpreted run %d: %v", pc.Name, i, err)
			}
			if fr != sr {
				t.Fatalf("%s run %d: replay %+v != interpreted %+v", pc.Name, i, fr, sr)
			}
		}
	}
}

// latestBenchSnapshot loads the highest-numbered BENCH_<n>.json at the
// repository root and returns the named benchmark's entry.
func latestBenchSnapshot(t *testing.T, benchName string) (instrPerSec, allocsPerOp float64) {
	t.Helper()
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil || len(matches) == 0 {
		t.Fatalf("no BENCH_<n>.json snapshot at the repo root (run make bench): %v", err)
	}
	num := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	sort.Slice(matches, func(i, j int) bool {
		ni, _ := strconv.Atoi(num.FindStringSubmatch(matches[i])[1])
		nj, _ := strconv.Atoi(num.FindStringSubmatch(matches[j])[1])
		return ni < nj
	})
	latest := matches[len(matches)-1]
	raw, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Benchmarks []struct {
			Name        string  `json:"name"`
			InstrPerSec float64 `json:"instr_per_sec"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("%s: %v", latest, err)
	}
	for _, b := range snap.Benchmarks {
		if b.Name == benchName {
			return b.InstrPerSec, b.AllocsPerOp
		}
	}
	t.Fatalf("%s has no %s entry", latest, benchName)
	return 0, 0
}

// TestMulticorePerfAgainstSnapshot gates the multicore board's two
// headline performance properties against the committed benchmark
// snapshot (make bench -> BENCH_<n>.json):
//
//   - allocs per steady-state run must not exceed the snapshot (a
//     deterministic count — any increase is a real regression);
//   - warm-board throughput must stay within 4x of the snapshot's
//     instr/s (a loose wall-clock floor: CI machines are noisy, but a
//     return to the pre-board-reuse 3.2M instr/s — ~8x below the
//     snapshot — must fail).
func TestMulticorePerfAgainstSnapshot(t *testing.T) {
	snapInstr, snapAllocs := latestBenchSnapshot(t, "BenchmarkMulticoreThroughput")

	cfg := tvca.DefaultConfig()
	cfg.Frames = 4
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := platform.NewMulticore(platform.RAND(), []platform.Workload{
		experiments.StreamerWorkload{Lines: 1024},
		experiments.StreamerWorkload{Lines: 1024},
		experiments.StreamerWorkload{Lines: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := 0
	for ; run < 3; run++ { // warm: record traces, settle the board
		if _, err := mc.Run(app, run, platform.DeriveRunSeed(42, run)); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(5, func() {
		if _, err := mc.Run(app, run, platform.DeriveRunSeed(42, run)); err != nil {
			t.Fatal(err)
		}
		run++
	})
	if allocs > snapAllocs {
		t.Errorf("steady-state multicore run allocates %.1f times, snapshot says %.0f",
			allocs, snapAllocs)
	}

	if raceEnabled {
		t.Log("race detector enabled; skipping the wall-clock throughput floor")
		return
	}
	if testing.Short() {
		t.Log("-short; skipping the wall-clock throughput floor")
		return
	}
	var instr uint64
	start := time.Now()
	const timedRuns = 20
	for i := 0; i < timedRuns; i++ {
		r, err := mc.Run(app, run, platform.DeriveRunSeed(42, run))
		if err != nil {
			t.Fatal(err)
		}
		run++
		instr += r.Measured.Instructions
	}
	got := float64(instr) / time.Since(start).Seconds()
	if floor := snapInstr / 4; got < floor {
		t.Errorf("multicore throughput %.0f instr/s below floor %.0f (snapshot %.0f)",
			got, floor, snapInstr)
	}
}

// TestReplayParanoia exercises the built-in cross-check mode: every
// replayed run is re-executed through the interpreter and compared
// inside the platform, which fails the run on any divergence.
func TestReplayParanoia(t *testing.T) {
	w := kernels.MatMul{N: 8, Seed: 11}
	p, err := platform.New(platform.RAND())
	if err != nil {
		t.Fatal(err)
	}
	p.SetReplayParanoia(true)
	for i := 0; i < 20; i++ {
		if _, err := p.Run(w, i, platform.DeriveRunSeed(7, i)); err != nil {
			t.Fatalf("paranoia run %d: %v", i, err)
		}
	}
}
