// Performance-regression guardrails for the hot-path work on the
// cycle-level simulator. Three invariants are pinned here:
//
//  1. Bit-identical timing: the optimizations (flat cache slabs, MRU
//     records, machine reuse, trace replay) must not change a single
//     cycle of any campaign. Golden cycle counts captured from the
//     pre-optimization simulator make any drift a test failure, not a
//     silently different paper artifact.
//  2. Zero-alloc steady state: after the first run of a workload warms
//     the platform's cached machine, further runs must not allocate.
//  3. Replay equivalence: the decode-once trace-replay fast path must
//     produce byte-identical results to full interpretation, run by
//     run, for trace-stable workloads on both platform builds.
package repro

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/tvca"
)

// goldenCycles holds the first 32 per-run cycle counts of the TVCA
// campaign (8-frame reduced config, BaseSeed 42, run seeds via
// DeriveRunSeed) as measured on the seed-revision simulator. These
// values are load-bearing: every pWCET figure in the paper replication
// is a function of such series.
var goldenCycles = map[string][32]uint64{
	"DET": {
		274108, 274110, 274108, 274108, 274109, 274109, 274110, 274110,
		274184, 274110, 274109, 274110, 274108, 274110, 274109, 274109,
		274109, 274108, 274108, 274110, 274110, 274110, 274109, 274109,
		274110, 274108, 274110, 274109, 274107, 274110, 274109, 274108,
	},
	"RAND": {
		274913, 274668, 268679, 273524, 278908, 279268, 279386, 276072,
		272700, 283549, 276174, 278044, 272165, 278784, 271816, 278198,
		276290, 287184, 273482, 272410, 273029, 275831, 274793, 285034,
		272507, 272000, 271933, 274997, 274918, 281580, 268458, 270112,
	},
}

func goldenApp(t *testing.T) *tvca.App {
	t.Helper()
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestGoldenCampaignCycles pins the exact cycle counts of the first 32
// TVCA runs on both platform builds. A failure here means a change
// altered simulated timing — which invalidates every measured
// distribution — not merely a performance property.
func TestGoldenCampaignCycles(t *testing.T) {
	app := goldenApp(t)
	for _, pc := range []platform.Config{platform.DET(), platform.RAND()} {
		want, ok := goldenCycles[pc.Name]
		if !ok {
			t.Fatalf("no golden series for platform %q", pc.Name)
		}
		p, err := platform.New(pc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(want); i++ {
			r, err := p.Run(app, i, platform.DeriveRunSeed(42, i))
			if err != nil {
				t.Fatalf("%s run %d: %v", pc.Name, i, err)
			}
			if r.Cycles != want[i] {
				t.Errorf("%s run %d: got %d cycles, golden %d — simulated timing changed",
					pc.Name, i, r.Cycles, want[i])
			}
		}
	}
}

// TestSteadyStateZeroAlloc asserts the allocation-free run loop: once
// the platform has a cached machine for the workload (first run), a
// full measurement run — reseed, flush, reload, interpret, drain —
// performs zero heap allocations.
func TestSteadyStateZeroAlloc(t *testing.T) {
	app := goldenApp(t)
	p, err := platform.New(platform.RAND())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(app, 0, platform.DeriveRunSeed(42, 0)); err != nil {
		t.Fatal(err)
	}
	run := 1
	avg := testing.AllocsPerRun(50, func() {
		if _, err := p.Run(app, run, platform.DeriveRunSeed(42, run)); err != nil {
			t.Fatal(err)
		}
		run++
	})
	if avg != 0 {
		t.Errorf("steady-state run allocates: %.1f allocs/run, want 0", avg)
	}
}

// TestReplayBitIdentical runs a trace-stable workload (MatMul declares
// TraceStable) through the decode-once replay fast path and through
// full interpretation, on both platform builds, and requires every run
// to match exactly in cycles, instructions and path. 600 runs cover a
// full reduced-campaign's worth of placement/replacement randomization.
func TestReplayBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("600-run replay equivalence campaign")
	}
	w := kernels.MatMul{N: 12, Seed: 7}
	for _, pc := range []platform.Config{platform.DET(), platform.RAND()} {
		fast, err := platform.New(pc)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := platform.New(pc)
		if err != nil {
			t.Fatal(err)
		}
		slow.SetReplay(false)
		for i := 0; i < 600; i++ {
			seed := platform.DeriveRunSeed(42, i)
			fr, err := fast.Run(w, i, seed)
			if err != nil {
				t.Fatalf("%s replay run %d: %v", pc.Name, i, err)
			}
			sr, err := slow.Run(w, i, seed)
			if err != nil {
				t.Fatalf("%s interpreted run %d: %v", pc.Name, i, err)
			}
			if fr != sr {
				t.Fatalf("%s run %d: replay %+v != interpreted %+v", pc.Name, i, fr, sr)
			}
		}
	}
}

// TestReplayParanoia exercises the built-in cross-check mode: every
// replayed run is re-executed through the interpreter and compared
// inside the platform, which fails the run on any divergence.
func TestReplayParanoia(t *testing.T) {
	w := kernels.MatMul{N: 8, Seed: 11}
	p, err := platform.New(platform.RAND())
	if err != nil {
		t.Fatal(err)
	}
	p.SetReplayParanoia(true)
	for i := 0; i < 20; i++ {
		if _, err := p.Run(w, i, platform.DeriveRunSeed(7, i)); err != nil {
			t.Fatalf("paranoia run %d: %v", i, err)
		}
	}
}
