package repro

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/pkg/mbpta"
)

// TestLibraryEndToEnd mirrors the README flow through the public API:
// collect on both platforms, gate, analyze, compare with the MBTA
// baseline, persist and re-read the campaign.
func TestLibraryEndToEnd(t *testing.T) {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	randRep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(600), mbpta.WithBaseSeed(5), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	randSet := randRep.TraceSet()
	detRep, err := mbpta.Campaign(context.Background(), mbpta.DETPlatform(), app,
		mbpta.WithRuns(600), mbpta.WithBaseSeed(6), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	detSet := detRep.TraceSet()

	gate, err := mbpta.CheckIID(randSet.Times(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !gate.Pass {
		t.Fatalf("gate failed:\n%s", gate)
	}

	res, err := mbpta.NewAnalyzer(mbpta.Options{}).AnalyzeByPath(randSet.TimesByPath())
	if err != nil {
		t.Fatal(err)
	}
	bound, err := res.PWCET(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	base, err := mbpta.AnalyzeMBTA(detSet.Times())
	if err != nil {
		t.Fatal(err)
	}
	margin, err := base.WCET(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Shape assertions of Figure 3.
	if bound < base.HWM {
		t.Errorf("pWCET(1e-12) %.0f below DET HWM %.0f", bound, base.HWM)
	}
	if bound > margin {
		t.Errorf("pWCET(1e-12) %.0f beyond HWM+50%% %.0f", bound, margin)
	}

	// Round-trip the campaign through CSV.
	var buf bytes.Buffer
	if err := mbpta.WriteTraceCSV(&buf, randSet); err != nil {
		t.Fatal(err)
	}
	back, err := mbpta.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(randSet.Samples) {
		t.Error("CSV round trip lost samples")
	}
}

// buildCmds compiles the three binaries once into a temp dir.
func buildCmds(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"mbpta", "tvca", "experiments"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, msg)
		}
	}
	return dir
}

func TestCommandsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmds(t)

	// experiments: the cheapest experiment, reduced campaign.
	out, err := exec.Command(filepath.Join(bin, "experiments"),
		"-exp", "e6", "-runs", "600", "-frames", "8").CombinedOutput()
	if err != nil {
		t.Fatalf("experiments: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "upper-bound property") {
		t.Errorf("experiments output:\n%s", out)
	}

	// tvca with trace saving.
	traces := t.TempDir()
	out, err = exec.Command(filepath.Join(bin, "tvca"),
		"-runs", "600", "-save-dir", traces).CombinedOutput()
	if err != nil {
		t.Fatalf("tvca: %v\n%s", err, out)
	}
	for _, want := range []string{"i.i.d.", "Figure 2", "Figure 3"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("tvca output lacks %q", want)
		}
	}
	randCSV := filepath.Join(traces, "tvca_rand.csv")
	if _, err := os.Stat(randCSV); err != nil {
		t.Fatalf("trace not saved: %v", err)
	}

	// mbpta on the saved trace.
	out, err = exec.Command(filepath.Join(bin, "mbpta"),
		"-in", randCSV, "-cutoffs", "1e-6,1e-12").CombinedOutput()
	if err != nil {
		t.Fatalf("mbpta: %v\n%s", err, out)
	}
	for _, want := range []string{"Gumbel fit", "pWCET @ 1e-06", "pWCET @ 1e-12"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("mbpta output lacks %q:\n%s", want, out)
		}
	}

	// mbpta error path: missing input.
	if err := exec.Command(filepath.Join(bin, "mbpta")).Run(); err == nil {
		t.Error("mbpta without -in succeeded")
	}
	// experiments error path: unknown experiment.
	if err := exec.Command(filepath.Join(bin, "experiments"), "-exp", "e99").Run(); err == nil {
		t.Error("unknown experiment succeeded")
	}
}
