// Package repro's benchmark harness regenerates every table and figure
// of the paper (one benchmark per experiment in DESIGN.md's index) and
// the design-choice ablations. Benchmarks use reduced campaigns (600
// runs, 8-frame major frames) so `go test -bench=.` completes in
// minutes; `cmd/experiments -runs 3000` reproduces the paper-scale
// evaluation. Custom metrics report the headline numbers of each
// artifact alongside the wall-clock cost of regenerating it.
package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/matrix"
	"repro/internal/mem"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tvca"
)

// benchParams returns the reduced evaluation setup shared by the
// experiment benchmarks.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.Runs = 600
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	p.TVCA = cfg
	return p
}

func newEnv(b *testing.B) *experiments.Env {
	b.Helper()
	env, err := experiments.NewEnv(benchParams())
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkE1IIDTests regenerates the §III i.i.d. table (paper values:
// Ljung-Box 0.83, KS 0.45).
func BenchmarkE1IIDTests(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		r, err := experiments.E1IID(env)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Pass {
			b.Fatal("i.i.d. gate failed")
		}
		b.ReportMetric(r.Independence.PValue, "LjungBox-p")
		b.ReportMetric(r.IdentDist.PValue, "KS-p")
	}
}

// BenchmarkE2PWCETCurve regenerates Figure 2 (pWCET curve).
func BenchmarkE2PWCETCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		r, err := experiments.E2PWCETCurve(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.PWCET[1e-15]/r.HWM, "pWCET1e-15/HWM")
	}
}

// BenchmarkE3MBPTAvsDET regenerates Figure 3 (MBPTA vs DET).
func BenchmarkE3MBPTAvsDET(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		r, err := experiments.E3Comparison(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RatioAtCutoff[1e-6], "pWCET1e-6/DETHWM")
		b.ReportMetric(r.RatioAtCutoff[1e-15], "pWCET1e-15/DETHWM")
	}
}

// BenchmarkE4AvgPerformance regenerates the average-performance
// comparison (paper: no noticeable difference).
func BenchmarkE4AvgPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		r, err := experiments.E4AvgPerformance(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.RelativeOverhead, "overhead-%")
	}
}

// BenchmarkE5Convergence regenerates the campaign-size convergence
// trace.
func BenchmarkE5Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		r, err := experiments.E5Convergence(env)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.StopAt), "runs-to-converge")
	}
}

// BenchmarkE6FPUJitter regenerates the FPU jitter-control check.
func BenchmarkE6FPUJitter(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.E6FPUJitter(env)
		if err != nil {
			b.Fatal(err)
		}
		if !r.UpperBoundsHold {
			b.Fatal("FPU upper bound violated")
		}
		b.ReportMetric(float64(r.DivOpMax-r.DivOpMin), "div-jitter-cycles")
	}
}

// BenchmarkE7PlacementAblation regenerates the memory-layout ablation.
func BenchmarkE7PlacementAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := newEnv(b)
		r, err := experiments.E7PlacementAblation(env, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.DETSpread, "DET-layout-spread-%")
		b.ReportMetric(100*r.CoverFraction, "RAND-cover-%")
	}
}

// --- Design-choice ablations (DESIGN.md §5) ---

// BenchmarkAblationFitMethod compares the Gumbel estimators on the same
// synthetic maxima.
func BenchmarkAblationFitMethod(b *testing.B) {
	truth := evt.Gumbel{Mu: 10000, Beta: 150}
	src := rng.NewXoroshiro128(12)
	maxima := truth.Sample(src, 200)
	for _, m := range []evt.FitMethod{evt.MethodPWM, evt.MethodMoments, evt.MethodMLE} {
		b.Run(string(m), func(b *testing.B) {
			var fit evt.Gumbel
			var err error
			for i := 0; i < b.N; i++ {
				fit, err = evt.FitGumbel(maxima, m)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(fit.Beta, "beta")
		})
	}
}

// BenchmarkAblationBlockSize sweeps the block-maxima block length.
func BenchmarkAblationBlockSize(b *testing.B) {
	truth := evt.Gumbel{Mu: 10000, Beta: 150}
	src := rng.NewXoroshiro128(13)
	times := truth.Sample(src, 3000)
	for _, bs := range []int{20, 50, 100} {
		b.Run(map[int]string{20: "B20", 50: "B50", 100: "B100"}[bs], func(b *testing.B) {
			var bound float64
			for i := 0; i < b.N; i++ {
				an := core.NewAnalyzer(core.Options{BlockSize: bs})
				res, err := an.Analyze(times)
				if err != nil {
					b.Fatal(err)
				}
				if bound, err = res.PWCET(1e-12); err != nil {
					b.Fatal(err)
				}
			}
			want, _ := truth.QuantileSF(1e-12)
			b.ReportMetric(bound/want, "bound/truth")
		})
	}
}

// BenchmarkAblationPlacement compares cache placement policies on the
// TVCA footprint: hit ratio and (for the randomized ones) run-to-run
// spread.
func BenchmarkAblationPlacement(b *testing.B) {
	cases := []struct {
		name string
		p    cache.Placement
		r    cache.Replacement
	}{
		{"modulo-LRU", cache.PlacementModulo, cache.ReplaceLRU},
		{"randmod-rand", cache.PlacementRandomModulo, cache.ReplaceRandom},
		{"hash-rand", cache.PlacementRandomHash, cache.ReplaceRandom},
	}
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			pc := platform.RAND()
			pc.Name = c.name
			pc.IL1.Placement, pc.IL1.Replacement = c.p, c.r
			pc.DL1.Placement, pc.DL1.Replacement = c.p, c.r
			var mean float64
			for i := 0; i < b.N; i++ {
				camp, err := platform.StreamCampaign(context.Background(), pc, app,
					platform.StreamOptions{MaxRuns: 100, BaseSeed: 3}, nil)
				if err != nil {
					b.Fatal(err)
				}
				sum := 0.0
				for _, t := range camp.Times() {
					sum += t
				}
				mean = sum / float64(len(camp.Times()))
			}
			b.ReportMetric(mean, "mean-cycles")
		})
	}
}

// BenchmarkAblationReplacement compares LRU vs random vs round-robin
// replacement under randomized placement.
func BenchmarkAblationReplacement(b *testing.B) {
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []cache.Replacement{cache.ReplaceLRU, cache.ReplaceRandom, cache.ReplaceRoundRobin} {
		b.Run(string(r), func(b *testing.B) {
			pc := platform.RAND()
			pc.Name = "RAND-" + string(r)
			pc.IL1.Replacement = r
			pc.DL1.Replacement = r
			var mean float64
			for i := 0; i < b.N; i++ {
				camp, err := platform.StreamCampaign(context.Background(), pc, app,
					platform.StreamOptions{MaxRuns: 100, BaseSeed: 5}, nil)
				if err != nil {
					b.Fatal(err)
				}
				sum := 0.0
				for _, t := range camp.Times() {
					sum += t
				}
				mean = sum / float64(len(camp.Times()))
			}
			b.ReportMetric(mean, "mean-cycles")
		})
	}
}

// BenchmarkAblationDRAMPolicy compares closed-page (jitterless) and
// open-page (row-buffer jitter) memory controllers on the DET platform.
func BenchmarkAblationDRAMPolicy(b *testing.B) {
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []mem.Policy{mem.PolicyClosedPage, mem.PolicyOpenPage} {
		b.Run(string(pol), func(b *testing.B) {
			pc := platform.DET()
			pc.Name = "DET-" + string(pol)
			pc.DRAM.Policy = pol
			var spread float64
			for i := 0; i < b.N; i++ {
				camp, err := platform.StreamCampaign(context.Background(), pc, app,
					platform.StreamOptions{MaxRuns: 50, BaseSeed: 7}, nil)
				if err != nil {
					b.Fatal(err)
				}
				mn, mx := camp.Times()[0], camp.Times()[0]
				for _, t := range camp.Times() {
					if t < mn {
						mn = t
					}
					if t > mx {
						mx = t
					}
				}
				spread = (mx - mn) / mn
			}
			b.ReportMetric(100*spread, "spread-%")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw platform speed: simulated
// instructions per second for one TVCA run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p, err := platform.New(platform.RAND())
	if err != nil {
		b.Fatal(err)
	}
	var instr uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := p.Run(app, i, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		instr += r.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkTelemetryCampaignThroughput measures the observability
// layer's overhead on the campaign path, the configuration it is
// actually wired into: a streaming campaign with telemetry disabled
// (nil registry — the default everywhere) versus enabled with an
// attached ring sink. The acceptance bound is <3% on instr/s.
func BenchmarkTelemetryCampaignThroughput(b *testing.B) {
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, reg *telemetry.Registry) {
		var instr uint64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			camp, err := platform.StreamCampaign(context.Background(), platform.RAND(), app,
				platform.StreamOptions{MaxRuns: 64, BatchSize: 16, Parallel: 1,
					BaseSeed: 42, Telemetry: reg}, nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range camp.Results {
				instr += r.Instructions
			}
		}
		b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) {
		reg := telemetry.New()
		reg.Attach(telemetry.NewRingSink(1024))
		run(b, reg)
	})
}

// BenchmarkE8Contention regenerates the multicore-contention extension
// (co-simulated co-runners).
func BenchmarkE8Contention(b *testing.B) {
	p := benchParams()
	cfg := p.TVCA
	cfg.Frames = 4
	p.TVCA = cfg
	env, err := experiments.NewEnv(p)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.E8Contention(env, 2, 300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SlowdownByCoRunners[2], "slowdown-2co")
	}
}

// BenchmarkMulticoreThroughput measures co-simulation speed: simulated
// instructions per second on the measured core with three streaming
// co-runners.
func BenchmarkMulticoreThroughput(b *testing.B) {
	cfg := tvca.DefaultConfig()
	cfg.Frames = 4
	app, err := tvca.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	co := []platform.Workload{
		experiments.StreamerWorkload{Lines: 1024},
		experiments.StreamerWorkload{Lines: 1024},
		experiments.StreamerWorkload{Lines: 1024},
	}
	mc, err := platform.NewMulticore(platform.RAND(), co)
	if err != nil {
		b.Fatal(err)
	}
	var instr uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := mc.Run(app, i, uint64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		instr += r.Measured.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkMatrixWarmVsCold measures the scenario-matrix run cache
// (internal/matrix): the same 2x2 matrix executed against an empty
// cache directory (every run simulated) versus a pre-populated one
// (every run replayed from the journal). The cold/warm ns/op ratio is
// the cache's speedup; `make matrix-check` enforces the >=5x floor.
func BenchmarkMatrixWarmVsCold(b *testing.B) {
	spec := matrix.Spec{
		Name:      "bench",
		Platforms: []string{"DET", "RAND"},
		Workloads: []fabric.WorkloadSpec{
			{Kind: "crc32", Params: json.RawMessage(`{"Bytes":1024,"Seed":1}`)},
			{Kind: "isort", Params: json.RawMessage(`{"N":96,"Seed":1}`)},
		},
		Runs:     200,
		Batch:    50,
		BaseSeed: 42,
		Analysis: matrix.AnalysisSpec{BlockSize: 20},
	}
	pool := fabric.NewPool(fabric.Config{})
	defer pool.Close()
	pass := func(b *testing.B, dir string) *matrix.Report {
		cache, err := matrix.NewCache(dir)
		if err != nil {
			b.Fatal(err)
		}
		runner := &matrix.Runner{Pool: pool, Cache: cache, CellParallel: 2}
		rep, err := runner.Run(context.Background(), spec)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	b.Run("cold", func(b *testing.B) {
		root := b.TempDir()
		b.ReportAllocs()
		b.ResetTimer()
		var runs int
		for i := 0; i < b.N; i++ {
			rep := pass(b, filepath.Join(root, fmt.Sprintf("cold%d", i)))
			runs += rep.SimulatedRuns + rep.CachedRuns
		}
		b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
	})
	b.Run("warm", func(b *testing.B) {
		dir := filepath.Join(b.TempDir(), "cache")
		pass(b, dir) // populate
		b.ReportAllocs()
		b.ResetTimer()
		var runs int
		for i := 0; i < b.N; i++ {
			rep := pass(b, dir)
			if rep.SimulatedRuns != 0 {
				b.Fatalf("warm pass re-simulated %d runs", rep.SimulatedRuns)
			}
			runs += rep.CachedRuns
		}
		b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
	})
}

// BenchmarkE9Generality regenerates the workload-generality table.
func BenchmarkE9Generality(b *testing.B) {
	env := newEnv(b)
	for i := 0; i < b.N; i++ {
		r, err := experiments.E9Generality(env, 400)
		if err != nil {
			b.Fatal(err)
		}
		pass := 0
		for _, k := range r.Kernels {
			if k.IIDPass {
				pass++
			}
		}
		b.ReportMetric(float64(pass), "kernels-gate-pass")
	}
}

// BenchmarkAblationCodeLayout compares the looped and unrolled TVCA
// code shapes: the unrolled text exceeds the IL1, adding
// instruction-cache placement sensitivity on the randomized platform.
func BenchmarkAblationCodeLayout(b *testing.B) {
	for _, unroll := range []bool{false, true} {
		name := "looped"
		if unroll {
			name = "unrolled"
		}
		b.Run(name, func(b *testing.B) {
			cfg := tvca.DefaultConfig()
			cfg.Frames = 8
			cfg.UnrollChannels = unroll
			app, err := tvca.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var cov float64
			for i := 0; i < b.N; i++ {
				camp, err := platform.StreamCampaign(context.Background(), platform.RAND(), app,
					platform.StreamOptions{MaxRuns: 100, BaseSeed: 21}, nil)
				if err != nil {
					b.Fatal(err)
				}
				times := camp.Times()
				mean, sum2 := 0.0, 0.0
				for _, t := range times {
					mean += t
				}
				mean /= float64(len(times))
				for _, t := range times {
					d := t - mean
					sum2 += d * d
				}
				cov = 100 * (sum2 / float64(len(times)-1)) / (mean * mean)
			}
			b.ReportMetric(cov*1e4, "var-over-mean2-x1e4")
			b.ReportMetric(float64(app.Program().Len()*4), "text-bytes")
		})
	}
}

// BenchmarkQuantileGateThroughput measures the nine-decile quantile
// gate's analysis cost on a paper-sized campaign: a 3000-sample split
// compared with Harrell-Davis estimates, Maritz-Jarrett intervals and
// the Bayesian leak posterior at every decile. The gate runs once per
// analysis batch, so its per-call cost bounds the overhead of enabling
// -quantile-gate on a campaign.
func BenchmarkQuantileGateThroughput(b *testing.B) {
	const half = 1500
	src := rng.NewXoroshiro128(9)
	xs := make([]float64, 2*half)
	for i := range xs {
		// Lognormal-ish positive execution times with a heavy-ish tail.
		u := rng.Float64(src)
		v := rng.Float64(src)
		xs[i] = 14000 + 500*u + 2000*v*v
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := stats.CompareQuantiles(xs[:half], xs[half:], stats.QuantileGateOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !g.Pass {
			b.Fatal("identically drawn halves must pass the gate")
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "gates/s")
	b.ReportMetric(float64(b.N)*2*half/b.Elapsed().Seconds(), "samples/s")
}
