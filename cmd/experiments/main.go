// Command experiments regenerates every table and figure of the
// paper's evaluation section (see DESIGN.md for the experiment index):
//
//	experiments -exp all -runs 3000
//	experiments -exp e3 -runs 1000 -parallel 8
//
// Each experiment prints an ASCII rendition of the corresponding paper
// artifact plus the key numbers.
//
// Exit codes, matching cmd/mbpta so scripted pipelines can branch on
// the gate outcome: 0 = experiments completed, 1 = usage or I/O error,
// 2 = the i.i.d. gate rejected the measurement campaign. All errors go
// to stderr only.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/telemetry"
)

// Exit codes (the cmd/mbpta contract).
const (
	exitError   = 1 // usage or I/O error
	exitIIDGate = 2 // i.i.d. gate rejection
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process-global edges (args, stdout, stderr,
// exit) injected so the exit-code contract is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "all", "experiment to run: all, e1..e9 (e8: multicore contention; e9: workload generality)")
		runs       = fs.Int("runs", 3000, "measurement runs per campaign (paper: 3000)")
		seed       = fs.Uint64("seed", 0, "base seed (0 = paper default)")
		parallel   = fs.Int("parallel", 0, "campaign workers (0 = GOMAXPROCS)")
		frames     = fs.Int("frames", 0, "TVCA minor frames per run (0 = default)")
		layouts    = fs.Int("layouts", 12, "link-time layouts for e7")
		e8runs     = fs.Int("e8-runs", 500, "runs per co-runner configuration for e8 (co-simulation)")
		e9runs     = fs.Int("e9-runs", 600, "runs per kernel for e9 (workload generality)")
		csvDir     = fs.String("csv-dir", "", "directory to export figure data as CSV (optional)")
		converge   = fs.Bool("converge", false, "stream the RAND campaign and stop at pWCET-delta convergence (-runs becomes the budget)")
		faultsOn   = fs.Bool("faults", false, "inject SEU faults into the RAND campaign (quarantined from the analysis)")
		faultRate  = fs.Float64("fault-rate", 0.25, "expected upsets per run under -faults (Poisson)")
		cpuprofile = fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a pprof heap profile to this file at exit")
		teleAddr   = fs.String("telemetry-addr", "", "serve live campaign metrics on this address (/metrics Prometheus text, /metrics.json)")
		journal    = fs.String("journal", "", "journal the RAND campaign to this write-ahead log for crash-safe resume")
		resume     = fs.Bool("resume", false, "resume the RAND campaign from the -journal file instead of starting fresh")
	)
	if err := fs.Parse(args); err != nil {
		return exitError // usage already printed to stderr
	}
	if *resume && *journal == "" {
		fmt.Fprintln(stderr, "experiments: -resume requires -journal")
		return exitError
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return exitError
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
		}
	}()

	p := experiments.DefaultParams()
	p.Runs = *runs
	p.Parallel = *parallel
	p.Converge = *converge
	if *faultsOn {
		p.FaultRate = *faultRate
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *frames != 0 {
		p.TVCA.Frames = *frames
	}
	p.Journal = *journal
	p.Resume = *resume
	var reg *telemetry.Registry
	if *teleAddr != "" || *journal != "" {
		// Journaling always instruments the durability counters, even
		// when no metrics endpoint was requested.
		reg = telemetry.New()
		p.Telemetry = reg
	}
	if *teleAddr != "" {
		srv, serr := telemetry.Serve(*teleAddr, reg)
		if serr != nil {
			fmt.Fprintln(stderr, "experiments:", serr)
			return exitError
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "telemetry: serving %s/metrics\n", srv.URL())
	}
	env, err := experiments.NewEnv(p)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return exitError
	}

	which := strings.ToLower(*exp)
	all := which == "all"
	ran := false
	gateFailed := false
	var e2res *experiments.E2Result
	var e3res *experiments.E3Result
	var e5res *experiments.E5Result
	var e7res *experiments.E7Result
	run := func(id string, f func() error) error {
		if !all && which != id {
			return nil
		}
		ran = true
		fmt.Fprintf(stdout, "\n===== %s =====\n", strings.ToUpper(id))
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		return nil
	}

	steps := []struct {
		id string
		f  func() error
	}{
		{"e1", func() error {
			r, err := experiments.E1IID(env)
			if err != nil {
				return err
			}
			experiments.RenderE1(stdout, r)
			if !r.Pass {
				gateFailed = true
			}
			return nil
		}},
		{"e2", func() error {
			r, err := experiments.E2PWCETCurve(env)
			if err != nil {
				return err
			}
			e2res = r
			return experiments.RenderE2(stdout, r)
		}},
		{"e3", func() error {
			r, err := experiments.E3Comparison(env)
			if err != nil {
				return err
			}
			e3res = r
			return experiments.RenderE3(stdout, r)
		}},
		{"e4", func() error {
			r, err := experiments.E4AvgPerformance(env)
			if err != nil {
				return err
			}
			experiments.RenderE4(stdout, r)
			return nil
		}},
		{"e5", func() error {
			r, err := experiments.E5Convergence(env)
			if err != nil {
				return err
			}
			e5res = r
			experiments.RenderE5(stdout, r)
			return nil
		}},
		{"e6", func() error {
			r, err := experiments.E6FPUJitter(env)
			if err != nil {
				return err
			}
			experiments.RenderE6(stdout, r)
			return nil
		}},
		{"e7", func() error {
			r, err := experiments.E7PlacementAblation(env, *layouts)
			if err != nil {
				return err
			}
			e7res = r
			return experiments.RenderE7(stdout, r)
		}},
		{"e8", func() error {
			r, err := experiments.E8Contention(env, 3, *e8runs)
			if err != nil {
				return err
			}
			return experiments.RenderE8(stdout, r)
		}},
		{"e9", func() error {
			r, err := experiments.E9Generality(env, *e9runs)
			if err != nil {
				return err
			}
			experiments.RenderE9(stdout, r)
			return nil
		}},
	}
	for _, s := range steps {
		if err := run(s.id, s.f); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return exitCodeFor(err)
		}
	}

	if !ran {
		fmt.Fprintf(stderr, "experiments: unknown experiment %q (want all or e1..e9)\n", *exp)
		return exitError
	}
	if fsum := env.FaultSummary(); fsum != nil {
		fmt.Fprintln(stdout)
		report.OutcomeTable(stdout,
			fmt.Sprintf("fault injection (rate %g upsets/run): run outcomes", p.FaultRate),
			fsum.Clean, fsum.ByOutcome, faults.Outcomes())
		fmt.Fprintf(stdout, "  %d upsets injected; quarantined runs never enter the analysis\n", fsum.Injected)
	}
	if ci := env.RANDConvergence(); ci != nil {
		if ci.Converged {
			fmt.Fprintf(stdout, "\nconvergence: RAND campaign stopped at %d/%d runs (%s) - %d runs saved\n",
				ci.StopRuns, ci.MaxRuns, ci.Rule, ci.RunsSaved())
		} else {
			fmt.Fprintf(stdout, "\nconvergence: rule %s unsatisfied within the %d-run budget\n", ci.Rule, ci.MaxRuns)
		}
	}
	if *csvDir != "" {
		files, err := experiments.WriteAllCSV(*csvDir, e2res, e3res, e5res, e7res)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return exitError
		}
		fmt.Fprintf(stdout, "\nCSV data written to %s: %s\n", *csvDir, strings.Join(files, ", "))
	}
	if *journal != "" {
		fmt.Fprintln(stdout)
		report.MetricsTable(stdout, "durability", reg.Snapshot(),
			"wal_records_total", "wal_fsyncs_total", "campaign_resumes_total",
			"worker_restarts_total", "campaign_degraded")
	}
	if *teleAddr != "" {
		fmt.Fprintln(stdout)
		report.TelemetryTable(stdout, "telemetry summary", reg.Snapshot())
	}
	if gateFailed {
		fmt.Fprintln(stderr, "experiments: i.i.d. gate rejected the campaign; MBPTA not applicable")
		return exitIIDGate
	}
	return 0
}

// exitCodeFor classifies an experiment error: an i.i.d. gate rejection
// maps to the dedicated code so pipelines can branch on it, anything
// else is a generic failure.
func exitCodeFor(err error) int {
	if errors.Is(err, core.ErrIIDRejected) {
		return exitIIDGate
	}
	return exitError
}
