// Command experiments regenerates every table and figure of the
// paper's evaluation section (see DESIGN.md for the experiment index):
//
//	experiments -exp all -runs 3000
//	experiments -exp e3 -runs 1000 -parallel 8
//
// Each experiment prints an ASCII rendition of the corresponding paper
// artifact plus the key numbers; exit status is non-zero on any error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, e1..e9 (e8: multicore contention; e9: workload generality)")
		runs     = flag.Int("runs", 3000, "measurement runs per campaign (paper: 3000)")
		seed     = flag.Uint64("seed", 0, "base seed (0 = paper default)")
		parallel = flag.Int("parallel", 0, "campaign workers (0 = GOMAXPROCS)")
		frames   = flag.Int("frames", 0, "TVCA minor frames per run (0 = default)")
		layouts  = flag.Int("layouts", 12, "link-time layouts for e7")
		e8runs   = flag.Int("e8-runs", 500, "runs per co-runner configuration for e8 (co-simulation)")
		e9runs   = flag.Int("e9-runs", 600, "runs per kernel for e9 (workload generality)")
		csvDir   = flag.String("csv-dir", "", "directory to export figure data as CSV (optional)")
		converge = flag.Bool("converge", false, "stream the RAND campaign and stop at pWCET-delta convergence (-runs becomes the budget)")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	p.Runs = *runs
	p.Parallel = *parallel
	p.Converge = *converge
	if *seed != 0 {
		p.Seed = *seed
	}
	if *frames != 0 {
		p.TVCA.Frames = *frames
	}
	env, err := experiments.NewEnv(p)
	if err != nil {
		fatal(err)
	}

	which := strings.ToLower(*exp)
	all := which == "all"
	ran := false
	var e2res *experiments.E2Result
	var e3res *experiments.E3Result
	var e5res *experiments.E5Result
	var e7res *experiments.E7Result
	run := func(id string, f func() error) {
		if !all && which != id {
			return
		}
		ran = true
		fmt.Printf("\n===== %s =====\n", strings.ToUpper(id))
		if err := f(); err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
	}

	run("e1", func() error {
		r, err := experiments.E1IID(env)
		if err != nil {
			return err
		}
		experiments.RenderE1(os.Stdout, r)
		return nil
	})
	run("e2", func() error {
		r, err := experiments.E2PWCETCurve(env)
		if err != nil {
			return err
		}
		e2res = r
		return experiments.RenderE2(os.Stdout, r)
	})
	run("e3", func() error {
		r, err := experiments.E3Comparison(env)
		if err != nil {
			return err
		}
		e3res = r
		return experiments.RenderE3(os.Stdout, r)
	})
	run("e4", func() error {
		r, err := experiments.E4AvgPerformance(env)
		if err != nil {
			return err
		}
		experiments.RenderE4(os.Stdout, r)
		return nil
	})
	run("e5", func() error {
		r, err := experiments.E5Convergence(env)
		if err != nil {
			return err
		}
		e5res = r
		experiments.RenderE5(os.Stdout, r)
		return nil
	})
	run("e6", func() error {
		r, err := experiments.E6FPUJitter(env)
		if err != nil {
			return err
		}
		experiments.RenderE6(os.Stdout, r)
		return nil
	})
	run("e7", func() error {
		r, err := experiments.E7PlacementAblation(env, *layouts)
		if err != nil {
			return err
		}
		e7res = r
		return experiments.RenderE7(os.Stdout, r)
	})
	run("e8", func() error {
		r, err := experiments.E8Contention(env, 3, *e8runs)
		if err != nil {
			return err
		}
		return experiments.RenderE8(os.Stdout, r)
	})
	run("e9", func() error {
		r, err := experiments.E9Generality(env, *e9runs)
		if err != nil {
			return err
		}
		experiments.RenderE9(os.Stdout, r)
		return nil
	})

	if !ran {
		fatal(fmt.Errorf("unknown experiment %q (want all or e1..e9)", *exp))
	}
	if ci := env.RANDConvergence(); ci != nil {
		if ci.Converged {
			fmt.Printf("\nconvergence: RAND campaign stopped at %d/%d runs (%s) - %d runs saved\n",
				ci.StopRuns, ci.MaxRuns, ci.Rule, ci.RunsSaved())
		} else {
			fmt.Printf("\nconvergence: rule %s unsatisfied within the %d-run budget\n", ci.Rule, ci.MaxRuns)
		}
	}
	if *csvDir != "" {
		files, err := experiments.WriteAllCSV(*csvDir, e2res, e3res, e5res, e7res)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nCSV data written to %s: %s\n", *csvDir, strings.Join(files, ", "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
