// Command experiments regenerates every table and figure of the
// paper's evaluation section (see DESIGN.md for the experiment index):
//
//	experiments -exp all -runs 3000
//	experiments -exp e3 -runs 1000 -parallel 8
//
// Each experiment prints an ASCII rendition of the corresponding paper
// artifact plus the key numbers.
//
// Exit codes, matching cmd/mbpta so scripted pipelines can branch on
// the gate outcome: 0 = experiments completed, 1 = usage or I/O error,
// 2 = the i.i.d. gate rejected the measurement campaign. All errors go
// to stderr only.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/report"
)

// Exit codes (the shared cliflags contract).
const (
	exitError   = cliflags.ExitError
	exitIIDGate = cliflags.ExitIIDGate
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process-global edges (args, stdout, stderr,
// exit) injected so the exit-code contract is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := cliflags.AddCampaign(fs)
	var (
		exp     = fs.String("exp", "all", "experiment to run: all, e1..e11 (e8: multicore contention; e9: workload generality; e10: timing-leak oracle; e11: performability sweep)")
		frames  = fs.Int("frames", 0, "TVCA minor frames per run (0 = default)")
		layouts = fs.Int("layouts", 12, "link-time layouts for e7")
		e8runs  = fs.Int("e8-runs", 500, "runs per co-runner configuration for e8 (co-simulation)")
		e9runs  = fs.Int("e9-runs", 600, "runs per kernel for e9 (workload generality)")
		e10runs = fs.Int("e10-runs", 400, "runs per secret variant for e10 (timing-leak oracle)")
		e11runs = fs.Int("e11-runs", 600, "runs per mitigation x hazard cell for e11 (performability sweep)")
		csvDir  = fs.String("csv-dir", "", "directory to export figure data as CSV (optional)")
	)
	if err := fs.Parse(args); err != nil {
		return exitError // usage already printed to stderr
	}
	if err := c.Validate(); err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return exitError
	}

	stopProf, err := c.StartProfiling()
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return exitError
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
		}
	}()

	p, reg := c.Params()
	if *frames != 0 {
		p.TVCA.Frames = *frames
	}
	closeTele, err := c.ServeTelemetry(reg, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return exitError
	}
	defer closeTele()
	env, err := experiments.NewEnv(p)
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return exitError
	}

	which := strings.ToLower(*exp)
	all := which == "all"
	ran := false
	gateFailed := false
	var e2res *experiments.E2Result
	var e3res *experiments.E3Result
	var e5res *experiments.E5Result
	var e7res *experiments.E7Result
	run := func(id string, f func() error) error {
		if !all && which != id {
			return nil
		}
		ran = true
		fmt.Fprintf(stdout, "\n===== %s =====\n", strings.ToUpper(id))
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		return nil
	}

	steps := []struct {
		id string
		f  func() error
	}{
		{"e1", func() error {
			r, err := experiments.E1IID(env)
			if err != nil {
				return err
			}
			experiments.RenderE1(stdout, r)
			if !r.Pass {
				gateFailed = true
			}
			return nil
		}},
		{"e2", func() error {
			r, err := experiments.E2PWCETCurve(env)
			if err != nil {
				return err
			}
			e2res = r
			return experiments.RenderE2(stdout, r)
		}},
		{"e3", func() error {
			r, err := experiments.E3Comparison(env)
			if err != nil {
				return err
			}
			e3res = r
			return experiments.RenderE3(stdout, r)
		}},
		{"e4", func() error {
			r, err := experiments.E4AvgPerformance(env)
			if err != nil {
				return err
			}
			experiments.RenderE4(stdout, r)
			return nil
		}},
		{"e5", func() error {
			r, err := experiments.E5Convergence(env)
			if err != nil {
				return err
			}
			e5res = r
			experiments.RenderE5(stdout, r)
			return nil
		}},
		{"e6", func() error {
			r, err := experiments.E6FPUJitter(env)
			if err != nil {
				return err
			}
			experiments.RenderE6(stdout, r)
			return nil
		}},
		{"e7", func() error {
			r, err := experiments.E7PlacementAblation(env, *layouts)
			if err != nil {
				return err
			}
			e7res = r
			return experiments.RenderE7(stdout, r)
		}},
		{"e8", func() error {
			r, err := experiments.E8Contention(env, 3, *e8runs)
			if err != nil {
				return err
			}
			return experiments.RenderE8(stdout, r)
		}},
		{"e9", func() error {
			r, err := experiments.E9Generality(env, *e9runs)
			if err != nil {
				return err
			}
			experiments.RenderE9(stdout, r)
			return nil
		}},
		{"e10", func() error {
			r, err := experiments.RunLeakOracle(context.Background(), experiments.LeakParams{
				Runs:     *e10runs,
				Seed:     p.Seed,
				Parallel: p.Parallel,
				Alpha:    c.QuantileAlpha,
			})
			if err != nil {
				return err
			}
			experiments.RenderLeak(stdout, r)
			return nil
		}},
		{"e11", func() error {
			pp := experiments.PerformabilityParams{
				Runs:     *e11runs,
				Seed:     p.Seed,
				Parallel: p.Parallel,
			}
			if p.FaultRate > 0 {
				pp.Rate = p.FaultRate
			}
			r, err := experiments.RunPerformability(context.Background(), pp)
			if err != nil {
				return err
			}
			experiments.RenderE11(stdout, r)
			return nil
		}},
	}
	for _, s := range steps {
		if err := run(s.id, s.f); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return cliflags.ExitCodeFor(err)
		}
	}

	if !ran {
		fmt.Fprintf(stderr, "experiments: unknown experiment %q (want all or e1..e11)\n", *exp)
		return exitError
	}
	if fsum := env.FaultSummary(); fsum != nil {
		fmt.Fprintln(stdout)
		report.OutcomeTable(stdout,
			fmt.Sprintf("fault injection (rate %g upsets/run): run outcomes", p.FaultRate),
			fsum.Clean, fsum.ByOutcome, faults.Outcomes(), report.OutcomeExtras{
				Mitigated:      fsum.Mitigated,
				MitigatedOrder: faults.MitigatedOutcomes(),
				ClampedRuns:    fsum.ClampedRuns,
			})
		fmt.Fprintf(stdout, "  %d upsets injected; quarantined runs never enter the analysis\n", fsum.Injected)
	}
	if ci := env.RANDConvergence(); ci != nil {
		if ci.Converged {
			fmt.Fprintf(stdout, "\nconvergence: RAND campaign stopped at %d/%d runs (%s) - %d runs saved\n",
				ci.StopRuns, ci.MaxRuns, ci.Rule, ci.RunsSaved())
		} else {
			fmt.Fprintf(stdout, "\nconvergence: rule %s unsatisfied within the %d-run budget\n", ci.Rule, ci.MaxRuns)
		}
	}
	if *csvDir != "" {
		files, err := experiments.WriteAllCSV(*csvDir, e2res, e3res, e5res, e7res)
		if err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return exitError
		}
		fmt.Fprintf(stdout, "\nCSV data written to %s: %s\n", *csvDir, strings.Join(files, ", "))
	}
	if c.Journal != "" {
		fmt.Fprintln(stdout)
		report.MetricsTable(stdout, "durability", reg.Snapshot(),
			"wal_records_total", "wal_fsyncs_total", "campaign_resumes_total",
			"worker_restarts_total", "campaign_degraded")
	}
	if c.TelemetryAddr != "" {
		fmt.Fprintln(stdout)
		report.TelemetryTable(stdout, "telemetry summary", reg.Snapshot())
	}
	if gateFailed {
		fmt.Fprintln(stderr, "experiments: i.i.d. gate rejected the campaign; MBPTA not applicable")
		return exitIIDGate
	}
	return 0
}
