package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunUsageErrorsToStderrOnly(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-exp", "e42"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitError {
			t.Errorf("%v: exit %d, want %d", args, code, exitError)
		}
		if stderr.Len() == 0 {
			t.Errorf("%v: nothing on stderr", args)
		}
		if strings.Contains(stdout.String(), "experiments:") {
			t.Errorf("%v: error text leaked to stdout:\n%s", args, stdout.String())
		}
	}
}

func TestRunE1SmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measurement campaign")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "e1", "-runs", "600"}, &stdout, &stderr)
	// The 600-run RAND campaign passes the gate at the default seed;
	// either way the code must come from the documented contract.
	switch code {
	case 0:
		if stderr.Len() != 0 {
			t.Errorf("exit 0 but stderr non-empty: %s", stderr.String())
		}
	case exitIIDGate:
		if !strings.Contains(stderr.String(), "i.i.d. gate") {
			t.Errorf("exit 2 without gate message on stderr: %s", stderr.String())
		}
	default:
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "===== E1 =====") {
		t.Errorf("E1 banner missing:\n%s", stdout.String())
	}
}

func TestRunE1WithFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measurement campaign")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "e1", "-runs", "600", "-faults", "-fault-rate", "0.5"}, &stdout, &stderr)
	if code != 0 && code != exitIIDGate {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "fault injection (rate 0.5 upsets/run)") {
		t.Errorf("fault summary missing:\n%s", out)
	}
	if !strings.Contains(out, "clean (analyzed)") {
		t.Errorf("outcome table missing:\n%s", out)
	}
}
