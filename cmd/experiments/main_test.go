package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestExitCodeFor(t *testing.T) {
	// The exit-code contract is shared with cmd/mbpta: 2 must single
	// out the i.i.d. gate rejection, including wrapped forms.
	if got := exitCodeFor(core.ErrIIDRejected); got != exitIIDGate {
		t.Errorf("gate rejection -> %d, want %d", got, exitIIDGate)
	}
	wrapped := fmt.Errorf("e2: %w", core.ErrIIDRejected)
	if got := exitCodeFor(wrapped); got != exitIIDGate {
		t.Errorf("wrapped gate rejection -> %d, want %d", got, exitIIDGate)
	}
	for _, err := range []error{core.ErrHeavyTail, core.ErrInsufficient, fmt.Errorf("io: boom")} {
		if got := exitCodeFor(err); got != exitError {
			t.Errorf("%v -> %d, want %d", err, got, exitError)
		}
	}
}

func TestRunUsageErrorsToStderrOnly(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-exp", "e42"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitError {
			t.Errorf("%v: exit %d, want %d", args, code, exitError)
		}
		if stderr.Len() == 0 {
			t.Errorf("%v: nothing on stderr", args)
		}
		if strings.Contains(stdout.String(), "experiments:") {
			t.Errorf("%v: error text leaked to stdout:\n%s", args, stdout.String())
		}
	}
}

func TestRunE1SmallCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measurement campaign")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "e1", "-runs", "600"}, &stdout, &stderr)
	// The 600-run RAND campaign passes the gate at the default seed;
	// either way the code must come from the documented contract.
	switch code {
	case 0:
		if stderr.Len() != 0 {
			t.Errorf("exit 0 but stderr non-empty: %s", stderr.String())
		}
	case exitIIDGate:
		if !strings.Contains(stderr.String(), "i.i.d. gate") {
			t.Errorf("exit 2 without gate message on stderr: %s", stderr.String())
		}
	default:
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "===== E1 =====") {
		t.Errorf("E1 banner missing:\n%s", stdout.String())
	}
}

func TestRunE1WithFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measurement campaign")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-exp", "e1", "-runs", "600", "-faults", "-fault-rate", "0.5"}, &stdout, &stderr)
	if code != 0 && code != exitIIDGate {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "fault injection (rate 0.5 upsets/run)") {
		t.Errorf("fault summary missing:\n%s", out)
	}
	if !strings.Contains(out, "clean (analyzed)") {
		t.Errorf("outcome table missing:\n%s", out)
	}
}
