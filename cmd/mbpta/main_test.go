package main

import (
	"fmt"
	"testing"

	"repro/internal/cliflags"
	"repro/internal/core"
)

func TestParseCutoffs(t *testing.T) {
	qs, err := parseCutoffs("1e-6, 1e-9,1e-12")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1e-6, 1e-9, 1e-12}
	if len(qs) != len(want) {
		t.Fatalf("%v", qs)
	}
	for i := range want {
		if qs[i] != want[i] {
			t.Errorf("qs[%d] = %v", i, qs[i])
		}
	}
}

func TestParseCutoffsErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "0", "1", "-1e-3", "2", "1e-6,,"} {
		if _, err := parseCutoffs(in); err == nil && in != "1e-6,," {
			t.Errorf("%q accepted", in)
		}
	}
	// Trailing commas are tolerated (empty parts skipped).
	if qs, err := parseCutoffs("1e-6,,"); err != nil || len(qs) != 1 {
		t.Errorf("trailing commas: %v %v", qs, err)
	}
}

func TestVerdict(t *testing.T) {
	if verdict(true) != "pass" || verdict(false) != "REJECTED" {
		t.Error("verdict strings")
	}
}

func TestExitCodeFor(t *testing.T) {
	// Scripted pipelines branch on the exit code: 2 must single out the
	// i.i.d. gate rejection, including wrapped forms.
	if got := cliflags.ExitCodeFor(core.ErrIIDRejected); got != exitIIDGate {
		t.Errorf("gate rejection -> %d, want %d", got, exitIIDGate)
	}
	wrapped := fmt.Errorf("path %q: %w", "p1", core.ErrIIDRejected)
	if got := cliflags.ExitCodeFor(wrapped); got != exitIIDGate {
		t.Errorf("wrapped gate rejection -> %d, want %d", got, exitIIDGate)
	}
	for _, err := range []error{core.ErrHeavyTail, core.ErrInsufficient, fmt.Errorf("io: boom")} {
		if got := cliflags.ExitCodeFor(err); got != exitError {
			t.Errorf("%v -> %d, want %d", err, got, exitError)
		}
	}
}
