// Command mbpta applies the MBPTA analysis pipeline to a recorded
// execution-time campaign (CSV "run,cycles,path" or the JSON trace
// format): the i.i.d. gate, the block-maxima Gumbel fit and the pWCET
// estimates at the requested exceedance probabilities. This is the
// standalone-tool role the commercial timing-analysis suite plays in
// the paper.
//
//	mbpta -in traces/tvca_rand.csv -cutoffs 1e-6,1e-9,1e-12,1e-15
//	mbpta -in campaign.json -format json -per-path=false
//	mbpta -journal campaign.wal
//
// With -journal the input is a campaign write-ahead log (see
// internal/wal): the longest valid prefix is recovered and its clean
// runs analyzed — useful for inspecting a crashed campaign before
// resuming it.
//
// Exit codes, so scripted pipelines can branch on the gate outcome:
// 0 = analysis completed, 1 = usage or I/O error, 2 = the i.i.d. gate
// rejected the campaign and -force was not given. All errors go to
// stderr only.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Exit codes (the shared cliflags contract; 2 fires on a gate
// rejection without -force).
const (
	exitError   = cliflags.ExitError
	exitIIDGate = cliflags.ExitIIDGate
)

func main() {
	fs := flag.NewFlagSet("mbpta", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		in      = fs.String("in", "", "input trace file (required unless -journal is given)")
		journal = fs.String("journal", "", "analyze the clean runs recorded in a campaign journal (WAL) instead of a trace file")
		format  = fs.String("format", "csv", "input format: csv or json")
		alpha   = fs.Float64("alpha", 0.05, "significance level of the i.i.d. tests")
		block   = fs.Int("block", 50, "block-maxima block size")
		fit     = fs.String("fit", "pwm", "Gumbel fit method: pwm, moments, mle")
		cutoffs = fs.String("cutoffs", "1e-6,1e-9,1e-12,1e-15", "comma-separated exceedance probabilities")
		perPath = fs.Bool("per-path", true, "analyze per executed path, taking the max across paths")
		force   = fs.Bool("force", false, "continue even if the i.i.d. gate fails (diagnostic mode)")
		diag    = fs.Bool("diagnostics", false, "print extended diagnostics (trend tests, MBPTA-CV ladder)")
	)
	var teleAddrVal string
	cliflags.AddTelemetryAddr(fs, &teleAddrVal)
	teleAddr := &teleAddrVal
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(exitError) // usage already printed to stderr
	}
	if *in == "" && *journal == "" {
		fatal(fmt.Errorf("missing -in (or -journal)"))
	}
	if *in != "" && *journal != "" {
		fatal(fmt.Errorf("-in and -journal are mutually exclusive"))
	}

	var set *trace.Set
	if *journal != "" {
		var err error
		set, err = journalTrace(*journal)
		if err != nil {
			fatal(err) // CorruptError text names the bad byte offset
		}
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		switch *format {
		case "csv":
			set, err = trace.ReadCSV(f)
		case "json":
			set, err = trace.ReadJSON(f)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fatal(err)
		}
	}

	qs, err := parseCutoffs(*cutoffs)
	if err != nil {
		fatal(err)
	}

	an := core.NewAnalyzer(core.Options{
		Alpha:           *alpha,
		BlockSize:       *block,
		FitMethod:       evt.FitMethod(*fit),
		AllowIIDFailure: *force,
	})
	var res *core.Result
	if *perPath {
		res, err = an.AnalyzeByPath(set.TimesByPath())
	} else {
		res, err = an.Analyze(set.Times())
	}
	if err != nil {
		fatalCode(cliflags.ExitCodeFor(err), err)
	}

	fmt.Printf("campaign: %d samples", len(set.Samples))
	if set.Platform != "" {
		fmt.Printf(" on %s", set.Platform)
	}
	if set.Workload != "" {
		fmt.Printf(" running %s", set.Workload)
	}
	fmt.Println()

	for _, p := range res.Paths {
		name := p.Path
		if name == "" {
			name = "(single path)"
		}
		fmt.Println()
		runsCell := fmt.Sprintf("%d (%d block maxima of %d)", p.N, p.Maxima, res.BlockSize)
		if p.Discarded > 0 {
			runsCell += fmt.Sprintf("; %d trailing obs outside blocks", p.Discarded)
		}
		report.Table(os.Stdout, fmt.Sprintf("path %s", name), [][2]string{
			{"runs", runsCell},
			{"mean / max", fmt.Sprintf("%.0f / %.0f cycles", p.Summary.Mean, p.Summary.Max)},
			{"Ljung-Box p-value", fmt.Sprintf("%.4f", p.IID.Independence.PValue)},
			{"KS p-value", fmt.Sprintf("%.4f", p.IID.IdentDist.PValue)},
			{"i.i.d. gate", verdict(p.IID.Pass)},
			{"Gumbel fit (block maxima)", p.Fit.String()},
			{"GEV shape diagnostic", fmt.Sprintf("xi = %.3f", p.GEVXi)},
			{"Anderson-Darling fit check", fmt.Sprintf("A2 = %.3f, p = %.3f", p.GoF.Statistic, p.GoF.PValue)},
		})
	}
	for _, sp := range res.SmallPaths {
		fmt.Printf("\npath %s: only %d runs - kept as HWM floor (%.0f cycles); collect more runs\n",
			sp.Path, sp.N, sp.HWM)
	}

	fmt.Println()
	rows := make([][2]string, 0, len(qs))
	for _, q := range qs {
		v, err := res.PWCET(q)
		if err != nil {
			fatal(err)
		}
		rows = append(rows, [2]string{fmt.Sprintf("pWCET @ %.0e", q), fmt.Sprintf("%.0f cycles", v)})
	}
	report.Table(os.Stdout, "pWCET estimates (max across paths)", rows)
	if res.Incomplete() {
		fmt.Println("note: analysis incomplete - some paths were observed too rarely to fit")
	}

	if *diag {
		printDiagnostics(set.Times(), *alpha)
	}

	if *teleAddr != "" {
		reg := telemetry.New()
		publishAnalysis(reg, set, res, qs)
		srv, serr := telemetry.Serve(*teleAddr, reg)
		if serr != nil {
			fatal(serr)
		}
		defer srv.Close()
		fmt.Println()
		report.TelemetryTable(os.Stdout, fmt.Sprintf("telemetry (served at %s/metrics)", srv.URL()), reg.Snapshot())
	}
}

// journalTrace recovers a campaign journal's longest valid prefix and
// converts its clean (non-quarantined) run records into a trace set, so
// a crashed or in-flight campaign's measurements can be analyzed
// without resuming it. A truncated tail is reported on stderr but does
// not fail the analysis; only a journal with no usable campaign
// identity does.
func journalTrace(path string) (*trace.Set, error) {
	rec, err := wal.Recover(path)
	if err != nil {
		return nil, err
	}
	if rec.Truncated {
		fmt.Fprintf(os.Stderr, "mbpta: %s: corrupt tail at offset %d discarded; analyzing the %d-run valid prefix\n",
			path, rec.CorruptOffset, len(rec.Runs))
	}
	set := &trace.Set{Platform: rec.Meta.Platform, Workload: rec.Meta.Workload}
	for _, r := range rec.Runs {
		if r.Outcome != "" && !platform.MitigatedOutcome(r.Outcome) {
			// Quarantined by fault injection; never analyzed. Mitigated
			// outcomes (corrected/scrubbed/voted) stay: a recovered run is
			// analysis-clean, its overhead already in the cycle count.
			continue
		}
		set.Samples = append(set.Samples, trace.Sample{Run: r.Run, Cycles: r.Cycles, Path: r.Path})
	}
	if len(set.Samples) == 0 {
		return nil, fmt.Errorf("journal %s holds no clean runs to analyze", path)
	}
	return set, nil
}

// publishAnalysis mirrors a completed file analysis into telemetry
// gauges: sample counts, the worst (smallest) gate p-values across
// paths, the summed block-maxima discards and the deepest-cutoff pWCET
// — the same instrument names a live campaign publishes, so dashboards
// work for both.
func publishAnalysis(reg *telemetry.Registry, set *trace.Set, res *core.Result, qs []float64) {
	reg.Gauge("analysis_runs").Set(float64(len(set.Samples)))
	discarded := 0
	lbP, ksP := math.Inf(1), math.Inf(1)
	pass := 1.0
	for _, p := range res.Paths {
		discarded += p.Discarded
		lbP = math.Min(lbP, p.IID.Independence.PValue)
		ksP = math.Min(ksP, p.IID.IdentDist.PValue)
		if !p.IID.Pass {
			pass = 0
		}
	}
	reg.Gauge("analysis_block_discarded").Set(float64(discarded))
	if len(res.Paths) > 0 {
		reg.Gauge("analysis_gate_ljungbox_p").Set(lbP)
		reg.Gauge("analysis_gate_ks_p").Set(ksP)
		reg.Gauge("analysis_gate_pass").Set(pass)
	}
	deepest := qs[0]
	for _, q := range qs {
		if q < deepest {
			deepest = q
		}
	}
	if v, err := res.PWCET(deepest); err == nil {
		reg.Gauge("analysis_pwcet").Set(v)
	}
}

// printDiagnostics runs the extended battery over the whole series:
// turning-point and Mann-Kendall checks plus the MBPTA-CV
// exponentiality ladder.
func printDiagnostics(times []float64, alpha float64) {
	fmt.Println()
	ext, err := stats.CheckIIDExtended(times, alpha)
	if err != nil {
		fatal(err)
	}
	report.Table(os.Stdout, "extended diagnostics", [][2]string{
		{"turning-point (randomness)", ext.TurningPoint.String()},
		{"Mann-Kendall (trend)", ext.Trend.String()},
	})
	pts, err := core.ExponentialityCV(times, 0.5, 0.95, 10)
	if err != nil {
		fmt.Println("MBPTA-CV ladder unavailable:", err)
		return
	}
	rows := make([][2]string, 0, len(pts)+1)
	for _, p := range pts {
		inBand := ""
		if p.InBand {
			inBand = " (in band)"
		}
		rows = append(rows, [2]string{
			fmt.Sprintf("u=%.0f n=%d", p.Threshold, p.Exceedances),
			fmt.Sprintf("CV=%.3f%s", p.CV, inBand),
		})
	}
	ok, err := core.CVVerdict(pts, 0.5)
	if err != nil {
		fatal(err)
	}
	verdictStr := "tail accepted (exponential or lighter)"
	if !ok {
		verdictStr = "tail REJECTED as heavy"
	}
	rows = append(rows, [2]string{"MBPTA-CV verdict", verdictStr})
	report.Table(os.Stdout, "MBPTA-CV exponentiality ladder", rows)
}

func verdict(pass bool) string {
	if pass {
		return "pass"
	}
	return "REJECTED"
}

func parseCutoffs(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		q, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad cutoff %q: %w", part, err)
		}
		if q <= 0 || q >= 1 {
			return nil, fmt.Errorf("cutoff %g outside (0,1)", q)
		}
		out = append(out, q)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cutoffs given")
	}
	return out, nil
}

func fatal(err error) {
	fatalCode(exitError, err)
}

func fatalCode(code int, err error) {
	fmt.Fprintln(os.Stderr, "mbpta:", err)
	os.Exit(code)
}
