package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunUsageErrorsToStderrOnly(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-resume"}, // -resume requires -journal
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != exitError {
			t.Errorf("%v: exit %d, want %d", args, code, exitError)
		}
		if stderr.Len() == 0 {
			t.Errorf("%v: nothing on stderr", args)
		}
		if strings.Contains(stdout.String(), "tvca:") {
			t.Errorf("%v: error text leaked to stdout:\n%s", args, stdout.String())
		}
	}
}

func TestRunSmallCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs measurement campaigns")
	}
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-runs", "600", "-save-dir", dir}, &stdout, &stderr)
	switch code {
	case 0:
		if stderr.Len() != 0 {
			t.Errorf("exit 0 but stderr non-empty: %s", stderr.String())
		}
	case exitIIDGate:
		if !strings.Contains(stderr.String(), "i.i.d. gate") {
			t.Errorf("exit 2 without gate message on stderr: %s", stderr.String())
		}
		return // gate rejection ends the pipeline before CSV export
	default:
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "TVCA case study: 600 runs per campaign") {
		t.Errorf("banner missing:\n%s", out)
	}
	for _, f := range []string{"tvca_rand.csv", "tvca_det.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("campaign CSV %s not written: %v", f, err)
		}
	}
}

func TestRunJournalAndResumeFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs measurement campaigns")
	}
	journal := filepath.Join(t.TempDir(), "tvca.wal")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-runs", "600", "-journal", journal}, &stdout, &stderr)
	if code != 0 && code != exitIIDGate {
		t.Fatalf("journaled run: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "durability") {
		t.Errorf("durability table missing:\n%s", stdout.String())
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal not written: %v", err)
	}
	// Resuming the completed journal re-derives the campaign without
	// re-executing it and must exit under the same contract.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-runs", "600", "-journal", journal, "-resume"}, &stdout, &stderr)
	if code != 0 && code != exitIIDGate {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, stderr.String())
	}
}
