// Command tvca runs the paper's Space case study end to end: the TVCA
// workload is measured on the time-randomized (RAND) and deterministic
// (DET) builds of the LEON3-class platform, the i.i.d. gate and the
// MBPTA analysis are applied, and the equivalents of Figures 2 and 3
// are printed. Optionally the raw campaigns are saved as CSV for
// external tooling.
//
//	tvca -runs 3000 -save-dir ./traces
//	tvca -matrix spec.json -matrix-cache ./cache   # scenario matrix mode
//	tvca -leak                                     # timing-leak oracle mode
//
// Exit codes, matching cmd/experiments and cmd/mbpta so scripted
// pipelines can branch on the gate outcome: 0 = case study completed,
// 1 = usage or I/O error, 2 = the i.i.d. gate rejected the campaign.
// All errors go to stderr only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/cliflags"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/matrix"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/trace"
)

// Exit codes (the shared cliflags contract).
const (
	exitError   = cliflags.ExitError
	exitIIDGate = cliflags.ExitIIDGate
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process-global edges (args, stdout, stderr,
// exit) injected so the exit-code contract is testable.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tvca", flag.ContinueOnError)
	fs.SetOutput(stderr)
	c := cliflags.AddCampaign(fs)
	m := cliflags.AddMatrix(fs)
	l := cliflags.AddLeak(fs)
	var (
		saveDir = fs.String("save-dir", "", "directory to save campaign CSVs (optional)")
		perTask = fs.Bool("per-task", false, "additionally derive per-task pWCETs (worst job per run)")
	)
	if err := fs.Parse(args); err != nil {
		return exitError // usage already printed to stderr
	}
	if err := c.Validate(); err != nil {
		fmt.Fprintln(stderr, "tvca:", err)
		return exitError
	}
	if m.Spec != "" {
		return runMatrix(c, m, stdout, stderr)
	}
	if l.Enabled {
		return runLeak(c, l, stdout, stderr)
	}

	stopProf, err := c.StartProfiling()
	if err != nil {
		fmt.Fprintln(stderr, "tvca:", err)
		return exitError
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(stderr, "tvca:", err)
		}
	}()
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tvca:", err)
		return cliflags.ExitCodeFor(err)
	}

	p, reg := c.Params()
	closeTele, err := c.ServeTelemetry(reg, stdout)
	if err != nil {
		return fail(err)
	}
	defer closeTele()
	env, err := experiments.NewEnv(p)
	if err != nil {
		return fail(err)
	}

	if c.Converge {
		fmt.Fprintf(stdout, "TVCA case study: streaming campaign, budget %d runs, %d minor frames per run\n",
			p.Runs, p.TVCA.Frames)
	} else {
		fmt.Fprintf(stdout, "TVCA case study: %d runs per campaign, %d minor frames per run\n",
			p.Runs, p.TVCA.Frames)
	}

	e1, err := experiments.E1IID(env)
	if err != nil {
		return fail(err)
	}
	if fsum := env.FaultSummary(); fsum != nil {
		fmt.Fprintln(stdout)
		report.OutcomeTable(stdout,
			fmt.Sprintf("fault injection (rate %g upsets/run): run outcomes", p.FaultRate),
			fsum.Clean, fsum.ByOutcome, faults.Outcomes(), report.OutcomeExtras{
				Mitigated:      fsum.Mitigated,
				MitigatedOrder: faults.MitigatedOutcomes(),
				ClampedRuns:    fsum.ClampedRuns,
			})
		fmt.Fprintf(stdout, "  %d upsets injected; quarantined runs never enter the analysis\n", fsum.Injected)
	}
	if ci := env.RANDConvergence(); ci != nil {
		if ci.Converged {
			fmt.Fprintf(stdout, "\nconvergence: RAND campaign stopped at %d/%d runs (%s) - %d runs saved (%.0f%%)\n",
				ci.StopRuns, ci.MaxRuns, ci.Rule, ci.RunsSaved(),
				100*float64(ci.RunsSaved())/float64(ci.MaxRuns))
		} else {
			fmt.Fprintf(stdout, "\nconvergence: rule %s unsatisfied within the %d-run budget\n",
				ci.Rule, ci.MaxRuns)
		}
	}
	fmt.Fprintln(stdout)
	experiments.RenderE1(stdout, e1)
	if !e1.Pass {
		fmt.Fprintln(stderr, "tvca: i.i.d. gate failed; MBPTA is not applicable to this campaign")
		return exitIIDGate
	}

	e2, err := experiments.E2PWCETCurve(env)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(stdout)
	if err := experiments.RenderE2(stdout, e2); err != nil {
		return fail(err)
	}

	e3, err := experiments.E3Comparison(env)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(stdout)
	if err := experiments.RenderE3(stdout, e3); err != nil {
		return fail(err)
	}

	e4, err := experiments.E4AvgPerformance(env)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintln(stdout)
	experiments.RenderE4(stdout, e4)
	fmt.Fprintln(stdout)
	if err := experiments.RenderDistributions(stdout, env, 12); err != nil {
		return fail(err)
	}

	if *perTask {
		if err := perTaskReport(stdout, env, p.Runs/4); err != nil {
			return fail(err)
		}
	}

	if *saveDir != "" {
		if err := saveCampaigns(env, *saveDir); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "\ncampaign traces written to %s\n", *saveDir)
	}

	if c.Journal != "" {
		fmt.Fprintln(stdout)
		report.MetricsTable(stdout, "durability", reg.Snapshot(),
			"wal_records_total", "wal_fsyncs_total", "campaign_resumes_total",
			"worker_restarts_total", "campaign_degraded")
	}
	if c.TelemetryAddr != "" {
		fmt.Fprintln(stdout)
		report.TelemetryTable(stdout, "telemetry summary", reg.Snapshot())
	}
	return cliflags.ExitOK
}

// runMatrix executes the scenario matrix described by the -matrix spec
// file: cells fan out over an in-process fabric pool, per-cell progress
// streams to stdout as cells start and finish, and the comparative
// pWCET table closes the run. With -matrix-cache, cells sharing
// simulation-relevant configuration replay cached runs instead of
// re-simulating — a re-run after an analysis-only tweak touches no
// simulator board.
func runMatrix(c *cliflags.Campaign, m *cliflags.Matrix, stdout, stderr io.Writer) int {
	fail := func(err error) int {
		fmt.Fprintln(stderr, "tvca:", err)
		return cliflags.ExitCodeFor(err)
	}
	raw, err := os.ReadFile(m.Spec)
	if err != nil {
		return fail(err)
	}
	var spec matrix.Spec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fail(fmt.Errorf("parse matrix spec %s: %w", m.Spec, err))
	}
	cells, err := matrix.Expand(spec)
	if err != nil {
		return fail(err)
	}
	var cache *matrix.Cache
	if m.CacheDir != "" {
		if cache, err = matrix.NewCache(m.CacheDir); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "matrix: run cache at %s\n", cache.Dir())
	}
	pool := fabric.NewPool(fabric.Config{Executors: c.Parallel})
	defer pool.Close()

	fmt.Fprintf(stdout, "matrix: %d cells (%d platforms x %d workloads x faults x cores x rules)\n",
		len(cells), len(spec.Platforms), len(spec.Workloads))
	var progressMu sync.Mutex
	runner := &matrix.Runner{
		Pool:         pool,
		Cache:        cache,
		CellParallel: m.CellParallel,
		Progress: func(p matrix.CellProgress) {
			progressMu.Lock()
			defer progressMu.Unlock()
			switch p.State {
			case matrix.CellStart:
				fmt.Fprintf(stdout, "  [%d/%d] %s ...\n", p.Index+1, p.Total, p.Cell.Label())
			case matrix.CellDone:
				fmt.Fprintf(stdout, "  [%d/%d] %s done: %d cached + %d simulated runs in %s\n",
					p.Index+1, p.Total, p.Cell.Label(), p.CachedRuns, p.SimulatedRuns,
					p.Elapsed.Round(time.Millisecond))
			case matrix.CellError:
				fmt.Fprintf(stdout, "  [%d/%d] %s FAILED: %v\n", p.Index+1, p.Total, p.Cell.Label(), p.Err)
			}
		},
	}
	rep, err := runner.Run(context.Background(), spec)
	if rep != nil {
		fmt.Fprintln(stdout)
		rep.Table(stdout)
	}
	if err != nil {
		return fail(err)
	}
	return cliflags.ExitOK
}

// runLeak executes the timing-leak oracle: the secret-dependent probe
// is measured for both secrets on DET and RAND and the per-platform
// quantile-gate comparisons are printed. The expected outcome — DET
// leaks, RAND does not — exits 0; a platform pair that fails to
// separate exits 2, mirroring the gate-rejection contract.
func runLeak(c *cliflags.Campaign, l *cliflags.Leak, stdout, stderr io.Writer) int {
	cmp, err := experiments.RunLeakOracle(context.Background(), experiments.LeakParams{
		Runs:     l.Runs,
		Seed:     c.Seed,
		Parallel: c.Parallel,
		Alpha:    c.QuantileAlpha,
	})
	if err != nil {
		fmt.Fprintln(stderr, "tvca:", err)
		return exitError
	}
	experiments.RenderLeak(stdout, cmp)
	if !cmp.Separated() {
		fmt.Fprintln(stderr, "tvca: leak oracle did not separate the platforms")
		return exitIIDGate
	}
	return cliflags.ExitOK
}

// perTaskReport derives per-task pWCET budgets from worst-job-per-run
// campaigns (a reduced campaign suffices: each run yields one sample
// per task).
func perTaskReport(stdout io.Writer, env *experiments.Env, runs int) error {
	if runs < 500 {
		runs = 500
	}
	byTask, err := platform.PerTaskWorstCampaign(platform.RAND(), env.App(), runs, 99)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(byTask))
	for name := range byTask {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "\nper-task pWCET (worst job per run, %d runs):\n", runs)
	for _, name := range names {
		times := byTask[name]
		lo, hi := times[0], times[0]
		for _, v := range times {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi {
			fmt.Fprintf(stdout, "  %-12s jitterless: exact WCET %.0f cycles\n", name, hi)
			continue
		}
		res, err := core.NewAnalyzer(core.Options{BlockSize: 25}).Analyze(times)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		bound, err := res.PWCET(1e-12)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  %-12s HWM %.0f, pWCET(1e-12) %.0f cycles\n", name, hi, bound)
	}
	return nil
}

func saveCampaigns(env *experiments.Env, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, c *platform.CampaignResult) error {
		set := &trace.Set{Platform: c.Platform, Workload: c.Workload}
		for i, r := range c.Results {
			if r.Quarantined() {
				continue // traces carry clean measurements only
			}
			set.Samples = append(set.Samples, trace.Sample{Run: i, Cycles: r.Cycles, Path: r.Path})
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return trace.WriteCSV(f, set)
	}
	randc, err := env.RAND()
	if err != nil {
		return err
	}
	if err := save("tvca_rand.csv", randc); err != nil {
		return err
	}
	detc, err := env.DET()
	if err != nil {
		return err
	}
	return save("tvca_det.csv", detc)
}
