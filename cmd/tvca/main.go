// Command tvca runs the paper's Space case study end to end: the TVCA
// workload is measured on the time-randomized (RAND) and deterministic
// (DET) builds of the LEON3-class platform, the i.i.d. gate and the
// MBPTA analysis are applied, and the equivalents of Figures 2 and 3
// are printed. Optionally the raw campaigns are saved as CSV for
// external tooling.
//
//	tvca -runs 3000 -save-dir ./traces
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	var (
		runs       = flag.Int("runs", 3000, "measurement runs per campaign")
		seed       = flag.Uint64("seed", 0, "base seed (0 = default)")
		parallel   = flag.Int("parallel", 0, "campaign workers (0 = GOMAXPROCS)")
		saveDir    = flag.String("save-dir", "", "directory to save campaign CSVs (optional)")
		perTask    = flag.Bool("per-task", false, "additionally derive per-task pWCETs (worst job per run)")
		converge   = flag.Bool("converge", false, "stream the RAND campaign and stop at pWCET-delta convergence (-runs becomes the budget)")
		faultsOn   = flag.Bool("faults", false, "inject SEU faults into the RAND campaign (quarantined from the analysis)")
		faultRate  = flag.Float64("fault-rate", 0.25, "expected upsets per run under -faults (Poisson)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		teleAddr   = flag.String("telemetry-addr", "", "serve live campaign metrics on this address (/metrics Prometheus text, /metrics.json)")
		journal    = flag.String("journal", "", "journal the RAND campaign to this write-ahead log for crash-safe resume")
		resume     = flag.Bool("resume", false, "resume the RAND campaign from the -journal file instead of starting fresh")
	)
	flag.Parse()
	if *resume && *journal == "" {
		fatal(fmt.Errorf("-resume requires -journal"))
	}

	stop, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	stopProfile = stop
	defer flushProfile()

	p := experiments.DefaultParams()
	p.Runs = *runs
	p.Parallel = *parallel
	p.Converge = *converge
	if *faultsOn {
		p.FaultRate = *faultRate
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	p.Journal = *journal
	p.Resume = *resume
	var reg *telemetry.Registry
	if *teleAddr != "" || *journal != "" {
		// Journaling always instruments the durability counters, even
		// when no metrics endpoint was requested.
		reg = telemetry.New()
		p.Telemetry = reg
	}
	if *teleAddr != "" {
		srv, serr := telemetry.Serve(*teleAddr, reg)
		if serr != nil {
			fatal(serr)
		}
		defer srv.Close()
		fmt.Printf("telemetry: serving %s/metrics\n", srv.URL())
	}
	env, err := experiments.NewEnv(p)
	if err != nil {
		fatal(err)
	}

	if *converge {
		fmt.Printf("TVCA case study: streaming campaign, budget %d runs, %d minor frames per run\n",
			p.Runs, p.TVCA.Frames)
	} else {
		fmt.Printf("TVCA case study: %d runs per campaign, %d minor frames per run\n",
			p.Runs, p.TVCA.Frames)
	}

	e1, err := experiments.E1IID(env)
	if err != nil {
		fatal(err)
	}
	if fs := env.FaultSummary(); fs != nil {
		fmt.Println()
		report.OutcomeTable(os.Stdout,
			fmt.Sprintf("fault injection (rate %g upsets/run): run outcomes", p.FaultRate),
			fs.Clean, fs.ByOutcome, faults.Outcomes())
		fmt.Printf("  %d upsets injected; quarantined runs never enter the analysis\n", fs.Injected)
	}
	if ci := env.RANDConvergence(); ci != nil {
		if ci.Converged {
			fmt.Printf("\nconvergence: RAND campaign stopped at %d/%d runs (%s) - %d runs saved (%.0f%%)\n",
				ci.StopRuns, ci.MaxRuns, ci.Rule, ci.RunsSaved(),
				100*float64(ci.RunsSaved())/float64(ci.MaxRuns))
		} else {
			fmt.Printf("\nconvergence: rule %s unsatisfied within the %d-run budget\n",
				ci.Rule, ci.MaxRuns)
		}
	}
	fmt.Println()
	experiments.RenderE1(os.Stdout, e1)
	if !e1.Pass {
		fmt.Println("i.i.d. gate failed; MBPTA is not applicable to this campaign")
		flushProfile()
		os.Exit(2)
	}

	e2, err := experiments.E2PWCETCurve(env)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := experiments.RenderE2(os.Stdout, e2); err != nil {
		fatal(err)
	}

	e3, err := experiments.E3Comparison(env)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	if err := experiments.RenderE3(os.Stdout, e3); err != nil {
		fatal(err)
	}

	e4, err := experiments.E4AvgPerformance(env)
	if err != nil {
		fatal(err)
	}
	fmt.Println()
	experiments.RenderE4(os.Stdout, e4)
	fmt.Println()
	if err := experiments.RenderDistributions(os.Stdout, env, 12); err != nil {
		fatal(err)
	}

	if *perTask {
		if err := perTaskReport(env, p.Runs/4); err != nil {
			fatal(err)
		}
	}

	if *saveDir != "" {
		if err := saveCampaigns(env, *saveDir); err != nil {
			fatal(err)
		}
		fmt.Printf("\ncampaign traces written to %s\n", *saveDir)
	}

	if *journal != "" {
		fmt.Println()
		report.MetricsTable(os.Stdout, "durability", reg.Snapshot(),
			"wal_records_total", "wal_fsyncs_total", "campaign_resumes_total",
			"worker_restarts_total", "campaign_degraded")
	}
	if *teleAddr != "" {
		fmt.Println()
		report.TelemetryTable(os.Stdout, "telemetry summary", reg.Snapshot())
	}
}

// perTaskReport derives per-task pWCET budgets from worst-job-per-run
// campaigns (a reduced campaign suffices: each run yields one sample
// per task).
func perTaskReport(env *experiments.Env, runs int) error {
	if runs < 500 {
		runs = 500
	}
	byTask, err := platform.PerTaskWorstCampaign(platform.RAND(), env.App(),
		platform.CampaignOptions{Runs: runs, BaseSeed: 99})
	if err != nil {
		return err
	}
	names := make([]string, 0, len(byTask))
	for name := range byTask {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("\nper-task pWCET (worst job per run, %d runs):\n", runs)
	for _, name := range names {
		times := byTask[name]
		lo, hi := times[0], times[0]
		for _, v := range times {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi {
			fmt.Printf("  %-12s jitterless: exact WCET %.0f cycles\n", name, hi)
			continue
		}
		res, err := core.NewAnalyzer(core.Options{BlockSize: 25}).Analyze(times)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		bound, err := res.PWCET(1e-12)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s HWM %.0f, pWCET(1e-12) %.0f cycles\n", name, hi, bound)
	}
	return nil
}

func saveCampaigns(env *experiments.Env, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, c *platform.CampaignResult) error {
		set := &trace.Set{Platform: c.Platform, Workload: c.Workload}
		for i, r := range c.Results {
			if r.Quarantined() {
				continue // traces carry clean measurements only
			}
			set.Samples = append(set.Samples, trace.Sample{Run: i, Cycles: r.Cycles, Path: r.Path})
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return trace.WriteCSV(f, set)
	}
	randc, err := env.RAND()
	if err != nil {
		return err
	}
	if err := save("tvca_rand.csv", randc); err != nil {
		return err
	}
	detc, err := env.DET()
	if err != nil {
		return err
	}
	return save("tvca_det.csv", detc)
}

// stopProfile finalizes any requested pprof profiles. It is flushed on
// both the normal and the fatal exit path (os.Exit skips defers).
var stopProfile func() error

func flushProfile() {
	if stopProfile == nil {
		return
	}
	if err := stopProfile(); err != nil {
		fmt.Fprintln(os.Stderr, "tvca:", err)
	}
	stopProfile = nil
}

func fatal(err error) {
	flushProfile()
	fmt.Fprintln(os.Stderr, "tvca:", err)
	os.Exit(1)
}
