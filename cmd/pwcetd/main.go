// Command pwcetd is the long-lived pWCET analysis service: it owns a
// distributed campaign fabric (in-process executors, plus optionally a
// TCP listener remote executors join) and serves the campaign HTTP API
// — submit a spec, poll status, fetch the report and cached pWCET
// quantiles, scrape per-campaign telemetry at /metrics.
//
//	pwcetd -addr :8227                        # coordinator + API
//	pwcetd -addr :8227 -executor-listen :8228 # also accept remote executors
//	pwcetd -join host:8228                    # run as a remote executor
//
//	curl -X POST localhost:8227/api/v1/campaigns \
//	  -d '{"workload":{"kind":"tvca"},"runs":3000,"base_seed":42}'
//	curl -X POST localhost:8227/api/v1/campaigns \
//	  -d '{"workload":{"kind":"tvca"},"fault_rate":0.5,"mitigation":"ecc","hazard":"weibull"}'
//	curl localhost:8227/api/v1/campaigns/c000001
//	curl 'localhost:8227/api/v1/campaigns/c000001/pwcet?q=1e-12'
//
// Exit codes follow the shared CLI contract: 0 = clean shutdown
// (SIGINT/SIGTERM), 1 = usage or I/O error. All errors go to stderr
// only.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/fabric"
	"repro/internal/pwcetd"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with the process-global edges injected; it serves until
// ctx is canceled.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pwcetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", ":8227", "HTTP API listen address")
		execListen  = fs.String("executor-listen", "", "also accept remote fabric executors on this TCP address (optional)")
		join        = fs.String("join", "", "run as a remote executor of the coordinator at this address instead of serving")
		executors   = fs.Int("executors", 0, "in-process executor workers (0 = GOMAXPROCS; negative = none, rely on remote executors)")
		maxSess     = fs.Int("max-sessions", 0, "concurrent campaigns admitted before submissions queue (0 = default 256)")
		sessLeases  = fs.Int("session-leases", 0, "outstanding leases per campaign (0 = default 4)")
		leaseTO     = fs.Duration("lease-timeout", 30*time.Second, "re-queue a lease stuck on one executor after this long (0 disables)")
		matrixCache = fs.String("matrix-cache", "", "directory for the content-addressed matrix run cache (empty disables caching)")
		qgate       = fs.Bool("quantile-gate", false, "screen every submitted campaign with the nine-decile identical-distribution gate")
		qgateAlpha  = fs.Float64("quantile-alpha", 0.01, "family-wise false-positive budget of -quantile-gate")
	)
	if err := fs.Parse(args); err != nil {
		return cliflags.ExitError // usage already printed to stderr
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "pwcetd:", err)
		return cliflags.ExitCodeFor(err)
	}

	if *join != "" {
		// Executor mode: no service, no pool — just lease execution for
		// a remote coordinator until the connection drops or we're told
		// to stop.
		fmt.Fprintf(stdout, "pwcetd: joining coordinator %s as a remote executor\n", *join)
		err := fabric.RunExecutor(ctx, *join, nil)
		if err == nil || ctx.Err() != nil {
			return cliflags.ExitOK
		}
		return fail(err)
	}

	pool := fabric.NewPool(fabric.Config{
		Executors:     *executors,
		MaxSessions:   *maxSess,
		SessionLeases: *sessLeases,
		LeaseTimeout:  *leaseTO,
	})
	defer pool.Close()

	if *execListen != "" {
		eln, err := net.Listen("tcp", *execListen)
		if err != nil {
			return fail(err)
		}
		serveDone := make(chan struct{})
		go func() {
			defer close(serveDone)
			_ = pool.ServeExecutors(eln) // returns when the listener closes
		}()
		defer func() { eln.Close(); <-serveDone }()
		fmt.Fprintf(stdout, "pwcetd: accepting remote executors on %s\n", eln.Addr())
	}

	svc, err := pwcetd.New(pwcetd.Config{
		Pool:           pool,
		MatrixCacheDir: *matrixCache,
		QuantileGate:   *qgate,
		QuantileAlpha:  *qgateAlpha,
	})
	if err != nil {
		return fail(err)
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail(err)
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	fmt.Fprintf(stdout, "pwcetd: serving pWCET analysis API on http://%s\n", ln.Addr())

	select {
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fail(err)
		}
		return cliflags.ExitOK
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return cliflags.ExitOK
		}
		return fail(err)
	}
}
