package main

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cliflags"
	"repro/pkg/mbpta"
)

// syncBuffer lets the test read stdout while run() is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestRunUsageErrorsToStderrOnly(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-addr", "not-an-address"},
		{"-join", "127.0.0.1:1"}, // nothing listens on the reserved port
	} {
		var stdout, stderr syncBuffer
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		code := run(ctx, args, &stdout, &stderr)
		cancel()
		if code != cliflags.ExitError {
			t.Errorf("%v: exit %d, want %d", args, code, cliflags.ExitError)
		}
		if stderr.String() == "" {
			t.Errorf("%v: nothing on stderr", args)
		}
	}
}

// TestRunServesAndShutsDown boots the daemon on ephemeral ports,
// drives one campaign end to end over its HTTP API (with a remote
// executor joined via a second run() in executor mode), then cancels
// the context and expects a clean exit on both.
func TestRunServesAndShutsDown(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a measurement campaign")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	srvCtx, srvCancel := context.WithCancel(ctx)

	var stdout, stderr syncBuffer
	srvDone := make(chan int, 1)
	go func() {
		srvDone <- run(srvCtx, []string{"-addr", "127.0.0.1:0", "-executor-listen", "127.0.0.1:0"}, &stdout, &stderr)
	}()

	baseURL, execAddr := waitForAddrs(t, ctx, &stdout)

	// Join a remote executor (the -join mode of the same binary).
	execCtx, execCancel := context.WithCancel(ctx)
	var execOut, execErr syncBuffer
	execDone := make(chan int, 1)
	go func() {
		execDone <- run(execCtx, []string{"-join", execAddr}, &execOut, &execErr)
	}()

	c := mbpta.NewServiceClient(baseURL, nil)
	id, err := c.Submit(ctx, mbpta.CampaignSpec{
		Workload:    mbpta.WorkloadSpec{Kind: "crc32"},
		Runs:        60,
		Batch:       20,
		MeasureOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Fingerprint == "" {
		t.Fatalf("campaign state %q fingerprint %q (error %q)", st.State, st.Fingerprint, st.Error)
	}

	execCancel()
	if code := <-execDone; code != cliflags.ExitOK {
		t.Errorf("executor exit %d, stderr: %s", code, execErr.String())
	}
	srvCancel()
	if code := <-srvDone; code != cliflags.ExitOK {
		t.Errorf("daemon exit %d, stderr: %s", code, stderr.String())
	}
}

// waitForAddrs polls the daemon's stdout banner lines for the bound
// API and executor-listener addresses.
func waitForAddrs(t *testing.T, ctx context.Context, stdout *syncBuffer) (baseURL, execAddr string) {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		out := stdout.String()
		for _, line := range strings.Split(out, "\n") {
			if rest, ok := strings.CutPrefix(line, "pwcetd: serving pWCET analysis API on "); ok {
				baseURL = strings.TrimSpace(rest)
			}
			if rest, ok := strings.CutPrefix(line, "pwcetd: accepting remote executors on "); ok {
				execAddr = strings.TrimSpace(rest)
			}
		}
		if baseURL != "" && execAddr != "" {
			return baseURL, execAddr
		}
		select {
		case <-deadline:
			t.Fatalf("daemon banner not seen; stdout:\n%s", out)
		case <-ctx.Done():
			t.Fatal(ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}
