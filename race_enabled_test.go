//go:build race

package repro

// raceEnabled reports that this test binary was built with the race
// detector, whose instrumentation slows the simulator by an order of
// magnitude — wall-clock throughput gates are skipped there.
const raceEnabled = true
