package repro

// Golden-trace regression tests for the multicore co-simulation board.
//
// The cycle values below were captured from the pre-board-reuse
// implementation (one-shot boards, channel-based arbiter, interpreted
// co-runners) and pin the reusable board's results bit-for-bit: board
// reuse, decode-once trace replay, self-grant windows and the inline
// cursor arbiter are all pure execution strategies and must not move a
// single cycle. Any diff here is a correctness bug, not a perf trade.

import (
	"fmt"
	"hash/fnv"
	"testing"

	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/tvca"
)

func tinyTVCAApp(t testing.TB) *tvca.App {
	t.Helper()
	cfg := tvca.DefaultConfig()
	cfg.Frames = 4
	cfg.Sensors = 8
	cfg.Taps = 8
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func fullTVCAApp(t testing.TB) *tvca.App {
	t.Helper()
	cfg := tvca.DefaultConfig()
	cfg.Frames = 4
	app, err := tvca.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func repeat16(v uint64) [16]uint64 {
	var a [16]uint64
	for i := range a {
		a[i] = v
	}
	return a
}

// tinyInstr is the per-run instruction count of the tiny TVCA app:
// its path (and so its length) depends on the run's input frame, not
// on platform randomness — runs 4 and 8 take the longer paths on
// every platform configuration.
func tinyInstr() [16]uint64 {
	a := repeat16(3177)
	a[4], a[8] = 3189, 3185
	return a
}

func TestMulticoreGoldenCycles(t *testing.T) {
	cases := []struct {
		name      string
		cfg       platform.Config
		app       func(testing.TB) *tvca.App
		co        []platform.Workload
		baseSeed  uint64
		wantInstr [16]uint64
		want      [16]uint64
	}{
		{
			name: "RAND-3stream",
			cfg:  platform.RAND(),
			app:  fullTVCAApp,
			co: []platform.Workload{
				experiments.StreamerWorkload{Lines: 1024},
				experiments.StreamerWorkload{Lines: 1024},
				experiments.StreamerWorkload{Lines: 1024},
			},
			baseSeed:  42,
			wantInstr: repeat16(35433),
			want: [16]uint64{
				145960, 143170, 149070, 147661, 145148, 143779, 145859, 145370,
				146896, 146899, 145088, 146395, 145712, 144821, 146017, 147188,
			},
		},
		{
			name: "RAND-2stream-tiny",
			cfg:  platform.RAND(),
			app:  tinyTVCAApp,
			co: []platform.Workload{
				experiments.StreamerWorkload{Lines: 256},
				experiments.StreamerWorkload{Lines: 1024},
			},
			baseSeed:  42,
			wantInstr: tinyInstr(),
			want: [16]uint64{
				13833, 13833, 13833, 13833, 13906, 13833, 13833, 13833,
				13911, 13833, 13833, 13833, 13833, 13833, 13833, 13833,
			},
		},
		{
			name: "DET-1stream-tiny",
			cfg:  platform.DET(),
			app:  tinyTVCAApp,
			co: []platform.Workload{
				experiments.StreamerWorkload{Lines: 512},
			},
			baseSeed:  7,
			wantInstr: tinyInstr(),
			want: [16]uint64{
				13809, 13809, 13808, 13809, 13885, 13809, 13809, 13807,
				13882, 13809, 13808, 13809, 13809, 13809, 13809, 13809,
			},
		},
		{
			name:      "RAND-solo-tiny",
			cfg:       platform.RAND(),
			app:       tinyTVCAApp,
			co:        nil,
			baseSeed:  99,
			wantInstr: tinyInstr(),
			want: [16]uint64{
				13772, 13772, 13772, 13772, 13852, 13772, 13772, 13772,
				13847, 13772, 13772, 13772, 13772, 13772, 13772, 13772,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mc, err := platform.NewMulticore(tc.cfg, tc.co)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(tc.want); i++ {
				r, err := mc.Run(tc.app(t), i, platform.DeriveRunSeed(tc.baseSeed, i))
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				if r.Measured.Cycles != tc.want[i] {
					t.Errorf("run %d: cycles = %d, want %d", i, r.Measured.Cycles, tc.want[i])
				}
				if r.Measured.Instructions != tc.wantInstr[i] {
					t.Errorf("run %d: instructions = %d, want %d", i, r.Measured.Instructions, tc.wantInstr[i])
				}
			}
		})
	}
}

// TestMulticoreGoldenFingerprint hashes 100 full co-simulated runs —
// cycles, instructions and path classification — into one value,
// pinned to the pre-refactor implementation. Covers the recording run
// (goroutine-mode arbiter) and 99 inline replay runs in one sweep.
func TestMulticoreGoldenFingerprint(t *testing.T) {
	app := fullTVCAApp(t)
	mc, err := platform.NewMulticore(platform.RAND(), []platform.Workload{
		experiments.StreamerWorkload{Lines: 1024},
		experiments.StreamerWorkload{Lines: 1024},
		experiments.StreamerWorkload{Lines: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for i := 0; i < 100; i++ {
		r, err := mc.Run(app, i, platform.DeriveRunSeed(42, i))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(h, "%d:%d:%d:%s\n", i, r.Measured.Cycles, r.Measured.Instructions, r.Measured.Path)
	}
	const want = uint64(0x504e1716b9434154)
	if got := h.Sum64(); got != want {
		t.Fatalf("fingerprint = %#x, want %#x", got, want)
	}
}

// TestMulticoreSteadyStateAllocs pins the per-run allocation count of
// a warmed board: after the recording run, a full co-simulated run —
// board reset, reseed, measured replay, three co-runner replays, every
// bus grant — must stay within a handful of allocations (the result's
// iteration-count copy, mostly). The pre-refactor board allocated
// ~13k times per run.
func TestMulticoreSteadyStateAllocs(t *testing.T) {
	app := fullTVCAApp(t)
	mc, err := platform.NewMulticore(platform.RAND(), []platform.Workload{
		experiments.StreamerWorkload{Lines: 1024},
		experiments.StreamerWorkload{Lines: 1024},
		experiments.StreamerWorkload{Lines: 1024},
	})
	if err != nil {
		t.Fatal(err)
	}
	run := 0
	for ; run < 3; run++ { // warm: record traces, build the board
		if _, err := mc.Run(app, run, platform.DeriveRunSeed(42, run)); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := mc.Run(app, run, platform.DeriveRunSeed(42, run)); err != nil {
			t.Fatal(err)
		}
		run++
	})
	const maxAllocs = 8.0
	if allocs > maxAllocs {
		t.Errorf("steady-state multicore run allocates %.1f times, want <= %.0f", allocs, maxAllocs)
	}
}
