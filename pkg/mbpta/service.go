// The pWCET analysis service surface: the wire types of the pwcetd
// HTTP API, a client for it, and the public face of the distributed
// campaign fabric (pool construction, workload specs, the remote
// executor entry point). The service itself lives in internal/pwcetd
// and is started by cmd/pwcetd; this file is everything a program
// needs to talk to one — or to embed a fabric pool directly.

package mbpta

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/fabric"
)

// Campaign-fabric types re-exported for embedding a pool in-process
// (see WithExecutorPool) and for building service campaign specs.
type (
	// FabricConfig tunes a campaign-fabric pool; the zero value selects
	// defaults (GOMAXPROCS executors, 256 admission slots, 4 leases per
	// campaign).
	FabricConfig = fabric.Config
	// FabricPool is the fabric coordinator: a shared executor pool many
	// concurrent campaigns multiplex over with fair scheduling and
	// bounded backpressure. It implements ExecutorPool.
	FabricPool = fabric.Pool
	// FabricStats is a point-in-time pool snapshot.
	FabricStats = fabric.Stats
	// WorkloadSpec names a workload kind and its JSON-encoded parameters
	// — the serializable unit remote executors and the pWCET service
	// rebuild workloads from.
	WorkloadSpec = fabric.WorkloadSpec
	// WorkloadRegistry maps workload kinds to constructors.
	WorkloadRegistry = fabric.Registry
)

// NewFabricPool starts a campaign-fabric coordinator. Close it when
// done; pass it to WithExecutorPool to run campaigns on it.
func NewFabricPool(cfg FabricConfig) *FabricPool { return fabric.NewPool(cfg) }

// BuiltinWorkloads returns the registry of this repository's workloads
// (the TVCA case study and the generality kernels), the default
// registry of pools, executors and the pWCET service.
func BuiltinWorkloads() *WorkloadRegistry { return fabric.BuiltinRegistry() }

// RunFabricExecutor joins addr's coordinator as a remote executor and
// executes leases until the connection drops or ctx is canceled. A nil
// registry selects BuiltinWorkloads.
func RunFabricExecutor(ctx context.Context, addr string, reg *WorkloadRegistry) error {
	return fabric.RunExecutor(ctx, addr, reg)
}

// NamedPlatformConfig resolves the reference platform builds by name:
// "RAND" (or empty) and "DET".
func NamedPlatformConfig(name string) (PlatformConfig, error) {
	return fabric.NamedPlatform(name)
}

// CampaignSpec is the wire form of a campaign submission to the pWCET
// service (POST /api/v1/campaigns). Zero fields select the campaign
// defaults: platform RAND, 3000 runs, batch size 250, base seed 0.
type CampaignSpec struct {
	// Platform names the platform build: "RAND" (default) or "DET".
	Platform string `json:"platform,omitempty"`
	// Workload is the workload to measure, resolved by the service's
	// workload registry.
	Workload WorkloadSpec `json:"workload"`
	Runs     int          `json:"runs,omitempty"`
	Batch    int          `json:"batch_size,omitempty"`
	BaseSeed uint64       `json:"base_seed,omitempty"`
	// MeasureOnly skips the final per-path analysis (DET campaigns are
	// expected to fail the i.i.d. gate; collect them measure-only).
	MeasureOnly bool `json:"measure_only,omitempty"`
	// QuantileGate additionally runs the nine-decile identical-
	// distribution gate; QuantileAlpha is its family-wise
	// false-positive budget (0 = the default 0.01).
	QuantileGate  bool    `json:"quantile_gate,omitempty"`
	QuantileAlpha float64 `json:"quantile_alpha,omitempty"`
	// FaultRate attaches the deterministic SEU injector: expected
	// upsets per run (Poisson), 0 = no injection. Fault campaigns
	// execute on the service's local workers — the injection layer is
	// not pool-schedulable.
	FaultRate float64 `json:"fault_rate,omitempty"`
	// Mitigation names the fault-mitigation scheme under FaultRate
	// ("none", "scrub", "ecc", "lockstep"; empty = none) and Hazard the
	// upset-rate profile ("constant", "weibull", "orbit"; empty =
	// constant). Both require FaultRate > 0.
	Mitigation string `json:"mitigation,omitempty"`
	Hazard     string `json:"hazard,omitempty"`
}

// CampaignStatus is the wire form of a campaign's state
// (GET /api/v1/campaigns/{id}).
type CampaignStatus struct {
	ID string `json:"id"`
	// State is "running", "done" or "failed". A campaign whose analysis
	// rejected the i.i.d. gate is "done" (the measurements are valid);
	// Error then names the rejection.
	State     string `json:"state"`
	RunsDone  int    `json:"runs_done"`
	RunsTotal int    `json:"runs_total"`
	Converged bool   `json:"converged,omitempty"`
	// Fingerprint is the canonical SHA-256 of the finished report — the
	// bit-identity proof across execution modes (empty until done).
	Fingerprint string `json:"fingerprint,omitempty"`
	Error       string `json:"error,omitempty"`
}

// ServiceReport is the wire form of a finished campaign's report
// (GET /api/v1/campaigns/{id}/report).
type ServiceReport struct {
	CampaignStatus
	Platform string `json:"platform"`
	Workload string `json:"workload"`
	Rule     string `json:"rule"`
	// GatePass is the final i.i.d. gate verdict (absent under
	// MeasureOnly or when the analysis never completed).
	GatePass *bool `json:"gate_pass,omitempty"`
	// QGatePass and QGateLeakP report the nine-decile gate's verdict
	// and posterior leak probability (absent unless the campaign ran
	// with QuantileGate).
	QGatePass  *bool    `json:"qgate_pass,omitempty"`
	QGateLeakP *float64 `json:"qgate_leak_p,omitempty"`
	// PWCET maps exceedance probabilities (formatted "1e-12") to pWCET
	// bounds in cycles at the standard cutoffs, when analyzed.
	PWCET map[string]float64 `json:"pwcet,omitempty"`
	// Fault-campaign outcome tallies (present when the spec requested
	// injection): clean analyzed runs, mitigated recoveries per class,
	// quarantined runs per class, and the fault-cap clamp count.
	FaultClean       int            `json:"fault_clean,omitempty"`
	FaultMitigated   map[string]int `json:"fault_mitigated,omitempty"`
	FaultQuarantined map[string]int `json:"fault_quarantined,omitempty"`
	FaultClamped     int            `json:"fault_clamped,omitempty"`
}

// PWCETAnswer is the wire form of a quantile query
// (GET /api/v1/campaigns/{id}/pwcet?q=1e-12).
type PWCETAnswer struct {
	ID     string  `json:"id"`
	Q      float64 `json:"q"`
	Cycles float64 `json:"pwcet_cycles"`
}

// ServiceClient talks to a pwcetd instance over its HTTP API.
type ServiceClient struct {
	base string
	http *http.Client
}

// NewServiceClient returns a client for the pwcetd at baseURL (e.g.
// "http://localhost:8227"). A nil hc selects http.DefaultClient.
func NewServiceClient(baseURL string, hc *http.Client) *ServiceClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &ServiceClient{base: baseURL, http: hc}
}

// Submit submits a campaign and returns its ID. The campaign executes
// asynchronously on the service's fabric pool; poll Status or call
// Wait.
func (c *ServiceClient) Submit(ctx context.Context, spec CampaignSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("mbpta: encode campaign spec: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/api/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Status fetches a campaign's current state.
func (c *ServiceClient) Status(ctx context.Context, id string) (CampaignStatus, error) {
	var st CampaignStatus
	err := c.get(ctx, "/api/v1/campaigns/"+url.PathEscape(id), &st)
	return st, err
}

// Report fetches a finished campaign's report. The service answers 409
// while the campaign is still running.
func (c *ServiceClient) Report(ctx context.Context, id string) (ServiceReport, error) {
	var rep ServiceReport
	err := c.get(ctx, "/api/v1/campaigns/"+url.PathEscape(id)+"/report", &rep)
	return rep, err
}

// PWCET queries a finished campaign's pWCET bound at exceedance
// probability q. The service caches computed quantiles.
func (c *ServiceClient) PWCET(ctx context.Context, id string, q float64) (float64, error) {
	var ans PWCETAnswer
	path := "/api/v1/campaigns/" + url.PathEscape(id) + "/pwcet?q=" +
		url.QueryEscape(strconv.FormatFloat(q, 'e', -1, 64))
	if err := c.get(ctx, path, &ans); err != nil {
		return 0, err
	}
	return ans.Cycles, nil
}

// PoolStats fetches the service's fabric-pool snapshot.
func (c *ServiceClient) PoolStats(ctx context.Context) (FabricStats, error) {
	var st FabricStats
	err := c.get(ctx, "/api/v1/pool", &st)
	return st, err
}

// Wait polls Status every poll (default 100ms) until the campaign
// leaves the "running" state or ctx expires.
func (c *ServiceClient) Wait(ctx context.Context, id string, poll time.Duration) (CampaignStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State != "running" {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

func (c *ServiceClient) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *ServiceClient) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		// Service errors arrive as {"error": "..."}; surface the text.
		var e struct {
			Error string `json:"error"`
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("mbpta: pwcetd %s: %s (HTTP %d)", req.URL.Path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("mbpta: pwcetd %s: HTTP %d", req.URL.Path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
