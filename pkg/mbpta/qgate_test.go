package mbpta_test

import (
	"context"
	"testing"

	"repro/pkg/mbpta"
)

// TestCampaignQuantileGateWiring: WithQuantileGate is analysis-only —
// it must not change what is measured (the series is bit-identical to
// an ungated campaign), the gate report must appear on the analyzed
// paths only under the option, and fingerprints must stay
// deterministic in both configurations. Ungated fingerprints never
// hash a gate report, so pre-existing pinned goldens remain valid.
func TestCampaignQuantileGateWiring(t *testing.T) {
	app := smallApp(t)
	run := func(gated bool) *mbpta.CampaignReport {
		opts := []mbpta.CampaignOption{
			mbpta.WithRuns(400),
			mbpta.WithBaseSeed(42),
		}
		if gated {
			opts = append(opts, mbpta.WithQuantileGate(0.01))
		}
		rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app, opts...)
		if err != nil {
			t.Fatalf("campaign (gated=%v): %v", gated, err)
		}
		return rep
	}
	plain, plain2 := run(false), run(false)
	gated, gated2 := run(true), run(true)

	// Measurement identity: the option changes analysis, not the runs.
	pt, gt := plain.Campaign.Times(), gated.Campaign.Times()
	if len(pt) != len(gt) {
		t.Fatalf("%d vs %d measured runs", len(pt), len(gt))
	}
	for i := range pt {
		if pt[i] != gt[i] {
			t.Fatalf("run %d: gated campaign measured %v, ungated %v", i, gt[i], pt[i])
		}
	}

	for _, p := range plain.Analysis.Paths {
		if p.QGate != nil {
			t.Errorf("path %q carries a QGate report without the option", p.Path)
		}
	}
	found := false
	for _, p := range gated.Analysis.Paths {
		if p.QGate == nil {
			continue // paths below the gate's sample floor record nothing
		}
		found = true
		if !p.QGate.Pass {
			t.Errorf("path %q: gate failed on a time-randomized i.i.d. campaign:\n%s", p.Path, p.QGate)
		}
	}
	if !found {
		t.Fatal("no analyzed path carries a quantile-gate report under WithQuantileGate")
	}

	if f1, f2 := plain.Fingerprint(), plain2.Fingerprint(); f1 != f2 {
		t.Errorf("ungated fingerprint not deterministic: %s != %s", f1, f2)
	}
	if f1, f2 := gated.Fingerprint(), gated2.Fingerprint(); f1 != f2 {
		t.Errorf("gated fingerprint not deterministic: %s != %s", f1, f2)
	}
	if plain.Fingerprint() == gated.Fingerprint() {
		t.Error("gated fingerprint equals ungated one — the gate report is not part of the hashed surface")
	}
}
