package mbpta

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/stats"
)

// Fingerprint returns a canonical SHA-256 digest of the report: the
// measured series, the per-batch snapshot trace, the convergence
// verdict, the fault tally, and the final per-path analysis parameters.
// Wall-clock fields (Snapshot.Elapsed) are excluded — they differ even
// between two uninterrupted executions of the same campaign. Floats are
// hashed by their IEEE-754 bit pattern, so the digest detects any
// change in any measured or derived value: two reports share a
// fingerprint exactly when they are bit-identical modulo wall clock.
// This is the invariant the durability layer is tested against — a
// campaign killed at any point and resumed from its journal must
// fingerprint identically to an uninterrupted one.
func (r *CampaignReport) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "campaign|%s|%s|%d|%s|%v|%d\n",
		r.Campaign.Platform, r.Campaign.Workload, len(r.Campaign.Results), r.Rule, r.Converged, r.StopRuns)
	for i, res := range r.Campaign.Results {
		fmt.Fprintf(h, "run|%d|%d|%d|%q|%q|%d\n",
			i, res.Cycles, res.Instructions, res.Path, res.Outcome, res.Faults)
	}
	for _, s := range r.Snapshots {
		fmt.Fprintf(h, "snap|%d|%d|%d|%d|%d|%d|%v|%v|%v|%016x|%016x|%016x|%016x|%016x|%016x\n",
			s.Batch, s.Runs, s.TotalRuns, s.Quarantined, s.BlockSize, s.Discarded,
			s.GateChecked, s.Fitted, s.Done,
			fbits(s.Fit.Mu), fbits(s.Fit.Beta), fbits(s.Delta),
			fbits(s.RefProb), fbits(s.PWCET), fbits(s.PWCETRelDelta))
		if s.GateChecked {
			hashTest(h, s.Gate.Independence)
			hashTest(h, s.Gate.IdentDist)
			fmt.Fprintf(h, "gate|%v\n", s.Gate.Pass)
		}
		if s.QGateChecked {
			hashQGate(h, &s.QGate)
		}
		hashOutcomes(h, s.Outcomes)
	}
	fmt.Fprintf(h, "faults|%d|%d|%d\n", r.Faults.Total, r.Faults.Clean, r.Faults.Injected)
	hashOutcomes(h, r.Faults.ByOutcome)
	// Mitigation-era fields hash only when present, so mitigation-off
	// reports keep the digests of builds that predate them.
	if len(r.Faults.Mitigated) > 0 {
		fmt.Fprint(h, "mitigated\n")
		hashOutcomes(h, r.Faults.Mitigated)
	}
	if r.Faults.ClampedRuns > 0 {
		fmt.Fprintf(h, "clamped|%d\n", r.Faults.ClampedRuns)
	}
	if r.Analysis != nil {
		fmt.Fprintf(h, "analysis|%d|%d|%d\n", r.Analysis.BlockSize, len(r.Analysis.Paths), len(r.Analysis.SmallPaths))
		for _, p := range r.Analysis.Paths {
			fmt.Fprintf(h, "path|%q|%d|%s|%016x|%016x|%016x|%d|%d|%v\n",
				p.Path, p.N, p.Method, fbits(p.Fit.Mu), fbits(p.Fit.Beta),
				fbits(p.GEVXi), p.Maxima, p.Discarded, p.Pooled)
			if p.QGate != nil {
				hashQGate(h, p.QGate)
			}
		}
		for _, sp := range r.Analysis.SmallPaths {
			fmt.Fprintf(h, "small|%q|%d|%016x\n", sp.Path, sp.N, fbits(sp.HWM))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fbits hashes a float by bit pattern; NaN payloads produced by this
// codebase are the single canonical quiet NaN, so bit-hashing is stable.
func fbits(x float64) uint64 { return math.Float64bits(x) }

func hashTest(w io.Writer, t stats.TestResult) {
	fmt.Fprintf(w, "test|%q|%016x|%016x|%016x|%v|%d\n",
		t.Name, fbits(t.Statistic), fbits(t.PValue), fbits(t.Alpha), t.Rejected, t.DF)
}

func hashQGate(w io.Writer, g *stats.QuantileGateReport) {
	fmt.Fprintf(w, "qgate|%d|%d|%016x|%016x|%016x|%016x|%d|%v|%016x|%016x|%016x|%016x\n",
		g.NA, g.NB, fbits(g.Alpha), fbits(g.PriorEffect), fbits(g.RhoA), fbits(g.RhoB),
		g.Leaks, g.Pass, fbits(g.MaxAbsZ), fbits(g.LeakProbability),
		fbits(g.EffectCycles), fbits(g.EffectDecile))
	for _, d := range g.Deciles {
		fmt.Fprintf(w, "qdecile|%016x|%016x|%016x|%016x|%016x|%016x|%016x|%v|%016x|%016x\n",
			fbits(d.Q), fbits(d.Diff), fbits(d.SE), fbits(d.Lo), fbits(d.Hi),
			fbits(d.Z), fbits(d.P), d.Leak, fbits(d.BF10), fbits(d.Posterior))
	}
}

func hashOutcomes(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "outcome|%q|%d\n", k, m[k])
	}
}
