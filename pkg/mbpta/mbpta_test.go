package mbpta_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro/pkg/mbpta"
)

// smallApp returns a reduced TVCA for fast API tests.
func smallApp(t *testing.T) *mbpta.TVCA {
	t.Helper()
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestEndToEndFlow(t *testing.T) {
	// The README quickstart flow, through the public API only.
	app := smallApp(t)
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(600), mbpta.WithBaseSeed(42), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	set := rep.TraceSet()
	if len(set.Samples) != 600 {
		t.Fatalf("%d samples", len(set.Samples))
	}
	gate, err := mbpta.CheckIID(set.Times(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !gate.Pass {
		t.Fatalf("gate failed:\n%s", gate)
	}
	res, err := mbpta.NewAnalyzer(mbpta.Options{}).AnalyzeByPath(set.TimesByPath())
	if err != nil {
		t.Fatal(err)
	}
	b6, err := res.PWCET(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	b12, err := res.PWCET(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !(b6 < b12) {
		t.Errorf("pWCET(1e-6)=%v >= pWCET(1e-12)=%v", b6, b12)
	}
}

func TestPlatformConfigsDiffer(t *testing.T) {
	det, rnd := mbpta.DETPlatform(), mbpta.RANDPlatform()
	if det.Name == rnd.Name {
		t.Error("platform names collide")
	}
	if det.IL1.Placement == rnd.IL1.Placement {
		t.Error("placement policies identical")
	}
}

func TestMBTABaseline(t *testing.T) {
	r, err := mbpta.AnalyzeMBTA([]float64{100, 200, 150})
	if err != nil {
		t.Fatal(err)
	}
	if r.HWM != 200 {
		t.Errorf("HWM = %v", r.HWM)
	}
	w, err := r.WCET(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if w != 300 {
		t.Errorf("WCET(+50%%) = %v", w)
	}
}

func TestErrorSentinelsExported(t *testing.T) {
	// An autocorrelated trace must surface ErrIIDRejected through the
	// facade.
	times := make([]float64, 1000)
	v := 0.0
	for i := range times {
		v = 0.95*v + float64(i%7)
		times[i] = 1000 + v
	}
	_, err := mbpta.NewAnalyzer(mbpta.Options{}).Analyze(times)
	if !errors.Is(err, mbpta.ErrIIDRejected) && !errors.Is(err, mbpta.ErrHeavyTail) {
		t.Errorf("err = %v, want a public sentinel", err)
	}
}

func TestTracePersistenceRoundTrip(t *testing.T) {
	set := &mbpta.TraceSet{
		Platform: "RAND", Workload: "demo",
		Samples: []mbpta.TraceSample{{Run: 0, Cycles: 10, Path: "p"}},
	}
	var buf bytes.Buffer
	if err := mbpta.WriteTraceCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := mbpta.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Samples[0] != set.Samples[0] {
		t.Error("CSV round trip lost data")
	}
	buf.Reset()
	if err := mbpta.WriteTraceJSON(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err = mbpta.ReadTraceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform != "RAND" || got.Samples[0].Cycles != 10 {
		t.Error("JSON round trip lost data")
	}
}

func TestRenderHelpers(t *testing.T) {
	var buf bytes.Buffer
	err := mbpta.RenderBarChart(&buf, "demo", 20, []mbpta.ReportBar{{Label: "a", Value: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "demo") {
		t.Error("bar chart missing title")
	}
	buf.Reset()
	err = mbpta.RenderExceedancePlot(&buf, "curve", 1e-9, 40, 8,
		mbpta.ReportSeries{Times: []float64{1, 2}, Probs: []float64{0.5, 0.01}, Name: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "curve") {
		t.Error("plot missing title")
	}
}

func TestCustomWorkloadViaBuilder(t *testing.T) {
	// A minimal custom workload exercised through the exported builder
	// and machine types.
	b := mbpta.NewProgramBuilder("tiny", 0)
	b.Li(1, 40)
	b.Li(2, 2)
	b.Add(3, 1, 2)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mbpta.NewMachine(prog, mbpta.NewMemory())
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	if m.Reg(3) != 42 {
		t.Errorf("r3 = %d", m.Reg(3))
	}
}

func TestGumbelExported(t *testing.T) {
	g := mbpta.Gumbel{Mu: 100, Beta: 10}
	x, err := g.QuantileSF(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if x <= 100 {
		t.Errorf("deep quantile %v", x)
	}
}

func TestCampaignParallelismInvariance(t *testing.T) {
	app := smallApp(t)
	a, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(20), mbpta.WithBaseSeed(3), mbpta.WithParallelism(1), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	b, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(20), mbpta.WithBaseSeed(3), mbpta.WithParallelism(8), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Campaign.Results {
		if a.Campaign.Results[i] != b.Campaign.Results[i] {
			t.Fatalf("run %d differs with parallelism", i)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ with parallelism")
	}
}

func TestExtendedGateWrapper(t *testing.T) {
	times := make([]float64, 600)
	state := uint64(7)
	for i := range times {
		state = state*6364136223846793005 + 1442695040888963407
		times[i] = 1000 + float64(state>>40)/float64(1<<18)
	}
	rep, err := mbpta.CheckIIDExtended(times, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("extended gate failed on iid data: %+v", rep)
	}
}

func TestCVDiagnosticsWrapper(t *testing.T) {
	times := make([]float64, 2000)
	state := uint64(3)
	for i := range times {
		state = state*6364136223846793005 + 1442695040888963407
		times[i] = float64(state >> 40)
	}
	pts, err := mbpta.ExponentialityCV(times, 0.5, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("empty ladder")
	}
	if _, err := mbpta.CVVerdict(pts, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestPerTaskWrappers(t *testing.T) {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 4
	cfg.Sensors = 8
	cfg.Taps = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := mbpta.PerTaskCampaign(mbpta.RANDPlatform(), app,
		mbpta.WithRuns(10), mbpta.WithBaseSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	worst, err := mbpta.PerTaskWorstCampaign(mbpta.RANDPlatform(), app,
		mbpta.WithRuns(10), mbpta.WithBaseSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	// 4 sensor jobs per run vs 1 worst sample per run.
	if len(all["sensor-acq"]) != 40 || len(worst["sensor-acq"]) != 10 {
		t.Errorf("campaign sizes: all=%d worst=%d",
			len(all["sensor-acq"]), len(worst["sensor-acq"]))
	}
	// The worst sample of a run upper-bounds that run's jobs.
	if worst["sensor-acq"][0] < all["sensor-acq"][0] {
		t.Error("worst sample below first job")
	}
}

func TestMulticoreWrapper(t *testing.T) {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 4
	cfg.Sensors = 8
	cfg.Taps = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := mbpta.NewMulticore(mbpta.RANDPlatform(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mc.Run(app, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Measured.Cycles == 0 {
		t.Error("empty multicore measurement")
	}
}

func TestTailMethodsExported(t *testing.T) {
	times := make([]float64, 3000)
	state := uint64(11)
	for i := range times {
		state = state*6364136223846793005 + 1442695040888963407
		times[i] = 10000 + float64(state>>44)
	}
	for _, m := range []mbpta.TailMethod{mbpta.MethodBlockMaxima, mbpta.MethodPoT} {
		res, err := mbpta.NewAnalyzer(mbpta.Options{Method: m}).Analyze(times)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if _, err := res.PWCET(1e-9); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestBootstrapExported(t *testing.T) {
	times := make([]float64, 2000)
	state := uint64(13)
	for i := range times {
		state = state*6364136223846793005 + 1442695040888963407
		times[i] = 5000 + float64(state>>44)
	}
	an := mbpta.NewAnalyzer(mbpta.Options{})
	ci, err := an.BootstrapPWCET(times, 1e-9, 100, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo < ci.Hi) {
		t.Errorf("degenerate CI %+v", ci)
	}
}
