package mbpta_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/pkg/mbpta"
)

func TestCampaignBatchAndParallelismInvariance(t *testing.T) {
	// The seed pipeline and the streaming engine must measure the exact
	// same series: run i always uses the same derived seed, whatever
	// the batch size or parallelism.
	app := smallApp(t)
	ref, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(40), mbpta.WithBaseSeed(42),
		mbpta.WithParallelism(1), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	legacy := ref.TraceSet()
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(40),
		mbpta.WithBaseSeed(42),
		mbpta.WithBatchSize(7),
		mbpta.WithParallelism(3),
		mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.StopRuns != 40 {
		t.Fatalf("fixed-runs campaign: converged=%v stop=%d", rep.Converged, rep.StopRuns)
	}
	set := rep.TraceSet()
	if len(set.Samples) != len(legacy.Samples) {
		t.Fatalf("%d vs %d samples", len(set.Samples), len(legacy.Samples))
	}
	for i := range set.Samples {
		if set.Samples[i] != legacy.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, set.Samples[i], legacy.Samples[i])
		}
	}
}

func TestCampaignAnalysisMatchesSeedPipeline(t *testing.T) {
	// WithStopRule(FixedRuns(n)) must reproduce the seed pipeline's
	// estimates exactly: same seeds, same series, same fit.
	app := smallApp(t)
	const runs = 600
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs),
		mbpta.WithBaseSeed(42),
		mbpta.WithStopRule(mbpta.FixedRuns(runs)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Analysis == nil {
		t.Fatal("nil analysis")
	}
	mrep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs), mbpta.WithBaseSeed(42), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	want, err := mbpta.NewAnalyzer(mbpta.Options{}).AnalyzeByPath(mrep.TraceSet().TimesByPath())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{1e-6, 1e-12} {
		got, err := rep.Analysis.PWCET(q)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := want.PWCET(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Errorf("pWCET(%g): streaming %v != seed pipeline %v", q, got, ref)
		}
	}
	if len(rep.Snapshots) == 0 {
		t.Error("no snapshots recorded")
	}
}

func TestCampaignProgressAndSnapshots(t *testing.T) {
	app := smallApp(t)
	var calls int
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(30),
		mbpta.WithBaseSeed(5),
		mbpta.WithBatchSize(10),
		mbpta.WithProgress(func(p mbpta.Progress) {
			if p.Batch != calls {
				t.Errorf("batch %d delivered out of order (call %d)", p.Batch, calls)
			}
			calls++
		}),
		mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(rep.Snapshots) != 3 {
		t.Fatalf("progress calls=%d snapshots=%d, want 3", calls, len(rep.Snapshots))
	}
	last := rep.Snapshots[len(rep.Snapshots)-1]
	if last.Runs != 30 || !last.GateChecked {
		t.Errorf("last snapshot %+v", last)
	}
}

func TestCampaignCanceled(t *testing.T) {
	app := smallApp(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	_, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
		mbpta.WithRuns(100000),
		mbpta.WithBatchSize(10),
		mbpta.WithProgress(func(mbpta.Progress) { cancel() }))
	if !errors.Is(err, mbpta.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v does not match context.Canceled", err)
	}
	for i := 0; runtime.NumGoroutine() > before; i++ {
		if i >= 50 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCampaignNotConverged(t *testing.T) {
	// An unsatisfiable convergence rule must exhaust the budget and
	// surface ErrNotConverged while still returning the report.
	app := smallApp(t)
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(20),
		mbpta.WithBatchSize(10),
		mbpta.WithStopRule(mbpta.PWCETDelta(1e-12, 1e-9, 50)),
		mbpta.MeasureOnly())
	if !errors.Is(err, mbpta.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if rep == nil || rep.Converged || len(rep.Campaign.Results) != 20 {
		t.Fatalf("report %+v", rep)
	}
}

// trendingWorkload runs a loop whose iteration count grows with the
// run index — a blatant trend the identical-distribution test must
// reject, whatever the platform's jitter.
type trendingWorkload struct{}

func (trendingWorkload) Name() string { return "trending" }
func (trendingWorkload) Prepare(run int) (*mbpta.Machine, error) {
	b := mbpta.NewProgramBuilder("trending", 0x1000)
	b.Li(1, 0)
	b.Li(2, int32(10+5*run))
	b.Label("loop")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return mbpta.NewMachine(prog, mbpta.NewMemory()), nil
}
func (trendingWorkload) PathOf(*mbpta.Machine) string { return "" }

func TestCampaignIIDGateFailed(t *testing.T) {
	// A trending series cannot pass the gate; the campaign must surface
	// the sentinel and still hand back the measurements.
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), trendingWorkload{},
		mbpta.WithRuns(100),
		mbpta.WithAnalyzerOptions(mbpta.Options{BlockSize: 10, MinPathRuns: 50}))
	if !errors.Is(err, mbpta.ErrIIDGateFailed) {
		t.Fatalf("err = %v, want ErrIIDGateFailed", err)
	}
	if !errors.Is(err, mbpta.ErrIIDRejected) {
		t.Errorf("v2 sentinel must remain compatible with ErrIIDRejected: %v", err)
	}
	if rep == nil || rep.Analysis != nil || len(rep.Campaign.Results) != 100 {
		t.Fatal("gate failure lost the measured campaign")
	}
	// MeasureOnly sidesteps the gate for trace collection (e.g. the DET
	// baseline, which MBPTA cannot analyze).
	app := smallApp(t)
	if _, err := mbpta.Campaign(context.Background(), mbpta.DETPlatform(), app,
		mbpta.WithRuns(30), mbpta.WithBaseSeed(8), mbpta.MeasureOnly()); err != nil {
		t.Fatalf("MeasureOnly on DET: %v", err)
	}
}

func TestCampaignConvergesBeforeBudget(t *testing.T) {
	// The point of the engine: a TVCA RAND campaign stops before the
	// budget with a pWCET estimate close to the full-budget value.
	app := smallApp(t)
	const budget = 1500
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(budget),
		mbpta.WithBaseSeed(42),
		mbpta.WithBatchSize(250),
		mbpta.WithStopRule(mbpta.PWCETDelta(1e-12, 0.02, 2)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged || rep.StopRuns >= budget {
		t.Fatalf("no early stop: converged=%v at %d/%d", rep.Converged, rep.StopRuns, budget)
	}
	if rep.Analysis == nil {
		t.Fatal("nil analysis")
	}
}

func TestStopRuleConstructorsExported(t *testing.T) {
	for _, r := range []mbpta.StopRule{
		mbpta.FixedRuns(10),
		mbpta.PWCETDelta(0, 0, 0),
		mbpta.CRPSConverged(0, 0),
		mbpta.MaxWallClock(time.Second),
		mbpta.AnyRule(mbpta.FixedRuns(1), mbpta.MaxWallClock(time.Hour)),
	} {
		if r.Name() == "" {
			t.Error("rule with empty name")
		}
	}
}

func TestCampaignFaultInjectionRateZeroIdentity(t *testing.T) {
	// WithFaultInjection at rate 0 must not change a single bit of the
	// measured series.
	app := smallApp(t)
	ref, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(30), mbpta.WithBaseSeed(13), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(30), mbpta.WithBaseSeed(13), mbpta.MeasureOnly(),
		mbpta.WithFaultInjection(mbpta.FaultConfig{Rate: 0}))
	if err != nil {
		t.Fatal(err)
	}
	a, b := ref.Campaign.Results, rep.Campaign.Results
	if len(a) != len(b) {
		t.Fatalf("%d vs %d runs", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if rep.Faults.Quarantined() != 0 || rep.Faults.Injected != 0 {
		t.Errorf("rate 0 injected something: %+v", rep.Faults)
	}
}

func TestCampaignFaultInjectionQuarantines(t *testing.T) {
	// A faulted campaign still analyzes, but only over clean runs; the
	// quarantine tally is visible in the report and in every snapshot.
	app := smallApp(t)
	const runs = 600
	var last mbpta.Progress
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs), mbpta.WithBaseSeed(42),
		// The gate verdict itself is not under test (it can be marginal
		// on a reduced-frames campaign); the quarantine accounting is.
		mbpta.WithAnalyzerOptions(mbpta.Options{AllowIIDFailure: true}),
		mbpta.WithFaultInjection(mbpta.FaultConfig{Rate: 0.3}),
		mbpta.WithProgress(func(p mbpta.Progress) { last = p }))
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Faults
	if fs.Total != runs {
		t.Fatalf("summary total %d, want %d", fs.Total, runs)
	}
	if fs.Quarantined() == 0 {
		t.Fatal("rate 0.3 over 600 runs quarantined nothing")
	}
	// Quarantined runs never reach the gate or the fit.
	if got := len(rep.Campaign.Times()); got != fs.Clean {
		t.Errorf("measured series has %d entries, want %d clean", got, fs.Clean)
	}
	n := 0
	for _, p := range rep.Analysis.Paths {
		n += p.N
	}
	for _, sp := range rep.Analysis.SmallPaths {
		n += sp.N
	}
	if n != fs.Clean {
		t.Errorf("analysis saw %d samples, want %d clean", n, fs.Clean)
	}
	// Progress snapshots carry the outcome tally.
	if last.TotalRuns != runs || last.Quarantined != fs.Quarantined() {
		t.Errorf("snapshot totals %d/%d, want %d/%d",
			last.TotalRuns, last.Quarantined, runs, fs.Quarantined())
	}
	sum := 0
	for _, c := range last.Outcomes {
		sum += c
	}
	if sum != fs.Quarantined() {
		t.Errorf("snapshot outcomes %v sum to %d, want %d", last.Outcomes, sum, fs.Quarantined())
	}
	// The exported trace likewise excludes quarantined runs.
	if got := len(rep.TraceSet().Samples); got != fs.Clean {
		t.Errorf("trace has %d samples, want %d", got, fs.Clean)
	}
}

func TestCampaignFaultConfigValidated(t *testing.T) {
	app := smallApp(t)
	_, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(10), mbpta.MeasureOnly(),
		mbpta.WithFaultInjection(mbpta.FaultConfig{Rate: -1}))
	if err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestMitigationOffFingerprintIdentical(t *testing.T) {
	// The tentpole's bit-identity pledge: spelling out "no mitigation,
	// constant hazard" must produce byte-for-byte the fingerprint of a
	// plain rate-only fault campaign — the mitigation layer is invisible
	// until switched on.
	app := smallApp(t)
	run := func(cfg mbpta.FaultConfig) string {
		t.Helper()
		rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
			mbpta.WithRuns(60), mbpta.WithBaseSeed(42), mbpta.MeasureOnly(),
			mbpta.WithFaultInjection(cfg))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Fingerprint()
	}
	plain := run(mbpta.FaultConfig{Rate: 0.5})
	explicit := run(mbpta.FaultConfig{
		Rate:       0.5,
		Mitigation: mbpta.Mitigation{Kind: mbpta.MitigationNone},
		Hazard:     mbpta.Hazard{Kind: mbpta.HazardConstant},
	})
	if plain != explicit {
		t.Fatalf("explicit none/constant changed the fingerprint:\n%s\n%s", plain, explicit)
	}
	mitigated := run(mbpta.FaultConfig{Rate: 0.5, Mitigation: mbpta.Mitigation{Kind: mbpta.MitigationECC}})
	if mitigated == plain {
		t.Fatal("ECC campaign fingerprint equals the unmitigated one")
	}
}

func TestCampaignMitigatedRunsAnalyzed(t *testing.T) {
	// Mitigated runs carry an outcome yet stay in the measured series:
	// clean count includes them, the trace exports them, and the
	// summary's mitigated tally is a subset of clean.
	app := smallApp(t)
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(300), mbpta.WithBaseSeed(42), mbpta.MeasureOnly(),
		mbpta.WithFaultInjection(mbpta.FaultConfig{
			Rate:       0.5,
			Mitigation: mbpta.Mitigation{Kind: mbpta.MitigationLockstep},
		}))
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Faults
	if fs.MitigatedTotal() == 0 {
		t.Fatal("lockstep at rate 0.5 over 300 runs recovered nothing")
	}
	if fs.Quarantined() != 0 {
		t.Errorf("lockstep quarantined %d runs", fs.Quarantined())
	}
	if got := len(rep.Campaign.Times()); got != fs.Clean {
		t.Errorf("measured series has %d entries, want %d clean", got, fs.Clean)
	}
	if got := len(rep.TraceSet().Samples); got != fs.Clean {
		t.Errorf("trace has %d samples, want %d clean", got, fs.Clean)
	}
	// Lockstep overhead is real: the mitigated campaign's high-water
	// mark exceeds the unmitigated clean baseline's.
	base, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(300), mbpta.WithBaseSeed(42), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	hwm := func(ts []float64) float64 {
		m := 0.0
		for _, v := range ts {
			if v > m {
				m = v
			}
		}
		return m
	}
	if lk, cl := hwm(rep.Campaign.Times()), hwm(base.Campaign.Times()); lk <= cl {
		t.Errorf("lockstep HWM %.0f not above clean HWM %.0f", lk, cl)
	}
}
