package mbpta_test

import (
	"fmt"
	"log"

	"repro/pkg/mbpta"
)

// The complete MBPTA flow on a deterministic synthetic campaign: fit a
// known Gumbel tail and query the pWCET curve.
func Example() {
	// Synthetic execution times with a known per-run tail.
	g := mbpta.Gumbel{Mu: 100000, Beta: 1500}
	times := sampleGumbel(g, 3000)

	gate, err := mbpta.CheckIID(times, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("i.i.d. gate passed:", gate.Pass)

	res, err := mbpta.NewAnalyzer(mbpta.Options{}).Analyze(times)
	if err != nil {
		log.Fatal(err)
	}
	b6, _ := res.PWCET(1e-6)
	b12, _ := res.PWCET(1e-12)
	fmt.Println("pWCET(1e-6) < pWCET(1e-12):", b6 < b12)
	// Output:
	// i.i.d. gate passed: true
	// pWCET(1e-6) < pWCET(1e-12): true
}

// Querying a fitted Gumbel directly.
func ExampleGumbel() {
	g := mbpta.Gumbel{Mu: 1000, Beta: 50}
	x, _ := g.QuantileSF(1e-9)
	fmt.Printf("exceeded with p=1e-9 at %.0f cycles\n", x)
	// Output:
	// exceeded with p=1e-9 at 2036 cycles
}

// Classical MBTA baseline: high watermark plus an engineering margin.
func ExampleAnalyzeMBTA() {
	r, _ := mbpta.AnalyzeMBTA([]float64{980, 1010, 1000})
	w, _ := r.WCET(0.5)
	fmt.Printf("HWM %.0f, +50%% WCET %.0f\n", r.HWM, w)
	// Output:
	// HWM 1010, +50% WCET 1515
}

// Fixed-priority response-time analysis with pWCET budgets.
func ExampleResponseTimes() {
	tasks := mbpta.TVCATasks()
	tasks[0].WCET = 100
	tasks[1].WCET = 150
	tasks[2].WCET = 200
	rts, _ := mbpta.ResponseTimes(tasks, 1000)
	fmt.Println(rts)
	// Output:
	// [100 250 450]
}

// sampleGumbel draws deterministic variates by inversion over an
// equidistributed low-discrepancy sequence perturbed enough to pass the
// independence tests.
func sampleGumbel(g mbpta.Gumbel, n int) []float64 {
	out := make([]float64, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		u := (float64(state>>11) + 0.5) / (1 << 53)
		x, err := g.Quantile(u)
		if err != nil {
			panic(err)
		}
		out[i] = x
	}
	return out
}
