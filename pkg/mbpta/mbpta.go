// Package mbpta is the public API of the MBPTA reproduction: it
// re-exports the analyzer (the paper's measurement-based probabilistic
// timing analysis pipeline), the time-randomized LEON3-class platform
// simulator, the TVCA case-study workload, the classical MBTA baseline
// and the trace/report utilities.
//
// # The v2 campaign engine
//
// Campaign is the entry point: it measures, gates and fits
// incrementally in deterministic batches, and can stop as soon as the
// pWCET estimate converges instead of always paying the paper's fixed
// 3,000 runs:
//
//	app, _ := mbpta.NewTVCA(mbpta.DefaultTVCAConfig())
//	rep, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
//		mbpta.WithRuns(3000),                             // run budget
//		mbpta.WithBaseSeed(42),                           // bit-for-bit reproducible
//		mbpta.WithStopRule(mbpta.PWCETDelta(1e-12, 0.01, 2)),
//		mbpta.WithProgress(func(p mbpta.Progress) { /* per batch */ }))
//	bound, _ := rep.Analysis.PWCET(1e-12)
//
// The full option set:
//
//   - WithRuns: run budget (exact size under FixedRuns, cap otherwise)
//   - WithBaseSeed: seed of the per-run seed derivation
//   - WithParallelism: worker platforms; never changes results
//   - WithBatchSize: runs between stop-rule evaluations
//   - WithStopRule: FixedRuns (paper default), PWCETDelta,
//     CRPSConverged, MaxWallClock, or AnyRule of several
//   - WithProgress: per-batch Snapshot callback
//   - WithAnalyzerOptions: analyzer configuration for refits and the
//     final analysis
//   - WithCoRunners: co-simulate on a multicore board with real
//     co-runner programs contending for the bus and DRAM
//   - WithJournal: crash-safe write-ahead log, resumable via Resume
//   - WithTelemetry: metrics registry + structured event stream
//   - WithFaultInjection, WithRunTimeout, WithRetry, WithSupervision:
//     resilience layers
//   - WithExecutorPool: execute on a shared distributed campaign
//     fabric instead of a private worker pool
//   - MeasureOnly: collect without the final per-path analysis
//
// Campaign's sentinel errors — ErrIIDGateFailed, ErrNotConverged,
// ErrCanceled, ErrDegraded — all work with errors.Is.
//
// # The campaign fabric and the pWCET service
//
// NewFabricPool starts a shared executor pool many concurrent
// campaigns multiplex over (fair lease scheduling, bounded admission,
// optional remote executors); pass it to WithExecutorPool. The merge
// path is bit-identical to local execution: CampaignReport.Fingerprint
// is byte-equal whether a campaign ran single-process, on an
// N-executor fabric, or was journal-resumed.
//
// The pwcetd daemon (cmd/pwcetd) serves campaigns over HTTP;
// ServiceClient is its client, CampaignSpec / CampaignStatus /
// ServiceReport its wire types, and WorkloadSpec + BuiltinWorkloads
// name the workloads a service or remote executor can rebuild.
//
// Everything reachable from here is stable API; the internal packages
// may change layout freely.
package mbpta

import (
	"io"

	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/isa"
	"repro/internal/mbta"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/tvca"
)

// Analysis types (the paper's contribution).
type (
	// Analyzer runs the MBPTA pipeline: i.i.d. gate, block-maxima
	// Gumbel fit, tail diagnostics, per-path pWCET.
	Analyzer = core.Analyzer
	// Options configures the analyzer; the zero value applies the
	// paper's defaults (alpha 0.05, block size 50, PWM fit).
	Options = core.Options
	// Result is a complete analysis with pWCET query methods.
	Result = core.Result
	// PathResult is the per-path portion of a Result.
	PathResult = core.PathResult
	// CurvePoint is one point of the Figure-2 pWCET curve.
	CurvePoint = core.CurvePoint
	// ConvergencePoint is one step of the campaign-size convergence
	// trace.
	ConvergencePoint = core.ConvergencePoint
	// Gumbel is the extreme-value distribution MBPTA fits.
	Gumbel = evt.Gumbel
	// FitMethod selects the Gumbel estimator (PWM, moments, MLE).
	FitMethod = evt.FitMethod
	// IIDReport carries the Ljung-Box + Kolmogorov-Smirnov gate
	// outcome.
	IIDReport = stats.IIDReport
	// TestResult is a single statistical test outcome.
	TestResult = stats.TestResult
	// TailMethod selects block-maxima (paper default) or
	// peaks-over-threshold tail estimation.
	TailMethod = core.TailMethod
	// CI is a bootstrap confidence interval on a pWCET estimate.
	CI = core.CI
	// CVPoint is one point of the MBPTA-CV exponentiality ladder.
	CVPoint = core.CVPoint
	// Summary is the descriptive-statistics block of a PathResult.
	Summary = stats.Summary
	// ECDF is the empirical distribution behind Result.Observed.
	ECDF = stats.ECDF
	// SmallPath records a path observed too rarely to fit (kept as an
	// HWM floor in Result.SmallPaths).
	SmallPath = core.SmallPath
	// TailModel answers per-run exceedance queries (PathResult.Tail).
	TailModel = evt.TailModel
	// PerRunTail is the per-run projection of a block-maxima Gumbel.
	PerRunTail = core.PerRunTail
	// ExceedanceModel is the peaks-over-threshold tail (PathResult.PoT).
	ExceedanceModel = evt.ExceedanceModel
	// GPD is the generalized Pareto tail inside an ExceedanceModel.
	GPD = evt.GPD
	// GEV is the generalized extreme-value fit behind the tail-shape
	// diagnostic.
	GEV = evt.GEV
)

// Tail estimation methods for Options.Method.
const (
	MethodBlockMaxima = core.MethodBlockMaxima
	MethodPoT         = core.MethodPoT
)

// ExponentialityCV computes the MBPTA-CV coefficient-of-variation
// ladder over threshold quantiles [startQ, endQ] — a tail-shape
// diagnostic complementary to the built-in GEV check.
func ExponentialityCV(times []float64, startQ, endQ float64, steps int) ([]CVPoint, error) {
	return core.ExponentialityCV(times, startQ, endQ, steps)
}

// CVVerdict accepts the tail when the final windowFrac of the CV ladder
// is at or below the exponential acceptance band.
func CVVerdict(points []CVPoint, windowFrac float64) (bool, error) {
	return core.CVVerdict(points, windowFrac)
}

// Analyzer errors, for errors.Is.
var (
	ErrIIDRejected  = core.ErrIIDRejected
	ErrHeavyTail    = core.ErrHeavyTail
	ErrInsufficient = core.ErrInsufficient
)

// Fit method names.
const (
	MethodPWM     = evt.MethodPWM
	MethodMoments = evt.MethodMoments
	MethodMLE     = evt.MethodMLE
)

// NewAnalyzer returns an analyzer with opts completed by the paper's
// defaults.
func NewAnalyzer(opts Options) *Analyzer { return core.NewAnalyzer(opts) }

// CheckIID runs the standalone i.i.d. gate (Ljung-Box + two-sample KS)
// on an execution-time series at significance alpha.
// Quantile-gate surface: the nine-decile two-sample comparison and
// timing-leak oracle (see internal/stats).
type (
	// QuantileGateOptions configures the nine-decile gate.
	QuantileGateOptions = stats.QuantileGateOptions
	// QuantileGateReport is the two-layer per-decile verdict.
	QuantileGateReport = stats.QuantileGateReport
	// DecileResult is one decile's comparison result.
	DecileResult = stats.DecileResult
	// QuantileEstimate is a Harrell-Davis quantile estimate with CI.
	QuantileEstimate = stats.QuantileEstimate
)

// CompareQuantiles runs the two-layer decile comparison of two
// run-time samples — the timing-leak oracle primitive.
func CompareQuantiles(a, b []float64, opts QuantileGateOptions) (QuantileGateReport, error) {
	return stats.CompareQuantiles(a, b, opts)
}

// CheckQuantileGate compares the ordered halves of one series — the
// sharper identical-distribution gate.
func CheckQuantileGate(times []float64, opts QuantileGateOptions) (QuantileGateReport, error) {
	return stats.CheckQuantileGate(times, opts)
}

// EstimateQuantile computes a Harrell-Davis quantile estimate with a
// Maritz-Jarrett standard error and confidence interval.
func EstimateQuantile(times []float64, q, confidence float64) (QuantileEstimate, error) {
	return stats.EstimateQuantile(times, q, confidence)
}

func CheckIID(times []float64, alpha float64) (IIDReport, error) {
	return stats.CheckIID(times, alpha)
}

// ExtendedIIDReport adds turning-point randomness and Mann-Kendall
// trend diagnostics to the paper's gate.
type ExtendedIIDReport = stats.ExtendedIIDReport

// CheckIIDExtended applies the full diagnostic battery (Ljung-Box, KS,
// turning-point, Mann-Kendall) at level alpha.
func CheckIIDExtended(times []float64, alpha float64) (ExtendedIIDReport, error) {
	return stats.CheckIIDExtended(times, alpha)
}

// Platform types (the hardware-randomized substrate).
type (
	// PlatformConfig describes a full processor build.
	PlatformConfig = platform.Config
	// Platform is one instantiated board.
	Platform = platform.Platform
	// Workload is a program under analysis.
	Workload = platform.Workload
	// RunResult is one measurement run.
	RunResult = platform.RunResult
	// CampaignResult is an ordered measurement campaign.
	CampaignResult = platform.CampaignResult
	// InterferenceConfig attaches synthetic co-runner bus traffic.
	InterferenceConfig = platform.InterferenceConfig
	// Multicore co-simulates real co-runner programs on the other
	// cores, sharing the bus and DRAM with the measured workload.
	Multicore = platform.Multicore
	// MulticoreResult is one co-simulated measurement.
	MulticoreResult = platform.MulticoreResult
)

// NewMulticore builds a co-simulated multicore platform: the measured
// workload runs on core 0, the co-runners loop on the remaining cores.
func NewMulticore(cfg PlatformConfig, coRunners []Workload) (*Multicore, error) {
	return platform.NewMulticore(cfg, coRunners)
}

// Per-task measurement types.
type (
	// Span names a PC range — one task's body within a program.
	Span = isa.Span
	// TaskAware is a Workload exposing its task spans for per-job
	// execution-time attribution.
	TaskAware = platform.TaskAware
	// JobTimes maps task names to per-job cycle counts of one run.
	JobTimes = platform.JobTimes
	// SchedTask is one periodic task of a fixed-priority set.
	SchedTask = sched.Task
)

// PerTaskCampaign runs a protocol-compliant campaign with per-task
// attribution: each task maps to its per-job execution times across
// all runs. Note that consecutive jobs within one run are correlated
// (shared warm cache state); for per-task MBPTA use
// PerTaskWorstCampaign instead. Of the campaign options only WithRuns
// and WithBaseSeed apply — per-task measurement is a serial,
// instrumentation-heavy mode outside the streaming engine.
func PerTaskCampaign(cfg PlatformConfig, w TaskAware, opts ...CampaignOption) (map[string][]float64, error) {
	c := resolveCampaignConfig(opts)
	return platform.PerTaskCampaign(cfg, w, c.runs, c.seed)
}

// PerTaskWorstCampaign maps each task to its per-run worst job time —
// i.i.d. samples that conservatively cover every activation, the
// per-task MBPTA input. Of the campaign options only WithRuns and
// WithBaseSeed apply; see PerTaskCampaign.
func PerTaskWorstCampaign(cfg PlatformConfig, w TaskAware, opts ...CampaignOption) (map[string][]float64, error) {
	c := resolveCampaignConfig(opts)
	return platform.PerTaskWorstCampaign(cfg, w, c.runs, c.seed)
}

// Adaptive collection (the paper's protocol: measure until the tail
// fit converges).
type (
	// AdaptiveOptions tunes the batch-and-refit collection loop.
	AdaptiveOptions = platform.AdaptiveOptions
	// AdaptiveResult is a campaign collected until convergence.
	AdaptiveResult = platform.AdaptiveResult
)

// AdaptiveCampaign measures w in batches until the CRPS convergence
// criterion allows stopping (or MaxRuns is reached).
func AdaptiveCampaign(cfg PlatformConfig, w Workload, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return platform.AdaptiveCampaign(cfg, w, opts)
}

// ResponseTimes computes classical fixed-priority response-time
// analysis over tasks whose WCET budgets may be pWCET estimates —
// probabilistic schedulability in the style the MBPTA literature
// composes with the paper's analysis.
func ResponseTimes(tasks []SchedTask, frameCycles uint64) ([]uint64, error) {
	return sched.ResponseTimes(tasks, frameCycles)
}

// TVCATasks returns the case study's periodic task set (periods in
// minor frames, priorities: sensor highest).
func TVCATasks() []SchedTask { return tvca.Tasks() }

// DETPlatform returns the deterministic baseline platform (modulo
// placement, LRU, operand-dependent FPU) — the platform classical MBTA
// measures.
func DETPlatform() PlatformConfig { return platform.DET() }

// RANDPlatform returns the MBPTA-compliant time-randomized platform
// (random-modulo placement, random replacement, worst-case-fixed
// FDIV/FSQRT).
func RANDPlatform() PlatformConfig { return platform.RAND() }

// NewPlatform instantiates a board from cfg.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return platform.New(cfg) }

// Workload types.
type (
	// TVCAConfig parametrizes the thrust-vector-control case study.
	TVCAConfig = tvca.Config
	// TVCA is the generated case-study application.
	TVCA = tvca.App
	// Machine is the architectural interpreter state (advanced use:
	// custom workloads implement Workload in terms of it).
	Machine = isa.Machine
	// Memory is the byte-addressable data memory of a Machine.
	Memory = isa.Memory
	// Program is an assembled instruction sequence.
	Program = isa.Program
	// ProgramBuilder is the structured assembler for custom workloads.
	ProgramBuilder = isa.Builder
)

// NewProgramBuilder starts a program named name with its text segment
// linked at codeBase (4-byte aligned).
func NewProgramBuilder(name string, codeBase uint64) *ProgramBuilder {
	return isa.NewBuilder(name, codeBase)
}

// NewMemory returns an empty sparse data memory.
func NewMemory() *Memory { return isa.NewMemory() }

// NewMachine binds an assembled program to a memory.
func NewMachine(prog *Program, mem *Memory) *Machine { return isa.NewMachine(prog, mem) }

// DefaultTVCAConfig returns the reference TVCA parameters.
func DefaultTVCAConfig() TVCAConfig { return tvca.DefaultConfig() }

// NewTVCA generates the case-study application.
func NewTVCA(cfg TVCAConfig) (*TVCA, error) { return tvca.New(cfg) }

// Baseline (classical MBTA) types.
type (
	// MBTAResult is a high-watermark analysis.
	MBTAResult = mbta.Result
)

// AnalyzeMBTA computes the classical high-watermark result.
func AnalyzeMBTA(times []float64) (MBTAResult, error) { return mbta.Analyze(times) }

// Persistence and reporting.
type (
	// TraceSet is a persisted measurement campaign.
	TraceSet = trace.Set
	// TraceSample is one persisted run.
	TraceSample = trace.Sample
	// ReportSeries is one line of an exceedance plot.
	ReportSeries = report.Series
	// ReportBar is one bar of a comparison chart.
	ReportBar = report.Bar
)

// RenderBarChart renders labelled horizontal bars (the Figure-3 style
// comparison) to w.
func RenderBarChart(w io.Writer, title string, width int, bars []ReportBar) error {
	return report.BarChart(w, title, width, bars)
}

// RenderExceedancePlot renders one or more exceedance-probability
// series on a log-scale Y axis (the Figure-2 style pWCET plot) to w.
func RenderExceedancePlot(w io.Writer, title string, floor float64, width, height int, series ...ReportSeries) error {
	return report.ExceedancePlot(w, title, floor, width, height, series...)
}

// WriteTraceCSV / ReadTraceCSV persist campaigns as CSV.
func WriteTraceCSV(w io.Writer, s *TraceSet) error { return trace.WriteCSV(w, s) }

// ReadTraceCSV parses the WriteTraceCSV format.
func ReadTraceCSV(r io.Reader) (*TraceSet, error) { return trace.ReadCSV(r) }

// WriteTraceJSON / ReadTraceJSON persist campaigns as JSON.
func WriteTraceJSON(w io.Writer, s *TraceSet) error { return trace.WriteJSON(w, s) }

// ReadTraceJSON parses the WriteTraceJSON format.
func ReadTraceJSON(r io.Reader) (*TraceSet, error) { return trace.ReadJSON(r) }
