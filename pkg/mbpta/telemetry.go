package mbpta

import (
	"io"

	"repro/internal/report"
	"repro/internal/telemetry"
)

// Telemetry types re-exported on the v2 surface. A *Telemetry registry
// is created with NewTelemetry, passed to a campaign via WithTelemetry,
// and observed through Snapshot/WriteProm, attached event sinks, or an
// HTTP exposition server (ServeTelemetry).
type (
	// Telemetry is a metrics/event registry (nil = disabled).
	Telemetry = telemetry.Registry
	// TelemetryEvent is one structured campaign event.
	TelemetryEvent = telemetry.Event
	// TelemetryField is one event payload entry.
	TelemetryField = telemetry.Field
	// TelemetrySink consumes emitted events.
	TelemetrySink = telemetry.EventSink
	// TelemetryRing retains the most recent events in memory.
	TelemetryRing = telemetry.RingSink
	// TelemetryJSONL streams events as JSON lines.
	TelemetryJSONL = telemetry.JSONLSink
	// TelemetryServer is a running /metrics exposition endpoint.
	TelemetryServer = telemetry.Server
)

// NewTelemetry returns an empty telemetry registry.
func NewTelemetry() *Telemetry { return telemetry.New() }

// NewTelemetryRing returns an in-memory sink keeping the last capacity
// events (capacity < 1 selects 256). Attach it to a registry with
// reg.Attach.
func NewTelemetryRing(capacity int) *TelemetryRing { return telemetry.NewRingSink(capacity) }

// NewTelemetryJSONL returns a sink writing each event as one JSON line
// to w. Call Flush once the campaign ends.
func NewTelemetryJSONL(w io.Writer) *TelemetryJSONL { return telemetry.NewJSONLSink(w) }

// ReadTelemetryEvents parses a JSON-lines event stream back into
// events — the inverse of NewTelemetryJSONL.
func ReadTelemetryEvents(r io.Reader) ([]TelemetryEvent, error) {
	return telemetry.ReadEvents(r)
}

// ServeTelemetry starts an HTTP exposition server for reg on addr
// (":0" picks a free port): /metrics serves the Prometheus text
// format, /metrics.json the flat snapshot map.
func ServeTelemetry(addr string, reg *Telemetry) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg)
}

// TelemetryTable renders a registry snapshot as an aligned table.
func TelemetryTable(w io.Writer, title string, snap map[string]float64) {
	report.TelemetryTable(w, title, snap)
}
