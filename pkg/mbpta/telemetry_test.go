package mbpta_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/pkg/mbpta"
)

// teleCampaign runs a telemetry-instrumented campaign and returns the
// registry snapshot plus the JSONL-serialized event stream.
func teleCampaign(t *testing.T, parallel int) (map[string]float64, []byte) {
	t.Helper()
	reg := mbpta.NewTelemetry()
	var log bytes.Buffer
	sink := mbpta.NewTelemetryJSONL(&log)
	reg.Attach(sink)
	_, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), smallApp(t),
		mbpta.WithRuns(300),
		mbpta.WithBatchSize(50),
		mbpta.WithBaseSeed(7),
		mbpta.WithParallelism(parallel),
		mbpta.WithTelemetry(reg),
		mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return reg.Snapshot(), log.Bytes()
}

// wallClock reports whether a metric measures the host rather than the
// simulated platform — the only instruments exempt from the
// parallelism-invariance contract (DESIGN.md §11).
func wallClock(name string) bool {
	return name == "campaign_runs_per_sec" ||
		strings.HasPrefix(name, "campaign_batch_seconds") ||
		name == "campaign_run_retries_total" ||
		name == "campaign_run_timeouts_total"
}

// TestTelemetryParallelismInvariance: for a fixed seed, every
// deterministic instrument and the entire event stream (byte for byte)
// must be identical whether the campaign ran on 1 worker or 8.
func TestTelemetryParallelismInvariance(t *testing.T) {
	snap1, log1 := teleCampaign(t, 1)
	snap8, log8 := teleCampaign(t, 8)

	for name, v1 := range snap1 {
		if wallClock(name) {
			continue
		}
		if v8, ok := snap8[name]; !ok || v8 != v1 {
			t.Errorf("metric %s: parallel=1 %v, parallel=8 %v", name, v1, snap8[name])
		}
	}
	for name := range snap8 {
		if _, ok := snap1[name]; !ok && !wallClock(name) {
			t.Errorf("metric %s only exists at parallel=8", name)
		}
	}

	if !bytes.Equal(log1, log8) {
		l1 := strings.Split(string(log1), "\n")
		l8 := strings.Split(string(log8), "\n")
		for i := 0; i < len(l1) && i < len(l8); i++ {
			if l1[i] != l8[i] {
				t.Fatalf("event streams diverge at line %d:\n parallel=1: %s\n parallel=8: %s", i+1, l1[i], l8[i])
			}
		}
		t.Fatalf("event streams differ in length: %d vs %d lines", len(l1), len(l8))
	}

	// Sanity: the stream must actually contain the campaign narrative.
	evs, err := mbpta.ReadTelemetryEvents(bytes.NewReader(log1))
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	if kinds["campaign_start"] != 1 || kinds["campaign_end"] != 1 {
		t.Errorf("campaign_start/end = %d/%d, want 1/1", kinds["campaign_start"], kinds["campaign_end"])
	}
	if kinds["run"] != 300 {
		t.Errorf("run events = %d, want 300", kinds["run"])
	}
	if kinds["batch"] != 6 || kinds["analysis"] != 6 {
		t.Errorf("batch/analysis events = %d/%d, want 6/6", kinds["batch"], kinds["analysis"])
	}
}

// TestTelemetryDisabledBitIdentity: a campaign without telemetry and
// one with it enabled must produce bit-identical measurements — the
// observability layer observes, it never perturbs.
func TestTelemetryDisabledBitIdentity(t *testing.T) {
	app := smallApp(t)
	run := func(opts ...mbpta.CampaignOption) *mbpta.CampaignReport {
		base := []mbpta.CampaignOption{
			mbpta.WithRuns(120),
			mbpta.WithBatchSize(40),
			mbpta.WithBaseSeed(11),
			mbpta.MeasureOnly(),
		}
		rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
			append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	plain := run()
	instrumented := run(mbpta.WithTelemetry(mbpta.NewTelemetry()))

	if len(plain.Campaign.Results) != len(instrumented.Campaign.Results) {
		t.Fatalf("run counts differ: %d vs %d",
			len(plain.Campaign.Results), len(instrumented.Campaign.Results))
	}
	for i := range plain.Campaign.Results {
		if plain.Campaign.Results[i] != instrumented.Campaign.Results[i] {
			t.Fatalf("run %d differs with telemetry enabled:\n %+v\n %+v",
				i, plain.Campaign.Results[i], instrumented.Campaign.Results[i])
		}
	}
}
