package mbpta_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
	"repro/pkg/mbpta"
)

// journalOpts is the shared campaign configuration of the durability
// tests: small enough to run fast, large enough for several barriers.
func journalOpts(extra ...mbpta.CampaignOption) []mbpta.CampaignOption {
	opts := []mbpta.CampaignOption{
		mbpta.WithRuns(120),
		mbpta.WithBatchSize(20),
		mbpta.WithBaseSeed(42),
		mbpta.WithParallelism(3),
		mbpta.MeasureOnly(),
	}
	return append(opts, extra...)
}

// campaignWithEvents runs fn with a telemetry registry streaming JSONL
// into a buffer and returns the report, the error, and the event bytes.
func campaignWithEvents(t *testing.T, fn func(reg *mbpta.Telemetry) (*mbpta.CampaignReport, error)) (*mbpta.CampaignReport, []byte, error) {
	t.Helper()
	reg := mbpta.NewTelemetry()
	var buf bytes.Buffer
	sink := mbpta.NewTelemetryJSONL(&buf)
	reg.Attach(sink)
	rep, err := fn(reg)
	if ferr := sink.Flush(); ferr != nil {
		t.Fatalf("flush telemetry: %v", ferr)
	}
	return rep, buf.Bytes(), err
}

// truncateCopy writes the first n bytes of src to a new file —
// simulating a campaign killed at exactly that journal offset.
func truncateCopy(t *testing.T, src string, n int64) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if n > int64(len(data)) {
		t.Fatalf("truncateCopy: offset %d past end %d", n, len(data))
	}
	dst := filepath.Join(t.TempDir(), "killed.wal")
	if err := os.WriteFile(dst, data[:n], 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestJournalCrashResumeBitIdentical is the durability invariant:
// a journaled campaign killed at any batch boundary (and at a torn
// write inside a record) and resumed must produce a report fingerprint
// and a telemetry JSONL stream byte-identical to an uninterrupted
// campaign's.
func TestJournalCrashResumeBitIdentical(t *testing.T) {
	app := smallApp(t)

	refRep, refEvents, refErr := campaignWithEvents(t, func(reg *mbpta.Telemetry) (*mbpta.CampaignReport, error) {
		return mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
			journalOpts(mbpta.WithTelemetry(reg))...)
	})
	if refErr != nil {
		t.Fatal(refErr)
	}
	refFP := refRep.Fingerprint()

	// A journaled campaign run to completion must already be
	// bit-identical to the unjournaled reference.
	journal := filepath.Join(t.TempDir(), "campaign.wal")
	fullRep, fullEvents, fullErr := campaignWithEvents(t, func(reg *mbpta.Telemetry) (*mbpta.CampaignReport, error) {
		return mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
			journalOpts(mbpta.WithTelemetry(reg), mbpta.WithJournal(journal))...)
	})
	if fullErr != nil {
		t.Fatal(fullErr)
	}
	if got := fullRep.Fingerprint(); got != refFP {
		t.Fatalf("journaled campaign fingerprint diverges from unjournaled:\n got %s\nwant %s", got, refFP)
	}
	if !bytes.Equal(fullEvents, refEvents) {
		t.Fatal("journaled campaign telemetry JSONL diverges from unjournaled")
	}

	rec, err := wal.Recover(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Checkpoints) != 6 {
		t.Fatalf("%d checkpoints journaled, want 6", len(rec.Checkpoints))
	}

	// Kill points: after the first, a middle, and the last-but-one
	// barrier fsync (clean truncations), plus a torn write 3 bytes into
	// the record that follows a checkpoint (recovery must truncate back
	// to that checkpoint and still resume bit-identically).
	marks := rec.Checkpoints
	kills := []struct {
		name string
		off  int64
	}{
		{"after-first-barrier", marks[0].End},
		{"after-middle-barrier", marks[2].End},
		{"after-last-but-one-barrier", marks[4].End},
		{"torn-record-tail", marks[1].End + 3},
	}
	for _, kp := range kills {
		t.Run(kp.name, func(t *testing.T) {
			killed := truncateCopy(t, journal, kp.off)
			rep, events, err := campaignWithEvents(t, func(reg *mbpta.Telemetry) (*mbpta.CampaignReport, error) {
				return mbpta.Resume(context.Background(), mbpta.RANDPlatform(), app, killed,
					journalOpts(mbpta.WithTelemetry(reg))...)
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := rep.Fingerprint(); got != refFP {
				t.Fatalf("resumed fingerprint diverges:\n got %s\nwant %s", got, refFP)
			}
			if !bytes.Equal(events, refEvents) {
				t.Fatal("resumed telemetry JSONL diverges from uninterrupted campaign")
			}
			// The repaired journal must now itself be complete and valid.
			rec2, err := wal.Recover(killed)
			if err != nil {
				t.Fatal(err)
			}
			if len(rec2.Runs) != 120 || rec2.Checkpoint == nil || rec2.Checkpoint.Runs != 120 {
				t.Fatalf("resumed journal incomplete: %d runs, checkpoint %+v", len(rec2.Runs), rec2.Checkpoint)
			}
		})
	}
}

// TestJournalResumeBeforeFirstBarrier kills the campaign before any
// checkpoint exists: resume must start from scratch and still match.
func TestJournalResumeBeforeFirstBarrier(t *testing.T) {
	app := smallApp(t)
	ref, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app, journalOpts()...)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "campaign.wal")
	if _, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		journalOpts(mbpta.WithJournal(journal))...); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Cut inside the first batch's run records, before the first
	// checkpoint: recovery keeps no runs.
	killed := truncateCopy(t, journal, rec.Checkpoints[0].End/2)
	rep, err := mbpta.Resume(context.Background(), mbpta.RANDPlatform(), app, killed, journalOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("resume-from-scratch fingerprint diverges:\n got %s\nwant %s", got, want)
	}
}

// TestJournalResumeWithStopRule crashes a convergence-driven campaign
// before its stop rule fires; the restored rule state must make the
// resumed campaign stop at the same batch with identical results.
func TestJournalResumeWithStopRule(t *testing.T) {
	app := smallApp(t)
	opts := func(extra ...mbpta.CampaignOption) []mbpta.CampaignOption {
		o := []mbpta.CampaignOption{
			mbpta.WithRuns(300),
			mbpta.WithBatchSize(25),
			mbpta.WithBaseSeed(7),
			mbpta.WithAnalyzerOptions(mbpta.Options{BlockSize: 10}),
			mbpta.WithStopRule(mbpta.CRPSConverged(1e3, 3)),
			mbpta.MeasureOnly(),
		}
		return append(o, extra...)
	}
	ref, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged || ref.StopRuns >= 300 {
		t.Fatalf("reference campaign did not stop early: converged=%v runs=%d", ref.Converged, ref.StopRuns)
	}

	journal := filepath.Join(t.TempDir(), "campaign.wal")
	if _, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		opts(mbpta.WithJournal(journal))...); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Checkpoints) < 2 {
		t.Fatalf("%d checkpoints, need >= 2 to kill mid-campaign", len(rec.Checkpoints))
	}
	// Kill one barrier before the stop point: the resumed rule must
	// carry its convergence streak across the restore.
	killed := truncateCopy(t, journal, rec.Checkpoints[len(rec.Checkpoints)-2].End)
	rep, err := mbpta.Resume(context.Background(), mbpta.RANDPlatform(), app, killed, opts()...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("stop-rule resume fingerprint diverges:\n got %s\nwant %s", got, want)
	}
	if rep.StopRuns != ref.StopRuns {
		t.Fatalf("resumed campaign stopped at %d runs, reference at %d", rep.StopRuns, ref.StopRuns)
	}
}

// TestJournalResumeCompleted resumes a journal whose campaign already
// finished: no runs execute, and the report is re-derived bit-identical.
func TestJournalResumeCompleted(t *testing.T) {
	app := smallApp(t)
	journal := filepath.Join(t.TempDir(), "campaign.wal")
	ref, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		journalOpts(mbpta.WithJournal(journal))...)
	if err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mbpta.Resume(context.Background(), mbpta.RANDPlatform(), app, journal, journalOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rep.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("completed-journal resume diverges:\n got %s\nwant %s", got, want)
	}
	after, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size() {
		t.Fatalf("resuming a completed journal grew it: %d -> %d bytes", before.Size(), after.Size())
	}
}

// TestResumeRejectsMismatchedConfig: a journal replayed against a
// different campaign configuration would silently break bit-identity,
// so it must be refused.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	app := smallApp(t)
	journal := filepath.Join(t.TempDir(), "campaign.wal")
	if _, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		journalOpts(mbpta.WithJournal(journal))...); err != nil {
		t.Fatal(err)
	}
	_, err := mbpta.Resume(context.Background(), mbpta.RANDPlatform(), app, journal,
		mbpta.WithRuns(120), mbpta.WithBatchSize(20), mbpta.WithBaseSeed(43), mbpta.MeasureOnly())
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("mismatched base seed accepted: %v", err)
	}
}

// TestResumeCorruptJournal: a journal with a destroyed identity record
// is unrecoverable and must fail naming the bad offset.
func TestResumeCorruptJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.wal")
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := mbpta.Resume(context.Background(), mbpta.RANDPlatform(), smallApp(t), path, journalOpts()...)
	if err == nil || !mbpta.IsJournalCorrupt(err) {
		t.Fatalf("corrupt journal not reported as such: %v", err)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("corruption error does not name an offset: %v", err)
	}
}

// panickyApp wraps the TVCA workload with a worker fault: Prepare
// panics on every run >= failFrom. Delegation keeps runs below the
// fault bit-identical to the plain workload, and Name matches so a
// repaired campaign can resume the same journal.
type panickyApp struct {
	app      *mbpta.TVCA
	failFrom int
}

func (p *panickyApp) Name() string { return p.app.Name() }
func (p *panickyApp) Prepare(run int) (*mbpta.Machine, error) {
	if run >= p.failFrom {
		panic("simulated worker fault")
	}
	return p.app.Prepare(run)
}
func (p *panickyApp) PathOf(m *mbpta.Machine) string { return p.app.PathOf(m) }

// TestCampaignDegradedThenResumed: a campaign whose worker always
// panics must terminate with ErrDegraded and a valid partial report;
// resuming its journal with a repaired workload must then complete
// bit-identically to a never-faulty campaign.
func TestCampaignDegradedThenResumed(t *testing.T) {
	app := smallApp(t)
	ref, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app, journalOpts()...)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "campaign.wal")
	broken := &panickyApp{app: app, failFrom: 47}
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), broken,
		journalOpts(
			mbpta.WithJournal(journal),
			mbpta.WithSupervision(2, time.Millisecond))...)
	if !errors.Is(err, mbpta.ErrDegraded) {
		t.Fatalf("always-panicking worker: got %v, want ErrDegraded", err)
	}
	if rep == nil || rep.Campaign == nil {
		t.Fatal("degraded campaign returned no partial report")
	}
	if n := len(rep.Campaign.Results); n == 0 || n > 47 {
		t.Fatalf("degraded partial has %d runs, want 1..47", n)
	}
	for i, r := range rep.Campaign.Results {
		if r != ref.Campaign.Results[i] {
			t.Fatalf("degraded partial run %d differs from reference: %+v vs %+v", i, r, ref.Campaign.Results[i])
		}
	}
	if rep.StopRuns != len(rep.Campaign.Results) {
		t.Fatalf("StopRuns %d != partial length %d", rep.StopRuns, len(rep.Campaign.Results))
	}

	resumed, err := mbpta.Resume(context.Background(), mbpta.RANDPlatform(), app, journal, journalOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("repair-and-resume fingerprint diverges:\n got %s\nwant %s", got, want)
	}
}

// TestJournalCanceledFlushThenResumed cancels a journaled campaign
// mid-flight; the flushed completed-run prefix must match the journal,
// and resuming must finish bit-identically.
func TestJournalCanceledFlushThenResumed(t *testing.T) {
	app := smallApp(t)
	ref, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app, journalOpts()...)
	if err != nil {
		t.Fatal(err)
	}

	journal := filepath.Join(t.TempDir(), "campaign.wal")
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	rep, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
		journalOpts(
			mbpta.WithJournal(journal),
			mbpta.WithProgress(func(p mbpta.Progress) {
				if seen++; seen == 2 {
					cancel() // cancel during the third batch
				}
			}))...)
	if !errors.Is(err, mbpta.ErrCanceled) {
		t.Fatalf("got %v, want ErrCanceled", err)
	}
	if rep == nil {
		t.Fatal("canceled journaled campaign returned no partial report")
	}
	rec, rerr := wal.Recover(journal)
	if rerr != nil {
		t.Fatal(rerr)
	}
	// The partial report and the journal must agree exactly: every
	// completed run was flushed before returning.
	if len(rec.Runs) != len(rep.Campaign.Results) {
		t.Fatalf("journal has %d runs, partial report %d", len(rec.Runs), len(rep.Campaign.Results))
	}
	if len(rec.Runs) < 40 {
		t.Fatalf("journal has %d runs, want >= 40 (two delivered batches)", len(rec.Runs))
	}

	resumed, err := mbpta.Resume(context.Background(), mbpta.RANDPlatform(), app, journal, journalOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resumed.Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("cancel-and-resume fingerprint diverges:\n got %s\nwant %s", got, want)
	}
}
