package mbpta_test

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/wal"
	"repro/pkg/mbpta"
)

// specApp builds the reduced TVCA through the fabric workload registry,
// so the same workload instance is executable locally, on the
// in-process fabric, and on remote executors (spec-backed).
func specApp(t *testing.T) mbpta.Workload {
	t.Helper()
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	params, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fabric.BuiltinRegistry().Build(fabric.WorkloadSpec{Kind: "tvca", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// parityOpts is the fixed campaign spec shared by every execution mode.
func parityOpts(extra ...mbpta.CampaignOption) []mbpta.CampaignOption {
	opts := []mbpta.CampaignOption{
		mbpta.WithRuns(120),
		mbpta.WithBatchSize(20),
		mbpta.WithBaseSeed(42),
		mbpta.MeasureOnly(),
	}
	return append(opts, extra...)
}

// TestFingerprintParityAcrossExecutionModes is the acceptance invariant
// of the campaign fabric: for a fixed spec, the report fingerprint is
// byte-equal across (a) 1-worker in-process execution, (b) the
// N-executor fabric, (c) the fabric served by remote executors with one
// executor killed mid-lease and its lease re-leased, and (d) a
// journaled campaign killed at a barrier and resumed.
func TestFingerprintParityAcrossExecutionModes(t *testing.T) {
	app := specApp(t)
	ctx := context.Background()

	// (a) Single-process, one worker: the ground truth.
	ref, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
		parityOpts(mbpta.WithParallelism(1))...)
	if err != nil {
		t.Fatal(err)
	}
	refFP := ref.Fingerprint()

	// (b) In-process fabric, several executors.
	t.Run("fabric-in-process", func(t *testing.T) {
		pool := fabric.NewPool(fabric.Config{Executors: 4})
		defer pool.Close()
		rep, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
			parityOpts(mbpta.WithExecutorPool(pool))...)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Fingerprint(); got != refFP {
			t.Fatalf("fabric fingerprint diverges:\n got %s\nwant %s", got, refFP)
		}
	})

	// (c) Remote executors, one killed mid-lease.
	t.Run("fabric-remote-killed-executor", func(t *testing.T) {
		pool := fabric.NewPool(fabric.Config{Executors: -1}) // remote-only
		defer pool.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		serveDone := make(chan struct{})
		go func() {
			defer close(serveDone)
			pool.ServeExecutors(ln)
		}()
		defer func() { ln.Close(); <-serveDone }()

		campDone := make(chan error, 1)
		var rep *mbpta.CampaignReport
		go func() {
			var err error
			rep, err = mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
				parityOpts(mbpta.WithExecutorPool(pool))...)
			campDone <- err
		}()

		// The doomed executor: a real executor over a connection with a
		// small write budget, so it dies while streaming its first
		// lease's run records back.
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		doomed := &budgetConn{Conn: conn, budget: 500}
		execDone := make(chan error, 1)
		go func() { execDone <- fabric.ExecuteConn(ctx, doomed, nil) }()
		select {
		case <-execDone: // died on budget exhaustion, lease abandoned
		case <-time.After(30 * time.Second):
			t.Fatal("doomed executor did not die")
		}

		// A healthy executor picks up the re-leased range and the rest.
		execCtx, cancelExec := context.WithCancel(ctx)
		healthyDone := make(chan struct{})
		go func() {
			defer close(healthyDone)
			fabric.RunExecutor(execCtx, ln.Addr().String(), nil)
		}()
		defer func() { cancelExec(); <-healthyDone }()

		select {
		case err := <-campDone:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(60 * time.Second):
			t.Fatal("campaign did not recover from killed executor")
		}
		if got := rep.Fingerprint(); got != refFP {
			t.Fatalf("killed-executor fingerprint diverges:\n got %s\nwant %s", got, refFP)
		}
	})

	// (d) Journaled locally, killed at a mid-campaign barrier, resumed.
	t.Run("journal-resumed", func(t *testing.T) {
		journal := filepath.Join(t.TempDir(), "campaign.wal")
		if _, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
			parityOpts(mbpta.WithParallelism(3), mbpta.WithJournal(journal))...); err != nil {
			t.Fatal(err)
		}
		rec, err := wal.Recover(journal)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Checkpoints) < 3 {
			t.Fatalf("%d checkpoints, want >= 3", len(rec.Checkpoints))
		}
		killed := truncateCopy(t, journal, rec.Checkpoints[2].End)
		rep, err := mbpta.Resume(ctx, mbpta.RANDPlatform(), app, killed,
			parityOpts(mbpta.WithParallelism(3))...)
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Fingerprint(); got != refFP {
			t.Fatalf("resumed fingerprint diverges:\n got %s\nwant %s", got, refFP)
		}
	})
}

// budgetConn severs the connection after budget written bytes — a
// deterministic stand-in for an executor killed mid-stream.
type budgetConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (c *budgetConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	budget := c.budget
	c.mu.Unlock()
	if budget <= 0 {
		c.Conn.Close()
		return 0, errors.New("budgetConn: write budget exhausted")
	}
	if len(p) > budget {
		n, _ := c.Conn.Write(p[:budget])
		c.Conn.Close()
		c.setBudget(0)
		return n, errors.New("budgetConn: write budget exhausted")
	}
	n, err := c.Conn.Write(p)
	c.setBudget(budget - n)
	return n, err
}

func (c *budgetConn) setBudget(n int) {
	c.mu.Lock()
	c.budget = n
	c.mu.Unlock()
}
