package mbpta

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Sentinel errors of the v2 campaign engine, for errors.Is.
var (
	// ErrIIDGateFailed reports that the final analysis rejected the
	// i.i.d. gate (alias of ErrIIDRejected on the v2 surface).
	ErrIIDGateFailed = core.ErrIIDRejected
	// ErrNotConverged reports that the stop rule was still unsatisfied
	// when the run budget ran out; the partial CampaignReport is
	// returned alongside it.
	ErrNotConverged = core.ErrNotConverged
	// ErrCanceled reports that the context canceled the campaign; the
	// returned error also matches errors.Is(err, ctx.Err()).
	ErrCanceled = platform.ErrCanceled
	// ErrRunTimeout reports that a run exceeded WithRunTimeout; it
	// surfaces once the WithRetry attempts are exhausted.
	ErrRunTimeout = platform.ErrRunTimeout
)

// Streaming-campaign types.
type (
	// StopRule decides after each batch whether the campaign may stop.
	StopRule = core.StopRule
	// Progress is the per-batch snapshot passed to WithProgress
	// callbacks and recorded in CampaignReport.Snapshots: runs done,
	// gate p-values, the current tail fit and the pWCET curve it
	// implies (via its PWCETAt and Curve methods).
	Progress = core.Snapshot
	// StreamBatch is one completed, ordered batch of a streaming
	// campaign (advanced use: platform.StreamCampaign sinks).
	StreamBatch = platform.Batch
	// StreamOptions tunes the low-level streaming executor.
	StreamOptions = platform.StreamOptions
	// FaultConfig tunes the SEU injector (see WithFaultInjection): the
	// expected upsets per run, the targeted arrays, and the watchdog
	// factor for hung-run detection.
	FaultConfig = faults.Config
	// FaultTarget selects a hardware array subject to upsets.
	FaultTarget = faults.Target
	// FaultSummary tallies a campaign's run outcomes (clean vs
	// quarantined by class).
	FaultSummary = faults.Summary
	// RetryPolicy bounds per-run retries (see WithRetry).
	RetryPolicy = platform.RetryPolicy
)

// Fault-injection run-outcome classes and targets re-exported for
// option construction and summary inspection.
const (
	OutcomeMasked          = faults.OutcomeMasked
	OutcomeTimingPerturbed = faults.OutcomeTimingPerturbed
	OutcomeWrongOutput     = faults.OutcomeWrongOutput
	OutcomeHung            = faults.OutcomeHung

	FaultTargetIL1    = faults.TargetIL1
	FaultTargetDL1    = faults.TargetDL1
	FaultTargetITLB   = faults.TargetITLB
	FaultTargetDTLB   = faults.TargetDTLB
	FaultTargetIntReg = faults.TargetIntReg
	FaultTargetFPReg  = faults.TargetFPReg
)

// FixedRuns stops after n runs — the paper's fixed-size protocol.
func FixedRuns(n int) StopRule { return core.FixedRuns(n) }

// PWCETDelta stops once pWCET(q) has changed by at most relTol for
// streak consecutive batches (zero arguments: q=1e-12, relTol=0.01,
// streak=2).
func PWCETDelta(q, relTol float64, streak int) StopRule {
	return core.PWCETDelta(q, relTol, streak)
}

// CRPSConverged stops on the MBPTA CRPS convergence criterion between
// consecutive tail refits (zero arguments: threshold=1e-3, streak=2).
func CRPSConverged(threshold float64, streak int) StopRule {
	return core.CRPSConverged(threshold, streak)
}

// MaxWallClock stops once the campaign has been measuring for d.
func MaxWallClock(d time.Duration) StopRule { return core.MaxWallClock(d) }

// AnyRule stops as soon as any of its rules does.
func AnyRule(rules ...StopRule) StopRule { return core.AnyRule(rules...) }

// campaignConfig is the resolved option set of Campaign.
type campaignConfig struct {
	runs        int
	batch       int
	parallel    int
	seed        uint64
	rule        StopRule
	progress    func(Progress)
	analysis    Options
	measureOnly bool
	faults      *FaultConfig
	runTimeout  time.Duration
	retry       RetryPolicy
	telemetry   *Telemetry
}

// CampaignOption configures Campaign.
type CampaignOption func(*campaignConfig)

// WithRuns sets the campaign's run budget (default 3,000, the paper's
// protocol). Under a fixed-runs rule this is the exact campaign size;
// under a convergence rule it is the maximum.
func WithRuns(n int) CampaignOption {
	return func(c *campaignConfig) { c.runs = n }
}

// WithBaseSeed sets the base seed of the per-run seed derivation; the
// same seed reproduces the campaign bit-for-bit (default 0).
func WithBaseSeed(seed uint64) CampaignOption {
	return func(c *campaignConfig) { c.seed = seed }
}

// WithParallelism sets the number of worker platforms (default
// GOMAXPROCS). Parallelism never changes results: run i always uses
// seed DeriveRunSeed(base, i) and batches complete as barriers.
func WithParallelism(n int) CampaignOption {
	return func(c *campaignConfig) { c.parallel = n }
}

// WithBatchSize sets how many runs execute between stop-rule
// evaluations and progress callbacks (default 250). Batching never
// changes the measured series, only the stop granularity.
func WithBatchSize(n int) CampaignOption {
	return func(c *campaignConfig) { c.batch = n }
}

// WithStopRule installs the early-stopping rule (default: FixedRuns at
// the WithRuns budget). Rules may be stateful; use a fresh rule per
// campaign.
func WithStopRule(r StopRule) CampaignOption {
	return func(c *campaignConfig) { c.rule = r }
}

// WithProgress installs a callback invoked after every batch with the
// incremental analysis snapshot. The callback runs on the campaign
// goroutine between batches; keep it fast.
func WithProgress(fn func(Progress)) CampaignOption {
	return func(c *campaignConfig) { c.progress = fn }
}

// WithAnalyzerOptions sets the analyzer options used both for the
// incremental refits and the final per-path analysis (zero value:
// paper defaults).
func WithAnalyzerOptions(o Options) CampaignOption {
	return func(c *campaignConfig) { c.analysis = o }
}

// WithFaultInjection attaches the deterministic SEU injector to the
// campaign: each run draws Poisson(cfg.Rate) upsets from its own run
// seed, is classified (masked / timing-perturbed / wrong-output /
// hung), and — when not clean — is quarantined so the i.i.d. gate and
// the tail fit only see fault-free measurements. Rate 0 leaves the
// measured series bit-identical to a campaign without injection. The
// per-outcome tally appears in Progress snapshots and in
// CampaignReport.Faults.
func WithFaultInjection(cfg FaultConfig) CampaignOption {
	return func(c *campaignConfig) { c.faults = &cfg }
}

// WithRunTimeout bounds each run attempt's wall-clock duration; an
// attempt exceeding it fails with an error matching ErrRunTimeout and
// is retried under WithRetry (default: no per-run deadline).
func WithRunTimeout(d time.Duration) CampaignOption {
	return func(c *campaignConfig) { c.runTimeout = d }
}

// WithRetry re-executes runs failing with a genuine error (worker
// fault, timeout) up to maxAttempts total attempts, sleeping backoff,
// 2*backoff, ... between attempts. Retries reuse the same per-run seed,
// so a retried run yields exactly the result a first-attempt success
// would have. Quarantined fault outcomes are not errors and never
// retry.
func WithRetry(maxAttempts int, backoff time.Duration) CampaignOption {
	return func(c *campaignConfig) {
		c.retry = RetryPolicy{MaxAttempts: maxAttempts, Backoff: backoff}
	}
}

// WithTelemetry attaches a telemetry registry to the campaign: the
// engine harvests simulator and campaign instruments (cache/TLB hit
// rates, IPC, runs/s, fault tallies) at each batch barrier, the
// incremental analyzer publishes gate p-values, block-maxima discards
// and the pWCET trajectory, and the structured event stream
// (campaign_start, run, batch, analysis, campaign_end) flows to every
// sink attached to reg. A nil reg — or omitting the option — disables
// telemetry entirely; the campaign is then bit-identical and
// allocation-identical to one without it.
func WithTelemetry(reg *Telemetry) CampaignOption {
	return func(c *campaignConfig) { c.telemetry = reg }
}

// MeasureOnly skips the final per-path analysis: the report carries
// the measured campaign and snapshots but a nil Analysis. Use it to
// collect traces for external tooling (or platforms expected to fail
// the i.i.d. gate, such as DET).
func MeasureOnly() CampaignOption {
	return func(c *campaignConfig) { c.measureOnly = true }
}

// CampaignReport is the outcome of a streaming campaign.
type CampaignReport struct {
	// Campaign is the measured series, in run order (exactly the runs
	// executed before the stop rule fired).
	Campaign *CampaignResult
	// Analysis is the final per-path MBPTA analysis (nil under
	// MeasureOnly, or when the final analysis failed).
	Analysis *Result
	// Snapshots is the per-batch incremental analysis trace.
	Snapshots []Progress
	// Converged reports whether the stop rule fired before the run
	// budget ran out; StopRuns is the run count at that point (clean and
	// quarantined runs both count against the budget).
	Converged bool
	StopRuns  int
	// Rule names the stop rule that governed the campaign.
	Rule string
	// Faults tallies run outcomes. Without WithFaultInjection every run
	// is clean and the per-outcome map is empty.
	Faults FaultSummary
}

// TraceSet packages the measured campaign for persistence (WriteTraceCSV
// / WriteTraceJSON) or re-analysis. Quarantined runs are excluded: the
// trace format carries clean measurements only, so re-analyzing an
// exported trace sees exactly what the campaign's own analysis saw.
func (r *CampaignReport) TraceSet() *TraceSet {
	set := &trace.Set{Platform: r.Campaign.Platform, Workload: r.Campaign.Workload}
	for i, res := range r.Campaign.Results {
		if res.Quarantined() {
			continue
		}
		set.Samples = append(set.Samples, trace.Sample{Run: i, Cycles: res.Cycles, Path: res.Path})
	}
	return set
}

// Campaign executes a streaming measurement campaign of w on a platform
// built from cfg and analyzes it incrementally — the v2 entry point of
// this package. Runs execute in deterministic batches (run i always
// uses seed DeriveRunSeed(base, i), so neither parallelism nor batch
// size changes results); after each batch the i.i.d. gate is re-run,
// the pooled Gumbel tail refitted, and the stop rule evaluated, so a
// converging campaign stops early instead of always paying the paper's
// fixed 3,000 runs.
//
//	rep, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
//		mbpta.WithRuns(3000),
//		mbpta.WithBaseSeed(42),
//		mbpta.WithStopRule(mbpta.PWCETDelta(1e-12, 0.01, 2)))
//	bound, _ := rep.Analysis.PWCET(1e-12)
//
// Error contract (all match errors.Is):
//   - ErrCanceled: ctx was canceled mid-campaign; no report.
//   - ErrNotConverged: the budget ran out before the rule fired; the
//     full report is still returned so callers may keep the estimate.
//   - ErrIIDGateFailed: the final analysis rejected the i.i.d. gate;
//     the report (with nil Analysis) is returned for diagnosis.
func Campaign(ctx context.Context, cfg PlatformConfig, w Workload, opts ...CampaignOption) (*CampaignReport, error) {
	c := campaignConfig{runs: 3000, batch: 250}
	for _, opt := range opts {
		opt(&c)
	}
	if c.rule == nil {
		c.rule = FixedRuns(c.runs)
	}

	online := core.NewOnlineAnalyzer(c.analysis, c.rule)
	online.SetTelemetry(c.telemetry)
	sink := func(b StreamBatch) (bool, error) {
		obs := make([]core.Observation, len(b.Results))
		for i, r := range b.Results {
			obs[i] = core.Observation{Cycles: float64(r.Cycles), Path: r.Path, Outcome: r.Outcome}
		}
		snap, err := online.ObserveBatch(obs)
		if err != nil {
			return false, err
		}
		if c.progress != nil {
			c.progress(snap)
		}
		return snap.Done, nil
	}

	so := platform.StreamOptions{
		MaxRuns:    c.runs,
		BatchSize:  c.batch,
		Parallel:   c.parallel,
		BaseSeed:   c.seed,
		RunTimeout: c.runTimeout,
		Retry:      c.retry,
		Telemetry:  c.telemetry,
	}
	if c.faults != nil {
		if c.faults.Telemetry == nil {
			c.faults.Telemetry = c.telemetry
		}
		inj, ierr := faults.New(*c.faults)
		if ierr != nil {
			return nil, ierr
		}
		so.Runner = inj.Runner()
	}
	camp, err := platform.StreamCampaign(ctx, cfg, w, so, sink)
	if err != nil {
		return nil, err
	}

	rep := &CampaignReport{
		Campaign:  camp,
		Snapshots: online.Snapshots(),
		Converged: online.Done(),
		StopRuns:  len(camp.Results),
		Rule:      c.rule.Name(),
		Faults:    faults.Summarize(camp.Results),
	}
	if !c.measureOnly {
		res, aerr := online.Finalize()
		if aerr != nil {
			return rep, aerr
		}
		rep.Analysis = res
	}
	if !rep.Converged {
		return rep, fmt.Errorf("%w: rule %s unsatisfied after %d runs",
			ErrNotConverged, rep.Rule, rep.StopRuns)
	}
	return rep, nil
}

// StreamCampaign exposes the low-level batch executor for callers that
// want custom per-batch processing instead of the built-in incremental
// analysis; see Campaign for the common flow.
func StreamCampaign(ctx context.Context, cfg PlatformConfig, w Workload, opts StreamOptions, sink func(StreamBatch) (bool, error)) (*CampaignResult, error) {
	var psink platform.BatchSink
	if sink != nil {
		psink = func(b platform.Batch) (bool, error) { return sink(b) }
	}
	return platform.StreamCampaign(ctx, cfg, w, opts, psink)
}
