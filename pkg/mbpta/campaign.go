package mbpta

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Sentinel errors of the v2 campaign engine, for errors.Is.
var (
	// ErrIIDGateFailed reports that the final analysis rejected the
	// i.i.d. gate (alias of ErrIIDRejected on the v2 surface).
	ErrIIDGateFailed = core.ErrIIDRejected
	// ErrNotConverged reports that the stop rule was still unsatisfied
	// when the run budget ran out; the partial CampaignReport is
	// returned alongside it.
	ErrNotConverged = core.ErrNotConverged
	// ErrCanceled reports that the context canceled the campaign; the
	// returned error also matches errors.Is(err, ctx.Err()).
	ErrCanceled = platform.ErrCanceled
)

// Streaming-campaign types.
type (
	// StopRule decides after each batch whether the campaign may stop.
	StopRule = core.StopRule
	// Progress is the per-batch snapshot passed to WithProgress
	// callbacks and recorded in CampaignReport.Snapshots: runs done,
	// gate p-values, the current tail fit and the pWCET curve it
	// implies (via its PWCETAt and Curve methods).
	Progress = core.Snapshot
	// StreamBatch is one completed, ordered batch of a streaming
	// campaign (advanced use: platform.StreamCampaign sinks).
	StreamBatch = platform.Batch
	// StreamOptions tunes the low-level streaming executor.
	StreamOptions = platform.StreamOptions
)

// FixedRuns stops after n runs — the paper's fixed-size protocol.
func FixedRuns(n int) StopRule { return core.FixedRuns(n) }

// PWCETDelta stops once pWCET(q) has changed by at most relTol for
// streak consecutive batches (zero arguments: q=1e-12, relTol=0.01,
// streak=2).
func PWCETDelta(q, relTol float64, streak int) StopRule {
	return core.PWCETDelta(q, relTol, streak)
}

// CRPSConverged stops on the MBPTA CRPS convergence criterion between
// consecutive tail refits (zero arguments: threshold=1e-3, streak=2).
func CRPSConverged(threshold float64, streak int) StopRule {
	return core.CRPSConverged(threshold, streak)
}

// MaxWallClock stops once the campaign has been measuring for d.
func MaxWallClock(d time.Duration) StopRule { return core.MaxWallClock(d) }

// AnyRule stops as soon as any of its rules does.
func AnyRule(rules ...StopRule) StopRule { return core.AnyRule(rules...) }

// campaignConfig is the resolved option set of Campaign.
type campaignConfig struct {
	runs        int
	batch       int
	parallel    int
	seed        uint64
	rule        StopRule
	progress    func(Progress)
	analysis    Options
	measureOnly bool
}

// CampaignOption configures Campaign.
type CampaignOption func(*campaignConfig)

// WithRuns sets the campaign's run budget (default 3,000, the paper's
// protocol). Under a fixed-runs rule this is the exact campaign size;
// under a convergence rule it is the maximum.
func WithRuns(n int) CampaignOption {
	return func(c *campaignConfig) { c.runs = n }
}

// WithBaseSeed sets the base seed of the per-run seed derivation; the
// same seed reproduces the campaign bit-for-bit (default 0).
func WithBaseSeed(seed uint64) CampaignOption {
	return func(c *campaignConfig) { c.seed = seed }
}

// WithParallelism sets the number of worker platforms (default
// GOMAXPROCS). Parallelism never changes results: run i always uses
// seed DeriveRunSeed(base, i) and batches complete as barriers.
func WithParallelism(n int) CampaignOption {
	return func(c *campaignConfig) { c.parallel = n }
}

// WithBatchSize sets how many runs execute between stop-rule
// evaluations and progress callbacks (default 250). Batching never
// changes the measured series, only the stop granularity.
func WithBatchSize(n int) CampaignOption {
	return func(c *campaignConfig) { c.batch = n }
}

// WithStopRule installs the early-stopping rule (default: FixedRuns at
// the WithRuns budget). Rules may be stateful; use a fresh rule per
// campaign.
func WithStopRule(r StopRule) CampaignOption {
	return func(c *campaignConfig) { c.rule = r }
}

// WithProgress installs a callback invoked after every batch with the
// incremental analysis snapshot. The callback runs on the campaign
// goroutine between batches; keep it fast.
func WithProgress(fn func(Progress)) CampaignOption {
	return func(c *campaignConfig) { c.progress = fn }
}

// WithAnalyzerOptions sets the analyzer options used both for the
// incremental refits and the final per-path analysis (zero value:
// paper defaults).
func WithAnalyzerOptions(o Options) CampaignOption {
	return func(c *campaignConfig) { c.analysis = o }
}

// MeasureOnly skips the final per-path analysis: the report carries
// the measured campaign and snapshots but a nil Analysis. Use it to
// collect traces for external tooling (or platforms expected to fail
// the i.i.d. gate, such as DET).
func MeasureOnly() CampaignOption {
	return func(c *campaignConfig) { c.measureOnly = true }
}

// CampaignReport is the outcome of a streaming campaign.
type CampaignReport struct {
	// Campaign is the measured series, in run order (exactly the runs
	// executed before the stop rule fired).
	Campaign *CampaignResult
	// Analysis is the final per-path MBPTA analysis (nil under
	// MeasureOnly, or when the final analysis failed).
	Analysis *Result
	// Snapshots is the per-batch incremental analysis trace.
	Snapshots []Progress
	// Converged reports whether the stop rule fired before the run
	// budget ran out; StopRuns is the run count at that point.
	Converged bool
	StopRuns  int
	// Rule names the stop rule that governed the campaign.
	Rule string
}

// TraceSet packages the measured campaign for persistence (WriteTraceCSV
// / WriteTraceJSON) or re-analysis.
func (r *CampaignReport) TraceSet() *TraceSet {
	set := &trace.Set{Platform: r.Campaign.Platform, Workload: r.Campaign.Workload}
	for i, res := range r.Campaign.Results {
		set.Samples = append(set.Samples, trace.Sample{Run: i, Cycles: res.Cycles, Path: res.Path})
	}
	return set
}

// Campaign executes a streaming measurement campaign of w on a platform
// built from cfg and analyzes it incrementally — the v2 entry point of
// this package. Runs execute in deterministic batches (run i always
// uses seed DeriveRunSeed(base, i), so neither parallelism nor batch
// size changes results); after each batch the i.i.d. gate is re-run,
// the pooled Gumbel tail refitted, and the stop rule evaluated, so a
// converging campaign stops early instead of always paying the paper's
// fixed 3,000 runs.
//
//	rep, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
//		mbpta.WithRuns(3000),
//		mbpta.WithBaseSeed(42),
//		mbpta.WithStopRule(mbpta.PWCETDelta(1e-12, 0.01, 2)))
//	bound, _ := rep.Analysis.PWCET(1e-12)
//
// Error contract (all match errors.Is):
//   - ErrCanceled: ctx was canceled mid-campaign; no report.
//   - ErrNotConverged: the budget ran out before the rule fired; the
//     full report is still returned so callers may keep the estimate.
//   - ErrIIDGateFailed: the final analysis rejected the i.i.d. gate;
//     the report (with nil Analysis) is returned for diagnosis.
func Campaign(ctx context.Context, cfg PlatformConfig, w Workload, opts ...CampaignOption) (*CampaignReport, error) {
	c := campaignConfig{runs: 3000, batch: 250}
	for _, opt := range opts {
		opt(&c)
	}
	if c.rule == nil {
		c.rule = FixedRuns(c.runs)
	}

	online := core.NewOnlineAnalyzer(c.analysis, c.rule)
	sink := func(b StreamBatch) (bool, error) {
		obs := make([]core.Observation, len(b.Results))
		for i, r := range b.Results {
			obs[i] = core.Observation{Cycles: float64(r.Cycles), Path: r.Path}
		}
		snap, err := online.ObserveBatch(obs)
		if err != nil {
			return false, err
		}
		if c.progress != nil {
			c.progress(snap)
		}
		return snap.Done, nil
	}

	camp, err := platform.StreamCampaign(ctx, cfg, w, platform.StreamOptions{
		MaxRuns:   c.runs,
		BatchSize: c.batch,
		Parallel:  c.parallel,
		BaseSeed:  c.seed,
	}, sink)
	if err != nil {
		return nil, err
	}

	rep := &CampaignReport{
		Campaign:  camp,
		Snapshots: online.Snapshots(),
		Converged: online.Done(),
		StopRuns:  len(camp.Results),
		Rule:      c.rule.Name(),
	}
	if !c.measureOnly {
		res, aerr := online.Finalize()
		if aerr != nil {
			return rep, aerr
		}
		rep.Analysis = res
	}
	if !rep.Converged {
		return rep, fmt.Errorf("%w: rule %s unsatisfied after %d runs",
			ErrNotConverged, rep.Rule, rep.StopRuns)
	}
	return rep, nil
}

// StreamCampaign exposes the low-level batch executor for callers that
// want custom per-batch processing instead of the built-in incremental
// analysis; see Campaign for the common flow.
func StreamCampaign(ctx context.Context, cfg PlatformConfig, w Workload, opts StreamOptions, sink func(StreamBatch) (bool, error)) (*CampaignResult, error) {
	var psink platform.BatchSink
	if sink != nil {
		psink = func(b platform.Batch) (bool, error) { return sink(b) }
	}
	return platform.StreamCampaign(ctx, cfg, w, opts, psink)
}
