package mbpta

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/trace"
	"repro/internal/wal"
)

// Sentinel errors of the v2 campaign engine, for errors.Is.
var (
	// ErrIIDGateFailed reports that the final analysis rejected the
	// i.i.d. gate (alias of ErrIIDRejected on the v2 surface).
	ErrIIDGateFailed = core.ErrIIDRejected
	// ErrNotConverged reports that the stop rule was still unsatisfied
	// when the run budget ran out; the partial CampaignReport is
	// returned alongside it.
	ErrNotConverged = core.ErrNotConverged
	// ErrCanceled reports that the context canceled the campaign; the
	// returned error also matches errors.Is(err, ctx.Err()).
	ErrCanceled = platform.ErrCanceled
	// ErrRunTimeout reports that a run exceeded WithRunTimeout; it
	// surfaces once the WithRetry attempts are exhausted.
	ErrRunTimeout = platform.ErrRunTimeout
	// ErrDegraded reports that the campaign exhausted its worker-restart
	// budget (see WithSupervision): the partial report over the runs
	// completed before degradation is returned alongside it, and the
	// error wraps every restart cause via errors.Join.
	ErrDegraded = platform.ErrDegraded
)

// IsJournalCorrupt reports whether err is unrecoverable journal
// corruption (damaged header or campaign-identity record); the error
// text names the journal path and the first bad byte offset. Torn
// tails and mid-file corruption never produce it — Resume repairs
// those by truncating to the last valid checkpoint.
func IsJournalCorrupt(err error) bool { return wal.IsCorrupt(err) }

// Streaming-campaign types.
type (
	// StopRule decides after each batch whether the campaign may stop.
	StopRule = core.StopRule
	// Progress is the per-batch snapshot passed to WithProgress
	// callbacks and recorded in CampaignReport.Snapshots: runs done,
	// gate p-values, the current tail fit and the pWCET curve it
	// implies (via its PWCETAt and Curve methods).
	Progress = core.Snapshot
	// StreamBatch is one completed, ordered batch of a streaming
	// campaign (advanced use: platform.StreamCampaign sinks).
	StreamBatch = platform.Batch
	// StreamOptions tunes the low-level streaming executor.
	StreamOptions = platform.StreamOptions
	// FaultConfig tunes the SEU injector (see WithFaultInjection): the
	// expected upsets per run, the hazard profile and mitigation layer,
	// the targeted arrays, and the watchdog factor for hung-run
	// detection.
	FaultConfig = faults.Config
	// FaultTarget selects a hardware array subject to upsets.
	FaultTarget = faults.Target
	// FaultSummary tallies a campaign's run outcomes (clean vs
	// quarantined by class, plus mitigated recoveries).
	FaultSummary = faults.Summary
	// Mitigation configures the fault-mitigation layer (scrubbing, ECC,
	// lockstep) of a FaultConfig.
	Mitigation = faults.Mitigation
	// MitigationKind names a mitigation scheme.
	MitigationKind = faults.MitigationKind
	// Hazard configures the time-varying upset-rate profile of a
	// FaultConfig.
	Hazard = faults.Hazard
	// HazardKind names a hazard profile.
	HazardKind = faults.HazardKind
	// RetryPolicy bounds per-run retries (see WithRetry).
	RetryPolicy = platform.RetryPolicy
	// BatchSink consumes ordered batches from the low-level streaming
	// executor (advanced use; see StreamCampaign).
	BatchSink = platform.BatchSink
	// Board is one simulated machine runs execute on (advanced use:
	// StreamOptions.NewBoard and the campaign fabric).
	Board = platform.Board
	// Journal persists campaign progress at batch barriers (advanced
	// use: WithJournalSink; WithJournal covers the common case).
	Journal = platform.Journal
)

// ExecutorPool is the distributed campaign fabric contract: an
// implementation executes a campaign's runs on a shared pool of
// executors (in-process or remote) and delivers results as ordered
// batches, bit-identical to platform.StreamCampaign — run i always
// uses seed DeriveRunSeed(base, i), so where a run executes never
// changes the result. fabric.Pool implements it; pass one to
// WithExecutorPool.
type ExecutorPool interface {
	StreamCampaign(ctx context.Context, cfg PlatformConfig, w Workload, opts StreamOptions, sink BatchSink) (*CampaignResult, error)
}

// Fault-injection run-outcome classes and targets re-exported for
// option construction and summary inspection.
const (
	OutcomeMasked          = faults.OutcomeMasked
	OutcomeTimingPerturbed = faults.OutcomeTimingPerturbed
	OutcomeWrongOutput     = faults.OutcomeWrongOutput
	OutcomeHung            = faults.OutcomeHung

	// Mitigated outcomes: recovered runs that stay in the analyzed
	// series with their recovery overhead charged as cycles.
	OutcomeCorrected = faults.OutcomeCorrected
	OutcomeScrubbed  = faults.OutcomeScrubbed
	OutcomeVoted     = faults.OutcomeVoted

	FaultTargetIL1    = faults.TargetIL1
	FaultTargetDL1    = faults.TargetDL1
	FaultTargetITLB   = faults.TargetITLB
	FaultTargetDTLB   = faults.TargetDTLB
	FaultTargetIntReg = faults.TargetIntReg
	FaultTargetFPReg  = faults.TargetFPReg

	MitigationNone     = faults.MitigationNone
	MitigationScrub    = faults.MitigationScrub
	MitigationECC      = faults.MitigationECC
	MitigationLockstep = faults.MitigationLockstep

	HazardConstant = faults.HazardConstant
	HazardWeibull  = faults.HazardWeibull
	HazardOrbit    = faults.HazardOrbit
)

// ParseMitigation resolves a mitigation kind name ("none", "scrub",
// "ecc", "lockstep") to a Mitigation with that kind's defaults.
func ParseMitigation(s string) (Mitigation, error) { return faults.ParseMitigation(s) }

// ParseHazard resolves a hazard kind name ("constant", "weibull",
// "orbit") to a Hazard with that kind's defaults.
func ParseHazard(s string) (Hazard, error) { return faults.ParseHazard(s) }

// FixedRuns stops after n runs — the paper's fixed-size protocol.
func FixedRuns(n int) StopRule { return core.FixedRuns(n) }

// PWCETDelta stops once pWCET(q) has changed by at most relTol for
// streak consecutive batches (zero arguments: q=1e-12, relTol=0.01,
// streak=2).
func PWCETDelta(q, relTol float64, streak int) StopRule {
	return core.PWCETDelta(q, relTol, streak)
}

// CRPSConverged stops on the MBPTA CRPS convergence criterion between
// consecutive tail refits (zero arguments: threshold=1e-3, streak=2).
func CRPSConverged(threshold float64, streak int) StopRule {
	return core.CRPSConverged(threshold, streak)
}

// MaxWallClock stops once the campaign has been measuring for d.
func MaxWallClock(d time.Duration) StopRule { return core.MaxWallClock(d) }

// AnyRule stops as soon as any of its rules does.
func AnyRule(rules ...StopRule) StopRule { return core.AnyRule(rules...) }

// campaignConfig is the resolved option set of Campaign.
type campaignConfig struct {
	runs        int
	batch       int
	parallel    int
	seed        uint64
	rule        StopRule
	progress    func(Progress)
	analysis    Options
	measureOnly bool
	faults      *FaultConfig
	runTimeout  time.Duration
	retry       RetryPolicy
	supervise   platform.SupervisionPolicy
	journal     string
	journalSink Journal
	cached      func(run int) (RunResult, bool)
	telemetry   *Telemetry
	coRunners   []Workload
	pool        ExecutorPool
}

// CampaignOption configures Campaign.
type CampaignOption func(*campaignConfig)

// WithRuns sets the campaign's run budget (default 3,000, the paper's
// protocol). Under a fixed-runs rule this is the exact campaign size;
// under a convergence rule it is the maximum.
func WithRuns(n int) CampaignOption {
	return func(c *campaignConfig) { c.runs = n }
}

// WithBaseSeed sets the base seed of the per-run seed derivation; the
// same seed reproduces the campaign bit-for-bit (default 0).
func WithBaseSeed(seed uint64) CampaignOption {
	return func(c *campaignConfig) { c.seed = seed }
}

// WithParallelism sets the number of worker platforms (default
// GOMAXPROCS). Parallelism never changes results: run i always uses
// seed DeriveRunSeed(base, i) and batches complete as barriers.
func WithParallelism(n int) CampaignOption {
	return func(c *campaignConfig) { c.parallel = n }
}

// WithBatchSize sets how many runs execute between stop-rule
// evaluations and progress callbacks (default 250). Batching never
// changes the measured series, only the stop granularity.
func WithBatchSize(n int) CampaignOption {
	return func(c *campaignConfig) { c.batch = n }
}

// WithStopRule installs the early-stopping rule (default: FixedRuns at
// the WithRuns budget). Rules may be stateful; use a fresh rule per
// campaign.
func WithStopRule(r StopRule) CampaignOption {
	return func(c *campaignConfig) { c.rule = r }
}

// WithProgress installs a callback invoked after every batch with the
// incremental analysis snapshot. The callback runs on the campaign
// goroutine between batches; keep it fast.
func WithProgress(fn func(Progress)) CampaignOption {
	return func(c *campaignConfig) { c.progress = fn }
}

// WithAnalyzerOptions sets the analyzer options used both for the
// incremental refits and the final per-path analysis (zero value:
// paper defaults).
func WithAnalyzerOptions(o Options) CampaignOption {
	return func(c *campaignConfig) { c.analysis = o }
}

// WithQuantileGate enables the nine-decile identical-distribution gate
// alongside the i.i.d. gate: each snapshot (and the final analysis)
// compares the series halves decile by decile with bounded family-wise
// false positives, catching upper-quantile drift the whole-
// distribution KS test misses and reporting a posterior leak
// probability. alpha is the family-wise false-positive budget
// (0 selects the default 0.01). Apply after WithAnalyzerOptions when
// combining the two: WithAnalyzerOptions replaces the whole option
// set.
func WithQuantileGate(alpha float64) CampaignOption {
	return func(c *campaignConfig) {
		c.analysis.QuantileGate = true
		c.analysis.QuantileGateAlpha = alpha
	}
}

// WithFaultInjection attaches the deterministic SEU injector to the
// campaign: each run draws Poisson(cfg.Rate) upsets from its own run
// seed, is classified (masked / timing-perturbed / wrong-output /
// hung), and — when not clean — is quarantined so the i.i.d. gate and
// the tail fit only see fault-free measurements. Rate 0 leaves the
// measured series bit-identical to a campaign without injection. The
// per-outcome tally appears in Progress snapshots and in
// CampaignReport.Faults.
func WithFaultInjection(cfg FaultConfig) CampaignOption {
	return func(c *campaignConfig) { c.faults = &cfg }
}

// WithRunTimeout bounds each run attempt's wall-clock duration; an
// attempt exceeding it fails with an error matching ErrRunTimeout and
// is retried under WithRetry (default: no per-run deadline).
func WithRunTimeout(d time.Duration) CampaignOption {
	return func(c *campaignConfig) { c.runTimeout = d }
}

// WithRetry re-executes runs failing with a genuine error (worker
// fault, timeout) up to maxAttempts total attempts, sleeping backoff,
// 2*backoff, ... between attempts. Retries reuse the same per-run seed,
// so a retried run yields exactly the result a first-attempt success
// would have. Quarantined fault outcomes are not errors and never
// retry.
func WithRetry(maxAttempts int, backoff time.Duration) CampaignOption {
	return func(c *campaignConfig) {
		c.retry = RetryPolicy{MaxAttempts: maxAttempts, Backoff: backoff}
	}
}

// WithSupervision bounds worker restarts. A worker whose run panics or
// times out past its retry budget is restarted on a fresh simulated
// board with exponential backoff, the interrupted run re-queued under
// its original seed — a recovered hiccup leaves no trace in the
// measured series. After maxRestarts consecutive restarts with no
// successful run in between the campaign degrades: completed runs are
// flushed to the journal and the partial report is returned with an
// error matching ErrDegraded. maxRestarts 0 selects the default budget
// of 8; negative disables restarts (a panic then aborts the campaign
// like any worker error). backoff 0 selects 10ms.
func WithSupervision(maxRestarts int, backoff time.Duration) CampaignOption {
	return func(c *campaignConfig) {
		c.supervise = platform.SupervisionPolicy{MaxRestarts: maxRestarts, Backoff: backoff}
	}
}

// WithJournal makes the campaign crash-safe: every completed run and a
// per-batch checkpoint of the incremental analyzer state are written to
// an append-only, checksummed write-ahead log at path (created or
// truncated), fsynced once per batch. A campaign killed at any instant
// can be continued with Resume, producing results bit-identical to an
// uninterrupted campaign. Without this option the campaign does no
// durability work at all — the run loop is bit-identical and
// allocation-identical to pre-journal behavior.
func WithJournal(path string) CampaignOption {
	return func(c *campaignConfig) { c.journal = path }
}

// WithRunCache installs a memoized run source consulted before any
// simulation: runs for which lookup returns (result, true) are served
// from the cache — skipping the board, fault injection, timeouts and
// retries — while misses execute normally. Because the platform
// protocol makes every result a pure function of (workload, run index,
// seed), a campaign served partly from cache is bit-identical to one
// simulated end to end; this is what lets the scenario-matrix runner
// (internal/matrix) share one set of raw run samples between cells
// that differ only in analysis parameters, and extend — rather than
// restart — a cached prefix when a cell needs more runs. lookup must
// be safe for concurrent calls and must answer consistently for the
// campaign's lifetime.
func WithRunCache(lookup func(run int) (RunResult, bool)) CampaignOption {
	return func(c *campaignConfig) { c.cached = lookup }
}

// WithJournalSink attaches a caller-managed Journal to the campaign:
// the engine calls LogRun for every completed run in order, Barrier
// after each batch and Flush on an interrupted campaign, exactly as
// with WithJournal, but the implementation — and the file lifecycle —
// is the caller's. The matrix run cache uses this to append only the
// runs beyond its cached prefix to a per-key journal. Mutually
// exclusive with WithJournal.
func WithJournalSink(j Journal) CampaignOption {
	return func(c *campaignConfig) { c.journalSink = j }
}

// WithTelemetry attaches a telemetry registry to the campaign: the
// engine harvests simulator and campaign instruments (cache/TLB hit
// rates, IPC, runs/s, fault tallies) at each batch barrier, the
// incremental analyzer publishes gate p-values, block-maxima discards
// and the pWCET trajectory, and the structured event stream
// (campaign_start, run, batch, analysis, campaign_end) flows to every
// sink attached to reg. A nil reg — or omitting the option — disables
// telemetry entirely; the campaign is then bit-identical and
// allocation-identical to one without it.
func WithTelemetry(reg *Telemetry) CampaignOption {
	return func(c *campaignConfig) { c.telemetry = reg }
}

// WithExecutorPool executes the campaign's runs on a shared campaign
// fabric (see internal/fabric and cmd/pwcetd) instead of a private
// worker pool: many concurrent campaigns multiplex over the pool's
// executors with fair scheduling and bounded backpressure. The merge
// path preserves bit-identity — the report's fingerprint equals that
// of a single-process campaign with the same seed and budget.
// WithParallelism, WithRetry, WithRunTimeout and WithSupervision are
// pool-side concerns and are ignored under a pool; Resume on a pool is
// not supported (resume locally, the journal format is identical).
func WithExecutorPool(pool ExecutorPool) CampaignOption {
	return func(c *campaignConfig) { c.pool = pool }
}

// WithCoRunners co-simulates the campaign on a multicore board: the
// measured workload runs on core 0 while each co-runner loops on its
// own core, all contending for the shared bus and DRAM, timestamp-
// ordered by the arbiter. Results stay deterministic — run i uses seed
// DeriveRunSeed(base, i) regardless of parallelism — so multicore
// campaigns compose with journaling, stop rules and progress exactly
// like single-core ones. Incompatible with WithFaultInjection (the SEU
// injector targets single-core boards).
func WithCoRunners(coRunners ...Workload) CampaignOption {
	return func(c *campaignConfig) { c.coRunners = coRunners }
}

// MeasureOnly skips the final per-path analysis: the report carries
// the measured campaign and snapshots but a nil Analysis. Use it to
// collect traces for external tooling (or platforms expected to fail
// the i.i.d. gate, such as DET).
func MeasureOnly() CampaignOption {
	return func(c *campaignConfig) { c.measureOnly = true }
}

// CampaignReport is the outcome of a streaming campaign.
type CampaignReport struct {
	// Campaign is the measured series, in run order (exactly the runs
	// executed before the stop rule fired).
	Campaign *CampaignResult
	// Analysis is the final per-path MBPTA analysis (nil under
	// MeasureOnly, or when the final analysis failed).
	Analysis *Result
	// Snapshots is the per-batch incremental analysis trace.
	Snapshots []Progress
	// Converged reports whether the stop rule fired before the run
	// budget ran out; StopRuns is the run count at that point (clean and
	// quarantined runs both count against the budget).
	Converged bool
	StopRuns  int
	// Rule names the stop rule that governed the campaign.
	Rule string
	// Faults tallies run outcomes. Without WithFaultInjection every run
	// is clean and the per-outcome map is empty.
	Faults FaultSummary
}

// TraceSet packages the measured campaign for persistence (WriteTraceCSV
// / WriteTraceJSON) or re-analysis. Quarantined runs are excluded: the
// trace format carries clean measurements only, so re-analyzing an
// exported trace sees exactly what the campaign's own analysis saw.
func (r *CampaignReport) TraceSet() *TraceSet {
	set := &trace.Set{Platform: r.Campaign.Platform, Workload: r.Campaign.Workload}
	for i, res := range r.Campaign.Results {
		if res.Quarantined() {
			continue
		}
		set.Samples = append(set.Samples, trace.Sample{Run: i, Cycles: res.Cycles, Path: res.Path})
	}
	return set
}

// Campaign executes a streaming measurement campaign of w on a platform
// built from cfg and analyzes it incrementally — the v2 entry point of
// this package. Runs execute in deterministic batches (run i always
// uses seed DeriveRunSeed(base, i), so neither parallelism nor batch
// size changes results); after each batch the i.i.d. gate is re-run,
// the pooled Gumbel tail refitted, and the stop rule evaluated, so a
// converging campaign stops early instead of always paying the paper's
// fixed 3,000 runs.
//
//	rep, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
//		mbpta.WithRuns(3000),
//		mbpta.WithBaseSeed(42),
//		mbpta.WithStopRule(mbpta.PWCETDelta(1e-12, 0.01, 2)))
//	bound, _ := rep.Analysis.PWCET(1e-12)
//
// Error contract (all match errors.Is):
//   - ErrCanceled: ctx was canceled mid-campaign. With WithJournal the
//     completed-run prefix is flushed and the partial report returned;
//     otherwise the report is nil.
//   - ErrDegraded: the worker-restart budget ran out (see
//     WithSupervision); the partial report over the runs completed
//     before degradation is returned.
//   - ErrNotConverged: the budget ran out before the rule fired; the
//     full report is still returned so callers may keep the estimate.
//   - ErrIIDGateFailed: the final analysis rejected the i.i.d. gate;
//     the report (with nil Analysis) is returned for diagnosis.
func Campaign(ctx context.Context, cfg PlatformConfig, w Workload, opts ...CampaignOption) (*CampaignReport, error) {
	c := resolveCampaignConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	online := core.NewOnlineAnalyzer(c.analysis, c.rule)
	online.SetTelemetry(c.telemetry)
	so := c.streamOptions(cfg)
	if c.journal != "" {
		jw, err := wal.Create(c.journal, c.meta(cfg, w), c.telemetry)
		if err != nil {
			return nil, err
		}
		journal := wal.NewCampaignJournal(jw, online.MarshalState)
		defer journal.Close()
		so.Journal = journal
	}
	return c.execute(ctx, cfg, w, online, so)
}

// Resume continues the journaled campaign at journalPath after a crash
// or cancellation. opts must reproduce the original campaign's
// configuration: the journal's identity record (platform, workload,
// base seed, run budget, batch size) is validated against it and a
// mismatch is an error, because replaying a journal into a different
// campaign would silently break bit-identity. The incremental analyzer
// is restored from the last checkpoint, already-journaled runs are not
// re-executed (a cancellation-flushed partial batch fills the head of
// its batch and only the missing seeds run), and the journal keeps
// extending in place, so a campaign can crash and resume any number of
// times. The resulting report — measured series, snapshot trace,
// convergence verdict, final analysis — is bit-identical to that of an
// uninterrupted campaign, as is the telemetry event stream when
// WithTelemetry is set (already-journaled batches are re-emitted before
// execution continues; simulator-level counters of the crashed process
// are the one exclusion, as they live and die with its boards).
//
// A torn tail or corrupted record truncates the journal to its last
// valid checkpoint and resumes from there; only a damaged header or
// identity record fails, with IsJournalCorrupt(err) true and the bad
// byte offset in the message. Resuming a journal whose campaign had
// already finished re-derives the report without executing any runs.
// The error contract is Campaign's.
func Resume(ctx context.Context, cfg PlatformConfig, w Workload, journalPath string, opts ...CampaignOption) (*CampaignReport, error) {
	c := resolveCampaignConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.pool != nil {
		return nil, errors.New("mbpta: Resume on an executor pool is not supported; resume locally (the journal format is identical)")
	}
	if c.journalSink != nil {
		return nil, errors.New("mbpta: WithJournalSink is not supported with Resume; Resume manages the journal itself")
	}
	plan, err := wal.PrepareResume(journalPath, c.telemetry)
	if err != nil {
		return nil, err
	}
	if err := plan.Meta.Validate(c.meta(cfg, w)); err != nil {
		plan.Writer.Close()
		return nil, err
	}
	var online *core.OnlineAnalyzer
	if plan.State != nil {
		online, err = core.RestoreOnlineAnalyzer(c.analysis, c.rule, plan.State)
		if err != nil {
			plan.Writer.Close()
			return nil, fmt.Errorf("mbpta: restore analyzer state from %s: %w", journalPath, err)
		}
	} else {
		online = core.NewOnlineAnalyzer(c.analysis, c.rule)
	}
	online.SetTelemetry(c.telemetry)

	so := c.streamOptions(cfg)
	journal := wal.NewCampaignJournal(plan.Writer, online.MarshalState)
	defer journal.Close()
	so.Journal = journal
	rs := plan.Resume
	rs.Stopped = online.Done()
	so.Resume = &rs
	if c.telemetry != nil {
		// Re-emit the event stream of the journaled batches so a resumed
		// campaign's telemetry is byte-identical to an uninterrupted one.
		// Interleaving matches the live engine: per-batch run and batch
		// events, then that batch's analysis event.
		batchSize := so.BatchSize
		if batchSize > so.MaxRuns {
			batchSize = so.MaxRuns
		}
		so.Replay = func() {
			for i := 0; i < rs.StartBatch; i++ {
				start := i * batchSize
				end := start + batchSize
				if end > rs.Delivered {
					end = rs.Delivered
				}
				platform.ReplayBatch(c.telemetry, platform.Batch{Index: i, Start: start, Results: rs.Prefix[start:end]})
				online.PublishSnapshot(i)
			}
		}
	}
	return c.execute(ctx, cfg, w, online, so)
}

// resolveCampaignConfig applies opts over the defaults.
func resolveCampaignConfig(opts []CampaignOption) *campaignConfig {
	c := &campaignConfig{runs: 3000, batch: 250}
	for _, opt := range opts {
		opt(c)
	}
	if c.rule == nil {
		c.rule = FixedRuns(c.runs)
	}
	return c
}

// meta is the campaign-identity record journaled at creation and
// validated on resume.
func (c *campaignConfig) meta(cfg PlatformConfig, w Workload) wal.Meta {
	return wal.Meta{
		Platform:  cfg.Name,
		Workload:  w.Name(),
		BaseSeed:  c.seed,
		MaxRuns:   c.runs,
		BatchSize: c.batch,
	}
}

// validate rejects option combinations the engine cannot honor.
func (c *campaignConfig) validate() error {
	if c.faults != nil && len(c.coRunners) > 0 {
		return errors.New("mbpta: WithFaultInjection targets single-core boards and is incompatible with WithCoRunners")
	}
	if c.pool != nil && len(c.coRunners) > 0 {
		return errors.New("mbpta: WithCoRunners is not supported on an executor pool")
	}
	if c.pool != nil && c.faults != nil {
		return errors.New("mbpta: WithFaultInjection is not supported on an executor pool")
	}
	if c.journal != "" && c.journalSink != nil {
		return errors.New("mbpta: WithJournal and WithJournalSink are mutually exclusive")
	}
	return nil
}

func (c *campaignConfig) streamOptions(cfg PlatformConfig) platform.StreamOptions {
	so := platform.StreamOptions{
		MaxRuns:    c.runs,
		BatchSize:  c.batch,
		Parallel:   c.parallel,
		BaseSeed:   c.seed,
		Cached:     c.cached,
		RunTimeout: c.runTimeout,
		Retry:      c.retry,
		Supervise:  c.supervise,
		Journal:    c.journalSink,
		Telemetry:  c.telemetry,
	}
	if len(c.coRunners) > 0 {
		cr := c.coRunners
		so.NewBoard = func() (platform.Board, error) { return platform.NewMulticore(cfg, cr) }
	}
	return so
}

// execute runs the streaming engine with the incremental analyzer as
// sink and assembles the report — the shared tail of Campaign and
// Resume.
func (c *campaignConfig) execute(ctx context.Context, cfg PlatformConfig, w Workload, online *core.OnlineAnalyzer, so platform.StreamOptions) (*CampaignReport, error) {
	sink := func(b StreamBatch) (bool, error) {
		obs := make([]core.Observation, len(b.Results))
		for i, r := range b.Results {
			obs[i] = core.Observation{
				Cycles:    float64(r.Cycles),
				Path:      r.Path,
				Outcome:   r.Outcome,
				Mitigated: platform.MitigatedOutcome(r.Outcome),
			}
		}
		snap, err := online.ObserveBatch(obs)
		if err != nil {
			return false, err
		}
		if c.progress != nil {
			c.progress(snap)
		}
		return snap.Done, nil
	}
	var inj *faults.Injector
	if c.faults != nil {
		if c.faults.Telemetry == nil {
			c.faults.Telemetry = c.telemetry
		}
		var ierr error
		inj, ierr = faults.New(*c.faults)
		if ierr != nil {
			return nil, ierr
		}
		so.Runner = inj.Runner()
	}
	var camp *CampaignResult
	var err error
	if c.pool != nil {
		camp, err = c.pool.StreamCampaign(ctx, cfg, w, so, sink)
	} else {
		camp, err = platform.StreamCampaign(ctx, cfg, w, so, sink)
	}
	if err != nil {
		if camp == nil || !(errors.Is(err, ErrCanceled) || errors.Is(err, ErrDegraded)) {
			return nil, err
		}
		// Interrupted mid-campaign with the completed prefix intact:
		// report what was measured. The analyzer has observed only the
		// complete batches, so its snapshots and final analysis cover a
		// statistically clean (barrier-aligned) sample; the interruption
		// error stays primary, so a failed final fit is not reported.
		rep := c.report(camp, online, inj)
		if !c.measureOnly {
			if res, aerr := online.Finalize(); aerr == nil {
				rep.Analysis = res
			}
		}
		return rep, err
	}

	rep := c.report(camp, online, inj)
	if !c.measureOnly {
		res, aerr := online.Finalize()
		if aerr != nil {
			return rep, aerr
		}
		rep.Analysis = res
	}
	if !rep.Converged {
		return rep, fmt.Errorf("%w: rule %s unsatisfied after %d runs",
			ErrNotConverged, rep.Rule, rep.StopRuns)
	}
	return rep, nil
}

func (c *campaignConfig) report(camp *CampaignResult, online *core.OnlineAnalyzer, inj *faults.Injector) *CampaignReport {
	rep := &CampaignReport{
		Campaign:  camp,
		Snapshots: online.Snapshots(),
		Converged: online.Done(),
		StopRuns:  len(camp.Results),
		Rule:      c.rule.Name(),
		Faults:    faults.Summarize(camp.Results),
	}
	if inj != nil {
		// Only the injector knows how many Poisson draws hit the fault
		// cap — the truncation is invisible in the per-run results.
		rep.Faults.ClampedRuns = inj.ClampedRuns()
	}
	return rep
}

// StreamCampaign exposes the low-level batch executor for callers that
// want custom per-batch processing instead of the built-in incremental
// analysis; see Campaign for the common flow.
func StreamCampaign(ctx context.Context, cfg PlatformConfig, w Workload, opts StreamOptions, sink func(StreamBatch) (bool, error)) (*CampaignResult, error) {
	var psink platform.BatchSink
	if sink != nil {
		psink = func(b platform.Batch) (bool, error) { return sink(b) }
	}
	return platform.StreamCampaign(ctx, cfg, w, opts, psink)
}
