// Fault-injection campaign: measure the TVCA workload on the
// time-randomized platform while a deterministic SEU injector flips
// bits in the cache/TLB tag+state arrays and the register files, the
// dominant hardware hazard in the space domain.
//
// Every injected run is classified — masked, timing-perturbed,
// wrong-output (against the workload's golden reference) or hung (the
// watchdog tripped) — and quarantined, so the i.i.d. gate and the
// Gumbel tail fit only ever see clean measurements. The example then
// repeats the campaign without injection and shows that the pWCET bound
// derived from the clean subset of the faulted campaign agrees with the
// fault-free bound: the quarantine keeps upsets from contaminating the
// timing analysis.
//
//	go run ./examples/fault_campaign
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/pkg/mbpta"
)

const (
	runs     = 2000
	baseSeed = 42
	rate     = 0.4 // expected upsets per run (Poisson)
	refProb  = 1e-12
)

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fault-injection campaign: %d runs, Poisson(%.1f) upsets per run\n", runs, rate)
	faulted, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs),
		mbpta.WithBaseSeed(baseSeed),
		mbpta.WithFaultInjection(mbpta.FaultConfig{Rate: rate}),
		// Resilience hooks: bound each run's wall-clock time and retry
		// transient worker failures; classified fault outcomes are valid
		// results and never retried.
		mbpta.WithRetry(3, 0))
	if err != nil {
		log.Fatal(err)
	}

	fs := faulted.Faults
	fmt.Printf("\nrun outcomes: %s\n", fs)
	for _, o := range []string{
		mbpta.OutcomeMasked, mbpta.OutcomeTimingPerturbed,
		mbpta.OutcomeWrongOutput, mbpta.OutcomeHung,
	} {
		if n := fs.ByOutcome[o]; n > 0 {
			fmt.Printf("  %-18s %4d (%.1f%% of runs)\n", o, n, 100*float64(n)/float64(fs.Total))
		}
	}
	fmt.Printf("quarantined runs are excluded from the gate and the fit: "+
		"%d of %d runs analyzed\n", fs.Clean, fs.Total)

	faultedBound, err := faulted.Analysis.PWCET(refProb)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: the same protocol without the injector.
	clean, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs),
		mbpta.WithBaseSeed(baseSeed))
	if err != nil {
		log.Fatal(err)
	}
	cleanBound, err := clean.Analysis.PWCET(refProb)
	if err != nil {
		log.Fatal(err)
	}

	rel := math.Abs(faultedBound-cleanBound) / cleanBound
	fmt.Printf("\npWCET(%.0e), fault-free campaign:       %.0f cycles\n", refProb, cleanBound)
	fmt.Printf("pWCET(%.0e), faulted campaign (clean subset): %.0f cycles (%.2f%% apart)\n",
		refProb, faultedBound, 100*rel)
	if rel < 0.05 {
		fmt.Println("the quarantine kept the upsets out of the timing analysis")
	} else {
		fmt.Println("bounds diverged: the clean subset is thinner, collect more runs")
	}
}
