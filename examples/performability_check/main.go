// Performability gate: two enforced properties of the SEU mitigation
// layer. First, bit-identity — a fault campaign that spells out "no
// mitigation, constant hazard" must fingerprint byte-for-byte the same
// as a plain rate-only campaign, so the mitigation layer is provably
// invisible until switched on (and an ECC campaign must differ).
// Second, the cost ordering — a pinned-seed sweep must price the
// schemes in the expected order: lockstep re-execution bounds above
// ECC correction bounds above the unmitigated clean-run bound. Any
// violation exits non-zero.
//
//	go run ./examples/performability_check
//
// `make performability-check` runs this program as the mitigation
// bit-identity and cost-ordering gate.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/pkg/mbpta"
)

// fingerprint runs a short pinned fault campaign and returns its
// canonical report digest.
func fingerprint(app *mbpta.TVCA, cfg mbpta.FaultConfig) string {
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(60), mbpta.WithBaseSeed(42), mbpta.MeasureOnly(),
		mbpta.WithFaultInjection(cfg))
	if err != nil {
		log.Fatalf("performability_check: fingerprint campaign: %v", err)
	}
	return rep.Fingerprint()
}

func main() {
	log.SetFlags(0)

	// Part 1: mitigation-off bit-identity.
	tcfg := mbpta.DefaultTVCAConfig()
	tcfg.Frames = 8
	app, err := mbpta.NewTVCA(tcfg)
	if err != nil {
		log.Fatalf("performability_check: %v", err)
	}
	plain := fingerprint(app, mbpta.FaultConfig{Rate: 0.5})
	explicit := fingerprint(app, mbpta.FaultConfig{
		Rate:       0.5,
		Mitigation: mbpta.Mitigation{Kind: mbpta.MitigationNone},
		Hazard:     mbpta.Hazard{Kind: mbpta.HazardConstant},
	})
	if plain != explicit {
		log.Fatalf("performability_check: explicit none/constant changed the campaign fingerprint:\n  plain    %s\n  explicit %s",
			plain, explicit)
	}
	if ecc := fingerprint(app, mbpta.FaultConfig{Rate: 0.5, Mitigation: mbpta.Mitigation{Kind: mbpta.MitigationECC}}); ecc == plain {
		log.Fatal("performability_check: ECC campaign fingerprint equals the unmitigated one — the mitigation axis is not reaching the simulation")
	}
	fmt.Printf("mitigation-off fingerprint identity: OK (%s)\n", plain[:16])

	// Part 2: pinned cost-ordering sweep. One constant-hazard row,
	// three schemes sharing the run budget, seed and upset rate: the
	// bound must grow with the mitigation's cycle overhead.
	sweep, err := experiments.RunPerformability(context.Background(), experiments.PerformabilityParams{
		Runs: 300,
		Rate: 1.5,
		Mitigations: []faults.Mitigation{
			{},
			{Kind: faults.MitigationECC},
			{Kind: faults.MitigationLockstep},
		},
		Hazards: []faults.Hazard{{Kind: faults.HazardConstant}},
	})
	if err != nil {
		log.Fatalf("performability_check: %v", err)
	}
	experiments.RenderE11(os.Stdout, sweep)
	cell := func(m faults.MitigationKind) *experiments.PerformabilityCell {
		c := sweep.CellAt(m, faults.HazardConstant)
		if c == nil {
			log.Fatalf("performability_check: sweep is missing the %s cell", m)
		}
		return c
	}
	none, ecc, lockstep := cell(faults.MitigationNone), cell(faults.MitigationECC), cell(faults.MitigationLockstep)
	if !(ecc.Bound > none.Bound) {
		log.Fatalf("performability_check: ECC bound %.0f must exceed the unmitigated clean bound %.0f — correction latency is not priced",
			ecc.Bound, none.Bound)
	}
	if !(lockstep.Bound > ecc.Bound) {
		log.Fatalf("performability_check: lockstep bound %.0f must exceed the ECC bound %.0f — re-execution overhead is not priced",
			lockstep.Bound, ecc.Bound)
	}
	if lockstep.Faults.Quarantined() != 0 {
		log.Fatalf("performability_check: lockstep quarantined %d runs; majority voting must recover every run",
			lockstep.Faults.Quarantined())
	}
	fmt.Printf("OK: bounds ordered lockstep %.0f > ECC %.0f > unmitigated %.0f\n",
		lockstep.Bound, ecc.Bound, none.Bound)
}
