// The i.i.d. gate in action: MBPTA's statistical tests detect when a
// measurement campaign violates the protocol.
//
// A correct campaign flushes the caches, resets the board, reloads the
// binary and reseeds the PRNG before every run; the resulting series is
// independent and identically distributed and the gate passes. If the
// experimenter instead measures back-to-back executions on the
// deterministic platform while recycling a handful of input vectors —
// a classic lazy test harness — consecutive measurements are coupled
// (the series is periodic in the input schedule and carries the cache
// warm-up transient), the Ljung-Box test rejects independence, and
// MBPTA correctly refuses the campaign.
//
//	go run ./examples/iid_gate
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/pkg/mbpta"
)

const runs = 600

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// --- Correct protocol: per-run flush + reset + reload + reseed. ---
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs), mbpta.WithBaseSeed(99), mbpta.MeasureOnly())
	if err != nil {
		log.Fatal(err)
	}
	set := rep.TraceSet()
	gate, err := mbpta.CheckIID(set.Times(), 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protocol-compliant campaign:")
	fmt.Println(gate)

	// --- Broken protocol: back-to-back DET runs, recycled inputs. ---
	broken, err := collectWithoutReset(app)
	if err != nil {
		log.Fatal(err)
	}
	gate, err = mbpta.CheckIID(broken, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nback-to-back campaign (no per-run reset):")
	fmt.Println(gate)

	// The analyzer enforces the gate.
	_, err = mbpta.NewAnalyzer(mbpta.Options{}).Analyze(broken)
	switch {
	case errors.Is(err, mbpta.ErrIIDRejected):
		fmt.Println("\nanalyzer verdict: campaign rejected (as it must be)")
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Println("\nanalyzer verdict: accepted — this should not happen")
	}
}

// collectWithoutReset measures back-to-back executions on one
// deterministic platform instance, skipping the per-run protocol and
// recycling four input vectors: the observed series inherits the
// period-4 structure of the schedule plus the cold-start transient.
func collectWithoutReset(app *mbpta.TVCA) ([]float64, error) {
	p, err := mbpta.NewPlatform(mbpta.DETPlatform())
	if err != nil {
		return nil, err
	}
	p.PrepareRun(12345) // seed once, like a careless campaign
	times := make([]float64, 0, runs)
	// The careless harness even discards a few warm-up runs "to get
	// stable numbers" — which removes the cold-start outlier and makes
	// the periodic coupling of the remaining series plainly visible to
	// the independence test.
	for run := 0; run < runs+8; run++ {
		m, err := app.Prepare(run % 4) // recycle a few input vectors
		if err != nil {
			return nil, err
		}
		cycles, err := p.Core().RunProgram(m)
		if err != nil {
			return nil, err
		}
		if run >= 8 {
			times = append(times, float64(cycles))
		}
	}
	return times, nil
}
