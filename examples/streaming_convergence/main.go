// Streaming convergence: run the TVCA campaign on the time-randomized
// platform with a pWCET-delta stop rule and compare against the paper's
// fixed 3,000-run protocol. The stream engine re-fits the Gumbel tail
// after every batch and stops as soon as the deep quantile stabilizes,
// saving runs while landing within a fraction of a percent of the
// full-campaign bound.
//
//	go run ./examples/streaming_convergence
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/pkg/mbpta"
)

const (
	budget   = 3000 // the paper's fixed campaign size
	baseSeed = 42
	refProb  = 1e-12 // exceedance probability of interest
)

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Converging campaign: stop once three consecutive batch refits
	// each move pWCET(1e-12) by less than 1%. The three-deep streak
	// rides out the early plateau a fresh fit can show before the
	// estimate settles.
	fmt.Printf("converging campaign (budget %d runs, stop when pWCET(%.0e) is stable to 1%%):\n",
		budget, refProb)
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(budget),
		mbpta.WithBaseSeed(baseSeed),
		mbpta.WithBatchSize(250),
		mbpta.WithStopRule(mbpta.PWCETDelta(refProb, 0.01, 3)),
		mbpta.WithProgress(func(p mbpta.Progress) {
			if !p.Fitted {
				fmt.Printf("  %4d runs: collecting (fit needs more block maxima)\n", p.Runs)
				return
			}
			if math.IsNaN(p.PWCETRelDelta) {
				fmt.Printf("  %4d runs: pWCET(%.0e) = %.0f cycles (first fit)\n",
					p.Runs, refProb, p.PWCET)
				return
			}
			fmt.Printf("  %4d runs: pWCET(%.0e) = %.0f cycles (refit moved it %.3f%%)\n",
				p.Runs, refProb, p.PWCET, 100*p.PWCETRelDelta)
		}))
	if err != nil {
		log.Fatal(err)
	}
	early, err := rep.Analysis.PWCET(refProb)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: the same seeds, all the way to the fixed budget.
	full, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(budget),
		mbpta.WithBaseSeed(baseSeed),
		mbpta.WithStopRule(mbpta.FixedRuns(budget)))
	if err != nil {
		log.Fatal(err)
	}
	ref, err := full.Analysis.PWCET(refProb)
	if err != nil {
		log.Fatal(err)
	}

	saved := budget - rep.StopRuns
	rel := math.Abs(early-ref) / ref
	fmt.Println()
	fmt.Printf("stopped at %d of %d runs (%d runs saved, %.0f%% of the campaign)\n",
		rep.StopRuns, budget, saved, 100*float64(saved)/budget)
	fmt.Printf("pWCET(%.0e): converged %.0f vs full-campaign %.0f cycles (%.2f%% apart)\n",
		refProb, early, ref, 100*rel)
	if !rep.Converged || rep.StopRuns >= budget {
		log.Fatal("convergence rule did not stop the campaign early")
	}
	if rel > 0.01 {
		log.Fatalf("converged estimate is %.2f%% off the full campaign (want <= 1%%)", 100*rel)
	}
	fmt.Println("early stop is within 1% of the full fixed-size campaign")
}
