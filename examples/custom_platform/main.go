// Custom platform + custom workload: the library is not tied to the
// paper's 16KB/4-way geometry or to TVCA. This example builds a small
// 8KB 2-way randomized cache configuration and a matrix-multiply kernel
// written with the program builder, then runs the full MBPTA flow.
//
//	go run ./examples/custom_platform
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/mbpta"
)

// matmul is a custom workload: C = A x B over n x n float64 matrices,
// with per-run random inputs. It implements mbpta.Workload.
type matmul struct {
	n int
}

const (
	matBase = 0x40000 // data segment: A, then B, then C
)

func newMatmul(n int) (*matmul, error) {
	m := &matmul{n: n}
	return m, nil
}

func (m *matmul) Name() string { return fmt.Sprintf("matmul-%dx%d", m.n, m.n) }

// Prepare assembles the kernel (labels resolved per call; the program
// is identical every run) and writes fresh random matrices.
func (m *matmul) Prepare(run int) (*mbpta.Machine, error) {
	n := int32(m.n)
	aOff, bOff, cOff := int32(0), n*n*8, 2*n*n*8

	b := mbpta.NewProgramBuilder("matmul", 0x1000)
	// r20 = base, r1 = i, r2 = j, r3 = k, r4 = n.
	b.Li(20, matBase)
	b.Li(4, n)
	b.Li(1, 0)
	b.Label("i")
	b.Li(2, 0)
	b.Label("j")
	b.Fcvt(1, 0) // f1 = 0 accumulator
	b.Li(3, 0)
	b.Label("k")
	// f2 = A[i*n+k]
	b.Mul(5, 1, 4)
	b.Add(5, 5, 3)
	b.Sll(5, 5, 3)
	b.Add(5, 5, 20)
	b.Fld(2, 5, aOff)
	// f3 = B[k*n+j]
	b.Mul(6, 3, 4)
	b.Add(6, 6, 2)
	b.Sll(6, 6, 3)
	b.Add(6, 6, 20)
	b.Fld(3, 6, bOff)
	b.Fmul(2, 2, 3)
	b.Fadd(1, 1, 2)
	b.Addi(3, 3, 1)
	b.Blt(3, 4, "k")
	// C[i*n+j] = f1
	b.Mul(5, 1, 4)
	b.Add(5, 5, 2)
	b.Sll(5, 5, 3)
	b.Add(5, 5, 20)
	b.Fst(5, cOff, 1)
	b.Addi(2, 2, 1)
	b.Blt(2, 4, "j")
	b.Addi(1, 1, 1)
	b.Blt(1, 4, "i")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	mem := mbpta.NewMemory()
	// Per-run inputs: a cheap LCG keyed on the run index.
	state := uint64(run)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>40) / float64(1<<24)
	}
	for i := int32(0); i < n*n; i++ {
		if err := mem.Write64(uint64(matBase+aOff+8*i), next()); err != nil {
			return nil, err
		}
		if err := mem.Write64(uint64(matBase+bOff+8*i), next()); err != nil {
			return nil, err
		}
	}
	return mbpta.NewMachine(prog, mem), nil
}

// PathOf: the kernel is single-path.
func (m *matmul) PathOf(*mbpta.Machine) string { return "" }

func main() {
	// A smaller randomized platform: 8KB 2-way L1s, everything else as
	// the reference MBPTA-compliant build.
	cfg := mbpta.RANDPlatform()
	cfg.Name = "RAND-8K2W"
	cfg.IL1.SizeBytes = 8 * 1024
	cfg.IL1.Ways = 2
	cfg.DL1.SizeBytes = 8 * 1024
	cfg.DL1.Ways = 2

	w, err := newMatmul(24) // 24x24: A+B+C = 13.5KB vs 8KB DL1
	if err != nil {
		log.Fatal(err)
	}
	rep, err := mbpta.Campaign(context.Background(), cfg, w,
		mbpta.WithRuns(800), mbpta.WithBaseSeed(5), mbpta.MeasureOnly())
	if err != nil {
		log.Fatal(err)
	}
	set := rep.TraceSet()
	gate, err := mbpta.CheckIID(set.Times(), 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gate)
	res, err := mbpta.NewAnalyzer(mbpta.Options{}).Analyze(set.Times())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted tail: %s\n", res.Paths[0].Fit)
	for _, q := range []float64{1e-6, 1e-12} {
		bound, err := res.PWCET(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pWCET(%.0e) = %.0f cycles on %s\n", q, bound, cfg.Name)
	}
}
