// Resumable campaign: journal a measurement campaign to a write-ahead
// log, kill it partway through (here: context cancellation plus a
// deliberately torn journal tail, the on-disk state a power cut leaves
// behind), then resume from the journal and verify the resumed report
// is bit-identical to an uninterrupted reference campaign. The
// comparison uses CampaignReport.Fingerprint, a canonical SHA-256 over
// every measured and derived value except wall-clock fields.
//
//	go run ./examples/resumable_campaign
//
// `make resume-check` runs this program as the end-to-end durability
// gate.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/pkg/mbpta"
)

const (
	runs     = 600
	batch    = 100
	baseSeed = 42
	refProb  = 1e-12
)

func campaignOptions(extra ...mbpta.CampaignOption) []mbpta.CampaignOption {
	opts := []mbpta.CampaignOption{
		mbpta.WithRuns(runs),
		mbpta.WithBatchSize(batch),
		mbpta.WithBaseSeed(baseSeed),
		mbpta.WithStopRule(mbpta.PWCETDelta(refProb, 0.005, 3)),
	}
	return append(opts, extra...)
}

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "resumable-campaign-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	journal := filepath.Join(dir, "campaign.wal")

	// Reference: the same campaign, uninterrupted and unjournaled. A
	// stop rule that rides out the whole budget is fine here — the
	// invariant under test is bit-identity, not early stopping.
	ref, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		campaignOptions()...)
	if err != nil && !errors.Is(err, mbpta.ErrNotConverged) {
		log.Fatal(err)
	}
	refFP := ref.Fingerprint()
	fmt.Printf("reference campaign: %d runs, fingerprint %s...\n",
		len(ref.Campaign.Results), refFP[:16])

	// Journaled campaign, killed after the second batch barrier. The
	// engine flushes every completed run before honoring the
	// cancellation, so the journal holds a clean prefix.
	ctx, cancel := context.WithCancel(context.Background())
	partial, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app,
		campaignOptions(
			mbpta.WithJournal(journal),
			mbpta.WithProgress(func(p mbpta.Progress) {
				if p.Batch >= 1 {
					cancel()
				}
			}))...)
	cancel()
	if !errors.Is(err, mbpta.ErrCanceled) {
		log.Fatalf("expected a canceled campaign, got %v", err)
	}
	fmt.Printf("killed after %d runs; journal %s\n", len(partial.Campaign.Results), journal)

	// Make the kill harsher: tear the journal tail mid-record, the way
	// a power cut or kill -9 during a write would. Recovery truncates
	// the torn bytes back to the last checkpoint and re-executes from
	// there with the original per-run seeds.
	fi, err := os.Stat(journal)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.Truncate(journal, fi.Size()-7); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tore the journal tail (%d -> %d bytes)\n", fi.Size(), fi.Size()-7)

	// Resume: replay the journal, restore the analyzer state, finish
	// the campaign.
	resumed, err := mbpta.Resume(context.Background(), mbpta.RANDPlatform(), app, journal,
		campaignOptions()...)
	if err != nil && !errors.Is(err, mbpta.ErrNotConverged) {
		log.Fatal(err)
	}
	resumedFP := resumed.Fingerprint()
	fmt.Printf("resumed campaign:   %d runs, fingerprint %s...\n",
		len(resumed.Campaign.Results), resumedFP[:16])

	if resumedFP != refFP {
		log.Fatalf("FAIL: resumed fingerprint %s != reference %s", resumedFP, refFP)
	}
	bound, err := resumed.Analysis.PWCET(refProb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pWCET(%.0e) = %.0f cycles\n", refProb, bound)
	fmt.Println("PASS: kill + torn tail + resume is bit-identical to the uninterrupted campaign")
}
