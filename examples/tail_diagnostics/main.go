// Tail diagnostics beyond the paper's pipeline: the same campaign
// analyzed with both tail estimators (block-maxima Gumbel, the paper's
// method, and peaks-over-threshold GPD), a bootstrap confidence
// interval around the pWCET estimate, and the MBPTA-CV
// coefficient-of-variation ladder that justifies the exponential-tail
// assumption.
//
//	go run ./examples/tail_diagnostics
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/mbpta"
)

const runs = 1500

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs), mbpta.WithBaseSeed(2024), mbpta.MeasureOnly())
	if err != nil {
		log.Fatal(err)
	}
	times := rep.TraceSet().Times()

	// Two tail estimators over the same campaign.
	for _, method := range []mbpta.TailMethod{mbpta.MethodBlockMaxima, mbpta.MethodPoT} {
		res, err := mbpta.NewAnalyzer(mbpta.Options{Method: method}).Analyze(times)
		if err != nil {
			log.Fatal(err)
		}
		b9, err := res.PWCET(1e-9)
		if err != nil {
			log.Fatal(err)
		}
		b15, err := res.PWCET(1e-15)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s pWCET(1e-9) = %.0f   pWCET(1e-15) = %.0f\n", method, b9, b15)
	}

	// How much is the point estimate worth? A 95% bootstrap interval.
	an := mbpta.NewAnalyzer(mbpta.Options{})
	ci, err := an.BootstrapPWCET(times, 1e-12, 500, 0.95, 99)
	if err != nil {
		log.Fatal(err)
	}
	point, err := must(an.Analyze(times)).PWCET(1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npWCET(1e-12) = %.0f cycles, 95%% bootstrap CI [%.0f, %.0f]\n",
		point, ci.Lo, ci.Hi)

	// The MBPTA-CV exponentiality ladder: CV of threshold exceedances
	// should settle around 1 (exponential tail) or below (bounded).
	pts, err := mbpta.ExponentialityCV(times, 0.5, 0.95, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMBPTA-CV ladder (threshold quantile -> CV of exceedances):")
	for _, p := range pts {
		marker := " "
		if p.InBand {
			marker = "*"
		}
		fmt.Printf("  u=%-9.0f n=%-5d CV=%.3f %s\n", p.Threshold, p.Exceedances, p.CV, marker)
	}
	ok, err := mbpta.CVVerdict(pts, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Println("verdict: tail accepted (exponential or lighter) - Gumbel projection is sound")
	} else {
		fmt.Println("verdict: tail REJECTED as heavy - do not trust the Gumbel projection")
	}
}

func must(r *mbpta.Result, err error) *mbpta.Result {
	if err != nil {
		log.Fatal(err)
	}
	return r
}
