// Quickstart: measure the TVCA case study on the time-randomized
// platform and derive a probabilistic WCET bound.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/pkg/mbpta"
)

func main() {
	// The workload: the thrust-vector-control application with a
	// shorter major frame so the demo finishes in seconds.
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Collect a measurement campaign on the MBPTA-compliant platform:
	// every run flushes the caches, resets the board, reloads the
	// binary and installs a fresh seed.
	const runs = 1000
	set, err := mbpta.Collect(mbpta.RANDPlatform(), app, runs, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d runs of %s on %s\n", runs, set.Workload, set.Platform)

	// The i.i.d. gate must pass before MBPTA applies.
	gate, err := mbpta.CheckIID(set.Times(), 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gate)

	// Fit the extreme-value tail per executed path and query pWCET.
	res, err := mbpta.NewAnalyzer(mbpta.Options{}).AnalyzeByPath(set.TimesByPath())
	if err != nil {
		log.Fatal(err)
	}
	for _, q := range []float64{1e-6, 1e-9, 1e-12, 1e-15} {
		bound, err := res.PWCET(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pWCET(%.0e) = %.0f cycles\n", q, bound)
	}
}
