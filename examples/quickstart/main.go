// Quickstart: measure the TVCA case study on the time-randomized
// platform and derive a probabilistic WCET bound with the v2 campaign
// API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/mbpta"
)

func main() {
	// The workload: the thrust-vector-control application with a
	// shorter major frame so the demo finishes in seconds.
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Run a measurement campaign on the MBPTA-compliant platform:
	// every run flushes the caches, resets the board, reloads the
	// binary and installs a fresh seed. Campaign also applies the
	// analysis pipeline: the i.i.d. gate, the per-path block-maxima
	// Gumbel fit, and pWCET projection.
	rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(1000),
		mbpta.WithBaseSeed(42),
		mbpta.WithProgress(func(p mbpta.Progress) {
			fmt.Printf("  batch %d: %d runs done\n", p.Batch, p.Runs)
		}))
	if err != nil {
		log.Fatal(err)
	}
	set := rep.TraceSet()
	fmt.Printf("collected %d runs of %s on %s\n",
		len(set.Samples), set.Workload, set.Platform)

	// The i.i.d. gate already passed (Campaign would have returned
	// ErrIIDGateFailed otherwise); print the verdict for the record.
	gate, err := mbpta.CheckIID(set.Times(), 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gate)

	// Query the fitted extreme-value tail at the cutoffs of interest.
	for _, q := range []float64{1e-6, 1e-9, 1e-12, 1e-15} {
		bound, err := rep.Analysis.PWCET(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("pWCET(%.0e) = %.0f cycles\n", q, bound)
	}
}
