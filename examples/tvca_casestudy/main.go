// The paper's Space case study end to end, via the public API: TVCA is
// measured on both processor builds, the MBPTA analysis produces the
// Figure-2 pWCET curve, and the result is compared against the
// industrial high-watermark-plus-margin practice of Figure 3.
//
//	go run ./examples/tvca_casestudy
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/pkg/mbpta"
)

const runs = 1500

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Campaign on the MBPTA-compliant (time-randomized) platform.
	randRep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs), mbpta.WithBaseSeed(7), mbpta.MeasureOnly())
	if err != nil {
		log.Fatal(err)
	}
	randSet := randRep.TraceSet()
	// Campaign on the deterministic baseline, as industrial MBTA does.
	detRep, err := mbpta.Campaign(context.Background(), mbpta.DETPlatform(), app,
		mbpta.WithRuns(runs), mbpta.WithBaseSeed(8), mbpta.MeasureOnly())
	if err != nil {
		log.Fatal(err)
	}
	detSet := detRep.TraceSet()

	// MBPTA on the randomized campaign (per-path, max across paths).
	res, err := mbpta.NewAnalyzer(mbpta.Options{}).AnalyzeByPath(randSet.TimesByPath())
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range res.Paths {
		fmt.Printf("path %-22s n=%-5d Ljung-Box p=%.2f  KS p=%.2f  fit=%s\n",
			p.Path, p.N, p.IID.Independence.PValue, p.IID.IdentDist.PValue, p.Fit)
	}

	// Classical MBTA on the deterministic campaign.
	base, err := mbpta.AnalyzeMBTA(detSet.Times())
	if err != nil {
		log.Fatal(err)
	}
	margin50, err := base.WCET(0.5)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 3: put everything side by side.
	bars := []mbpta.ReportBar{
		{Label: "DET avg", Value: base.Mean},
		{Label: "DET HWM", Value: base.HWM},
		{Label: "DET HWM +50% (MBTA)", Value: margin50},
	}
	for _, q := range []float64{1e-6, 1e-9, 1e-12, 1e-15} {
		bound, err := res.PWCET(q)
		if err != nil {
			log.Fatal(err)
		}
		bars = append(bars, mbpta.ReportBar{
			Label: fmt.Sprintf("pWCET @ %.0e", q), Value: bound,
		})
	}
	if err := mbpta.RenderBarChart(os.Stdout, "MBPTA vs deterministic-platform MBTA (cycles)", 50, bars); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nMBPTA provides probabilistic evidence for its bound; the MBTA margin is an")
	fmt.Println("engineering factor whose sufficiency (e.g. against unlucky cache layouts)")
	fmt.Println("must be argued separately.")
}
