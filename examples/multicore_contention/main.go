// Multicore contention: the paper's platform has four cores, and MBPTA
// is expected to remain applicable when the other cores are busy. This
// example co-simulates TVCA against memory-streaming co-runners (real
// guest programs sharing the bus and DRAM, not synthetic traffic),
// shows the slowdown, and re-runs the full analysis on the contended
// campaign.
//
//	go run ./examples/multicore_contention
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/mbpta"
)

// streamer sweeps a DL1-sized buffer, missing on most lines — a
// bus-hungry co-runner.
type streamer struct{}

func (streamer) Name() string { return "streamer" }

func (streamer) Prepare(run int) (*mbpta.Machine, error) {
	b := mbpta.NewProgramBuilder("streamer", 0x8000)
	b.Li(1, 0x400000)
	b.Li(2, 0)
	b.Li(3, 1024)
	b.Label("loop")
	b.Ld(4, 1, 0)
	b.Addi(1, 1, 32)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return mbpta.NewMachine(p, mbpta.NewMemory()), nil
}

func (streamer) PathOf(*mbpta.Machine) string { return "" }

const runs = 500

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 4
	cfg.Sensors = 16
	cfg.Taps = 16
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	collect := func(coRunners int) ([]float64, error) {
		co := make([]mbpta.Workload, coRunners)
		for i := range co {
			co[i] = streamer{}
		}
		rep, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
			mbpta.WithRuns(runs), mbpta.WithBaseSeed(1),
			mbpta.WithCoRunners(co...), mbpta.MeasureOnly())
		if err != nil {
			return nil, err
		}
		return rep.TraceSet().Times(), nil
	}

	solo, err := collect(0)
	if err != nil {
		log.Fatal(err)
	}
	contended, err := collect(3)
	if err != nil {
		log.Fatal(err)
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	fmt.Printf("solo mean:      %.0f cycles\n", mean(solo))
	fmt.Printf("contended mean: %.0f cycles (%.2fx)\n",
		mean(contended), mean(contended)/mean(solo))

	// MBPTA stays applicable under contention: gate + fit on the
	// contended campaign.
	gate, err := mbpta.CheckIID(contended, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(gate)
	res, err := mbpta.NewAnalyzer(mbpta.Options{BlockSize: 25}).Analyze(contended)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := res.PWCET(1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contended pWCET(1e-12) = %.0f cycles\n", bound)
}
