// Timing-leak gate: run the secret-dependent probe workload on the
// deterministic and the time-randomized platform and require the
// nine-decile quantile gate to (a) flag the DET build as leaking the
// secret with posterior probability >= 0.999 and (b) clear the RAND
// build with posterior probability <= 0.5. Any violation — including
// the oracle failing to separate the platforms — exits non-zero.
//
//	go run ./examples/leak_check
//
// `make leak-check` runs this program as the side-channel closure
// gate: it is the paper's time-randomization argument restated as an
// enforced property.
package main

import (
	"context"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	// 200 runs per secret variant keep the gate under a second while
	// leaving the DET/RAND posteriors saturated at the two ends.
	cmp, err := experiments.RunLeakOracle(context.Background(), experiments.LeakParams{Runs: 200})
	if err != nil {
		log.Fatalf("leak_check: %v", err)
	}
	experiments.RenderLeak(os.Stdout, cmp)
	if !cmp.DET.Leaks() || cmp.DET.Gate.LeakProbability < 0.999 {
		log.Fatalf("leak_check: DET posterior leak probability %.6f — the deterministic build must leak the secret (>= 0.999)",
			cmp.DET.Gate.LeakProbability)
	}
	if cmp.RAND.Leaks() || cmp.RAND.Gate.LeakProbability > 0.5 {
		log.Fatalf("leak_check: RAND posterior leak probability %.6f — the time-randomized build must not leak (<= 0.5)",
			cmp.RAND.Gate.LeakProbability)
	}
	if !cmp.Separated() {
		log.Fatal("leak_check: oracle did not separate the platforms")
	}
}
