// Probabilistic schedulability: the paper's TVCA schedules three
// periodic tasks under fixed priorities. This example measures
// *per-task* execution times (cycles are attributed to tasks by PC
// span), fits a pWCET per task at a chosen exceedance probability, and
// feeds those budgets into classical response-time analysis — the way
// MBPTA composes with scheduling theory in the literature that follows
// the paper.
//
//	go run ./examples/schedulability
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/pkg/mbpta"
)

const (
	runs   = 800
	cutoff = 1e-12
)

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Per-task campaign on the MBPTA-compliant platform: per run, each
	// task contributes its worst job time. (Concatenating every job
	// would fail the i.i.d. gate — consecutive jobs within a run share
	// warmed cache state; per-run worst-case samples are i.i.d. and
	// conservatively cover all activations.)
	byTask, err := mbpta.PerTaskWorstCampaign(mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs), mbpta.WithBaseSeed(31))
	if err != nil {
		log.Fatal(err)
	}

	// Fit a per-task pWCET. Job samples per task are plentiful (the
	// sensor runs every minor frame), so a small block size suffices.
	tasks := mbpta.TVCATasks()
	budgets := make(map[string]uint64, len(tasks))
	names := make([]string, 0, len(byTask))
	for name := range byTask {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		times := byTask[name]
		lo, hi := minMax(times)
		var bound float64
		if lo == hi {
			// A task whose worst job is identical every run (small cold
			// footprint, no conflict-sensitive reuse) has no jitter to
			// model: its measurement IS its bound.
			bound = hi
			fmt.Printf("%-12s %6d runs   constant worst job %7.0f cycles (jitterless)\n",
				name, len(times), hi)
		} else {
			res, err := mbpta.NewAnalyzer(mbpta.Options{BlockSize: 25}).Analyze(times)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			if bound, err = res.PWCET(cutoff); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s %6d runs   mean %7.0f   pWCET(%.0e) %7.0f cycles\n",
				name, len(times), mean(times), cutoff, bound)
		}
		budgets[name] = uint64(bound)
	}

	// Response-time analysis with the pWCET budgets. The minor frame
	// must be long enough for the worst frame (all three tasks).
	for i := range tasks {
		tasks[i].WCET = budgets[tasks[i].Name]
	}
	frame := budgets["sensor-acq"] + budgets["actuator-x"] + budgets["actuator-y"] + 2000
	rts, err := mbpta.ResponseTimes(tasks, frame)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminor frame budget: %d cycles\n", frame)
	for i, task := range tasks {
		deadline := uint64(task.Period) * frame
		fmt.Printf("%-12s response time %7d / deadline %7d cycles (%.0f%%)\n",
			task.Name, rts[i], deadline, 100*float64(rts[i])/float64(deadline))
	}
	fmt.Println("\nall response times within deadlines: the task set is schedulable")
	fmt.Printf("with per-task overrun probability <= %.0e per activation.\n", cutoff)
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
