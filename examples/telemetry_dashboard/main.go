// Telemetry dashboard: run a TVCA campaign with the observability
// layer enabled and watch it from the outside, the way a long fault
// campaign would be monitored in practice.
//
// The example wires all three exposition paths at once:
//
//   - an HTTP endpoint (/metrics Prometheus text, /metrics.json) that
//     a scraper or a plain curl can poll while the campaign runs;
//   - a ring sink retaining the most recent structured events
//     (campaign_start, per-run, batch, analysis, campaign_end);
//   - the per-batch Progress callback, which now carries the gate
//     p-values and the discarded block-maxima count mid-stream.
//
// Telemetry is disabled by default everywhere in the library: a nil
// registry costs nothing and leaves campaigns bit-identical. Enabling
// it, as here, costs <3% (see BENCH_2.json).
//
//	go run ./examples/telemetry_dashboard
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/pkg/mbpta"
)

const (
	runs     = 1500
	baseSeed = 42
)

func main() {
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = 8
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// One registry serves metrics and events alike. The ring keeps the
	// last 64 events in memory; a JSONL sink writing to a file would
	// capture the full deterministic event log instead.
	reg := mbpta.NewTelemetry()
	ring := mbpta.NewTelemetryRing(64)
	reg.Attach(ring)

	srv, err := mbpta.ServeTelemetry("127.0.0.1:0", reg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("serving %s/metrics while the campaign runs\n\n", srv.URL())

	report, err := mbpta.Campaign(context.Background(), mbpta.RANDPlatform(), app,
		mbpta.WithRuns(runs),
		mbpta.WithBaseSeed(baseSeed),
		mbpta.WithBatchSize(250),
		mbpta.WithTelemetry(reg),
		mbpta.WithProgress(func(p mbpta.Progress) {
			if !p.GateChecked {
				return
			}
			fmt.Printf("batch %2d: %4d runs, gate p=(LB %.3f, KS %.3f), %d obs outside blocks\n",
				p.Batch, p.Runs, p.Gate.Independence.PValue, p.Gate.IdentDist.PValue, p.Discarded)
		}))
	if err != nil {
		log.Fatal(err)
	}

	// Scrape our own endpoint, exactly as Prometheus would.
	fmt.Println("\nscraping /metrics:")
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "sim_ipc") ||
			strings.HasPrefix(line, "sim_dl1_hit_ratio") ||
			strings.HasPrefix(line, "campaign_runs_total") ||
			strings.HasPrefix(line, "analysis_gate_") ||
			strings.HasPrefix(line, "analysis_pwcet") {
			fmt.Println("  " + line)
		}
	}

	bound, err := report.Analysis.PWCET(1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npWCET(1e-12) = %.0f cycles over %d runs\n", bound, len(report.Campaign.Results))

	// The ring holds the tail of the structured event stream.
	events := ring.Events()
	tail := events[max(0, len(events)-5):]
	fmt.Printf("\nlast %d events (of a deterministic stream — same seed, same log):\n", len(tail))
	for _, ev := range tail {
		line, err := ev.MarshalJSON()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("  " + string(line))
	}

	fmt.Println()
	mbpta.TelemetryTable(os.Stdout, "registry snapshot (excerpt)", excerpt(reg.Snapshot()))
}

// excerpt trims the full snapshot to the headline instruments so the
// closing table stays readable.
func excerpt(snap map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for name, v := range snap {
		switch {
		case strings.HasSuffix(name, "_hit_ratio"),
			strings.HasPrefix(name, "campaign_") && strings.HasSuffix(name, "_total"),
			name == "sim_ipc",
			name == "campaign_runs_per_sec",
			strings.HasPrefix(name, "analysis_gate_"),
			name == "analysis_pwcet",
			name == "analysis_block_discarded":
			out[name] = v
		}
	}
	return out
}
