// Matrix cache gate: run a small scenario matrix cold, re-run it after
// an analysis-only tweak (different report quantiles), and require the
// warm pass to (a) re-simulate zero runs, (b) serve at least 90% of its
// runs from the content-addressed cache, (c) produce bit-identical
// per-cell fingerprints, and (d) finish at least 5x faster than the
// cold pass. Any violation exits non-zero.
//
//	go run ./examples/matrix_check
//
// `make matrix-check` runs this program as the run-cache correctness
// and performance gate.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fabric"
	"repro/internal/matrix"
)

// The matrix is sized so the cold pass does enough simulation for the
// 5x wall-clock ratio to be meaningful (roughly a second of work), yet
// stays small enough for CI.
func spec() matrix.Spec {
	return matrix.Spec{
		Name:      "matrix-check",
		Platforms: []string{"DET", "RAND"},
		Workloads: []fabric.WorkloadSpec{
			{Kind: "crc32", Params: json.RawMessage(`{"Bytes":4096,"Seed":1}`)},
			{Kind: "isort", Params: json.RawMessage(`{"N":96,"Seed":1}`)},
		},
		Runs:     500,
		Batch:    100,
		BaseSeed: 42,
		Analysis: matrix.AnalysisSpec{BlockSize: 50},
	}
}

func runPass(runner *matrix.Runner, s matrix.Spec, label string) (*matrix.Report, time.Duration) {
	started := time.Now()
	rep, err := runner.Run(context.Background(), s)
	if err != nil {
		log.Fatalf("matrix_check: %s pass: %v", label, err)
	}
	elapsed := time.Since(started)
	fmt.Printf("%s pass: %d cells, %d cached + %d simulated runs in %s\n",
		label, len(rep.Cells), rep.CachedRuns, rep.SimulatedRuns, elapsed.Round(time.Millisecond))
	return rep, elapsed
}

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "matrix-check-*")
	if err != nil {
		log.Fatalf("matrix_check: %v", err)
	}
	defer os.RemoveAll(dir)
	cache, err := matrix.NewCache(filepath.Join(dir, "cache"))
	if err != nil {
		log.Fatalf("matrix_check: %v", err)
	}
	pool := fabric.NewPool(fabric.Config{})
	defer pool.Close()
	runner := &matrix.Runner{Pool: pool, Cache: cache, CellParallel: 2}

	cold, coldElapsed := runPass(runner, spec(), "cold")
	if cold.CachedRuns != 0 {
		log.Fatalf("matrix_check: cold pass reported %d cached runs; the cache directory was not fresh", cold.CachedRuns)
	}

	// The warm pass changes only the report quantiles — an analysis
	// parameter that is queried after the fact and is not part of the
	// campaign fingerprint, so replayed cells must fingerprint
	// identically to the cold ones.
	warmSpec := spec()
	warmSpec.Analysis.Quantiles = []float64{1e-6, 1e-9}
	warm, warmElapsed := runPass(runner, warmSpec, "warm")

	if warm.SimulatedRuns != 0 {
		log.Fatalf("matrix_check: warm pass re-simulated %d runs; analysis-only changes must replay from the cache", warm.SimulatedRuns)
	}
	total := warm.CachedRuns + warm.SimulatedRuns
	if total == 0 || float64(warm.CachedRuns)/float64(total) < 0.90 {
		log.Fatalf("matrix_check: warm pass served %d/%d runs from the cache (< 90%%)", warm.CachedRuns, total)
	}
	for i := range warm.Cells {
		w, c := &warm.Cells[i], &cold.Cells[i]
		if w.Fingerprint != c.Fingerprint {
			log.Fatalf("matrix_check: cell %s: cached fingerprint %s != fresh %s — cached replay is not bit-identical",
				w.Label, w.Fingerprint, c.Fingerprint)
		}
	}
	if warmElapsed*5 > coldElapsed {
		log.Fatalf("matrix_check: warm pass %s is not >=5x faster than cold %s", warmElapsed, coldElapsed)
	}
	fmt.Printf("OK: warm pass replayed %d runs bit-identically, %.1fx faster than cold\n",
		warm.CachedRuns, float64(coldElapsed)/float64(warmElapsed))
}
