package cpu

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/fpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/rng"
	"repro/internal/tlb"
)

// testCore builds a single deterministic core with small caches so
// tests can force misses cheaply.
func testCore(t *testing.T, mode fpu.Mode) *Core {
	t.Helper()
	mkCache := func(name string) *cache.Cache {
		c, err := cache.New(cache.Config{
			Name: name, SizeBytes: 1024, LineBytes: 32, Ways: 2,
			Placement: cache.PlacementModulo, Replacement: cache.ReplaceLRU,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	mkTLB := func(name string) *tlb.TLB {
		tl, err := tlb.New(tlb.Config{
			Name: name, Entries: 8, PageBytes: 4096,
			Replacement: tlb.ReplaceLRU, WalkAccesses: 2,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return tl
	}
	f, err := fpu.New(fpu.DefaultLatencies(), mode)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.New(bus.Config{TransferCycles: 4, Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	dram, err := mem.New(mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	core, err := NewCore(0, DefaultParams(), mkCache("IL1"), mkCache("DL1"),
		mkTLB("ITLB"), mkTLB("DTLB"), f, BusMem{Bus: b, Mem: dram})
	if err != nil {
		t.Fatal(err)
	}
	return core
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.IntDivExtra = -1
	if err := p.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
	p = DefaultParams()
	p.StoreBufferDepth = 0
	if err := p.Validate(); err == nil {
		t.Error("zero store buffer accepted")
	}
}

func TestNewCoreNilComponent(t *testing.T) {
	if _, err := NewCore(0, DefaultParams(), nil, nil, nil, nil, nil, nil); err == nil {
		t.Error("nil components accepted")
	}
}

func buildAndRun(t *testing.T, core *Core, build func(b *isa.Builder)) uint64 {
	t.Helper()
	b := isa.NewBuilder("prog", 0)
	build(b)
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := isa.NewMachine(prog, isa.NewMemory())
	cycles, err := core.RunProgram(m)
	if err != nil {
		t.Fatal(err)
	}
	return cycles
}

func TestStraightLineCost(t *testing.T) {
	core := testCore(t, fpu.ModeAnalysis)
	// 10 nops + halt, all in one icache line after the first fill and
	// one ITLB walk.
	cycles := buildAndRun(t, core, func(b *isa.Builder) {
		for i := 0; i < 10; i++ {
			b.Nop()
		}
		b.Halt()
	})
	st := core.Stats()
	if st.Instructions != 11 {
		t.Errorf("instructions = %d", st.Instructions)
	}
	// Base cost 11; plus 1 IL1 fill per touched line (11*4=44 bytes → 2
	// lines) and one ITLB walk (2 accesses).
	base := uint64(11)
	if cycles <= base {
		t.Errorf("cycles = %d, want > %d (stalls missing)", cycles, base)
	}
	if st.IFetchStall == 0 {
		t.Error("no fetch stalls recorded on a cold cache")
	}
	if st.CPI() <= 1 {
		t.Errorf("CPI = %.2f, want > 1 cold", st.CPI())
	}
}

func TestWarmLoopApproachesBaseCPI(t *testing.T) {
	core := testCore(t, fpu.ModeAnalysis)
	// A tight warm loop: after warmup, per-iteration cost should be the
	// base 3 cycles (addi, addi, blt) + 2-cycle taken-branch bubble.
	cycles := buildAndRun(t, core, func(b *isa.Builder) {
		b.Li(1, 0)
		b.Li(2, 10000)
		b.Label("loop")
		b.Addi(1, 1, 1)
		b.Blt(1, 2, "loop")
		b.Halt()
	})
	st := core.Stats()
	// ~2 instructions per iteration + taken bubble: ideal ~= 10000*(2+2).
	ideal := uint64(10000 * 4)
	if cycles < ideal || cycles > ideal+ideal/10 {
		t.Errorf("cycles = %d, want within 10%% above %d", cycles, ideal)
	}
	if st.BranchStall == 0 {
		t.Error("no branch stalls recorded")
	}
}

func TestColdVsWarmDataAccess(t *testing.T) {
	core := testCore(t, fpu.ModeAnalysis)
	// Two identical load sweeps; the second should be far cheaper.
	mkProg := func() *isa.Machine {
		b := isa.NewBuilder("sweep", 0)
		b.Li(1, 0x2000)
		b.Li(2, 0) // i
		b.Li(3, 8) // lines
		b.Label("loop")
		b.Ld(4, 1, 0)
		b.Addi(1, 1, 32)
		b.Addi(2, 2, 1)
		b.Blt(2, 3, "loop")
		b.Halt()
		prog, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return isa.NewMachine(prog, isa.NewMemory())
	}
	cold, err := core.RunProgram(mkProg())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := core.RunProgram(mkProg())
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Errorf("warm run (%d) not cheaper than cold (%d)", warm, cold)
	}
	if core.Stats().DMemStall == 0 {
		t.Error("no data stalls recorded")
	}
}

func TestFPUAnalysisModeCostsMoreOnEasyOperands(t *testing.T) {
	// FDIV of easy operands: operation mode terminates early, analysis
	// mode charges the worst case. Same program, different FPU mode.
	run := func(mode fpu.Mode) uint64 {
		core := testCore(t, mode)
		return buildAndRun(t, core, func(b *isa.Builder) {
			b.Li(1, 8)
			b.Li(2, 2)
			b.Fcvt(1, 1)
			b.Fcvt(2, 2)
			// 100 easy divisions (8/2 = power of two).
			for i := 0; i < 100; i++ {
				b.Fdiv(3, 1, 2)
			}
			b.Halt()
		})
	}
	analysis := run(fpu.ModeAnalysis)
	operation := run(fpu.ModeOperation)
	if analysis <= operation {
		t.Errorf("analysis %d <= operation %d on easy FDIVs", analysis, operation)
	}
	// Difference should be ~100 * (DivMax - DivMin).
	lat := fpu.DefaultLatencies()
	wantDiff := uint64(100 * (lat.DivMax - lat.DivMin))
	diff := analysis - operation
	if diff != wantDiff {
		t.Errorf("diff = %d, want %d", diff, wantDiff)
	}
}

func TestStoreBufferBackpressure(t *testing.T) {
	core := testCore(t, fpu.ModeAnalysis)
	// A burst of stores larger than the buffer must record store
	// stalls: each drain costs bus+DRAM (~32 cycles) while the core
	// issues one store per cycle.
	buildAndRun(t, core, func(b *isa.Builder) {
		b.Li(1, 0x2000)
		for i := int32(0); i < 32; i++ {
			b.St(1, i*4, 2)
		}
		b.Halt()
	})
	if core.Stats().StoreStall == 0 {
		t.Error("no store-buffer stalls on a 32-store burst")
	}
}

func TestResetClearsClockAndStats(t *testing.T) {
	core := testCore(t, fpu.ModeAnalysis)
	buildAndRun(t, core, func(b *isa.Builder) { b.Nop().Halt() })
	if core.Cycle() == 0 {
		t.Fatal("no cycles consumed")
	}
	core.Reset()
	if core.Cycle() != 0 || core.Stats() != (Stats{}) {
		t.Error("Reset incomplete")
	}
}

func TestFlushAllForcesRefetch(t *testing.T) {
	core := testCore(t, fpu.ModeAnalysis)
	run := func() uint64 {
		return buildAndRun(t, core, func(b *isa.Builder) {
			for i := 0; i < 8; i++ {
				b.Nop()
			}
			b.Halt()
		})
	}
	run()
	warm := run()
	core.FlushAll()
	cold := run()
	if cold <= warm {
		t.Errorf("post-flush run (%d) not slower than warm run (%d)", cold, warm)
	}
}

func TestTLBWalkCharged(t *testing.T) {
	core := testCore(t, fpu.ModeAnalysis)
	// Touch 16 distinct pages with loads: 8-entry DTLB must miss and
	// walk repeatedly on a second randomized-order pass too; here just
	// check walks show up as DMemStall beyond DL1 fills.
	buildAndRun(t, core, func(b *isa.Builder) {
		b.Li(1, 0)
		for p := int32(0); p < 16; p++ {
			b.Li(1, p*4096+0x100)
			b.Ld(2, 1, 0)
		}
		b.Halt()
	})
	if core.Stats().DMemStall == 0 {
		t.Error("no data-side stalls with 16-page sweep")
	}
}

func TestCPIZeroWithoutInstructions(t *testing.T) {
	if (Stats{}).CPI() != 0 {
		t.Error("CPI of empty stats != 0")
	}
}

func TestRandomizedCoreVariesAcrossSeeds(t *testing.T) {
	// A core with random-modulo placement and random replacement must
	// show run-to-run execution time variability across seeds for a
	// program whose footprint exceeds one way.
	mkRandCache := func(name string, src rng.Source) *cache.Cache {
		c, err := cache.New(cache.Config{
			Name: name, SizeBytes: 512, LineBytes: 32, Ways: 2,
			Placement: cache.PlacementRandomModulo, Replacement: cache.ReplaceRandom,
		}, src)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	src := rng.NewXoroshiro128(1)
	il1 := mkRandCache("IL1", src)
	dl1 := mkRandCache("DL1", src)
	itlb, _ := tlb.New(tlb.Config{Name: "ITLB", Entries: 8, PageBytes: 4096,
		Replacement: tlb.ReplaceRandom, WalkAccesses: 2}, src)
	dtlb, _ := tlb.New(tlb.Config{Name: "DTLB", Entries: 8, PageBytes: 4096,
		Replacement: tlb.ReplaceRandom, WalkAccesses: 2}, src)
	f, _ := fpu.New(fpu.DefaultLatencies(), fpu.ModeAnalysis)
	b, _ := bus.New(bus.Config{TransferCycles: 4, Cores: 1})
	dram, _ := mem.New(mem.DefaultConfig())
	core, err := NewCore(0, DefaultParams(), il1, dl1, itlb, dtlb, f, BusMem{Bus: b, Mem: dram})
	if err != nil {
		t.Fatal(err)
	}

	// Working set: four 4-line regions in distinct tag regions, swept
	// repeatedly. Under random modulo each region lands on 4 consecutive
	// sets at a per-seed random rotation, so the overlap between regions
	// — and hence the conflict-miss count — varies run to run.
	prog := func() *isa.Machine {
		bld := isa.NewBuilder("regions", 0)
		bases := []int32{0x8000, 0x10000, 0x18000, 0x20000}
		bld.Li(2, 0)  // pass counter
		bld.Li(3, 20) // passes
		bld.Label("pass")
		for _, base := range bases {
			bld.Li(1, base)
			for l := int32(0); l < 4; l++ {
				bld.Ld(4, 1, l*32)
			}
		}
		bld.Addi(2, 2, 1)
		bld.Blt(2, 3, "pass")
		bld.Halt()
		p, err := bld.Build()
		if err != nil {
			t.Fatal(err)
		}
		return isa.NewMachine(p, isa.NewMemory())
	}

	seen := make(map[uint64]bool)
	for seed := uint64(1); seed <= 20; seed++ {
		core.Reset()
		core.FlushAll()
		b.Reset()
		il1.Reseed(seed)
		dl1.Reseed(seed)
		src.Seed(seed)
		cycles, err := core.RunProgram(prog())
		if err != nil {
			t.Fatal(err)
		}
		seen[cycles] = true
	}
	if len(seen) < 3 {
		t.Errorf("randomized platform produced only %d distinct times across 20 seeds", len(seen))
	}
}

func TestBusMemDirectly(t *testing.T) {
	b, err := bus.New(bus.Config{TransferCycles: 4, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	dram, err := mem.New(mem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bm := BusMem{Bus: b, Mem: dram}
	start, lat := bm.Request(10, bus.KindLineFill, 0x1000)
	if start != 10 {
		t.Errorf("start = %d", start)
	}
	if lat != dram.Config().AccessCycles {
		t.Errorf("lat = %d", lat)
	}
	if bm.TransferCycles() != 4 {
		t.Errorf("transfer = %d", bm.TransferCycles())
	}
	// A second overlapping request from the other core's port queues
	// behind the first on the shared timeline.
	bm2 := BusMem{Bus: b, Mem: dram, Core: 1}
	start2, _ := bm2.Request(11, bus.KindWrite, 0x2000)
	if start2 != 14 {
		t.Errorf("queued start = %d, want 14", start2)
	}
}

func TestStallCountersPartitionCycles(t *testing.T) {
	// Cycles = instructions + all stall categories, exactly.
	core := testCore(t, fpu.ModeAnalysis)
	buildAndRun(t, core, func(b *isa.Builder) {
		b.Li(1, 0x2000)
		b.Li(2, 0)
		b.Li(3, 200)
		b.Label("loop")
		b.Ld(4, 1, 0)
		b.St(1, 4, 4)
		b.Fcvt(1, 4)
		b.Fdiv(2, 1, 1)
		b.Addi(1, 1, 32)
		b.Addi(2, 2, 1)
		b.Blt(2, 3, "loop")
		b.Halt()
	})
	st := core.Stats()
	sum := st.Instructions + st.IFetchStall + st.DMemStall +
		st.StoreStall + st.ExecStall + st.BranchStall
	if sum != st.Cycles {
		t.Errorf("cycles %d != instructions+stalls %d (stats %+v)", st.Cycles, sum, st)
	}
	for name, v := range map[string]uint64{
		"ifetch": st.IFetchStall, "dmem": st.DMemStall,
		"exec": st.ExecStall, "branch": st.BranchStall,
	} {
		if v == 0 {
			t.Errorf("no %s stalls recorded", name)
		}
	}
}
