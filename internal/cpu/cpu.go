// Package cpu implements the timing model of one LEON3-class core: a
// 7-stage in-order pipeline (fetch, decode, register access, execute,
// memory, exception, write-back) fed by split first-level caches and
// TLBs, with a write-through store buffer, a shared bus and the DRAM
// controller behind it.
//
// The model is event-additive: the architectural interpreter
// (internal/isa) feeds one Event per retired instruction, and the core
// charges the base pipelined cost plus every stall that event incurs
// (cache misses, TLB walks, long execute latencies, taken-branch
// bubbles, store-buffer pressure). This is the standard abstraction
// level of the MBPTA literature, where the analyzed jitter sources are
// exactly cache/TLB placement and replacement, FPU latency and memory
// interference.
package cpu

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/fpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/tlb"
)

// Params are the fixed pipeline latencies (cycles). Execute-stage
// latencies are *additional* cycles beyond the 1-cycle base CPI of a
// fully pipelined instruction.
type Params struct {
	IntMulExtra  int // integer multiply extra cycles
	IntDivExtra  int // integer divide extra cycles (fixed latency, jitterless)
	BranchTaken  int // pipeline bubbles on a taken branch/jump
	LoadUseExtra int // extra cycle of a load hit (cache access in ME stage)
	// StoreBufferDepth is the number of pending write-through stores the
	// core tolerates before stalling.
	StoreBufferDepth int
}

// DefaultParams returns LEON3-flavoured defaults.
func DefaultParams() Params {
	return Params{
		IntMulExtra:      3,
		IntDivExtra:      34,
		BranchTaken:      2,
		LoadUseExtra:     1,
		StoreBufferDepth: 4,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.IntMulExtra < 0 || p.IntDivExtra < 0 || p.BranchTaken < 0 || p.LoadUseExtra < 0 {
		return fmt.Errorf("cpu: negative latency in %+v", p)
	}
	if p.StoreBufferDepth < 1 {
		return fmt.Errorf("cpu: store buffer depth %d < 1", p.StoreBufferDepth)
	}
	return nil
}

// Stats aggregates per-run pipeline activity.
type Stats struct {
	Instructions uint64
	Cycles       uint64
	IFetchStall  uint64 // cycles lost to IL1 misses + ITLB walks
	DMemStall    uint64 // cycles lost to DL1 load misses + DTLB walks
	StoreStall   uint64 // cycles lost to a full store buffer
	ExecStall    uint64 // cycles lost to long execute latencies
	BranchStall  uint64 // taken-branch bubbles
}

// CPI returns cycles per instruction.
func (s Stats) CPI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Cycles) / float64(s.Instructions)
}

// IPC returns instructions per cycle — the throughput form the
// telemetry layer reports.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Interconnect is the memory-system contract the core needs: FCFS bus
// grants on a global timeline, the DRAM access latency behind each
// transaction, and the per-transaction bus occupancy. BusMem couples
// the stand-alone bus and DRAM models; the platform layer substitutes
// interference injectors or the multicore arbiter.
type Interconnect interface {
	// Request asks for the bus at time t for a transaction on addr. It
	// returns the grant cycle and the memory access latency behind the
	// transfer. The requesting core's identity is fixed at port
	// construction — an Interconnect value serves exactly one core, so
	// the request carries no core argument a caller could mismatch.
	Request(t uint64, kind bus.Kind, addr uint64) (start, memLat uint64)
	// TransferCycles is the bus occupancy of one transaction.
	TransferCycles() uint64
}

// BusMem is the single-requestor Interconnect: a bus directly in front
// of the DRAM controller, requesting on behalf of Core (zero value:
// core 0, the measured core).
type BusMem struct {
	Bus  *bus.Bus
	Mem  *mem.Controller
	Core int
}

// Request grants the bus FCFS and charges the DRAM access.
func (bm BusMem) Request(t uint64, kind bus.Kind, addr uint64) (uint64, uint64) {
	start := bm.Bus.Request(bm.Core, t, kind)
	return start, bm.Mem.Latency(addr)
}

// TransferCycles forwards the bus occupancy.
func (bm BusMem) TransferCycles() uint64 { return bm.Bus.TransferCycles() }

// Core is the timing model of one core. Not safe for concurrent use.
type Core struct {
	ID     int
	Params Params

	IL1  *cache.Cache
	DL1  *cache.Cache
	ITLB *tlb.TLB
	DTLB *tlb.TLB
	FPU  *fpu.FPU
	Bus  Interconnect

	cycle      uint64
	storeSlots []uint64 // completion times of in-flight write-through stores
	stats      Stats

	// Hot-path constants, resolved once at construction so Consume does
	// not re-read config structs per retired instruction.
	itlbWalks   int
	dtlbWalks   int
	fpAddExtra  uint64
	fpMulExtra  uint64
	intMulExtra uint64
	intDivExtra uint64
	branchTaken uint64
	loadUse     uint64
}

// NewCore wires a core together. All components must be non-nil.
func NewCore(id int, params Params, il1, dl1 *cache.Cache, itlb, dtlb *tlb.TLB,
	f *fpu.FPU, b Interconnect) (*Core, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if il1 == nil || dl1 == nil || itlb == nil || dtlb == nil || f == nil || b == nil {
		return nil, fmt.Errorf("cpu: core %d: nil component", id)
	}
	return &Core{
		ID: id, Params: params,
		IL1: il1, DL1: dl1, ITLB: itlb, DTLB: dtlb,
		FPU: f, Bus: b,
		storeSlots:  make([]uint64, params.StoreBufferDepth),
		itlbWalks:   itlb.Config().WalkAccesses,
		dtlbWalks:   dtlb.Config().WalkAccesses,
		fpAddExtra:  uint64(f.AddLatency() - 1),
		fpMulExtra:  uint64(f.MulLatency() - 1),
		intMulExtra: uint64(params.IntMulExtra),
		intDivExtra: uint64(params.IntDivExtra),
		branchTaken: uint64(params.BranchTaken),
		loadUse:     uint64(params.LoadUseExtra),
	}, nil
}

// Cycle returns the current core-local cycle count.
func (c *Core) Cycle() uint64 { return c.cycle }

// Stats returns a copy of the counters.
func (c *Core) Stats() Stats { return c.stats }

// Reset rewinds the core clock and counters and empties the store
// buffer. Cache/TLB contents are managed separately (FlushAll), as the
// platform protocol distinguishes "reset" and "flush".
func (c *Core) Reset() {
	c.cycle = 0
	c.stats = Stats{}
	for i := range c.storeSlots {
		c.storeSlots[i] = 0
	}
}

// FlushAll invalidates the core's caches and TLBs.
func (c *Core) FlushAll() {
	c.IL1.Flush()
	c.DL1.Flush()
	c.ITLB.Flush()
	c.DTLB.Flush()
}

// memFill charges one cache-line fill (or page-walk access) via the
// shared bus and DRAM: queueing delay + transfer + access latency.
func (c *Core) memFill(addr uint64, kind bus.Kind) uint64 {
	start, memLat := c.Bus.Request(c.cycle, kind, addr)
	wait := start - c.cycle
	return wait + c.Bus.TransferCycles() + memLat
}

// Consume charges one retired instruction to the pipeline.
func (c *Core) Consume(ev isa.Event) {
	c.stats.Instructions++
	// --- Fetch: ITLB, then IL1. ---
	if !c.ITLB.Lookup(ev.PC) {
		walk := uint64(0)
		for i := 0; i < c.itlbWalks; i++ {
			walk += c.memFill(ev.PC, bus.KindTLBWalk)
		}
		c.cycle += walk
		c.stats.IFetchStall += walk
	}
	if !c.IL1.Access(ev.PC) {
		fill := c.memFill(ev.PC, bus.KindLineFill)
		c.cycle += fill
		c.stats.IFetchStall += fill
	}
	// Base pipelined cost.
	c.cycle++

	// --- Execute / memory stage, by class. ---
	switch ev.Class {
	case isa.ClassNop, isa.ClassIntALU, isa.ClassHalt:
		// single cycle, fully pipelined
	case isa.ClassIntMul:
		c.stall(c.intMulExtra, &c.stats.ExecStall)
	case isa.ClassIntDiv:
		c.stall(c.intDivExtra, &c.stats.ExecStall)
	case isa.ClassBranch:
		if ev.Taken {
			c.stall(c.branchTaken, &c.stats.BranchStall)
		}
	case isa.ClassFPAdd:
		c.stall(c.fpAddExtra, &c.stats.ExecStall)
	case isa.ClassFPMul:
		c.stall(c.fpMulExtra, &c.stats.ExecStall)
	case isa.ClassFPDiv:
		c.stall(uint64(c.FPU.DivLatency(ev.FOp1, ev.FOp2)-1), &c.stats.ExecStall)
	case isa.ClassFPSqrt:
		c.stall(uint64(c.FPU.SqrtLatency(ev.FOp1)-1), &c.stats.ExecStall)
	case isa.ClassLoad:
		c.dtlbCheck(ev.Addr)
		if c.DL1.Access(ev.Addr) {
			c.stall(c.loadUse, &c.stats.DMemStall)
		} else {
			fill := c.memFill(ev.Addr, bus.KindLineFill)
			c.cycle += fill
			c.stats.DMemStall += fill
		}
	case isa.ClassStore:
		c.dtlbCheck(ev.Addr)
		c.DL1.Write(ev.Addr) // write-through, no allocate
		c.storeDrain(ev.Addr)
	}
	c.stats.Cycles = c.cycle
}

func (c *Core) stall(cycles uint64, counter *uint64) {
	c.cycle += cycles
	*counter += cycles
}

func (c *Core) dtlbCheck(addr uint64) {
	if c.DTLB.Lookup(addr) {
		return
	}
	walk := uint64(0)
	for i := 0; i < c.dtlbWalks; i++ {
		walk += c.memFill(addr, bus.KindTLBWalk)
	}
	c.cycle += walk
	c.stats.DMemStall += walk
}

// storeDrain posts a write-through store into the store buffer. The
// write occupies a buffer slot until the bus+DRAM write completes; when
// all slots are busy the core stalls until the earliest one frees.
func (c *Core) storeDrain(addr uint64) {
	// Find the earliest-free slot.
	slot := 0
	for i := 1; i < len(c.storeSlots); i++ {
		if c.storeSlots[i] < c.storeSlots[slot] {
			slot = i
		}
	}
	if c.storeSlots[slot] > c.cycle {
		// Buffer full: stall until the earliest drain completes.
		wait := c.storeSlots[slot] - c.cycle
		c.cycle += wait
		c.stats.StoreStall += wait
	}
	// Issue the drain from the current (post-stall) time.
	start, memLat := c.Bus.Request(c.cycle, bus.KindWrite, addr)
	c.storeSlots[slot] = start + c.Bus.TransferCycles() + memLat
}

// RunProgram executes prog architecturally on machine memory mem32 and
// charges its timing to the core, returning the consumed cycles. The
// core is passed as the machine's EventSink directly — no per-run
// closure allocation.
func (c *Core) RunProgram(m *isa.Machine) (uint64, error) {
	startCycle := c.cycle
	if _, err := m.RunSink(c); err != nil {
		return 0, err
	}
	return c.cycle - startCycle, nil
}

// EventCursor is the suspension record of one in-flight retired
// instruction whose timing charge is applied incrementally — the
// resumable form of Consume used by arbiter-driven trace replay
// (internal/platform's multicore co-simulation). Instead of calling
// Interconnect.Request synchronously, StartEvent/ResumeEvent park the
// cursor whenever the charge needs the bus, exposing the request in
// the Req* fields; the arbiter grants it at its leisure and resumes.
// While parked, the core's clock and counters are exactly as Consume
// would have left them at the moment it called Request, so a
// cursor-driven core is bit-identical to a Consume-driven one.
//
// A cursor is bound to the single event it was last started with; a
// core must not interleave StartEvent calls with an event still
// parked.
type EventCursor struct {
	ev      isa.Event
	phase   uint8
	walkIdx int
	walkAcc uint64
	slot    int

	// Parked bus request, valid from a StartEvent/ResumeEvent that
	// returned true until the next ResumeEvent.
	ReqTime uint64
	ReqKind bus.Kind
	ReqAddr uint64
}

// Cursor suspension points, one per bus-request site in Consume.
const (
	curITLBWalk  uint8 = iota // in the ITLB page-walk loop
	curILFill                 // waiting on the IL1 line fill
	curDTLBLoad               // in the DTLB walk loop of a load
	curDTLBStore              // in the DTLB walk loop of a store
	curDLFill                 // waiting on the DL1 line fill
	curDrain                  // waiting on the store-buffer drain
)

func (cur *EventCursor) park(phase uint8, t uint64, kind bus.Kind, addr uint64) {
	cur.phase = phase
	cur.ReqTime, cur.ReqKind, cur.ReqAddr = t, kind, addr
}

// StartEvent begins charging ev to the core. It returns true when the
// charge suspended on a bus request (described by cur.Req*), false
// when the event completed without one. The stage structure and every
// counter update mirror Consume exactly.
func (c *Core) StartEvent(cur *EventCursor, ev isa.Event) bool {
	c.stats.Instructions++
	cur.ev = ev
	// --- Fetch: ITLB, then IL1. ---
	if !c.ITLB.Lookup(ev.PC) {
		cur.walkIdx, cur.walkAcc = 0, 0
		// Walk requests issue at the pre-walk cycle, accumulating into
		// walkAcc first — the same order Consume charges them.
		cur.park(curITLBWalk, c.cycle, bus.KindTLBWalk, ev.PC)
		return true
	}
	return c.curFetchLine(cur)
}

// ResumeEvent applies the grant (start, memLat) of the cursor's parked
// request and continues the charge. It returns true when the event
// suspended on a further request.
func (c *Core) ResumeEvent(cur *EventCursor, start, memLat uint64) bool {
	fill := (start - cur.ReqTime) + c.Bus.TransferCycles() + memLat
	switch cur.phase {
	case curITLBWalk:
		cur.walkAcc += fill
		cur.walkIdx++
		if cur.walkIdx < c.itlbWalks {
			cur.park(curITLBWalk, c.cycle, bus.KindTLBWalk, cur.ev.PC)
			return true
		}
		c.cycle += cur.walkAcc
		c.stats.IFetchStall += cur.walkAcc
		return c.curFetchLine(cur)
	case curILFill:
		c.cycle += fill
		c.stats.IFetchStall += fill
		return c.curExecute(cur)
	case curDTLBLoad, curDTLBStore:
		cur.walkAcc += fill
		cur.walkIdx++
		if cur.walkIdx < c.dtlbWalks {
			cur.park(cur.phase, c.cycle, bus.KindTLBWalk, cur.ev.Addr)
			return true
		}
		c.cycle += cur.walkAcc
		c.stats.DMemStall += cur.walkAcc
		if cur.phase == curDTLBLoad {
			return c.curLoadAccess(cur)
		}
		return c.curStoreAccess(cur)
	case curDLFill:
		c.cycle += fill
		c.stats.DMemStall += fill
		c.stats.Cycles = c.cycle
		return false
	case curDrain:
		c.storeSlots[cur.slot] = start + c.Bus.TransferCycles() + memLat
		c.stats.Cycles = c.cycle
		return false
	default:
		panic(fmt.Sprintf("cpu: resume with invalid cursor phase %d", cur.phase))
	}
}

func (c *Core) curFetchLine(cur *EventCursor) bool {
	if !c.IL1.Access(cur.ev.PC) {
		cur.park(curILFill, c.cycle, bus.KindLineFill, cur.ev.PC)
		return true
	}
	return c.curExecute(cur)
}

func (c *Core) curExecute(cur *EventCursor) bool {
	c.cycle++
	ev := cur.ev
	switch ev.Class {
	case isa.ClassNop, isa.ClassIntALU, isa.ClassHalt:
	case isa.ClassIntMul:
		c.stall(c.intMulExtra, &c.stats.ExecStall)
	case isa.ClassIntDiv:
		c.stall(c.intDivExtra, &c.stats.ExecStall)
	case isa.ClassBranch:
		if ev.Taken {
			c.stall(c.branchTaken, &c.stats.BranchStall)
		}
	case isa.ClassFPAdd:
		c.stall(c.fpAddExtra, &c.stats.ExecStall)
	case isa.ClassFPMul:
		c.stall(c.fpMulExtra, &c.stats.ExecStall)
	case isa.ClassFPDiv:
		c.stall(uint64(c.FPU.DivLatency(ev.FOp1, ev.FOp2)-1), &c.stats.ExecStall)
	case isa.ClassFPSqrt:
		c.stall(uint64(c.FPU.SqrtLatency(ev.FOp1)-1), &c.stats.ExecStall)
	case isa.ClassLoad:
		if !c.DTLB.Lookup(ev.Addr) {
			cur.walkIdx, cur.walkAcc = 0, 0
			cur.park(curDTLBLoad, c.cycle, bus.KindTLBWalk, ev.Addr)
			return true
		}
		return c.curLoadAccess(cur)
	case isa.ClassStore:
		if !c.DTLB.Lookup(ev.Addr) {
			cur.walkIdx, cur.walkAcc = 0, 0
			cur.park(curDTLBStore, c.cycle, bus.KindTLBWalk, ev.Addr)
			return true
		}
		return c.curStoreAccess(cur)
	}
	c.stats.Cycles = c.cycle
	return false
}

func (c *Core) curLoadAccess(cur *EventCursor) bool {
	if c.DL1.Access(cur.ev.Addr) {
		c.stall(c.loadUse, &c.stats.DMemStall)
		c.stats.Cycles = c.cycle
		return false
	}
	cur.park(curDLFill, c.cycle, bus.KindLineFill, cur.ev.Addr)
	return true
}

func (c *Core) curStoreAccess(cur *EventCursor) bool {
	c.DL1.Write(cur.ev.Addr) // write-through, no allocate
	slot := 0
	for i := 1; i < len(c.storeSlots); i++ {
		if c.storeSlots[i] < c.storeSlots[slot] {
			slot = i
		}
	}
	if c.storeSlots[slot] > c.cycle {
		wait := c.storeSlots[slot] - c.cycle
		c.cycle += wait
		c.stats.StoreStall += wait
	}
	cur.slot = slot
	cur.park(curDrain, c.cycle, bus.KindWrite, cur.ev.Addr)
	return true
}
