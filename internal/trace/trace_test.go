package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleSet() *Set {
	return &Set{
		Platform: "RAND",
		Workload: "TVCA",
		Samples: []Sample{
			{Run: 0, Cycles: 1234, Path: "a"},
			{Run: 1, Cycles: 5678, Path: "b"},
			{Run: 2, Cycles: 910, Path: "a"},
		},
	}
}

func TestTimes(t *testing.T) {
	s := sampleSet()
	ts := s.Times()
	if len(ts) != 3 || ts[0] != 1234 || ts[2] != 910 {
		t.Errorf("times %v", ts)
	}
	byPath := s.TimesByPath()
	if len(byPath["a"]) != 2 || len(byPath["b"]) != 1 {
		t.Errorf("by path %v", byPath)
	}
	if byPath["a"][0] != 1234 || byPath["a"][1] != 910 {
		t.Error("order not preserved within path")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleSet()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "run,cycles,path\n") {
		t.Errorf("missing header: %q", buf.String())
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sampleSet()
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("lengths differ")
	}
	for i := range want.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Errorf("sample %d: %+v != %+v", i, got.Samples[i], want.Samples[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleSet()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Platform != "RAND" || got.Workload != "TVCA" {
		t.Errorf("metadata lost: %+v", got)
	}
	for i, s := range sampleSet().Samples {
		if got.Samples[i] != s {
			t.Errorf("sample %d mismatch", i)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus,header\n1,2",
		"run,cycles,path\nNaN,2,a",
		"run,cycles,path\n1,notanumber,a",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("case %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func TestReadCSVWithoutPathColumn(t *testing.T) {
	in := "run,cycles\n0,42\n1,43\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) != 2 || s.Samples[0].Cycles != 42 || s.Samples[0].Path != "" {
		t.Errorf("samples %+v", s.Samples)
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("err = %v", err)
	}
}
