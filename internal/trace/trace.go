// Package trace persists measurement campaigns: execution-time samples
// with run indices and path identifiers, in CSV (interoperable with
// spreadsheet/plotting tools) and JSON (self-describing) formats.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Sample is one measurement run.
type Sample struct {
	Run    int    `json:"run"`
	Cycles uint64 `json:"cycles"`
	Path   string `json:"path,omitempty"`
}

// Set is a named collection of samples in run order.
type Set struct {
	Platform string   `json:"platform"`
	Workload string   `json:"workload"`
	Samples  []Sample `json:"samples"`
}

// ErrBadFormat reports a malformed input file.
var ErrBadFormat = errors.New("trace: malformed input")

// Times extracts the execution-time series in run order.
func (s *Set) Times() []float64 {
	out := make([]float64, len(s.Samples))
	for i, sm := range s.Samples {
		out[i] = float64(sm.Cycles)
	}
	return out
}

// TimesByPath groups times by path identifier, preserving order.
func (s *Set) TimesByPath() map[string][]float64 {
	out := make(map[string][]float64)
	for _, sm := range s.Samples {
		out[sm.Path] = append(out[sm.Path], float64(sm.Cycles))
	}
	return out
}

// WriteCSV emits "run,cycles,path" rows with a header.
func WriteCSV(w io.Writer, s *Set) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"run", "cycles", "path"}); err != nil {
		return err
	}
	for _, sm := range s.Samples {
		rec := []string{strconv.Itoa(sm.Run), strconv.FormatUint(sm.Cycles, 10), sm.Path}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses the WriteCSV format. Platform/workload metadata is not
// stored in CSV; callers set it afterwards if needed.
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%w: empty file", ErrBadFormat)
	}
	if len(recs[0]) < 2 || recs[0][0] != "run" {
		return nil, fmt.Errorf("%w: missing header", ErrBadFormat)
	}
	set := &Set{}
	for i, rec := range recs[1:] {
		if len(rec) < 2 {
			return nil, fmt.Errorf("%w: row %d has %d fields", ErrBadFormat, i+2, len(rec))
		}
		run, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("%w: row %d run: %v", ErrBadFormat, i+2, err)
		}
		cyc, err := strconv.ParseUint(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: row %d cycles: %v", ErrBadFormat, i+2, err)
		}
		sm := Sample{Run: run, Cycles: cyc}
		if len(rec) >= 3 {
			sm.Path = rec[2]
		}
		set.Samples = append(set.Samples, sm)
	}
	return set, nil
}

// WriteJSON emits the set as indented JSON.
func WriteJSON(w io.Writer, s *Set) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON parses the WriteJSON format.
func ReadJSON(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return &s, nil
}
