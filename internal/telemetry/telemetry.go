// Package telemetry is the repo's zero-dependency observability layer:
// cheap atomic instruments (counters, gauges, fixed-bucket histograms)
// plus a structured event stream, with Prometheus-text and JSON
// exposition. It exists so a running campaign can be inspected from the
// outside — cache hit rates, runs/s, i.i.d. gate p-values, pWCET
// trajectory — without perturbing the measurement.
//
// The design constraint is the simulator's performance contract:
// telemetry is disabled by default (a nil *Registry), every method is
// nil-safe, and the hot simulator loop carries no telemetry calls at
// all — the platform layer harvests the substrate models' plain stat
// counters at campaign batch barriers instead. A campaign without a
// registry is therefore bit-identical, allocation-identical and (to
// well under a percent) time-identical to one built before this
// package existed.
//
// Determinism: instruments updated only at batch barriers from per-run
// state are reproducible for a fixed seed regardless of parallelism.
// The exceptions are the wall-clock instruments (campaign_runs_per_sec,
// campaign_batch_seconds) and the retry/timeout tallies, which measure
// the host, not the simulated platform.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a process's instruments and event sinks. The zero
// value is ready to use; a nil *Registry is a valid "telemetry
// disabled" handle whose every method is a cheap no-op.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sinks    []EventSink
	seq      atomic.Uint64
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		if r.counters == nil {
			r.counters = make(map[string]*Counter)
		}
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// (a no-op instrument) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		if r.gauges == nil {
			r.gauges = make(map[string]*Gauge)
		}
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (strictly increasing; a +Inf bucket is implicit)
// on first use. Later calls ignore bounds. Returns nil on a nil
// registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if r.hists == nil {
			r.hists = make(map[string]*Histogram)
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing uint64, safe for concurrent
// use. The nil Counter ignores updates and reads as 0.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, safe for concurrent use.
// The nil Gauge ignores updates and reads as 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative
// le-style, Prometheus semantics), tracking the running sum. The nil
// Histogram ignores observations.
type Histogram struct {
	bounds []float64 // upper bounds, strictly increasing; +Inf implicit
	counts []atomic.Uint64
	total  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs))}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Snapshot returns every instrument's current value as a flat
// name→value map: counters and gauges under their own names,
// histograms as <name>_count and <name>_sum. Nil registries return an
// empty map.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	if r == nil {
		return out
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_count"] = float64(h.Count())
		out[name+"_sum"] = h.Sum()
	}
	return out
}

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4), instruments sorted by name.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		switch {
		case r.counters[n] != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, r.counters[n].Value())
		case r.gauges[n] != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(r.gauges[n].Value()))
		default:
			err = writePromHistogram(w, n, r.hists[n])
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b), cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, h.Count(), name, promFloat(h.Sum()), name, h.Count())
	return err
}

// promFloat renders a float the way the Prometheus text format expects
// (NaN/+Inf/-Inf spelled out, no exponent unless needed).
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.6f", v), "0"), ".")
}

// SanitizeName maps an arbitrary string onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:], replacing every other rune with '_' (e.g. the
// fault outcome "timing-perturbed" becomes "timing_perturbed").
func SanitizeName(s string) string {
	var b strings.Builder
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Attach registers an event sink; every subsequent Emit is forwarded to
// it. No-op on a nil registry.
func (r *Registry) Attach(s EventSink) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, s)
	r.mu.Unlock()
}

// Emit assigns the next sequence number and forwards the event to every
// attached sink. Emission order is the caller's responsibility: the
// campaign engine emits only from its single-threaded barrier path, so
// sequence numbers are deterministic for a fixed seed. No-op on a nil
// registry.
func (r *Registry) Emit(kind string, run int, fields ...Field) {
	if r == nil {
		return
	}
	r.mu.RLock()
	sinks := r.sinks
	r.mu.RUnlock()
	if len(sinks) == 0 {
		return
	}
	ev := Event{Seq: r.seq.Add(1), Kind: kind, Run: run, Fields: fields}
	for _, s := range sinks {
		s.Consume(ev)
	}
}
