// Structured event stream: a compact, ordered record of what a
// campaign did — campaign_start, one event per run, one per batch, one
// per analysis snapshot, campaign_end. Events are emitted only from
// single-threaded code (the campaign batch barrier), so for a fixed
// seed the stream is byte-identical regardless of worker parallelism;
// the JSON-lines form is the replayable on-disk artifact.
package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// Event is one structured telemetry record.
type Event struct {
	// Seq is the registry-assigned emission sequence number (1-based).
	Seq uint64
	// Kind classifies the event ("campaign_start", "run", "batch",
	// "analysis", "campaign_end").
	Kind string
	// Run is the run index the event refers to, or -1 when the event is
	// not about a single run.
	Run int
	// Fields carries the event payload in emission order.
	Fields []Field
}

// Field is one key→value pair of an event payload: either a number or
// a string. Fields keep their emission order through JSON round-trips.
type Field struct {
	Key   string
	Num   float64
	Str   string
	IsStr bool
}

// Num builds a numeric field.
func Num(key string, v float64) Field { return Field{Key: key, Num: v} }

// Str builds a string field.
func Str(key, v string) Field { return Field{Key: key, Str: v, IsStr: true} }

// Equal compares fields treating NaN numeric values as equal (the
// codec round-trips non-finite values exactly).
func (f Field) Equal(g Field) bool {
	if f.Key != g.Key || f.IsStr != g.IsStr {
		return false
	}
	if f.IsStr {
		return f.Str == g.Str
	}
	return f.Num == g.Num || (math.IsNaN(f.Num) && math.IsNaN(g.Num))
}

// jsonField is the wire form. Exactly one of N, S, V is set: a finite
// number, a string, or a spelled-out non-finite number ("NaN", "+Inf",
// "-Inf") — encoding/json rejects non-finite floats, and gate p-values
// and CRPS deltas are NaN until computable.
type jsonField struct {
	K string   `json:"k"`
	N *float64 `json:"n,omitempty"`
	S *string  `json:"s,omitempty"`
	V *string  `json:"v,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (f Field) MarshalJSON() ([]byte, error) {
	jf := jsonField{K: f.Key}
	switch {
	case f.IsStr:
		jf.S = &f.Str
	case math.IsNaN(f.Num):
		s := "NaN"
		jf.V = &s
	case math.IsInf(f.Num, 1):
		s := "+Inf"
		jf.V = &s
	case math.IsInf(f.Num, -1):
		s := "-Inf"
		jf.V = &s
	default:
		jf.N = &f.Num
	}
	return json.Marshal(jf)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Field) UnmarshalJSON(data []byte) error {
	var jf jsonField
	if err := json.Unmarshal(data, &jf); err != nil {
		return err
	}
	*f = Field{Key: jf.K}
	switch {
	case jf.S != nil:
		f.Str, f.IsStr = *jf.S, true
	case jf.V != nil:
		switch *jf.V {
		case "NaN":
			f.Num = math.NaN()
		case "+Inf":
			f.Num = math.Inf(1)
		case "-Inf":
			f.Num = math.Inf(-1)
		default:
			return fmt.Errorf("telemetry: bad non-finite field value %q", *jf.V)
		}
	case jf.N != nil:
		f.Num = *jf.N
	}
	return nil
}

type jsonEvent struct {
	Seq    uint64  `json:"seq"`
	Kind   string  `json:"kind"`
	Run    int     `json:"run"`
	Fields []Field `json:"fields,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonEvent{Seq: e.Seq, Kind: e.Kind, Run: e.Run, Fields: e.Fields})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(data []byte) error {
	var je jsonEvent
	if err := json.Unmarshal(data, &je); err != nil {
		return err
	}
	*e = Event(je)
	return nil
}

// Equal compares events field by field (NaN-tolerant).
func (e Event) Equal(o Event) bool {
	if e.Seq != o.Seq || e.Kind != o.Kind || e.Run != o.Run || len(e.Fields) != len(o.Fields) {
		return false
	}
	for i := range e.Fields {
		if !e.Fields[i].Equal(o.Fields[i]) {
			return false
		}
	}
	return true
}

// EventSink consumes emitted events. Consume is always called from the
// emitting goroutine; sinks that need concurrency safety (all the ones
// here) lock internally.
type EventSink interface {
	Consume(Event)
}

// RingSink keeps the most recent events in a fixed-capacity ring —
// the cheap always-on sink for dashboards and tests.
type RingSink struct {
	mu   sync.Mutex
	buf  []Event
	next int
	full bool
}

// NewRingSink returns a ring keeping the last capacity events
// (capacity < 1 selects 256).
func NewRingSink(capacity int) *RingSink {
	if capacity < 1 {
		capacity = 256
	}
	return &RingSink{buf: make([]Event, capacity)}
}

// Consume implements EventSink.
func (s *RingSink) Consume(ev Event) {
	s.mu.Lock()
	s.buf[s.next] = ev
	s.next++
	if s.next == len(s.buf) {
		s.next, s.full = 0, true
	}
	s.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (s *RingSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		return append([]Event(nil), s.buf[:s.next]...)
	}
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	return append(out, s.buf[:s.next]...)
}

// Len returns the number of retained events.
func (s *RingSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// JSONLSink writes each event as one JSON line. Write errors stick:
// the first one is retained (see Err) and later events are dropped.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewJSONLSink wraps w in a buffered JSON-lines sink. Call Flush when
// the campaign ends.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriter(w)}
}

// Consume implements EventSink.
func (s *JSONLSink) Consume(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	data, err := json.Marshal(ev)
	if err == nil {
		_, err = s.w.Write(append(data, '\n'))
	}
	s.err = err
}

// Flush drains the buffer and returns the sink's sticky error.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

// Err returns the first write or encode error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// WriteEvents writes evs as JSON lines to w.
func WriteEvents(w io.Writer, evs []Event) error {
	s := NewJSONLSink(w)
	for _, ev := range evs {
		s.Consume(ev)
	}
	return s.Flush()
}

// ReadEvents parses a JSON-lines event stream (blank lines allowed)
// back into events — the inverse of JSONLSink/WriteEvents.
func ReadEvents(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(text, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: event line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
