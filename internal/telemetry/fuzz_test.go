package telemetry

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzEventRoundTrip checks that any event built from fuzzer-chosen
// values survives the JSON-lines codec semantically intact (NaN and
// the infinities included — they take the spelled-out "v" wire form).
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(uint64(1), "run", 0, "cycles", 284511.0, "path", "clamp0-satx0", true)
	f.Add(uint64(2), "analysis", -1, "lb_p", math.NaN(), "outcome", "timing-perturbed", false)
	f.Add(uint64(3), "batch", 12, "delta", math.Inf(1), "", "", true)
	f.Add(uint64(0), "", -99, "k", -0.0, "\"quoted\"\nkey", "line\nbreak", true)

	f.Fuzz(func(t *testing.T, seq uint64, kind string, run int,
		numKey string, num float64, strKey, strVal string, both bool) {
		// encoding/json replaces invalid UTF-8 with U+FFFD; that is a
		// documented lossy path, not a codec bug.
		for _, s := range []string{kind, numKey, strKey, strVal} {
			if !utf8.ValidString(s) {
				t.Skip("invalid UTF-8 input")
			}
		}
		ev := Event{Seq: seq, Kind: kind, Run: run,
			Fields: []Field{Num(numKey, num)}}
		if both {
			ev.Fields = append(ev.Fields, Str(strKey, strVal))
		}

		data, err := ev.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Event
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatalf("unmarshal of own output: %v\n%s", err, data)
		}
		if !ev.Equal(back) {
			t.Fatalf("round trip changed the event:\n in  %+v\n out %+v\n wire %s", ev, back, data)
		}

		// The JSON-lines stream form must agree with the single-event
		// codec.
		var buf bytes.Buffer
		if err := WriteEvents(&buf, []Event{ev}); err != nil {
			t.Fatalf("write: %v", err)
		}
		evs, err := ReadEvents(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if len(evs) != 1 || !ev.Equal(evs[0]) {
			t.Fatalf("stream round trip changed the event: %+v", evs)
		}
	})
}

// FuzzReadEvents feeds arbitrary bytes to the JSON-lines parser: it
// must never panic, and whenever it accepts an input, re-marshalling
// and re-parsing must reproduce the same events (the parse is a
// fixpoint).
func FuzzReadEvents(f *testing.F) {
	f.Add([]byte(`{"seq":1,"kind":"run","run":0,"fields":[{"k":"cycles","n":1}]}` + "\n"))
	f.Add([]byte(`{"seq":2,"kind":"analysis","run":-1,"fields":[{"k":"p","v":"NaN"}]}`))
	f.Add([]byte("\n\n{\"seq\":3,\"kind\":\"x\",\"run\":5}\n{bad"))
	f.Add([]byte(`{"seq":4,"kind":"s","run":0,"fields":[{"k":"a","s":"b"},{"k":"i","v":"+Inf"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			if !strings.Contains(err.Error(), "telemetry:") && !strings.Contains(err.Error(), "token") {
				// Scanner errors (too-long lines) are also acceptable.
				if !strings.Contains(err.Error(), "bufio") {
					t.Fatalf("unexpected error class: %v", err)
				}
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteEvents(&buf, evs); err != nil {
			t.Fatalf("re-marshal of accepted input: %v", err)
		}
		again, err := ReadEvents(&buf)
		if err != nil {
			t.Fatalf("re-parse of own output: %v", err)
		}
		if len(again) != len(evs) {
			t.Fatalf("fixpoint lost events: %d != %d", len(again), len(evs))
		}
		for i := range evs {
			if !evs[i].Equal(again[i]) {
				t.Fatalf("fixpoint changed event %d:\n %+v\n %+v", i, evs[i], again[i])
			}
		}
	})
}
