// HTTP exposition: a tiny stdlib-only server publishing a registry at
// /metrics (Prometheus text format, scrapeable by any Prometheus or
// curl) and /metrics.json (the flat Snapshot map, expvar-style). Wired
// behind the -telemetry-addr flag on cmd/tvca, cmd/experiments and
// cmd/mbpta.
package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server is a running exposition endpoint.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Serve starts an exposition server for reg on addr ("host:port";
// ":0" picks a free port). The server runs until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(reg.Snapshot())
	})
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }() // Serve returns on Close
	return s, nil
}

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
