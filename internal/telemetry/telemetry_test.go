package telemetry

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Error("second Counter lookup returned a different instrument")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Set(-1.25)
	if got := g.Value(); got != -1.25 {
		t.Errorf("gauge = %g, want -1.25", got)
	}
	if r.Gauge("g") != g {
		t.Error("second Gauge lookup returned a different instrument")
	}

	h := r.Histogram("h", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("histogram count = %d, want 4 (NaN dropped)", got)
	}
	if got := h.Sum(); got != 555.5 {
		t.Errorf("histogram sum = %g, want 555.5", got)
	}
	// Later lookups must ignore the bounds argument.
	if r.Histogram("h", nil) != h {
		t.Error("second Histogram lookup returned a different instrument")
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	// Every chained call must be safe and read as zero.
	r.Counter("c").Inc()
	r.Counter("c").Add(7)
	if got := r.Counter("c").Value(); got != 0 {
		t.Errorf("nil counter = %d, want 0", got)
	}
	r.Gauge("g").Set(3)
	if got := r.Gauge("g").Value(); got != 0 {
		t.Errorf("nil gauge = %g, want 0", got)
	}
	h := r.Histogram("h", []float64{1})
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded an observation")
	}
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Errorf("nil snapshot = %v, want empty", snap)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WriteProm wrote %q, err %v", buf.String(), err)
	}
	r.Attach(NewRingSink(4))
	r.Emit("kind", 0, Num("x", 1))
}

func TestSnapshot(t *testing.T) {
	r := New()
	r.Counter("runs_total").Add(3)
	r.Gauge("ipc").Set(0.5)
	h := r.Histogram("lat", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	snap := r.Snapshot()
	want := map[string]float64{
		"runs_total": 3,
		"ipc":        0.5,
		"lat_count":  2,
		"lat_sum":    2,
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot = %v, want %v", snap, want)
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %g, want %g", k, snap[k], v)
		}
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("b_total").Add(2)
	r.Gauge("a_ratio").Set(0.25)
	h := r.Histogram("c_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE a_ratio gauge",
		"a_ratio 0.25",
		"# TYPE b_total counter",
		"b_total 2",
		"# TYPE c_seconds histogram",
		`c_seconds_bucket{le="0.1"} 1`,
		`c_seconds_bucket{le="1"} 2`,
		`c_seconds_bucket{le="+Inf"} 3`,
		"c_seconds_sum 5.55",
		"c_seconds_count 3",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("WriteProm:\n%s\nwant:\n%s", got, want)
	}
}

func TestPromFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{math.NaN(), "NaN"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{0, "0"},
		{1.5, "1.5"},
		{-2, "-2"},
		{0.333333333, "0.333333"},
	}
	for _, c := range cases {
		if got := promFloat(c.v); got != c.want {
			t.Errorf("promFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"timing-perturbed", "timing_perturbed"},
		{"wrong output", "wrong_output"},
		{"ok_name:sub", "ok_name:sub"},
		{"9lives", "_lives"}, // leading digit is not a valid first rune
		{"l1", "l1"},
		{"", ""},
	}
	for _, c := range cases {
		if got := SanitizeName(c.in); got != c.want {
			t.Errorf("SanitizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEmitSequencingAndSinks(t *testing.T) {
	r := New()
	// Without sinks, Emit must not consume sequence numbers.
	r.Emit("dropped", 0)
	ring := NewRingSink(2)
	r.Attach(ring)
	r.Emit("a", 0)
	r.Emit("b", 1)
	r.Emit("c", 2)
	evs := ring.Events()
	if len(evs) != 2 || evs[0].Kind != "b" || evs[1].Kind != "c" {
		t.Fatalf("ring events = %+v, want kinds b,c", evs)
	}
	if evs[0].Seq != 2 || evs[1].Seq != 3 {
		t.Errorf("seqs = %d,%d, want 2,3 (sink-less emit must not burn a seq)", evs[0].Seq, evs[1].Seq)
	}
	if ring.Len() != 2 {
		t.Errorf("ring len = %d, want 2", ring.Len())
	}
}

func TestRingSinkPartial(t *testing.T) {
	ring := NewRingSink(0) // selects the 256 default
	ring.Consume(Event{Seq: 1, Kind: "x"})
	if ring.Len() != 1 {
		t.Fatalf("len = %d, want 1", ring.Len())
	}
	evs := ring.Events()
	if len(evs) != 1 || evs[0].Kind != "x" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestConcurrentInstrumentUpdates(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h", []float64{0.5}).Observe(1)
				r.Gauge("g").Set(float64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Sum(); got != 8000 {
		t.Errorf("hist sum = %g, want 8000", got)
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	evs := []Event{
		{Seq: 1, Kind: "campaign_start", Run: -1, Fields: []Field{
			Str("platform", "LEON3-RAND"),
			Num("max_runs", 3000),
		}},
		{Seq: 2, Kind: "run", Run: 0, Fields: []Field{
			Num("cycles", 284511),
			Str("path", "clamp0"),
		}},
		{Seq: 3, Kind: "analysis", Run: -1, Fields: []Field{
			Num("lb_p", math.NaN()),
			Num("hi", math.Inf(1)),
			Num("lo", math.Inf(-1)),
		}},
		{Seq: 4, Kind: "campaign_end", Run: -1}, // no fields at all
	}
	var buf bytes.Buffer
	if err := WriteEvents(&buf, evs); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != len(evs) {
		t.Fatalf("wrote %d lines, want %d", n, len(evs))
	}
	back, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Fatalf("read %d events, want %d", len(back), len(evs))
	}
	for i := range evs {
		if !evs[i].Equal(back[i]) {
			t.Errorf("event %d: %+v != %+v", i, evs[i], back[i])
		}
	}
}

func TestReadEventsTolerance(t *testing.T) {
	in := "\n" + `{"seq":1,"kind":"a","run":-1}` + "\n\n" + `{"seq":2,"kind":"b","run":0}` + "\n"
	evs, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != "a" || evs[1].Kind != "b" {
		t.Fatalf("events = %+v", evs)
	}

	if _, err := ReadEvents(strings.NewReader("{bad json}\n")); err == nil {
		t.Error("malformed line: want error")
	} else if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error %q does not name the line", err)
	}
	if _, err := ReadEvents(strings.NewReader(`{"seq":1,"kind":"a","run":0,"fields":[{"k":"x","v":"bogus"}]}`)); err == nil {
		t.Error("bad non-finite marker: want error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(failWriter{}) // fails on first flush
	s.Consume(Event{Seq: 1, Kind: "a", Run: -1})
	if err := s.Flush(); err == nil {
		t.Fatal("want flush error")
	}
	s.Consume(Event{Seq: 2, Kind: "b", Run: -1}) // dropped, no panic
	if s.Err() == nil {
		t.Error("sticky error lost")
	}
	if err := s.Flush(); err == nil {
		t.Error("second flush must return the sticky error")
	}
}

func TestServe(t *testing.T) {
	reg := New()
	reg.Counter("campaign_runs_total").Add(12)
	reg.Gauge("sim_ipc").Set(0.25)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text format", ct)
	}
	text := string(body)
	for _, want := range []string{"campaign_runs_total 12", "sim_ipc 0.25", "# TYPE sim_ipc gauge"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, text)
		}
	}

	resp, err = http.Get(srv.URL() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"campaign_runs_total":12`) {
		t.Errorf("/metrics.json = %s", body)
	}

	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
