// Package fabric is the distributed campaign fabric: a shared pool of
// executors (in-process workers and net-connected remote boards) that
// many measurement campaigns multiplex over concurrently, with fair
// lease scheduling, bounded backpressure and straggler re-leasing.
//
// The coordinator partitions each campaign's run-index space into
// leases (one batch of runs per lease). Executors acquire leases
// round-robin across the active sessions — so a hundred concurrent
// campaigns each make progress instead of queuing behind the first —
// execute the runs, and report results back; remote executors stream
// them as write-ahead-log run-record frames (the internal/wal codec is
// the wire format). The merge path delivers completed batches to the
// campaign's sink strictly in run order, so a fabric campaign is
// bit-identical to a single-process platform.StreamCampaign with the
// same seed and budget: run i always executes under seed
// DeriveRunSeed(base, i), and where it executes can never change the
// result. That purity also powers the resilience story: a lease lost
// to a dead executor (or held by a straggler past the lease timeout)
// is simply re-queued under the same seeds, and duplicate completions
// merge idempotently.
package fabric

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/platform"
	"repro/internal/telemetry"
)

// ErrPoolClosed reports that the pool was closed while a campaign was
// waiting on it.
var ErrPoolClosed = errors.New("fabric: pool closed")

// Config tunes a Pool. The zero value selects sensible defaults.
type Config struct {
	// Executors is the number of in-process executor workers
	// (default GOMAXPROCS). Zero means the default; a negative value
	// means no in-process executors at all — campaigns then progress
	// only while remote executors are connected.
	Executors int
	// MaxSessions bounds the campaigns admitted concurrently; further
	// StreamCampaign calls block (backpressure) until a slot frees
	// (default 256).
	MaxSessions int
	// SessionLeases bounds the outstanding leases per campaign — how
	// far ahead of its merge watermark a single campaign may run. The
	// bound keeps one huge campaign from monopolizing the executors
	// and bounds the coordinator's result buffering (default 4).
	SessionLeases int
	// LeaseTimeout re-queues a lease still incomplete after this long
	// on one executor (straggler re-lease). Seeds are preserved, so
	// the duplicate merges idempotently whichever copy finishes first.
	// Zero disables the sweep; leases are then re-queued only when an
	// executor demonstrably dies (error, panic, dropped connection).
	LeaseTimeout time.Duration
	// Registry resolves workload specs for remote executors (default
	// BuiltinRegistry). Sessions whose workload does not implement
	// SpecWorkload execute on in-process executors only.
	Registry *Registry
}

func (c Config) withDefaults() Config {
	if c.Executors == 0 {
		c.Executors = runtime.GOMAXPROCS(0)
	} else if c.Executors < 0 {
		c.Executors = 0
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.SessionLeases <= 0 {
		c.SessionLeases = 4
	}
	if c.Registry == nil {
		c.Registry = BuiltinRegistry()
	}
	return c
}

// Pool is the campaign fabric coordinator: it owns the in-process
// executors, accepts remote-executor connections (see ServeExecutors),
// and schedules leases across every active campaign fairly.
type Pool struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // wakes executors waiting for a lease
	sessions []*session
	rr       int // round-robin cursor into sessions
	nextID   uint64
	admitted int
	closed   bool
	slotCh   chan struct{} // admission tickets (capacity MaxSessions)

	wg      sync.WaitGroup
	sweepCh chan struct{} // closes to stop the straggler sweeper
}

// NewPool starts a fabric coordinator with cfg.Executors in-process
// executor workers. Close releases them.
func NewPool(cfg Config) *Pool {
	p := &Pool{cfg: cfg.withDefaults(), sweepCh: make(chan struct{})}
	p.cond = sync.NewCond(&p.mu)
	p.slotCh = make(chan struct{}, p.cfg.MaxSessions)
	for i := 0; i < p.cfg.MaxSessions; i++ {
		p.slotCh <- struct{}{}
	}
	for i := 0; i < p.cfg.Executors; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.executorLoop()
		}()
	}
	if p.cfg.LeaseTimeout > 0 {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.sweepStragglers()
		}()
	}
	return p
}

// Close stops the in-process executors and fails any campaign still
// waiting on the pool. It does not wait for remote-executor
// connections; close their listener to release those.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	sessions := append([]*session(nil), p.sessions...)
	p.mu.Unlock()
	close(p.sweepCh)
	for _, s := range sessions {
		s.fail(ErrPoolClosed)
	}
	p.cond.Broadcast()
	p.wg.Wait()
}

// Stats is a point-in-time snapshot of the pool, for observability.
type Stats struct {
	Executors     int // in-process executor workers
	Sessions      int // campaigns currently executing
	QueuedLeases  int // leases awaiting an executor
	RunningLeases int // leases currently held by executors
	Admitted      int // admission slots in use
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Executors: p.cfg.Executors,
		Sessions:  len(p.sessions),
		Admitted:  p.admitted,
	}
	for _, s := range p.sessions {
		q, r := s.leaseCounts()
		st.QueuedLeases += q
		st.RunningLeases += r
	}
	return st
}

// StreamCampaign executes a campaign on the fabric with
// platform.StreamCampaign's exact contract: ordered batch delivery to
// sink, per-run journaling with a barrier per batch, early stop when
// the sink says so, and a measured series bit-identical to local
// execution. It blocks while the pool is at its MaxSessions admission
// bound. StreamOptions fields that configure a local worker pool
// (Parallel, Runner, Supervise, Resume, Replay) are not meaningful on
// the fabric: Runner and Resume are rejected, the others ignored.
func (p *Pool) StreamCampaign(ctx context.Context, cfg platform.Config, w platform.Workload, opts platform.StreamOptions, sink platform.BatchSink) (*platform.CampaignResult, error) {
	if opts.MaxRuns < 1 {
		return nil, fmt.Errorf("fabric: campaign needs >= 1 run, got %d", opts.MaxRuns)
	}
	if opts.Runner != nil {
		return nil, errors.New("fabric: custom runners (fault injection) are not supported on the fabric")
	}
	if opts.Resume != nil {
		return nil, errors.New("fabric: journal resume is not supported on the fabric; resume locally")
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = 250
	}
	if batch > opts.MaxRuns {
		batch = opts.MaxRuns
	}

	// Admission: bounded concurrent sessions (backpressure).
	select {
	case <-p.slotCh:
	case <-ctx.Done():
		return nil, fmt.Errorf("%w before any run: %w", platform.ErrCanceled, ctx.Err())
	}
	defer func() { p.slotCh <- struct{}{} }()

	s, err := p.register(ctx, cfg, w, opts, batch)
	if err != nil {
		return nil, err
	}
	defer p.unregister(s)

	return s.merge(ctx, sink)
}

// register builds a session and puts it in the dispatch rotation.
func (p *Pool) register(ctx context.Context, cfg platform.Config, w platform.Workload, opts platform.StreamOptions, batch int) (*session, error) {
	newBoard := opts.NewBoard
	if newBoard == nil {
		newBoard = func() (platform.Board, error) { return platform.New(cfg) }
	}
	sctx, cancel := context.WithCancel(ctx)
	s := &session{
		pool:     p,
		cfg:      cfg,
		w:        w,
		opts:     opts,
		batch:    batch,
		newBoard: newBoard,
		ctx:      sctx,
		cancel:   cancel,
		results:  make([]platform.RunResult, opts.MaxRuns),
		done:     make([]bool, opts.MaxRuns),
		ranges:   make(map[int]*leaseRange),
	}
	s.cond = sync.NewCond(&s.mu)
	// A session with a run cache must stay on the in-process executors:
	// remote executors cannot consult the cache and would re-simulate
	// cached runs (bit-identically, but defeating the dedup guarantee).
	if sw, ok := w.(SpecWorkload); ok && opts.Cached == nil {
		s.spec = &SessionSpec{
			Platform:   cfg,
			Workload:   sw.WorkloadSpec(),
			BaseSeed:   opts.BaseSeed,
			RunTimeout: opts.RunTimeout,
		}
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		cancel()
		return nil, ErrPoolClosed
	}
	p.nextID++
	s.id = p.nextID
	if s.spec != nil {
		s.spec.Session = s.id
	}
	p.sessions = append(p.sessions, s)
	p.admitted++
	p.mu.Unlock()
	p.cond.Broadcast()
	return s, nil
}

func (p *Pool) unregister(s *session) {
	s.cancel()
	s.mu.Lock()
	s.finished = true
	s.mu.Unlock()
	s.cond.Broadcast()

	p.mu.Lock()
	for i, other := range p.sessions {
		if other == s {
			p.sessions = append(p.sessions[:i], p.sessions[i+1:]...)
			if p.rr > i {
				p.rr--
			}
			break
		}
	}
	p.admitted--
	p.mu.Unlock()
}

// acquireLease blocks until a lease is available (round-robin over the
// active sessions, so concurrent campaigns share the executors fairly)
// or the pool closes. remoteOnly restricts the search to sessions a
// remote executor can serve (spec-backed workloads).
func (p *Pool) acquireLease(remoteOnly bool, stop <-chan struct{}) *lease {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return nil
		}
		select {
		case <-stop:
			return nil
		default:
		}
		n := len(p.sessions)
		for i := 0; i < n; i++ {
			idx := (p.rr + i) % n
			s := p.sessions[idx]
			if remoteOnly && s.spec == nil {
				continue
			}
			if l := s.takeLease(); l != nil {
				p.rr = (idx + 1) % n
				return l
			}
		}
		p.cond.Wait()
	}
}

// wake nudges executors waiting in acquireLease (new session, freed
// lease slot, re-queued lease).
func (p *Pool) wake() { p.cond.Broadcast() }

// executorLoop is one in-process executor: acquire a lease, run it on
// a fresh board, merge the results, repeat.
func (p *Pool) executorLoop() {
	for {
		l := p.acquireLease(false, nil)
		if l == nil {
			return
		}
		p.runLocalLease(l)
	}
}

func (p *Pool) runLocalLease(l *lease) {
	s := l.r.s
	board, err := s.newBoard()
	if err != nil {
		s.failLease(l, err)
		return
	}
	pol := platform.ExecPolicy{Cached: s.opts.Cached, RunTimeout: s.opts.RunTimeout, Retry: s.opts.Retry}
	for run := l.r.start; run < l.r.end; run++ {
		if s.aborted() {
			s.releaseLease(l)
			return
		}
		r, err := platform.SafeExecuteRun(s.ctx, board, s.w, s.opts.BaseSeed, run, pol)
		if err != nil {
			if s.ctx.Err() != nil {
				s.releaseLease(l)
				return
			}
			s.failLease(l, err)
			return
		}
		s.completeRun(run, r)
	}
	s.finishLease(l)
}

// sweepStragglers periodically re-queues leases held past the lease
// timeout. The original executor keeps running — if it finishes first
// its results merge as usual; the re-queued copy is idempotent.
func (p *Pool) sweepStragglers() {
	tick := time.NewTicker(p.cfg.LeaseTimeout / 4)
	defer tick.Stop()
	for {
		select {
		case <-p.sweepCh:
			return
		case <-tick.C:
		}
		p.mu.Lock()
		sessions := append([]*session(nil), p.sessions...)
		p.mu.Unlock()
		requeued := false
		for _, s := range sessions {
			if s.requeueStale(time.Now()) {
				requeued = true
			}
		}
		if requeued {
			p.wake()
		}
	}
}

// leaseRange is one contiguous batch of run indices of a session. The
// same range object survives re-queues (executor death, straggler
// sweep); epoch counts how many times it has been handed out.
type leaseRange struct {
	s          *session
	start, end int
	epoch      int
	attempts   int
	deadline   time.Time
	queued     int // copies currently in the dispatch queue
	running    int // copies currently held by executors
	done       bool
}

// lease is one executor's claim on a range at a specific epoch.
type lease struct {
	r     *leaseRange
	epoch int
}

// Start and End bound the lease's run-index range [Start, End).
func (l *lease) Start() int { return l.r.start }
func (l *lease) End() int   { return l.r.end }

// session is one campaign executing on the fabric.
type session struct {
	pool     *Pool
	id       uint64
	cfg      platform.Config
	w        platform.Workload
	opts     platform.StreamOptions
	batch    int
	newBoard func() (platform.Board, error)
	spec     *SessionSpec // non-nil when remote executors may serve it
	ctx      context.Context
	cancel   context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond // wakes the merge loop on watermark advance
	queue     []*leaseRange
	ranges    map[int]*leaseRange // by start index
	nextCarve int                 // first run index not yet leased
	results   []platform.RunResult
	done      []bool
	watermark int // contiguous completed prefix length
	failed    error
	finished  bool // merge loop exited; executors must drop leases
}

// takeLease hands out the next lease: a re-queued range first, else a
// freshly carved batch if the session is under its outstanding-lease
// bound. Called with pool.mu held (pool → session lock order).
func (s *session) takeLease() *lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil || s.finished {
		return nil
	}
	for len(s.queue) > 0 {
		r := s.queue[0]
		s.queue = s.queue[1:]
		r.queued--
		if r.done {
			continue
		}
		r.running++
		r.epoch++
		r.deadline = s.leaseDeadline()
		return &lease{r: r, epoch: r.epoch}
	}
	if s.nextCarve >= s.opts.MaxRuns || s.outstandingLocked() >= s.pool.cfg.SessionLeases {
		return nil
	}
	end := s.nextCarve + s.batch
	if end > s.opts.MaxRuns {
		end = s.opts.MaxRuns
	}
	r := &leaseRange{s: s, start: s.nextCarve, end: end, running: 1, deadline: s.leaseDeadline()}
	s.ranges[r.start] = r
	s.nextCarve = end
	return &lease{r: r, epoch: r.epoch}
}

func (s *session) leaseDeadline() time.Time {
	if s.pool.cfg.LeaseTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(s.pool.cfg.LeaseTimeout)
}

// outstandingLocked counts ranges not yet fully merged.
func (s *session) outstandingLocked() int {
	n := 0
	for _, r := range s.ranges {
		if !r.done {
			n++
		}
	}
	return n
}

func (s *session) leaseCounts() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.ranges {
		if r.done {
			continue
		}
		queued += r.queued
		running += r.running
	}
	return
}

func (s *session) aborted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed != nil || s.finished
}

// completeRun merges one run result. Duplicate completions (straggler
// re-lease) are idempotent: a run is a pure function of its seed, so
// whichever copy lands first wins and the other is byte-identical.
func (s *session) completeRun(run int, r platform.RunResult) {
	s.mu.Lock()
	if run < 0 || run >= len(s.done) || s.done[run] {
		s.mu.Unlock()
		return
	}
	s.results[run] = r
	s.done[run] = true
	advanced := false
	for s.watermark < len(s.done) && s.done[s.watermark] {
		s.watermark++
		advanced = true
	}
	s.mu.Unlock()
	if advanced {
		s.cond.Broadcast()
	}
}

// finishLease retires a completed lease and frees its outstanding slot.
func (s *session) finishLease(l *lease) {
	s.mu.Lock()
	first := !l.r.done
	l.r.done = true
	l.r.running--
	s.mu.Unlock()
	if first {
		s.pool.wake() // an outstanding slot freed: new leases may carve
	}
}

// releaseLease drops a lease without completing it (session is ending).
func (s *session) releaseLease(l *lease) {
	s.mu.Lock()
	l.r.running--
	s.mu.Unlock()
}

// abandonLease re-queues a lease whose executor died (dropped
// connection, pool shutdown race) without charging the range's attempt
// budget — losing an executor is not evidence the runs are bad.
func (s *session) abandonLease(l *lease) {
	s.mu.Lock()
	l.r.running--
	if l.r.done || s.failed != nil || s.finished {
		s.mu.Unlock()
		return
	}
	l.r.queued++
	s.queue = append(s.queue, l.r)
	s.mu.Unlock()
	s.pool.wake()
}

// failLease handles an executor failing a lease: the range re-queues
// seed-preserved for another executor, up to a small attempt budget,
// after which the campaign fails.
func (s *session) failLease(l *lease, err error) {
	const maxAttempts = 3
	s.mu.Lock()
	l.r.running--
	if l.r.done || s.failed != nil || s.finished {
		s.mu.Unlock()
		return
	}
	l.r.attempts++
	if l.r.attempts >= maxAttempts {
		s.mu.Unlock()
		s.fail(fmt.Errorf("fabric: lease [%d,%d) failed after %d attempts: %w",
			l.r.start, l.r.end, l.r.attempts, err))
		return
	}
	l.r.queued++
	s.queue = append(s.queue, l.r)
	s.mu.Unlock()
	s.pool.wake()
}

// requeueStale re-queues running leases past their deadline.
func (s *session) requeueStale(now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil || s.finished {
		return false
	}
	requeued := false
	for _, r := range s.ranges {
		if r.done || r.running == 0 || r.queued > 0 || r.deadline.IsZero() || now.Before(r.deadline) {
			continue
		}
		r.queued++
		r.deadline = now.Add(s.pool.cfg.LeaseTimeout)
		s.queue = append(s.queue, r)
		requeued = true
	}
	return requeued
}

// fail aborts the session; the merge loop returns err.
func (s *session) fail(err error) {
	s.mu.Lock()
	if s.failed == nil && !s.finished {
		s.failed = err
	}
	s.mu.Unlock()
	s.cancel()
	s.cond.Broadcast()
}

// merge is the session's delivery loop: wait for the watermark to cross
// each batch boundary, then journal, emit telemetry, and hand the batch
// to the sink — exactly the order platform.StreamCampaign uses, so
// journals, event streams and fingerprints are bit-identical.
func (s *session) merge(ctx context.Context, sink platform.BatchSink) (*platform.CampaignResult, error) {
	o := s.opts
	stopWatch := context.AfterFunc(ctx, s.cond.Broadcast)
	defer stopWatch()

	if o.Telemetry != nil {
		o.Telemetry.Emit("campaign_start", -1,
			telemetry.Str("platform", s.cfg.Name),
			telemetry.Str("workload", s.w.Name()),
			telemetry.Num("max_runs", float64(o.MaxRuns)),
			telemetry.Num("batch_size", float64(s.batch)),
			telemetry.Str("base_seed", strconv.FormatUint(o.BaseSeed, 10)),
		)
	}

	res := &platform.CampaignResult{
		Platform: s.cfg.Name,
		Workload: s.w.Name(),
	}
	finishPartial := func(total, journaledFrom int) error {
		res.Results = s.results[:total]
		if o.Journal == nil {
			return nil
		}
		for run := journaledFrom; run < total; run++ {
			if err := o.Journal.LogRun(run, platform.DeriveRunSeed(o.BaseSeed, run), s.results[run]); err != nil {
				return fmt.Errorf("fabric: journal: %w", err)
			}
		}
		if err := o.Journal.Flush(); err != nil {
			return fmt.Errorf("fabric: journal: %w", err)
		}
		return nil
	}

	delivered, stopped := 0, false
	for batch := 0; delivered < o.MaxRuns && !stopped; batch++ {
		end := delivered + s.batch
		if end > o.MaxRuns {
			end = o.MaxRuns
		}

		s.mu.Lock()
		for s.watermark < end && s.failed == nil && ctx.Err() == nil {
			s.cond.Wait()
		}
		failed, mark := s.failed, s.watermark
		s.mu.Unlock()

		if err := ctx.Err(); err != nil && mark < end {
			if ferr := finishPartial(mark, delivered); ferr != nil {
				return nil, ferr
			}
			return res, fmt.Errorf("%w after %d runs: %w", platform.ErrCanceled, mark, err)
		}
		if failed != nil && mark < end {
			return nil, failed
		}

		out := s.results[delivered:end]
		if o.Journal != nil {
			for run := delivered; run < end; run++ {
				if err := o.Journal.LogRun(run, platform.DeriveRunSeed(o.BaseSeed, run), s.results[run]); err != nil {
					return nil, fmt.Errorf("fabric: journal: %w", err)
				}
			}
		}
		b := platform.Batch{Index: batch, Start: delivered, Results: out}
		platform.ReplayBatch(o.Telemetry, b)
		if sink != nil {
			stop, err := sink(b)
			if err != nil {
				return nil, err
			}
			stopped = stop
		}
		if o.Journal != nil {
			if err := o.Journal.Barrier(b); err != nil {
				return nil, fmt.Errorf("fabric: journal: %w", err)
			}
		}
		delivered = end
	}
	res.Results = s.results[:delivered]
	if o.Telemetry != nil {
		early := 0.0
		if stopped {
			early = 1
		}
		o.Telemetry.Emit("campaign_end", -1,
			telemetry.Num("runs", float64(delivered)),
			telemetry.Num("stopped_early", early),
		)
	}
	return res, nil
}
