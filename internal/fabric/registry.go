package fabric

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/tvca"
)

// WorkloadSpec names a workload and its parameters in a serializable
// form — the unit a remote executor (or the pWCET service) can rebuild
// a workload from. Params is the JSON encoding of the kind's parameter
// struct (tvca.Config for "tvca", kernels.MatMul for "matmul", ...);
// empty Params selects the kind's defaults.
type WorkloadSpec struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
}

// SpecWorkload is a Workload that can be reconstructed from a spec on
// another machine. Only sessions whose workload implements it are
// dispatched to remote executors; everything else executes on the
// in-process pool.
type SpecWorkload interface {
	platform.Workload
	WorkloadSpec() WorkloadSpec
}

// SessionSpec is everything a remote executor needs to execute leases
// of one session: the full platform build, the workload spec, and the
// seed derivation base. It crosses the wire as a JSON control frame.
type SessionSpec struct {
	Session    uint64          `json:"session"`
	Platform   platform.Config `json:"platform"`
	Workload   WorkloadSpec    `json:"workload"`
	BaseSeed   uint64          `json:"base_seed"`
	RunTimeout time.Duration   `json:"run_timeout,omitempty"`
}

// Registry maps workload kinds to constructors.
type Registry struct {
	mu       sync.RWMutex
	builders map[string]func(json.RawMessage) (platform.Workload, error)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{builders: make(map[string]func(json.RawMessage) (platform.Workload, error))}
}

// Register installs a constructor for kind, replacing any previous one.
func (r *Registry) Register(kind string, build func(params json.RawMessage) (platform.Workload, error)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.builders[kind] = build
}

// Kinds lists the registered workload kinds, sorted.
func (r *Registry) Kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.builders))
	for k := range r.builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build instantiates spec. The result implements SpecWorkload, so a
// campaign built from a spec is remote-dispatchable by construction.
func (r *Registry) Build(spec WorkloadSpec) (SpecWorkload, error) {
	r.mu.RLock()
	build, ok := r.builders[spec.Kind]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fabric: unknown workload kind %q (have %v)", spec.Kind, r.Kinds())
	}
	w, err := build(spec.Params)
	if err != nil {
		return nil, fmt.Errorf("fabric: build workload %q: %w", spec.Kind, err)
	}
	return specced{Workload: w, spec: spec}, nil
}

// specced tags a built workload with the spec that produced it.
type specced struct {
	platform.Workload
	spec WorkloadSpec
}

func (s specced) WorkloadSpec() WorkloadSpec { return s.spec }

// decodeParams unmarshals params over defaults; empty params keep them.
func decodeParams[T any](params json.RawMessage, defaults T) (T, error) {
	if len(params) == 0 {
		return defaults, nil
	}
	err := json.Unmarshal(params, &defaults)
	return defaults, err
}

var (
	builtinOnce sync.Once
	builtin     *Registry
)

// BuiltinRegistry returns the process-wide registry of the repository's
// workloads: the TVCA case study, the four generality kernels and the
// secret-dependent timing-leak probe.
func BuiltinRegistry() *Registry {
	builtinOnce.Do(func() {
		builtin = NewRegistry()
		builtin.Register("tvca", func(params json.RawMessage) (platform.Workload, error) {
			cfg, err := decodeParams(params, tvca.DefaultConfig())
			if err != nil {
				return nil, err
			}
			return tvca.New(cfg)
		})
		builtin.Register("matmul", func(params json.RawMessage) (platform.Workload, error) {
			return decodeParams(params, kernels.MatMul{N: 16, Seed: 1})
		})
		builtin.Register("crc32", func(params json.RawMessage) (platform.Workload, error) {
			return decodeParams(params, kernels.CRC32{Bytes: 2048, Seed: 1})
		})
		builtin.Register("isort", func(params json.RawMessage) (platform.Workload, error) {
			return decodeParams(params, kernels.InsertionSort{N: 96, Seed: 1})
		})
		builtin.Register("vecnorm", func(params json.RawMessage) (platform.Workload, error) {
			return decodeParams(params, kernels.VecNorm{N: 64, Seed: 1})
		})
		builtin.Register("secretdep", func(params json.RawMessage) (platform.Workload, error) {
			return decodeParams(params, kernels.SecretDep{Lines: 48, Passes: 8, Seed: 1})
		})
	})
	return builtin
}

// NamedPlatform resolves the two reference platform builds. The empty
// name selects RAND (the MBPTA-compliant build).
func NamedPlatform(name string) (platform.Config, error) {
	switch name {
	case "", "RAND":
		return platform.RAND(), nil
	case "DET":
		return platform.DET(), nil
	}
	return platform.Config{}, fmt.Errorf("fabric: unknown platform %q (have RAND, DET)", name)
}
