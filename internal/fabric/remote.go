// Remote executors: the fabric's wire protocol reuses the write-ahead
// log codec (internal/wal) as its framing — every frame is
// kind|len|payload|crc32, and measurement results cross the socket as
// the exact run-record bytes a journal would hold. Control frames use
// kinds in the 0x10+ range, well clear of the journal's record kinds.
//
// An executor dials the coordinator, announces itself, and then serves
// leases sequentially: the coordinator sends a session spec (platform
// build + workload spec + seed base, JSON) the first time a session
// appears on the connection, then a lease frame naming a run range;
// the executor streams one run-record frame per run and closes the
// lease with a lease-done frame. A dropped connection or an
// executor-reported failure re-queues the lease seed-preserved, so a
// killed executor never changes a campaign's results — only its
// wall-clock time. Parallelism is one lease per connection; run
// several executors (or several connections) for more.
package fabric

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/platform"
	"repro/internal/wal"
)

// Control-frame kinds (the 0x10+ range; journal records use 1..3).
const (
	kindHello     byte = 0x10 // executor → coordinator: {"v":1}
	kindSpec      byte = 0x11 // coordinator → executor: SessionSpec
	kindLease     byte = 0x12 // coordinator → executor: leaseMsg
	kindLeaseDone byte = 0x13 // executor → coordinator: leaseMsg
	kindLeaseFail byte = 0x14 // executor → coordinator: leaseFailMsg
)

const protocolVersion = 1

type helloMsg struct {
	V int `json:"v"`
}

type leaseMsg struct {
	Session uint64 `json:"session"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
}

type leaseFailMsg struct {
	Session uint64 `json:"session"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	Error   string `json:"error"`
}

func writeJSONFrame(w io.Writer, kind byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return wal.WriteFrame(w, kind, payload)
}

// ServeExecutors accepts remote-executor connections on ln and serves
// leases to them until ln is closed (or the pool is). Each connection
// behaves like one additional (sequential) executor; its leases come
// only from sessions whose workload is spec-backed (see SpecWorkload).
func (p *Pool) ServeExecutors(ln net.Listener) error {
	var wg sync.WaitGroup
	stop := make(chan struct{})
	defer func() {
		// Release handlers idling in acquireLease, then wait them out.
		close(stop)
		p.wake()
		wg.Wait()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.handleExecutor(conn, stop)
		}()
	}
}

// handleExecutor drives one remote-executor connection: acquire a
// spec-backed lease, ship it, merge the streamed run records.
func (p *Pool) handleExecutor(conn net.Conn, stop <-chan struct{}) {
	defer conn.Close()
	fr := wal.NewFrameReader(conn)
	kind, payload, err := fr.Next()
	if err != nil || kind != kindHello {
		return
	}
	var hello helloMsg
	if json.Unmarshal(payload, &hello) != nil || hello.V != protocolVersion {
		return
	}
	bw := bufio.NewWriter(conn)
	introduced := make(map[uint64]bool)

	for {
		l := p.acquireLease(true, stop)
		if l == nil {
			return // pool closed
		}
		s := l.r.s
		if !introduced[s.id] {
			if err := writeJSONFrame(bw, kindSpec, s.spec); err != nil {
				s.abandonLease(l)
				return
			}
			introduced[s.id] = true
		}
		msg := leaseMsg{Session: s.id, Start: l.Start(), End: l.End()}
		if err := writeJSONFrame(bw, kindLease, msg); err != nil {
			s.abandonLease(l)
			return
		}
		if err := bw.Flush(); err != nil {
			s.abandonLease(l)
			return
		}
		if !p.mergeLeaseResults(fr, l) {
			return // connection is gone; the lease was re-queued
		}
	}
}

// mergeLeaseResults reads one lease's worth of frames off the
// connection, merging run records into the session. It returns false
// when the connection died (the lease has been abandoned for re-queue).
func (p *Pool) mergeLeaseResults(fr *wal.FrameReader, l *lease) bool {
	s := l.r.s
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			s.abandonLease(l)
			return false
		}
		switch kind {
		case wal.KindRun:
			rec, err := wal.DecodeRunRecord(payload)
			if err != nil {
				s.failLease(l, fmt.Errorf("fabric: corrupt run record from executor: %w", err))
				return false
			}
			if rec.Run < l.Start() || rec.Run >= l.End() {
				s.failLease(l, fmt.Errorf("fabric: executor returned run %d outside lease [%d,%d)",
					rec.Run, l.Start(), l.End()))
				return false
			}
			if want := platform.DeriveRunSeed(s.opts.BaseSeed, rec.Run); rec.Seed != want {
				s.failLease(l, fmt.Errorf("fabric: executor run %d used seed %#x, protocol requires %#x",
					rec.Run, rec.Seed, want))
				return false
			}
			s.completeRun(rec.Run, platform.RunResult{
				Cycles:       rec.Cycles,
				Instructions: rec.Instructions,
				Path:         rec.Path,
				Outcome:      rec.Outcome,
				Faults:       rec.Faults,
			})
		case kindLeaseDone:
			s.finishLease(l)
			return true
		case kindLeaseFail:
			var msg leaseFailMsg
			reason := "executor failure"
			if json.Unmarshal(payload, &msg) == nil && msg.Error != "" {
				reason = msg.Error
			}
			s.failLease(l, fmt.Errorf("fabric: executor failed lease [%d,%d): %s",
				l.Start(), l.End(), reason))
			return true
		default:
			s.failLease(l, fmt.Errorf("fabric: unexpected frame kind %#x from executor", kind))
			return false
		}
	}
}

// execState is one session's execution context on a remote executor:
// the rebuilt workload and a board reused across that session's leases
// (PrepareRun resets all stateful resources, so reuse is
// protocol-compliant).
type execState struct {
	spec  SessionSpec
	w     platform.Workload
	board platform.Board
}

// maxCachedSessions bounds the per-connection board cache; a
// long-lived executor serving thousands of sessions evicts the oldest.
const maxCachedSessions = 8

// RunExecutor connects to a coordinator at addr and serves leases until
// ctx is canceled or the coordinator closes the connection (clean
// shutdown, nil error). Workload specs resolve through reg (nil =
// BuiltinRegistry). One connection executes leases sequentially; run
// several RunExecutor instances for parallelism.
func RunExecutor(ctx context.Context, addr string, reg *Registry) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return ExecuteConn(ctx, conn, reg)
}

// ExecuteConn is RunExecutor over an established connection.
func ExecuteConn(ctx context.Context, conn net.Conn, reg *Registry) error {
	if reg == nil {
		reg = BuiltinRegistry()
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	bw := bufio.NewWriter(conn)
	if err := writeJSONFrame(bw, kindHello, helloMsg{V: protocolVersion}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	fr := wal.NewFrameReader(conn)
	sessions := make(map[uint64]*execState)
	var order []uint64 // eviction order (insertion)
	var scratch []byte

	for {
		kind, payload, err := fr.Next()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch kind {
		case kindSpec:
			var spec SessionSpec
			if err := json.Unmarshal(payload, &spec); err != nil {
				return fmt.Errorf("fabric: bad session spec: %w", err)
			}
			w, err := reg.Build(spec.Workload)
			if err != nil {
				return err
			}
			board, err := platform.New(spec.Platform)
			if err != nil {
				return fmt.Errorf("fabric: build platform %q: %w", spec.Platform.Name, err)
			}
			if len(order) >= maxCachedSessions {
				delete(sessions, order[0])
				order = order[1:]
			}
			sessions[spec.Session] = &execState{spec: spec, w: w, board: board}
			order = append(order, spec.Session)
		case kindLease:
			var msg leaseMsg
			if err := json.Unmarshal(payload, &msg); err != nil {
				return fmt.Errorf("fabric: bad lease frame: %w", err)
			}
			es, ok := sessions[msg.Session]
			if !ok {
				if err := writeJSONFrame(bw, kindLeaseFail, leaseFailMsg{
					Session: msg.Session, Start: msg.Start, End: msg.End,
					Error: "unknown session (spec evicted or never sent)",
				}); err != nil {
					return err
				}
				if err := bw.Flush(); err != nil {
					return err
				}
				continue
			}
			if scratch, err = executeLease(ctx, bw, es, msg, scratch); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("fabric: unexpected frame kind %#x from coordinator", kind)
		}
	}
}

// executeLease runs one lease and streams its run records. Execution
// failures are reported in-band (lease-fail frame), not as an error;
// the returned error means the connection itself is unusable.
func executeLease(ctx context.Context, bw *bufio.Writer, es *execState, msg leaseMsg, scratch []byte) ([]byte, error) {
	pol := platform.ExecPolicy{RunTimeout: es.spec.RunTimeout}
	for run := msg.Start; run < msg.End; run++ {
		r, err := platform.SafeExecuteRun(ctx, es.board, es.w, es.spec.BaseSeed, run, pol)
		if err != nil {
			return scratch, writeJSONFrame(bw, kindLeaseFail, leaseFailMsg{
				Session: msg.Session, Start: msg.Start, End: msg.End, Error: err.Error(),
			})
		}
		rec := wal.RunRecord{
			Run:          run,
			Seed:         platform.DeriveRunSeed(es.spec.BaseSeed, run),
			Cycles:       r.Cycles,
			Instructions: r.Instructions,
			Faults:       r.Faults,
			Path:         r.Path,
			Outcome:      r.Outcome,
		}
		payload, err := wal.EncodeRunRecord(scratch[:0], rec)
		if err != nil {
			return scratch, writeJSONFrame(bw, kindLeaseFail, leaseFailMsg{
				Session: msg.Session, Start: msg.Start, End: msg.End, Error: err.Error(),
			})
		}
		scratch = payload
		if err := wal.WriteFrame(bw, wal.KindRun, payload); err != nil {
			return scratch, err
		}
	}
	return scratch, writeJSONFrame(bw, kindLeaseDone, leaseMsg{
		Session: msg.Session, Start: msg.Start, End: msg.End,
	})
}
