package fabric

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/wal"
)

// startCoordinator wires a pool to a loopback listener and returns the
// dial address. The listener and serve loop are torn down with the test.
func startCoordinator(t *testing.T, pool *Pool) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- pool.ServeExecutors(ln) }()
	t.Cleanup(func() {
		ln.Close()
		if err := <-done; err != nil {
			t.Errorf("ServeExecutors: %v", err)
		}
	})
	return ln.Addr().String()
}

// startExecutor runs a remote executor against addr for the test's life.
func startExecutor(t *testing.T, addr string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		RunExecutor(ctx, addr, nil)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

func TestRemoteExecutorRoundTrip(t *testing.T) {
	// Executors: -1 disables in-process execution, so every run below
	// provably crossed the wire.
	w := testWorkload(t)
	ref := reference(t, w, 40, 10, 7)

	pool := NewPool(Config{Executors: -1})
	defer pool.Close()
	addr := startCoordinator(t, pool)
	startExecutor(t, addr)
	startExecutor(t, addr)

	got, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 40, BatchSize: 10, BaseSeed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ref, got)
}

func TestRemoteExecutorKilledMidLeaseBitIdentical(t *testing.T) {
	// A remote executor that executes part of its lease and then dies
	// must not perturb the campaign: the lease re-queues seed-preserved,
	// the partial results merge idempotently, and the final series is
	// bit-identical to an uninterrupted single-process run.
	w := testWorkload(t)
	ref := reference(t, w, 40, 10, 11)

	pool := NewPool(Config{Executors: -1})
	defer pool.Close()
	addr := startCoordinator(t, pool)

	result := make(chan error, 1)
	var got *platform.CampaignResult
	go func() {
		var err error
		got, err = pool.StreamCampaign(context.Background(), platform.RAND(), w,
			platform.StreamOptions{MaxRuns: 40, BatchSize: 10, BaseSeed: 11}, nil)
		result <- err
	}()

	// The doomed executor: speaks the real protocol, executes the first
	// two runs of its lease correctly, then drops the connection.
	leaseTaken := runDoomedExecutor(t, addr, 2)
	<-leaseTaken

	// Now the healthy executor finishes the campaign, including the
	// re-queued remainder of the doomed lease.
	startExecutor(t, addr)

	select {
	case err := <-result:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("campaign did not recover from killed executor")
	}
	assertSameResults(t, ref, got)
}

// runDoomedExecutor connects a protocol-conformant executor that
// executes only partialRuns runs of its first lease and then severs the
// connection. The returned channel closes once the connection is dead
// (lease abandoned coordinator-side shortly after).
func runDoomedExecutor(t *testing.T, addr string, partialRuns int) <-chan struct{} {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	dead := make(chan struct{})
	go func() {
		defer close(dead)
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		if err := writeJSONFrame(bw, kindHello, helloMsg{V: protocolVersion}); err != nil {
			t.Errorf("doomed executor hello: %v", err)
			return
		}
		if err := bw.Flush(); err != nil {
			t.Errorf("doomed executor flush: %v", err)
			return
		}
		fr := wal.NewFrameReader(conn)
		var spec SessionSpec
		for {
			kind, payload, err := fr.Next()
			if err != nil {
				t.Errorf("doomed executor read: %v", err)
				return
			}
			if kind == kindSpec {
				if err := json.Unmarshal(payload, &spec); err != nil {
					t.Errorf("doomed executor spec: %v", err)
					return
				}
				continue
			}
			if kind != kindLease {
				t.Errorf("doomed executor: unexpected frame %#x", kind)
				return
			}
			var msg leaseMsg
			if err := json.Unmarshal(payload, &msg); err != nil {
				t.Errorf("doomed executor lease: %v", err)
				return
			}
			wl, err := BuiltinRegistry().Build(spec.Workload)
			if err != nil {
				t.Errorf("doomed executor build: %v", err)
				return
			}
			board, err := platform.New(spec.Platform)
			if err != nil {
				t.Errorf("doomed executor platform: %v", err)
				return
			}
			for run := msg.Start; run < msg.Start+partialRuns && run < msg.End; run++ {
				r, err := platform.SafeExecuteRun(context.Background(), board, wl,
					spec.BaseSeed, run, platform.ExecPolicy{})
				if err != nil {
					t.Errorf("doomed executor run %d: %v", run, err)
					return
				}
				payload, err := wal.EncodeRunRecord(nil, wal.RunRecord{
					Run:          run,
					Seed:         platform.DeriveRunSeed(spec.BaseSeed, run),
					Cycles:       r.Cycles,
					Instructions: r.Instructions,
					Faults:       r.Faults,
					Path:         r.Path,
					Outcome:      r.Outcome,
				})
				if err != nil {
					t.Errorf("doomed executor encode: %v", err)
					return
				}
				if err := wal.WriteFrame(bw, wal.KindRun, payload); err != nil {
					t.Errorf("doomed executor write: %v", err)
					return
				}
			}
			if err := bw.Flush(); err != nil {
				t.Errorf("doomed executor flush: %v", err)
			}
			return // die without leaseDone: connection drops
		}
	}()
	return dead
}

func TestRemoteStragglerReleased(t *testing.T) {
	// A remote executor that takes a lease and stalls forever: the
	// straggler sweep re-queues the lease after the timeout and the
	// in-process executor finishes the campaign, bit-identically.
	w := testWorkload(t)
	ref := reference(t, w, 60, 10, 5)

	pool := NewPool(Config{Executors: 1, LeaseTimeout: 200 * time.Millisecond})
	defer pool.Close()
	addr := startCoordinator(t, pool)

	// The staller: handshakes, swallows whatever the coordinator sends,
	// never answers.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if err := writeJSONFrame(bw, kindHello, helloMsg{V: protocolVersion}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	go func() {
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	got, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 60, BatchSize: 10, BaseSeed: 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ref, got)
}

func TestRegistryUnknownKind(t *testing.T) {
	if _, err := BuiltinRegistry().Build(WorkloadSpec{Kind: "no-such-kernel"}); err == nil {
		t.Fatal("unknown kind built")
	}
	kinds := BuiltinRegistry().Kinds()
	if len(kinds) < 5 {
		t.Fatalf("builtin kinds = %v", kinds)
	}
}

func TestNamedPlatform(t *testing.T) {
	for _, name := range []string{"", "RAND", "DET"} {
		if _, err := NamedPlatform(name); err != nil {
			t.Errorf("NamedPlatform(%q): %v", name, err)
		}
	}
	if _, err := NamedPlatform("FPGA"); err == nil {
		t.Error("unknown platform resolved")
	}
}
