package fabric

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/platform"
)

// testWorkload returns a fast spec-backed workload.
func testWorkload(t *testing.T) SpecWorkload {
	t.Helper()
	w, err := BuiltinRegistry().Build(WorkloadSpec{Kind: "crc32"})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// reference runs the single-process engine at parallelism 1 — the
// ground truth every fabric execution must reproduce bit-for-bit.
func reference(t *testing.T, w platform.Workload, runs, batch int, seed uint64) *platform.CampaignResult {
	t.Helper()
	ref, err := platform.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: runs, BatchSize: batch, BaseSeed: seed, Parallel: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func assertSameResults(t *testing.T, ref, got *platform.CampaignResult) {
	t.Helper()
	if len(ref.Results) != len(got.Results) {
		t.Fatalf("%d results, reference has %d", len(got.Results), len(ref.Results))
	}
	for i := range ref.Results {
		if ref.Results[i] != got.Results[i] {
			t.Fatalf("run %d differs: fabric %+v, reference %+v", i, got.Results[i], ref.Results[i])
		}
	}
	if ref.Platform != got.Platform || ref.Workload != got.Workload {
		t.Fatalf("labels %q/%q, want %q/%q", got.Platform, got.Workload, ref.Platform, ref.Workload)
	}
}

func TestFabricMatchesSingleProcess(t *testing.T) {
	w := testWorkload(t)
	ref := reference(t, w, 40, 10, 7)

	pool := NewPool(Config{Executors: 4})
	defer pool.Close()
	got, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 40, BatchSize: 10, BaseSeed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ref, got)
}

func TestFabricBatchesOrderedAndStoppable(t *testing.T) {
	w := testWorkload(t)
	pool := NewPool(Config{Executors: 4})
	defer pool.Close()

	var batches []platform.Batch
	got, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 50, BatchSize: 10, BaseSeed: 3},
		func(b platform.Batch) (bool, error) {
			cp := b
			cp.Results = append([]platform.RunResult(nil), b.Results...)
			batches = append(batches, cp)
			return b.Index == 1, nil // stop after the second batch
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 20 {
		t.Fatalf("stopped campaign kept %d runs, want 20", len(got.Results))
	}
	if len(batches) != 2 {
		t.Fatalf("%d batches delivered, want 2", len(batches))
	}
	for i, b := range batches {
		if b.Index != i || b.Start != i*10 || len(b.Results) != 10 {
			t.Fatalf("batch %d malformed: index=%d start=%d n=%d", i, b.Index, b.Start, len(b.Results))
		}
	}
	ref := reference(t, w, 20, 10, 3)
	assertSameResults(t, ref, got)
}

func TestFabricSinkErrorAborts(t *testing.T) {
	w := testWorkload(t)
	pool := NewPool(Config{Executors: 2})
	defer pool.Close()
	sinkErr := errors.New("sink exploded")
	_, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 30, BatchSize: 10, BaseSeed: 1},
		func(platform.Batch) (bool, error) { return false, sinkErr })
	if !errors.Is(err, sinkErr) {
		t.Fatalf("err = %v, want sink error", err)
	}
}

func TestFabricCancellation(t *testing.T) {
	w := testWorkload(t)
	pool := NewPool(Config{Executors: 2})
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	_, err := pool.StreamCampaign(ctx, platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 1000, BatchSize: 10, BaseSeed: 1},
		func(b platform.Batch) (bool, error) {
			if b.Index == 1 {
				cancel()
			}
			return false, nil
		})
	if !errors.Is(err, platform.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestFabricRejectsUnsupportedOptions(t *testing.T) {
	w := testWorkload(t)
	pool := NewPool(Config{Executors: 1})
	defer pool.Close()
	runner := func(ctx context.Context, p *platform.Platform, wl platform.Workload, run int, seed uint64) (platform.RunResult, error) {
		return platform.RunResult{}, nil
	}
	if _, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 5, Runner: runner}, nil); err == nil {
		t.Error("custom runner accepted")
	}
	if _, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 5, Resume: &platform.ResumeState{}}, nil); err == nil {
		t.Error("resume accepted")
	}
	if _, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 0}, nil); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestFabricManyConcurrentCampaigns(t *testing.T) {
	// Many campaigns multiplexed over one small pool: every one must
	// finish and match its single-process reference exactly (fair
	// scheduling means none starves; bounded admission means this also
	// exercises backpressure).
	w := testWorkload(t)
	const campaigns = 24
	pool := NewPool(Config{Executors: 4, MaxSessions: 6, SessionLeases: 2})
	defer pool.Close()

	refs := make([]*platform.CampaignResult, campaigns)
	for i := range refs {
		refs[i] = reference(t, w, 12, 4, uint64(100+i))
	}

	var wg sync.WaitGroup
	errs := make([]error, campaigns)
	results := make([]*platform.CampaignResult, campaigns)
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = pool.StreamCampaign(context.Background(), platform.RAND(), w,
				platform.StreamOptions{MaxRuns: 12, BatchSize: 4, BaseSeed: uint64(100 + i)}, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < campaigns; i++ {
		if errs[i] != nil {
			t.Fatalf("campaign %d: %v", i, errs[i])
		}
		assertSameResults(t, refs[i], results[i])
	}
}

func TestFabricPoolClosedFailsWaiters(t *testing.T) {
	w := testWorkload(t)
	pool := NewPool(Config{Executors: 1})
	done := make(chan error, 1)
	go func() {
		_, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
			platform.StreamOptions{MaxRuns: 100000, BatchSize: 100, BaseSeed: 1}, nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	pool.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("err = %v, want ErrPoolClosed", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("campaign not released by pool close")
	}
}

func TestFabricJournalMatchesLocal(t *testing.T) {
	// The fabric merge loop must feed a journal the same LogRun/Barrier
	// sequence the local engine does.
	w := testWorkload(t)
	localJ := &recordingJournal{}
	if _, err := platform.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 20, BatchSize: 5, BaseSeed: 9, Parallel: 1, Journal: localJ}, nil); err != nil {
		t.Fatal(err)
	}

	pool := NewPool(Config{Executors: 3})
	defer pool.Close()
	fabJ := &recordingJournal{}
	if _, err := pool.StreamCampaign(context.Background(), platform.RAND(), w,
		platform.StreamOptions{MaxRuns: 20, BatchSize: 5, BaseSeed: 9, Journal: fabJ}, nil); err != nil {
		t.Fatal(err)
	}
	if len(localJ.log) != len(fabJ.log) {
		t.Fatalf("journal op counts differ: local %d, fabric %d", len(localJ.log), len(fabJ.log))
	}
	for i := range localJ.log {
		if localJ.log[i] != fabJ.log[i] {
			t.Fatalf("journal op %d differs:\nlocal:  %s\nfabric: %s", i, localJ.log[i], fabJ.log[i])
		}
	}
}

// recordingJournal captures the journal call sequence for comparison.
type recordingJournal struct {
	log []string
}

func (j *recordingJournal) LogRun(run int, seed uint64, r platform.RunResult) error {
	j.log = append(j.log, fmt.Sprintf("run %d seed %#x %+v", run, seed, r))
	return nil
}

func (j *recordingJournal) Barrier(b platform.Batch) error {
	j.log = append(j.log, fmt.Sprintf("barrier %d start %d n %d", b.Index, b.Start, len(b.Results)))
	return nil
}

func (j *recordingJournal) Flush() error {
	j.log = append(j.log, "flush")
	return nil
}
