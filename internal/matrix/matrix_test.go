package matrix

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fabric"
	"repro/pkg/mbpta"
)

// baseCell returns a small, fully populated cell for key tests.
func baseCell() Cell {
	return Cell{
		Platform:  "RAND",
		Workload:  fabric.WorkloadSpec{Kind: "crc32", Params: json.RawMessage(`{"Bytes":512,"Seed":1}`)},
		FaultRate: 0,
		Cores:     1,
		BaseSeed:  42,
		StopRule:  StopRuleSpec{Kind: "fixed"},
		Runs:      100,
		Batch:     25,
		Analysis:  AnalysisSpec{},
	}
}

// TestCacheKeySensitivity classifies every Cell field as
// simulation-relevant (mutating it must change the key) or
// analysis-only (mutating it must not), and fails loudly on any field
// that is neither — adding a field to Cell without deciding its cache
// semantics is exactly the bug this test exists to catch.
func TestCacheKeySensitivity(t *testing.T) {
	type class struct {
		simRelevant bool
		mutate      func(*Cell)
	}
	classes := map[string]class{
		// Simulation-relevant: these change what the boards execute.
		"Platform":     {true, func(c *Cell) { c.Platform = "DET" }},
		"Workload":     {true, func(c *Cell) { c.Workload.Params = json.RawMessage(`{"Bytes":1024,"Seed":1}`) }},
		"FaultRate":    {true, func(c *Cell) { c.FaultRate = 0.25 }},
		"Cores":        {true, func(c *Cell) { c.Cores = 2 }},
		"BaseSeed":     {true, func(c *Cell) { c.BaseSeed = 43 }},
		"RunTimeoutMS": {true, func(c *Cell) { c.RunTimeoutMS = 100 }},
		// Mitigation changes measured cycle counts (overheads, recovered
		// runs); a hazard reshapes the per-run upset schedule.
		"Mitigation": {true, func(c *Cell) { c.Mitigation = mbpta.Mitigation{Kind: mbpta.MitigationECC} }},
		"Hazard":     {true, func(c *Cell) { c.Hazard = mbpta.Hazard{Kind: mbpta.HazardWeibull} }},
		// Analysis-only: these reshape the analysis over the same runs.
		"StopRule": {false, func(c *Cell) { c.StopRule = StopRuleSpec{Kind: "pwcet-delta", Q: 1e-9} }},
		"Runs":     {false, func(c *Cell) { c.Runs = 200 }},
		"Batch":    {false, func(c *Cell) { c.Batch = 50 }},
		"Analysis": {false, func(c *Cell) { c.Analysis = AnalysisSpec{Alpha: 0.01, BlockSize: 25, Quantiles: []float64{1e-6}} }},
		// Leak is analysis-only for the cell itself: the two secret
		// variants derive their own keys via withSecret's params rewrite.
		"Leak": {false, func(c *Cell) { c.Leak = true }},
	}

	base := baseCell()
	baseKey, err := base.SimKey()
	if err != nil {
		t.Fatalf("SimKey: %v", err)
	}
	ct := reflect.TypeOf(Cell{})
	for i := 0; i < ct.NumField(); i++ {
		name := ct.Field(i).Name
		cl, ok := classes[name]
		if !ok {
			t.Fatalf("Cell field %q is not classified as simulation-relevant or analysis-only; "+
				"decide its cache semantics and add it to this test's table", name)
		}
		mutated := base
		cl.mutate(&mutated)
		if reflect.DeepEqual(mutated, base) {
			t.Fatalf("mutator for %q did not change the cell", name)
		}
		key, err := mutated.SimKey()
		if err != nil {
			t.Fatalf("SimKey after mutating %q: %v", name, err)
		}
		if cl.simRelevant && key == baseKey {
			t.Errorf("field %q is simulation-relevant but mutating it did not change the cache key", name)
		}
		if !cl.simRelevant && key != baseKey {
			t.Errorf("field %q is analysis-only but mutating it changed the cache key", name)
		}
	}
}

// TestSimKeyAliasStable: the empty platform name is the RAND alias and
// must share RAND's cache entries.
func TestSimKeyAliasStable(t *testing.T) {
	a, b := baseCell(), baseCell()
	b.Platform = ""
	ka, _ := a.SimKey()
	kb, err := b.SimKey()
	if err != nil {
		t.Fatalf("SimKey: %v", err)
	}
	if ka != kb {
		t.Fatalf("platform alias %q and %q derive different keys", a.Platform, b.Platform)
	}
}

func TestExpandDefaultsAndOrder(t *testing.T) {
	spec := Spec{
		Platforms: []string{"DET", "RAND"},
		Workloads: []fabric.WorkloadSpec{{Kind: "crc32"}, {Kind: "isort"}},
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("2x2 spec expanded to %d cells", len(cells))
	}
	want := []string{"DET/crc32/f0/c1/fixed", "DET/isort/f0/c1/fixed", "RAND/crc32/f0/c1/fixed", "RAND/isort/f0/c1/fixed"}
	for i, c := range cells {
		if c.Label() != want[i] {
			t.Errorf("cell %d = %s, want %s", i, c.Label(), want[i])
		}
		if c.Runs != 3000 || c.Batch != 250 {
			t.Errorf("cell %d defaults: runs %d batch %d", i, c.Runs, c.Batch)
		}
	}
	again, _ := Expand(spec)
	if !reflect.DeepEqual(cells, again) {
		t.Fatal("expansion is not deterministic")
	}
}

func TestExpandExclusions(t *testing.T) {
	rate := 0.25
	spec := Spec{
		Platforms:  []string{"DET", "RAND"},
		Workloads:  []fabric.WorkloadSpec{{Kind: "crc32"}},
		FaultRates: []float64{0, 0.25},
		Cores:      []int{1, 2},
		Exclude:    []Exclusion{{Platform: "DET", FaultRate: &rate}},
	}
	cells, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	for _, c := range cells {
		if c.FaultRate > 0 && c.Cores > 1 {
			t.Errorf("fault x multicore cell %s survived auto-exclusion", c.Label())
		}
		if c.Platform == "DET" && c.FaultRate == rate {
			t.Errorf("excluded cell %s survived", c.Label())
		}
	}
	// 2 platforms x (f0 x {c1,c2} + f0.25 x c1) = 6, minus DET/f0.25 = 5.
	if len(cells) != 5 {
		t.Fatalf("got %d cells, want 5", len(cells))
	}
}

func TestExpandRejectsBadSpecs(t *testing.T) {
	for name, spec := range map[string]Spec{
		"no platforms": {Workloads: []fabric.WorkloadSpec{{Kind: "crc32"}}},
		"no workloads": {Platforms: []string{"RAND"}},
		"bad platform": {Platforms: []string{"XYZ"}, Workloads: []fabric.WorkloadSpec{{Kind: "crc32"}}},
		"bad rule":     {Platforms: []string{"RAND"}, Workloads: []fabric.WorkloadSpec{{Kind: "crc32"}}, StopRules: []StopRuleSpec{{Kind: "nope"}}},
		"bad cores":    {Platforms: []string{"RAND"}, Workloads: []fabric.WorkloadSpec{{Kind: "crc32"}}, Cores: []int{0}},
		"all excluded": {Platforms: []string{"RAND"}, Workloads: []fabric.WorkloadSpec{{Kind: "crc32"}}, Exclude: []Exclusion{{}}},
	} {
		if _, err := Expand(spec); err == nil {
			t.Errorf("%s: Expand accepted an invalid spec", name)
		}
	}
}

// smallSpec is a fast 2-platform x 1-workload matrix for execution
// tests.
func smallSpec(runs int) Spec {
	return Spec{
		Name:      "test",
		Platforms: []string{"DET", "RAND"},
		Workloads: []fabric.WorkloadSpec{{Kind: "crc32", Params: json.RawMessage(`{"Bytes":256,"Seed":1}`)}},
		Runs:      runs,
		Batch:     25,
		BaseSeed:  7,
		Analysis:  AnalysisSpec{BlockSize: 10},
	}
}

// TestMatrixMatchesPlainCampaign: a matrix cell (cold cache, through
// the runner) fingerprints identically to the same campaign run
// directly through mbpta.Campaign — the matrix layer adds provenance,
// not perturbation.
func TestMatrixMatchesPlainCampaign(t *testing.T) {
	cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	r := &Runner{Cache: cache, CellParallel: 2}
	rep, err := r.Run(context.Background(), smallSpec(100))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.CachedRuns != 0 {
		t.Fatalf("cold matrix reported %d cached runs", rep.CachedRuns)
	}
	for _, c := range rep.Cells {
		cfg, _ := fabric.NamedPlatform(c.Cell.Platform)
		w, _ := fabric.BuiltinRegistry().Build(c.Cell.Workload)
		direct, err := mbpta.Campaign(context.Background(), cfg, w,
			mbpta.WithRuns(100), mbpta.WithBatchSize(25), mbpta.WithBaseSeed(7),
			mbpta.WithAnalyzerOptions(mbpta.Options{BlockSize: 10}))
		if err != nil && direct == nil {
			t.Fatalf("direct campaign %s: %v", c.Label, err)
		}
		if got, want := c.Fingerprint, direct.Fingerprint(); got != want {
			t.Errorf("cell %s fingerprint %s != direct campaign %s", c.Label, got, want)
		}
	}
}

// TestWarmReplayAndExtension is the cache contract end to end: an
// analysis-only re-run simulates nothing and fingerprints identically,
// and a larger budget extends the cached prefix instead of restarting.
func TestWarmReplayAndExtension(t *testing.T) {
	cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	r := &Runner{Cache: cache, CellParallel: 2}

	cold, err := r.Run(context.Background(), smallSpec(100))
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.SimulatedRuns != 200 || cold.CachedRuns != 0 {
		t.Fatalf("cold run: %d simulated, %d cached; want 200, 0", cold.SimulatedRuns, cold.CachedRuns)
	}

	// Analysis-only change that leaves the whole analysis trace intact:
	// the report quantiles are queried after the fact and are not part
	// of CampaignReport.Fingerprint, so the replayed cells must
	// fingerprint identically to the cold ones.
	warm := smallSpec(100)
	warm.Analysis.Quantiles = []float64{1e-6}
	warmRep, err := r.Run(context.Background(), warm)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warmRep.SimulatedRuns != 0 {
		t.Fatalf("warm run re-simulated %d runs", warmRep.SimulatedRuns)
	}
	if warmRep.CachedRuns != 200 {
		t.Fatalf("warm run served %d cached runs, want 200", warmRep.CachedRuns)
	}
	for i := range warmRep.Cells {
		if got, want := warmRep.Cells[i].Fingerprint, cold.Cells[i].Fingerprint; got != want {
			t.Errorf("cell %s: cached fingerprint %s != fresh %s — replay is not bit-identical",
				warmRep.Cells[i].Label, got, want)
		}
	}

	// A batch-size change reshapes the analysis trace (and thus the
	// fingerprint) but must still replay every run from the cache.
	rebatched := smallSpec(100)
	rebatched.Batch = 50
	rebatchedRep, err := r.Run(context.Background(), rebatched)
	if err != nil {
		t.Fatalf("rebatched run: %v", err)
	}
	if rebatchedRep.SimulatedRuns != 0 {
		t.Fatalf("rebatched run re-simulated %d runs", rebatchedRep.SimulatedRuns)
	}

	// Budget extension: 150 runs per cell, 100 already cached.
	ext, err := r.Run(context.Background(), smallSpec(150))
	if err != nil {
		t.Fatalf("extension run: %v", err)
	}
	if ext.CachedRuns != 200 || ext.SimulatedRuns != 100 {
		t.Fatalf("extension: %d cached, %d simulated; want 200 cached, 100 simulated",
			ext.CachedRuns, ext.SimulatedRuns)
	}
	// And the extended prefix replays fully next time.
	again, err := r.Run(context.Background(), smallSpec(150))
	if err != nil {
		t.Fatalf("re-run: %v", err)
	}
	if again.SimulatedRuns != 0 {
		t.Fatalf("re-run after extension re-simulated %d runs", again.SimulatedRuns)
	}
	for i := range again.Cells {
		if got, want := again.Cells[i].Fingerprint, ext.Cells[i].Fingerprint; got != want {
			t.Errorf("cell %s: extended replay fingerprint drifted", again.Cells[i].Label)
		}
	}
}

// TestCacheRejectsForeignJournal: an on-disk entry whose identity does
// not match the cell is rebuilt, not replayed.
func TestCacheRejectsForeignJournal(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	cell := baseCell()
	cell.Runs, cell.Batch = 20, 10
	key, _ := cell.SimKey()

	// Populate the entry, then corrupt its identity by writing a
	// different cell's journal at this cell's key path.
	other := cell
	other.BaseSeed = 99
	entry, err := cache.Acquire(other)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	entry.Close()
	otherKey, _ := other.SimKey()
	if err := copyFile(filepath.Join(dir, otherKey+".wal"), filepath.Join(dir, key+".wal")); err != nil {
		t.Fatalf("copy: %v", err)
	}

	got, err := cache.Acquire(cell)
	if err != nil {
		t.Fatalf("Acquire after tamper: %v", err)
	}
	defer got.Close()
	if len(got.Prefix) != 0 {
		t.Fatalf("tampered entry served a %d-run prefix instead of rebuilding", len(got.Prefix))
	}
}

func copyFile(src, dst string) error {
	b, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, b, 0o644)
}

// TestRunnerWithFabricPool: plain cells schedule through the fabric
// executor pool and still fingerprint identically to local execution.
func TestRunnerWithFabricPool(t *testing.T) {
	pool := fabric.NewPool(fabric.Config{Executors: 2})
	defer pool.Close()
	cacheA, _ := NewCache(filepath.Join(t.TempDir(), "a"))
	cacheB, _ := NewCache(filepath.Join(t.TempDir(), "b"))

	pooled := &Runner{Pool: pool, Cache: cacheA, CellParallel: 2}
	local := &Runner{Cache: cacheB, CellParallel: 2}
	repP, err := pooled.Run(context.Background(), smallSpec(100))
	if err != nil {
		t.Fatalf("pooled run: %v", err)
	}
	repL, err := local.Run(context.Background(), smallSpec(100))
	if err != nil {
		t.Fatalf("local run: %v", err)
	}
	for i := range repP.Cells {
		if repP.Cells[i].Fingerprint != repL.Cells[i].Fingerprint {
			t.Errorf("cell %s: pool execution changed the fingerprint", repP.Cells[i].Label)
		}
	}
}

// TestReportTable smoke-tests the comparative rendering.
func TestReportTable(t *testing.T) {
	cache, _ := NewCache(filepath.Join(t.TempDir(), "cache"))
	r := &Runner{Cache: cache, CellParallel: 2}
	rep, err := r.Run(context.Background(), smallSpec(100))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	rep.Table(&buf)
	out := buf.String()
	for _, want := range []string{"RAND/crc32", "DET/crc32", "pWCET"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestLeakGrid is the comparative leak-probability grid end to end:
// under Spec.Leak each cell measures both secret variants, and the
// deterministic platform's cell must leak while the time-randomized
// one's must not. A warm re-run replays both variants from the cache
// with identical verdicts.
func TestLeakGrid(t *testing.T) {
	spec := Spec{
		Name:      "leak grid",
		Platforms: []string{"DET", "RAND"},
		Workloads: []fabric.WorkloadSpec{
			{Kind: "secretdep", Params: json.RawMessage(`{"Lines":48,"Passes":8,"Seed":5}`)},
		},
		Runs:     200,
		Batch:    50,
		BaseSeed: 5,
		Leak:     true,
		Analysis: AnalysisSpec{BlockSize: 10},
	}
	cache, err := NewCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	r := &Runner{Cache: cache, CellParallel: 2}
	run := func(label string) *Report {
		rep, err := r.Run(context.Background(), spec)
		if rep == nil {
			t.Fatalf("%s run: %v", label, err)
		}
		return rep
	}
	cold := run("cold")
	if len(cold.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d", len(cold.Cells))
	}
	for _, c := range cold.Cells {
		if c.Err != "" {
			t.Fatalf("cell %s failed: %s", c.Label, c.Err)
		}
		if c.LeakProb == nil || c.Leaks == nil {
			t.Fatalf("cell %s has no leak verdict", c.Label)
		}
		switch c.Cell.Platform {
		case "DET":
			if !*c.Leaks || *c.LeakProb < 0.999 {
				t.Errorf("DET cell: leaks=%v P(leak)=%.4f, want a certain leak", *c.Leaks, *c.LeakProb)
			}
		case "RAND":
			if *c.Leaks || *c.LeakProb > 0.5 {
				t.Errorf("RAND cell: leaks=%v P(leak)=%.4f, want no leak", *c.Leaks, *c.LeakProb)
			}
		}
	}

	warm := run("warm")
	if warm.SimulatedRuns != 0 {
		t.Errorf("warm leak grid simulated %d runs", warm.SimulatedRuns)
	}
	for i := range warm.Cells {
		if warm.Cells[i].Fingerprint != cold.Cells[i].Fingerprint {
			t.Errorf("cell %s: warm replay changed the fingerprint", warm.Cells[i].Label)
		}
		if *warm.Cells[i].LeakProb != *cold.Cells[i].LeakProb {
			t.Errorf("cell %s: warm replay changed P(leak)", warm.Cells[i].Label)
		}
	}

	var buf bytes.Buffer
	cold.Table(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("P(leak)")) || !bytes.Contains(buf.Bytes(), []byte("LEAK")) {
		t.Errorf("leak table missing leak column:\n%s", buf.String())
	}
}
