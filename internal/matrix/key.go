package matrix

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/pkg/mbpta"
)

// simKeyVersion is bumped whenever the key derivation or the meaning of
// any keyed field changes, invalidating all previously cached runs.
// v2: mitigation + hazard joined the key.
const simKeyVersion = 2

// simKey is the canonical serialization the cache key is hashed over:
// exactly the configuration that can change a raw measurement run.
// The platform name is resolved to its full build (platform.Config)
// before hashing, so a future change to what "RAND" means invalidates
// the cache instead of silently replaying runs from a different
// machine. Analysis-only parameters — stop rule, run budget, batch
// size, quantiles, alpha, block size — are deliberately absent: cells
// differing only in those share one cache entry, which is the whole
// point of the content-addressed cache.
type simKey struct {
	V            int                 `json:"v"`
	Platform     platform.Config     `json:"platform"`
	Workload     fabric.WorkloadSpec `json:"workload"`
	BaseSeed     uint64              `json:"base_seed"`
	FaultRate    float64             `json:"fault_rate"`
	Cores        int                 `json:"cores"`
	RunTimeoutMS int64               `json:"run_timeout_ms"`
	Mitigation   mbpta.Mitigation    `json:"mitigation"`
	Hazard       mbpta.Hazard        `json:"hazard"`
}

// SimKey returns the cell's content-addressed simulation key: the hex
// SHA-256 of the canonical simKey serialization. Two cells with equal
// keys produce bit-identical run series and may share cached runs; two
// cells differing in any simulation-relevant field hash differently.
func (c Cell) SimKey() (string, error) {
	cfg, err := fabric.NamedPlatform(c.Platform)
	if err != nil {
		return "", err
	}
	b, err := json.Marshal(simKey{
		V:            simKeyVersion,
		Platform:     cfg,
		Workload:     c.Workload,
		BaseSeed:     c.BaseSeed,
		FaultRate:    c.FaultRate,
		Cores:        c.Cores,
		RunTimeoutMS: c.RunTimeoutMS,
		Mitigation:   c.Mitigation,
		Hazard:       c.Hazard,
	})
	if err != nil {
		return "", fmt.Errorf("matrix: marshal sim key: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
