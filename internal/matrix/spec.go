// Package matrix runs declarative scenario matrices: the cross product
// of platform builds, workloads, fault rates, contention levels and
// stop rules, executed as one batch of campaigns and reported as a
// comparative pWCET table. Cells that share simulation-relevant
// configuration (platform, workload, seed, fault and timeout settings)
// share one set of raw measurement runs through a content-addressed run
// cache (see Cache), so re-running a matrix after an analysis-only
// tweak — a different stop rule, quantile set or block size — replays
// recorded runs instead of re-simulating them. The platform protocol
// makes every run a pure function of (workload, run index, seed), so a
// replayed cell is bit-identical to a freshly simulated one; the matrix
// runner asserts this via CampaignReport.Fingerprint.
package matrix

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/fabric"
	"repro/pkg/mbpta"
)

// Spec is a declarative scenario matrix: explicit values for each axis,
// expanded to the full cross product minus exclusions. Zero-value axes
// get the single default listed on each field, so a minimal spec only
// names platforms and workloads.
type Spec struct {
	// Name labels the matrix in reports and service listings.
	Name string `json:"name,omitempty"`
	// Platforms lists platform builds by name ("DET", "RAND").
	Platforms []string `json:"platforms"`
	// Workloads lists the programs under analysis as registry specs.
	Workloads []fabric.WorkloadSpec `json:"workloads"`
	// FaultRates lists fault-injection rates in upsets per million
	// cycles; 0 disables injection. Default: [0].
	FaultRates []float64 `json:"fault_rates,omitempty"`
	// Cores lists board sizes: 1 is a single-core platform, n > 1 a
	// co-simulated multicore with n-1 memory-streamer co-runners.
	// Default: [1].
	Cores []int `json:"cores,omitempty"`
	// Mitigations lists the fault-mitigation configurations swept per
	// scenario (see mbpta.Mitigation); the zero value is unmitigated.
	// Default: [unmitigated]. Mitigation rides the fault-injection
	// layer, so non-none mitigations are dropped for fault-rate-0 cells
	// the way fault×multicore combinations are.
	Mitigations []mbpta.Mitigation `json:"mitigations,omitempty"`
	// Hazard selects the time-varying upset-rate profile shared by
	// every fault-injected cell (see mbpta.Hazard; zero value:
	// constant). Simulation-relevant: it reshapes the per-run upset
	// schedule.
	Hazard mbpta.Hazard `json:"hazard,omitempty"`
	// StopRules lists the stopping protocols. Default: the paper's
	// fixed-size protocol ({Kind: "fixed"}).
	StopRules []StopRuleSpec `json:"stop_rules,omitempty"`
	// Leak switches every cell into timing-leak mode: the workload is
	// measured twice, with its "Secret" parameter forced to 0 and to 1,
	// and the two timing distributions are compared with the nine-decile
	// quantile gate — the comparative report then carries each cell's
	// posterior leak probability. Intended for secret-dependent
	// workloads such as "secretdep"; both variants cache independently.
	Leak bool `json:"leak,omitempty"`
	// Exclude removes cells from the cross product (see Exclusion).
	// Cells combining fault injection with multicore contention are
	// excluded automatically: the fault layer requires single-core
	// boards.
	Exclude []Exclusion `json:"exclude,omitempty"`

	// Runs is the per-cell run budget (exact under the fixed rule, cap
	// otherwise). Default: 3000, the paper's campaign size.
	Runs int `json:"runs,omitempty"`
	// Batch is the analysis batch size. Default: 250.
	Batch int `json:"batch,omitempty"`
	// BaseSeed seeds every cell's deterministic seed schedule.
	BaseSeed uint64 `json:"base_seed,omitempty"`
	// RunTimeoutMS bounds each simulated run in wall-clock milliseconds
	// (0: no per-run deadline). Changing it is simulation-relevant: a
	// timeout can abort a run that would otherwise complete.
	RunTimeoutMS int64 `json:"run_timeout_ms,omitempty"`
	// Analysis holds the analysis-only parameters shared by all cells.
	Analysis AnalysisSpec `json:"analysis,omitempty"`
}

// StopRuleSpec names a stopping protocol in serializable form.
type StopRuleSpec struct {
	// Kind selects the rule: "fixed" (run budget, the default),
	// "pwcet-delta" (pWCET(Q) stable within RelTol for Streak batches),
	// or "crps" (CRPS between consecutive fits below Threshold for
	// Streak batches).
	Kind string `json:"kind"`
	// Q is the exceedance probability pwcet-delta tracks (default 1e-12).
	Q float64 `json:"q,omitempty"`
	// RelTol is pwcet-delta's relative tolerance (default 0.01).
	RelTol float64 `json:"rel_tol,omitempty"`
	// Threshold is crps's convergence threshold (default 1e-3).
	Threshold float64 `json:"threshold,omitempty"`
	// Streak is the consecutive-batch requirement (default 2).
	Streak int `json:"streak,omitempty"`
}

// Build instantiates the rule. Rules keep state across batches, so
// every cell builds a fresh one.
func (s StopRuleSpec) Build(runs int) (mbpta.StopRule, error) {
	switch s.Kind {
	case "", "fixed":
		return mbpta.FixedRuns(runs), nil
	case "pwcet-delta":
		return mbpta.PWCETDelta(s.Q, s.RelTol, s.Streak), nil
	case "crps":
		return mbpta.CRPSConverged(s.Threshold, s.Streak), nil
	}
	return nil, fmt.Errorf("matrix: unknown stop rule kind %q (have fixed, pwcet-delta, crps)", s.Kind)
}

func (s StopRuleSpec) label() string {
	if s.Kind == "" {
		return "fixed"
	}
	return s.Kind
}

// AnalysisSpec holds the parameters that shape the analysis but not the
// measurements — by construction none of them enters the simulation
// cache key.
type AnalysisSpec struct {
	// Alpha is the i.i.d. test significance level (default 0.05).
	Alpha float64 `json:"alpha,omitempty"`
	// BlockSize is the block-maxima block length (default 50).
	BlockSize int `json:"block_size,omitempty"`
	// Quantiles lists the per-run exceedance probabilities the
	// comparative report tabulates. Default: [1e-9, 1e-12, 1e-15].
	Quantiles []float64 `json:"quantiles,omitempty"`
}

// quantiles returns the report quantiles with the default applied.
func (a AnalysisSpec) quantiles() []float64 {
	if len(a.Quantiles) == 0 {
		return []float64{1e-9, 1e-12, 1e-15}
	}
	return a.Quantiles
}

// Exclusion removes matching cells from the expansion. Every set field
// must match for a cell to be excluded; zero-valued (unset) fields
// match anything, so {Platform: "DET", StopRule: "crps"} removes all
// DET×crps cells across the other axes.
type Exclusion struct {
	Platform   string   `json:"platform,omitempty"`
	Workload   string   `json:"workload,omitempty"` // workload kind
	FaultRate  *float64 `json:"fault_rate,omitempty"`
	Cores      *int     `json:"cores,omitempty"`
	Mitigation string   `json:"mitigation,omitempty"` // mitigation kind label
	StopRule   string   `json:"stop_rule,omitempty"`  // rule kind
}

func (e Exclusion) matches(c Cell) bool {
	if e.Platform != "" && e.Platform != c.Platform {
		return false
	}
	if e.Workload != "" && e.Workload != c.Workload.Kind {
		return false
	}
	if e.FaultRate != nil && *e.FaultRate != c.FaultRate {
		return false
	}
	if e.Cores != nil && *e.Cores != c.Cores {
		return false
	}
	if e.Mitigation != "" && e.Mitigation != c.Mitigation.String() {
		return false
	}
	if e.StopRule != "" && e.StopRule != c.StopRule.label() {
		return false
	}
	return true
}

// Cell is one fully resolved scenario: a point in the matrix's cross
// product plus the spec-wide execution and analysis parameters. The
// fields split into two classes — simulation-relevant (Platform,
// Workload, FaultRate, Cores, BaseSeed, RunTimeoutMS, Mitigation,
// Hazard), which enter the run-cache key, and analysis-only (StopRule,
// Runs, Batch, Analysis), which do not, so cells differing only in
// analysis parameters share one set of raw runs.
// TestCacheKeySensitivity enforces that every field is classified.
type Cell struct {
	Platform     string              `json:"platform"`
	Workload     fabric.WorkloadSpec `json:"workload"`
	FaultRate    float64             `json:"fault_rate"`
	Cores        int                 `json:"cores"`
	BaseSeed     uint64              `json:"base_seed"`
	RunTimeoutMS int64               `json:"run_timeout_ms,omitempty"`
	// Mitigation and Hazard configure the fault layer of this cell.
	// Simulation-relevant: a mitigation changes measured cycle counts
	// (overheads, recovered runs) and a hazard reshapes the per-run
	// upset schedule, so both enter the run-cache key.
	Mitigation mbpta.Mitigation `json:"mitigation,omitempty"`
	Hazard     mbpta.Hazard     `json:"hazard,omitempty"`

	StopRule StopRuleSpec `json:"stop_rule"`
	Runs     int          `json:"runs"`
	Batch    int          `json:"batch"`
	Analysis AnalysisSpec `json:"analysis"`
	// Leak marks a timing-leak cell (see Spec.Leak). Analysis-only for
	// caching purposes: the two secret variants derive their own
	// simulation keys through their rewritten workload params.
	Leak bool `json:"leak,omitempty"`
}

// withSecret returns the cell with the workload's "Secret" parameter
// forced to the given value — the two campaigns of a leak cell. Params
// are merged over whatever the spec set, canonically re-marshaled (Go
// sorts map keys), so equal variants share cache entries.
func (c Cell) withSecret(secret int) (Cell, error) {
	params := map[string]any{}
	if len(c.Workload.Params) > 0 {
		if err := json.Unmarshal(c.Workload.Params, &params); err != nil {
			return c, fmt.Errorf("matrix: leak cell %s params: %w", c.Label(), err)
		}
	}
	params["Secret"] = secret
	b, err := json.Marshal(params)
	if err != nil {
		return c, fmt.Errorf("matrix: leak cell %s params: %w", c.Label(), err)
	}
	c.Workload.Params = b
	return c, nil
}

// Label is the cell's compact axis identifier, e.g.
// "RAND/crc32/f0.25/c1/fixed". Mitigated cells append the mitigation
// kind (and the hazard kind when non-constant), e.g.
// "RAND/crc32/f0.25/c1/fixed/ecc@weibull"; unmitigated constant-hazard
// cells keep the historical label.
func (c Cell) Label() string {
	return fmt.Sprintf("%s/%s/f%g/c%d/%s%s", c.Platform, c.Workload.Kind, c.FaultRate, c.Cores, c.StopRule.label(), c.faultSuffix())
}

// faultSuffix is the mitigation/hazard tail of Label and groupKey,
// empty for unmitigated constant-hazard cells so historical labels are
// preserved.
func (c Cell) faultSuffix() string {
	hz := ""
	if c.Hazard.Kind != "" && c.Hazard.Kind != mbpta.HazardConstant {
		hz = "@" + string(c.Hazard.Kind)
	}
	if !c.Mitigation.Enabled() && hz == "" {
		return ""
	}
	return "/" + c.Mitigation.String() + hz
}

// groupKey identifies the cell's scenario ignoring the platform axis —
// the comparative report pairs platforms within a group.
func (c Cell) groupKey() string {
	return fmt.Sprintf("%s/f%g/c%d/%s%s", c.Workload.Kind, c.FaultRate, c.Cores, c.StopRule.label(), c.faultSuffix())
}

// Expand resolves the spec to its cell list: the cross product over
// axes in (platform, workload, fault rate, cores, mitigation, stop
// rule) order, minus exclusions. Fault×multicore combinations are
// dropped automatically (the fault-injection layer requires
// single-core boards), and so are mitigation×fault-rate-0 combinations
// (mitigation rides the fault layer). Expansion is deterministic: the
// same spec always yields the same cells in the same order.
func Expand(s Spec) ([]Cell, error) {
	if len(s.Platforms) == 0 {
		return nil, errors.New("matrix: spec lists no platforms")
	}
	if len(s.Workloads) == 0 {
		return nil, errors.New("matrix: spec lists no workloads")
	}
	for _, p := range s.Platforms {
		if _, err := fabric.NamedPlatform(p); err != nil {
			return nil, err
		}
	}
	for _, w := range s.Workloads {
		if w.Kind == "" {
			return nil, errors.New("matrix: workload spec with empty kind")
		}
	}
	faultRates := s.FaultRates
	if len(faultRates) == 0 {
		faultRates = []float64{0}
	}
	cores := s.Cores
	if len(cores) == 0 {
		cores = []int{1}
	}
	for _, n := range cores {
		if n < 1 {
			return nil, fmt.Errorf("matrix: cores axis value %d < 1", n)
		}
	}
	mitigations := s.Mitigations
	if len(mitigations) == 0 {
		mitigations = []mbpta.Mitigation{{}}
	}
	for _, m := range mitigations {
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("matrix: mitigation axis: %w", err)
		}
	}
	if err := s.Hazard.Validate(); err != nil {
		return nil, fmt.Errorf("matrix: hazard: %w", err)
	}
	rules := s.StopRules
	if len(rules) == 0 {
		rules = []StopRuleSpec{{Kind: "fixed"}}
	}
	runs := s.Runs
	if runs <= 0 {
		runs = 3000
	}
	batch := s.Batch
	if batch <= 0 {
		batch = 250
	}

	var cells []Cell
	for _, p := range s.Platforms {
		for _, w := range s.Workloads {
			for _, fr := range faultRates {
				if fr < 0 {
					return nil, fmt.Errorf("matrix: negative fault rate %g", fr)
				}
				for _, n := range cores {
					if fr > 0 && n > 1 {
						continue // fault injection requires single-core boards
					}
					for _, mi := range mitigations {
						if fr == 0 && mi.Enabled() {
							continue // mitigation rides the fault layer
						}
						hz := mbpta.Hazard{}
						if fr > 0 {
							hz = s.Hazard
						}
						for _, r := range rules {
							if _, err := r.Build(runs); err != nil {
								return nil, err
							}
							c := Cell{
								Platform:     p,
								Workload:     w,
								FaultRate:    fr,
								Cores:        n,
								BaseSeed:     s.BaseSeed,
								RunTimeoutMS: s.RunTimeoutMS,
								Mitigation:   mi,
								Hazard:       hz,
								StopRule:     r,
								Runs:         runs,
								Batch:        batch,
								Analysis:     s.Analysis,
								Leak:         s.Leak,
							}
							excluded := false
							for _, e := range s.Exclude {
								if e.matches(c) {
									excluded = true
									break
								}
							}
							if !excluded {
								cells = append(cells, c)
							}
						}
					}
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, errors.New("matrix: spec expands to zero cells")
	}
	return cells, nil
}
