package matrix

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/fabric"
	"repro/internal/platform"
	"repro/internal/telemetry"
	"repro/internal/wal"
)

// Cache is the content-addressed run store: one WAL journal per
// simulation key (see Cell.SimKey), holding raw measurement runs in run
// order. A cell acquires its key's entry before executing; the entry
// serves the recovered run prefix through the campaign engine's
// ExecPolicy.Cached hook and appends every freshly simulated run
// beyond the prefix, so a partial cache extends a campaign instead of
// restarting it, and a complete cache replays it without touching a
// simulator board.
//
// Durability reuses the campaign WAL codec: longest-valid-prefix
// recovery, checkpoint-bounded truncation after corruption, and
// per-run seed validation all apply to cache journals exactly as they
// do to campaign journals. A cache entry that fails validation is
// discarded and rebuilt, never trusted.
type Cache struct {
	dir  string
	tele *telemetry.Registry

	mu    sync.Mutex
	locks map[string]*sync.Mutex
}

// NewCache opens (creating if needed) the cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("matrix: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("matrix: create cache dir: %w", err)
	}
	return &Cache{dir: dir, locks: make(map[string]*sync.Mutex)}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// SetTelemetry routes the underlying WAL writers' instrumentation to
// reg (nil disables it).
func (c *Cache) SetTelemetry(reg *telemetry.Registry) { c.tele = reg }

// keyLock returns the mutex serializing access to one key's journal.
func (c *Cache) keyLock(key string) *sync.Mutex {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.locks[key]
	if !ok {
		l = &sync.Mutex{}
		c.locks[key] = l
	}
	return l
}

// Acquire opens the cell's cache entry, holding the key's lock until
// Close: cells that share a key execute serially, so the second one
// sees every run the first simulated. A journal whose identity or seed
// schedule does not match the cell — a hash collision, a renamed
// platform, or manual tampering — is removed and recreated empty
// rather than replayed.
func (c *Cache) Acquire(cell Cell) (*Entry, error) {
	key, err := cell.SimKey()
	if err != nil {
		return nil, err
	}
	cfg, err := fabric.NamedPlatform(cell.Platform)
	if err != nil {
		return nil, err
	}
	// The identity record is belt-and-suspenders on top of the key (the
	// filename already content-addresses the full configuration): it
	// catches a tampered or mis-filed journal before any run replays.
	// The resolved build name keeps aliases ("" vs "RAND") from looking
	// like different campaigns; workload parameters are covered by the
	// key itself, so the kind suffices here.
	meta := wal.Meta{Platform: cfg.Name, Workload: cell.Workload.Kind, BaseSeed: cell.BaseSeed}

	lock := c.keyLock(key)
	lock.Lock()
	entry, err := c.open(key, meta)
	if err != nil {
		lock.Unlock()
		return nil, err
	}
	entry.release = lock.Unlock
	return entry, nil
}

// open opens or creates the key's journal and validates its prefix.
func (c *Cache) open(key string, meta wal.Meta) (*Entry, error) {
	path := filepath.Join(c.dir, key+".wal")
	if _, err := os.Stat(path); err == nil {
		entry, err := c.reopen(path, key, meta)
		if err == nil {
			return entry, nil
		}
		// The journal exists but cannot serve this cell (identity
		// mismatch or an inconsistent seed schedule). Rebuilding from
		// scratch is always safe — the cache is a pure accelerator.
		if rmErr := os.Remove(path); rmErr != nil {
			return nil, fmt.Errorf("matrix: invalid cache entry %s (%v) and removal failed: %w", key, err, rmErr)
		}
	}
	w, err := wal.Create(path, meta, c.tele)
	if err != nil {
		return nil, err
	}
	return &Entry{Key: key, journal: &cacheJournal{w: w}}, nil
}

// reopen recovers an existing journal for appending.
func (c *Cache) reopen(path, key string, meta wal.Meta) (*Entry, error) {
	w, rec, err := wal.OpenAppend(path, c.tele)
	if err != nil {
		return nil, err
	}
	// Validate identity manually instead of Meta.Validate: MaxRuns and
	// BatchSize are analysis-side parameters a cache entry must ignore —
	// extension semantics mean the same raw runs serve any budget.
	if rec.Meta.Platform != meta.Platform || rec.Meta.Workload != meta.Workload || rec.Meta.BaseSeed != meta.BaseSeed {
		w.Close()
		return nil, fmt.Errorf("matrix: cache entry %s journaled for %s/%s seed %d, cell wants %s/%s seed %d",
			key, rec.Meta.Platform, rec.Meta.Workload, rec.Meta.BaseSeed, meta.Platform, meta.Workload, meta.BaseSeed)
	}
	prefix := make([]platform.RunResult, len(rec.Runs))
	for i, r := range rec.Runs {
		if want := platform.DeriveRunSeed(meta.BaseSeed, i); r.Seed != want {
			w.Close()
			return nil, fmt.Errorf("matrix: cache entry %s run %d has seed %#x, base seed %d derives %#x",
				key, i, r.Seed, meta.BaseSeed, want)
		}
		prefix[i] = platform.RunResult{
			Cycles:       r.Cycles,
			Instructions: r.Instructions,
			Path:         r.Path,
			Outcome:      r.Outcome,
			Faults:       r.Faults,
		}
	}
	return &Entry{Key: key, Prefix: prefix, journal: &cacheJournal{w: w, skip: len(prefix)}}, nil
}

// Entry is one acquired cache key: the recovered run prefix plus an
// append journal for runs beyond it. Exactly one cell holds an entry's
// key at a time (Acquire serializes on the key lock); Close releases
// it.
type Entry struct {
	// Key is the cell's simulation key.
	Key string
	// Prefix is the cached run prefix, in run order with no gaps.
	Prefix []platform.RunResult

	hits    atomic.Int64
	journal *cacheJournal
	release func()
}

// Lookup implements the campaign engine's run-cache hook
// (ExecPolicy.Cached): runs inside the recovered prefix replay from
// the cache; runs beyond it miss and simulate normally.
func (e *Entry) Lookup(run int) (platform.RunResult, bool) {
	if run < len(e.Prefix) {
		e.hits.Add(1)
		return e.Prefix[run], true
	}
	return platform.RunResult{}, false
}

// Hits returns how many runs were served from the cache so far.
func (e *Entry) Hits() int { return int(e.hits.Load()) }

// Journal returns the platform.Journal that persists freshly simulated
// runs into the cache (skipping the already-cached prefix).
func (e *Entry) Journal() platform.Journal { return e.journal }

// Appended reports how many new runs this entry journaled.
func (e *Entry) Appended() int { return e.journal.appended }

// Close syncs the journal and releases the key lock.
func (e *Entry) Close() error {
	err := e.journal.close()
	if e.release != nil {
		e.release()
		e.release = nil
	}
	return err
}

// cacheJournal adapts a WAL writer into a skip-aware platform.Journal:
// the campaign engine logs every run it delivers (cached and fresh
// alike, in run order), and the journal appends only the runs beyond
// the cached prefix. Barriers past the skip frontier write an empty
// checkpoint and fsync — checkpoints bound how much a torn tail can
// truncate on recovery, exactly as in campaign journals.
type cacheJournal struct {
	w        *wal.Writer
	skip     int // length of the already-journaled prefix
	appended int
}

func (j *cacheJournal) LogRun(run int, seed uint64, r platform.RunResult) error {
	if run < j.skip {
		return nil // already journaled by an earlier cell
	}
	if err := j.w.AppendRun(wal.RunRecord{
		Run:          run,
		Seed:         seed,
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		Faults:       r.Faults,
		Path:         r.Path,
		Outcome:      r.Outcome,
	}); err != nil {
		return err
	}
	j.appended++
	return nil
}

func (j *cacheJournal) Barrier(b platform.Batch) error {
	delivered := b.Start + len(b.Results)
	if delivered > j.skip {
		// Cache checkpoints carry no analyzer state: the cache stores
		// raw runs only — every cell re-derives its own analysis.
		if err := j.w.AppendCheckpoint(wal.Checkpoint{Batch: b.Index, Runs: delivered}); err != nil {
			return err
		}
	}
	return j.w.Sync()
}

func (j *cacheJournal) Flush() error { return j.w.Sync() }

func (j *cacheJournal) close() error { return j.w.Close() }
