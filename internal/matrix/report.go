package matrix

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/report"
	"repro/pkg/mbpta"
)

// CellResult is one executed cell's summary: identity, provenance
// (cached vs freshly simulated run counts), the fingerprint that pins
// bit-identity across cache replay, and the pWCET estimates at the
// spec's report quantiles.
type CellResult struct {
	Cell  Cell   `json:"cell"`
	Label string `json:"label"`

	// Fingerprint is the canonical SHA-256 of the cell's campaign
	// report. A cached replay of a cell yields exactly the fingerprint a
	// fresh simulation would — the cache's correctness invariant.
	Fingerprint string `json:"fingerprint,omitempty"`
	Converged   bool   `json:"converged"`
	StopRuns    int    `json:"stop_runs"`
	Quarantined int    `json:"quarantined,omitempty"`

	// CachedRuns counts runs replayed from the content-addressed cache;
	// SimulatedRuns counts runs that actually touched a simulator board.
	CachedRuns    int `json:"cached_runs"`
	SimulatedRuns int `json:"simulated_runs"`

	// PWCET holds the estimates aligned with Quantiles; NaN marks a
	// quantile the analysis could not answer (serialized as null).
	Quantiles []float64  `json:"quantiles,omitempty"`
	PWCET     []*float64 `json:"pwcet,omitempty"`
	// HWM is the high-water mark over clean runs — the fallback
	// comparison basis when a cell has no tail fit (DET builds routinely
	// fail the i.i.d. gate by design).
	HWM float64 `json:"hwm,omitempty"`
	// Delta is pWCET(first report quantile) relative to the same
	// scenario on the baseline platform (the spec's first), as a ratio;
	// 0 for baseline cells and cells with no comparable baseline. When
	// either side lacks a tail fit the ratio falls back to HWMs.
	Delta float64 `json:"delta,omitempty"`

	// LeakProb and Leaks report the quantile gate's comparison of the
	// cell's two secret variants (posterior leak probability and the
	// family-wise verdict); present only under Spec.Leak.
	LeakProb *float64 `json:"leak_prob,omitempty"`
	Leaks    *bool    `json:"leaks,omitempty"`

	// Advisory notes a non-fatal analysis condition (i.i.d. gate
	// rejection, non-convergence); Err marks a failed cell.
	Advisory string        `json:"advisory,omitempty"`
	Err      string        `json:"err,omitempty"`
	Elapsed  time.Duration `json:"elapsed"`
}

// summarize fills the result from a finished campaign report.
func (res *CellResult) summarize(rep *mbpta.CampaignReport) {
	if rep == nil {
		return
	}
	res.Fingerprint = rep.Fingerprint()
	res.Converged = rep.Converged
	res.StopRuns = rep.StopRuns
	res.Quarantined = rep.Campaign.Quarantined()
	for _, r := range rep.Campaign.Results {
		if !r.Quarantined() && float64(r.Cycles) > res.HWM {
			res.HWM = float64(r.Cycles)
		}
	}
	res.Quantiles = res.Cell.Analysis.quantiles()
	res.PWCET = make([]*float64, len(res.Quantiles))
	if rep.Analysis != nil {
		for i, q := range res.Quantiles {
			if x, err := rep.Analysis.PWCET(q); err == nil && !math.IsNaN(x) && !math.IsInf(x, 0) {
				v := x
				res.PWCET[i] = &v
			}
		}
	}
}

// pwcetAt returns the cell's estimate at quantile index i, or NaN.
func (res *CellResult) pwcetAt(i int) float64 {
	if i < len(res.PWCET) && res.PWCET[i] != nil {
		return *res.PWCET[i]
	}
	return math.NaN()
}

// Report is a finished matrix: every cell's summary plus matrix-wide
// provenance totals.
type Report struct {
	Spec  Spec         `json:"spec"`
	Cells []CellResult `json:"cells"`
	// CachedRuns/SimulatedRuns total the per-cell provenance counts —
	// the dedup headline: a warm re-run reports SimulatedRuns == 0.
	CachedRuns    int           `json:"cached_runs"`
	SimulatedRuns int           `json:"simulated_runs"`
	Elapsed       time.Duration `json:"elapsed"`
}

// buildDeltas computes each cell's pWCET ratio against the same
// scenario on the baseline platform (the spec's first platform).
func (rep *Report) buildDeltas() {
	if len(rep.Spec.Platforms) == 0 {
		return
	}
	base := rep.Spec.Platforms[0]
	baseline := make(map[string]*CellResult)
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Cell.Platform == base && c.Err == "" {
			baseline[c.Cell.groupKey()] = c
		}
	}
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Cell.Platform == base || c.Err != "" {
			continue
		}
		b, ok := baseline[c.Cell.groupKey()]
		if !ok {
			continue
		}
		num, den := c.pwcetAt(0), b.pwcetAt(0)
		if math.IsNaN(num) || math.IsNaN(den) {
			// Fall back to observed high-water marks when either side
			// has no tail fit (e.g. DET failing the i.i.d. gate).
			num, den = c.HWM, b.HWM
		}
		if den > 0 && !math.IsNaN(num) {
			c.Delta = num / den
		}
	}
}

// Table renders the comparative report: one row per cell, pWCET columns
// per report quantile, and the delta against the baseline platform.
func (rep *Report) Table(w io.Writer) {
	quantiles := rep.Spec.Analysis.quantiles()
	header := []string{"cell", "runs", "cached", "sim", "conv"}
	for _, q := range quantiles {
		header = append(header, fmt.Sprintf("pWCET(%.0e)", q))
	}
	if rep.Spec.Leak {
		header = append(header, "P(leak)")
	}
	header = append(header, "vs "+baseName(rep.Spec), "note")
	rows := make([][]string, 0, len(rep.Cells))
	for i := range rep.Cells {
		c := &rep.Cells[i]
		if c.Err != "" {
			rows = append(rows, []string{c.Label, "-", "-", "-", "-", "ERROR: " + c.Err})
			continue
		}
		row := []string{
			c.Label,
			fmt.Sprintf("%d", c.StopRuns),
			fmt.Sprintf("%d", c.CachedRuns),
			fmt.Sprintf("%d", c.SimulatedRuns),
			fmt.Sprintf("%v", c.Converged),
		}
		for qi := range quantiles {
			if x := c.pwcetAt(qi); !math.IsNaN(x) {
				row = append(row, fmt.Sprintf("%.0f", x))
			} else {
				row = append(row, "-")
			}
		}
		if rep.Spec.Leak {
			switch {
			case c.LeakProb != nil && c.Leaks != nil && *c.Leaks:
				row = append(row, fmt.Sprintf("%.3f LEAK", *c.LeakProb))
			case c.LeakProb != nil:
				row = append(row, fmt.Sprintf("%.3f", *c.LeakProb))
			default:
				row = append(row, "-")
			}
		}
		switch {
		case c.Delta > 0:
			row = append(row, fmt.Sprintf("%.3fx", c.Delta))
		default:
			row = append(row, "-")
		}
		note := c.Advisory
		if note == "" && c.HWM > 0 {
			note = fmt.Sprintf("HWM %.0f", c.HWM)
		}
		row = append(row, note)
		rows = append(rows, row)
	}
	title := rep.Spec.Name
	if title == "" {
		title = "scenario matrix"
	}
	title = fmt.Sprintf("%s — %d cells, %d cached + %d simulated runs, %s",
		title, len(rep.Cells), rep.CachedRuns, rep.SimulatedRuns, rep.Elapsed.Round(time.Millisecond))
	report.Grid(w, title, header, rows)
}

func baseName(s Spec) string {
	if len(s.Platforms) == 0 {
		return "baseline"
	}
	if s.Platforms[0] == "" {
		return "RAND"
	}
	return s.Platforms[0]
}
