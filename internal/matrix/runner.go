package matrix

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/fabric"
	"repro/internal/stats"
	"repro/pkg/mbpta"
)

// CellState is one phase of a cell's lifecycle, streamed to
// Runner.Progress.
type CellState string

const (
	CellStart CellState = "start"
	CellDone  CellState = "done"
	CellError CellState = "error"
)

// CellProgress is one streamed progress notification.
type CellProgress struct {
	// Index and Total locate the cell in the expansion order.
	Index, Total int
	Cell         Cell
	State        CellState
	// CachedRuns/SimulatedRuns are set with CellDone.
	CachedRuns    int
	SimulatedRuns int
	Elapsed       time.Duration
	// Err is set with CellError.
	Err error
}

// Runner executes a scenario matrix: cells expand deterministically,
// execute concurrently (each cell is one campaign; plain single-core
// cells additionally fan their runs out through the fabric pool), and
// deduplicate simulation through the content-addressed run cache.
type Runner struct {
	// Pool, when non-nil, executes plain cells' runs on the fabric's
	// executor pool. Cells with fault injection or co-runners always
	// execute locally (the fault layer and co-simulated boards are not
	// pool-schedulable).
	Pool *fabric.Pool
	// Cache, when non-nil, deduplicates simulation across cells and
	// across matrix invocations.
	Cache *Cache
	// Registry resolves workload specs (default: fabric.BuiltinRegistry).
	Registry *fabric.Registry
	// CellParallel bounds how many cells run concurrently (default 2).
	// Cells sharing a simulation key serialize on the cache's key lock
	// regardless, so the second one replays what the first simulated.
	CellParallel int
	// Parallel is the per-cell worker parallelism for locally executed
	// cells (default: the engine's default).
	Parallel int
	// Progress, when non-nil, receives streamed per-cell notifications.
	// It is called from multiple goroutines; the callback must be
	// thread-safe.
	Progress func(CellProgress)
}

// Run executes the matrix and returns its comparative report. Cell
// failures do not abort the matrix: failed cells carry their error in
// the report and the first one is returned as a joined error alongside
// the (complete) report. Advisory analysis outcomes — the i.i.d. gate
// rejecting, the stop rule not converging within budget — are not
// failures; the cell keeps its report and notes the condition.
func (r *Runner) Run(ctx context.Context, spec Spec) (*Report, error) {
	cells, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	reg := r.Registry
	if reg == nil {
		reg = fabric.BuiltinRegistry()
	}
	par := r.CellParallel
	if par <= 0 {
		par = 2
	}
	if par > len(cells) {
		par = len(cells)
	}

	started := time.Now()
	results := make([]CellResult, len(cells))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range cells {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r.notify(CellProgress{Index: i, Total: len(cells), Cell: cells[i], State: CellStart})
			res := r.runCell(ctx, reg, cells[i])
			results[i] = res
			p := CellProgress{
				Index: i, Total: len(cells), Cell: cells[i], State: CellDone,
				CachedRuns: res.CachedRuns, SimulatedRuns: res.SimulatedRuns,
				Elapsed: res.Elapsed,
			}
			if res.Err != "" {
				p.State, p.Err = CellError, errors.New(res.Err)
			}
			r.notify(p)
		}(i)
	}
	wg.Wait()

	rep := &Report{Spec: spec, Cells: results, Elapsed: time.Since(started)}
	for _, res := range results {
		rep.CachedRuns += res.CachedRuns
		rep.SimulatedRuns += res.SimulatedRuns
	}
	rep.buildDeltas()
	var firstErr error
	for _, res := range results {
		if res.Err != "" {
			firstErr = fmt.Errorf("matrix: cell %s: %s", res.Label, res.Err)
			break
		}
	}
	return rep, firstErr
}

func (r *Runner) notify(p CellProgress) {
	if r.Progress != nil {
		r.Progress(p)
	}
}

// runCell executes one cell end to end: acquire the cache entry,
// assemble the campaign options, run, and summarize.
func (r *Runner) runCell(ctx context.Context, reg *fabric.Registry, cell Cell) CellResult {
	started := time.Now()
	res := CellResult{Cell: cell, Label: cell.Label()}
	fail := func(err error) CellResult {
		res.Err = err.Error()
		res.Elapsed = time.Since(started)
		return res
	}

	// A leak cell's primary campaign measures the secret-0 variant; the
	// secret-1 variant runs afterwards (leakGate) and each derives its
	// own cache key from the rewritten workload params.
	simCell := cell
	if cell.Leak {
		sc, serr := cell.withSecret(0)
		if serr != nil {
			return fail(serr)
		}
		simCell = sc
	}
	cfg, err := fabric.NamedPlatform(cell.Platform)
	if err != nil {
		return fail(err)
	}
	w, err := reg.Build(simCell.Workload)
	if err != nil {
		return fail(err)
	}
	rule, err := cell.StopRule.Build(cell.Runs)
	if err != nil {
		return fail(err)
	}

	opts := []mbpta.CampaignOption{
		mbpta.WithRuns(cell.Runs),
		mbpta.WithBatchSize(cell.Batch),
		mbpta.WithBaseSeed(cell.BaseSeed),
		mbpta.WithStopRule(rule),
		mbpta.WithAnalyzerOptions(mbpta.Options{Alpha: cell.Analysis.Alpha, BlockSize: cell.Analysis.BlockSize}),
	}
	if cell.RunTimeoutMS > 0 {
		opts = append(opts, mbpta.WithRunTimeout(time.Duration(cell.RunTimeoutMS)*time.Millisecond))
	}
	var entry *Entry
	if r.Cache != nil {
		entry, err = r.Cache.Acquire(simCell)
		if err != nil {
			return fail(err)
		}
		defer entry.Close()
		opts = append(opts, mbpta.WithRunCache(entry.Lookup), mbpta.WithJournalSink(entry.Journal()))
	}
	plain := cell.FaultRate == 0 && cell.Cores == 1
	switch {
	case cell.FaultRate > 0:
		opts = append(opts, mbpta.WithFaultInjection(mbpta.FaultConfig{
			Rate:       cell.FaultRate,
			Mitigation: cell.Mitigation,
			Hazard:     cell.Hazard,
		}))
	case cell.Cores > 1:
		co := make([]mbpta.Workload, cell.Cores-1)
		for i := range co {
			co[i] = experiments.StreamerWorkload{Lines: 1024}
		}
		opts = append(opts, mbpta.WithCoRunners(co...))
	}
	if plain && r.Pool != nil {
		opts = append(opts, mbpta.WithExecutorPool(r.Pool))
	} else if r.Parallel > 0 {
		opts = append(opts, mbpta.WithParallelism(r.Parallel))
	}

	rep, err := mbpta.Campaign(ctx, cfg, w, opts...)
	if err != nil {
		// A returned report means the measurement campaign completed;
		// the error is then an analysis verdict (i.i.d. gate rejection,
		// an unfittable tail — routine on DET builds — or
		// non-convergence) and the cell keeps its measured result with
		// the verdict as an advisory note. Cancellation and degradation
		// interrupt measurement itself and stay fatal.
		if rep == nil || errors.Is(err, mbpta.ErrCanceled) || errors.Is(err, mbpta.ErrDegraded) {
			return fail(err)
		}
		res.Advisory = err.Error()
	}
	res.Elapsed = time.Since(started)
	if entry != nil {
		res.CachedRuns = entry.Hits()
	}
	res.summarize(rep)
	res.SimulatedRuns = res.StopRuns - res.CachedRuns
	if res.SimulatedRuns < 0 {
		res.SimulatedRuns = 0
	}
	if cell.Leak && rep != nil {
		if lerr := r.leakGate(ctx, reg, cfg, cell, rep, &res); lerr != nil {
			return fail(lerr)
		}
	}
	return res
}

// leakGate runs a leak cell's second campaign — the secret-1 variant,
// measure-only, same seed schedule — and gates the two timing
// distributions against each other with the nine-decile quantile gate.
func (r *Runner) leakGate(ctx context.Context, reg *fabric.Registry, cfg mbpta.PlatformConfig, cell Cell, primary *mbpta.CampaignReport, res *CellResult) error {
	variant, err := cell.withSecret(1)
	if err != nil {
		return err
	}
	w, err := reg.Build(variant.Workload)
	if err != nil {
		return err
	}
	opts := []mbpta.CampaignOption{
		mbpta.WithRuns(cell.Runs),
		mbpta.WithBatchSize(cell.Batch),
		mbpta.WithBaseSeed(cell.BaseSeed),
		mbpta.MeasureOnly(),
	}
	if cell.RunTimeoutMS > 0 {
		opts = append(opts, mbpta.WithRunTimeout(time.Duration(cell.RunTimeoutMS)*time.Millisecond))
	}
	var entry *Entry
	if r.Cache != nil {
		if entry, err = r.Cache.Acquire(variant); err != nil {
			return err
		}
		defer entry.Close()
		opts = append(opts, mbpta.WithRunCache(entry.Lookup), mbpta.WithJournalSink(entry.Journal()))
	}
	// Mirror the primary campaign's execution shape so the two variants
	// differ in nothing but the secret.
	plain := cell.FaultRate == 0 && cell.Cores == 1
	switch {
	case cell.FaultRate > 0:
		opts = append(opts, mbpta.WithFaultInjection(mbpta.FaultConfig{
			Rate:       cell.FaultRate,
			Mitigation: cell.Mitigation,
			Hazard:     cell.Hazard,
		}))
	case cell.Cores > 1:
		co := make([]mbpta.Workload, cell.Cores-1)
		for i := range co {
			co[i] = experiments.StreamerWorkload{Lines: 1024}
		}
		opts = append(opts, mbpta.WithCoRunners(co...))
	}
	if plain && r.Pool != nil {
		opts = append(opts, mbpta.WithExecutorPool(r.Pool))
	} else if r.Parallel > 0 {
		opts = append(opts, mbpta.WithParallelism(r.Parallel))
	}
	rep, err := mbpta.Campaign(ctx, cfg, w, opts...)
	if err != nil {
		return err
	}
	gate, err := stats.CompareQuantiles(primary.Campaign.Times(), rep.Campaign.Times(), stats.QuantileGateOptions{})
	if err != nil {
		return err
	}
	prob, leaks := gate.LeakProbability, !gate.Pass
	res.LeakProb, res.Leaks = &prob, &leaks
	if entry != nil {
		hits := entry.Hits()
		res.CachedRuns += hits
		if sim := len(rep.Campaign.Results) - hits; sim > 0 {
			res.SimulatedRuns += sim
		}
	} else {
		res.SimulatedRuns += len(rep.Campaign.Results)
	}
	return nil
}
