package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func iidSample(seed uint64, n int) []float64 {
	src := rng.NewXoroshiro128(seed)
	xs := make([]float64, n)
	for i := range xs {
		// Sum of three uniforms: smooth, light-tailed, continuous.
		xs[i] = rng.Float64(src) + rng.Float64(src) + rng.Float64(src)
	}
	return xs
}

func ar1Sample(seed uint64, n int, phi float64) []float64 {
	src := rng.NewXoroshiro128(seed)
	xs := make([]float64, n)
	prev := 0.0
	for i := range xs {
		prev = phi*prev + (rng.Float64(src) - 0.5)
		xs[i] = prev
	}
	return xs
}

func TestLjungBoxAcceptsIID(t *testing.T) {
	rejections := 0
	const trials = 40
	for s := uint64(0); s < trials; s++ {
		res, err := LjungBox(iidSample(s+1, 1000), 20, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejections++
		}
	}
	// At alpha=0.05 expect ~2 rejections in 40; allow up to 6.
	if rejections > 6 {
		t.Errorf("Ljung-Box rejected %d/%d i.i.d. samples", rejections, trials)
	}
}

func TestLjungBoxRejectsAR1(t *testing.T) {
	for s := uint64(1); s <= 10; s++ {
		res, err := LjungBox(ar1Sample(s, 1000, 0.6), 20, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rejected {
			t.Errorf("seed %d: Ljung-Box failed to reject AR(1) phi=0.6 (p=%.4f)", s, res.PValue)
		}
	}
}

func TestLjungBoxStatisticNonNegative(t *testing.T) {
	res, err := LjungBox(iidSample(3, 200), 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic < 0 {
		t.Errorf("Q = %v < 0", res.Statistic)
	}
	if res.DF != 10 {
		t.Errorf("DF = %d, want 10", res.DF)
	}
}

func TestLjungBoxErrors(t *testing.T) {
	if _, err := LjungBox([]float64{1, 2, 3}, 5, 0.05); err != ErrTooFew {
		t.Errorf("short sample err = %v", err)
	}
	if _, err := LjungBox(iidSample(1, 100), 0, 0.05); err != ErrDomain {
		t.Errorf("maxLag=0 err = %v", err)
	}
}

func TestDefaultLjungBoxLags(t *testing.T) {
	cases := []struct{ n, want int }{{3, 1}, {8, 2}, {40, 10}, {100, 20}, {3000, 20}}
	for _, c := range cases {
		if got := DefaultLjungBoxLags(c.n); got != c.want {
			t.Errorf("lags(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestKS2SameDistribution(t *testing.T) {
	rejections := 0
	const trials = 40
	for s := uint64(0); s < trials; s++ {
		a := iidSample(2*s+1, 800)
		b := iidSample(2*s+2, 800)
		res, err := KolmogorovSmirnov2(a, b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejections++
		}
	}
	if rejections > 6 {
		t.Errorf("KS rejected %d/%d same-distribution pairs", rejections, trials)
	}
}

func TestKS2DifferentDistributions(t *testing.T) {
	for s := uint64(1); s <= 10; s++ {
		a := iidSample(s, 800)
		b := iidSample(s+100, 800)
		for i := range b {
			b[i] += 0.3 // location shift ~ 0.7 sigma
		}
		res, err := KolmogorovSmirnov2(a, b, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Rejected {
			t.Errorf("seed %d: KS failed to reject shifted sample (p=%.4f)", s, res.PValue)
		}
	}
}

func TestKS2StatisticExact(t *testing.T) {
	// Hand-computable case: a={1,2,3}, b={4,5,6}: D = 1.
	res, err := KolmogorovSmirnov2([]float64{1, 2, 3}, []float64{4, 5, 6}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "D disjoint", res.Statistic, 1, 1e-15)
	// Identical samples: D = 0, p = 1.
	res, _ = KolmogorovSmirnov2([]float64{1, 2, 3}, []float64{1, 2, 3}, 0.05)
	approx(t, "D identical", res.Statistic, 0, 1e-15)
	approx(t, "p identical", res.PValue, 1, 1e-12)
}

func TestKS2WithTies(t *testing.T) {
	// Heavily tied integer samples must not panic or exceed D=1.
	a := []float64{1, 1, 1, 2, 2, 3}
	b := []float64{1, 2, 2, 2, 3, 3}
	res, err := KolmogorovSmirnov2(a, b, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Statistic < 0 || res.Statistic > 1 {
		t.Errorf("D = %v out of [0,1]", res.Statistic)
	}
}

func TestKS2Empty(t *testing.T) {
	if _, err := KolmogorovSmirnov2(nil, []float64{1}, 0.05); err != ErrEmpty {
		t.Error("empty a accepted")
	}
	if _, err := KolmogorovSmirnov2([]float64{1}, nil, 0.05); err != ErrEmpty {
		t.Error("empty b accepted")
	}
}

func TestCheckIIDPassesOnIID(t *testing.T) {
	rep, err := CheckIID(iidSample(42, 3000), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("i.i.d. gate failed on i.i.d. data:\n%s", rep)
	}
	if rep.Independence.PValue < 0.05 || rep.IdentDist.PValue < 0.05 {
		t.Errorf("p-values %v %v below alpha on iid data",
			rep.Independence.PValue, rep.IdentDist.PValue)
	}
}

func TestCheckIIDFailsOnTrend(t *testing.T) {
	// A drifting series violates both independence and identical
	// distribution — exactly the failure mode of a deterministic
	// platform warming its caches across runs.
	xs := make([]float64, 1000)
	src := rng.NewXoroshiro128(5)
	for i := range xs {
		xs[i] = float64(i)*0.01 + rng.Float64(src)
	}
	rep, err := CheckIID(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("i.i.d. gate passed on trending data")
	}
}

func TestCheckIIDTooFew(t *testing.T) {
	if _, err := CheckIID([]float64{1, 2, 3}, 0.05); err == nil {
		t.Error("CheckIID on 3 points accepted")
	}
}

func TestTestResultString(t *testing.T) {
	r := TestResult{Name: "X", Statistic: 1, PValue: 0.01, Alpha: 0.05, Rejected: true}
	if s := r.String(); s == "" || !contains(s, "REJECT") {
		t.Errorf("String() = %q", s)
	}
	r.Rejected = false
	if s := r.String(); !contains(s, "pass") {
		t.Errorf("String() = %q", s)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestAndersonDarlingUniform(t *testing.T) {
	unif := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	wrong := func(x float64) float64 { return unif(x * x) }
	// Over many uniform samples the rejection rate at alpha=0.05 should
	// be near 5%, while the wrong CDF must be rejected essentially always.
	rejectRight, rejectWrong := 0, 0
	const trials = 40
	src := rng.NewXoroshiro128(0)
	for s := uint64(1); s <= trials; s++ {
		src.Seed(s * 104729)
		xs := make([]float64, 500)
		for i := range xs {
			xs[i] = rng.Float64(src)
		}
		res, err := AndersonDarling(xs, unif, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejectRight++
		}
		res, _ = AndersonDarling(xs, wrong, 0.05)
		if res.Rejected {
			rejectWrong++
		}
	}
	if rejectRight > 7 {
		t.Errorf("AD rejected %d/%d uniform-vs-uniform samples", rejectRight, trials)
	}
	if rejectWrong < trials {
		t.Errorf("AD accepted wrong CDF in %d/%d trials", trials-rejectWrong, trials)
	}
}

func TestAndersonDarlingPValueCriticalPoints(t *testing.T) {
	// Marsaglia adinf must reproduce the classical case-0 critical
	// values: A2=1.933 (10%), 2.492 (5%), 3.857 (1%).
	cases := []struct{ a2, p float64 }{{1.933, 0.10}, {2.492, 0.05}, {3.857, 0.01}}
	for _, c := range cases {
		if got := adPValue(c.a2); math.Abs(got-c.p) > 0.002 {
			t.Errorf("adPValue(%v) = %.4f, want ~%.2f", c.a2, got, c.p)
		}
	}
	if adPValue(0) != 1 {
		t.Error("adPValue(0) != 1")
	}
	if adPValue(50) > 1e-6 {
		t.Error("adPValue(50) not ~0")
	}
}

func TestAndersonDarlingTooFew(t *testing.T) {
	if _, err := AndersonDarling([]float64{1, 2}, func(float64) float64 { return 0.5 }, 0.05); err != ErrTooFew {
		t.Error("AD on 2 points accepted")
	}
}

func TestRunsTestIID(t *testing.T) {
	rejections := 0
	const trials = 30
	for s := uint64(1); s <= trials; s++ {
		res, err := RunsTest(iidSample(s, 500), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejections++
		}
	}
	if rejections > 5 {
		t.Errorf("runs test rejected %d/%d iid samples", rejections, trials)
	}
}

func TestRunsTestAlternating(t *testing.T) {
	// Perfectly alternating series has far too many runs.
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	res, err := RunsTest(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected {
		t.Errorf("runs test accepted alternating series (p=%.4f)", res.PValue)
	}
	if res.Statistic < 0 {
		// Alternating gives more runs than expected: z should be large
		// positive... actually more runs -> runs > mu -> z > 0.
		t.Logf("z = %v", res.Statistic)
	}
}

func TestRunsTestBlocky(t *testing.T) {
	// Long blocks (strong positive correlation) give too few runs.
	xs := make([]float64, 200)
	for i := range xs {
		if i < 100 {
			xs[i] = 0
		} else {
			xs[i] = 1
		}
	}
	res, err := RunsTest(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected {
		t.Error("runs test accepted two-block series")
	}
	if res.Statistic > 0 {
		t.Errorf("blocky series z = %v, want negative", res.Statistic)
	}
}

func TestRunsTestTooFew(t *testing.T) {
	if _, err := RunsTest([]float64{1, 2, 3}, 0.05); err != ErrTooFew {
		t.Error("runs test on 3 points accepted")
	}
	// All ties with the median: every value identical.
	if _, err := RunsTest(make([]float64, 50), 0.05); err != ErrTooFew {
		t.Error("runs test on constant series accepted")
	}
}

func TestKS2PValueMatchesCriticalValue(t *testing.T) {
	// For equal n=m=1000, the 5% critical D is approximately
	// 1.358*sqrt(2/1000) = 0.0607. A sample pair with D just above it
	// should give p just below 0.05.
	n := 1000.0
	dCrit := 1.358 * math.Sqrt(2/n)
	ne := n * n / (2 * n)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * dCrit
	p := KolmogorovSF(lambda)
	if p > 0.055 || p < 0.040 {
		t.Errorf("p at critical D = %.4f, want ~0.05", p)
	}
}

func TestRejectBoundary(t *testing.T) {
	// The package-wide convention: reject iff p <= alpha. The boundary
	// case p == alpha must reject — alpha is exactly the rejection
	// probability of a true null — and the docs/report phrase "reject
	// at 5% significance" refers to this rule.
	cases := []struct {
		p, alpha float64
		want     bool
	}{
		{0.05, 0.05, true}, // boundary: p == alpha rejects
		{0.0499, 0.05, true},
		{0.0501, 0.05, false},
		{0, 0.05, true},
		{1, 0.05, false},
		{0.01, 0.01, true}, // boundary at other levels too
		{0.10, 0.10, true},
	}
	for _, c := range cases {
		if got := Reject(c.p, c.alpha); got != c.want {
			t.Errorf("Reject(%v, %v) = %v, want %v", c.p, c.alpha, got, c.want)
		}
	}
}

func TestRejectionBoundaryAppliedUniformly(t *testing.T) {
	// Every TestResult producer must agree with Reject(p, alpha),
	// including at the exact boundary p == alpha: re-run each test with
	// alpha set to its own p-value and require rejection.
	xs := iidSample(7, 400)
	half := len(xs) / 2

	type run struct {
		name string
		mk   func(alpha float64) (TestResult, error)
	}
	runs := []run{
		{"Ljung-Box", func(a float64) (TestResult, error) {
			return LjungBox(xs, DefaultLjungBoxLags(len(xs)), a)
		}},
		{"KS-2", func(a float64) (TestResult, error) {
			return KolmogorovSmirnov2(xs[:half], xs[half:], a)
		}},
		{"runs test", func(a float64) (TestResult, error) {
			return RunsTest(xs, a)
		}},
		{"turning-point", func(a float64) (TestResult, error) {
			return TurningPointTest(xs, a)
		}},
		{"Mann-Kendall", func(a float64) (TestResult, error) {
			return MannKendall(xs, a)
		}},
	}
	for _, r := range runs {
		base, err := r.mk(0.05)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if base.Rejected != Reject(base.PValue, 0.05) {
			t.Errorf("%s: Rejected=%v disagrees with Reject(%v, 0.05)",
				r.name, base.Rejected, base.PValue)
		}
		if base.PValue <= 0 || base.PValue >= 1 {
			continue // boundary re-run is only meaningful for interior p
		}
		at, err := r.mk(base.PValue)
		if err != nil {
			t.Fatalf("%s at boundary: %v", r.name, err)
		}
		if !at.Rejected {
			t.Errorf("%s: p == alpha == %v must reject", r.name, base.PValue)
		}
	}
}
