package stats

import (
	"testing"

	"repro/internal/rng"
)

func TestTurningPointAcceptsIID(t *testing.T) {
	rejections := 0
	const trials = 30
	for s := uint64(1); s <= trials; s++ {
		res, err := TurningPointTest(iidSample(s, 500), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejections++
		}
	}
	if rejections > 5 {
		t.Errorf("turning-point rejected %d/%d iid samples", rejections, trials)
	}
}

func TestTurningPointRejectsTrend(t *testing.T) {
	// A strong monotone component suppresses turning points.
	src := rng.NewXoroshiro128(4)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = float64(i) + 0.3*rng.Float64(src)
	}
	res, err := TurningPointTest(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected {
		t.Errorf("trend accepted (z=%.2f p=%.4f)", res.Statistic, res.PValue)
	}
	if res.Statistic > 0 {
		t.Errorf("trend should reduce turning points (z=%.2f)", res.Statistic)
	}
}

func TestTurningPointRejectsAlternation(t *testing.T) {
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	res, err := TurningPointTest(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected || res.Statistic < 0 {
		t.Errorf("alternation: z=%.2f p=%.4f", res.Statistic, res.PValue)
	}
}

func TestTurningPointTooFew(t *testing.T) {
	if _, err := TurningPointTest(make([]float64, 10), 0.05); err != ErrTooFew {
		t.Error("short sample accepted")
	}
}

func TestMannKendallAcceptsIID(t *testing.T) {
	rejections := 0
	const trials = 30
	for s := uint64(1); s <= trials; s++ {
		res, err := MannKendall(iidSample(s, 300), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejections++
		}
	}
	if rejections > 5 {
		t.Errorf("Mann-Kendall rejected %d/%d iid samples", rejections, trials)
	}
}

func TestMannKendallDetectsDrift(t *testing.T) {
	// A mild drift (thermal-style) buried in noise.
	src := rng.NewXoroshiro128(6)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64(src) + float64(i)*0.002
	}
	res, err := MannKendall(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejected || res.Statistic <= 0 {
		t.Errorf("upward drift missed: z=%.2f p=%.4f", res.Statistic, res.PValue)
	}
	// Decreasing drift gives a negative statistic.
	for i := range xs {
		xs[i] = rng.Float64(src) - float64(i)*0.002
	}
	res, _ = MannKendall(xs, 0.05)
	if !res.Rejected || res.Statistic >= 0 {
		t.Errorf("downward drift missed: z=%.2f", res.Statistic)
	}
}

func TestMannKendallConstantSeries(t *testing.T) {
	res, err := MannKendall(make([]float64, 50), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected || res.PValue != 1 {
		t.Errorf("constant series: %+v", res)
	}
}

func TestMannKendallTooFew(t *testing.T) {
	if _, err := MannKendall(make([]float64, 5), 0.05); err != ErrTooFew {
		t.Error("short sample accepted")
	}
}

func TestCheckIIDExtended(t *testing.T) {
	rep, err := CheckIIDExtended(iidSample(12, 1000), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("extended gate failed on iid data: %+v", rep)
	}
	// A drifting series fails via the trend test even when KS on halves
	// might be borderline.
	src := rng.NewXoroshiro128(2)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64(src) + float64(i)*0.001
	}
	rep, err = CheckIIDExtended(xs, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Error("extended gate passed on drifting data")
	}
	if !rep.Trend.Rejected {
		t.Error("Mann-Kendall did not flag the drift")
	}
	if _, err := CheckIIDExtended(make([]float64, 5), 0.05); err == nil {
		t.Error("tiny sample accepted")
	}
}
