package stats

import (
	"testing"

	"repro/internal/rng"
)

// Statistical-power tests for the i.i.d. gate: the gate is only as
// good as its ability to actually reject the failure modes MBPTA cares
// about. Each test runs many independent trials on synthetic series
// with a known defect (AR(1) autocorrelation, a linear trend) or none,
// and checks the empirical rejection rate. Seeds are fixed, so the
// rates are exact repo constants, but the asserted bands leave room
// for the usual binomial noise should the generators ever change.

const (
	powerTrials = 200
	powerN      = 400 // observations per trial, a realistic campaign slice
	powerAlpha  = 0.05
)

// uniform returns a mean-centered uniform(-0.5, 0.5) draw.
func uniform(src rng.Source) float64 { return rng.Float64(src) - 0.5 }

// TestLjungBoxPowerAR1: an AR(1) series with phi=0.5 is exactly the
// "platform retains state between runs" failure mode. The Ljung-Box
// test at the gate's default lags must reject it nearly always.
func TestLjungBoxPowerAR1(t *testing.T) {
	src := rng.NewXoroshiro128(0xA51)
	const phi = 0.5
	rejected := 0
	for trial := 0; trial < powerTrials; trial++ {
		xs := make([]float64, powerN)
		x := 0.0
		for i := range xs {
			x = phi*x + uniform(src)
			xs[i] = x
		}
		res, err := LjungBox(xs, DefaultLjungBoxLags(powerN), powerAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejected++
		}
	}
	power := float64(rejected) / powerTrials
	if power < 0.9 {
		t.Errorf("Ljung-Box power against AR(1) phi=%.1f = %.3f, want > 0.9", phi, power)
	}
}

// TestKSPowerLinearTrend: a linear drift across the campaign (thermal
// ramp, resource leak) makes the two halves draw from shifted
// distributions; the two-sample KS test on halves must reject.
func TestKSPowerLinearTrend(t *testing.T) {
	src := rng.NewXoroshiro128(0xB52)
	// uniform(-0.5,0.5) has sigma ~ 0.2887; a total drift of ~3 sigma
	// across the series is a subtle but real trend.
	const drift = 3 * 0.2887
	rejected := 0
	for trial := 0; trial < powerTrials; trial++ {
		xs := make([]float64, powerN)
		for i := range xs {
			xs[i] = uniform(src) + drift*float64(i)/float64(powerN)
		}
		res, err := KolmogorovSmirnov2(xs[:powerN/2], xs[powerN/2:], powerAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejected++
		}
	}
	power := float64(rejected) / powerTrials
	if power < 0.9 {
		t.Errorf("KS power against a %.1f-sigma linear trend = %.3f, want > 0.9", 3.0, power)
	}
}

// TestGateFalsePositiveRate: on genuinely i.i.d. series both tests
// must reject at about their nominal alpha — a gate that cries wolf
// would discard valid time-randomized campaigns.
func TestGateFalsePositiveRate(t *testing.T) {
	src := rng.NewXoroshiro128(0xC53)
	lbRejected, ksRejected := 0, 0
	for trial := 0; trial < powerTrials; trial++ {
		xs := make([]float64, powerN)
		for i := range xs {
			xs[i] = uniform(src)
		}
		lb, err := LjungBox(xs, DefaultLjungBoxLags(powerN), powerAlpha)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := KolmogorovSmirnov2(xs[:powerN/2], xs[powerN/2:], powerAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if lb.Rejected {
			lbRejected++
		}
		if ks.Rejected {
			ksRejected++
		}
	}
	// 200 Bernoulli(0.05) trials: mean 10, sd ~3.1. [0, 0.10] is ~3 sd
	// above nominal — failing this means miscalibration, not bad luck.
	lbRate := float64(lbRejected) / powerTrials
	ksRate := float64(ksRejected) / powerTrials
	if lbRate > 0.10 {
		t.Errorf("Ljung-Box false-positive rate on i.i.d. data = %.3f, want <= 0.10 (alpha %.2f)", lbRate, powerAlpha)
	}
	if ksRate > 0.10 {
		t.Errorf("KS false-positive rate on i.i.d. data = %.3f, want <= 0.10 (alpha %.2f)", ksRate, powerAlpha)
	}
}

// --- Quantile-gate power suite -------------------------------------
//
// The quantile gate's contract is sharper than the KS gate's: bounded
// family-wise false positives across nine deciles, and power against
// effects confined to the upper deciles — the region pWCET claims live
// in and the region a timing side channel perturbs. The same trial
// structure as above: many seeded replications, empirical rates.

// TestQuantileGatePowerUpperDecileShift: a +0.5 sigma shift applied
// only to values above q75 — invisible to the mean and mostly to KS —
// must be detected with power > 0.9.
func TestQuantileGatePowerUpperDecileShift(t *testing.T) {
	const sigma = 0.2886751345948129 // sd of uniform(-0.5, 0.5)
	src := rng.NewXoroshiro128(0xD54)
	detected := 0
	for trial := 0; trial < powerTrials; trial++ {
		a := make([]float64, 500)
		b := make([]float64, 500)
		for i := range a {
			a[i] = uniform(src)
		}
		for i := range b {
			v := uniform(src)
			if v > 0.25 { // above the true q75
				v += 0.5 * sigma
			}
			b[i] = v
		}
		rep, err := CompareQuantiles(a, b, QuantileGateOptions{Alpha: powerAlpha})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			detected++
		}
	}
	power := float64(detected) / powerTrials
	if power < 0.9 {
		t.Errorf("quantile-gate power against a +0.5-sigma upper-decile shift = %.3f, want > 0.9", power)
	}
}

// TestQuantileGateNullFWER: under identical distributions the gate
// must fail at no more than 2x its configured family-wise rate, across
// 1,000 seeded replications.
func TestQuantileGateNullFWER(t *testing.T) {
	const trials = 1000
	fails := 0
	for trial := 0; trial < trials; trial++ {
		src := rng.NewXoroshiro128(uint64(0xE55000 + trial))
		xs := make([]float64, powerN)
		for i := range xs {
			xs[i] = uniform(src)
		}
		rep, err := CheckQuantileGate(xs, QuantileGateOptions{Alpha: powerAlpha})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			fails++
		}
	}
	rate := float64(fails) / trials
	if rate > 2*powerAlpha {
		t.Errorf("null FWER = %.4f, want <= 2x alpha = %.2f", rate, 2*powerAlpha)
	}
}

// TestQuantileGateNullFWERAR1: AR(1)-correlated inputs (phi = 0.5, the
// Ljung-Box power scenario) inflate quantile-estimate variance; the
// effective-sample-size correction must keep the null FWER within 2x
// the configured rate, and the AssumeIID ablation must demonstrate the
// correction is load-bearing (uncorrected rate well above the budget).
func TestQuantileGateNullFWERAR1(t *testing.T) {
	const (
		trials = 1000
		phi    = 0.5
	)
	fails, uncorrected := 0, 0
	for trial := 0; trial < trials; trial++ {
		src := rng.NewXoroshiro128(uint64(0xF56000 + trial))
		xs := make([]float64, powerN)
		x := 0.0
		for i := range xs {
			x = phi*x + uniform(src)
			xs[i] = x
		}
		rep, err := CheckQuantileGate(xs, QuantileGateOptions{Alpha: powerAlpha})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Pass {
			fails++
		}
		raw, err := CheckQuantileGate(xs, QuantileGateOptions{Alpha: powerAlpha, AssumeIID: true})
		if err != nil {
			t.Fatal(err)
		}
		if !raw.Pass {
			uncorrected++
		}
	}
	rate := float64(fails) / trials
	if rate > 2*powerAlpha {
		t.Errorf("AR(1) null FWER with ESS correction = %.4f, want <= 2x alpha = %.2f", rate, 2*powerAlpha)
	}
	if raw := float64(uncorrected) / trials; raw <= 2*powerAlpha {
		t.Errorf("AssumeIID FWER on AR(1) inputs = %.4f; expected it above the budget — is the correction still doing anything?", raw)
	}
}

// TestQuantileGateCatchesWhatKSMisses: the acceptance scenario — a
// synthetic series whose second half carries a +0.05 shift confined
// above q85. The existing whole-distribution gate (Ljung-Box + KS on
// halves) passes it; the quantile gate rejects it. Seed pinned to a
// replication where both margins are comfortable (KS p ~ 0.11 vs the
// 0.05 cut, quantile |z| ~ 3.8 vs the ~3.0 Bonferroni cut).
func TestQuantileGateCatchesWhatKSMisses(t *testing.T) {
	src := rng.NewXoroshiro128(11)
	xs := make([]float64, 2000)
	for i := range xs {
		v := uniform(src)
		if i >= 1000 && v > 0.35 { // above q85, second half only
			v += 0.05
		}
		xs[i] = v
	}
	iid, err := CheckIID(xs, powerAlpha)
	if err != nil {
		t.Fatal(err)
	}
	if !iid.Pass {
		t.Fatalf("whole-distribution gate unexpectedly rejected the upper-decile effect: %s", iid)
	}
	qg, err := CheckQuantileGate(xs, QuantileGateOptions{Alpha: powerAlpha})
	if err != nil {
		t.Fatal(err)
	}
	if qg.Pass {
		t.Fatalf("quantile gate missed the upper-decile effect the KS gate also missed: %s", qg)
	}
	if qg.EffectDecile < 0.8 {
		t.Errorf("effect localized at q%.0f, expected an upper decile", qg.EffectDecile*100)
	}
}
