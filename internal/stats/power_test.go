package stats

import (
	"testing"

	"repro/internal/rng"
)

// Statistical-power tests for the i.i.d. gate: the gate is only as
// good as its ability to actually reject the failure modes MBPTA cares
// about. Each test runs many independent trials on synthetic series
// with a known defect (AR(1) autocorrelation, a linear trend) or none,
// and checks the empirical rejection rate. Seeds are fixed, so the
// rates are exact repo constants, but the asserted bands leave room
// for the usual binomial noise should the generators ever change.

const (
	powerTrials = 200
	powerN      = 400 // observations per trial, a realistic campaign slice
	powerAlpha  = 0.05
)

// uniform returns a mean-centered uniform(-0.5, 0.5) draw.
func uniform(src rng.Source) float64 { return rng.Float64(src) - 0.5 }

// TestLjungBoxPowerAR1: an AR(1) series with phi=0.5 is exactly the
// "platform retains state between runs" failure mode. The Ljung-Box
// test at the gate's default lags must reject it nearly always.
func TestLjungBoxPowerAR1(t *testing.T) {
	src := rng.NewXoroshiro128(0xA51)
	const phi = 0.5
	rejected := 0
	for trial := 0; trial < powerTrials; trial++ {
		xs := make([]float64, powerN)
		x := 0.0
		for i := range xs {
			x = phi*x + uniform(src)
			xs[i] = x
		}
		res, err := LjungBox(xs, DefaultLjungBoxLags(powerN), powerAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejected++
		}
	}
	power := float64(rejected) / powerTrials
	if power < 0.9 {
		t.Errorf("Ljung-Box power against AR(1) phi=%.1f = %.3f, want > 0.9", phi, power)
	}
}

// TestKSPowerLinearTrend: a linear drift across the campaign (thermal
// ramp, resource leak) makes the two halves draw from shifted
// distributions; the two-sample KS test on halves must reject.
func TestKSPowerLinearTrend(t *testing.T) {
	src := rng.NewXoroshiro128(0xB52)
	// uniform(-0.5,0.5) has sigma ~ 0.2887; a total drift of ~3 sigma
	// across the series is a subtle but real trend.
	const drift = 3 * 0.2887
	rejected := 0
	for trial := 0; trial < powerTrials; trial++ {
		xs := make([]float64, powerN)
		for i := range xs {
			xs[i] = uniform(src) + drift*float64(i)/float64(powerN)
		}
		res, err := KolmogorovSmirnov2(xs[:powerN/2], xs[powerN/2:], powerAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rejected {
			rejected++
		}
	}
	power := float64(rejected) / powerTrials
	if power < 0.9 {
		t.Errorf("KS power against a %.1f-sigma linear trend = %.3f, want > 0.9", 3.0, power)
	}
}

// TestGateFalsePositiveRate: on genuinely i.i.d. series both tests
// must reject at about their nominal alpha — a gate that cries wolf
// would discard valid time-randomized campaigns.
func TestGateFalsePositiveRate(t *testing.T) {
	src := rng.NewXoroshiro128(0xC53)
	lbRejected, ksRejected := 0, 0
	for trial := 0; trial < powerTrials; trial++ {
		xs := make([]float64, powerN)
		for i := range xs {
			xs[i] = uniform(src)
		}
		lb, err := LjungBox(xs, DefaultLjungBoxLags(powerN), powerAlpha)
		if err != nil {
			t.Fatal(err)
		}
		ks, err := KolmogorovSmirnov2(xs[:powerN/2], xs[powerN/2:], powerAlpha)
		if err != nil {
			t.Fatal(err)
		}
		if lb.Rejected {
			lbRejected++
		}
		if ks.Rejected {
			ksRejected++
		}
	}
	// 200 Bernoulli(0.05) trials: mean 10, sd ~3.1. [0, 0.10] is ~3 sd
	// above nominal — failing this means miscalibration, not bad luck.
	lbRate := float64(lbRejected) / powerTrials
	ksRate := float64(ksRejected) / powerTrials
	if lbRate > 0.10 {
		t.Errorf("Ljung-Box false-positive rate on i.i.d. data = %.3f, want <= 0.10 (alpha %.2f)", lbRate, powerAlpha)
	}
	if ksRate > 0.10 {
		t.Errorf("KS false-positive rate on i.i.d. data = %.3f, want <= 0.10 (alpha %.2f)", ksRate, powerAlpha)
	}
}
