package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mean", got, 2.5, 1e-15)
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMeanKahanStability(t *testing.T) {
	// 1e8 + many tiny values: naive summation loses them entirely in
	// float32 and partially in careless float64 orderings.
	xs := make([]float64, 1_000_001)
	xs[0] = 1e8
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-8
	}
	got, _ := Mean(xs)
	want := (1e8 + 1e6*1e-8) / 1_000_001
	approx(t, "kahan mean", got, want, 1e-12)
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "variance", v, 32.0/7.0, 1e-12)
	sd, _ := StdDev(xs)
	approx(t, "stddev", sd, math.Sqrt(32.0/7.0), 1e-12)
	if _, err := Variance([]float64{1}); err != ErrTooFew {
		t.Errorf("Variance(single) err = %v, want ErrTooFew", err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 7, 0}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	if mn != -1 || mx != 7 {
		t.Errorf("min,max = %v,%v want -1,7", mn, mx)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("Max(nil) should be ErrEmpty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	q, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "median", q, 3, 1e-15)
	q, _ = Quantile(xs, 0.25)
	approx(t, "q25", q, 2, 1e-15)
	q, _ = Quantile(xs, 0)
	approx(t, "q0", q, 1, 1e-15)
	q, _ = Quantile(xs, 1)
	approx(t, "q1", q, 5, 1e-15)
	if _, err := Quantile(xs, 1.1); err != ErrDomain {
		t.Error("Quantile(1.1) accepted")
	}
	if _, err := Quantile(xs, math.NaN()); err != ErrDomain {
		t.Error("Quantile(NaN) accepted")
	}
	q, _ = Quantile([]float64{42}, 0.7)
	approx(t, "single", q, 42, 0)
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatal("Quantile mutated its input")
		}
	}
}

func TestQuantileOrderProperty(t *testing.T) {
	src := rng.NewXoroshiro128(4)
	f := func(seed uint64) bool {
		src.Seed(seed)
		n := 2 + rng.Intn(src, 100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64(src) * 1000
		}
		q1, _ := Quantile(xs, 0.3)
		q2, _ := Quantile(xs, 0.7)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return q1 <= q2 && mn <= q1 && q2 <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSkewness(t *testing.T) {
	// Symmetric sample: skewness ~ 0.
	sym := []float64{-2, -1, 0, 1, 2}
	s, err := Skewness(sym)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "symmetric skew", s, 0, 1e-12)
	// Right-skewed sample has positive skewness.
	right := []float64{1, 1, 1, 1, 10}
	s, _ = Skewness(right)
	if s <= 0 {
		t.Errorf("right-skewed sample skew = %v, want > 0", s)
	}
	if _, err := Skewness([]float64{1, 2}); err != ErrTooFew {
		t.Error("Skewness(n=2) accepted")
	}
	s, _ = Skewness([]float64{3, 3, 3, 3})
	approx(t, "constant skew", s, 0, 0)
}

func TestSummarize(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 {
		t.Errorf("N = %d", s.N)
	}
	approx(t, "mean", s.Mean, 55, 1e-12)
	approx(t, "min", s.Min, 10, 0)
	approx(t, "max", s.Max, 100, 0)
	approx(t, "p50", s.P50, 55, 1e-12)
	if s.CoefficientOfVar <= 0 {
		t.Error("CV should be positive")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should fail")
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	src := rng.NewXoroshiro128(7)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64(src)
	}
	r, err := Autocorrelation(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	// White noise: |r_k| should be within ~3/sqrt(n).
	bound := 3 / math.Sqrt(float64(len(xs)))
	for k, rk := range r {
		if math.Abs(rk) > bound {
			t.Errorf("lag %d autocorrelation %.4f exceeds bound %.4f", k+1, rk, bound)
		}
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with phi=0.8 must show r_1 near 0.8.
	src := rng.NewXoroshiro128(9)
	xs := make([]float64, 20000)
	prev := 0.0
	for i := range xs {
		prev = 0.8*prev + (rng.Float64(src) - 0.5)
		xs[i] = prev
	}
	r, _ := Autocorrelation(xs, 3)
	if r[0] < 0.7 || r[0] > 0.9 {
		t.Errorf("AR(1) r1 = %.3f, want ~0.8", r[0])
	}
	if r[1] < r[0]*r[0]-0.1 || r[1] > r[0]*r[0]+0.1 {
		t.Errorf("AR(1) r2 = %.3f, want ~r1^2=%.3f", r[1], r[0]*r[0])
	}
}

func TestAutocorrelationConstantSeries(t *testing.T) {
	r, err := Autocorrelation([]float64{5, 5, 5, 5, 5, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r {
		if v != 0 {
			t.Errorf("constant series autocorrelation = %v, want 0", v)
		}
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation(nil, 1); err != ErrEmpty {
		t.Error("empty accepted")
	}
	if _, err := Autocorrelation([]float64{1, 2, 3}, 3); err != ErrTooFew {
		t.Error("maxLag >= n accepted")
	}
	if _, err := Autocorrelation([]float64{1, 2, 3}, 0); err != ErrTooFew {
		t.Error("maxLag=0 accepted")
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("F(%g) = %v, want %v", c.x, got, c.want)
		}
		if got := e.ExceedanceAt(c.x); math.Abs(got-(1-c.want)) > 1e-15 {
			t.Errorf("1-F(%g) = %v, want %v", c.x, got, 1-c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Error("NewECDF(nil) accepted")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	src := rng.NewXoroshiro128(17)
	f := func(seed uint64) bool {
		src.Seed(seed)
		n := 1 + rng.Intn(src, 200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64(src) * 100
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		prev := -1.0
		for x := -5.0; x < 110; x += 2.5 {
			v := e.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return e.At(110) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestECDFQuantileConsistency(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	e, _ := NewECDF(xs)
	q, err := e.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "ecdf median", q, 25, 1e-12)
	if _, err := e.Quantile(-0.1); err != ErrDomain {
		t.Error("Quantile(-0.1) accepted")
	}
}

func TestECDFSortedIsSorted(t *testing.T) {
	e, _ := NewECDF([]float64{3, 1, 2})
	if !sort.Float64sAreSorted(e.Sorted()) {
		t.Error("Sorted() not sorted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 10 {
		t.Errorf("total = %d", h.Total)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 10 {
		t.Errorf("bin sum = %d, want 10", sum)
	}
	// Max lands in the last bucket.
	if h.Counts[4] < 2 {
		t.Errorf("last bin = %d, want >=2 (contains 8 and 9)", h.Counts[4])
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h, err := NewHistogram([]float64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("constant sample counts = %v", h.Counts)
	}
	if _, err := NewHistogram(nil, 3); err != ErrEmpty {
		t.Error("empty accepted")
	}
	if _, err := NewHistogram([]float64{1}, 0); err != ErrDomain {
		t.Error("nbins=0 accepted")
	}
}
