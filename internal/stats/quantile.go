// Quantile-resolved two-sample comparison: the nine-decile
// distribution gate and timing-leak oracle.
//
// The i.i.d. gate's two-sample KS test compares whole distributions,
// so an effect confined to the upper deciles — exactly where pWCET
// claims live, and exactly what a timing side channel looks like —
// can pass undetected, and its p-value is routinely misread as a leak
// probability. This file implements the two-layer design of the
// timing-oracle spec instead:
//
//   - Layer 1 (frequentist, bounded false positives): each decile
//     q10..q90 of the two samples is estimated by the Harrell-Davis
//     estimator with a Maritz-Jarrett standard error; the per-decile
//     difference is tested at level alpha/9 (Bonferroni), so the
//     family-wise false-positive rate across the nine deciles is at
//     most the configured alpha. The verdict says which deciles leak,
//     not just that something differs.
//   - Layer 2 (Bayesian, quantified leak): a Savage-Dickey Bayes
//     factor per decile converts the observed difference into a
//     posterior leak probability and an effect size in cycles —
//     the number a "how exploitable is this channel?" question
//     actually needs.
//
// Both layers are deterministic: Harrell-Davis weights are incomplete
// beta differences (no bootstrap resampling), so the same two samples
// always produce the same report, bit for bit, regardless of
// GOMAXPROCS or map iteration order.
//
// Collection-order correlation (the simulator's run series can carry
// AR(1) structure under some configurations) inflates the variance of
// quantile estimates; unless AssumeIID is set, standard errors are
// scaled by the effective-sample-size factor sqrt((1+rho)/(1-rho))
// with rho the lag-1 autocorrelation clamped to [0, 0.99] — a
// conservative correction that keeps the null calibrated without
// costing power on independent inputs.
package stats

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
)

// quantileGateMinN is the default minimum per-sample size: below it the
// Maritz-Jarrett standard error is too noisy for the gate's
// false-positive budget to mean anything.
const quantileGateMinN = 16

// QuantileEstimate is a Harrell-Davis estimate of one quantile with its
// Maritz-Jarrett standard error and a two-sided normal confidence
// interval (Lo <= Point <= Hi always holds).
type QuantileEstimate struct {
	Q     float64 // quantile level in (0, 1)
	Point float64 // Harrell-Davis point estimate
	SE    float64 // Maritz-Jarrett standard error
	Lo    float64 // lower confidence bound
	Hi    float64 // upper confidence bound
}

// EstimateQuantile computes the Harrell-Davis estimate of quantile q of
// xs with a Maritz-Jarrett standard error and a two-sided normal CI at
// the given confidence level (e.g. 0.95). The estimator is a smooth
// weighted average of all order statistics — no resampling — so it is
// deterministic and considerably more efficient than the single order
// statistic at moderate n. Errors: ErrEmpty for no data, ErrDomain for
// q outside (0,1), confidence outside (0,1), or non-finite values.
func EstimateQuantile(xs []float64, q, confidence float64) (QuantileEstimate, error) {
	if len(xs) == 0 {
		return QuantileEstimate{}, ErrEmpty
	}
	if math.IsNaN(q) || q <= 0 || q >= 1 || math.IsNaN(confidence) || confidence <= 0 || confidence >= 1 {
		return QuantileEstimate{}, ErrDomain
	}
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return QuantileEstimate{}, ErrDomain
		}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	point, se, err := hdEstimate(sorted, q)
	if err != nil {
		return QuantileEstimate{}, err
	}
	z, err := NormalQuantile((1 + confidence) / 2)
	if err != nil {
		return QuantileEstimate{}, err
	}
	return QuantileEstimate{Q: q, Point: point, SE: se, Lo: point - z*se, Hi: point + z*se}, nil
}

// hdEstimate computes the Harrell-Davis point estimate and
// Maritz-Jarrett standard error of quantile q from an already-sorted
// sample. Weights are w_i = I_{i/n}(a,b) - I_{(i-1)/n}(a,b) with
// a = (n+1)q, b = (n+1)(1-q); the SE is sqrt(c2 - c1^2) with
// c1 = sum w_i x_(i), c2 = sum w_i x_(i)^2.
func hdEstimate(sorted []float64, q float64) (point, se float64, err error) {
	n := len(sorted)
	a := float64(n+1) * q
	b := float64(n+1) * (1 - q)
	// Accumulate around the sample median: c2 - c1^2 cancels
	// catastrophically when the mean dwarfs the spread (cycle counts in
	// the millions with sub-percent jitter), and centering also makes
	// the estimate shift-equivariant to rounding level.
	mu := sorted[n/2]
	// Spreads near the float64 ceiling would overflow the squared term;
	// pre-scale those (and only those, so ordinary data stays
	// bit-identical) and undo the scaling at the end.
	scale := 1.0
	if s := math.Max(math.Abs(sorted[0]-mu), math.Abs(sorted[n-1]-mu)); s >= 1e150 {
		scale = s
	}
	var c1, c2 float64
	prev := 0.0
	for i := 1; i <= n; i++ {
		cum := 1.0
		if i < n {
			cum, err = RegularizedIncompleteBeta(float64(i)/float64(n), a, b)
			if err != nil {
				return 0, 0, err
			}
		}
		w := cum - prev
		prev = cum
		x := (sorted[i-1] - mu) / scale
		c1 += w * x
		c2 += w * x * x
	}
	v := c2 - c1*c1
	if v < 0 { // rounding in the weight sum
		v = 0
	}
	return mu + scale*c1, scale * math.Sqrt(v), nil
}

// QuantileGateOptions configures CompareQuantiles / CheckQuantileGate.
// The zero value selects the defaults documented per field.
type QuantileGateOptions struct {
	// Alpha is the family-wise false-positive budget across all tested
	// deciles (default 0.01): under identical distributions the gate
	// fails with probability at most Alpha.
	Alpha float64
	// Deciles lists the quantile levels to compare (default q10..q90).
	Deciles []float64
	// PriorEffect is the Bayesian layer's H1 prior scale tau, in input
	// units (cycles): the effect size a real leak is expected to have.
	// Zero selects half the pooled q10-q90 spread — "a leak as wide as
	// the distribution body" — which is scale-free and conservative.
	PriorEffect float64
	// AssumeIID skips the AR(1) effective-sample-size correction of
	// the standard errors. Leave false unless the samples are known
	// independent in collection order.
	AssumeIID bool
	// MinN is the minimum per-sample size (default 16); smaller inputs
	// return ErrTooFew.
	MinN int
}

func (o QuantileGateOptions) withDefaults() QuantileGateOptions {
	if o.Alpha == 0 {
		o.Alpha = 0.01
	}
	if len(o.Deciles) == 0 {
		o.Deciles = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	}
	if o.MinN == 0 {
		o.MinN = quantileGateMinN
	}
	return o
}

// DecileResult is the verdict for one quantile level.
type DecileResult struct {
	Q float64 // quantile level

	A, B QuantileEstimate // per-sample estimates (CIs at level 1-alpha/k)

	Diff   float64 // B.Point - A.Point, in input units (cycles)
	SE     float64 // combined standard error of Diff (ESS-corrected)
	Lo, Hi float64 // 1-alpha/k confidence interval on Diff
	Z      float64 // Diff / SE
	P      float64 // two-sided normal p-value
	Leak   bool    // frequentist rejection at the Bonferroni level alpha/k

	BF10      float64 // Savage-Dickey Bayes factor, H1 (leak) over H0
	Posterior float64 // posterior leak probability at even prior odds
}

// QuantileGateReport is the two-layer verdict over all tested deciles.
type QuantileGateReport struct {
	NA, NB      int     // per-sample sizes
	Alpha       float64 // family-wise false-positive budget
	PriorEffect float64 // resolved Bayesian prior scale tau (cycles)
	RhoA, RhoB  float64 // lag-1 autocorrelations used for the ESS correction

	Deciles []DecileResult

	// Layer 1 aggregate: Pass is the gate verdict — true iff no decile
	// rejects at the Bonferroni level, so P(fail | identical
	// distributions) <= Alpha.
	Leaks   int
	Pass    bool
	MaxAbsZ float64

	// Layer 2 aggregate: LeakProbability is the maximum per-decile
	// posterior — a conservative envelope answering "how likely is it
	// that at least the most suspicious decile leaks?". EffectCycles
	// is the difference at the most significant decile (EffectDecile).
	LeakProbability float64
	EffectCycles    float64
	EffectDecile    float64
}

// String renders a one-line summary in the IIDReport style.
func (r QuantileGateReport) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	var leaking []string
	for _, d := range r.Deciles {
		if d.Leak {
			leaking = append(leaking, fmt.Sprintf("q%02.0f", d.Q*100))
		}
	}
	at := ""
	if len(leaking) > 0 {
		at = " at " + strings.Join(leaking, ",")
	}
	return fmt.Sprintf("quantile gate %s: %d/%d deciles differ%s (max |z| %.2f, P(leak) %.3f, effect %+.0f cycles @ q%02.0f)",
		verdict, r.Leaks, len(r.Deciles), at, r.MaxAbsZ, r.LeakProbability, r.EffectCycles, r.EffectDecile*100)
}

// Fingerprint returns a short hex digest over every numeric field of
// the report (exact float bit patterns), for golden tests that must
// catch any change in gate behavior.
func (r QuantileGateReport) Fingerprint() string {
	h := sha256.New()
	word := func(v uint64) {
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	f := func(x float64) { word(math.Float64bits(x)) }
	word(uint64(r.NA))
	word(uint64(r.NB))
	f(r.Alpha)
	f(r.PriorEffect)
	f(r.RhoA)
	f(r.RhoB)
	for _, d := range r.Deciles {
		f(d.Q)
		f(d.A.Point)
		f(d.A.SE)
		f(d.B.Point)
		f(d.B.SE)
		f(d.Diff)
		f(d.SE)
		f(d.Z)
		f(d.P)
		if d.Leak {
			word(1)
		} else {
			word(0)
		}
		f(d.Posterior)
	}
	word(uint64(r.Leaks))
	f(r.LeakProbability)
	f(r.EffectCycles)
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// CompareQuantiles runs the two-layer quantile comparison of samples a
// and b (in collection order — order matters only for the AR(1)
// correction). Errors: ErrTooFew below MinN per side, ErrDomain for
// non-finite values or invalid options.
func CompareQuantiles(a, b []float64, opts QuantileGateOptions) (QuantileGateReport, error) {
	o := opts.withDefaults()
	if math.IsNaN(o.Alpha) || o.Alpha <= 0 || o.Alpha >= 1 {
		return QuantileGateReport{}, ErrDomain
	}
	if len(a) < o.MinN || len(b) < o.MinN {
		return QuantileGateReport{}, ErrTooFew
	}
	for _, xs := range [][]float64{a, b} {
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return QuantileGateReport{}, ErrDomain
			}
		}
	}
	for _, q := range o.Deciles {
		if math.IsNaN(q) || q <= 0 || q >= 1 {
			return QuantileGateReport{}, ErrDomain
		}
	}
	k := len(o.Deciles)
	perTest := o.Alpha / float64(k)
	zCrit, err := NormalQuantile(1 - perTest/2)
	if err != nil {
		return QuantileGateReport{}, err
	}

	rep := QuantileGateReport{NA: len(a), NB: len(b), Alpha: o.Alpha, Pass: true}
	essA, essB := 1.0, 1.0
	if !o.AssumeIID {
		rep.RhoA = lag1Rho(a)
		rep.RhoB = lag1Rho(b)
		essA = math.Sqrt((1 + rep.RhoA) / (1 - rep.RhoA))
		essB = math.Sqrt((1 + rep.RhoB) / (1 - rep.RhoB))
	}

	sortedA := append([]float64(nil), a...)
	sortedB := append([]float64(nil), b...)
	sort.Float64s(sortedA)
	sort.Float64s(sortedB)

	tau := o.PriorEffect
	if tau == 0 {
		tau = pooledBodySpread(sortedA, sortedB)
	}
	rep.PriorEffect = tau

	rep.Deciles = make([]DecileResult, 0, k)
	bestZ := -1.0
	for _, q := range o.Deciles {
		pa, seA, err := hdEstimate(sortedA, q)
		if err != nil {
			return QuantileGateReport{}, err
		}
		pb, seB, err := hdEstimate(sortedB, q)
		if err != nil {
			return QuantileGateReport{}, err
		}
		seA *= essA
		seB *= essB
		d := DecileResult{
			Q:    q,
			A:    QuantileEstimate{Q: q, Point: pa, SE: seA, Lo: pa - zCrit*seA, Hi: pa + zCrit*seA},
			B:    QuantileEstimate{Q: q, Point: pb, SE: seB, Lo: pb - zCrit*seB, Hi: pb + zCrit*seB},
			Diff: pb - pa,
		}
		d.SE = math.Hypot(seA, seB)
		d.Lo = d.Diff - zCrit*d.SE
		d.Hi = d.Diff + zCrit*d.SE
		var logBF float64
		switch {
		case d.SE > 0:
			d.Z = d.Diff / d.SE
			d.P = clampProb(2 * NormalCDF(-math.Abs(d.Z)))
			logBF = savageDickeyLogBF(d.Diff, d.SE, tau)
		case d.Diff != 0:
			// Two constant samples at different values: certain leak.
			d.Z = math.Inf(sign(d.Diff))
			d.P = 0
			logBF = math.Inf(1)
		default:
			// Two identical constants: certain non-leak.
			d.Z, d.P = 0, 1
			logBF = math.Inf(-1)
		}
		d.Leak = Reject(d.P, perTest)
		d.BF10 = math.Exp(logBF)
		d.Posterior = 1 / (1 + math.Exp(-logBF))
		rep.Deciles = append(rep.Deciles, d)

		if d.Leak {
			rep.Leaks++
			rep.Pass = false
		}
		az := math.Abs(d.Z)
		if az > rep.MaxAbsZ {
			rep.MaxAbsZ = az
		}
		if d.Posterior > rep.LeakProbability {
			rep.LeakProbability = d.Posterior
		}
		if az > bestZ {
			bestZ = az
			rep.EffectCycles = d.Diff
			rep.EffectDecile = q
		}
	}
	return rep, nil
}

// CheckQuantileGate splits xs into ordered halves and compares them
// with CompareQuantiles — the sharper, decile-resolved counterpart of
// CheckIID's two-sample KS check. A series whose first and second
// halves differ only above q80 fails here while passing the KS test.
func CheckQuantileGate(xs []float64, opts QuantileGateOptions) (QuantileGateReport, error) {
	o := opts.withDefaults()
	if len(xs) < 2*o.MinN {
		return QuantileGateReport{}, ErrTooFew
	}
	half := len(xs) / 2
	return CompareQuantiles(xs[:half], xs[half:], o)
}

// savageDickeyLogBF computes log BF10 for H1: diff ~ N(0, tau^2)
// against H0: diff = 0, given the observed difference and its standard
// error, via the Savage-Dickey density ratio
// N(diff; 0, tau^2+se^2) / N(diff; 0, se^2). Log space keeps large |z|
// finite until the final exponentiation.
func savageDickeyLogBF(diff, se, tau float64) float64 {
	if tau <= 0 {
		// Degenerate prior: H1 indistinguishable from H0.
		return 0
	}
	// Ratio form of 0.5 log(se^2/(se^2+tau^2)) + diff^2/2 (1/se^2 -
	// 1/(se^2+tau^2)): with r = (tau/se)^2 this is
	// -log1p(r)/2 + z^2/2 * r/(1+r), which survives denormal se and
	// enormous tau where the variance form over/underflows.
	z := diff / se
	if math.IsInf(z, 0) {
		return math.Inf(1)
	}
	t := tau / se
	if t > 1e150 { // r/(1+r) -> 1, log1p(r)/2 -> log(t)
		return 0.5*z*z - math.Log(t)
	}
	r := t * t
	return -0.5*math.Log1p(r) + 0.5*z*z*r/(1+r)
}

// pooledBodySpread returns half the pooled q10-q90 spread, the default
// Bayesian prior scale. Falls back to 1.0 for degenerate (constant)
// pools so the Bayes factor stays defined.
func pooledBodySpread(sortedA, sortedB []float64) float64 {
	pool := make([]float64, 0, len(sortedA)+len(sortedB))
	pool = append(pool, sortedA...)
	pool = append(pool, sortedB...)
	sort.Float64s(pool)
	lo, _, err := hdEstimate(pool, 0.1)
	if err != nil {
		return 1
	}
	hi, _, err := hdEstimate(pool, 0.9)
	if err != nil {
		return 1
	}
	if s := (hi - lo) / 2; s > 0 {
		return s
	}
	return 1
}

// lag1Rho estimates the lag-1 autocorrelation of xs in collection
// order, clamped to [0, 0.99]: negative correlation would shrink the
// standard errors, and the clamp keeps the ESS factor finite.
func lag1Rho(xs []float64) float64 {
	if len(xs) < 8 {
		return 0
	}
	ac, err := Autocorrelation(xs, 1)
	if err != nil || len(ac) == 0 || math.IsNaN(ac[0]) {
		return 0
	}
	switch rho := ac[0]; {
	case rho < 0:
		return 0
	case rho > 0.99:
		return 0.99
	default:
		return rho
	}
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
