package stats

import (
	"fmt"
	"math"
	"sort"
)

// TestResult carries the outcome of a statistical hypothesis test.
type TestResult struct {
	Name      string  // test name for reports
	Statistic float64 // the test statistic value
	PValue    float64 // p-value under the null hypothesis
	Alpha     float64 // significance level used for the verdict
	// Rejected is true if the null hypothesis is rejected at level
	// Alpha, using the convention Reject(PValue, Alpha) — reject iff
	// p <= alpha. Every test in this package applies it uniformly.
	Rejected bool
	DF       int // degrees of freedom, where meaningful
}

// Reject is the package-wide rejection rule: the null hypothesis is
// rejected at significance level alpha iff p <= alpha. The boundary
// case p == alpha rejects, matching the textbook definition under which
// alpha is exactly the rejection probability of a true null (a p-value
// is uniform on [0,1] under the null, so P(p <= alpha) = alpha).
// "Reject at 5% significance" in the reports means this rule with
// alpha = 0.05.
func Reject(p, alpha float64) bool { return p <= alpha }

// String renders the result in the form used by the evaluation tables.
func (t TestResult) String() string {
	verdict := "pass"
	if t.Rejected {
		verdict = "REJECT"
	}
	return fmt.Sprintf("%s: stat=%.4f p=%.4f alpha=%.2f -> %s",
		t.Name, t.Statistic, t.PValue, t.Alpha, verdict)
}

// LjungBox performs the Ljung-Box portmanteau test for independence
// (absence of autocorrelation up to maxLag) at significance level alpha.
// The paper uses it with alpha = 0.05 as the independence half of the
// i.i.d. gate and reports a p-value of 0.83 for TVCA on the randomized
// platform.
//
// Q = n(n+2) * sum_{k=1..h} r_k^2 / (n-k), asymptotically chi-squared
// with h degrees of freedom under the null of independence.
func LjungBox(xs []float64, maxLag int, alpha float64) (TestResult, error) {
	n := len(xs)
	if maxLag < 1 {
		return TestResult{}, ErrDomain
	}
	if n <= maxLag+1 {
		return TestResult{}, ErrTooFew
	}
	r, err := Autocorrelation(xs, maxLag)
	if err != nil {
		return TestResult{}, err
	}
	q := 0.0
	for k := 1; k <= maxLag; k++ {
		q += r[k-1] * r[k-1] / float64(n-k)
	}
	q *= float64(n) * float64(n+2)
	p, err := ChiSquaredSF(q, maxLag)
	if err != nil {
		return TestResult{}, err
	}
	return TestResult{
		Name:      fmt.Sprintf("Ljung-Box(h=%d)", maxLag),
		Statistic: q,
		PValue:    p,
		Alpha:     alpha,
		Rejected:  Reject(p, alpha),
		DF:        maxLag,
	}, nil
}

// DefaultLjungBoxLags returns the customary lag choice min(20, n/4) used
// when the caller has no domain-specific preference.
func DefaultLjungBoxLags(n int) int {
	h := n / 4
	if h > 20 {
		h = 20
	}
	if h < 1 {
		h = 1
	}
	return h
}

// KolmogorovSmirnov2 performs the two-sample Kolmogorov-Smirnov test that
// a and b are drawn from the same distribution, at significance level
// alpha. The paper applies it (alpha = 0.05) to two halves of the
// measurement campaign as the identical-distribution half of the i.i.d.
// gate and reports a p-value of 0.45.
//
// D = sup_x |F_a(x) - F_b(x)|; the p-value uses the Kolmogorov asymptotic
// distribution with the Stephens small-sample correction
// lambda = (sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D, ne = na*nb/(na+nb).
func KolmogorovSmirnov2(a, b []float64, alpha float64) (TestResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return TestResult{}, ErrEmpty
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	na, nb := len(sa), len(sb)
	var d float64
	i, j := 0, 0
	for i < na && j < nb {
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		// Advance both past ties with x.
		for i < na && sa[i] <= x {
			i++
		}
		for j < nb && sb[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if diff > d {
			d = diff
		}
	}
	ne := float64(na) * float64(nb) / float64(na+nb)
	sq := math.Sqrt(ne)
	lambda := (sq + 0.12 + 0.11/sq) * d
	p := KolmogorovSF(lambda)
	return TestResult{
		Name:      "Kolmogorov-Smirnov(2-sample)",
		Statistic: d,
		PValue:    p,
		Alpha:     alpha,
		Rejected:  Reject(p, alpha),
	}, nil
}

// IIDReport is the combined i.i.d. gate of the MBPTA process: the sample
// passes when neither test rejects at the chosen significance level.
type IIDReport struct {
	Independence TestResult // Ljung-Box on the full series
	IdentDist    TestResult // two-sample KS on the two halves
	Pass         bool
}

// String renders the report in the form of the paper's §III table.
func (r IIDReport) String() string {
	verdict := "i.i.d. gate PASSED (MBPTA enabled)"
	if !r.Pass {
		verdict = "i.i.d. gate FAILED (MBPTA not applicable)"
	}
	return fmt.Sprintf("%s\n%s\n%s", r.Independence, r.IdentDist, verdict)
}

// CheckIID runs the paper's i.i.d. gate on an execution-time series:
// Ljung-Box on the ordered series and two-sample KS between the first and
// second halves, both at level alpha (the paper uses 0.05).
func CheckIID(xs []float64, alpha float64) (IIDReport, error) {
	if len(xs) < 8 {
		return IIDReport{}, ErrTooFew
	}
	lb, err := LjungBox(xs, DefaultLjungBoxLags(len(xs)), alpha)
	if err != nil {
		return IIDReport{}, fmt.Errorf("independence test: %w", err)
	}
	half := len(xs) / 2
	ks, err := KolmogorovSmirnov2(xs[:half], xs[half:], alpha)
	if err != nil {
		return IIDReport{}, fmt.Errorf("identical-distribution test: %w", err)
	}
	return IIDReport{
		Independence: lb,
		IdentDist:    ks,
		Pass:         !lb.Rejected && !ks.Rejected,
	}, nil
}

// AndersonDarling performs the one-sample Anderson-Darling test of xs
// against a fully specified continuous CDF. It is more tail-sensitive
// than KS and is provided as an extension diagnostic for checking the
// fitted Gumbel against the block maxima.
//
// A^2 = -n - (1/n) sum_{i=1..n} (2i-1) [ln F(x_(i)) + ln(1-F(x_(n+1-i)))].
// The p-value uses the asymptotic case-0 approximation.
func AndersonDarling(xs []float64, cdf func(float64) float64, alpha float64) (TestResult, error) {
	n := len(xs)
	if n < 5 {
		return TestResult{}, ErrTooFew
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	sum := 0.0
	for i := 0; i < n; i++ {
		fi := clampProb(cdf(s[i]))
		fni := clampProb(cdf(s[n-1-i]))
		sum += float64(2*i+1) * (math.Log(fi) + math.Log(1-fni))
	}
	a2 := -float64(n) - sum/float64(n)
	p := adPValue(a2)
	return TestResult{
		Name:      "Anderson-Darling",
		Statistic: a2,
		PValue:    p,
		Alpha:     alpha,
		Rejected:  Reject(p, alpha),
	}, nil
}

func clampProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// adPValue approximates the asymptotic p-value for the case-0 (fully
// specified distribution) Anderson-Darling statistic using Marsaglia &
// Marsaglia's adinf approximation (JSS 2004), accurate to ~4 decimal
// places over the practically relevant range.
func adPValue(a2 float64) float64 {
	if a2 <= 0 {
		return 1
	}
	var cdf float64
	if a2 < 2 {
		cdf = math.Exp(-1.2337141/a2) / math.Sqrt(a2) *
			(2.00012 + (0.247105-(0.0649821-(0.0347962-(0.011672-0.00168691*a2)*a2)*a2)*a2)*a2)
	} else {
		cdf = math.Exp(-math.Exp(1.0776 - (2.30695-(0.43424-(0.082433-(0.008056-0.0003146*a2)*a2)*a2)*a2)*a2))
	}
	p := 1 - cdf
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// RunsTest performs the Wald-Wolfowitz runs test for randomness around
// the sample median — an additional, cheaper independence diagnostic used
// alongside Ljung-Box.
func RunsTest(xs []float64, alpha float64) (TestResult, error) {
	if len(xs) < 10 {
		return TestResult{}, ErrTooFew
	}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		return TestResult{}, err
	}
	// Classify each observation; drop exact median ties.
	var signs []bool
	for _, x := range xs {
		if x == med {
			continue
		}
		signs = append(signs, x > med)
	}
	if len(signs) < 10 {
		return TestResult{}, ErrTooFew
	}
	n1, n2, runs := 0, 0, 1
	for i, s := range signs {
		if s {
			n1++
		} else {
			n2++
		}
		if i > 0 && signs[i] != signs[i-1] {
			runs++
		}
	}
	if n1 == 0 || n2 == 0 {
		return TestResult{}, ErrTooFew
	}
	fn1, fn2 := float64(n1), float64(n2)
	mu := 2*fn1*fn2/(fn1+fn2) + 1
	sigma2 := 2 * fn1 * fn2 * (2*fn1*fn2 - fn1 - fn2) /
		((fn1 + fn2) * (fn1 + fn2) * (fn1 + fn2 - 1))
	z := (float64(runs) - mu) / math.Sqrt(sigma2)
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{
		Name:      "Wald-Wolfowitz runs",
		Statistic: z,
		PValue:    p,
		Alpha:     alpha,
		Rejected:  Reject(p, alpha),
	}, nil
}
