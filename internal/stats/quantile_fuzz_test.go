package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// Fuzz targets for the quantile estimator and the two-sample gate:
// arbitrary byte soup decoded as float64 samples (NaN, Inf, ties,
// denormals, tiny n all reachable) must never panic, and every
// successful result must keep its interval invariants — lo <= point
// <= hi for estimates, coherent aggregate counters for reports. Seed
// corpora live under testdata/fuzz/; `make fuzz` runs both targets.

// fuzzFloats decodes data as consecutive big-endian float64 words.
func fuzzFloats(data []byte) []float64 {
	out := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		out = append(out, math.Float64frombits(binary.BigEndian.Uint64(data[:8])))
		data = data[8:]
	}
	return out
}

func FuzzEstimateQuantile(f *testing.F) {
	seed := func(xs []float64, q, conf float64) {
		buf := make([]byte, 8*len(xs))
		for i, v := range xs {
			binary.BigEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		f.Add(buf, q, conf)
	}
	seed(nil, 0.5, 0.95)
	seed([]float64{1}, 0.5, 0.95)
	seed([]float64{3, 1, 2, 2, 2, 1e300, -1e300}, 0.9, 0.99)
	seed([]float64{math.NaN(), 1, 2}, 0.5, 0.95)
	seed([]float64{math.Inf(1), 0}, 0.1, 0.5)
	f.Fuzz(func(t *testing.T, data []byte, q, conf float64) {
		xs := fuzzFloats(data)
		e, err := EstimateQuantile(xs, q, conf)
		if err != nil {
			return
		}
		if e.Q != q {
			t.Fatalf("echoed level %v != %v", e.Q, q)
		}
		if math.IsNaN(e.Point) || math.IsNaN(e.SE) || e.SE < 0 {
			t.Fatalf("degenerate estimate %+v for %v", e, xs)
		}
		if !(e.Lo <= e.Point && e.Point <= e.Hi) {
			t.Fatalf("CI unordered: %+v for %v", e, xs)
		}
	})
}

func FuzzCompareQuantiles(f *testing.F) {
	seed := func(a, b []float64, alpha float64) {
		buf := make([]byte, 8+8*len(a)+8*len(b))
		binary.BigEndian.PutUint64(buf, uint64(len(a)))
		for i, v := range a {
			binary.BigEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
		}
		for i, v := range b {
			binary.BigEndian.PutUint64(buf[8+8*len(a)+8*i:], math.Float64bits(v))
		}
		f.Add(buf, alpha)
	}
	flat := make([]float64, 40)
	ramp := make([]float64, 40)
	for i := range flat {
		flat[i] = 5
		ramp[i] = float64(i % 17)
	}
	seed(flat, flat, 0.01)
	seed(flat, ramp, 0.05)
	seed(ramp[:16], ramp[:16], 0.5)
	seed(nil, nil, 0.01)
	f.Fuzz(func(t *testing.T, data []byte, alpha float64) {
		if len(data) < 8 {
			return
		}
		xs := fuzzFloats(data[8:])
		split := int(binary.BigEndian.Uint64(data[:8]) % uint64(len(xs)+1))
		rep, err := CompareQuantiles(xs[:split], xs[split:], QuantileGateOptions{Alpha: alpha})
		if err != nil {
			return
		}
		leaks := 0
		maxPost := 0.0
		for _, d := range rep.Deciles {
			if d.Leak {
				leaks++
			}
			if math.IsNaN(d.P) || d.P < 0 || d.P > 1 {
				t.Fatalf("q%.0f: p-value %v out of [0,1]", d.Q*100, d.P)
			}
			if math.IsNaN(d.Posterior) || d.Posterior < 0 || d.Posterior > 1 {
				t.Fatalf("q%.0f: posterior %v out of [0,1]", d.Q*100, d.Posterior)
			}
			if d.Posterior > maxPost {
				maxPost = d.Posterior
			}
			if !(d.Lo <= d.Diff && d.Diff <= d.Hi) {
				t.Fatalf("q%.0f: diff CI unordered: %+v", d.Q*100, d)
			}
			if !(d.A.Lo <= d.A.Point && d.A.Point <= d.A.Hi) || !(d.B.Lo <= d.B.Point && d.B.Point <= d.B.Hi) {
				t.Fatalf("q%.0f: estimate CI unordered: %+v", d.Q*100, d)
			}
		}
		if leaks != rep.Leaks || rep.Pass != (leaks == 0) {
			t.Fatalf("aggregate mismatch: %d leak flags, Leaks=%d, Pass=%v", leaks, rep.Leaks, rep.Pass)
		}
		if rep.LeakProbability != maxPost {
			t.Fatalf("LeakProbability %v != max posterior %v", rep.LeakProbability, maxPost)
		}
	})
}
