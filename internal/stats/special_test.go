package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.10g, want %.10g (tol %g)", name, got, want, tol)
	}
}

func TestRegularizedGammaPKnownValues(t *testing.T) {
	// Reference values computed with scipy.special.gammainc.
	cases := []struct{ a, x, want float64 }{
		{1, 1, 0.6321205588285577}, // 1 - e^-1
		{0.5, 0.5, 0.6826894921370859},
		{2, 2, 0.5939941502901616},
		{5, 1, 0.003659846827343713},
		{5, 10, 0.9707473119230389},
		{10, 10, 0.5420702855281478},
		{0.5, 2, 0.9544997361036416},
	}
	for _, c := range cases {
		got, err := RegularizedGammaP(c.a, c.x)
		if err != nil {
			t.Fatalf("P(%g,%g): %v", c.a, c.x, err)
		}
		approx(t, "P", got, c.want, 1e-10)
	}
}

func TestRegularizedGammaEdges(t *testing.T) {
	if p, err := RegularizedGammaP(3, 0); err != nil || p != 0 {
		t.Errorf("P(3,0) = %v,%v want 0,nil", p, err)
	}
	if _, err := RegularizedGammaP(0, 1); err == nil {
		t.Error("P(0,1) accepted, want domain error")
	}
	if _, err := RegularizedGammaP(1, -1); err == nil {
		t.Error("P(1,-1) accepted, want domain error")
	}
	if _, err := RegularizedGammaP(math.NaN(), 1); err == nil {
		t.Error("P(NaN,1) accepted, want domain error")
	}
}

func TestGammaPQComplementary(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 50))
		x = math.Abs(math.Mod(x, 100))
		p, err1 := RegularizedGammaP(a, x)
		q, err2 := RegularizedGammaQ(a, x)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p+q-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGammaPMonotoneInX(t *testing.T) {
	prev := -1.0
	for x := 0.0; x <= 30; x += 0.25 {
		p, err := RegularizedGammaP(4, x)
		if err != nil {
			t.Fatal(err)
		}
		if p < prev-1e-14 {
			t.Fatalf("P(4,x) not monotone at x=%g: %g < %g", x, p, prev)
		}
		prev = p
	}
	if prev < 0.999999 {
		t.Errorf("P(4,30) = %g, want ~1", prev)
	}
}

func TestChiSquaredCDFKnownValues(t *testing.T) {
	// scipy.stats.chi2.cdf reference values.
	cases := []struct {
		x    float64
		k    int
		want float64
	}{
		{3.841458820694124, 1, 0.95},
		{5.991464547107979, 2, 0.95},
		{18.307038053275146, 10, 0.95},
		{31.410432844230918, 20, 0.95},
		{10, 10, 0.5595067149347875},
	}
	for _, c := range cases {
		got, err := ChiSquaredCDF(c.x, c.k)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "chi2cdf", got, c.want, 1e-9)
	}
}

func TestChiSquaredSFComplement(t *testing.T) {
	for _, k := range []int{1, 2, 5, 10, 20} {
		for x := 0.5; x < 40; x += 3.7 {
			cdf, _ := ChiSquaredCDF(x, k)
			sf, _ := ChiSquaredSF(x, k)
			approx(t, "cdf+sf", cdf+sf, 1, 1e-12)
		}
	}
	if sf, _ := ChiSquaredSF(-1, 3); sf != 1 {
		t.Errorf("SF(-1) = %v, want 1", sf)
	}
	if _, err := ChiSquaredSF(1, 0); err == nil {
		t.Error("SF with k=0 accepted")
	}
}

func TestKolmogorovSFKnownValues(t *testing.T) {
	// Reference values from direct high-precision evaluation of the
	// defining series Q(l) = 2 sum (-1)^{j-1} exp(-2 j^2 l^2).
	cases := []struct{ lambda, want float64 }{
		{0.5, 0.9639452436648751},
		{1.0, 0.2699996716773546},
		{1.36, 0.0494858767553779}, // near the classic 5% critical value
		{1.63, 0.0098463648884865},
		{2.0, 0.0006709252557797},
	}
	for _, c := range cases {
		approx(t, "kolmogorovSF", KolmogorovSF(c.lambda), c.want, 1e-6)
	}
}

func TestKolmogorovSFLimits(t *testing.T) {
	if got := KolmogorovSF(0); got != 1 {
		t.Errorf("SF(0) = %v, want 1", got)
	}
	if got := KolmogorovSF(-1); got != 1 {
		t.Errorf("SF(-1) = %v, want 1", got)
	}
	if got := KolmogorovSF(10); got > 1e-50 {
		t.Errorf("SF(10) = %v, want ~0", got)
	}
	// Continuity across the small/large lambda switch at 0.4.
	lo, hi := KolmogorovSF(0.399999), KolmogorovSF(0.400001)
	if math.Abs(lo-hi) > 1e-6 {
		t.Errorf("discontinuity at switch point: %g vs %g", lo, hi)
	}
}

func TestKolmogorovSFMonotone(t *testing.T) {
	prev := 1.0
	for l := 0.01; l < 3; l += 0.01 {
		v := KolmogorovSF(l)
		if v > prev+1e-12 {
			t.Fatalf("SF not monotone at lambda=%g", l)
		}
		prev = v
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	approx(t, "Phi(0)", NormalCDF(0), 0.5, 1e-15)
	approx(t, "Phi(1.96)", NormalCDF(1.959963984540054), 0.975, 1e-12)
	approx(t, "Phi(-1.96)", NormalCDF(-1.959963984540054), 0.025, 1e-12)
	approx(t, "Phi(3)", NormalCDF(3), 0.9986501019683699, 1e-12)
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.025, 0.5, 0.975, 0.999, 1 - 1e-9} {
		x, err := NormalQuantile(p)
		if err != nil {
			t.Fatalf("quantile(%g): %v", p, err)
		}
		approx(t, "Phi(Phi^-1(p))", NormalCDF(x), p, 1e-12)
	}
}

func TestNormalQuantileDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NormalQuantile(p); err == nil {
			t.Errorf("NormalQuantile(%v) accepted", p)
		}
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	x, _ := NormalQuantile(0.975)
	approx(t, "z(0.975)", x, 1.959963984540054, 1e-9)
	x, _ = NormalQuantile(0.5)
	approx(t, "z(0.5)", x, 0, 1e-12)
	x, _ = NormalQuantile(0.9999999)
	approx(t, "z(0.9999999)", x, 5.199337582290661, 1e-7)
}
