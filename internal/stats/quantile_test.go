package stats

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRegularizedIncompleteBeta(t *testing.T) {
	cases := []struct {
		x, a, b, want float64
	}{
		{0, 2, 3, 0},
		{1, 2, 3, 1},
		{0.5, 1, 1, 0.5},   // Beta(1,1) is uniform
		{0.25, 1, 1, 0.25}, // ditto
		{0.5, 3, 3, 0.5},   // symmetric at the midpoint
		// I_x(1, b) = 1 - (1-x)^b.
		{0.3, 1, 4, 1 - math.Pow(0.7, 4)},
		// I_x(a, 1) = x^a.
		{0.3, 4, 1, math.Pow(0.3, 4)},
		// I_x(2, 2) = x^2 (3 - 2x).
		{0.7, 2, 2, 0.7 * 0.7 * (3 - 2*0.7)},
	}
	for _, c := range cases {
		got, err := RegularizedIncompleteBeta(c.x, c.a, c.b)
		if err != nil {
			t.Fatalf("I_%g(%g,%g): %v", c.x, c.a, c.b, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("I_%g(%g,%g) = %.15f, want %.15f", c.x, c.a, c.b, got, c.want)
		}
	}
	// Symmetry I_x(a,b) = 1 - I_{1-x}(b,a) away from the tail switch.
	p, _ := RegularizedIncompleteBeta(0.37, 5.5, 2.25)
	q, _ := RegularizedIncompleteBeta(0.63, 2.25, 5.5)
	if math.Abs(p+q-1) > 1e-12 {
		t.Errorf("symmetry violated: %.15f + %.15f != 1", p, q)
	}
	for _, bad := range []struct{ x, a, b float64 }{
		{-0.1, 1, 1}, {1.1, 1, 1}, {0.5, 0, 1}, {0.5, 1, -2}, {math.NaN(), 1, 1}, {0.5, math.NaN(), 1},
	} {
		if _, err := RegularizedIncompleteBeta(bad.x, bad.a, bad.b); !errors.Is(err, ErrDomain) {
			t.Errorf("I_%g(%g,%g): want ErrDomain, got %v", bad.x, bad.a, bad.b, err)
		}
	}
}

func TestEstimateQuantileBasics(t *testing.T) {
	if _, err := EstimateQuantile(nil, 0.5, 0.95); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: want ErrEmpty, got %v", err)
	}
	for _, bad := range []struct{ q, conf float64 }{
		{0, 0.95}, {1, 0.95}, {math.NaN(), 0.95}, {0.5, 0}, {0.5, 1}, {0.5, math.NaN()},
	} {
		if _, err := EstimateQuantile([]float64{1, 2, 3}, bad.q, bad.conf); !errors.Is(err, ErrDomain) {
			t.Errorf("q=%g conf=%g: want ErrDomain, got %v", bad.q, bad.conf, err)
		}
	}
	if _, err := EstimateQuantile([]float64{1, math.NaN(), 3}, 0.5, 0.95); !errors.Is(err, ErrDomain) {
		t.Errorf("NaN input: want ErrDomain, got %v", err)
	}
	if _, err := EstimateQuantile([]float64{1, math.Inf(1)}, 0.5, 0.95); !errors.Is(err, ErrDomain) {
		t.Errorf("Inf input: want ErrDomain, got %v", err)
	}

	// Single observation: the estimate is the observation, SE 0.
	e, err := EstimateQuantile([]float64{7}, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if e.Point != 7 || e.SE != 0 || e.Lo != 7 || e.Hi != 7 {
		t.Errorf("n=1: got %+v", e)
	}

	// Median of a symmetric sample is the center; CI stays ordered.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	e, err = EstimateQuantile(xs, 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Point-5) > 1e-9 {
		t.Errorf("median of 1..9 = %.6f, want 5", e.Point)
	}
	if !(e.Lo <= e.Point && e.Point <= e.Hi) {
		t.Errorf("CI unordered: %+v", e)
	}
	if e.SE <= 0 {
		t.Errorf("SE = %g, want > 0", e.SE)
	}
}

// On a large uniform sample the Harrell-Davis estimate must track the
// true quantile closely at every decile.
func TestEstimateQuantileUniformAccuracy(t *testing.T) {
	src := rng.NewXoroshiro128(99)
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = rng.Float64(src)
	}
	for q := 0.1; q < 0.95; q += 0.1 {
		e, err := EstimateQuantile(xs, q, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(e.Point-q) > 0.03 {
			t.Errorf("q%.0f: estimate %.4f too far from %.2f", q*100, e.Point, q)
		}
		if !(e.Lo <= e.Point && e.Point <= e.Hi) {
			t.Errorf("q%.0f: CI unordered: %+v", q*100, e)
		}
	}
}

func TestCompareQuantilesIdentical(t *testing.T) {
	src := rng.NewXoroshiro128(7)
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = rng.Float64(src)
	}
	for i := range b {
		b[i] = rng.Float64(src)
	}
	rep, err := CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.Leaks != 0 {
		t.Errorf("identical distributions: %s", rep)
	}
	if rep.LeakProbability > 0.5 {
		t.Errorf("identical distributions: posterior leak probability %.3f > 0.5", rep.LeakProbability)
	}
	if len(rep.Deciles) != 9 {
		t.Fatalf("want 9 deciles, got %d", len(rep.Deciles))
	}
	for _, d := range rep.Deciles {
		if !(d.Lo <= d.Diff && d.Diff <= d.Hi) {
			t.Errorf("q%.0f: diff CI unordered: %+v", d.Q*100, d)
		}
		if !(d.A.Lo <= d.A.Point && d.A.Point <= d.A.Hi) {
			t.Errorf("q%.0f: sample-A CI unordered", d.Q*100)
		}
	}
}

func TestCompareQuantilesShift(t *testing.T) {
	src := rng.NewXoroshiro128(8)
	a := make([]float64, 600)
	b := make([]float64, 600)
	const shift = 500.0
	for i := range a {
		a[i] = 10000 + 100*rng.Float64(src)
	}
	for i := range b {
		b[i] = 10000 + 100*rng.Float64(src) + shift
	}
	rep, err := CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Leaks != 9 {
		t.Errorf("gross shift: %s", rep)
	}
	if math.Abs(rep.EffectCycles-shift) > 50 {
		t.Errorf("effect size %.0f, want ~%.0f", rep.EffectCycles, shift)
	}
	if rep.LeakProbability < 0.99 {
		t.Errorf("leak probability %.3f, want ~1", rep.LeakProbability)
	}
}

// An effect confined above q80 must leak only at the upper deciles.
func TestCompareQuantilesUpperTailOnly(t *testing.T) {
	src := rng.NewXoroshiro128(9)
	n := 2000
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64(src)
	}
	for i := range b {
		v := rng.Float64(src)
		if v > 0.85 {
			v += 0.08
		}
		b[i] = v
	}
	rep, err := CompareQuantiles(a, b, QuantileGateOptions{Alpha: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Fatalf("upper-tail effect not detected: %s", rep)
	}
	for _, d := range rep.Deciles {
		if d.Q <= 0.7 && d.Leak {
			t.Errorf("q%.0f flagged despite the effect living above q85", d.Q*100)
		}
		if d.Q >= 0.9 && !d.Leak {
			t.Errorf("q%.0f not flagged despite a +0.08 shift above q85", d.Q*100)
		}
	}
	if rep.EffectDecile < 0.8 {
		t.Errorf("most significant decile %.1f, want >= 0.8", rep.EffectDecile)
	}
}

func TestCompareQuantilesConstantSamples(t *testing.T) {
	a := make([]float64, 50)
	b := make([]float64, 50)
	for i := range a {
		a[i] = 100
		b[i] = 100
	}
	rep, err := CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass || rep.LeakProbability > 0.01 {
		t.Errorf("identical constants: %s", rep)
	}

	for i := range b {
		b[i] = 120
	}
	rep, err = CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.Leaks != 9 {
		t.Errorf("distinct constants: %s", rep)
	}
	if rep.LeakProbability < 0.99 {
		t.Errorf("distinct constants: leak probability %.3f, want ~1", rep.LeakProbability)
	}
	if math.Abs(rep.EffectCycles-20) > 1e-6 {
		t.Errorf("distinct constants: effect %.9f, want 20", rep.EffectCycles)
	}
}

func TestCompareQuantilesErrors(t *testing.T) {
	ok := make([]float64, 40)
	for i := range ok {
		ok[i] = float64(i)
	}
	if _, err := CompareQuantiles(ok[:5], ok, QuantileGateOptions{}); !errors.Is(err, ErrTooFew) {
		t.Errorf("tiny sample: want ErrTooFew, got %v", err)
	}
	bad := append([]float64(nil), ok...)
	bad[3] = math.NaN()
	if _, err := CompareQuantiles(bad, ok, QuantileGateOptions{}); !errors.Is(err, ErrDomain) {
		t.Errorf("NaN: want ErrDomain, got %v", err)
	}
	if _, err := CompareQuantiles(ok, ok, QuantileGateOptions{Alpha: 1.5}); !errors.Is(err, ErrDomain) {
		t.Errorf("alpha out of range: want ErrDomain, got %v", err)
	}
	if _, err := CompareQuantiles(ok, ok, QuantileGateOptions{Deciles: []float64{0.5, 2}}); !errors.Is(err, ErrDomain) {
		t.Errorf("decile out of range: want ErrDomain, got %v", err)
	}
	if _, err := CheckQuantileGate(ok[:20], QuantileGateOptions{}); !errors.Is(err, ErrTooFew) {
		t.Errorf("short series: want ErrTooFew, got %v", err)
	}
}

func TestCheckQuantileGateHalves(t *testing.T) {
	src := rng.NewXoroshiro128(12)
	xs := make([]float64, 800)
	for i := range xs {
		xs[i] = rng.Float64(src)
	}
	rep, err := CheckQuantileGate(xs, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("stationary series failed the gate: %s", rep)
	}
	if rep.NA != 400 || rep.NB != 400 {
		t.Errorf("halves %d/%d, want 400/400", rep.NA, rep.NB)
	}

	// Second half shifted: every decile differs.
	for i := 400; i < 800; i++ {
		xs[i] += 1
	}
	rep, err = CheckQuantileGate(xs, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pass {
		t.Errorf("shifted second half passed the gate: %s", rep)
	}
}

func TestQuantileGateFingerprint(t *testing.T) {
	src := rng.NewXoroshiro128(13)
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = rng.Float64(src)
		b[i] = rng.Float64(src)
	}
	r1, err := CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Error("same inputs produced different fingerprints")
	}
	b[0] += 1e-9
	r3, err := CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Fingerprint() == r3.Fingerprint() {
		t.Error("perturbed input produced an identical fingerprint")
	}
	if s := r1.String(); s == "" {
		t.Error("empty String()")
	}
}
