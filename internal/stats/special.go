// Package stats implements the statistical substrate required by MBPTA:
// descriptive statistics, empirical distributions, the Ljung-Box
// independence test and the two-sample Kolmogorov-Smirnov
// identical-distribution test used as the i.i.d. gate in the paper, plus
// the special functions those tests need. Everything is stdlib-only.
package stats

import (
	"errors"
	"math"
)

// ErrDomain is returned when a special-function argument is outside the
// supported domain.
var ErrDomain = errors.New("stats: argument outside function domain")

// LogGamma returns the natural logarithm of the absolute value of the
// Gamma function, via the Lanczos approximation (g=7, n=9 coefficients).
// Accuracy is ~1e-13 over the positive reals, ample for p-values.
func LogGamma(x float64) float64 {
	// math.Lgamma exists in the stdlib; we delegate but keep the wrapper
	// so the rest of the package reads in domain terms.
	v, _ := math.Lgamma(x)
	return v
}

// RegularizedGammaP computes P(a,x) = gamma(a,x)/Gamma(a), the regularized
// lower incomplete gamma function, using the series expansion for
// x < a+1 and the continued fraction for x >= a+1 (Numerical Recipes
// scheme). It is the CDF of the Gamma(a,1) distribution and underlies the
// chi-squared CDF used by the Ljung-Box test.
func RegularizedGammaP(a, x float64) (float64, error) {
	if a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x) {
		return 0, ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if x < a+1 {
		return gammaSeries(a, x), nil
	}
	return 1 - gammaContinuedFraction(a, x), nil
}

// RegularizedGammaQ computes Q(a,x) = 1 - P(a,x).
func RegularizedGammaQ(a, x float64) (float64, error) {
	p, err := RegularizedGammaP(a, x)
	if err != nil {
		return 0, err
	}
	return 1 - p, nil
}

const (
	gammaEps     = 1e-15
	gammaMaxIter = 500
)

func gammaSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LogGamma(a))
}

func gammaContinuedFraction(a, x float64) float64 {
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-LogGamma(a)) * h
}

// ChiSquaredCDF returns P(X <= x) for a chi-squared variable with k
// degrees of freedom.
func ChiSquaredCDF(x float64, k int) (float64, error) {
	if k <= 0 {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 0, nil
	}
	return RegularizedGammaP(float64(k)/2, x/2)
}

// ChiSquaredSF returns the survival function P(X > x) for a chi-squared
// variable with k degrees of freedom — the p-value of an upper-tail
// chi-squared test such as Ljung-Box.
func ChiSquaredSF(x float64, k int) (float64, error) {
	if k <= 0 {
		return 0, ErrDomain
	}
	if x <= 0 {
		return 1, nil
	}
	return RegularizedGammaQ(float64(k)/2, x/2)
}

// KolmogorovSF returns Q(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2
// lambda^2), the survival function of the Kolmogorov distribution. It is
// the asymptotic p-value of the (two-sample) KS statistic after the
// effective-sample-size scaling.
func KolmogorovSF(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	// For large lambda the series converges almost immediately; for small
	// lambda, use the dual (Jacobi theta) expansion for accuracy.
	if lambda < 0.4 {
		// Q = 1 - sqrt(2 pi)/lambda * sum exp(-(2j-1)^2 pi^2 / (8 lambda^2))
		sum := 0.0
		for j := 1; j <= 20; j++ {
			t := float64(2*j-1) * math.Pi / lambda
			term := math.Exp(-t * t / 8)
			sum += term
			if term < 1e-18 {
				break
			}
		}
		return 1 - math.Sqrt(2*math.Pi)/lambda*sum
	}
	sum := 0.0
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := math.Exp(-2 * float64(j*j) * lambda * lambda)
		sum += sign * term
		sign = -sign
		if term < 1e-18 {
			break
		}
	}
	q := 2 * sum
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return q
}

// Erf is the error function (delegates to math.Erf; kept for API symmetry
// with the other special functions used by the distributions).
func Erf(x float64) float64 { return math.Erf(x) }

// NormalCDF returns the standard normal CDF Phi(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Phi^{-1}(p) for p in (0,1), using the
// Acklam/Wichura rational approximation refined by one Halley step.
// Accuracy ~1e-15.
func NormalQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, ErrDomain
	}
	// Acklam coefficients.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// RegularizedIncompleteBeta computes I_x(a, b), the regularized
// incomplete beta function. It is the CDF of the Beta(a, b)
// distribution at x and supplies the Harrell-Davis quantile-estimator
// weights. Continued-fraction evaluation (Lentz), switching tails at
// the symmetry point so the fraction always converges quickly.
// Accuracy ~1e-12 over a, b <= 1e6.
func RegularizedIncompleteBeta(x, a, b float64) (float64, error) {
	if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) || x < 0 || x > 1 || a <= 0 || b <= 0 {
		return 0, ErrDomain
	}
	if x == 0 {
		return 0, nil
	}
	if x == 1 {
		return 1, nil
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)) in log space.
	lbeta := LogGamma(a+b) - LogGamma(a) - LogGamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log1p(-x))
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(x, a, b) / a, nil
	}
	return 1 - front*betaContinuedFraction(1-x, b, a)/b, nil
}

// betaContinuedFraction evaluates the continued fraction for the
// incomplete beta function by the modified Lentz method (same idiom as
// gammaContinuedFraction).
func betaContinuedFraction(x, a, b float64) float64 {
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= gammaMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return h
}
