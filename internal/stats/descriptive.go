package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// ErrTooFew is returned when a sample is too small for the requested
// statistic (e.g. variance of a single point, Ljung-Box with fewer
// observations than lags).
var ErrTooFew = errors.New("stats: too few observations")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	// Kahan summation: campaigns sum millions of cycle counts and naive
	// summation loses low-order bits that matter for variance estimates.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs)), nil
}

// Variance returns the unbiased (n-1) sample variance.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrTooFew
	}
	m, _ := Mean(xs)
	var sum, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Skewness returns the adjusted Fisher-Pearson sample skewness.
func Skewness(xs []float64) (float64, error) {
	n := float64(len(xs))
	if len(xs) < 3 {
		return 0, ErrTooFew
	}
	m, _ := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0, nil
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs — the high-watermark (HWM) in
// MBTA terminology.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, ErrDomain
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}

// Summary bundles the descriptive statistics reported for an
// execution-time sample.
type Summary struct {
	N                int
	Mean, StdDev     float64
	Min, Max         float64
	P50, P90, P99    float64
	CoefficientOfVar float64 // StdDev / Mean
	Skew             float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	var s Summary
	s.N = len(xs)
	s.Mean, _ = Mean(xs)
	if len(xs) >= 2 {
		s.StdDev, _ = StdDev(xs)
	}
	s.Min, _ = Min(xs)
	s.Max, _ = Max(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = quantileSorted(sorted, 0.50)
	s.P90 = quantileSorted(sorted, 0.90)
	s.P99 = quantileSorted(sorted, 0.99)
	if s.Mean != 0 {
		s.CoefficientOfVar = s.StdDev / s.Mean
	}
	if len(xs) >= 3 {
		s.Skew, _ = Skewness(xs)
	}
	return s, nil
}

// Autocorrelation returns the sample autocorrelation coefficients
// r_1..r_maxLag of xs. These feed the Ljung-Box statistic.
func Autocorrelation(xs []float64, maxLag int) ([]float64, error) {
	n := len(xs)
	if n == 0 {
		return nil, ErrEmpty
	}
	if maxLag < 1 || maxLag >= n {
		return nil, ErrTooFew
	}
	m, _ := Mean(xs)
	denom := 0.0
	for _, x := range xs {
		d := x - m
		denom += d * d
	}
	r := make([]float64, maxLag)
	if denom == 0 {
		// A constant series: autocorrelation is undefined; by convention
		// report zeros (a constant series carries no linear dependence
		// information and Ljung-Box on it degenerates).
		return r, nil
	}
	for k := 1; k <= maxLag; k++ {
		num := 0.0
		for t := 0; t < n-k; t++ {
			num += (xs[t] - m) * (xs[t+k] - m)
		}
		r[k-1] = num / denom
	}
	return r, nil
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (which is copied and sorted).
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// At returns F_n(x) = (#observations <= x) / n.
func (e *ECDF) At(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// we need strictly greater, so search for the insertion point after
	// equal elements.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// ExceedanceAt returns 1 - F_n(x): the empirical probability of observing
// a value strictly greater than x. This is the Y-axis of the paper's
// Figure 2 for the observed sample.
func (e *ECDF) ExceedanceAt(x float64) float64 { return 1 - e.At(x) }

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Sorted exposes the underlying sorted sample (read-only by convention).
func (e *ECDF) Sorted() []float64 { return e.sorted }

// Quantile returns the q-quantile of the sample.
func (e *ECDF) Quantile(q float64) (float64, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, ErrDomain
	}
	return quantileSorted(e.sorted, q), nil
}

// Histogram bins a sample into nbins equal-width buckets over [min,max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Width  float64
	Total  int
}

// NewHistogram bins xs into nbins buckets.
func NewHistogram(xs []float64, nbins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if nbins < 1 {
		return nil, ErrDomain
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins), Total: len(xs)}
	if hi == lo {
		h.Width = 1
		h.Counts[0] = len(xs)
		return h, nil
	}
	h.Width = (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / h.Width)
		if i >= nbins {
			i = nbins - 1
		}
		h.Counts[i]++
	}
	return h, nil
}
