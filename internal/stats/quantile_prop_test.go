package stats

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/rng"
)

// Property tests for the quantile gate: the verdict must be invariant
// under common affine maps of both samples (cycles vs nanoseconds vs
// normalized units must not change what leaks), monotone in the
// injected effect size, and deterministic regardless of GOMAXPROCS or
// concurrent use — the PR-2 AnalyzeByPath bug class.

func propSamples(seed uint64, n int) ([]float64, []float64) {
	src := rng.NewXoroshiro128(seed)
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 20000 + 300*(rng.Float64(src)-0.5)
	}
	for i := range b {
		v := 20000 + 300*(rng.Float64(src)-0.5)
		if v > 20075 { // upper-quartile effect, so some deciles leak
			v += 60
		}
		b[i] = v
	}
	return a, b
}

func affine(xs []float64, scale, shift float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = scale*v + shift
	}
	return out
}

// TestQuantileGateAffineInvariance: applying the same positive affine
// map to both samples must preserve every verdict bit (Pass, per-decile
// Leak) and the z statistics to rounding level — z is dimensionless.
func TestQuantileGateAffineInvariance(t *testing.T) {
	a, b := propSamples(0x41FF, 600)
	base, err := CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Pass || base.Leaks == 0 {
		t.Fatalf("baseline must leak for the invariance check to bite: %s", base)
	}
	for _, m := range []struct{ scale, shift float64 }{
		{3, 0}, {1, 1e6}, {0.25, -5000}, {1e3, 1e7},
	} {
		got, err := CompareQuantiles(affine(a, m.scale, m.shift), affine(b, m.scale, m.shift), QuantileGateOptions{})
		if err != nil {
			t.Fatalf("scale %g shift %g: %v", m.scale, m.shift, err)
		}
		if got.Pass != base.Pass || got.Leaks != base.Leaks {
			t.Errorf("scale %g shift %g: verdict changed: %s vs %s", m.scale, m.shift, got, base)
		}
		for i, d := range got.Deciles {
			bd := base.Deciles[i]
			if d.Leak != bd.Leak {
				t.Errorf("scale %g shift %g: q%.0f leak flag flipped", m.scale, m.shift, d.Q*100)
			}
			if relDiff(d.Z, bd.Z) > 1e-6 {
				t.Errorf("scale %g shift %g: q%.0f z drifted: %.9f vs %.9f", m.scale, m.shift, d.Q*100, d.Z, bd.Z)
			}
			wantDiff := m.scale * bd.Diff
			if relDiff(d.Diff, wantDiff) > 1e-6 {
				t.Errorf("scale %g shift %g: q%.0f diff not equivariant: %.9f vs %.9f", m.scale, m.shift, d.Q*100, d.Diff, wantDiff)
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

// TestQuantileGateMonotoneEffect: growing the injected upper-tail
// effect must grow every decile's estimated difference (the
// Harrell-Davis estimate is a positive-weight average of order
// statistics, each nondecreasing in the shift), and the gate must go
// from passing at zero effect to failing at a gross one.
func TestQuantileGateMonotoneEffect(t *testing.T) {
	src := rng.NewXoroshiro128(0x4200)
	n := 800
	a := make([]float64, n)
	raw := make([]float64, n)
	for i := range a {
		a[i] = 1000 * rng.Float64(src)
	}
	for i := range raw {
		raw[i] = 1000 * rng.Float64(src)
	}
	ladder := []float64{0, 10, 25, 60, 150, 400}
	prev := make([]float64, 9)
	for step, delta := range ladder {
		b := make([]float64, n)
		for i, v := range raw {
			if v > 750 {
				v += delta
			}
			b[i] = v
		}
		rep, err := CompareQuantiles(a, b, QuantileGateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if step == 0 && !rep.Pass {
			t.Errorf("zero effect rejected: %s", rep)
		}
		if step == len(ladder)-1 && rep.Pass {
			t.Errorf("gross effect (+%g above q75) not rejected: %s", delta, rep)
		}
		for i, d := range rep.Deciles {
			if step > 0 && d.Diff < prev[i]-1e-9 {
				t.Errorf("delta %g: q%.0f diff %.6f decreased from %.6f", delta, d.Q*100, d.Diff, prev[i])
			}
			prev[i] = d.Diff
		}
	}
}

// TestQuantileGateDeterminism: the same two samples must produce a
// bit-identical report under different GOMAXPROCS settings and from
// concurrent goroutines — the gate sits on the campaign hot path where
// parallelism must never leak into results.
func TestQuantileGateDeterminism(t *testing.T) {
	a, b := propSamples(0x4311, 500)
	want, err := CompareQuantiles(a, b, QuantileGateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fp := want.Fingerprint()

	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := CompareQuantiles(a, b, QuantileGateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Fingerprint() != fp {
			t.Errorf("GOMAXPROCS=%d: report fingerprint drifted", procs)
		}
	}
	runtime.GOMAXPROCS(old)

	var wg sync.WaitGroup
	results := make([]string, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rep, err := CompareQuantiles(a, b, QuantileGateOptions{})
			if err == nil {
				results[g] = rep.Fingerprint()
			}
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		if got != fp {
			t.Errorf("goroutine %d: fingerprint %q != %q", g, got, fp)
		}
	}
}
