package stats

import (
	"math"
)

// The tests in this file complement the paper's Ljung-Box/KS gate with
// the additional randomness and stationarity diagnostics that MBPTA
// tooling (e.g. the chronovise framework) applies to measurement
// campaigns: the turning-point test for serial randomness and the
// Mann-Kendall test for monotone trends (a drifting platform —
// thermal, warm-up, fragmentation — shows up here first).

// TurningPointTest checks serial randomness: in an i.i.d. series the
// expected number of turning points (local maxima or minima) among n
// observations is 2(n-2)/3 with variance (16n-29)/90; the standardized
// count is asymptotically normal. Too few turning points indicate
// positive correlation (trends), too many indicate alternation.
func TurningPointTest(xs []float64, alpha float64) (TestResult, error) {
	n := len(xs)
	if n < 20 {
		return TestResult{}, ErrTooFew
	}
	turns := 0
	for i := 1; i < n-1; i++ {
		if (xs[i] > xs[i-1] && xs[i] > xs[i+1]) || (xs[i] < xs[i-1] && xs[i] < xs[i+1]) {
			turns++
		}
	}
	fn := float64(n)
	mu := 2 * (fn - 2) / 3
	sigma := math.Sqrt((16*fn - 29) / 90)
	z := (float64(turns) - mu) / sigma
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{
		Name:      "turning-point",
		Statistic: z,
		PValue:    p,
		Alpha:     alpha,
		Rejected:  Reject(p, alpha),
	}, nil
}

// MannKendall tests for a monotone trend: S = sum over pairs of
// sign(x_j - x_i), j > i. Under no trend S is asymptotically normal
// with variance n(n-1)(2n+5)/18 (with the standard tie correction). A
// significant positive (negative) statistic indicates an increasing
// (decreasing) drift across the campaign — a protocol violation for
// MBPTA measurements.
func MannKendall(xs []float64, alpha float64) (TestResult, error) {
	n := len(xs)
	if n < 10 {
		return TestResult{}, ErrTooFew
	}
	s := 0
	for i := 0; i < n-1; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case xs[j] > xs[i]:
				s++
			case xs[j] < xs[i]:
				s--
			}
		}
	}
	// Tie correction: group sizes of equal values.
	ties := make(map[float64]int)
	for _, x := range xs {
		ties[x]++
	}
	fn := float64(n)
	v := fn * (fn - 1) * (2*fn + 5) / 18
	for _, g := range ties {
		if g > 1 {
			fg := float64(g)
			v -= fg * (fg - 1) * (2*fg + 5) / 18
		}
	}
	if v <= 0 {
		// All values identical: no evidence of trend.
		return TestResult{
			Name: "Mann-Kendall", Statistic: 0, PValue: 1,
			Alpha: alpha, Rejected: false,
		}, nil
	}
	// Continuity-corrected standardization.
	var z float64
	switch {
	case s > 0:
		z = (float64(s) - 1) / math.Sqrt(v)
	case s < 0:
		z = (float64(s) + 1) / math.Sqrt(v)
	}
	p := 2 * (1 - NormalCDF(math.Abs(z)))
	return TestResult{
		Name:      "Mann-Kendall",
		Statistic: z,
		PValue:    p,
		Alpha:     alpha,
		Rejected:  Reject(p, alpha),
	}, nil
}

// ExtendedIIDReport runs the full diagnostic battery on a campaign:
// the paper's gate (Ljung-Box + KS) plus the turning-point randomness
// check and the Mann-Kendall trend check.
type ExtendedIIDReport struct {
	Gate         IIDReport
	TurningPoint TestResult
	Trend        TestResult
	Pass         bool // every test accepts
}

// CheckIIDExtended applies all four diagnostics at level alpha.
func CheckIIDExtended(xs []float64, alpha float64) (ExtendedIIDReport, error) {
	gate, err := CheckIID(xs, alpha)
	if err != nil {
		return ExtendedIIDReport{}, err
	}
	tp, err := TurningPointTest(xs, alpha)
	if err != nil {
		return ExtendedIIDReport{}, err
	}
	mk, err := MannKendall(xs, alpha)
	if err != nil {
		return ExtendedIIDReport{}, err
	}
	return ExtendedIIDReport{
		Gate:         gate,
		TurningPoint: tp,
		Trend:        mk,
		Pass:         gate.Pass && !tp.Rejected && !mk.Rejected,
	}, nil
}
