package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestExceedancePlot(t *testing.T) {
	times := []float64{100, 110, 120, 130, 140}
	probs := []float64{1, 0.1, 0.01, 1e-4, 1e-8}
	var buf bytes.Buffer
	err := ExceedancePlot(&buf, "pWCET", 1e-10, 40, 10,
		Series{Name: "projected", Times: times, Probs: probs},
		Series{Name: "observed", Times: times[:3], Probs: probs[:3]})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pWCET", "*", "+", "projected", "observed", "1e0", "exceedance"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot lacks %q:\n%s", want, out)
		}
	}
}

func TestExceedancePlotErrors(t *testing.T) {
	s := Series{Name: "x", Times: []float64{1, 2}, Probs: []float64{0.5, 0.1}}
	var buf bytes.Buffer
	if err := ExceedancePlot(&buf, "t", 1e-9, 5, 2, s); err == nil {
		t.Error("tiny plot accepted")
	}
	if err := ExceedancePlot(&buf, "t", 2, 40, 10, s); err == nil {
		t.Error("floor >= 1 accepted")
	}
	bad := Series{Name: "bad", Times: []float64{1}, Probs: []float64{0.1, 0.2}}
	if err := ExceedancePlot(&buf, "t", 1e-9, 40, 10, bad); err == nil {
		t.Error("ragged series accepted")
	}
	flat := Series{Name: "flat", Times: []float64{5, 5}, Probs: []float64{0.5, 0.1}}
	if err := ExceedancePlot(&buf, "t", 1e-9, 40, 10, flat); err == nil {
		t.Error("degenerate time range accepted")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := BarChart(&buf, "Fig3", 30, []Bar{
		{Label: "DET avg", Value: 100},
		{Label: "RAND avg", Value: 101},
		{Label: "pWCET@1e-15", Value: 220},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig3") || !strings.Contains(out, "DET avg") {
		t.Errorf("chart:\n%s", out)
	}
	// The largest bar must render the full width.
	lines := strings.Split(out, "\n")
	maxHashes := 0
	for _, l := range lines {
		n := strings.Count(l, "#")
		if n > maxHashes {
			maxHashes = n
		}
	}
	if maxHashes != 30 {
		t.Errorf("max bar %d hashes, want 30", maxHashes)
	}
}

func TestBarChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChart(&buf, "t", 30, nil); err == nil {
		t.Error("no bars accepted")
	}
	if err := BarChart(&buf, "t", 5, []Bar{{"a", 1}}); err == nil {
		t.Error("narrow chart accepted")
	}
	if err := BarChart(&buf, "t", 30, []Bar{{"a", 0}}); err == nil {
		t.Error("all-zero bars accepted")
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "i.i.d. tests", [][2]string{
		{"Ljung-Box p-value", "0.83"},
		{"KS p-value", "0.45"},
	})
	out := buf.String()
	if !strings.Contains(out, "Ljung-Box p-value  0.83") {
		t.Errorf("table misaligned:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	err := CSV(&buf, []string{"t", "p"}, []float64{1, 2}, []float64{0.5, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	want := "t,p\n1,0.5\n2,0.25\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
	if err := CSV(&buf, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Error("header/column mismatch accepted")
	}
	if err := CSV(&buf, []string{"a", "b"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Error("ragged columns accepted")
	}
	if err := CSV(&buf, nil); err == nil {
		t.Error("no columns accepted")
	}
}

func TestHistogramChart(t *testing.T) {
	var buf bytes.Buffer
	err := HistogramChart(&buf, "dist", 20, 100, 10, []int{1, 5, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "dist") || strings.Count(out, "\n") != 5 {
		t.Errorf("histogram:\n%s", out)
	}
	// The modal bin renders full width.
	if !strings.Contains(out, strings.Repeat("#", 20)) {
		t.Error("modal bin not full width")
	}
	if err := HistogramChart(&buf, "t", 20, 0, 1, nil); err == nil {
		t.Error("empty histogram accepted")
	}
	if err := HistogramChart(&buf, "t", 5, 0, 1, []int{1}); err == nil {
		t.Error("narrow accepted")
	}
	if err := HistogramChart(&buf, "t", 20, 0, 1, []int{0, 0}); err == nil {
		t.Error("all-zero accepted")
	}
}

func TestOutcomeTable(t *testing.T) {
	var b bytes.Buffer
	OutcomeTable(&b, "run outcomes", 60,
		map[string]int{"masked": 10, "hung": 5, "zzz-custom": 25},
		[]string{"masked", "timing-perturbed", "wrong-output", "hung"})
	out := b.String()
	for _, want := range []string{
		"run outcomes",
		"clean (analyzed)",
		"60 (60.0%)",
		"masked",
		"10 (10.0%)",
		"hung",
		"zzz-custom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Canonical classes keep their order; unknown classes come last.
	if strings.Index(out, "masked") > strings.Index(out, "hung") ||
		strings.Index(out, "hung") > strings.Index(out, "zzz-custom") {
		t.Errorf("row order wrong:\n%s", out)
	}
	// Absent classes are skipped entirely.
	if strings.Contains(out, "timing-perturbed") {
		t.Errorf("absent class rendered:\n%s", out)
	}
}

func TestOutcomeTableEmpty(t *testing.T) {
	var b bytes.Buffer
	OutcomeTable(&b, "empty", 0, nil, nil)
	if !strings.Contains(b.String(), "0 (0.0%)") {
		t.Errorf("zero-run table: %q", b.String())
	}
}

func TestOutcomeTableExtras(t *testing.T) {
	var b bytes.Buffer
	OutcomeTable(&b, "mitigated outcomes", 70,
		map[string]int{"wrong-output": 20},
		[]string{"masked", "wrong-output"},
		OutcomeExtras{
			Mitigated:      map[string]int{"corrected": 25, "voted": 5},
			MitigatedOrder: []string{"corrected", "scrubbed", "voted"},
			ClampedRuns:    3,
		})
	out := b.String()
	for _, want := range []string{
		"corrected (recovered, analyzed)",
		"25 (27.8%)", // 25 of 90 total
		"voted (recovered, analyzed)",
		"fault schedules clamped at cap",
		"3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Recovered rows are a subset of clean, not an addition: the clean
	// share is computed against 90 total runs, not 120.
	if !strings.Contains(out, "70 (77.8%)") {
		t.Errorf("clean share wrong:\n%s", out)
	}
	// Absent mitigated class skipped.
	if strings.Contains(out, "scrubbed") {
		t.Errorf("absent mitigated class rendered:\n%s", out)
	}
	// No extras, no extra rows.
	b.Reset()
	OutcomeTable(&b, "plain", 10, nil, nil)
	if strings.Contains(b.String(), "recovered") || strings.Contains(b.String(), "clamped") {
		t.Errorf("plain table grew extras rows:\n%s", b.String())
	}
}

func TestPerformabilityTable(t *testing.T) {
	var b bytes.Buffer
	PerformabilityTable(&b, "performability", 1e-12, []PerformabilityRow{
		{Label: "none@constant", Bound: 120000, Fitted: true, Clean: 500, Quarantined: 100, WrongOutput: 0.02, Hung: 0.01},
		{Label: "lockstep@weibull", Bound: 390000, Fitted: false, Clean: 600, Mitigated: 250},
	})
	out := b.String()
	for _, want := range []string{
		"performability",
		"pWCET@1e-12",
		"none@constant",
		"120000",
		"lockstep@weibull",
		"390000 (HWM)",
		"wrong-output",
		"hung",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
