package report

import (
	"fmt"
	"io"

	"repro/internal/stats"
)

// QuantileGateTable renders a nine-decile gate report as an aligned
// grid: per decile the two Harrell-Davis estimates, their difference
// with its Maritz-Jarrett confidence interval, the z statistic, the
// Bonferroni-corrected verdict, and the posterior leak probability. A
// one-line summary (the report's String form) follows the grid.
func QuantileGateTable(w io.Writer, title string, g stats.QuantileGateReport) {
	header := []string{"q", "A", "B", "diff", "ci", "z", "p", "post", "verdict"}
	rows := make([][]string, 0, len(g.Deciles))
	for _, d := range g.Deciles {
		verdict := "ok"
		if d.Leak {
			verdict = "LEAK"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", 100*d.Q),
			fmt.Sprintf("%.6g", d.A.Point),
			fmt.Sprintf("%.6g", d.B.Point),
			fmt.Sprintf("%+.6g", d.Diff),
			fmt.Sprintf("[%.6g, %.6g]", d.Lo, d.Hi),
			fmt.Sprintf("%+.3f", d.Z),
			fmt.Sprintf("%.2g", d.P),
			fmt.Sprintf("%.3f", d.Posterior),
			verdict,
		})
	}
	Grid(w, title, header, rows)
	fmt.Fprintf(w, "  %s\n", g.String())
}
