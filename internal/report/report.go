// Package report renders the paper's figures and tables as ASCII for
// terminals and as CSV series for external plotting: the pWCET
// exceedance plot of Figure 2 (log-scale Y), the MBPTA-vs-DET bar
// comparison of Figure 3, and aligned key/value tables.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of an exceedance plot: execution times with
// their exceedance probabilities.
type Series struct {
	Name  string
	Times []float64
	Probs []float64
}

// ExceedancePlot renders series on a log10(probability) Y axis between
// 1 and floor (e.g. 1e-16), mapping execution time to the X axis —
// the layout of the paper's Figure 2.
func ExceedancePlot(w io.Writer, title string, floor float64, width, height int, series ...Series) error {
	if width < 20 || height < 5 {
		return fmt.Errorf("report: plot area %dx%d too small", width, height)
	}
	if floor <= 0 || floor >= 1 {
		return fmt.Errorf("report: floor %g outside (0,1)", floor)
	}
	var tmin, tmax float64
	first := true
	for _, s := range series {
		if len(s.Times) != len(s.Probs) {
			return fmt.Errorf("report: series %q length mismatch", s.Name)
		}
		for i, t := range s.Times {
			if s.Probs[i] <= 0 {
				continue
			}
			if first {
				tmin, tmax, first = t, t, false
			} else {
				tmin = math.Min(tmin, t)
				tmax = math.Max(tmax, t)
			}
		}
	}
	if first || tmax == tmin {
		return fmt.Errorf("report: nothing to plot")
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	logFloor := math.Log10(floor)
	marks := []byte{'*', '+', 'o', 'x', '#'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, t := range s.Times {
			p := s.Probs[i]
			if p <= 0 {
				continue
			}
			lp := math.Log10(p)
			if lp < logFloor {
				continue
			}
			col := int(math.Round((t - tmin) / (tmax - tmin) * float64(width-1)))
			row := int(math.Round(lp / logFloor * float64(height-1)))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	for r := 0; r < height; r++ {
		exp := logFloor * float64(r) / float64(height-1)
		if exp == 0 {
			exp = 0 // normalize IEEE negative zero so the axis reads 1e0
		}
		fmt.Fprintf(w, "1e%-4.0f |%s|\n", exp, grid[r])
	}
	fmt.Fprintf(w, "       %s\n", strings.Repeat("-", width+2))
	fmt.Fprintf(w, "       %-*.4g%*.4g\n", width/2, tmin, width-width/2+2, tmax)
	legend := make([]string, len(series))
	for i, s := range series {
		legend[i] = fmt.Sprintf("%c=%s", marks[i%len(marks)], s.Name)
	}
	fmt.Fprintf(w, "       X: execution time (cycles); Y: exceedance probability. %s\n",
		strings.Join(legend, "  "))
	return nil
}

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to the maximum value — the
// layout of the paper's Figure 3 comparison.
func BarChart(w io.Writer, title string, width int, bars []Bar) error {
	if len(bars) == 0 {
		return fmt.Errorf("report: no bars")
	}
	if width < 10 {
		return fmt.Errorf("report: width %d too small", width)
	}
	maxv := bars[0].Value
	maxl := len(bars[0].Label)
	for _, b := range bars[1:] {
		if b.Value > maxv {
			maxv = b.Value
		}
		if len(b.Label) > maxl {
			maxl = len(b.Label)
		}
	}
	if maxv <= 0 {
		return fmt.Errorf("report: non-positive maximum")
	}
	fmt.Fprintf(w, "%s\n", title)
	for _, b := range bars {
		n := int(math.Round(b.Value / maxv * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(w, "  %-*s |%s%s %.4g\n", maxl, b.Label,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), b.Value)
	}
	return nil
}

// Table renders aligned two-column rows.
func Table(w io.Writer, title string, rows [][2]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	maxk := 0
	for _, r := range rows {
		if len(r[0]) > maxk {
			maxk = len(r[0])
		}
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-*s  %s\n", maxk, r[0], r[1])
	}
}

// Grid renders an aligned multi-column table: a header row, a rule
// under it, and one line per row. Rows shorter than the header are
// padded; the last column is left unpadded so ragged annotation
// columns don't trail whitespace.
func Grid(w io.Writer, title string, header []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		fmt.Fprint(w, " ")
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i == len(widths)-1 {
				fmt.Fprintf(w, " %s", cell)
			} else {
				fmt.Fprintf(w, " %-*s", widths[i], cell)
			}
		}
		fmt.Fprintln(w)
	}
	line(header)
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range rows {
		line(r)
	}
}

// TelemetryTable renders a telemetry snapshot (the flat name→value map
// of telemetry.Registry.Snapshot) as an aligned table, instruments
// sorted by name. Integral values print without a fraction; everything
// else with six significant digits.
func TelemetryTable(w io.Writer, title string, snap map[string]float64) {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	rows := make([][2]string, 0, len(names))
	for _, n := range names {
		v := snap[n]
		var s string
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			s = fmt.Sprintf("%.0f", v)
		} else {
			s = fmt.Sprintf("%.6g", v)
		}
		rows = append(rows, [2]string{n, s})
	}
	Table(w, title, rows)
}

// MetricsTable renders a named subset of a telemetry snapshot as an
// aligned table in the caller's order — used for focused summaries such
// as the durability counters (wal_records_total, worker_restarts_total,
// ...) without dumping the whole registry. Names absent from the
// snapshot render as "-" so a fixed layout stays fixed even when an
// instrument was never touched.
func MetricsTable(w io.Writer, title string, snap map[string]float64, names ...string) {
	rows := make([][2]string, 0, len(names))
	for _, n := range names {
		v, ok := snap[n]
		s := "-"
		if ok {
			if v == math.Trunc(v) && math.Abs(v) < 1e15 {
				s = fmt.Sprintf("%.0f", v)
			} else {
				s = fmt.Sprintf("%.6g", v)
			}
		}
		rows = append(rows, [2]string{n, s})
	}
	Table(w, title, rows)
}

// OutcomeExtras carries the mitigation-era additions to OutcomeTable:
// mitigated recoveries (analysis-clean runs a mitigation layer
// absorbed, a subset of the clean count) and the clamped-schedule
// tally surfaced from the injector instead of being silently dropped.
type OutcomeExtras struct {
	// Mitigated tallies recovered runs per mitigated outcome class;
	// MitigatedOrder fixes their row order (e.g. the canonical
	// faults.MitigatedOutcomes() order).
	Mitigated      map[string]int
	MitigatedOrder []string
	// ClampedRuns counts runs whose Poisson draw hit the per-run fault
	// cap and had their schedule truncated.
	ClampedRuns int
}

// OutcomeTable renders the run-outcome taxonomy of a fault-injection
// campaign: clean measurements kept for analysis versus quarantined
// runs broken down by outcome class, each with its share of the total.
// order fixes the row order of the outcome classes (e.g. the canonical
// faults.Outcomes() order); outcome classes absent from counts are
// skipped, classes present in counts but not in order are appended
// last in encounter-stable lexical position by the caller's map — pass
// a complete order to avoid that. An optional OutcomeExtras breaks the
// mitigated recoveries out of the clean count and reports clamped
// fault schedules.
func OutcomeTable(w io.Writer, title string, clean int, counts map[string]int, order []string, extras ...OutcomeExtras) {
	var ex OutcomeExtras
	if len(extras) > 0 {
		ex = extras[0]
	}
	total := clean
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		total = 1 // avoid 0/0; shares render as 0%
	}
	share := func(n int) string {
		return fmt.Sprintf("%d (%.1f%%)", n, 100*float64(n)/float64(total))
	}
	rows := [][2]string{{"clean (analyzed)", share(clean)}}
	for _, o := range ex.MitigatedOrder {
		if n, ok := ex.Mitigated[o]; ok && n > 0 {
			// Recovered runs are analysis-clean (counted in clean above);
			// break them out so the mitigation's work is visible.
			rows = append(rows, [2]string{o + " (recovered, analyzed)", share(n)})
		}
	}
	seen := map[string]bool{}
	for _, o := range order {
		if n, ok := counts[o]; ok {
			rows = append(rows, [2]string{o, share(n)})
			seen[o] = true
		}
	}
	var rest []string
	for o := range counts {
		if !seen[o] {
			rest = append(rest, o)
		}
	}
	sort.Strings(rest)
	for _, o := range rest {
		rows = append(rows, [2]string{o, share(counts[o])})
	}
	if ex.ClampedRuns > 0 {
		rows = append(rows, [2]string{"fault schedules clamped at cap", fmt.Sprintf("%d", ex.ClampedRuns)})
	}
	Table(w, title, rows)
}

// PerformabilityRow is one mitigation×hazard cell of a performability
// sweep: the pWCET bound (or the observed high-water mark when no tail
// fit exists — routine on DET builds), the outcome tallies, and the
// failure rates the mitigation could not absorb.
type PerformabilityRow struct {
	// Label identifies the cell, e.g. "ecc @ weibull".
	Label string
	// Bound is the pWCET estimate at the sweep's quantile when Fitted,
	// otherwise the observed high-water mark.
	Bound  float64
	Fitted bool
	// Clean counts analyzed runs (mitigated recoveries included);
	// Mitigated the recovered subset; Quarantined the excluded runs.
	Clean, Mitigated, Quarantined int
	// WrongOutput and Hung are the per-run rates of the failure classes
	// a mission actually fears — the dependability half of
	// performability.
	WrongOutput, Hung float64
}

// PerformabilityTable renders a performability sweep: one row per
// mitigation×hazard cell, the pWCET(quantile) cost next to the
// wrong-output/hung rates, so the protection-vs-timing tradeoff reads
// off a single table. Bounds carrying "(HWM)" are observed high-water
// marks of cells without a tail fit.
func PerformabilityTable(w io.Writer, title string, quantile float64, rows []PerformabilityRow) {
	header := []string{"cell", fmt.Sprintf("pWCET@%.0e", quantile), "clean", "mitigated", "quarantined", "wrong-output", "hung"}
	grid := make([][]string, len(rows))
	for i, r := range rows {
		bound := fmt.Sprintf("%.0f", r.Bound)
		if !r.Fitted {
			bound += " (HWM)"
		}
		grid[i] = []string{
			r.Label,
			bound,
			fmt.Sprintf("%d", r.Clean),
			fmt.Sprintf("%d", r.Mitigated),
			fmt.Sprintf("%d", r.Quarantined),
			fmt.Sprintf("%.2f%%", 100*r.WrongOutput),
			fmt.Sprintf("%.2f%%", 100*r.Hung),
		}
	}
	Grid(w, title, header, grid)
}

// CSV writes named columns of equal length as a CSV block (for external
// plotting of the figures).
func CSV(w io.Writer, headers []string, cols ...[]float64) error {
	if len(headers) != len(cols) {
		return fmt.Errorf("report: %d headers for %d columns", len(headers), len(cols))
	}
	if len(cols) == 0 {
		return fmt.Errorf("report: no columns")
	}
	n := len(cols[0])
	for _, c := range cols[1:] {
		if len(c) != n {
			return fmt.Errorf("report: ragged columns")
		}
	}
	fmt.Fprintln(w, strings.Join(headers, ","))
	for i := 0; i < n; i++ {
		parts := make([]string, len(cols))
		for j := range cols {
			parts[j] = fmt.Sprintf("%g", cols[j][i])
		}
		fmt.Fprintln(w, strings.Join(parts, ","))
	}
	return nil
}

// HistogramChart renders a stats.Histogram-style bin/count pair list as
// a vertical-bar ASCII distribution (used to compare the DET and RAND
// execution-time distributions).
func HistogramChart(w io.Writer, title string, width int, lo float64, binWidth float64, counts []int) error {
	if len(counts) == 0 {
		return fmt.Errorf("report: empty histogram")
	}
	if width < 10 {
		return fmt.Errorf("report: width %d too small", width)
	}
	maxc := 0
	for _, c := range counts {
		if c > maxc {
			maxc = c
		}
	}
	if maxc == 0 {
		return fmt.Errorf("report: all-zero histogram")
	}
	fmt.Fprintf(w, "%s\n", title)
	for i, c := range counts {
		n := int(math.Round(float64(c) / float64(maxc) * float64(width)))
		fmt.Fprintf(w, "  [%10.4g, %10.4g) |%s%s %d\n",
			lo+float64(i)*binWidth, lo+float64(i+1)*binWidth,
			strings.Repeat("#", n), strings.Repeat(" ", width-n), c)
	}
	return nil
}
