package main

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/platform"
	"repro/internal/tvca"
)

func main() {
	cfg := tvca.DefaultConfig()
	cfg.Frames = 8
	app, err := tvca.New(cfg)
	if err != nil {
		panic(err)
	}
	for _, pc := range []platform.Config{platform.DET(), platform.RAND()} {
		p, err := platform.New(pc)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s first32:\n", pc.Name)
		for i := 0; i < 32; i++ {
			r, err := p.Run(app, i, platform.DeriveRunSeed(42, i))
			if err != nil {
				panic(err)
			}
			fmt.Printf("%d, ", r.Cycles)
			if i%8 == 7 {
				fmt.Println()
			}
		}
		// 600-run series hash (continues the same platform instance).
		h := sha256.New()
		p2, _ := platform.New(pc)
		for i := 0; i < 600; i++ {
			r, err := p2.Run(app, i, platform.DeriveRunSeed(42, i))
			if err != nil {
				panic(err)
			}
			fmt.Fprintf(h, "%d/%d/%s;", r.Cycles, r.Instructions, r.Path)
		}
		fmt.Printf("%s sha600 = %x\n", pc.Name, h.Sum(nil))
	}
}
