// Command benchjson runs the simulator throughput benchmarks and
// writes a machine-readable snapshot BENCH_<n>.json at the repository
// root (n = first unused index), so performance can be tracked across
// commits by diffing small JSON files instead of re-reading benchmark
// logs. `make bench` is the intended entry point.
//
//	benchjson                              # throughput benchmarks -> BENCH_<n>.json
//	benchjson -bench 'E[0-9]' -out b.json  # custom selection and destination
//
// Each snapshot records, per benchmark: ns/op, the instr/s custom
// metric (the headline simulator throughput), B/op and allocs/op,
// plus the git commit and timestamp the numbers were taken at.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Snapshot is the file format: one benchmark invocation at one commit.
type Snapshot struct {
	Schema     string      `json:"schema"` // "repro/bench@1"
	GitSHA     string      `json:"git_sha"`
	Date       string      `json:"date"` // RFC 3339, UTC
	GoVersion  string      `json:"go_version"`
	BenchFlags string      `json:"bench_flags"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"` // without the -GOMAXPROCS suffix
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	InstrPerSec float64 `json:"instr_per_sec,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Extra captures any other custom ReportMetric units verbatim.
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	var (
		bench     = flag.String("bench", "Throughput|MatrixWarmVsCold", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "2s", "go test -benchtime value")
		out       = flag.String("out", "", "output path (default: next free BENCH_<n>.json)")
		dir       = flag.String("dir", ".", "repository root (module with the benchmarks)")
	)
	flag.Parse()

	if err := run(*bench, *benchtime, *out, *dir); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(bench, benchtime, out, dir string) error {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchtime", benchtime, "-benchmem", "."}
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "benchjson: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	os.Stderr.Write(buf.Bytes()) // keep the human-readable log visible

	benches, err := parse(&buf)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark results matched %q", bench)
	}

	snap := Snapshot{
		Schema:     "repro/bench@1",
		GitSHA:     gitSHA(dir),
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		BenchFlags: fmt.Sprintf("-bench %s -benchtime %s -benchmem", bench, benchtime),
		Benchmarks: benches,
	}
	if out == "" {
		out, err = nextSnapshotPath(dir)
		if err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks, commit %s)\n", out, len(benches), snap.GitSHA)
	return nil
}

// parse extracts result lines of the form
//
//	BenchmarkName-8   626  1911584 ns/op  37070908 instr/s  0 B/op  0 allocs/op
//
// Unmatched lines (headers, PASS, metrics printed by the benchmarks
// themselves) are ignored.
func parse(buf *bytes.Buffer) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue // not a result line
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		b := Benchmark{Name: name, Iterations: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("parse %q: bad value %q", f[0], f[i])
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "instr/s":
				b.InstrPerSec = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Extra == nil {
					b.Extra = map[string]float64{}
				}
				b.Extra[unit] = v
			}
		}
		out = append(out, b)
	}
	return out, sc.Err()
}

// nextSnapshotPath returns BENCH_<n>.json for the smallest n >= 1 with
// no existing file, so successive `make bench` runs never overwrite a
// committed snapshot.
func nextSnapshotPath(dir string) (string, error) {
	for n := 1; n < 10000; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("no free BENCH_<n>.json slot")
}

func gitSHA(dir string) string {
	cmd := exec.Command("git", "rev-parse", "HEAD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}
