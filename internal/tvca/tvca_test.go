package tvca

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

func newApp(t *testing.T) *App {
	t.Helper()
	a, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func runGuest(t *testing.T, a *App, run int) *isa.Machine {
	t.Helper()
	m, err := a.Prepare(run)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil); err != nil {
		t.Fatalf("run %d: %v", run, err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*Config)) Config {
		c := DefaultConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mutate(func(c *Config) { c.Frames = 3 }),
		mutate(func(c *Config) { c.Frames = 6 }),
		mutate(func(c *Config) { c.Sensors = 1 }),
		mutate(func(c *Config) { c.Sensors = 100 }),
		mutate(func(c *Config) { c.Taps = 1 }),
		mutate(func(c *Config) { c.Taps = 64 }),
		mutate(func(c *Config) { c.CodeBase = 2 }),
		mutate(func(c *Config) { c.DataBase = 4 }),
		mutate(func(c *Config) { c.DataBase = 1 << 40 }),
		mutate(func(c *Config) { c.ExtremeProb = 1.5 }),
		mutate(func(c *Config) { c.Frames = 64; c.Sensors = 64 }), // raw overflow
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestProgramBuilds(t *testing.T) {
	a := newApp(t)
	p := a.Program()
	if p.Len() < 100 {
		t.Errorf("program suspiciously small: %d instructions", p.Len())
	}
	if p.CodeBase != DefaultConfig().CodeBase {
		t.Errorf("code base %#x", p.CodeBase)
	}
	// Disassembly smoke test.
	lst := DisassembleTask(p)
	if len(lst) != p.Len() {
		t.Fatal("listing length mismatch")
	}
	joined := strings.Join(lst, "\n")
	for _, want := range []string{"fdiv", "fsqrt", "call", "fld", "halt"} {
		if !strings.Contains(joined, want) {
			t.Errorf("listing lacks %q", want)
		}
	}
}

func TestGuestMatchesReferenceBitExact(t *testing.T) {
	a := newApp(t)
	for run := 0; run < 10; run++ {
		m := runGuest(t, a, run)
		ref, err := a.Reference(run)
		if err != nil {
			t.Fatal(err)
		}
		got := a.Filtered(m)
		for ch := range ref.Filtered {
			if got[ch] != ref.Filtered[ch] {
				t.Errorf("run %d ch %d: filtered %v != ref %v", run, ch, got[ch], ref.Filtered[ch])
			}
		}
		outX, outY := a.Outputs(m)
		if outX != ref.OutX || outY != ref.OutY {
			t.Errorf("run %d: outputs (%v,%v) != ref (%v,%v)", run, outX, outY, ref.OutX, ref.OutY)
		}
		clamp, satX, satY := a.Counters(m)
		if int(clamp) != ref.Clamp || int(satX) != ref.SatX || int(satY) != ref.SatY {
			t.Errorf("run %d: counters (%d,%d,%d) != ref (%d,%d,%d)",
				run, clamp, satX, satY, ref.Clamp, ref.SatX, ref.SatY)
		}
	}
}

func TestInputsDeterministicPerRun(t *testing.T) {
	a := newApp(t)
	i1 := a.Inputs(7)
	i2 := a.Inputs(7)
	for f := range i1 {
		for ch := range i1[f] {
			if i1[f][ch] != i2[f][ch] {
				t.Fatal("inputs not deterministic")
			}
		}
	}
	// Different runs differ.
	i3 := a.Inputs(8)
	same := true
	for f := range i1 {
		for ch := range i1[f] {
			if i1[f][ch] != i3[f][ch] {
				same = false
			}
		}
	}
	if same {
		t.Error("runs 7 and 8 produced identical inputs")
	}
}

func TestInputsBounded(t *testing.T) {
	a := newApp(t)
	for run := 0; run < 20; run++ {
		for _, frame := range a.Inputs(run) {
			for _, v := range frame {
				if math.IsNaN(v) || math.Abs(v) > 100 {
					t.Fatalf("run %d input %v out of range", run, v)
				}
			}
		}
	}
}

func TestPathsVaryAcrossRuns(t *testing.T) {
	a := newApp(t)
	paths := make(map[string]int)
	for run := 0; run < 60; run++ {
		m := runGuest(t, a, run)
		p := a.PathOf(m)
		if p == "" {
			t.Fatal("empty path id")
		}
		paths[p]++
	}
	if len(paths) < 2 {
		t.Errorf("only %d distinct paths across 60 runs: %v", len(paths), paths)
	}
}

func TestExtremeInputsTriggerFaultPaths(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ExtremeProb = 1.0 // every run has a transient
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sawClamp := false
	for run := 0; run < 20 && !sawClamp; run++ {
		m := runGuest(t, a, run)
		clamp, _, _ := a.Counters(m)
		if clamp > 0 {
			sawClamp = true
		}
	}
	if !sawClamp {
		t.Error("40x transients never triggered the clamp path in 20 runs")
	}
	// And with no extremes, clamping should be rare or absent.
	cfg.ExtremeProb = 0
	quiet, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clampTotal := uint32(0)
	for run := 0; run < 10; run++ {
		m := runGuest(t, quiet, run)
		c, _, _ := quiet.Counters(m)
		clampTotal += c
	}
	if clampTotal > 0 {
		t.Errorf("clamping occurred %d times without transients", clampTotal)
	}
}

func TestRunsAreReproducible(t *testing.T) {
	a := newApp(t)
	m1 := runGuest(t, a, 3)
	m2 := runGuest(t, a, 3)
	f1, f2 := a.Filtered(m1), a.Filtered(m2)
	for ch := range f1 {
		if f1[ch] != f2[ch] {
			t.Fatal("same run index produced different results")
		}
	}
	if m1.Steps() != m2.Steps() {
		t.Errorf("instruction counts differ: %d vs %d", m1.Steps(), m2.Steps())
	}
}

func TestInstructionCountScale(t *testing.T) {
	a := newApp(t)
	m := runGuest(t, a, 0)
	// 16 frames x 16 channels x 16 taps should land in the tens of
	// thousands of instructions — sanity-check the workload scale.
	if m.Steps() < 10_000 || m.Steps() > 1_000_000 {
		t.Errorf("instructions per run = %d, expected 1e4..1e6", m.Steps())
	}
}

func TestTasksMatchPaperStructure(t *testing.T) {
	tasks := Tasks()
	if len(tasks) != 3 {
		t.Fatalf("%d tasks, want 3", len(tasks))
	}
	if tasks[0].Name != "sensor-acq" || tasks[0].Period != 1 {
		t.Error("sensor task wrong")
	}
	if tasks[1].Period != 2 || tasks[2].Period != 4 {
		t.Error("actuator periods wrong")
	}
	// Sensor has the highest priority.
	if tasks[0].Priority >= tasks[1].Priority || tasks[1].Priority >= tasks[2].Priority {
		t.Error("priorities not descending")
	}
}

func TestFIRCoefficientsNormalized(t *testing.T) {
	sum := 0.0
	for t2 := 0; t2 < 16; t2++ {
		c := firCoef(t2, 16)
		if c < 0 {
			t.Errorf("negative coefficient %v", c)
		}
		sum += c
	}
	// Raised-cosine window normalized by taps: DC gain ~0.5.
	if sum < 0.3 || sum > 0.7 {
		t.Errorf("DC gain %v out of expected band", sum)
	}
}

func TestAlternateGeometries(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.Frames = 8 },
		func(c *Config) { c.Sensors = 4 },
		func(c *Config) { c.Taps = 4 },
		func(c *Config) { c.CodeBase = 0x40000; c.DataBase = 0x200000 },
	} {
		cfg := DefaultConfig()
		mod(&cfg)
		a, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m := runGuest(t, a, 0)
		ref, err := a.Reference(0)
		if err != nil {
			t.Fatal(err)
		}
		got := a.Filtered(m)
		for ch := range ref.Filtered {
			if got[ch] != ref.Filtered[ch] {
				t.Fatalf("cfg %+v: guest/ref mismatch", cfg)
			}
		}
	}
}

func TestUnrolledSensorMatchesReference(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Frames = 8
	cfg.UnrollChannels = true
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The unrolled text segment is much larger than the looped one.
	looped := newApp(t)
	if a.Program().Len() < 4*looped.Program().Len()/2 {
		t.Errorf("unrolled program %d instrs vs looped %d — not unrolled?",
			a.Program().Len(), looped.Program().Len())
	}
	for run := 0; run < 5; run++ {
		m := runGuest(t, a, run)
		ref, err := a.Reference(run)
		if err != nil {
			t.Fatal(err)
		}
		got := a.Filtered(m)
		for ch := range ref.Filtered {
			if got[ch] != ref.Filtered[ch] {
				t.Fatalf("run %d ch %d: %v != %v", run, ch, got[ch], ref.Filtered[ch])
			}
		}
		clamp, sx, sy := a.Counters(m)
		if int(clamp) != ref.Clamp || int(sx) != ref.SatX || int(sy) != ref.SatY {
			t.Fatalf("run %d counters mismatch", run)
		}
	}
}

func TestUnrolledCodeCreatesICachePressure(t *testing.T) {
	// The unrolled binary's text must exceed the 16KB IL1, the point of
	// the ablation.
	cfg := DefaultConfig()
	cfg.UnrollChannels = true
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	codeBytes := a.Program().Len() * 4
	if codeBytes < 16*1024 {
		t.Errorf("unrolled text only %d bytes", codeBytes)
	}
}
