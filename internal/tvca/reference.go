package tvca

import (
	"math"

	"repro/internal/sched"
)

// RefResult is the host-computed golden output of one TVCA run.
type RefResult struct {
	Filtered   []float64
	OutX, OutY float64
	Clamp      int
	SatX, SatY int
}

// Reference executes the TVCA computation host-side with the exact
// operation ordering of the generated assembly, so float64 results are
// bit-identical. Tests compare it against guest execution to prove the
// code generator is functionally correct.
func (a *App) Reference(run int) (RefResult, error) {
	cfg := a.cfg
	inputs := a.Inputs(run)
	table, err := sched.ActivationTable(Tasks(), cfg.Frames)
	if err != nil {
		return RefResult{}, err
	}

	coef := make([]float64, cfg.Taps)
	for t := range coef {
		coef[t] = firCoef(t, cfg.Taps)
	}
	hist := make([][]float64, cfg.Sensors)
	for ch := range hist {
		hist[ch] = make([]float64, cfg.Taps)
	}
	res := RefResult{Filtered: make([]float64, cfg.Sensors)}

	type axis struct {
		set, kp, ki, kd float64
		maxNorm         float64
		integ, prev     float64
		a               [stateDim][stateDim]float64
		b, state        [stateDim]float64
		out             float64
		sat             int
		poly            bool
	}
	mkAxis := func(name string, set, kp, ki, kd, maxNorm float64, poly bool) *axis {
		ax := &axis{set: set, kp: kp, ki: ki, kd: kd, maxNorm: maxNorm, poly: poly}
		for i := 0; i < stateDim; i++ {
			for j := 0; j < stateDim; j++ {
				ax.a[i][j] = plantA(name, i, j)
			}
			ax.b[i] = plantB(name, i)
		}
		return ax
	}
	ax := mkAxis("x", setpointX, kpX, kiX, kdX, maxNormX, false)
	ay := mkAxis("y", setpointY, kpY, kiY, kdY, maxNormY, true)

	sensor := func(frame int) {
		for ch := 0; ch < cfg.Sensors; ch++ {
			sample := inputs[frame][ch]
			h := hist[ch]
			for t := cfg.Taps - 1; t >= 1; t-- {
				h[t] = h[t-1]
			}
			h[0] = sample
			acc := 0.0
			for t := 0; t < cfg.Taps; t++ {
				acc += h[t] * coef[t]
			}
			if acc > clampLimit {
				acc = clampLimit
				res.Clamp++
			} else if acc < -clampLimit {
				acc = -clampLimit
				res.Clamp++
			}
			res.Filtered[ch] = acc
		}
	}

	actuator := func(x *axis, sensorIx int, sat *int) {
		errv := x.set - res.Filtered[sensorIx]
		x.integ += errv
		der := errv - x.prev
		x.prev = errv
		u := x.kp * errv
		u += x.ki * x.integ
		u += x.kd * der
		if x.poly {
			acc := polyY[4]
			for k := 3; k >= 0; k-- {
				acc = acc*errv + polyY[k]
			}
			u += acc
		}
		var newState [stateDim]float64
		for i := 0; i < stateDim; i++ {
			acc := 0.0
			for j := 0; j < stateDim; j++ {
				acc += x.a[i][j] * x.state[j]
			}
			acc += x.b[i] * u
			newState[i] = acc
		}
		norm2 := 0.0
		for i := 0; i < stateDim; i++ {
			x.state[i] = newState[i]
			norm2 += newState[i] * newState[i]
		}
		norm := math.Sqrt(norm2)
		if norm > x.maxNorm {
			scale := x.maxNorm / norm
			for i := 0; i < stateDim; i++ {
				x.state[i] *= scale
			}
			norm = x.maxNorm
			*sat++
		}
		x.out = u / (1.0 + norm)
	}

	for f := 0; f < cfg.Frames; f++ {
		for _, ti := range table[f] {
			switch ti {
			case 0:
				sensor(f)
			case 1:
				actuator(ax, 0, &res.SatX)
			case 2:
				actuator(ay, 1, &res.SatY)
			}
		}
	}
	res.OutX, res.OutY = ax.out, ay.out
	return res, nil
}
