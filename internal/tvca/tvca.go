// Package tvca implements the case-study workload: a Thrust Vector
// Control Application modelled on the ESA application of the paper.
// Like the original — C code auto-generated from a model of a
// closed-loop control system — the program is machine-generated
// straight-line-and-loop code with three periodic tasks under a fixed
// priority scheduler:
//
//   - sensor data acquisition (highest priority, every minor frame):
//     reads the per-frame sensor samples, FIR-filters each channel and
//     clamps out-of-range values (fault-handling path),
//   - actuator control, X axis (every 2nd frame): PID control plus a
//     4x4 state-space update, with FSQRT for the state norm and FDIV
//     for saturation scaling and output normalization,
//   - actuator control, Y axis (every 4th frame): as X with a different
//     plant and an extra polynomial linearization stage.
//
// The dispatch pattern is generated from the sched activation table and
// unrolled into the binary, mirroring a table-driven cyclic executive.
// Per-run sensor inputs come from a seeded generator, so the multi-path
// behaviour (clamping, saturation) varies across runs exactly like
// environment-driven inputs on the real system.
package tvca

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/rng"
	"repro/internal/sched"
)

// Config parametrizes the workload. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// CodeBase / DataBase place the text and data segments; experiment
	// E7 sweeps them to show memory-layout sensitivity on DET.
	CodeBase uint64
	DataBase uint64
	Frames   int // minor frames per run (major frame length)
	Sensors  int // sensor channels
	Taps     int // FIR filter taps
	// InputSeed drives per-run sensor data; the same (InputSeed, run)
	// pair yields identical inputs on every platform, enabling paired
	// DET/RAND comparisons.
	InputSeed uint64
	// ExtremeProb is the per-run probability of an extreme sensor
	// transient that exercises the clamp/saturation paths.
	ExtremeProb float64
	// UnrollChannels generates per-channel straight-line sensor code
	// instead of a channel loop, the shape aggressive autocoders emit.
	// It multiplies the text-segment size by ~the channel count, putting
	// pressure on the instruction cache (IL1 placement ablation).
	UnrollChannels bool
}

// DefaultConfig returns the reference workload: 16 minor frames, 40
// sensor channels, 32-tap FIR. The resulting data footprint (~16KB of
// demand-loaded lines: FIR histories, raw samples, coefficients, plant
// state) matches the DL1 capacity, so cache placement genuinely shapes
// execution time — as for the real application on the real platform.
func DefaultConfig() Config {
	return Config{
		CodeBase:    0x2CA40,
		DataBase:    0x13E5C0,
		Frames:      16,
		Sensors:     40,
		Taps:        32,
		InputSeed:   0x7C0FFEE,
		ExtremeProb: 0.15,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Frames < 4 || c.Frames%4 != 0 {
		return fmt.Errorf("tvca: frames %d must be a positive multiple of 4", c.Frames)
	}
	if c.Sensors < 2 || c.Sensors > 64 {
		return fmt.Errorf("tvca: sensors %d not in [2,64]", c.Sensors)
	}
	if c.Taps < 2 || c.Taps > 32 {
		return fmt.Errorf("tvca: taps %d not in [2,32]", c.Taps)
	}
	if c.Taps*8 > histSlotBytes {
		return fmt.Errorf("tvca: taps %d overflow a %d-byte history slot", c.Taps, histSlotBytes)
	}
	if c.Frames*c.Sensors*8 > offCoef {
		return fmt.Errorf("tvca: raw sample array (%d bytes) overflows segment (%d)",
			c.Frames*c.Sensors*8, offCoef)
	}
	if c.CodeBase%4 != 0 || c.DataBase%8 != 0 {
		return fmt.Errorf("tvca: misaligned bases code=%#x data=%#x", c.CodeBase, c.DataBase)
	}
	if c.DataBase > math.MaxInt32-dataSegBytes || c.CodeBase > math.MaxInt32 {
		return fmt.Errorf("tvca: bases beyond the 31-bit immediate range")
	}
	if c.ExtremeProb < 0 || c.ExtremeProb > 1 {
		return fmt.Errorf("tvca: extreme probability %v not in [0,1]", c.ExtremeProb)
	}
	return nil
}

// Data segment layout (byte offsets from DataBase). The raw sample
// array occupies [0, offCoef). The FIR delay lines are NOT contiguous:
// model-based autocoders emit one small array per signal, scattered
// across the data segment by the linker, so each channel's history
// lives in its own 256-byte slot of a 64 KiB region, at a
// per-binary-layout pseudo-random position (see histSlots). This
// scattering is what makes cache placement matter: under random-modulo
// placement each 4 KiB tag region receives an independent per-run
// rotation, so the per-set occupancy of the ~40 hot history arrays is
// genuinely random run to run.
const (
	offRaw      = 0x0000 // raw[frame][ch] float64
	offCoef     = 0x4000 // FIR coefficients [taps] float64
	offFilt     = 0x4200 // filtered[ch] float64
	offSlotTab  = 0x4400 // int32 per-channel history-slot offsets
	offConsts   = 0x4600 // scalar constants block
	offLimit    = offConsts + 0x00
	offNegLimit = offConsts + 0x08
	offOne      = offConsts + 0x10
	// X-axis controller block.
	offSetX  = offConsts + 0x20
	offKpX   = offConsts + 0x28
	offKiX   = offConsts + 0x30
	offKdX   = offConsts + 0x38
	offIntX  = offConsts + 0x40
	offPrevX = offConsts + 0x48
	offOutX  = offConsts + 0x50
	// Y-axis controller block.
	offSetY  = offConsts + 0x60
	offKpY   = offConsts + 0x68
	offKiY   = offConsts + 0x70
	offKdY   = offConsts + 0x78
	offIntY  = offConsts + 0x80
	offPrevY = offConsts + 0x88
	offOutY  = offConsts + 0x90
	// Per-axis saturation limits.
	offMaxNormX = offConsts + 0x98
	offMaxNormY = offConsts + 0xA8
	offPolyY    = offConsts + 0xB0 // 5 coefficients
	// Plant matrices and state.
	offAX     = 0x4800 // 4x4
	offBX     = 0x4880 // 4
	offXState = 0x48A0 // 4
	offXNew   = 0x48C0 // 4
	offAY     = 0x4900
	offBY     = 0x4980
	offYState = 0x49A0
	offYNew   = 0x49C0
	// Path flags (int32).
	offClampCnt = 0x4A00
	offSatX     = 0x4A04
	offSatY     = 0x4A08
	// Scattered FIR history region: 256 slots of 256 bytes.
	offHistRegion = 0x10000
	histSlotBytes = 0x100
	histSlotCount = 256
	dataSegBytes  = offHistRegion + histSlotCount*histSlotBytes
)

// histSlots returns the per-channel slot assignment: a pseudo-random
// injective map channel -> slot derived from the binary's link bases,
// standing in for the linker's placement of the autocoded arrays. The
// map is a property of the binary (fixed across runs), and different
// link layouts (experiment E7) shuffle it differently.
func histSlots(cfg Config) []int32 {
	src := rng.NewXoroshiro128(cfg.CodeBase*0x9E3779B9 ^ cfg.DataBase)
	perm := make([]int, histSlotCount)
	for i := range perm {
		perm[i] = i
	}
	for i := histSlotCount - 1; i > 0; i-- {
		j := rng.Intn(src, i+1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := make([]int32, cfg.Sensors)
	for ch := range out {
		out[ch] = int32(offHistRegion + perm[ch]*histSlotBytes)
	}
	return out
}

// stateDim is the plant state dimension (4x4 state-space model).
const stateDim = 4

// Controller constants (written into the data segment at Prepare).
// They are scaled to the filtered-signal range of the reference inputs
// so the fault paths trigger on a realistic fraction of runs: transient
// spikes push the FIR output past clampLimit, and input-dependent
// controller activity pushes the plant-state norm past maxNorm.
const (
	clampLimit    = 0.30
	maxNormX      = 0.155
	maxNormY      = 0.176
	setpointX     = 0.05
	setpointY     = -0.04
	kpX, kiX, kdX = 0.8, 0.2, 0.1
	kpY, kiY, kdY = 0.7, 0.15, 0.12
)

// firCoef returns tap t of the low-pass FIR used by the sensor task
// (normalized raised-cosine window).
func firCoef(t, taps int) float64 {
	w := 0.5 - 0.5*math.Cos(2*math.Pi*float64(t)/float64(taps-1))
	return w / float64(taps)
}

// plantA returns element (i,j) of the axis plant matrix: a stable
// system with mild cross-coupling, slightly different per axis.
func plantA(axis string, i, j int) float64 {
	if i == j {
		if axis == "x" {
			return 0.90
		}
		return 0.88
	}
	d := float64(i - j)
	if axis == "x" {
		return 0.05 / (1 + d*d)
	}
	return 0.04 / (1 + d*d)
}

// plantB returns element i of the axis input vector.
func plantB(axis string, i int) float64 {
	base := []float64{0.5, 0.3, 0.2, 0.1}
	if axis == "y" {
		return base[i] * 0.9
	}
	return base[i]
}

// polyY holds the Y-axis linearization polynomial coefficients
// (evaluated by Horner's rule in guest code): c0 + c1 e + ... + c4 e^4.
var polyY = [5]float64{0.0, 0.05, -0.02, 0.008, -0.001}

// Tasks returns the case study's periodic task set, for use with the
// sched package (periods in minor frames; priorities: sensor highest).
func Tasks() []sched.Task {
	return []sched.Task{
		{Name: "sensor-acq", Period: 1, Priority: 0},
		{Name: "actuator-x", Period: 2, Priority: 1},
		{Name: "actuator-y", Period: 4, Priority: 2},
	}
}

// App is the built workload: the generated program plus the input
// synthesizer. It implements platform.Workload. App is safe for
// concurrent use by multiple campaign workers: Prepare only reads the
// immutable program and writes a fresh Memory.
type App struct {
	cfg   Config
	prog  *isa.Program
	slots []int32 // per-channel history-slot offsets (fixed per binary)
}

// New validates cfg and generates the TVCA program.
func New(cfg Config) (*App, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prog, err := generate(cfg)
	if err != nil {
		return nil, err
	}
	return &App{cfg: cfg, prog: prog, slots: histSlots(cfg)}, nil
}

// Name identifies the workload in campaign results.
func (a *App) Name() string { return "TVCA" }

// Config returns the workload configuration.
func (a *App) Config() Config { return a.cfg }

// Program exposes the generated binary (inspection/tests).
func (a *App) Program() *isa.Program { return a.prog }

// Prepare implements the "reload the executable" protocol step: a fresh
// machine with re-initialized data segments and the run-specific input
// vector.
func (a *App) Prepare(run int) (*isa.Machine, error) {
	m := isa.NewMemory()
	if err := a.initData(m); err != nil {
		return nil, err
	}
	if err := a.writeInputs(m, run); err != nil {
		return nil, err
	}
	return isa.NewMachine(a.prog, m), nil
}

// Reload implements platform.Reloader: it re-initializes a machine
// previously returned by Prepare in place (registers cleared, memory
// zeroed page-wise, data segments rewritten) so the steady-state
// campaign loop reuses the platform-owned machine without allocating.
// The observable machine state is identical to a fresh Prepare.
func (a *App) Reload(m *isa.Machine, run int) error {
	m.Reset()
	m.Mem.Reset()
	if err := a.initData(m.Mem); err != nil {
		return err
	}
	return a.writeInputs(m.Mem, run)
}

// scalarConsts lists the controller constants and their data-segment
// offsets. A fixed table (not a map) so initData writes in a fixed order
// with no per-call allocation; the final memory image is identical
// either way since the offsets are distinct.
var scalarConsts = [...]struct {
	off int
	v   float64
}{
	{offLimit, clampLimit}, {offNegLimit, -clampLimit},
	{offOne, 1.0}, {offMaxNormX, maxNormX}, {offMaxNormY, maxNormY},
	{offSetX, setpointX}, {offKpX, kpX}, {offKiX, kiX}, {offKdX, kdX},
	{offSetY, setpointY}, {offKpY, kpY}, {offKiY, kiY}, {offKdY, kdY},
}

// initData writes the constant segments (coefficients, gains, plant).
func (a *App) initData(m *isa.Memory) error {
	d := a.cfg.DataBase
	w := func(off int, v float64) error { return m.Write64(d+uint64(off), v) }
	for t := 0; t < a.cfg.Taps; t++ {
		if err := w(offCoef+8*t, firCoef(t, a.cfg.Taps)); err != nil {
			return err
		}
	}
	for _, c := range scalarConsts {
		if err := w(c.off, c.v); err != nil {
			return err
		}
	}
	for i, c := range polyY {
		if err := w(offPolyY+8*i, c); err != nil {
			return err
		}
	}
	for ch, slot := range a.slots {
		if err := m.Write32(d+uint64(offSlotTab+4*ch), uint32(slot)); err != nil {
			return err
		}
	}
	for i := 0; i < stateDim; i++ {
		for j := 0; j < stateDim; j++ {
			if err := w(offAX+8*(i*stateDim+j), plantA("x", i, j)); err != nil {
				return err
			}
			if err := w(offAY+8*(i*stateDim+j), plantA("y", i, j)); err != nil {
				return err
			}
		}
		if err := w(offBX+8*i, plantB("x", i)); err != nil {
			return err
		}
		if err := w(offBY+8*i, plantB("y", i)); err != nil {
			return err
		}
	}
	return nil
}

// Inputs synthesizes the run-specific sensor samples: band-limited
// oscillation plus noise, with occasional extreme transients that drive
// the clamp and saturation paths. Inputs depend only on (InputSeed,
// run), never on the platform, enabling paired DET/RAND comparisons.
func (a *App) Inputs(run int) [][]float64 {
	src := rng.NewXoroshiro128(inputSeed(a.cfg.InputSeed, run))
	extreme := rng.Float64(src) < a.cfg.ExtremeProb
	extremeFrame := rng.Intn(src, a.cfg.Frames)
	extremeCh := rng.Intn(src, a.cfg.Sensors)
	out := make([][]float64, a.cfg.Frames)
	for f := range out {
		out[f] = make([]float64, a.cfg.Sensors)
		for ch := range out[f] {
			phase := 2 * math.Pi * (float64(f)/float64(a.cfg.Frames) + float64(ch)/float64(a.cfg.Sensors))
			v := 1.2*math.Sin(phase) + 0.4*(rng.Float64(src)-0.5)
			if extreme && f == extremeFrame && ch == extremeCh {
				v *= 40 // transient spike
			}
			out[f][ch] = v
		}
	}
	return out
}

// writeInputs stores the run's sensor samples into the data segment. It
// generates the samples in place with a stack-allocated generator and
// the concrete-receiver draw helpers — the exact draw sequence of
// Inputs, without materializing the [][]float64 (the steady-state run
// loop must not allocate).
func (a *App) writeInputs(m *isa.Memory, run int) error {
	var src rng.Xoroshiro128
	src.Seed(inputSeed(a.cfg.InputSeed, run))
	extreme := src.Float64() < a.cfg.ExtremeProb
	extremeFrame := src.Intn(a.cfg.Frames)
	extremeCh := src.Intn(a.cfg.Sensors)
	for f := 0; f < a.cfg.Frames; f++ {
		for ch := 0; ch < a.cfg.Sensors; ch++ {
			phase := 2 * math.Pi * (float64(f)/float64(a.cfg.Frames) + float64(ch)/float64(a.cfg.Sensors))
			v := 1.2*math.Sin(phase) + 0.4*(src.Float64()-0.5)
			if extreme && f == extremeFrame && ch == extremeCh {
				v *= 40 // transient spike
			}
			addr := a.cfg.DataBase + uint64(offRaw+8*(f*a.cfg.Sensors+ch))
			if err := m.Write64(addr, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// inputSeed mixes the workload input seed with the run index.
func inputSeed(base uint64, run int) uint64 {
	z := base ^ (0x9E3779B97F4A7C15 * uint64(run+0x5D))
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	return z ^ (z >> 31)
}

// PathOf classifies the executed control-flow path from the fault and
// saturation counters the program leaves in memory. The classification
// (clamp occurred / X saturated / Y saturated) yields up to 8 paths;
// the paper's per-path analysis takes the maximum of the per-path
// pWCETs.
func (a *App) PathOf(m *isa.Machine) string {
	flag := func(off int) int {
		v, err := m.Mem.Read32(a.cfg.DataBase + uint64(off))
		if err != nil || v == 0 {
			return 0
		}
		return 1
	}
	return pathNames[flag(offClampCnt)<<2|flag(offSatX)<<1|flag(offSatY)]
}

// pathNames interns the 8 possible path strings (index bits:
// clamp<<2 | satX<<1 | satY) so path classification never allocates.
var pathNames = [8]string{
	"clamp0-satx0-saty0", "clamp0-satx0-saty1",
	"clamp0-satx1-saty0", "clamp0-satx1-saty1",
	"clamp1-satx0-saty0", "clamp1-satx0-saty1",
	"clamp1-satx1-saty0", "clamp1-satx1-saty1",
}

// Counters returns the raw path counters after a run (tests/debug).
func (a *App) Counters(m *isa.Machine) (clamp, satX, satY uint32) {
	r := func(off int) uint32 {
		v, _ := m.Mem.Read32(a.cfg.DataBase + uint64(off))
		return v
	}
	return r(offClampCnt), r(offSatX), r(offSatY)
}

// Filtered returns the filtered sensor vector after a run (tests).
func (a *App) Filtered(m *isa.Machine) []float64 {
	out := make([]float64, a.cfg.Sensors)
	for ch := range out {
		out[ch], _ = m.Mem.Read64(a.cfg.DataBase + uint64(offFilt+8*ch))
	}
	return out
}

// Outputs returns the actuator commands after a run (tests).
func (a *App) Outputs(m *isa.Machine) (x, y float64) {
	x, _ = m.Mem.Read64(a.cfg.DataBase + uint64(offOutX))
	y, _ = m.Mem.Read64(a.cfg.DataBase + uint64(offOutY))
	return x, y
}

// CheckOutput compares the machine's architectural outputs after run
// against the host-computed golden reference. Guest and reference share
// operation ordering, so comparisons are bit-exact. It satisfies the
// fault-injection layer's OutputChecker, letting injected campaigns
// separate wrong-output corruption from purely timing upsets.
func (a *App) CheckOutput(m *isa.Machine, run int) error {
	ref, err := a.Reference(run)
	if err != nil {
		return err
	}
	neq := func(a, b float64) bool { return math.Float64bits(a) != math.Float64bits(b) }
	x, y := a.Outputs(m)
	if neq(x, ref.OutX) || neq(y, ref.OutY) {
		return fmt.Errorf("tvca run %d: actuator outputs (%g, %g) != reference (%g, %g)",
			run, x, y, ref.OutX, ref.OutY)
	}
	clamp, satX, satY := a.Counters(m)
	if int(clamp) != ref.Clamp || int(satX) != ref.SatX || int(satY) != ref.SatY {
		return fmt.Errorf("tvca run %d: counters (clamp=%d satx=%d saty=%d) != reference (%d %d %d)",
			run, clamp, satX, satY, ref.Clamp, ref.SatX, ref.SatY)
	}
	for ch, v := range a.Filtered(m) {
		if neq(v, ref.Filtered[ch]) {
			return fmt.Errorf("tvca run %d: filtered[%d] = %g != reference %g",
				run, ch, v, ref.Filtered[ch])
		}
	}
	return nil
}

// TaskSpans exposes the PC ranges of the three task bodies, enabling
// per-job execution-time attribution (platform.RunPerTask). The
// generator emits the dispatcher first, then the tasks in fixed order,
// so each task's span runs from its entry label to the next one.
func (a *App) TaskSpans() []isa.Span {
	syms := []string{"task_sensor", "task_actx", "task_acty"}
	taskNames := []string{"sensor-acq", "actuator-x", "actuator-y"}
	out := make([]isa.Span, len(syms))
	for i, sym := range syms {
		start, ok := a.prog.SymbolPC(sym)
		if !ok {
			panic("tvca: generated program lacks symbol " + sym)
		}
		var end uint64
		if i+1 < len(syms) {
			end, _ = a.prog.SymbolPC(syms[i+1])
		} else {
			end = a.prog.PCOf(a.prog.Len())
		}
		out[i] = isa.Span{Name: taskNames[i], Start: start, End: end}
	}
	return out
}
