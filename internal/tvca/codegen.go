package tvca

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/sched"
)

// Register conventions of the generated code.
const (
	rZero  = isa.Reg(0)
	rCh    = isa.Reg(1) // sensor channel loop counter
	rNS    = isa.Reg(2) // sensor count bound
	rI     = isa.Reg(3) // matrix row
	rJ     = isa.Reg(4) // matrix column
	rDim   = isa.Reg(5) // matrix bound
	rT0    = isa.Reg(6)
	rT1    = isa.Reg(7)
	rT2    = isa.Reg(8)
	rT3    = isa.Reg(9)
	rT4    = isa.Reg(10)
	rT5    = isa.Reg(11)
	rFrame = isa.Reg(27) // current minor frame
	rBase  = isa.Reg(28) // data segment base
	rLink  = isa.Reg(30) // task-call link register
)

// FP register conventions.
const (
	fSample = isa.FReg(1)
	fTmp    = isa.FReg(2)
	fAcc    = isa.FReg(3)
	fA      = isa.FReg(4)
	fB      = isa.FReg(5)
	fLim    = isa.FReg(6)
	fNegLim = isa.FReg(7)
	fPID    = isa.FReg(7) // actuator: control command u
	fInt    = isa.FReg(8)
	fErr    = isa.FReg(9)
	fDer    = isa.FReg(10)
	fNorm   = isa.FReg(11)
	fMaxN   = isa.FReg(12)
	fScale  = isa.FReg(13)
	fDen    = isa.FReg(14)
	fOut    = isa.FReg(15)
)

// generate builds the TVCA binary: the unrolled cyclic-executive
// dispatch followed by the three task bodies.
func generate(cfg Config) (*isa.Program, error) {
	tasks := Tasks()
	table, err := sched.ActivationTable(tasks, cfg.Frames)
	if err != nil {
		return nil, err
	}
	taskLabels := []string{"task_sensor", "task_actx", "task_acty"}

	b := isa.NewBuilder("tvca", cfg.CodeBase)
	// Entry: install the data base pointer, then the dispatch table.
	b.Li(rBase, int32(cfg.DataBase))
	for f := 0; f < cfg.Frames; f++ {
		b.Li(rFrame, int32(f))
		for _, ti := range table[f] {
			b.Call(taskLabels[ti], rLink)
		}
	}
	b.Halt()

	genSensorTask(b, cfg)
	genActuatorTask(b, "actx", axisParams{
		label:    "task_actx",
		sensorIx: 0,
		offSet:   offSetX, offKp: offKpX, offKi: offKiX, offKd: offKdX,
		offInt: offIntX, offPrev: offPrevX, offOut: offOutX,
		offA: offAX, offB: offBX, offState: offXState, offNew: offXNew,
		offMaxNorm: offMaxNormX,
		offSat:     offSatX,
	})
	genActuatorTask(b, "acty", axisParams{
		label:    "task_acty",
		sensorIx: 1,
		offSet:   offSetY, offKp: offKpY, offKi: offKiY, offKd: offKdY,
		offInt: offIntY, offPrev: offPrevY, offOut: offOutY,
		offA: offAY, offB: offBY, offState: offYState, offNew: offYNew,
		offMaxNorm: offMaxNormY,
		offSat:     offSatY,
		poly:       true,
	})
	return b.Build()
}

// incInt32 emits a read-modify-write increment of the int32 at off.
func incInt32(b *isa.Builder, off int32) {
	b.Ld(rT5, rBase, off)
	b.Addi(rT5, rT5, 1)
	b.St(rBase, off, rT5)
}

// genSensorTask emits the sensor-acquisition task: per channel, shift
// the FIR delay line, accumulate the convolution, clamp out-of-range
// results (fault path) and store the filtered value. With
// cfg.UnrollChannels the per-channel body is replicated (straight-line
// autocoder style); otherwise a guest loop iterates over channels.
func genSensorTask(b *isa.Builder, cfg Config) {
	b.Label("task_sensor")
	if cfg.UnrollChannels {
		for ch := 0; ch < cfg.Sensors; ch++ {
			b.Li(rCh, int32(ch))
			genSensorChannel(b, cfg, fmt.Sprintf("sa_u%d", ch))
		}
		b.Ret(rLink)
		return
	}
	b.Li(rCh, 0)
	b.Li(rNS, int32(cfg.Sensors))
	b.Label("sa_ch")
	genSensorChannel(b, cfg, "sa")
	b.Addi(rCh, rCh, 1)
	b.Blt(rCh, rNS, "sa_ch")
	b.Ret(rLink)
}

// genSensorChannel emits one channel's body: sample fetch, delay-line
// shift, convolution, clamping and the filtered-value store. Labels are
// prefixed so unrolled instances stay unique.
func genSensorChannel(b *isa.Builder, cfg Config, prefix string) {
	lbl := func(s string) string { return prefix + "_" + s }
	// fSample = raw[frame*Sensors + ch]
	b.Li(rNS, int32(cfg.Sensors))
	b.Mul(rT0, rFrame, rNS)
	b.Add(rT0, rT0, rCh)
	b.Sll(rT0, rT0, 3)
	b.Add(rT0, rT0, rBase)
	b.Fld(fSample, rT0, offRaw)
	// rT2 = this channel's history slot (scattered; see histSlots).
	b.Sll(rT0, rCh, 2)
	b.Add(rT0, rT0, rBase)
	b.Ld(rT1, rT0, offSlotTab)
	b.Add(rT2, rT1, rBase)
	// Shift the delay line: hist[t] = hist[t-1], newest first.
	for t := cfg.Taps - 1; t >= 1; t-- {
		b.Fld(fTmp, rT2, int32(8*(t-1)))
		b.Fst(rT2, int32(8*t), fTmp)
	}
	b.Fst(rT2, 0, fSample)
	// Convolution: fAcc = sum hist[t] * coef[t].
	b.Fcvt(fAcc, rZero)
	for t := 0; t < cfg.Taps; t++ {
		b.Fld(fA, rT2, int32(8*t))
		b.Fld(fB, rBase, int32(offCoef+8*t))
		b.Fmul(fA, fA, fB)
		b.Fadd(fAcc, fAcc, fA)
	}
	// Fault handling: clamp to [-limit, limit], counting events.
	b.Fld(fLim, rBase, int32(offLimit))
	b.Fcmp(rT3, fAcc, fLim)
	b.Li(rT4, 1)
	b.Beq(rT3, rT4, lbl("clamp_hi"))
	b.Fld(fNegLim, rBase, int32(offNegLimit))
	b.Fcmp(rT3, fAcc, fNegLim)
	b.Li(rT4, -1)
	b.Beq(rT3, rT4, lbl("clamp_lo"))
	b.Jmp(lbl("store"))
	b.Label(lbl("clamp_hi"))
	b.Fmov(fAcc, fLim)
	incInt32(b, int32(offClampCnt))
	b.Jmp(lbl("store"))
	b.Label(lbl("clamp_lo"))
	b.Fld(fNegLim, rBase, int32(offNegLimit))
	b.Fmov(fAcc, fNegLim)
	incInt32(b, int32(offClampCnt))
	b.Label(lbl("store"))
	// filtered[ch] = fAcc
	b.Sll(rT0, rCh, 3)
	b.Add(rT0, rT0, rBase)
	b.Fst(rT0, int32(offFilt), fAcc)
}

// axisParams carries the per-axis offsets for the actuator generator.
type axisParams struct {
	label                        string
	sensorIx                     int
	offSet, offKp, offKi, offKd  int
	offInt, offPrev, offOut      int
	offA, offB, offState, offNew int
	offMaxNorm                   int
	offSat                       int
	poly                         bool // Y axis: extra polynomial linearization stage
}

// genActuatorTask emits one actuator-control task: PID on the filtered
// sensor, optional polynomial linearization (Horner), a 4x4 state-space
// update, FSQRT state-norm computation, FDIV saturation scaling
// (mode-dependent path) and FDIV output normalization.
func genActuatorTask(b *isa.Builder, prefix string, p axisParams) {
	lbl := func(s string) string { return prefix + "_" + s }
	b.Label(p.label)
	// fErr = setpoint - filtered[sensorIx]
	b.Fld(fA, rBase, int32(offFilt+8*p.sensorIx))
	b.Fld(fB, rBase, int32(p.offSet))
	b.Fsub(fErr, fB, fA)
	// Integral state: int += err.
	b.Fld(fInt, rBase, int32(p.offInt))
	b.Fadd(fInt, fInt, fErr)
	b.Fst(rBase, int32(p.offInt), fInt)
	// Derivative: der = err - prev; prev = err.
	b.Fld(fA, rBase, int32(p.offPrev))
	b.Fsub(fDer, fErr, fA)
	b.Fst(rBase, int32(p.offPrev), fErr)
	// fPID = kp*err + ki*int + kd*der.
	b.Fld(fA, rBase, int32(p.offKp))
	b.Fmul(fPID, fA, fErr)
	b.Fld(fA, rBase, int32(p.offKi))
	b.Fmul(fA, fA, fInt)
	b.Fadd(fPID, fPID, fA)
	b.Fld(fA, rBase, int32(p.offKd))
	b.Fmul(fA, fA, fDer)
	b.Fadd(fPID, fPID, fA)
	if p.poly {
		// Linearization: fPID += poly(err), Horner's rule.
		b.Fld(fAcc, rBase, int32(offPolyY+8*4))
		for k := 3; k >= 0; k-- {
			b.Fmul(fAcc, fAcc, fErr)
			b.Fld(fA, rBase, int32(offPolyY+8*k))
			b.Fadd(fAcc, fAcc, fA)
		}
		b.Fadd(fPID, fPID, fAcc)
	}
	// State update: new = A*state + b*u (guest loops over the 4x4).
	b.Li(rI, 0)
	b.Li(rDim, stateDim)
	b.Label(lbl("row"))
	b.Fcvt(fAcc, rZero)
	b.Li(rJ, 0)
	b.Label(lbl("col"))
	// fA = A[i][j]
	b.Sll(rT0, rI, 2)
	b.Add(rT0, rT0, rJ)
	b.Sll(rT0, rT0, 3)
	b.Add(rT0, rT0, rBase)
	b.Fld(fA, rT0, int32(p.offA))
	// fB = state[j]
	b.Sll(rT1, rJ, 3)
	b.Add(rT1, rT1, rBase)
	b.Fld(fB, rT1, int32(p.offState))
	b.Fmul(fA, fA, fB)
	b.Fadd(fAcc, fAcc, fA)
	b.Addi(rJ, rJ, 1)
	b.Blt(rJ, rDim, lbl("col"))
	// new[i] = acc + b[i]*u
	b.Sll(rT0, rI, 3)
	b.Add(rT0, rT0, rBase)
	b.Fld(fA, rT0, int32(p.offB))
	b.Fmul(fA, fA, fPID)
	b.Fadd(fAcc, fAcc, fA)
	b.Fst(rT0, int32(p.offNew), fAcc)
	b.Addi(rI, rI, 1)
	b.Blt(rI, rDim, lbl("row"))
	// Commit: state = new (unrolled), accumulating the squared norm.
	b.Fcvt(fNorm, rZero)
	for i := 0; i < stateDim; i++ {
		b.Fld(fA, rBase, int32(p.offNew+8*i))
		b.Fst(rBase, int32(p.offState+8*i), fA)
		b.Fmul(fA, fA, fA)
		b.Fadd(fNorm, fNorm, fA)
	}
	// fNorm = sqrt(sum of squares) — FSQRT, a controlled-jitter op.
	b.Fsqrt(fNorm, fNorm)
	// Saturation path: if norm > maxNorm, rescale the state by
	// maxNorm/norm (FDIV) and count the event.
	b.Fld(fMaxN, rBase, int32(p.offMaxNorm))
	b.Fcmp(rT3, fNorm, fMaxN)
	b.Li(rT4, 1)
	b.Bne(rT3, rT4, lbl("nosat"))
	b.Fdiv(fScale, fMaxN, fNorm)
	for i := 0; i < stateDim; i++ {
		b.Fld(fA, rBase, int32(p.offState+8*i))
		b.Fmul(fA, fA, fScale)
		b.Fst(rBase, int32(p.offState+8*i), fA)
	}
	b.Fmov(fNorm, fMaxN)
	incInt32(b, int32(p.offSat))
	b.Label(lbl("nosat"))
	// Output normalization: out = u / (1 + norm) — FDIV.
	b.Fld(fDen, rBase, int32(offOne))
	b.Fadd(fDen, fDen, fNorm)
	b.Fdiv(fOut, fPID, fDen)
	b.Fst(rBase, int32(p.offOut), fOut)
	b.Ret(rLink)
}

// DisassembleTask returns the generated program listing (debug aid).
func DisassembleTask(p *isa.Program) []string {
	out := make([]string, len(p.Code))
	for i, ins := range p.Code {
		out[i] = fmt.Sprintf("%#06x: %s", p.PCOf(i), ins)
	}
	return out
}
