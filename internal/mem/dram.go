// Package mem models the DRAM shared memory controller behind the bus.
// Two page policies are provided:
//
//   - closed-page: every access costs the same fixed latency. This is
//     the MBPTA-friendly configuration (jitterless resource, in the
//     paper's classification) and the default for both platforms.
//   - open-page: a per-bank row buffer makes the latency depend on the
//     access history (row hit vs. row conflict) — a source of
//     deterministic-platform jitter used in the DRAM ablation.
package mem

import (
	"fmt"
)

// Policy selects the controller page policy.
type Policy string

// Page policies.
const (
	PolicyClosedPage Policy = "closed-page"
	PolicyOpenPage   Policy = "open-page"
)

// Config sets the DRAM controller timing.
type Config struct {
	Policy Policy
	// AccessCycles is the closed-page (and open-page row-miss activate +
	// access) latency.
	AccessCycles uint64
	// RowHitCycles is the open-page latency when the row buffer hits.
	RowHitCycles uint64
	// Banks and RowBytes define the open-page row-buffer organisation.
	Banks    int
	RowBytes int
}

// DefaultConfig returns the platform defaults: closed-page, 56-cycle
// access (an SDRAM behind a bus bridge, in CPU cycles), 4 banks of
// 2 KiB rows (bank/row fields only matter for the open-page ablation).
func DefaultConfig() Config {
	return Config{
		Policy:       PolicyClosedPage,
		AccessCycles: 56,
		RowHitCycles: 32,
		Banks:        4,
		RowBytes:     2048,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch c.Policy {
	case PolicyClosedPage, PolicyOpenPage:
	default:
		return fmt.Errorf("mem: unknown policy %q", c.Policy)
	}
	if c.AccessCycles < 1 {
		return fmt.Errorf("mem: access cycles %d < 1", c.AccessCycles)
	}
	if c.Policy == PolicyOpenPage {
		if c.RowHitCycles < 1 || c.RowHitCycles > c.AccessCycles {
			return fmt.Errorf("mem: row hit cycles %d not in [1,%d]", c.RowHitCycles, c.AccessCycles)
		}
		if c.Banks < 1 || c.RowBytes < 1 || c.RowBytes&(c.RowBytes-1) != 0 {
			return fmt.Errorf("mem: invalid banks=%d rowBytes=%d", c.Banks, c.RowBytes)
		}
	}
	return nil
}

// Stats counts controller activity.
type Stats struct {
	Accesses uint64
	RowHits  uint64
	RowMiss  uint64
}

// Controller is the DRAM controller model.
type Controller struct {
	cfg     Config
	openRow []int64 // per-bank open row (-1 = closed)
	stats   Stats
}

// New builds a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{cfg: cfg}
	banks := cfg.Banks
	if banks < 1 {
		banks = 1
	}
	c.openRow = make([]int64, banks)
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	return c, nil
}

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Stats returns a copy of the counters.
func (c *Controller) Stats() Stats { return c.stats }

// Reset closes all rows and clears counters (board reset between runs).
func (c *Controller) Reset() {
	for i := range c.openRow {
		c.openRow[i] = -1
	}
	c.stats = Stats{}
}

// Absorb folds n accesses that were charged outside the controller
// into the counters. The multicore arbiter uses it to commit a core's
// locally self-granted transactions (see internal/platform:
// arbitration windows); those windows are only delegated under the
// closed-page policy, where every access costs the same fixed latency
// and leaves no row-buffer state behind, so counting is all there is
// to do.
func (c *Controller) Absorb(n uint64) {
	c.stats.Accesses += n
}

// Latency returns the access latency in cycles for addr and updates the
// row-buffer state under the open-page policy.
func (c *Controller) Latency(addr uint64) uint64 {
	c.stats.Accesses++
	if c.cfg.Policy == PolicyClosedPage {
		return c.cfg.AccessCycles
	}
	bank := int(addr/uint64(c.cfg.RowBytes)) % c.cfg.Banks
	row := int64(addr / uint64(c.cfg.RowBytes) / uint64(c.cfg.Banks))
	if c.openRow[bank] == row {
		c.stats.RowHits++
		return c.cfg.RowHitCycles
	}
	c.stats.RowMiss++
	c.openRow[bank] = row
	return c.cfg.AccessCycles
}
