package mem

import (
	"testing"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []Config{
		{Policy: "bogus", AccessCycles: 10},
		{Policy: PolicyClosedPage, AccessCycles: 0},
		{Policy: PolicyOpenPage, AccessCycles: 10, RowHitCycles: 0, Banks: 4, RowBytes: 2048},
		{Policy: PolicyOpenPage, AccessCycles: 10, RowHitCycles: 11, Banks: 4, RowBytes: 2048},
		{Policy: PolicyOpenPage, AccessCycles: 10, RowHitCycles: 5, Banks: 0, RowBytes: 2048},
		{Policy: PolicyOpenPage, AccessCycles: 10, RowHitCycles: 5, Banks: 4, RowBytes: 1000},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestClosedPageIsConstant(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, addr := range []uint64{0, 64, 4096, 1 << 20, 0xDEADBEE0} {
		if lat := c.Latency(addr); lat != 56 {
			t.Errorf("latency(%#x) = %d, want 56", addr, lat)
		}
	}
	if c.Stats().Accesses != 5 {
		t.Errorf("accesses = %d", c.Stats().Accesses)
	}
}

func TestOpenPageRowHits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyOpenPage
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First access to a row: miss; second in the same row: hit.
	if lat := c.Latency(0); lat != cfg.AccessCycles {
		t.Errorf("cold access = %d, want %d", lat, cfg.AccessCycles)
	}
	if lat := c.Latency(64); lat != cfg.RowHitCycles {
		t.Errorf("same-row access = %d, want %d", lat, cfg.RowHitCycles)
	}
	// Same bank, different row: conflict.
	conflictAddr := uint64(cfg.RowBytes * cfg.Banks)
	if lat := c.Latency(conflictAddr); lat != cfg.AccessCycles {
		t.Errorf("row conflict = %d, want %d", lat, cfg.AccessCycles)
	}
	st := c.Stats()
	if st.RowHits != 1 || st.RowMiss != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestOpenPageBanksAreIndependent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyOpenPage
	c, _ := New(cfg)
	// Touch one row in each bank, then re-touch: all hits.
	for b := 0; b < cfg.Banks; b++ {
		c.Latency(uint64(b * cfg.RowBytes))
	}
	for b := 0; b < cfg.Banks; b++ {
		if lat := c.Latency(uint64(b*cfg.RowBytes) + 8); lat != cfg.RowHitCycles {
			t.Errorf("bank %d second access = %d, want hit %d", b, lat, cfg.RowHitCycles)
		}
	}
}

func TestReset(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyOpenPage
	c, _ := New(cfg)
	c.Latency(0)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Error("stats survive reset")
	}
	// Row buffer closed: cold access again.
	if lat := c.Latency(0); lat != cfg.AccessCycles {
		t.Errorf("post-reset access = %d, want %d", lat, cfg.AccessCycles)
	}
}

// TestAbsorbMatchesLatencyCount pins the self-grant window contract on
// the controller side: under the closed-page policy, absorbing n
// off-controller accesses must produce the same statistics as n
// Latency calls (latency is address-independent, so only the counter
// matters).
func TestAbsorbMatchesLatencyCount(t *testing.T) {
	direct, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		direct.Latency(uint64(i) * 64)
	}
	absorbed, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	absorbed.Absorb(7)
	if absorbed.Stats() != direct.Stats() {
		t.Errorf("absorbed stats %+v, direct stats %+v", absorbed.Stats(), direct.Stats())
	}
}
