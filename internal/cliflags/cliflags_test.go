package cliflags

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
)

func TestExitCodeFor(t *testing.T) {
	// Exit 2 must single out the i.i.d. gate rejection, wrapped or not.
	if got := ExitCodeFor(core.ErrIIDRejected); got != ExitIIDGate {
		t.Errorf("gate rejection -> %d, want %d", got, ExitIIDGate)
	}
	wrapped := fmt.Errorf("e2: %w", core.ErrIIDRejected)
	if got := ExitCodeFor(wrapped); got != ExitIIDGate {
		t.Errorf("wrapped gate rejection -> %d, want %d", got, ExitIIDGate)
	}
	for _, err := range []error{core.ErrHeavyTail, core.ErrInsufficient, fmt.Errorf("io: boom")} {
		if got := ExitCodeFor(err); got != ExitError {
			t.Errorf("%v -> %d, want %d", err, got, ExitError)
		}
	}
}

func TestAddCampaignDefaultsAndParse(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	c := AddCampaign(fs)
	if err := fs.Parse([]string{"-runs", "42", "-seed", "7", "-converge", "-faults", "-fault-rate", "0.5"}); err != nil {
		t.Fatal(err)
	}
	if c.Runs != 42 || c.Seed != 7 || !c.Converge || !c.Faults || c.FaultRate != 0.5 {
		t.Errorf("parsed %+v", c)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("valid flags rejected: %v", err)
	}
}

func TestValidateResumeRequiresJournal(t *testing.T) {
	c := &Campaign{Resume: true}
	if err := c.Validate(); err == nil {
		t.Error("-resume without -journal accepted")
	}
	c.Journal = "x.wal"
	if err := c.Validate(); err != nil {
		t.Errorf("resume with journal rejected: %v", err)
	}
}

func TestParamsWiring(t *testing.T) {
	c := &Campaign{Runs: 100, Seed: 9, Parallel: 2, Converge: true, Faults: true, FaultRate: 0.3}
	p, reg := c.Params()
	if p.Runs != 100 || p.Seed != 9 || p.Parallel != 2 || !p.Converge || p.FaultRate != 0.3 {
		t.Errorf("params %+v", p)
	}
	if reg != nil {
		t.Error("registry created without journal or endpoint")
	}
	// Seed 0 keeps the paper default.
	c2 := &Campaign{Runs: 10}
	p2, _ := c2.Params()
	if p2.Seed == 0 {
		t.Error("seed 0 should keep the paper default, got 0")
	}
	// Journaling forces a registry even without an endpoint.
	c3 := &Campaign{Runs: 10, Journal: "x.wal"}
	p3, reg3 := c3.Params()
	if reg3 == nil || p3.Telemetry != reg3 {
		t.Error("journaling did not wire a telemetry registry")
	}
}

func TestServeTelemetryDisabled(t *testing.T) {
	c := &Campaign{}
	var buf bytes.Buffer
	closeFn, err := c.ServeTelemetry(nil, &buf)
	if err != nil {
		t.Fatal(err)
	}
	closeFn()
	if buf.Len() != 0 {
		t.Errorf("announced an endpoint that was never requested: %s", buf.String())
	}
}

func TestMitigationHazardFlags(t *testing.T) {
	parse := func(args ...string) (*Campaign, error) {
		fs := flag.NewFlagSet("x", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		c := AddCampaign(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return c, c.Validate()
	}
	// Both flags require -faults.
	if _, err := parse("-mitigation", "ecc"); err == nil {
		t.Error("-mitigation without -faults accepted")
	}
	if _, err := parse("-hazard", "orbit"); err == nil {
		t.Error("-hazard without -faults accepted")
	}
	// Unknown names are rejected with the flag spelled out.
	if _, err := parse("-faults", "-mitigation", "tmr"); err == nil {
		t.Error("unknown mitigation accepted")
	}
	if _, err := parse("-faults", "-hazard", "sunspot"); err == nil {
		t.Error("unknown hazard accepted")
	}
	// Valid spellings parse and reach Params.
	c, err := parse("-faults", "-fault-rate", "0.5", "-mitigation", "lockstep", "-hazard", "weibull")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := c.Params()
	if p.Mitigation.Kind != faults.MitigationLockstep {
		t.Errorf("mitigation %+v did not reach Params", p.Mitigation)
	}
	if p.Hazard.Kind != faults.HazardWeibull {
		t.Errorf("hazard %+v did not reach Params", p.Hazard)
	}
}
