// Package cliflags declares the campaign flags and the exit-code
// contract shared by this repository's CLIs (cmd/tvca,
// cmd/experiments, cmd/mbpta, cmd/pwcetd) in one place, so the flag
// names, defaults and help strings — and the 0/1/2 exit semantics
// scripted pipelines branch on — cannot drift between binaries.
package cliflags

import (
	"errors"
	"flag"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/profiling"
	"repro/internal/telemetry"
)

// The shared exit-code contract: 0 = success, 1 = usage or I/O error,
// 2 = the i.i.d. gate rejected the campaign. All errors go to stderr
// only.
const (
	ExitOK      = 0
	ExitError   = 1
	ExitIIDGate = 2
)

// ExitCodeFor classifies err under the shared contract: an i.i.d. gate
// rejection (wrapped or not) maps to ExitIIDGate so pipelines can
// branch on it; anything else is a generic failure.
func ExitCodeFor(err error) int {
	if errors.Is(err, core.ErrIIDRejected) {
		return ExitIIDGate
	}
	return ExitError
}

// Campaign holds the campaign flags common to the campaign-executing
// CLIs. Fields are populated by fs.Parse after AddCampaign.
type Campaign struct {
	Runs          int
	Seed          uint64
	Parallel      int
	Converge      bool
	Faults        bool
	FaultRate     float64
	Mitigation    string
	Hazard        string
	Journal       string
	Resume        bool
	QuantileGate  bool
	QuantileAlpha float64
	TelemetryAddr string
	CPUProfile    string
	MemProfile    string

	// mitigation/hazard are the parsed forms of the string flags,
	// populated by Validate.
	mitigation faults.Mitigation
	hazard     faults.Hazard
}

// AddCampaign declares the shared campaign flags on fs and returns the
// struct their values land in.
func AddCampaign(fs *flag.FlagSet) *Campaign {
	c := &Campaign{}
	fs.IntVar(&c.Runs, "runs", 3000, "measurement runs per campaign (paper: 3000)")
	fs.Uint64Var(&c.Seed, "seed", 0, "base seed (0 = paper default)")
	fs.IntVar(&c.Parallel, "parallel", 0, "campaign workers (0 = GOMAXPROCS)")
	fs.BoolVar(&c.Converge, "converge", false, "stream the RAND campaign and stop at pWCET-delta convergence (-runs becomes the budget)")
	fs.BoolVar(&c.Faults, "faults", false, "inject SEU faults into the RAND campaign (quarantined from the analysis)")
	fs.Float64Var(&c.FaultRate, "fault-rate", 0.25, "expected upsets per run under -faults (Poisson)")
	fs.StringVar(&c.Mitigation, "mitigation", "", "fault-mitigation scheme under -faults: none, scrub, ecc or lockstep (recovered runs stay in the analysis, overhead charged as cycles)")
	fs.StringVar(&c.Hazard, "hazard", "", "upset-rate profile under -faults: constant, weibull or orbit")
	fs.StringVar(&c.Journal, "journal", "", "journal the RAND campaign to this write-ahead log for crash-safe resume")
	fs.BoolVar(&c.Resume, "resume", false, "resume the RAND campaign from the -journal file instead of starting fresh")
	fs.BoolVar(&c.QuantileGate, "quantile-gate", false, "additionally screen the i.i.d. gate's samples with the nine-decile identical-distribution gate")
	fs.Float64Var(&c.QuantileAlpha, "quantile-alpha", 0.01, "family-wise false-positive budget of -quantile-gate")
	AddTelemetryAddr(fs, &c.TelemetryAddr)
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	return c
}

// Matrix holds the scenario-matrix flags (see internal/matrix).
type Matrix struct {
	// Spec is the path to the matrix spec JSON; empty means matrix mode
	// is off.
	Spec string
	// CacheDir is the content-addressed run-cache directory; empty
	// disables caching (every cell simulates from scratch).
	CacheDir string
	// CellParallel bounds concurrently executing cells.
	CellParallel int
}

// AddMatrix declares the scenario-matrix flags on fs and returns the
// struct their values land in.
func AddMatrix(fs *flag.FlagSet) *Matrix {
	m := &Matrix{}
	fs.StringVar(&m.Spec, "matrix", "", "run the scenario matrix described by this spec JSON instead of a single campaign")
	fs.StringVar(&m.CacheDir, "matrix-cache", "", "content-addressed run cache directory for -matrix (empty = no caching)")
	fs.IntVar(&m.CellParallel, "matrix-cells", 2, "concurrently executing matrix cells under -matrix")
	return m
}

// Leak holds the timing-leak oracle flags (see internal/experiments'
// leak probe).
type Leak struct {
	// Enabled switches the CLI into leak-oracle mode: the
	// secret-dependent workload is measured for both secrets on DET and
	// RAND and the posterior leak probabilities are compared.
	Enabled bool
	// Runs is the measurement-run count per secret variant.
	Runs int
}

// AddLeak declares the timing-leak oracle flags on fs and returns the
// struct their values land in.
func AddLeak(fs *flag.FlagSet) *Leak {
	l := &Leak{}
	fs.BoolVar(&l.Enabled, "leak", false, "run the secret-dependent timing-leak oracle (DET vs RAND) instead of a campaign")
	fs.IntVar(&l.Runs, "leak-runs", 400, "measurement runs per secret variant under -leak")
	return l
}

// AddTelemetryAddr declares the -telemetry-addr flag into dst — split
// out because every CLI serves metrics, including ones (cmd/mbpta,
// cmd/pwcetd) that take none of the other campaign flags.
func AddTelemetryAddr(fs *flag.FlagSet, dst *string) {
	fs.StringVar(dst, "telemetry-addr", "", "serve live metrics on this address (/metrics Prometheus text, /metrics.json)")
}

// Validate rejects inconsistent flag combinations and parses the
// mitigation/hazard selectors.
func (c *Campaign) Validate() error {
	if c.Resume && c.Journal == "" {
		return errors.New("-resume requires -journal")
	}
	if !c.Faults {
		if c.Mitigation != "" {
			return errors.New("-mitigation requires -faults")
		}
		if c.Hazard != "" {
			return errors.New("-hazard requires -faults")
		}
	}
	var err error
	if c.mitigation, err = faults.ParseMitigation(c.Mitigation); err != nil {
		return fmt.Errorf("-mitigation: %w", err)
	}
	if c.hazard, err = faults.ParseHazard(c.Hazard); err != nil {
		return fmt.Errorf("-hazard: %w", err)
	}
	return nil
}

// Params builds the experiment parameters from the parsed flags. The
// returned registry is non-nil when journaling or a metrics endpoint
// needs one (journaling always instruments the durability counters,
// even with no endpoint requested) and is already wired into the
// params.
func (c *Campaign) Params() (experiments.Params, *telemetry.Registry) {
	p := experiments.DefaultParams()
	p.Runs = c.Runs
	p.Parallel = c.Parallel
	p.Converge = c.Converge
	if c.Faults {
		p.FaultRate = c.FaultRate
		p.Mitigation = c.mitigation
		p.Hazard = c.hazard
	}
	if c.Seed != 0 {
		p.Seed = c.Seed
	}
	p.Journal = c.Journal
	p.Resume = c.Resume
	p.Analysis.QuantileGate = c.QuantileGate
	p.Analysis.QuantileGateAlpha = c.QuantileAlpha
	var reg *telemetry.Registry
	if c.TelemetryAddr != "" || c.Journal != "" {
		reg = telemetry.New()
		p.Telemetry = reg
	}
	return p, reg
}

// StartProfiling starts any requested pprof profiles; the returned stop
// finalizes them and must run on every exit path (including the fatal
// one — os.Exit skips defers).
func (c *Campaign) StartProfiling() (stop func() error, err error) {
	return profiling.Start(c.CPUProfile, c.MemProfile)
}

// ServeTelemetry starts the live metrics endpoint when -telemetry-addr
// was given, announcing the URL on stdout. The returned close function
// is never nil.
func (c *Campaign) ServeTelemetry(reg *telemetry.Registry, stdout io.Writer) (func(), error) {
	if c.TelemetryAddr == "" {
		return func() {}, nil
	}
	srv, err := telemetry.Serve(c.TelemetryAddr, reg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "telemetry: serving %s/metrics\n", srv.URL())
	return func() { srv.Close() }, nil
}
