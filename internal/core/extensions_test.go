package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/evt"
	"repro/internal/rng"
)

func TestPoTMethodRecoversTail(t *testing.T) {
	truth := evt.Gumbel{Mu: 10000, Beta: 120}
	times := gumbelSeries(41, 5000, truth)
	res, err := NewAnalyzer(Options{Method: MethodPoT}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Paths[0]
	if p.Method != MethodPoT {
		t.Errorf("method = %q", p.Method)
	}
	if p.PoT.Rate < 0.05 || p.PoT.Rate > 0.15 {
		t.Errorf("exceedance rate %v, want ~0.1", p.PoT.Rate)
	}
	// The PoT bound at 1e-6 should be within a few percent of truth.
	got, err := res.PWCET(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := truth.QuantileSF(1e-6)
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("PoT pWCET(1e-6) = %.0f, truth %.0f", got, want)
	}
}

func TestPoTAndBlockMaximaAgree(t *testing.T) {
	times := gumbelSeries(43, 5000, evt.Gumbel{Mu: 5000, Beta: 60})
	bm, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	pot, err := NewAnalyzer(Options{Method: MethodPoT}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	// At moderate depth the methods agree closely; at deep cutoffs PoT
	// grows more conservative because GPD-shape sampling noise is
	// amplified by the extrapolation.
	b1, _ := bm.PWCET(1e-6)
	b2, _ := pot.PWCET(1e-6)
	if math.Abs(b1-b2)/b1 > 0.15 {
		t.Errorf("block-maxima %.0f vs PoT %.0f differ by >15%% at 1e-6", b1, b2)
	}
	d1, _ := bm.PWCET(1e-12)
	d2, _ := pot.PWCET(1e-12)
	if d2 < d1*0.85 || d2 > d1*1.6 {
		t.Errorf("PoT 1e-12 bound %.0f outside sanity band of block-maxima %.0f", d2, d1)
	}
}

func TestPoTRejectsHeavyTail(t *testing.T) {
	src := rng.NewXoroshiro128(44)
	gev := evt.GEV{Xi: 0.6, Mu: 1000, Sigma: 50}
	times := make([]float64, 4000)
	for i := range times {
		u := rng.Float64(src)
		for u == 0 {
			u = rng.Float64(src)
		}
		times[i], _ = gev.Quantile(u)
	}
	_, err := NewAnalyzer(Options{Method: MethodPoT}).Analyze(times)
	if !errors.Is(err, ErrHeavyTail) {
		t.Errorf("err = %v, want ErrHeavyTail", err)
	}
}

func TestUnknownMethodRejected(t *testing.T) {
	times := gumbelSeries(45, 1000, evt.Gumbel{Mu: 10, Beta: 1})
	if _, err := NewAnalyzer(Options{Method: "quantum"}).Analyze(times); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestBootstrapPWCETCoversPointEstimate(t *testing.T) {
	truth := evt.Gumbel{Mu: 3000, Beta: 40}
	times := gumbelSeries(51, 3000, truth)
	an := NewAnalyzer(Options{})
	res, err := an.Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	point, _ := res.PWCET(1e-9)
	ci, err := an.BootstrapPWCET(times, 1e-9, 200, 0.95, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(ci.Lo < point && point < ci.Hi) {
		t.Errorf("CI [%.0f, %.0f] does not cover point %.0f", ci.Lo, ci.Hi, point)
	}
	if ci.Level != 0.95 {
		t.Errorf("level %v", ci.Level)
	}
	// The true quantile should usually be inside too.
	want, _ := truth.QuantileSF(1e-9)
	if want < ci.Lo*0.98 || want > ci.Hi*1.02 {
		t.Errorf("CI [%.0f, %.0f] far from truth %.0f", ci.Lo, ci.Hi, want)
	}
}

func TestBootstrapPWCETWidensWithDepth(t *testing.T) {
	times := gumbelSeries(52, 3000, evt.Gumbel{Mu: 3000, Beta: 40})
	an := NewAnalyzer(Options{})
	shallow, err := an.BootstrapPWCET(times, 1e-6, 200, 0.95, 8)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := an.BootstrapPWCET(times, 1e-15, 200, 0.95, 8)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Hi-deep.Lo <= shallow.Hi-shallow.Lo {
		t.Errorf("deep CI width %.0f <= shallow %.0f",
			deep.Hi-deep.Lo, shallow.Hi-shallow.Lo)
	}
}

func TestBootstrapPWCETValidation(t *testing.T) {
	times := gumbelSeries(53, 1000, evt.Gumbel{Mu: 10, Beta: 1})
	an := NewAnalyzer(Options{})
	if _, err := an.BootstrapPWCET(times, 1e-9, 5, 0.95, 1); err == nil {
		t.Error("5 resamples accepted")
	}
	if _, err := an.BootstrapPWCET(times, 1e-9, 100, 1.5, 1); err == nil {
		t.Error("level 1.5 accepted")
	}
	if _, err := an.BootstrapPWCET(times[:20], 1e-9, 100, 0.95, 1); err == nil {
		t.Error("20 observations accepted")
	}
}

func TestExponentialityCVOnExponentialTail(t *testing.T) {
	// Exponential data: CV ladder should sit in the band.
	src := rng.NewXoroshiro128(61)
	times := make([]float64, 5000)
	for i := range times {
		u := rng.Float64(src)
		for u == 0 {
			u = rng.Float64(src)
		}
		times[i] = -math.Log(u) * 100
	}
	pts, err := ExponentialityCV(times, 0.5, 0.95, 10)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CVVerdict(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("exponential tail rejected: %+v", pts)
	}
}

func TestExponentialityCVOnHeavyTail(t *testing.T) {
	// Pareto tail (xi = 0.5): CV grows above the band.
	src := rng.NewXoroshiro128(62)
	times := make([]float64, 5000)
	for i := range times {
		u := rng.Float64(src)
		for u == 0 {
			u = rng.Float64(src)
		}
		times[i] = math.Pow(u, -0.5) * 100 // Pareto alpha=2
	}
	pts, err := ExponentialityCV(times, 0.5, 0.95, 10)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CVVerdict(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("heavy tail accepted: %+v", pts)
	}
}

func TestExponentialityCVOnBoundedTail(t *testing.T) {
	// Uniform (bounded) tail: CV below 1 — accepted, since a Gumbel
	// projection over-bounds a bounded tail.
	src := rng.NewXoroshiro128(63)
	times := make([]float64, 5000)
	for i := range times {
		times[i] = rng.Float64(src) * 100
	}
	pts, err := ExponentialityCV(times, 0.5, 0.95, 10)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := CVVerdict(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("bounded tail rejected")
	}
	// And the raw points should mostly sit below the band.
	below := 0
	for _, p := range pts {
		if p.CV < 1 {
			below++
		}
	}
	if below < len(pts)/2 {
		t.Errorf("bounded tail CV not below 1: %+v", pts)
	}
}

func TestExponentialityCVValidation(t *testing.T) {
	if _, err := ExponentialityCV(make([]float64, 10), 0.5, 0.9, 5); err == nil {
		t.Error("tiny sample accepted")
	}
	times := gumbelSeries(64, 1000, evt.Gumbel{Mu: 10, Beta: 1})
	if _, err := ExponentialityCV(times, 0.9, 0.5, 5); err == nil {
		t.Error("inverted ladder accepted")
	}
	if _, err := ExponentialityCV(times, 0.5, 0.9, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := CVVerdict(nil, 0.5); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := CVVerdict([]CVPoint{{CV: 1}}, 2); err == nil {
		t.Error("window fraction 2 accepted")
	}
}
