package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/evt"
	"repro/internal/stats"
)

// synthSeries draws deterministic pseudo-Gumbel execution times that
// pass the i.i.d. gate (an LCG-driven inversion, as the package tests
// use elsewhere).
func synthSeries(n int, seed uint64) []float64 {
	g := evt.Gumbel{Mu: 100000, Beta: 1500}
	out := make([]float64, n)
	state := seed
	for i := range out {
		state = state*6364136223846793005 + 1442695040888963407
		u := (float64(state>>11) + 0.5) / (1 << 53)
		x, err := g.Quantile(u)
		if err != nil {
			panic(err)
		}
		out[i] = x
	}
	return out
}

func feed(t *testing.T, o *OnlineAnalyzer, times []float64, batch int) []Snapshot {
	t.Helper()
	var snaps []Snapshot
	for at := 0; at < len(times); at += batch {
		end := at + batch
		if end > len(times) {
			end = len(times)
		}
		obs := make([]Observation, 0, end-at)
		for _, v := range times[at:end] {
			obs = append(obs, Observation{Cycles: v})
		}
		s, err := o.ObserveBatch(obs)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, s)
		if s.Done {
			break
		}
	}
	return snaps
}

func TestFixedRunsRule(t *testing.T) {
	r := FixedRuns(100)
	if r.Done(&Snapshot{Runs: 99, TotalRuns: 99}) {
		t.Error("fired early")
	}
	if !r.Done(&Snapshot{Runs: 100, TotalRuns: 100}) || !r.Done(&Snapshot{Runs: 250, TotalRuns: 250}) {
		t.Error("did not fire at/after the budget")
	}
	// The budget is executed runs: quarantined runs count against it.
	if !r.Done(&Snapshot{Runs: 60, TotalRuns: 100, Quarantined: 40}) {
		t.Error("quarantined runs not counted against the budget")
	}
	if r.Name() == "" {
		t.Error("empty name")
	}
}

func TestMaxWallClockRule(t *testing.T) {
	r := MaxWallClock(time.Minute)
	if r.Done(&Snapshot{Elapsed: 30 * time.Second}) {
		t.Error("fired early")
	}
	if !r.Done(&Snapshot{Elapsed: time.Minute}) {
		t.Error("did not fire at the budget")
	}
}

func TestPWCETDeltaRule(t *testing.T) {
	r := PWCETDelta(1e-12, 0.01, 2)
	mk := func(mu float64) *Snapshot {
		return &Snapshot{
			Runs: 500, BlockSize: 50, Fitted: true,
			Fit: evt.Gumbel{Mu: mu, Beta: 100},
		}
	}
	// Unfitted snapshots never fire and reset the streak.
	if r.Done(&Snapshot{Runs: 100}) {
		t.Error("fired without a fit")
	}
	if r.Done(mk(10000)) {
		t.Error("fired on the first fit")
	}
	// A big jump resets; two stable refits in a row fire.
	if r.Done(mk(20000)) {
		t.Error("fired on a 2x jump")
	}
	if r.Done(mk(20010)) {
		t.Error("fired after a single stable refit")
	}
	if !r.Done(mk(20020)) {
		t.Error("did not fire after two stable refits")
	}
}

func TestConvergenceRulesRequirePassingGate(t *testing.T) {
	// A fit over a non-i.i.d. prefix is not evidence of convergence:
	// a failing gate must reset the streak of both convergence rules.
	pass := stats.IIDReport{Pass: true}
	fail := stats.IIDReport{Pass: false}
	mk := func(g stats.IIDReport) *Snapshot {
		return &Snapshot{
			Runs: 500, BlockSize: 50, Fitted: true,
			Fit:  evt.Gumbel{Mu: 10000, Beta: 100},
			Gate: g, GateChecked: true,
		}
	}
	r := PWCETDelta(1e-12, 0.01, 2)
	r.Done(mk(pass))
	r.Done(mk(pass)) // streak 1 (first call has no previous value)
	if r.Done(mk(fail)) {
		t.Error("fired on a gate-failing snapshot")
	}
	if r.Done(mk(pass)) {
		t.Error("fired right after a gate failure (streak not reset)")
	}
	r.Done(mk(pass))
	if !r.Done(mk(pass)) {
		t.Error("did not fire after the streak rebuilt")
	}

	c := CRPSConverged(1e-3, 2)
	s := mk(pass)
	s.Delta = 5e-4
	c.Done(s)
	bad := mk(fail)
	bad.Delta = 5e-4
	if c.Done(bad) {
		t.Error("CRPS rule fired on a gate-failing snapshot")
	}
	if c.Done(s) {
		t.Error("CRPS streak not reset by the gate failure")
	}
	if !c.Done(s) {
		t.Error("CRPS rule did not fire after the streak rebuilt")
	}
}

func TestCRPSConvergedRule(t *testing.T) {
	r := CRPSConverged(1e-3, 2)
	if r.Done(&Snapshot{Delta: math.NaN()}) {
		t.Error("fired on NaN delta")
	}
	if r.Done(&Snapshot{Delta: 5e-4}) {
		t.Error("fired after one pass")
	}
	if r.Done(&Snapshot{Delta: 5e-2}) {
		t.Error("fired after a reset")
	}
	r.Done(&Snapshot{Delta: 5e-4})
	if !r.Done(&Snapshot{Delta: 5e-4}) {
		t.Error("did not fire after two consecutive passes")
	}
}

func TestAnyRuleEvaluatesAllRules(t *testing.T) {
	// AnyRule must keep feeding stateful sub-rules even when another
	// rule fires first.
	crps := CRPSConverged(1e-3, 2)
	r := AnyRule(FixedRuns(1000), crps)
	s := &Snapshot{Runs: 10, Delta: 5e-4}
	if r.Done(s) {
		t.Error("fired early")
	}
	if !r.Done(s) { // second consecutive CRPS pass fires via the sub-rule
		t.Error("stateful sub-rule was starved")
	}
	if !AnyRule(FixedRuns(5)).Done(&Snapshot{Runs: 10, TotalRuns: 10}) {
		t.Error("fixed sub-rule ignored")
	}
}

func TestOnlineAnalyzerMatchesBatchAnalyzer(t *testing.T) {
	// Feeding the full series through ObserveBatch and finalizing must
	// reproduce the one-shot analyzer exactly.
	times := synthSeries(3000, 9)
	online := NewOnlineAnalyzer(Options{}, FixedRuns(3000))
	snaps := feed(t, online, times, 250)
	if !online.Done() {
		t.Fatal("fixed-runs rule did not fire at the budget")
	}
	last := snaps[len(snaps)-1]
	if last.Runs != 3000 || !last.Fitted || !last.GateChecked {
		t.Fatalf("last snapshot incomplete: %+v", last)
	}
	got, err := online.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := got.PWCET(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := want.PWCET(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if gotB != wantB {
		t.Errorf("online pWCET %v != batch pWCET %v", gotB, wantB)
	}
	// The pooled snapshot fit over the full series must equal the
	// single-path fit too.
	if last.Fit != want.Paths[0].Fit {
		t.Errorf("snapshot fit %+v != batch fit %+v", last.Fit, want.Paths[0].Fit)
	}
}

func TestOnlineAnalyzerConvergesEarly(t *testing.T) {
	times := synthSeries(6000, 4)
	online := NewOnlineAnalyzer(Options{}, PWCETDelta(1e-12, 0.02, 2))
	snaps := feed(t, online, times, 250)
	if !online.Done() {
		t.Fatal("pWCET-delta rule never fired on stationary data")
	}
	stop := online.Runs()
	if stop >= 6000 {
		t.Fatalf("no early stop: %d runs", stop)
	}
	// The converged estimate must be close to the full-series one.
	full, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	fullB, err := full.PWCET(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	res, err := online.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := res.PWCET(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(gotB-fullB) / fullB; rel > 0.05 {
		t.Errorf("converged pWCET %v is %.1f%% off the full-series %v", gotB, 100*rel, fullB)
	}
	last := snaps[len(snaps)-1]
	if !last.Done || last.Runs != stop {
		t.Errorf("last snapshot %+v does not record the stop", last)
	}
}

func TestSnapshotCurveAndPWCETAt(t *testing.T) {
	s := &Snapshot{Runs: 500, BlockSize: 50, Fitted: true, Fit: evt.Gumbel{Mu: 10000, Beta: 100}}
	b, err := s.PWCETAt(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 10000 {
		t.Errorf("deep quantile %v", b)
	}
	pts, err := s.Curve(10000, b, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 16 {
		t.Fatalf("%d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Projected > pts[i-1].Projected {
			t.Fatal("projected exceedance not monotone")
		}
	}
	var empty Snapshot
	if _, err := empty.PWCETAt(1e-12); err == nil {
		t.Error("unfitted snapshot answered a quantile query")
	}
	if _, err := empty.Curve(0, 1, 4); err == nil {
		t.Error("unfitted snapshot produced a curve")
	}
}

func TestObserveBatchKeepsMitigatedRuns(t *testing.T) {
	o := NewOnlineAnalyzer(Options{}, FixedRuns(1000))
	times := synthSeries(100, 9)
	obs := make([]Observation, len(times))
	for i, v := range times {
		obs[i] = Observation{Cycles: v}
	}
	// 10 runs recovered by a mitigation layer, 5 quarantined.
	for i := 0; i < 10; i++ {
		obs[i].Outcome, obs[i].Mitigated = "corrected", true
	}
	for i := 10; i < 15; i++ {
		obs[i].Outcome = "wrong-output"
	}
	s, err := o.ObserveBatch(obs)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalRuns != 100 {
		t.Fatalf("TotalRuns = %d", s.TotalRuns)
	}
	// Mitigated runs stay in the analyzed series; only the quarantined
	// five leave it.
	if s.Runs != 95 || s.Quarantined != 5 {
		t.Errorf("Runs = %d, Quarantined = %d; want 95 and 5", s.Runs, s.Quarantined)
	}
	// Both flavors are tallied by outcome class.
	if s.Outcomes["corrected"] != 10 || s.Outcomes["wrong-output"] != 5 {
		t.Errorf("Outcomes = %v", s.Outcomes)
	}
}
