// Package core implements the MBPTA analysis pipeline the paper applies
// (the role played by the enhanced commercial timing-analysis tool):
//
//  1. the i.i.d. gate — Ljung-Box independence and two-sample
//     Kolmogorov-Smirnov identical-distribution tests at the 5%
//     significance level; MBPTA is only applicable if both pass;
//  2. block-maxima extraction and a Gumbel tail fit (probability
//     weighted moments by default), with a GEV shape diagnostic that
//     rejects heavy tails;
//  3. rescaling of the per-block tail to per-run exceedance
//     probabilities, yielding the pWCET curve of Figure 2;
//  4. per-path analysis: the application's runs are grouped by executed
//     path, each path is analyzed separately, and pWCET queries take
//     the maximum across paths;
//  5. the convergence criterion: the campaign is deemed large enough
//     once consecutive re-fits of the tail are CRPS-close (the paper's
//     3,000 runs "satisfied the convergence criteria").
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/evt"
	"repro/internal/stats"
)

// Errors reported by the analyzer.
var (
	ErrIIDRejected  = errors.New("core: execution times failed the i.i.d. gate; MBPTA not applicable")
	ErrHeavyTail    = errors.New("core: fitted tail shape is heavy (xi > threshold); MBPTA soundness not established")
	ErrInsufficient = errors.New("core: not enough observations")
)

// Options configures the analyzer. The zero value is completed with the
// paper's defaults by NewAnalyzer.
type Options struct {
	// Alpha is the significance level of the i.i.d. tests (paper: 0.05).
	Alpha float64
	// BlockSize is the block-maxima block length (default 50: the
	// paper's 3,000 runs yield 60 maxima).
	BlockSize int
	// FitMethod selects the Gumbel estimator (default PWM).
	FitMethod evt.FitMethod
	// AllowIIDFailure makes Analyze record a failed i.i.d. gate in the
	// result instead of failing (the default is to fail) — useful for
	// demonstrating *why* the deterministic platform is not
	// MBPTA-analyzable.
	AllowIIDFailure bool
	// TailXiMax is the largest acceptable GEV shape parameter; fits
	// above it are rejected as heavy-tailed (default 0.05). Set
	// negative-infinity semantics with NaN to disable.
	TailXiMax float64
	// MinPathRuns is the minimum number of observations for a path to
	// be analyzed on its own; smaller paths are pooled (default: five
	// blocks, the fit minimum — setting it lower makes AnalyzeByPath
	// fail on paths that clear pooling but cannot be fitted).
	MinPathRuns int
	// Method selects the tail estimator: block maxima + Gumbel (the
	// paper's method, default) or peaks-over-threshold + GPD.
	Method TailMethod
	// PoTQuantile is the threshold quantile of the PoT method
	// (default 0.9).
	PoTQuantile float64
	// QuantileGate additionally runs the nine-decile identical-
	// distribution gate (stats.CheckQuantileGate) on each path: the
	// series halves are compared decile by decile, catching
	// upper-quantile drift the whole-distribution KS test misses.
	// Opt-in; a failure is reported like an i.i.d. gate failure
	// (ErrIIDRejected unless AllowIIDFailure).
	QuantileGate bool
	// QuantileGateAlpha is the quantile gate's family-wise
	// false-positive budget (default 0.01).
	QuantileGateAlpha float64
}

// TailMethod names a tail-estimation approach.
type TailMethod string

// Tail estimation methods.
const (
	MethodBlockMaxima TailMethod = "block-maxima"
	MethodPoT         TailMethod = "pot"
)

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.BlockSize == 0 {
		o.BlockSize = 50
	}
	if o.FitMethod == "" {
		o.FitMethod = evt.MethodPWM
	}
	if o.TailXiMax == 0 {
		o.TailXiMax = 0.05
	}
	if o.MinPathRuns == 0 {
		o.MinPathRuns = 5 * o.BlockSize
	}
	if o.Method == "" {
		o.Method = MethodBlockMaxima
	}
	if o.PoTQuantile == 0 {
		o.PoTQuantile = 0.9
	}
	if o.QuantileGateAlpha == 0 {
		o.QuantileGateAlpha = 0.01
	}
	return o
}

// NewAnalyzer returns an analyzer with opts completed by defaults.
func NewAnalyzer(opts Options) *Analyzer {
	return &Analyzer{opts: opts.withDefaults()}
}

// Analyzer runs the MBPTA pipeline.
type Analyzer struct {
	opts Options
}

// Options returns the effective options.
func (a *Analyzer) Options() Options { return a.opts }

// PerRunTail converts a fitted per-block-maximum Gumbel into a per-run
// exceedance model: if F is the CDF of the maximum of B runs, the
// per-run survival function is 1 - F(x)^(1/B).
type PerRunTail struct {
	Block evt.Gumbel
	B     int
}

// SF returns the probability that a single run exceeds x.
func (t PerRunTail) SF(x float64) float64 {
	// log F(x) = -exp(-(x-mu)/beta); per-run SF = -expm1(logF / B).
	logF := -math.Exp(-(x - t.Block.Mu) / t.Block.Beta)
	return -math.Expm1(logF / float64(t.B))
}

// QuantileSF returns the execution-time bound exceeded by one run with
// probability q: x such that F_block(x) = (1-q)^B.
func (t PerRunTail) QuantileSF(q float64) (float64, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("core: exceedance probability %v outside (0,1)", q)
	}
	// log p_block = B * log(1-q); for tiny q use log1p.
	logP := float64(t.B) * math.Log1p(-q)
	// Gumbel quantile at p: mu - beta ln(-ln p) with ln p = logP.
	return t.Block.Mu - t.Block.Beta*math.Log(-logP), nil
}

// String describes the model.
func (t PerRunTail) String() string {
	return fmt.Sprintf("PerRun{%s, B=%d}", t.Block, t.B)
}

var _ evt.TailModel = PerRunTail{}

// PathResult is the analysis of one executed path.
type PathResult struct {
	Path    string
	N       int
	Summary stats.Summary
	IID     stats.IIDReport
	// QGate is the nine-decile gate report (Options.QuantileGate only;
	// nil when the gate is disabled or the path is too small for it).
	QGate  *stats.QuantileGateReport
	Method TailMethod
	// Fit is the per-block-maximum Gumbel (MethodBlockMaxima only).
	Fit evt.Gumbel
	// PoT is the threshold-exceedance model (MethodPoT only).
	PoT evt.ExceedanceModel
	// Tail answers per-run exceedance queries for either method.
	Tail   evt.TailModel
	GEVXi  float64 // shape diagnostic from a GEV fit of the maxima
	Maxima int     // number of block maxima used (MethodBlockMaxima)
	// Discarded counts the trailing observations dropped by the partial
	// final block (N mod BlockSize), so reported sample sizes are exact:
	// Maxima*BlockSize + Discarded == N.
	Discarded int
	Pooled    bool // true if this is the pooled small-paths group
	// GoF is an Anderson-Darling goodness-of-fit diagnostic of the
	// block maxima against the fitted Gumbel (MethodBlockMaxima only).
	// With estimated parameters the case-0 p-value is approximate; it
	// is reported as a diagnostic, not enforced as a gate.
	GoF stats.TestResult
}

// SmallPath records a path with too few runs to fit: only its
// high-watermark is retained, as a conservative floor for pWCET
// queries. Its presence flags the campaign as incomplete for per-path
// analysis.
type SmallPath struct {
	Path string
	N    int
	HWM  float64
}

// Result is a complete MBPTA analysis.
type Result struct {
	Paths     []PathResult
	BlockSize int
	// SmallPaths lists executed paths whose run counts were too small
	// to fit (even pooled). Their HWMs floor every pWCET query, and
	// Incomplete() reports true: a certification-grade campaign should
	// collect more runs of these paths.
	SmallPaths []SmallPath
	// ECDF over all observations (all paths), for plotting observed
	// exceedance against the projected curve.
	Observed *stats.ECDF
}

// Incomplete reports whether some paths were observed too rarely to be
// analyzed, so pWCET queries rely on an HWM floor for them.
func (r *Result) Incomplete() bool { return len(r.SmallPaths) > 0 }

// PWCET returns the pWCET estimate at per-run exceedance probability q:
// the maximum across paths, as the paper prescribes.
func (r *Result) PWCET(q float64) (float64, error) {
	if len(r.Paths) == 0 {
		return 0, ErrInsufficient
	}
	best := math.Inf(-1)
	for _, p := range r.Paths {
		x, err := p.Tail.QuantileSF(q)
		if err != nil {
			return 0, err
		}
		if x > best {
			best = x
		}
	}
	for _, sp := range r.SmallPaths {
		if sp.HWM > best {
			best = sp.HWM
		}
	}
	return best, nil
}

// ExceedanceAt returns the projected probability that one run exceeds
// x (the upper envelope across paths).
func (r *Result) ExceedanceAt(x float64) float64 {
	worst := 0.0
	for _, p := range r.Paths {
		if sf := p.Tail.SF(x); sf > worst {
			worst = sf
		}
	}
	return worst
}

// IIDPass reports whether every analyzed path passed the i.i.d. gate
// (and, when enabled, the quantile gate).
func (r *Result) IIDPass() bool {
	for _, p := range r.Paths {
		if !p.IID.Pass {
			return false
		}
		if p.QGate != nil && !p.QGate.Pass {
			return false
		}
	}
	return len(r.Paths) > 0
}

// CurvePoint is one point of the pWCET curve (Figure 2): an execution
// time and the probabilities associated with it.
type CurvePoint struct {
	Time      float64
	Projected float64 // fitted per-run exceedance probability
	Observed  float64 // empirical exceedance probability (0 beyond HWM)
}

// Curve samples the pWCET curve over [start, end] with n points,
// reporting projected and observed exceedance probabilities.
func (r *Result) Curve(start, end float64, n int) ([]CurvePoint, error) {
	if n < 2 || !(end > start) {
		return nil, fmt.Errorf("core: bad curve range [%g,%g] n=%d", start, end, n)
	}
	out := make([]CurvePoint, n)
	step := (end - start) / float64(n-1)
	for i := range out {
		x := start + float64(i)*step
		out[i] = CurvePoint{
			Time:      x,
			Projected: r.ExceedanceAt(x),
			Observed:  r.Observed.ExceedanceAt(x),
		}
	}
	return out, nil
}

// Analyze runs the pipeline on a single-path execution-time series (in
// collection order).
func (a *Analyzer) Analyze(times []float64) (*Result, error) {
	return a.AnalyzeByPath(map[string][]float64{"": times})
}

// AnalyzeByPath runs the pipeline per executed path. Paths with fewer
// than MinPathRuns observations are pooled into one group named
// "(pooled)". Series must be in collection order.
func (a *Analyzer) AnalyzeByPath(byPath map[string][]float64) (*Result, error) {
	if len(byPath) == 0 {
		return nil, ErrInsufficient
	}
	// Iterate paths in name order: the pooled series below is a
	// concatenation, and block maxima are order-sensitive, so map
	// iteration order must not leak into the fit (determinism).
	names := make([]string, 0, len(byPath))
	for path := range byPath {
		names = append(names, path)
	}
	sort.Strings(names)
	var pooled []float64
	groups := make(map[string][]float64)
	var all []float64
	for _, path := range names {
		ts := byPath[path]
		all = append(all, ts...)
		if len(ts) < a.opts.MinPathRuns {
			pooled = append(pooled, ts...)
		} else {
			groups[path] = ts
		}
	}
	var small []SmallPath
	if len(pooled) > 0 {
		if len(groups) == 0 || len(pooled) >= a.opts.MinPathRuns {
			// Pool the small paths into one analyzable group (when
			// everything was small the pool is the only path and the
			// per-path fit below enforces its own minimum size).
			groups["(pooled)"] = pooled
		} else {
			// A handful of stragglers: too few to fit even pooled.
			// Splicing them into another path's series would corrupt
			// its ordering (and its distribution), so retain them as
			// HWM floors and mark the analysis incomplete.
			for path, ts := range byPath {
				if len(ts) >= a.opts.MinPathRuns {
					continue
				}
				hwm, err := stats.Max(ts)
				if err != nil {
					return nil, err
				}
				small = append(small, SmallPath{Path: path, N: len(ts), HWM: hwm})
			}
			sort.Slice(small, func(i, j int) bool { return small[i].Path < small[j].Path })
		}
	}

	res := &Result{BlockSize: a.opts.BlockSize, SmallPaths: small}
	var err error
	if res.Observed, err = stats.NewECDF(all); err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(groups))
	for p := range groups {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		pr, err := a.analyzeOne(p, groups[p])
		if err != nil {
			return nil, fmt.Errorf("path %q: %w", p, err)
		}
		res.Paths = append(res.Paths, pr)
	}
	return res, nil
}

// analyzeOne runs the gate + fit on one series.
func (a *Analyzer) analyzeOne(path string, times []float64) (PathResult, error) {
	pr := PathResult{Path: path, N: len(times), Pooled: path == "(pooled)"}
	if len(times) < 5*a.opts.BlockSize {
		return pr, fmt.Errorf("%w: %d runs < 5 blocks of %d",
			ErrInsufficient, len(times), a.opts.BlockSize)
	}
	var err error
	if pr.Summary, err = stats.Summarize(times); err != nil {
		return pr, err
	}
	if pr.IID, err = stats.CheckIID(times, a.opts.Alpha); err != nil {
		return pr, fmt.Errorf("i.i.d. gate: %w", err)
	}
	if !pr.IID.Pass && !a.opts.AllowIIDFailure {
		return pr, fmt.Errorf("%w:\n%s", ErrIIDRejected, pr.IID)
	}
	if a.opts.QuantileGate {
		switch qg, err := stats.CheckQuantileGate(times, stats.QuantileGateOptions{Alpha: a.opts.QuantileGateAlpha}); {
		case errors.Is(err, stats.ErrTooFew):
			// Path cleared MinPathRuns but is below the gate's floor
			// (tiny block sizes): record nothing rather than fail.
		case err != nil:
			return pr, fmt.Errorf("quantile gate: %w", err)
		default:
			pr.QGate = &qg
			if !qg.Pass && !a.opts.AllowIIDFailure {
				return pr, fmt.Errorf("%w:\n%s", ErrIIDRejected, qg)
			}
		}
	}
	pr.Method = a.opts.Method
	maxima, discarded, err := evt.BlockMaxima(times, a.opts.BlockSize)
	if err != nil {
		return pr, err
	}
	pr.Maxima = len(maxima)
	pr.Discarded = discarded
	switch a.opts.Method {
	case MethodBlockMaxima:
		if pr.Fit, err = evt.FitGumbel(maxima, a.opts.FitMethod); err != nil {
			return pr, err
		}
		pr.Tail = PerRunTail{Block: pr.Fit, B: a.opts.BlockSize}
		if gof, gofErr := stats.AndersonDarling(maxima, pr.Fit.CDF, a.opts.Alpha); gofErr == nil {
			pr.GoF = gof
		}
	case MethodPoT:
		if pr.PoT, err = evt.FitPoT(times, a.opts.PoTQuantile); err != nil {
			return pr, err
		}
		// MBPTA soundness also requires a non-heavy PoT shape.
		if !math.IsNaN(a.opts.TailXiMax) && pr.PoT.Tail.Xi > a.opts.TailXiMax+0.2 {
			return pr, fmt.Errorf("%w: GPD xi=%.3f", ErrHeavyTail, pr.PoT.Tail.Xi)
		}
		pr.Tail = pr.PoT
	default:
		return pr, fmt.Errorf("core: unknown tail method %q", a.opts.Method)
	}
	// Tail-shape diagnostic: a Fréchet-type (xi >> 0) fit means the
	// exponential-tail assumption behind the Gumbel projection is
	// unsafe. The PWM shape estimator has asymptotic variance
	// ~0.5633/n at xi=0 (Hosking et al. 1985), so the acceptance
	// threshold is widened by 1.96 standard errors — otherwise genuine
	// Gumbel data would be rejected ~20% of the time on 60 maxima.
	if gev, gevErr := evt.FitGEV(maxima); gevErr == nil {
		pr.GEVXi = gev.Xi
		se := math.Sqrt(0.5633 / float64(len(maxima)))
		if !math.IsNaN(a.opts.TailXiMax) && gev.Xi > a.opts.TailXiMax+1.96*se {
			return pr, fmt.Errorf("%w: xi=%.3f > %.3f (+1.96se)",
				ErrHeavyTail, gev.Xi, a.opts.TailXiMax+1.96*se)
		}
	}
	return pr, nil
}

// ConvergencePoint records one step of the incremental-campaign
// convergence trace (experiment E5).
type ConvergencePoint struct {
	Runs     int
	Fit      evt.Gumbel
	Distance float64 // CRPS distance to the previous fit (0 for first)
	Done     bool
}

// ConvergenceTrace replays the MBPTA collection protocol over a recorded
// series: after every batch of batch runs the tail is refitted and the
// CRPS criterion evaluated. It returns the trace and the run count at
// which the campaign would have been allowed to stop (0 if never).
func (a *Analyzer) ConvergenceTrace(times []float64, batch int) ([]ConvergencePoint, int, error) {
	if batch < a.opts.BlockSize {
		return nil, 0, fmt.Errorf("core: batch %d < block size %d", batch, a.opts.BlockSize)
	}
	crit := evt.NewConvergenceCriterion()
	var trace []ConvergencePoint
	stopAt := 0
	for n := batch; n <= len(times); n += batch {
		maxima, _, err := evt.BlockMaxima(times[:n], a.opts.BlockSize)
		if err != nil {
			return nil, 0, err
		}
		if len(maxima) < 5 {
			continue
		}
		fit, err := evt.FitGumbel(maxima, a.opts.FitMethod)
		if err != nil {
			return nil, 0, err
		}
		done, err := crit.Observe(fit)
		if err != nil {
			return nil, 0, err
		}
		pt := ConvergencePoint{Runs: n, Fit: fit, Done: done}
		if h := crit.History(); len(h) > 0 {
			pt.Distance = h[len(h)-1]
		}
		trace = append(trace, pt)
		if done && stopAt == 0 {
			stopAt = n
		}
	}
	return trace, stopAt, nil
}
