package core

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/telemetry"
)

// stateTestBatches builds a deterministic observation stream with
// enough variation to engage the i.i.d. gate and the tail fit, plus
// occasional quarantined runs and a second path class.
func stateTestBatches(nBatches, batchSize int) [][]Observation {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	out := make([][]Observation, nBatches)
	run := 0
	for b := range out {
		batch := make([]Observation, batchSize)
		for i := range batch {
			// Gumbel-distributed latencies: the shape the per-path
			// soundness diagnostic expects from a time-randomized platform.
			u := rng.Float64()
			cycles := 10_000 - 400*math.Log(-math.Log(u))
			path := "loop-a"
			if run%3 == 0 {
				path = "loop-b"
			}
			ob := Observation{Cycles: cycles, Path: path}
			if run%41 == 7 {
				ob.Outcome = "masked"
			}
			batch[i] = ob
			run++
		}
		out[b] = batch
	}
	return out
}

// deepEqualNaN is reflect.DeepEqual with NaN == NaN: snapshot deltas
// and diagnostics are legitimately NaN, and bit-identity must treat two
// NaNs in the same field as identical.
func deepEqualNaN(a, b reflect.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case reflect.Float32, reflect.Float64:
		fa, fb := a.Float(), b.Float()
		return fa == fb || (math.IsNaN(fa) && math.IsNaN(fb))
	case reflect.Ptr, reflect.Interface:
		if a.IsNil() || b.IsNil() {
			return a.IsNil() == b.IsNil()
		}
		if a.Kind() == reflect.Interface && a.Elem().Type() != b.Elem().Type() {
			return false
		}
		return deepEqualNaN(a.Elem(), b.Elem())
	case reflect.Struct:
		if a.Type() != b.Type() {
			return false
		}
		for i := 0; i < a.NumField(); i++ {
			if !deepEqualNaN(a.Field(i), b.Field(i)) {
				return false
			}
		}
		return true
	case reflect.Slice, reflect.Array:
		if a.Kind() == reflect.Slice && (a.IsNil() != b.IsNil()) {
			return false
		}
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !deepEqualNaN(a.Index(i), b.Index(i)) {
				return false
			}
		}
		return true
	case reflect.Map:
		if a.IsNil() != b.IsNil() || a.Len() != b.Len() {
			return false
		}
		iter := a.MapRange()
		for iter.Next() {
			bv := b.MapIndex(iter.Key())
			if !bv.IsValid() || !deepEqualNaN(iter.Value(), bv) {
				return false
			}
		}
		return true
	case reflect.String:
		return a.String() == b.String()
	case reflect.Bool:
		return a.Bool() == b.Bool()
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return a.Int() == b.Int()
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return a.Uint() == b.Uint()
	default:
		return a.IsNil() && b.IsNil()
	}
}

func equalNaN(a, b interface{}) bool {
	return deepEqualNaN(reflect.ValueOf(a), reflect.ValueOf(b))
}

// snapsEqualModuloElapsed compares snapshot traces ignoring the one
// wall-clock field, which is nondeterministic even between two
// uninterrupted campaigns.
func snapsEqualModuloElapsed(t *testing.T, got, want []Snapshot, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d snapshots, want %d", label, len(got), len(want))
	}
	for i := range got {
		a, b := got[i], want[i]
		a.Elapsed, b.Elapsed = 0, 0
		if !equalNaN(a, b) {
			t.Fatalf("%s: snapshot %d differs:\n got %+v\nwant %+v", label, i, a, b)
		}
	}
}

// TestStateRoundTripAtEveryBatch checkpoints a campaign after every
// batch, restores from the serialized state, continues, and requires
// the resumed snapshot trace (and stop-rule verdicts) to be identical
// to the uninterrupted campaign — the analyzer half of the journal's
// bit-identical-resume invariant.
func TestStateRoundTripAtEveryBatch(t *testing.T) {
	const nBatches, batchSize = 12, 25
	batches := stateTestBatches(nBatches, batchSize)
	opts := Options{BlockSize: 10}
	newRule := func() StopRule { return PWCETDelta(1e-12, 0.02, 2) }

	ref := NewOnlineAnalyzer(opts, newRule())
	for _, b := range batches {
		if _, err := ref.ObserveBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	refSnaps := ref.Snapshots()

	for split := 1; split < nBatches; split++ {
		head := NewOnlineAnalyzer(opts, newRule())
		for _, b := range batches[:split] {
			if _, err := head.ObserveBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		state, err := head.MarshalState()
		if err != nil {
			t.Fatalf("split %d: MarshalState: %v", split, err)
		}
		state2, err := head.MarshalState()
		if err != nil || !bytes.Equal(state, state2) {
			t.Fatalf("split %d: MarshalState is not deterministic", split)
		}
		resumed, err := RestoreOnlineAnalyzer(opts, newRule(), state)
		if err != nil {
			t.Fatalf("split %d: restore: %v", split, err)
		}
		if resumed.Runs() != head.Runs() || resumed.TotalRuns() != head.TotalRuns() || resumed.Done() != head.Done() {
			t.Fatalf("split %d: restored counters diverge: runs %d/%d total %d/%d done %v/%v",
				split, resumed.Runs(), head.Runs(), resumed.TotalRuns(), head.TotalRuns(), resumed.Done(), head.Done())
		}
		for _, b := range batches[split:] {
			if _, err := resumed.ObserveBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		snapsEqualModuloElapsed(t, resumed.Snapshots(), refSnaps, "resumed trace")

		refFinal, err := ref.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		gotFinal, err := resumed.Finalize()
		if err != nil {
			t.Fatalf("split %d: resumed Finalize: %v", split, err)
		}
		if !equalNaN(gotFinal, refFinal) {
			t.Fatalf("split %d: final per-path analysis diverges after resume", split)
		}
	}
}

// TestStateRuleStreakSurvivesRestore checkpoints one batch before a
// convergence rule fires: the restored rule must fire exactly where the
// uninterrupted one does, proving the Done-replay rebuilt the streak.
func TestStateRuleStreakSurvivesRestore(t *testing.T) {
	const nBatches, batchSize = 14, 25
	batches := stateTestBatches(nBatches, batchSize)
	opts := Options{BlockSize: 10}
	newRule := func() StopRule { return CRPSConverged(1e3, 3) } // generous threshold: fires on streak length alone

	ref := NewOnlineAnalyzer(opts, newRule())
	fireAt := -1
	for i, b := range batches {
		snap, err := ref.ObserveBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Done && fireAt < 0 {
			fireAt = i
		}
	}
	if fireAt < 1 {
		t.Fatalf("rule fired at batch %d; test needs a mid-campaign firing", fireAt)
	}

	head := NewOnlineAnalyzer(opts, newRule())
	for _, b := range batches[:fireAt] {
		if _, err := head.ObserveBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if head.Done() {
		t.Fatal("head campaign already done before the split")
	}
	state, err := head.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RestoreOnlineAnalyzer(opts, newRule(), state)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := resumed.ObserveBatch(batches[fireAt])
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Done {
		t.Fatalf("restored rule did not fire at batch %d: streak state lost in restore", fireAt)
	}
}

// TestStateNaNRoundTrip exercises the non-finite snapshot fields the
// standard JSON encoder rejects.
func TestStateNaNRoundTrip(t *testing.T) {
	opts := Options{BlockSize: 10}
	o := NewOnlineAnalyzer(opts, nil)
	// One small batch: no gate, no fit, Delta and PWCETRelDelta are NaN.
	if _, err := o.ObserveBatch([]Observation{{Cycles: 100, Path: "p"}, {Cycles: 101, Path: "p"}}); err != nil {
		t.Fatal(err)
	}
	state, err := o.MarshalState()
	if err != nil {
		t.Fatalf("MarshalState with NaN snapshot fields: %v", err)
	}
	restored, err := RestoreOnlineAnalyzer(opts, nil, state)
	if err != nil {
		t.Fatal(err)
	}
	snaps := restored.Snapshots()
	if len(snaps) != 1 {
		t.Fatalf("restored %d snapshots, want 1", len(snaps))
	}
	if !math.IsNaN(snaps[0].Delta) || !math.IsNaN(snaps[0].PWCETRelDelta) {
		t.Errorf("NaN fields did not survive: delta=%v rel=%v", snaps[0].Delta, snaps[0].PWCETRelDelta)
	}
}

func TestStateRejectsGarbage(t *testing.T) {
	if _, err := RestoreOnlineAnalyzer(Options{}, nil, []byte("not json")); err == nil {
		t.Error("garbage state accepted")
	}
	if _, err := RestoreOnlineAnalyzer(Options{}, nil, []byte(`{"version":999}`)); err == nil {
		t.Error("future state version accepted")
	}
}

// TestPublishSnapshot re-emits a recorded snapshot and checks the
// replayed analysis event matches a live one field for field.
func TestPublishSnapshot(t *testing.T) {
	const nBatches, batchSize = 6, 25
	batches := stateTestBatches(nBatches, batchSize)
	opts := Options{BlockSize: 10}

	live := telemetry.New()
	sink := telemetry.NewRingSink(1024)
	live.Attach(sink)
	o := NewOnlineAnalyzer(opts, nil)
	o.SetTelemetry(live)
	for _, b := range batches {
		if _, err := o.ObserveBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	liveEvents := sink.Events()

	replay := telemetry.New()
	replaySink := telemetry.NewRingSink(1024)
	replay.Attach(replaySink)
	o.SetTelemetry(replay)
	for i := 0; i < nBatches; i++ {
		o.PublishSnapshot(i)
	}
	replayEvents := replaySink.Events()

	if len(replayEvents) != len(liveEvents) {
		t.Fatalf("replayed %d events, live emitted %d", len(replayEvents), len(liveEvents))
	}
	for i := range liveEvents {
		if !liveEvents[i].Equal(replayEvents[i]) {
			t.Errorf("event %d differs: live %+v replay %+v", i, liveEvents[i], replayEvents[i])
		}
	}

	// Out-of-range indices are ignored, not panics.
	o.PublishSnapshot(-1)
	o.PublishSnapshot(nBatches)
}
