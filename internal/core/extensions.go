package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/evt"
	"repro/internal/rng"
	"repro/internal/stats"
)

// The extensions in this file go beyond the paper's §III pipeline, into
// the techniques its successor literature applies on top of the same
// campaigns: bootstrap confidence intervals on pWCET estimates and the
// coefficient-of-variation exponentiality diagnostic of MBPTA-CV.

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
	Level  float64 // e.g. 0.95
}

// BootstrapPWCET estimates a percentile-bootstrap confidence interval
// for the pWCET at exceedance probability q: the block maxima of the
// series are resampled with replacement, the Gumbel tail is refitted
// and the bound recomputed, resamples times. Resampling randomness is
// derived from seed, so results are reproducible.
func (a *Analyzer) BootstrapPWCET(times []float64, q float64, resamples int,
	level float64, seed uint64) (CI, error) {
	src := rng.NewXoroshiro128(seed)
	if resamples < 20 {
		return CI{}, fmt.Errorf("core: %d resamples too few (need >= 20)", resamples)
	}
	if level <= 0 || level >= 1 {
		return CI{}, fmt.Errorf("core: confidence level %v outside (0,1)", level)
	}
	maxima, _, err := evt.BlockMaxima(times, a.opts.BlockSize)
	if err != nil {
		return CI{}, err
	}
	if len(maxima) < 5 {
		return CI{}, fmt.Errorf("%w: %d block maxima", ErrInsufficient, len(maxima))
	}
	bounds := make([]float64, 0, resamples)
	resample := make([]float64, len(maxima))
	for r := 0; r < resamples; r++ {
		for i := range resample {
			resample[i] = maxima[rng.Intn(src, len(maxima))]
		}
		fit, err := evt.FitGumbel(resample, a.opts.FitMethod)
		if err != nil {
			// A degenerate resample (all-equal maxima) can occur on tiny
			// inputs; skip it rather than abort the whole interval.
			continue
		}
		b, err := PerRunTail{Block: fit, B: a.opts.BlockSize}.QuantileSF(q)
		if err != nil {
			return CI{}, err
		}
		bounds = append(bounds, b)
	}
	if len(bounds) < resamples/2 {
		return CI{}, fmt.Errorf("%w: %d/%d resamples degenerate", ErrInsufficient,
			resamples-len(bounds), resamples)
	}
	sort.Float64s(bounds)
	alpha := (1 - level) / 2
	lo, err := stats.Quantile(bounds, alpha)
	if err != nil {
		return CI{}, err
	}
	hi, err := stats.Quantile(bounds, 1-alpha)
	if err != nil {
		return CI{}, err
	}
	return CI{Lo: lo, Hi: hi, Level: level}, nil
}

// CVPoint is one point of the residual coefficient-of-variation plot
// used by the MBPTA-CV exponentiality diagnostic.
type CVPoint struct {
	Threshold   float64 // threshold value (a quantile of the sample)
	Exceedances int
	CV          float64 // coefficient of variation of the exceedances
	InBand      bool    // within the 95% acceptance band around 1
}

// ExponentialityCV computes the coefficient of variation of the
// threshold exceedances (X - u | X > u) over a ladder of thresholds
// (quantiles from startQ up to endQ). For an exponential tail the CV
// converges to 1; CV significantly above 1 indicates a heavy tail and
// below 1 a bounded tail (both detected against the asymptotic
// 1 +- 1.96/sqrt(n) band). This is the tail-acceptance criterion of
// MBPTA-CV (Abella et al.), usable alongside the GEV-shape check.
func ExponentialityCV(times []float64, startQ, endQ float64, steps int) ([]CVPoint, error) {
	if len(times) < 50 {
		return nil, fmt.Errorf("%w: %d observations", ErrInsufficient, len(times))
	}
	if !(0 < startQ && startQ < endQ && endQ < 1) || steps < 1 {
		return nil, fmt.Errorf("core: bad CV ladder [%v,%v] x%d", startQ, endQ, steps)
	}
	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	out := make([]CVPoint, 0, steps)
	for s := 0; s < steps; s++ {
		q := startQ + (endQ-startQ)*float64(s)/float64(maxInt(steps-1, 1))
		u := sorted[int(q*float64(len(sorted)-1))]
		var exc []float64
		for _, x := range sorted {
			if x > u {
				exc = append(exc, x-u)
			}
		}
		if len(exc) < 10 {
			break
		}
		m, err := stats.Mean(exc)
		if err != nil {
			return nil, err
		}
		sd, err := stats.StdDev(exc)
		if err != nil {
			return nil, err
		}
		cv := 0.0
		if m > 0 {
			cv = sd / m
		}
		band := 1.96 / math.Sqrt(float64(len(exc)))
		out = append(out, CVPoint{
			Threshold:   u,
			Exceedances: len(exc),
			CV:          cv,
			InBand:      cv >= 1-band && cv <= 1+band,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: no usable thresholds", ErrInsufficient)
	}
	return out, nil
}

// CVVerdict summarizes an ExponentialityCV ladder: the tail is accepted
// as exponential when the final windowFrac fraction of points lies in
// the acceptance band or below it (a CV below the band means a bounded,
// hence safely Gumbel-overbounded, tail).
func CVVerdict(points []CVPoint, windowFrac float64) (bool, error) {
	if len(points) == 0 {
		return false, fmt.Errorf("%w: empty ladder", ErrInsufficient)
	}
	if windowFrac <= 0 || windowFrac > 1 {
		return false, fmt.Errorf("core: window fraction %v outside (0,1]", windowFrac)
	}
	start := int(float64(len(points)) * (1 - windowFrac))
	for _, p := range points[start:] {
		band := 1.96 / math.Sqrt(float64(p.Exceedances))
		if p.CV > 1+band {
			return false, nil
		}
	}
	return true, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
