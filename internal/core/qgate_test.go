package core

import (
	"errors"
	"testing"

	"repro/internal/evt"
	"repro/internal/rng"
)

// upperDecileShiftSeries is the acceptance construction at campaign
// scale: a series whose second half carries a small shift confined to
// the top ~15% of the distribution, scaled to cycle-like magnitudes.
// The whole-distribution i.i.d. gate (Ljung-Box + KS on halves) passes
// it; the nine-decile quantile gate rejects it. Both gates are affine
// invariant, so the scaling changes neither verdict (seed pinned in
// the stats-level twin, TestQuantileGateCatchesWhatKSMisses).
func upperDecileShiftSeries() []float64 {
	src := rng.NewXoroshiro128(11)
	xs := make([]float64, 2000)
	for i := range xs {
		v := rng.Float64(src) - 0.5
		if i >= 1000 && v > 0.35 {
			v += 0.05
		}
		xs[i] = 10000 + 1000*v
	}
	return xs
}

// TestAnalyzeQuantileGateCatchesUpperDecileShift is the wiring half of
// the acceptance scenario: the same series clears the default analyzer
// (old gate passes, no QGate report without opt-in) and is rejected
// once Options.QuantileGate is set.
func TestAnalyzeQuantileGateCatchesUpperDecileShift(t *testing.T) {
	times := upperDecileShiftSeries()

	res, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatalf("default analyzer rejected the series the old gate should pass: %v", err)
	}
	if !res.Paths[0].IID.Pass {
		t.Fatalf("whole-distribution gate unexpectedly rejected:\n%s", res.Paths[0].IID)
	}
	if res.Paths[0].QGate != nil {
		t.Error("QGate report populated without Options.QuantileGate")
	}

	if _, err := NewAnalyzer(Options{QuantileGate: true}).Analyze(times); !errors.Is(err, ErrIIDRejected) {
		t.Fatalf("quantile-gated analyzer error = %v, want ErrIIDRejected", err)
	}

	// AllowIIDFailure keeps the analysis and records the verdict.
	res, err = NewAnalyzer(Options{QuantileGate: true, AllowIIDFailure: true}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	qg := res.Paths[0].QGate
	if qg == nil || qg.Pass {
		t.Fatalf("QGate = %+v, want a recorded failure", qg)
	}
	if qg.EffectDecile < 0.8 {
		t.Errorf("effect localized at q%.0f, expected an upper decile", qg.EffectDecile*100)
	}
	if res.IIDPass() {
		t.Error("IIDPass() = true with a failing quantile gate")
	}
}

// TestAnalyzeQuantileGatePassesOnIID: on genuinely identically
// distributed data the gate passes and changes nothing about the
// estimate itself.
func TestAnalyzeQuantileGatePassesOnIID(t *testing.T) {
	times := gumbelSeries(5, 3000, evt.Gumbel{Mu: 10000, Beta: 120})
	plain, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	gated, err := NewAnalyzer(Options{QuantileGate: true}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	qg := gated.Paths[0].QGate
	if qg == nil || !qg.Pass {
		t.Fatalf("QGate = %+v, want a recorded pass", qg)
	}
	if !gated.IIDPass() {
		t.Error("IIDPass() = false with both gates passing")
	}
	a, err := plain.PWCET(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gated.PWCET(1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("enabling the gate changed the estimate: %v != %v", b, a)
	}
}

// TestOnlineQuantileGateSnapshots: the streaming analyzer mirrors the
// batch wiring — snapshots carry the gate verdict only under the
// option, and GatePass folds it into the combined verdict.
func TestOnlineQuantileGateSnapshots(t *testing.T) {
	// Seed 5 is a replication where the whole-distribution gate also
	// passes at this length, so GatePass isolates the quantile verdict.
	clean := synthSeries(2000, 5)

	// Disabled (the default): the gate is never computed.
	off := NewOnlineAnalyzer(Options{}, FixedRuns(2000))
	for _, s := range feed(t, off, clean, 250) {
		if s.QGateChecked {
			t.Fatal("snapshot carries a quantile-gate verdict without the option")
		}
	}

	on := NewOnlineAnalyzer(Options{QuantileGate: true}, FixedRuns(2000))
	snaps := feed(t, on, clean, 250)
	last := snaps[len(snaps)-1]
	if !last.QGateChecked || !last.QGate.Pass {
		t.Fatalf("clean series: QGateChecked=%v Pass=%v", last.QGateChecked, last.QGate.Pass)
	}
	if !last.GatePass() {
		t.Error("GatePass() = false with both gates passing")
	}

	shifted := NewOnlineAnalyzer(Options{QuantileGate: true, AllowIIDFailure: true}, FixedRuns(2000))
	snaps = feed(t, shifted, upperDecileShiftSeries(), 250)
	last = snaps[len(snaps)-1]
	if !last.QGateChecked || last.QGate.Pass {
		t.Fatalf("shifted series: QGateChecked=%v Pass=%v, want a recorded failure", last.QGateChecked, last.QGate.Pass)
	}
	if !last.Gate.Pass {
		t.Fatalf("whole-distribution gate unexpectedly rejected the shifted series:\n%s", last.Gate)
	}
	if last.GatePass() {
		t.Error("GatePass() = true with a failing quantile gate")
	}
}

// TestStateRoundTripWithQuantileGate: checkpoint/restore preserves the
// gate report bit for bit — the resumed snapshot trace (QGate verdicts
// included) must be identical to the uninterrupted campaign's.
func TestStateRoundTripWithQuantileGate(t *testing.T) {
	const nBatches, batchSize = 12, 25
	batches := stateTestBatches(nBatches, batchSize)
	opts := Options{BlockSize: 10, QuantileGate: true, AllowIIDFailure: true}
	newRule := func() StopRule { return FixedRuns(nBatches * batchSize) }

	ref := NewOnlineAnalyzer(opts, newRule())
	for _, b := range batches {
		if _, err := ref.ObserveBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	refSnaps := ref.Snapshots()
	if last := refSnaps[len(refSnaps)-1]; !last.QGateChecked {
		t.Fatal("reference campaign never checked the quantile gate")
	}

	for split := 1; split < nBatches; split++ {
		head := NewOnlineAnalyzer(opts, newRule())
		for _, b := range batches[:split] {
			if _, err := head.ObserveBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		state, err := head.MarshalState()
		if err != nil {
			t.Fatalf("split %d: MarshalState: %v", split, err)
		}
		resumed, err := RestoreOnlineAnalyzer(opts, newRule(), state)
		if err != nil {
			t.Fatalf("split %d: restore: %v", split, err)
		}
		for _, b := range batches[split:] {
			if _, err := resumed.ObserveBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		snapsEqualModuloElapsed(t, resumed.Snapshots(), refSnaps, "resumed quantile-gated trace")
	}
}
