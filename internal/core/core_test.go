package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/evt"
	"repro/internal/rng"
)

// gumbelSeries draws an i.i.d. series whose per-run distribution is a
// known Gumbel, so the analyzer's per-run projection can be checked
// against ground truth.
func gumbelSeries(seed uint64, n int, g evt.Gumbel) []float64 {
	src := rng.NewXoroshiro128(seed)
	return g.Sample(src, n)
}

func TestOptionsDefaults(t *testing.T) {
	a := NewAnalyzer(Options{})
	o := a.Options()
	if o.Alpha != 0.05 || o.BlockSize != 50 || o.FitMethod != evt.MethodPWM {
		t.Errorf("defaults wrong: %+v", o)
	}
	if o.TailXiMax != 0.05 || o.MinPathRuns != 250 {
		t.Errorf("defaults wrong: %+v", o)
	}
	// MinPathRuns tracks a custom block size.
	if got := NewAnalyzer(Options{BlockSize: 20}).Options().MinPathRuns; got != 100 {
		t.Errorf("MinPathRuns with block 20 = %d, want 100", got)
	}
}

func TestAnalyzeRecoversKnownTail(t *testing.T) {
	truth := evt.Gumbel{Mu: 10000, Beta: 120}
	times := gumbelSeries(5, 3000, truth)
	res, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("%d paths", len(res.Paths))
	}
	p := res.Paths[0]
	if !p.IID.Pass {
		t.Errorf("i.i.d. gate failed on i.i.d. input:\n%s", p.IID)
	}
	if p.Maxima != 60 {
		t.Errorf("maxima = %d, want 60", p.Maxima)
	}
	// The per-run tail at q=1e-3 should be near the true quantile.
	want, _ := truth.QuantileSF(1e-3)
	got, err := res.PWCET(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("pWCET(1e-3) = %.0f, truth %.0f", got, want)
	}
	// Deep extrapolation stays finite and ordered.
	q6, _ := res.PWCET(1e-6)
	q12, _ := res.PWCET(1e-12)
	q15, _ := res.PWCET(1e-15)
	if !(got < q6 && q6 < q12 && q12 < q15) {
		t.Errorf("pWCET not increasing: %v %v %v %v", got, q6, q12, q15)
	}
	if math.IsInf(q15, 0) || math.IsNaN(q15) {
		t.Errorf("pWCET(1e-15) = %v", q15)
	}
}

func TestPWCETUpperBoundsObservations(t *testing.T) {
	// Figure 2's property: the projected curve tightly upper-bounds the
	// observed tail. The pWCET at 1/N should be >= ~the observed max,
	// and the projection at the observed max should not be vanishing.
	times := gumbelSeries(9, 3000, evt.Gumbel{Mu: 5000, Beta: 80})
	res, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	hwm := 0.0
	for _, v := range times {
		if v > hwm {
			hwm = v
		}
	}
	q, _ := res.PWCET(1.0 / 3000)
	if q < hwm*0.98 {
		t.Errorf("pWCET(1/N) = %.0f far below HWM %.0f", q, hwm)
	}
	if sf := res.ExceedanceAt(hwm); sf < 1e-5 {
		t.Errorf("projected exceedance at HWM = %g; tail does not cover observations", sf)
	}
}

func TestAnalyzeRejectsAutocorrelated(t *testing.T) {
	// A strongly autocorrelated series must fail the gate.
	src := rng.NewXoroshiro128(3)
	times := make([]float64, 2000)
	prev := 0.0
	for i := range times {
		prev = 0.9*prev + rng.Float64(src)
		times[i] = 1000 + 100*prev
	}
	_, err := NewAnalyzer(Options{}).Analyze(times)
	if !errors.Is(err, ErrIIDRejected) {
		t.Errorf("err = %v, want ErrIIDRejected", err)
	}
	// With AllowIIDFailure the result is returned with the gate marked.
	res, err := NewAnalyzer(Options{AllowIIDFailure: true}).Analyze(times)
	if err != nil {
		t.Fatalf("AllowIIDFailure: %v", err)
	}
	if res.IIDPass() {
		t.Error("gate marked as passed on autocorrelated input")
	}
}

func TestAnalyzeRejectsHeavyTail(t *testing.T) {
	// Fréchet-distributed times (xi=0.4) must trip the shape check.
	src := rng.NewXoroshiro128(8)
	gev := evt.GEV{Xi: 0.4, Mu: 1000, Sigma: 50}
	times := make([]float64, 3000)
	for i := range times {
		u := rng.Float64(src)
		for u == 0 {
			u = rng.Float64(src)
		}
		x, err := gev.Quantile(u)
		if err != nil {
			t.Fatal(err)
		}
		times[i] = x
	}
	_, err := NewAnalyzer(Options{}).Analyze(times)
	if !errors.Is(err, ErrHeavyTail) {
		t.Errorf("err = %v, want ErrHeavyTail", err)
	}
	// Disabling the check with NaN accepts the fit.
	if _, err := NewAnalyzer(Options{TailXiMax: math.NaN()}).Analyze(times); err != nil {
		t.Errorf("disabled check still failed: %v", err)
	}
}

func TestAnalyzeInsufficientData(t *testing.T) {
	times := gumbelSeries(1, 100, evt.Gumbel{Mu: 10, Beta: 1})
	_, err := NewAnalyzer(Options{}).Analyze(times) // 100 < 5*50
	if !errors.Is(err, ErrInsufficient) {
		t.Errorf("err = %v, want ErrInsufficient", err)
	}
	if _, err := NewAnalyzer(Options{}).AnalyzeByPath(nil); !errors.Is(err, ErrInsufficient) {
		t.Errorf("empty map err = %v", err)
	}
}

func TestPerRunTailConsistency(t *testing.T) {
	tail := PerRunTail{Block: evt.Gumbel{Mu: 1000, Beta: 20}, B: 50}
	for _, q := range []float64{1e-15, 1e-9, 1e-6, 1e-3, 0.01} {
		x, err := tail.QuantileSF(q)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(tail.SF(x)-q) / q
		if rel > 1e-6 {
			t.Errorf("q=%g: SF(QSF(q)) rel err %g", q, rel)
		}
	}
	if _, err := tail.QuantileSF(0); err == nil {
		t.Error("q=0 accepted")
	}
	if _, err := tail.QuantileSF(1); err == nil {
		t.Error("q=1 accepted")
	}
}

func TestPerRunTailMatchesBlockScaling(t *testing.T) {
	// For small q, per-run SF at x should be ~ SF_block(x)/B.
	tail := PerRunTail{Block: evt.Gumbel{Mu: 1000, Beta: 20}, B: 50}
	x, _ := tail.Block.QuantileSF(1e-6)
	perRun := tail.SF(x)
	want := 1e-6 / 50
	if math.Abs(perRun-want)/want > 0.01 {
		t.Errorf("per-run SF = %g, want ~%g", perRun, want)
	}
}

func TestAnalyzeByPathTakesMaxAcrossPaths(t *testing.T) {
	fast := gumbelSeries(11, 2000, evt.Gumbel{Mu: 1000, Beta: 10})
	slow := gumbelSeries(12, 2000, evt.Gumbel{Mu: 2000, Beta: 30})
	res, err := NewAnalyzer(Options{}).AnalyzeByPath(map[string][]float64{
		"fast": fast, "slow": slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 {
		t.Fatalf("%d paths", len(res.Paths))
	}
	q, err := res.PWCET(1e-9)
	if err != nil {
		t.Fatal(err)
	}
	slowOnly, _ := NewAnalyzer(Options{}).Analyze(slow)
	qs, _ := slowOnly.PWCET(1e-9)
	if math.Abs(q-qs)/qs > 0.01 {
		t.Errorf("cross-path pWCET %.0f != slow-path pWCET %.0f", q, qs)
	}
}

func TestAnalyzeByPathPoolsSmallPaths(t *testing.T) {
	big := gumbelSeries(13, 2000, evt.Gumbel{Mu: 1000, Beta: 10})
	tinyA := gumbelSeries(14, 150, evt.Gumbel{Mu: 1100, Beta: 10})
	tinyB := gumbelSeries(15, 149, evt.Gumbel{Mu: 1100, Beta: 10})
	res, err := NewAnalyzer(Options{MinPathRuns: 250}).AnalyzeByPath(map[string][]float64{
		"big": big, "a": tinyA, "b": tinyB,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawPooled bool
	for _, p := range res.Paths {
		if p.Pooled {
			sawPooled = true
			if p.N != 299 {
				t.Errorf("pooled N = %d, want 299", p.N)
			}
		}
	}
	if !sawPooled {
		t.Error("no pooled path produced")
	}
}

func TestAnalyzeByPathSmallPathHWMFloor(t *testing.T) {
	// A handful of runs below MinPathRuns that do not reach the
	// threshold even pooled become HWM floors: their extremes still
	// dominate pWCET queries, and the result is flagged incomplete.
	big := gumbelSeries(16, 2000, evt.Gumbel{Mu: 1000, Beta: 10})
	straggler := []float64{5000, 5100, 5200} // extreme observations
	res, err := NewAnalyzer(Options{}).AnalyzeByPath(map[string][]float64{
		"big": big, "rare": straggler,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 1 {
		t.Fatalf("%d fitted paths, want 1", len(res.Paths))
	}
	if !res.Incomplete() || len(res.SmallPaths) != 1 {
		t.Fatalf("small paths = %+v", res.SmallPaths)
	}
	if res.SmallPaths[0].HWM != 5200 || res.SmallPaths[0].N != 3 {
		t.Errorf("small path %+v", res.SmallPaths[0])
	}
	// The rare path's HWM must floor shallow pWCET queries (the fitted
	// big-path tail at 1e-3 is far below 5200).
	q, err := res.PWCET(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if q < 5200 {
		t.Errorf("pWCET(1e-3) = %.0f, want >= 5200 (HWM floor)", q)
	}
}

func TestResultCompleteWithoutSmallPaths(t *testing.T) {
	times := gumbelSeries(17, 1000, evt.Gumbel{Mu: 1000, Beta: 10})
	res, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	if res.Incomplete() {
		t.Error("single-path analysis flagged incomplete")
	}
}

func TestCurve(t *testing.T) {
	times := gumbelSeries(21, 3000, evt.Gumbel{Mu: 1000, Beta: 15})
	res, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := res.Curve(900, 1400, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("%d points", len(pts))
	}
	// Projected exceedance decreases along the curve and upper-bounds
	// the observed tail at high times.
	for i := 1; i < len(pts); i++ {
		if pts[i].Projected > pts[i-1].Projected+1e-12 {
			t.Fatalf("projected not monotone at %d", i)
		}
	}
	for _, pt := range pts {
		if pt.Time > res.Paths[0].Summary.P99 && pt.Observed > 0 {
			if pt.Projected < pt.Observed*0.3 {
				t.Errorf("projection %g far below observed %g at t=%g",
					pt.Projected, pt.Observed, pt.Time)
			}
		}
	}
	if _, err := res.Curve(10, 10, 5); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := res.Curve(0, 10, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestConvergenceTrace(t *testing.T) {
	times := gumbelSeries(31, 5000, evt.Gumbel{Mu: 3000, Beta: 40})
	a := NewAnalyzer(Options{})
	trace, stopAt, err := a.ConvergenceTrace(times, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if stopAt == 0 {
		t.Fatal("campaign never converged on stationary data")
	}
	if stopAt > 5000 {
		t.Errorf("stopAt = %d", stopAt)
	}
	// The trace's final fit models the per-block maximum: the max of
	// B=50 draws of Gumbel(mu, beta) is Gumbel(mu + beta ln B, beta).
	last := trace[len(trace)-1]
	wantMu := 3000 + 40*math.Log(50)
	if math.Abs(last.Fit.Mu-wantMu) > wantMu*0.02 {
		t.Errorf("final fit mu = %v, want ~%v", last.Fit.Mu, wantMu)
	}
	if math.Abs(last.Fit.Beta-40) > 10 {
		t.Errorf("final fit beta = %v, want ~40", last.Fit.Beta)
	}
	if _, _, err := a.ConvergenceTrace(times, 10); err == nil {
		t.Error("batch < block size accepted")
	}
}

func TestResultEmptyPWCET(t *testing.T) {
	r := &Result{}
	if _, err := r.PWCET(1e-6); !errors.Is(err, ErrInsufficient) {
		t.Error("empty result PWCET succeeded")
	}
}

func TestPerRunTailString(t *testing.T) {
	s := PerRunTail{Block: evt.Gumbel{Mu: 1, Beta: 2}, B: 50}.String()
	if s == "" {
		t.Error("empty String")
	}
}

func TestGoFDiagnosticOnGumbelData(t *testing.T) {
	times := gumbelSeries(71, 3000, evt.Gumbel{Mu: 1000, Beta: 25})
	res, err := NewAnalyzer(Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	gof := res.Paths[0].GoF
	if gof.Name == "" {
		t.Fatal("no goodness-of-fit diagnostic recorded")
	}
	// Genuine Gumbel maxima against their own fit: the diagnostic
	// should not scream (p not minuscule). With estimated parameters
	// the case-0 p-value is conservative toward acceptance.
	if gof.PValue < 0.01 {
		t.Errorf("GoF p = %.4f on well-specified data", gof.PValue)
	}
}
