// Analyzer state snapshot/restore: the serialization half of the
// campaign durability layer (internal/wal). MarshalState captures an
// OnlineAnalyzer's incremental state at a batch barrier; restoring it
// and continuing the campaign is bit-identical to never having
// stopped, which is the property MBPTA's protocol demands of crash
// recovery — the analyzed sample must be exactly the uninterrupted
// sample.
//
// Stop-rule state is not serialized: rules are arbitrary caller
// interfaces. Instead, RestoreOnlineAnalyzer replays the recorded
// snapshot trace through the fresh rule's Done method (once per batch,
// in batch order — exactly the live contract), which deterministically
// rebuilds any streak/previous-value state the rule keeps.
package core

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/evt"
	"repro/internal/stats"
)

// jf is a JSON-safe float64: encoding/json rejects non-finite values,
// but snapshot deltas are NaN until two fits exist, so non-finite
// values are spelled out as strings. Finite values round-trip exactly
// (Go emits the shortest representation that parses back bit-equal).
type jf float64

func (v jf) MarshalJSON() ([]byte, error) {
	f := float64(v)
	switch {
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(f)
}

func (v *jf) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*v = jf(math.NaN())
		case "+Inf":
			*v = jf(math.Inf(1))
		case "-Inf":
			*v = jf(math.Inf(-1))
		default:
			return fmt.Errorf("core: bad non-finite float %q", s)
		}
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	*v = jf(f)
	return nil
}

// stateVersion guards the serialized layout.
const stateVersion = 1

type stateTest struct {
	Name      string `json:"name"`
	Statistic jf     `json:"stat"`
	PValue    jf     `json:"p"`
	Alpha     jf     `json:"alpha"`
	Rejected  bool   `json:"rejected"`
	DF        int    `json:"df"`
}

func toStateTest(t stats.TestResult) stateTest {
	return stateTest{Name: t.Name, Statistic: jf(t.Statistic), PValue: jf(t.PValue),
		Alpha: jf(t.Alpha), Rejected: t.Rejected, DF: t.DF}
}

func (t stateTest) test() stats.TestResult {
	return stats.TestResult{Name: t.Name, Statistic: float64(t.Statistic), PValue: float64(t.PValue),
		Alpha: float64(t.Alpha), Rejected: t.Rejected, DF: t.DF}
}

// stateQEstimate mirrors stats.QuantileEstimate.
type stateQEstimate struct {
	Q     jf `json:"q"`
	Point jf `json:"point"`
	SE    jf `json:"se"`
	Lo    jf `json:"lo"`
	Hi    jf `json:"hi"`
}

func toStateQEstimate(e stats.QuantileEstimate) stateQEstimate {
	return stateQEstimate{Q: jf(e.Q), Point: jf(e.Point), SE: jf(e.SE), Lo: jf(e.Lo), Hi: jf(e.Hi)}
}

func (e stateQEstimate) estimate() stats.QuantileEstimate {
	return stats.QuantileEstimate{Q: float64(e.Q), Point: float64(e.Point), SE: float64(e.SE),
		Lo: float64(e.Lo), Hi: float64(e.Hi)}
}

// stateQDecile mirrors stats.DecileResult.
type stateQDecile struct {
	Q         jf             `json:"q"`
	A         stateQEstimate `json:"a"`
	B         stateQEstimate `json:"b"`
	Diff      jf             `json:"diff"`
	SE        jf             `json:"se"`
	Lo        jf             `json:"lo"`
	Hi        jf             `json:"hi"`
	Z         jf             `json:"z"`
	P         jf             `json:"p"`
	Leak      bool           `json:"leak"`
	BF10      jf             `json:"bf10"`
	Posterior jf             `json:"posterior"`
}

// stateQGate mirrors stats.QuantileGateReport. The full report is
// serialized — not just the verdict — because resumed campaigns must
// republish and fingerprint snapshots bit-identically to an
// uninterrupted run.
type stateQGate struct {
	NA          int            `json:"na"`
	NB          int            `json:"nb"`
	Alpha       jf             `json:"alpha"`
	PriorEffect jf             `json:"prior_effect"`
	RhoA        jf             `json:"rho_a"`
	RhoB        jf             `json:"rho_b"`
	Deciles     []stateQDecile `json:"deciles"`
	Leaks       int            `json:"leaks"`
	Pass        bool           `json:"pass"`
	MaxAbsZ     jf             `json:"max_abs_z"`
	LeakProb    jf             `json:"leak_p"`
	Effect      jf             `json:"effect"`
	EffectQ     jf             `json:"effect_q"`
}

func toStateQGate(r stats.QuantileGateReport) *stateQGate {
	out := &stateQGate{
		NA: r.NA, NB: r.NB, Alpha: jf(r.Alpha), PriorEffect: jf(r.PriorEffect),
		RhoA: jf(r.RhoA), RhoB: jf(r.RhoB),
		Leaks: r.Leaks, Pass: r.Pass, MaxAbsZ: jf(r.MaxAbsZ),
		LeakProb: jf(r.LeakProbability), Effect: jf(r.EffectCycles), EffectQ: jf(r.EffectDecile),
	}
	out.Deciles = make([]stateQDecile, len(r.Deciles))
	for i, d := range r.Deciles {
		out.Deciles[i] = stateQDecile{
			Q: jf(d.Q), A: toStateQEstimate(d.A), B: toStateQEstimate(d.B),
			Diff: jf(d.Diff), SE: jf(d.SE), Lo: jf(d.Lo), Hi: jf(d.Hi),
			Z: jf(d.Z), P: jf(d.P), Leak: d.Leak, BF10: jf(d.BF10), Posterior: jf(d.Posterior),
		}
	}
	return out
}

func (g *stateQGate) report() stats.QuantileGateReport {
	out := stats.QuantileGateReport{
		NA: g.NA, NB: g.NB, Alpha: float64(g.Alpha), PriorEffect: float64(g.PriorEffect),
		RhoA: float64(g.RhoA), RhoB: float64(g.RhoB),
		Leaks: g.Leaks, Pass: g.Pass, MaxAbsZ: float64(g.MaxAbsZ),
		LeakProbability: float64(g.LeakProb), EffectCycles: float64(g.Effect), EffectDecile: float64(g.EffectQ),
	}
	out.Deciles = make([]stats.DecileResult, len(g.Deciles))
	for i, d := range g.Deciles {
		out.Deciles[i] = stats.DecileResult{
			Q: float64(d.Q), A: d.A.estimate(), B: d.B.estimate(),
			Diff: float64(d.Diff), SE: float64(d.SE), Lo: float64(d.Lo), Hi: float64(d.Hi),
			Z: float64(d.Z), P: float64(d.P), Leak: d.Leak,
			BF10: float64(d.BF10), Posterior: float64(d.Posterior),
		}
	}
	return out
}

type stateSnap struct {
	Batch        int            `json:"batch"`
	Runs         int            `json:"runs"`
	TotalRuns    int            `json:"total_runs"`
	Quarantined  int            `json:"quarantined"`
	Outcomes     map[string]int `json:"outcomes,omitempty"`
	BlockSize    int            `json:"block_size"`
	Discarded    int            `json:"discarded"`
	Independence *stateTest     `json:"lb,omitempty"`
	IdentDist    *stateTest     `json:"ks,omitempty"`
	GatePass     bool           `json:"gate_pass"`
	GateChecked  bool           `json:"gate_checked"`
	QGate        *stateQGate    `json:"qgate,omitempty"`
	FitMu        jf             `json:"mu"`
	FitBeta      jf             `json:"beta"`
	Fitted       bool           `json:"fitted"`
	Delta        jf             `json:"delta"`
	RefProb      jf             `json:"ref_prob"`
	PWCET        jf             `json:"pwcet"`
	PWCETRel     jf             `json:"pwcet_rel_delta"`
	ElapsedNs    int64          `json:"elapsed_ns"`
	Done         bool           `json:"done"`
}

func toStateSnap(s Snapshot) stateSnap {
	out := stateSnap{
		Batch: s.Batch, Runs: s.Runs, TotalRuns: s.TotalRuns, Quarantined: s.Quarantined,
		BlockSize: s.BlockSize, Discarded: s.Discarded,
		GatePass: s.Gate.Pass, GateChecked: s.GateChecked,
		FitMu: jf(s.Fit.Mu), FitBeta: jf(s.Fit.Beta), Fitted: s.Fitted,
		Delta: jf(s.Delta), RefProb: jf(s.RefProb), PWCET: jf(s.PWCET), PWCETRel: jf(s.PWCETRelDelta),
		ElapsedNs: int64(s.Elapsed), Done: s.Done,
	}
	if len(s.Outcomes) > 0 {
		out.Outcomes = make(map[string]int, len(s.Outcomes))
		for k, v := range s.Outcomes {
			out.Outcomes[k] = v
		}
	}
	if s.GateChecked {
		lb, ks := toStateTest(s.Gate.Independence), toStateTest(s.Gate.IdentDist)
		out.Independence, out.IdentDist = &lb, &ks
	}
	if s.QGateChecked {
		out.QGate = toStateQGate(s.QGate)
	}
	return out
}

func (s stateSnap) snapshot() Snapshot {
	out := Snapshot{
		Batch: s.Batch, Runs: s.Runs, TotalRuns: s.TotalRuns, Quarantined: s.Quarantined,
		BlockSize: s.BlockSize, Discarded: s.Discarded,
		GateChecked: s.GateChecked,
		Fit:         evt.Gumbel{Mu: float64(s.FitMu), Beta: float64(s.FitBeta)}, Fitted: s.Fitted,
		Delta: float64(s.Delta), RefProb: float64(s.RefProb),
		PWCET: float64(s.PWCET), PWCETRelDelta: float64(s.PWCETRel),
		Elapsed: time.Duration(s.ElapsedNs), Done: s.Done,
	}
	if len(s.Outcomes) > 0 {
		out.Outcomes = make(map[string]int, len(s.Outcomes))
		for k, v := range s.Outcomes {
			out.Outcomes[k] = v
		}
	}
	out.Gate.Pass = s.GatePass
	if s.Independence != nil {
		out.Gate.Independence = s.Independence.test()
	}
	if s.IdentDist != nil {
		out.Gate.IdentDist = s.IdentDist.test()
	}
	if s.QGate != nil {
		out.QGate = s.QGate.report()
		out.QGateChecked = true
	}
	return out
}

type pathSeries struct {
	Path  string    `json:"path"`
	Times []float64 `json:"times"`
}

type gumbelState struct {
	Mu   jf `json:"mu"`
	Beta jf `json:"beta"`
}

type analyzerState struct {
	Version  int            `json:"version"`
	RefProb  float64        `json:"ref_prob"`
	Total    int            `json:"total"`
	Times    []float64      `json:"times"`
	Paths    []pathSeries   `json:"paths"`
	Outcomes map[string]int `json:"outcomes,omitempty"`
	PrevFit  *gumbelState   `json:"prev_fit,omitempty"`
	PrevPW   jf             `json:"prev_pwcet"`
	Done     bool           `json:"done"`
	Snaps    []stateSnap    `json:"snaps"`
}

// MarshalState serializes the analyzer's incremental state — the
// payload of a WAL checkpoint record. Call it only at batch barriers
// (between ObserveBatch calls): mid-batch there is no consistent state
// to capture. The encoding is deterministic (sorted path keys) and
// NaN-safe; execution times round-trip bit-exactly.
func (o *OnlineAnalyzer) MarshalState() ([]byte, error) {
	st := analyzerState{
		Version: stateVersion,
		RefProb: o.refProb,
		Total:   o.total,
		Times:   o.times,
		PrevPW:  jf(o.prevPW),
		Done:    o.done,
	}
	paths := make([]string, 0, len(o.byPath))
	for p := range o.byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		st.Paths = append(st.Paths, pathSeries{Path: p, Times: o.byPath[p]})
	}
	if len(o.outcomes) > 0 {
		st.Outcomes = make(map[string]int, len(o.outcomes))
		for k, v := range o.outcomes {
			st.Outcomes[k] = v
		}
	}
	if o.prevFit != nil {
		st.PrevFit = &gumbelState{Mu: jf(o.prevFit.Mu), Beta: jf(o.prevFit.Beta)}
	}
	st.Snaps = make([]stateSnap, len(o.snaps))
	for i, s := range o.snaps {
		st.Snaps[i] = toStateSnap(s)
	}
	return json.Marshal(st)
}

// RestoreOnlineAnalyzer rebuilds an analyzer from a MarshalState
// payload, attaching a fresh stop rule. The recorded snapshot trace is
// replayed through rule.Done (once per batch, in batch order) so
// stateful rules — convergence streaks, previous pWCET estimates —
// resume exactly where the checkpointed campaign left them.
//
// opts must equal the options of the checkpointed campaign; a
// different block size or fit method would break the bit-identity
// guarantee (the mismatch surfaces as a differing report, not an
// error — the journal does not record analyzer options).
func RestoreOnlineAnalyzer(opts Options, rule StopRule, data []byte) (*OnlineAnalyzer, error) {
	var st analyzerState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("core: bad analyzer state: %w", err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("core: analyzer state version %d unsupported (want %d)", st.Version, stateVersion)
	}
	o := NewOnlineAnalyzer(opts, rule)
	o.SetRefProb(st.RefProb)
	o.total = st.Total
	o.times = st.Times
	for _, ps := range st.Paths {
		o.byPath[ps.Path] = ps.Times
	}
	if len(st.Outcomes) > 0 {
		o.outcomes = make(map[string]int, len(st.Outcomes))
		for k, v := range st.Outcomes {
			o.outcomes[k] = v
		}
	}
	if st.PrevFit != nil {
		o.prevFit = &evt.Gumbel{Mu: float64(st.PrevFit.Mu), Beta: float64(st.PrevFit.Beta)}
	}
	o.prevPW = float64(st.PrevPW)
	o.done = st.Done
	o.snaps = make([]Snapshot, len(st.Snaps))
	for i, ss := range st.Snaps {
		o.snaps[i] = ss.snapshot()
	}
	if rule != nil {
		for i := range o.snaps {
			s := o.snaps[i] // replay on a copy; the recorded verdict stands
			rule.Done(&s)
		}
	}
	if n := len(o.snaps); n > 0 {
		// Keep wall-clock budgets (MaxWallClock) monotone across the
		// restore: credit the time the checkpointed campaign had spent.
		o.started = time.Now().Add(-o.snaps[n-1].Elapsed)
	}
	return o, nil
}

// PublishSnapshot re-emits the i-th recorded snapshot to the attached
// telemetry registry — the resume path uses it to replay the analysis
// event stream of already-journaled batches so a resumed campaign's
// telemetry is indistinguishable from an uninterrupted one.
func (o *OnlineAnalyzer) PublishSnapshot(i int) {
	if i < 0 || i >= len(o.snaps) {
		return
	}
	o.publish(&o.snaps[i])
}
