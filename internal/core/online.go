package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/evt"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// ErrNotConverged reports that a campaign exhausted its run budget
// before its stop rule was satisfied.
var ErrNotConverged = errors.New("core: campaign did not converge within its run budget")

// Observation is one measurement fed to the online analyzer, in run
// order.
type Observation struct {
	Cycles float64
	Path   string
	// Outcome is empty for a clean measurement. A non-empty outcome
	// (set by the fault-injection layer) quarantines the observation:
	// it is tallied in snapshots but never enters the i.i.d. gate or
	// the tail fit — unless Mitigated is set.
	Outcome string
	// Mitigated marks an outcome-carrying observation that a fault-
	// mitigation layer recovered (ECC correction, scrub, lockstep vote):
	// it is tallied under its outcome like a quarantined run but stays
	// in the analyzed series, because its cycle count — recovery
	// overhead included — is a legitimate measurement of the protected
	// platform.
	Mitigated bool
}

// Snapshot is the incremental analysis state after one batch of a
// streaming campaign: how many runs were observed, the current i.i.d.
// gate outcome, the pooled tail fit and the pWCET estimate it implies.
// Stop rules and progress callbacks both consume snapshots.
type Snapshot struct {
	// Batch is the 0-based batch index; Runs the clean measurements
	// observed so far (what the gate and the fit see). TotalRuns also
	// counts the quarantined runs: Runs + Quarantined == TotalRuns.
	Batch     int
	Runs      int
	TotalRuns int
	// Quarantined counts the fault-injected runs excluded from the
	// analysis so far; Outcomes tallies every outcome-carrying run by
	// class (nil when none), including mitigated runs that stayed in
	// the analyzed series — so Outcomes totals may exceed Quarantined.
	Quarantined int
	Outcomes    map[string]int
	// BlockSize is the block-maxima block length of the fit; Discarded
	// the trailing clean observations outside the last complete block.
	BlockSize int
	Discarded int
	// Gate is the i.i.d. gate on the pooled series collected so far
	// (meaningful only when GateChecked; early batches may be too small
	// to test).
	Gate        stats.IIDReport
	GateChecked bool
	// QGate is the opt-in nine-decile identical-distribution gate on
	// the pooled series halves (Options.QuantileGate; meaningful only
	// when QGateChecked).
	QGate        stats.QuantileGateReport
	QGateChecked bool
	// Fit is the pooled block-maxima Gumbel over everything collected so
	// far (valid only when Fitted: at least five blocks and a
	// non-degenerate sample).
	Fit    evt.Gumbel
	Fitted bool
	// Delta is the CRPS distance between this fit and the previous one —
	// the paper's convergence statistic (NaN until two fits exist).
	Delta float64
	// RefProb is the exceedance probability tracked across batches;
	// PWCET is the pooled estimate at RefProb (0 until Fitted) and
	// PWCETRelDelta its relative change since the previous snapshot (NaN
	// until two estimates exist).
	RefProb       float64
	PWCET         float64
	PWCETRelDelta float64
	// Elapsed is the wall-clock time since the first batch.
	Elapsed time.Duration
	// Done records the stop-rule verdict for this snapshot.
	Done bool
}

// GatePass is the combined identical-distribution verdict: false iff
// any checked gate (the i.i.d. gate, and the quantile gate when
// enabled) has failed on this snapshot. Unchecked gates count as
// passing, so early small batches are not penalized.
func (s *Snapshot) GatePass() bool {
	if s.GateChecked && !s.Gate.Pass {
		return false
	}
	if s.QGateChecked && !s.QGate.Pass {
		return false
	}
	return true
}

// PWCETAt queries the snapshot's pooled tail at per-run exceedance
// probability q.
func (s *Snapshot) PWCETAt(q float64) (float64, error) {
	if !s.Fitted {
		return 0, fmt.Errorf("%w: no tail fit yet (%d runs)", ErrInsufficient, s.Runs)
	}
	return PerRunTail{Block: s.Fit, B: s.BlockSize}.QuantileSF(q)
}

// Curve samples the snapshot's current pWCET curve over [start, end]
// with n points. Only the projected exceedance probability is
// available incrementally; Observed is left NaN.
func (s *Snapshot) Curve(start, end float64, n int) ([]CurvePoint, error) {
	if !s.Fitted {
		return nil, fmt.Errorf("%w: no tail fit yet (%d runs)", ErrInsufficient, s.Runs)
	}
	if n < 2 || !(end > start) {
		return nil, fmt.Errorf("core: bad curve range [%g,%g] n=%d", start, end, n)
	}
	tail := PerRunTail{Block: s.Fit, B: s.BlockSize}
	out := make([]CurvePoint, n)
	step := (end - start) / float64(n-1)
	for i := range out {
		x := start + float64(i)*step
		out[i] = CurvePoint{Time: x, Projected: tail.SF(x), Observed: math.NaN()}
	}
	return out, nil
}

// StopRule decides after each batch whether a streaming campaign may
// stop. Rules may keep state across calls; use a fresh rule per
// campaign. Done is called exactly once per batch, in batch order.
type StopRule interface {
	Name() string
	Done(s *Snapshot) bool
}

// FixedRuns stops after n executed runs — the paper's fixed-size
// protocol (3,000 runs) expressed as a stop rule. Quarantined runs
// count: the budget is measurement effort, not clean-sample yield (on a
// fault-free campaign the two are the same).
func FixedRuns(n int) StopRule { return fixedRunsRule{n: n} }

type fixedRunsRule struct{ n int }

func (r fixedRunsRule) Name() string          { return fmt.Sprintf("fixed-runs(%d)", r.n) }
func (r fixedRunsRule) Done(s *Snapshot) bool { return s.TotalRuns >= r.n }

// PWCETDelta stops once the pWCET estimate at exceedance probability q
// has changed by at most relTol (relative) for streak consecutive
// batches — convergence of the quantity the analysis actually reports.
// A snapshot whose i.i.d. gate fails resets the streak: a fit over a
// non-i.i.d. prefix is not evidence of convergence, and collecting
// further runs can recover the gate. Non-positive or zero arguments
// select the defaults q=1e-12, relTol=0.01, streak=2.
func PWCETDelta(q, relTol float64, streak int) StopRule {
	if q <= 0 {
		q = 1e-12
	}
	if relTol <= 0 {
		relTol = 0.01
	}
	if streak < 1 {
		streak = 2
	}
	return &pwcetDeltaRule{q: q, relTol: relTol, streak: streak}
}

type pwcetDeltaRule struct {
	q, relTol float64
	streak    int
	prev      float64
	passes    int
}

func (r *pwcetDeltaRule) Name() string {
	return fmt.Sprintf("pwcet-delta(q=%.0e, tol=%g, streak=%d)", r.q, r.relTol, r.streak)
}

func (r *pwcetDeltaRule) Done(s *Snapshot) bool {
	if !s.GatePass() {
		r.prev, r.passes = 0, 0
		return false
	}
	cur, err := s.PWCETAt(r.q)
	if err != nil || !(cur > 0) || math.IsInf(cur, 0) || math.IsNaN(cur) {
		r.prev, r.passes = 0, 0
		return false
	}
	if r.prev > 0 && math.Abs(cur-r.prev)/r.prev <= r.relTol {
		r.passes++
	} else if r.prev > 0 {
		r.passes = 0
	}
	r.prev = cur
	return r.passes >= r.streak
}

// CRPSConverged stops once the CRPS distance between consecutive tail
// fits stays below threshold for streak consecutive batches — the
// criterion the MBPTA collection process prescribes (see
// evt.ConvergenceCriterion). Like PWCETDelta, a snapshot whose i.i.d.
// gate fails resets the streak. Zero arguments select the defaults
// threshold=1e-3, streak=2.
func CRPSConverged(threshold float64, streak int) StopRule {
	if threshold <= 0 {
		threshold = 1e-3
	}
	if streak < 1 {
		streak = 2
	}
	return &crpsRule{threshold: threshold, streak: streak}
}

type crpsRule struct {
	threshold float64
	streak    int
	passes    int
}

func (r *crpsRule) Name() string {
	return fmt.Sprintf("crps(threshold=%g, streak=%d)", r.threshold, r.streak)
}

func (r *crpsRule) Done(s *Snapshot) bool {
	if !s.GatePass() {
		r.passes = 0
		return false
	}
	if math.IsNaN(s.Delta) {
		return false
	}
	if s.Delta < r.threshold {
		r.passes++
	} else {
		r.passes = 0
	}
	return r.passes >= r.streak
}

// MaxWallClock stops once the campaign has been measuring for at least
// d — a budget guard for interactive or service use, typically combined
// with a convergence rule via AnyRule.
func MaxWallClock(d time.Duration) StopRule { return wallClockRule{d: d} }

type wallClockRule struct{ d time.Duration }

func (r wallClockRule) Name() string          { return fmt.Sprintf("max-wall-clock(%s)", r.d) }
func (r wallClockRule) Done(s *Snapshot) bool { return s.Elapsed >= r.d }

// AnyRule stops as soon as any of its rules does.
func AnyRule(rules ...StopRule) StopRule { return anyRule(rules) }

type anyRule []StopRule

func (r anyRule) Name() string {
	name := "any("
	for i, sub := range r {
		if i > 0 {
			name += ", "
		}
		name += sub.Name()
	}
	return name + ")"
}

func (r anyRule) Done(s *Snapshot) bool {
	done := false
	for _, sub := range r {
		// Evaluate every rule so stateful ones observe each batch.
		if sub.Done(s) {
			done = true
		}
	}
	return done
}

// OnlineAnalyzer is the incremental half of the streaming campaign
// engine: it accumulates observations batch by batch, re-runs the
// i.i.d. gate, refits the pooled Gumbel tail, and evaluates a stop
// rule. Once the campaign stops, Finalize runs the full per-path
// analysis on everything collected.
//
// The pooled fit mirrors the paper's convergence analysis (experiment
// E5): convergence is judged on the whole series, while the final
// result is per-path.
type OnlineAnalyzer struct {
	opts    Options
	rule    StopRule
	refProb float64

	times    []float64
	byPath   map[string][]float64
	total    int
	outcomes map[string]int
	prevFit  *evt.Gumbel
	prevPW   float64
	snaps    []Snapshot
	started  time.Time
	done     bool
	tele     *telemetry.Registry
}

// NewOnlineAnalyzer returns an online analyzer with opts completed by
// the paper's defaults. A nil rule never stops early (the engine's run
// budget governs).
func NewOnlineAnalyzer(opts Options, rule StopRule) *OnlineAnalyzer {
	return &OnlineAnalyzer{
		opts:    opts.withDefaults(),
		rule:    rule,
		refProb: 1e-12,
		byPath:  make(map[string][]float64),
	}
}

// SetRefProb changes the exceedance probability tracked in snapshots
// (default 1e-12). Call before the first batch.
func (o *OnlineAnalyzer) SetRefProb(q float64) {
	if q > 0 && q < 1 {
		o.refProb = q
	}
}

// SetTelemetry publishes each snapshot to reg: gauges for the gate
// p-values, discarded block-maxima count, fit parameters and pWCET
// trajectory, plus one "analysis" event per batch. A nil reg (the
// default) disables publication.
func (o *OnlineAnalyzer) SetTelemetry(reg *telemetry.Registry) { o.tele = reg }

// publish mirrors a snapshot into the telemetry registry. Wall-clock
// fields (Elapsed) are deliberately not exported so the analysis
// instruments stay deterministic for a fixed seed.
func (o *OnlineAnalyzer) publish(snap *Snapshot) {
	reg := o.tele
	if reg == nil {
		return
	}
	reg.Counter("analysis_batches_total").Inc()
	reg.Gauge("analysis_runs").Set(float64(snap.Runs))
	reg.Gauge("analysis_total_runs").Set(float64(snap.TotalRuns))
	reg.Gauge("analysis_quarantined").Set(float64(snap.Quarantined))
	reg.Gauge("analysis_block_discarded").Set(float64(snap.Discarded))
	fields := []telemetry.Field{
		telemetry.Num("batch", float64(snap.Batch)),
		telemetry.Num("runs", float64(snap.Runs)),
		telemetry.Num("quarantined", float64(snap.Quarantined)),
		telemetry.Num("discarded", float64(snap.Discarded)),
	}
	if snap.GateChecked {
		pass := 0.0
		if snap.Gate.Pass {
			pass = 1
		}
		reg.Gauge("analysis_gate_ljungbox_p").Set(snap.Gate.Independence.PValue)
		reg.Gauge("analysis_gate_ks_p").Set(snap.Gate.IdentDist.PValue)
		reg.Gauge("analysis_gate_pass").Set(pass)
		fields = append(fields,
			telemetry.Num("lb_p", snap.Gate.Independence.PValue),
			telemetry.Num("ks_p", snap.Gate.IdentDist.PValue),
			telemetry.Num("gate_pass", pass))
	}
	if snap.QGateChecked {
		pass := 0.0
		if snap.QGate.Pass {
			pass = 1
		}
		reg.Gauge("analysis_qgate_pass").Set(pass)
		reg.Gauge("analysis_qgate_leaks").Set(float64(snap.QGate.Leaks))
		reg.Gauge("analysis_qgate_leak_p").Set(snap.QGate.LeakProbability)
		reg.Gauge("analysis_qgate_effect").Set(snap.QGate.EffectCycles)
		fields = append(fields,
			telemetry.Num("qgate_pass", pass),
			telemetry.Num("qgate_leaks", float64(snap.QGate.Leaks)),
			telemetry.Num("qgate_leak_p", snap.QGate.LeakProbability))
	}
	if snap.Fitted {
		reg.Gauge("analysis_fit_mu").Set(snap.Fit.Mu)
		reg.Gauge("analysis_fit_beta").Set(snap.Fit.Beta)
		reg.Gauge("analysis_pwcet").Set(snap.PWCET)
		fields = append(fields,
			telemetry.Num("mu", snap.Fit.Mu),
			telemetry.Num("beta", snap.Fit.Beta),
			telemetry.Num("pwcet", snap.PWCET))
		if !math.IsNaN(snap.Delta) {
			reg.Gauge("analysis_crps_delta").Set(snap.Delta)
			fields = append(fields, telemetry.Num("crps_delta", snap.Delta))
		}
		if !math.IsNaN(snap.PWCETRelDelta) {
			reg.Gauge("analysis_pwcet_rel_delta").Set(snap.PWCETRelDelta)
			fields = append(fields, telemetry.Num("pwcet_rel_delta", snap.PWCETRelDelta))
		}
	}
	if snap.Done {
		fields = append(fields, telemetry.Num("done", 1))
	}
	reg.Emit("analysis", -1, fields...)
}

// ObserveBatch folds one batch of observations (in run order) into the
// analysis and returns the resulting snapshot, including the stop-rule
// verdict.
func (o *OnlineAnalyzer) ObserveBatch(obs []Observation) (Snapshot, error) {
	if o.started.IsZero() {
		o.started = time.Now()
	}
	for _, ob := range obs {
		o.total++
		if ob.Outcome != "" {
			// Tally the outcome; quarantine unless a mitigation layer
			// recovered the run (then its overhead-laden timing is a
			// legitimate measurement and stays in the series).
			if o.outcomes == nil {
				o.outcomes = make(map[string]int)
			}
			o.outcomes[ob.Outcome]++
			if !ob.Mitigated {
				continue
			}
		}
		o.times = append(o.times, ob.Cycles)
		o.byPath[ob.Path] = append(o.byPath[ob.Path], ob.Cycles)
	}
	snap := Snapshot{
		Batch:         len(o.snaps),
		Runs:          len(o.times),
		TotalRuns:     o.total,
		Quarantined:   o.total - len(o.times),
		BlockSize:     o.opts.BlockSize,
		RefProb:       o.refProb,
		Delta:         math.NaN(),
		PWCETRelDelta: math.NaN(),
		Elapsed:       time.Since(o.started),
	}
	if len(o.outcomes) > 0 {
		snap.Outcomes = make(map[string]int, len(o.outcomes))
		for k, v := range o.outcomes {
			snap.Outcomes[k] = v
		}
	}
	// The discarded count is meaningful from the very first batch — it
	// is the clean observations a block-maxima fit over the current
	// series would leave out — not only once a fit exists, so Progress
	// consumers can watch it mid-stream.
	if len(o.times) >= o.opts.BlockSize {
		snap.Discarded = len(o.times) % o.opts.BlockSize
	} else {
		snap.Discarded = len(o.times)
	}
	if len(o.times) >= 8 {
		if gate, err := stats.CheckIID(o.times, o.opts.Alpha); err == nil {
			snap.Gate, snap.GateChecked = gate, true
		}
	}
	if o.opts.QuantileGate {
		if qg, err := stats.CheckQuantileGate(o.times, stats.QuantileGateOptions{Alpha: o.opts.QuantileGateAlpha}); err == nil {
			snap.QGate, snap.QGateChecked = qg, true
		}
	}
	if len(o.times) >= 5*o.opts.BlockSize {
		maxima, discarded, err := evt.BlockMaxima(o.times, o.opts.BlockSize)
		if err != nil {
			return snap, err
		}
		snap.Discarded = discarded
		// A degenerate (e.g. constant) sample cannot be fitted yet; keep
		// collecting rather than failing the campaign.
		if fit, err := evt.FitGumbel(maxima, o.opts.FitMethod); err == nil {
			snap.Fit, snap.Fitted = fit, true
			if o.prevFit != nil {
				if d, err := evt.GumbelCRPS(*o.prevFit, fit); err == nil {
					snap.Delta = d
				}
			}
			o.prevFit = &fit
			if pw, err := snap.PWCETAt(o.refProb); err == nil {
				snap.PWCET = pw
				if o.prevPW > 0 {
					snap.PWCETRelDelta = math.Abs(pw-o.prevPW) / o.prevPW
				}
				o.prevPW = pw
			}
		}
	}
	if o.rule != nil {
		snap.Done = o.rule.Done(&snap)
		o.done = o.done || snap.Done
	}
	o.publish(&snap)
	o.snaps = append(o.snaps, snap)
	return snap, nil
}

// Runs returns the number of clean observations folded in so far.
func (o *OnlineAnalyzer) Runs() int { return len(o.times) }

// TotalRuns returns every observation seen, including quarantined ones.
func (o *OnlineAnalyzer) TotalRuns() int { return o.total }

// Done reports whether the stop rule has fired.
func (o *OnlineAnalyzer) Done() bool { return o.done }

// Snapshots returns a copy of the per-batch snapshot trace.
func (o *OnlineAnalyzer) Snapshots() []Snapshot {
	return append([]Snapshot(nil), o.snaps...)
}

// Finalize runs the full per-path MBPTA pipeline (i.i.d. gate,
// per-path tail fits, diagnostics) on everything collected. The i.i.d.
// gate failing surfaces as ErrIIDRejected unless the analyzer options
// allow it.
func (o *OnlineAnalyzer) Finalize() (*Result, error) {
	return NewAnalyzer(o.opts).AnalyzeByPath(o.byPath)
}
