package kernels

import (
	"context"
	"math"
	"sort"
	"testing"

	"repro/internal/isa"
	"repro/internal/platform"
)

func run(t *testing.T, w platform.Workload, runIdx int) *isa.Machine {
	t.Helper()
	m, err := w.Prepare(runIdx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatMulMatchesReference(t *testing.T) {
	k := MatMul{N: 12, Seed: 7}
	for runIdx := 0; runIdx < 3; runIdx++ {
		m := run(t, k, runIdx)
		want := k.Reference(runIdx)
		for i := 0; i < k.N; i++ {
			for j := 0; j < k.N; j++ {
				if got := k.ResultAt(m, i, j); got != want[i][j] {
					t.Fatalf("run %d C[%d][%d] = %v, want %v", runIdx, i, j, got, want[i][j])
				}
			}
		}
	}
}

func TestMatMulValidate(t *testing.T) {
	if _, err := (MatMul{N: 1}).Prepare(0); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := (MatMul{N: 100}).Prepare(0); err == nil {
		t.Error("N=100 accepted")
	}
}

func TestCRC32MatchesReference(t *testing.T) {
	k := CRC32{Bytes: 1024, Seed: 3}
	for runIdx := 0; runIdx < 3; runIdx++ {
		m := run(t, k, runIdx)
		if got, want := k.Result(m), k.Reference(runIdx); got != want {
			t.Fatalf("run %d crc = %#x, want %#x", runIdx, got, want)
		}
	}
}

func TestCRC32KnownVector(t *testing.T) {
	// Cross-check the table against Go's own hash/crc32 semantics via
	// the reference implementation on a fixed buffer: the reference and
	// guest agree (above); here assert the table's first entries.
	tab := crcTable()
	if tab[0] != 0 || tab[1] != 0x77073096 || tab[255] != 0x2D02EF8D {
		t.Errorf("IEEE table wrong: %#x %#x %#x", tab[0], tab[1], tab[255])
	}
}

func TestCRC32Validate(t *testing.T) {
	for _, n := range []int{0, 3, 5, 1<<20 + 4} {
		if _, err := (CRC32{Bytes: n}).Prepare(0); err == nil {
			t.Errorf("bytes=%d accepted", n)
		}
	}
}

func TestInsertionSortSorts(t *testing.T) {
	k := InsertionSort{N: 128, Seed: 9}
	for runIdx := 0; runIdx < 3; runIdx++ {
		m := run(t, k, runIdx)
		keys := k.Keys(m)
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
			t.Fatalf("run %d not sorted: %v...", runIdx, keys[:8])
		}
	}
}

func TestInsertionSortTimingDependsOnInput(t *testing.T) {
	// Different runs (different permutations) take different instruction
	// counts — the data-dependent jitter source this kernel provides.
	k := InsertionSort{N: 64, Seed: 2}
	seen := map[uint64]bool{}
	for runIdx := 0; runIdx < 6; runIdx++ {
		m := run(t, k, runIdx)
		seen[m.Steps()] = true
	}
	if len(seen) < 4 {
		t.Errorf("only %d distinct instruction counts", len(seen))
	}
}

func TestVecNormProducesUnitVectors(t *testing.T) {
	k := VecNorm{N: 32, Seed: 5}
	m := run(t, k, 0)
	for i := 0; i < k.N; i++ {
		n2 := 0.0
		for l := 0; l < 4; l++ {
			v := k.Lane(m, i, l)
			n2 += v * v
		}
		if math.Abs(math.Sqrt(n2)-1) > 1e-12 {
			t.Fatalf("vector %d norm %v", i, math.Sqrt(n2))
		}
	}
}

func TestKernelsRunUnderMBPTAPipeline(t *testing.T) {
	// Smoke test: each kernel runs on the RAND platform as a campaign.
	for _, w := range []platform.Workload{
		MatMul{N: 16, Seed: 1},
		CRC32{Bytes: 2048, Seed: 1},
		InsertionSort{N: 96, Seed: 1},
		VecNorm{N: 64, Seed: 1},
	} {
		c, err := platform.StreamCampaign(context.Background(), platform.RAND(), w,
			platform.StreamOptions{MaxRuns: 12, BatchSize: 12, BaseSeed: 8}, nil)
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if len(c.Times()) != 12 {
			t.Fatalf("%s: %d runs", w.Name(), len(c.Times()))
		}
		for _, v := range c.Times() {
			if v <= 0 {
				t.Fatalf("%s: nonpositive time", w.Name())
			}
		}
	}
}

func TestVecNormAnalysisModeSlowerThanOperation(t *testing.T) {
	// The FPU-heavy kernel is where the analysis-mode worst-case FDIV /
	// FSQRT latencies cost the most; analysis-mode runs must never be
	// faster than operation-mode runs of the same input.
	k := VecNorm{N: 128, Seed: 4}
	randCfg := platform.RAND() // analysis mode
	detCfg := platform.RAND()
	detCfg.FPUMode = "operation"
	pa, err := platform.New(randCfg)
	if err != nil {
		t.Fatal(err)
	}
	po, err := platform.New(detCfg)
	if err != nil {
		t.Fatal(err)
	}
	for runIdx := 0; runIdx < 5; runIdx++ {
		ra, err := pa.Run(k, runIdx, 33)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := po.Run(k, runIdx, 33)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Cycles < ro.Cycles {
			t.Errorf("run %d: analysis %d < operation %d", runIdx, ra.Cycles, ro.Cycles)
		}
	}
}
