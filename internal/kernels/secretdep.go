package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/rng"
)

// SecretDep is the timing-leak probe workload: a fixed instruction
// stream whose memory access pattern is indexed by a one-bit secret.
// The program text is identical for both secrets — the loop walks
// Lines addresses spaced by a stride it loads from data memory, and
// only that stride word depends on the secret:
//
//	secret 0: stride 4128 = page + line — every address lands in its
//	  own cache set AND its own placement tag, so the walk is
//	  conflict-free on the deterministic (modulo-placement) cache;
//	secret 1: stride 4096 = exactly one page — every address lands in
//	  the same modulo set, so Lines > associativity lines thrash a
//	  4-way LRU set and every pass misses on the deterministic cache.
//
// Under random-modulo placement both strides map to i.i.d. uniform
// sets (each address has a distinct placement tag), so the two
// variants are timing-indistinguishable on RAND while secret 1 costs
// hundreds of extra misses per run on DET. Both walks touch Lines
// pages, below the 64-entry DTLB, so TLB behaviour does not differ. A
// per-run random delay loop (count drawn from the input RNG, also read
// from data memory) gives even the deterministic platform a
// non-degenerate timing distribution to compare.
type SecretDep struct {
	// Lines is the number of walked addresses per pass; must exceed the
	// cache associativity (4) for secret 1 to thrash, and stay below the
	// DTLB capacity (64) so paging stays secret-independent.
	Lines int
	// Passes repeats the walk, amplifying the hit/miss gap.
	Passes int
	// Secret selects the access pattern: 0 or 1.
	Secret int
	Seed   uint64
}

// Name identifies the kernel; the secret is deliberately part of the
// name so campaign caches never mix the two variants.
func (k SecretDep) Name() string {
	return fmt.Sprintf("secretdep-%dx%d-s%d", k.Lines, k.Passes, k.Secret)
}

// Validate checks the walk shape.
func (k SecretDep) Validate() error {
	if k.Lines < 8 || k.Lines > 56 {
		return fmt.Errorf("kernels: secretdep Lines %d outside [8,56]", k.Lines)
	}
	if k.Passes < 1 || k.Passes > 64 {
		return fmt.Errorf("kernels: secretdep Passes %d outside [1,64]", k.Passes)
	}
	if k.Secret != 0 && k.Secret != 1 {
		return fmt.Errorf("kernels: secretdep Secret %d not a bit", k.Secret)
	}
	return nil
}

// Data-segment layout. The control words share the base page; the
// walked array starts one page in so the strided addresses never touch
// them.
const (
	sdStrideOff = 0x0000 // int32: secret-dependent stride
	sdJitterOff = 0x0008 // int32: per-run delay-loop count
	sdSinkOff   = 0x0010 // int32: checksum of the walked words
	sdArrayOff  = 0x1000

	sdStrideA = 4128 // secret 0: page + cache line
	sdStrideB = 4096 // secret 1: exactly one page
	sdJitterN = 64   // delay count range [0, 64)
)

// strideOf returns the secret's stride.
func (k SecretDep) strideOf() int32 {
	if k.Secret == 0 {
		return sdStrideA
	}
	return sdStrideB
}

// Prepare assembles the walk and writes the stride, the delay count
// and the array words. The instruction stream is byte-identical for
// both secrets; only data memory differs.
func (k SecretDep) Prepare(run int) (*isa.Machine, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	bl := isa.NewBuilder(k.Name(), defaultCodeBase)
	// r20 base; r1 = stride; r2 = delay count; r3 = delay counter;
	// r4 = pass; r5 = passes; r6 = line; r7 = lines; r8 = addr;
	// r9 = loaded word; r10 = checksum.
	bl.Li(20, defaultDataBase)
	bl.Ld(1, 20, sdStrideOff)
	bl.Ld(2, 20, sdJitterOff)
	bl.Li(3, 0)
	bl.Label("delay")
	bl.Beq(3, 2, "walk")
	bl.Addi(3, 3, 1)
	bl.Jmp("delay")
	bl.Label("walk")
	bl.Li(4, 0)
	bl.Li(5, int32(k.Passes))
	bl.Li(10, 0)
	bl.Label("pass")
	bl.Li(6, 0)
	bl.Li(7, int32(k.Lines))
	bl.Label("line")
	bl.Mul(8, 6, 1)
	bl.Add(8, 8, 20)
	bl.Ld(9, 8, sdArrayOff)
	bl.Add(10, 10, 9)
	bl.Addi(6, 6, 1)
	bl.Blt(6, 7, "line")
	bl.Addi(4, 4, 1)
	bl.Blt(4, 5, "pass")
	bl.St(20, sdSinkOff, 10)
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		return nil, err
	}

	mem := isa.NewMemory()
	if err := mem.Write32(defaultDataBase+sdStrideOff, uint32(k.strideOf())); err != nil {
		return nil, err
	}
	jitter, words := k.inputs(run)
	if err := mem.Write32(defaultDataBase+sdJitterOff, uint32(jitter)); err != nil {
		return nil, err
	}
	// Populate the union of both strides' addresses so data memory is
	// identical across secrets except for the stride word itself.
	for i := 0; i < k.Lines; i++ {
		for j, stride := range []int{sdStrideA, sdStrideB} {
			addr := uint64(defaultDataBase + sdArrayOff + i*stride)
			if err := mem.Write32(addr, words[2*i+j]); err != nil {
				return nil, err
			}
		}
	}
	return isa.NewMachine(prog, mem), nil
}

// inputs derives the per-run delay count and array words. The draw
// order is fixed and secret-independent, so both variants of a run see
// identical data memory outside the stride word.
func (k SecretDep) inputs(run int) (jitter int32, words []uint32) {
	src := inputRNG(k.Seed, run)
	jitter = int32(rng.Intn(src, sdJitterN))
	words = make([]uint32, 2*k.Lines)
	for i := range words {
		words[i] = rng.Uint32(src)
	}
	return jitter, words
}

// PathOf: single-path kernel — both secrets execute the same path.
func (k SecretDep) PathOf(*isa.Machine) string { return "" }

// Reference computes the walk checksum host-side. Lines i with stride
// 4128 hold words[2i], with stride 4096 words[2i+1] (i = 0 collides:
// both strides start at the array base, so the later write — the
// stride-4096 word — wins for either secret).
func (k SecretDep) Reference(run int) int32 {
	_, words := k.inputs(run)
	var sum int32
	for p := 0; p < k.Passes; p++ {
		for i := 0; i < k.Lines; i++ {
			w := words[2*i]
			if k.Secret == 1 || i == 0 {
				w = words[2*i+1]
			}
			sum += int32(w)
		}
	}
	return sum
}

// Result reads the checksum from a finished machine.
func (k SecretDep) Result(m *isa.Machine) int32 {
	v, _ := m.Mem.Read32(defaultDataBase + sdSinkOff)
	return int32(v)
}
