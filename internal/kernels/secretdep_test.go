package kernels

import (
	"testing"

	"repro/internal/platform"
)

func TestSecretDepMatchesReference(t *testing.T) {
	for secret := 0; secret <= 1; secret++ {
		k := SecretDep{Lines: 48, Passes: 8, Secret: secret, Seed: 5}
		for runIdx := 0; runIdx < 3; runIdx++ {
			m := run(t, k, runIdx)
			if got, want := k.Result(m), k.Reference(runIdx); got != want {
				t.Fatalf("secret %d run %d checksum %d, want %d", secret, runIdx, got, want)
			}
		}
	}
}

func TestSecretDepValidate(t *testing.T) {
	for _, k := range []SecretDep{
		{Lines: 4, Passes: 8},
		{Lines: 128, Passes: 8},
		{Lines: 48, Passes: 0},
		{Lines: 48, Passes: 8, Secret: 2},
	} {
		if _, err := k.Prepare(0); err == nil {
			t.Errorf("%+v accepted", k)
		}
	}
}

func TestSecretDepProgramTextIdentical(t *testing.T) {
	// The leak must come from data (the stride word), never from the
	// instruction stream: both secrets assemble to the same code.
	m0, err := SecretDep{Lines: 48, Passes: 8, Secret: 0, Seed: 5}.Prepare(0)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := SecretDep{Lines: 48, Passes: 8, Secret: 1, Seed: 5}.Prepare(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m0.Prog.Code) != len(m1.Prog.Code) {
		t.Fatalf("code lengths differ: %d vs %d", len(m0.Prog.Code), len(m1.Prog.Code))
	}
	for i := range m0.Prog.Code {
		if m0.Prog.Code[i] != m1.Prog.Code[i] {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, m0.Prog.Code[i], m1.Prog.Code[i])
		}
	}
}

func TestSecretDepInstructionCountSecretIndependent(t *testing.T) {
	// Same run index -> same delay count -> identical retired-instruction
	// counts for both secrets; only the memory hierarchy may tell them
	// apart.
	for runIdx := 0; runIdx < 4; runIdx++ {
		m0 := run(t, SecretDep{Lines: 48, Passes: 8, Secret: 0, Seed: 5}, runIdx)
		m1 := run(t, SecretDep{Lines: 48, Passes: 8, Secret: 1, Seed: 5}, runIdx)
		if m0.Steps() != m1.Steps() {
			t.Fatalf("run %d: %d vs %d instructions", runIdx, m0.Steps(), m1.Steps())
		}
	}
}

func TestSecretDepDETSeparatesSecrets(t *testing.T) {
	// On the deterministic platform secret 1 thrashes one cache set and
	// must run strictly slower than secret 0 on every run — the timing
	// channel the leak oracle is built to detect.
	p, err := platform.New(platform.DET())
	if err != nil {
		t.Fatal(err)
	}
	for runIdx := 0; runIdx < 5; runIdx++ {
		r0, err := p.Run(SecretDep{Lines: 48, Passes: 8, Secret: 0, Seed: 5}, runIdx, 17)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := p.Run(SecretDep{Lines: 48, Passes: 8, Secret: 1, Seed: 5}, runIdx, 17)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles <= r0.Cycles {
			t.Errorf("run %d: secret1 %d cycles <= secret0 %d", runIdx, r1.Cycles, r0.Cycles)
		}
	}
}
