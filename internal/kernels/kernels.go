// Package kernels provides a small suite of benchmark workloads beyond
// the TVCA case study, each generated through the ISA builder with a
// host-side reference model: a dense matrix multiply, a table-driven
// CRC-32, an insertion sort (data-dependent branching) and a
// vector-normalization kernel (FDIV/FSQRT heavy). They serve three
// purposes: exercising the MBPTA pipeline on workloads with different
// jitter profiles, acting as co-runners in contention studies, and
// regression-testing the code generator beyond one application.
//
// All kernels implement platform.Workload; inputs are derived
// deterministically from (seed, run).
package kernels

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/rng"
)

// Common layout: every kernel links its code at CodeBase and keeps its
// data at DataBase.
const (
	defaultCodeBase = 0x8000
	defaultDataBase = 0x200000
)

// inputRNG derives the per-run input generator.
func inputRNG(seed uint64, run int) *rng.Xoroshiro128 {
	z := seed ^ (0x9E3779B97F4A7C15 * uint64(run+101))
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	return rng.NewXoroshiro128(z ^ (z >> 31))
}

// MatMul is C = A x B over NxN float64 matrices.
type MatMul struct {
	N    int
	Seed uint64
}

// Name identifies the kernel.
func (k MatMul) Name() string { return fmt.Sprintf("matmul-%d", k.N) }

// Validate checks the dimension.
func (k MatMul) Validate() error {
	if k.N < 2 || k.N > 64 {
		return fmt.Errorf("kernels: matmul N %d outside [2,64]", k.N)
	}
	return nil
}

// offsets within the data segment.
func (k MatMul) offsets() (a, b, c int32) {
	n := int32(k.N)
	return 0, n * n * 8, 2 * n * n * 8
}

// Prepare assembles the kernel and writes per-run random matrices.
func (k MatMul) Prepare(run int) (*isa.Machine, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	n := int32(k.N)
	aOff, bOff, cOff := k.offsets()

	bl := isa.NewBuilder(k.Name(), defaultCodeBase)
	// r20 = base, r1 = i, r2 = j, r3 = k, r4 = n.
	bl.Li(20, defaultDataBase)
	bl.Li(4, n)
	bl.Li(1, 0)
	bl.Label("i")
	bl.Li(2, 0)
	bl.Label("j")
	bl.Fcvt(1, 0)
	bl.Li(3, 0)
	bl.Label("k")
	bl.Mul(5, 1, 4)
	bl.Add(5, 5, 3)
	bl.Sll(5, 5, 3)
	bl.Add(5, 5, 20)
	bl.Fld(2, 5, aOff)
	bl.Mul(6, 3, 4)
	bl.Add(6, 6, 2)
	bl.Sll(6, 6, 3)
	bl.Add(6, 6, 20)
	bl.Fld(3, 6, bOff)
	bl.Fmul(2, 2, 3)
	bl.Fadd(1, 1, 2)
	bl.Addi(3, 3, 1)
	bl.Blt(3, 4, "k")
	bl.Mul(5, 1, 4)
	bl.Add(5, 5, 2)
	bl.Sll(5, 5, 3)
	bl.Add(5, 5, 20)
	bl.Fst(5, cOff, 1)
	bl.Addi(2, 2, 1)
	bl.Blt(2, 4, "j")
	bl.Addi(1, 1, 1)
	bl.Blt(1, 4, "i")
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		return nil, err
	}

	mem := isa.NewMemory()
	src := inputRNG(k.Seed, run)
	for i := int32(0); i < n*n; i++ {
		if err := mem.Write64(uint64(defaultDataBase+aOff+8*i), rng.Float64(src)); err != nil {
			return nil, err
		}
		if err := mem.Write64(uint64(defaultDataBase+bOff+8*i), rng.Float64(src)); err != nil {
			return nil, err
		}
	}
	return isa.NewMachine(prog, mem), nil
}

// PathOf: single-path kernel.
func (k MatMul) PathOf(*isa.Machine) string { return "" }

// TraceStable implements platform.TraceStable: the loop bounds, branch
// outcomes and effective addresses are all fixed by N, and the kernel
// has no FDIV/FSQRT (whose operand-dependent latency would make the
// event stream input-dependent), so the retired-instruction stream is
// identical for every run index — only the data values differ, and the
// timing model never sees them. The platform may therefore record the
// stream once and replay it. The other kernels are input-dependent
// (CRC32's table addresses, InsertionSort's branches, VecNorm's
// FDIV/FSQRT operands) and deliberately do not declare stability.
func (k MatMul) TraceStable() bool { return true }

// Reference computes C host-side with the generated code's operation
// order (row-major accumulate), bit-exact.
func (k MatMul) Reference(run int) [][]float64 {
	src := inputRNG(k.Seed, run)
	n := k.N
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := 0; i < n*n; i++ {
		a[i] = rng.Float64(src)
		b[i] = rng.Float64(src)
	}
	c := make([][]float64, n)
	for i := 0; i < n; i++ {
		c[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			acc := 0.0
			for l := 0; l < n; l++ {
				acc += a[i*n+l] * b[l*n+j]
			}
			c[i][j] = acc
		}
	}
	return c
}

// ResultAt reads C[i][j] from a finished machine.
func (k MatMul) ResultAt(m *isa.Machine, i, j int) float64 {
	_, _, cOff := k.offsets()
	v, _ := m.Mem.Read64(uint64(defaultDataBase) + uint64(cOff) + uint64(8*(i*k.N+j)))
	return v
}

// CRC32 computes a table-driven CRC-32 (IEEE polynomial) over a byte
// buffer stored as words: integer-only, with a 1 KiB lookup table whose
// cache behaviour dominates.
type CRC32 struct {
	Bytes int // buffer length in bytes (multiple of 4)
	Seed  uint64
}

// Name identifies the kernel.
func (k CRC32) Name() string { return fmt.Sprintf("crc32-%dB", k.Bytes) }

// Validate checks the buffer length.
func (k CRC32) Validate() error {
	if k.Bytes < 4 || k.Bytes%4 != 0 || k.Bytes > 1<<20 {
		return fmt.Errorf("kernels: crc32 length %d invalid", k.Bytes)
	}
	return nil
}

const (
	crcTableOff = 0x0000 // 256 x int32
	crcDataOff  = 0x1000
	crcOutOff   = 0x0800
)

// crcTable is the IEEE CRC-32 table.
func crcTable() [256]uint32 {
	var t [256]uint32
	for i := range t {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = 0xEDB88320 ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		t[i] = c
	}
	return t
}

// Prepare assembles the CRC kernel and writes the table and buffer.
func (k CRC32) Prepare(run int) (*isa.Machine, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	bl := isa.NewBuilder(k.Name(), defaultCodeBase)
	// r20 base, r1 = word index, r2 = word count, r3 = crc, r4 = word,
	// r5 = byte counter, r6..r9 temps.
	bl.Li(20, defaultDataBase)
	bl.Li(1, 0)
	bl.Li(2, int32(k.Bytes/4))
	bl.Li(3, -1) // crc = 0xFFFFFFFF
	bl.Label("word")
	bl.Sll(6, 1, 2)
	bl.Add(6, 6, 20)
	bl.Ld(4, 6, crcDataOff)
	bl.Li(5, 0)
	bl.Label("byte")
	// idx = (crc ^ word) & 0xFF
	bl.Xor(7, 3, 4)
	bl.Andi(7, 7, 0xFF)
	// crc = table[idx] ^ (crc >>> 8)
	bl.Sll(8, 7, 2)
	bl.Add(8, 8, 20)
	bl.Ld(9, 8, crcTableOff)
	bl.Srl(3, 3, 8)
	bl.Xor(3, 9, 3)
	// word >>= 8
	bl.Srl(4, 4, 8)
	bl.Addi(5, 5, 1)
	bl.Li(10, 4)
	bl.Blt(5, 10, "byte")
	bl.Addi(1, 1, 1)
	bl.Blt(1, 2, "word")
	bl.Xori(3, 3, -1) // crc ^= 0xFFFFFFFF
	bl.St(20, crcOutOff, 3)
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		return nil, err
	}

	mem := isa.NewMemory()
	tab := crcTable()
	for i, v := range tab {
		if err := mem.Write32(uint64(defaultDataBase+crcTableOff+4*i), v); err != nil {
			return nil, err
		}
	}
	src := inputRNG(k.Seed, run)
	for i := 0; i < k.Bytes/4; i++ {
		if err := mem.Write32(uint64(defaultDataBase+crcDataOff+4*i), rng.Uint32(src)); err != nil {
			return nil, err
		}
	}
	return isa.NewMachine(prog, mem), nil
}

// PathOf: single-path kernel.
func (k CRC32) PathOf(*isa.Machine) string { return "" }

// Reference computes the CRC host-side.
func (k CRC32) Reference(run int) uint32 {
	tab := crcTable()
	src := inputRNG(k.Seed, run)
	crc := ^uint32(0)
	for i := 0; i < k.Bytes/4; i++ {
		w := rng.Uint32(src)
		for b := 0; b < 4; b++ {
			crc = tab[(crc^w)&0xFF] ^ (crc >> 8)
			w >>= 8
		}
	}
	return ^crc
}

// Result reads the computed CRC from a finished machine.
func (k CRC32) Result(m *isa.Machine) uint32 {
	v, _ := m.Mem.Read32(uint64(defaultDataBase + crcOutOff))
	return v
}

// InsertionSort sorts N int32 keys in place: heavy data-dependent
// branching, the execution time itself depends on the input permutation.
type InsertionSort struct {
	N    int
	Seed uint64
}

// Name identifies the kernel.
func (k InsertionSort) Name() string { return fmt.Sprintf("isort-%d", k.N) }

// Validate checks the size.
func (k InsertionSort) Validate() error {
	if k.N < 2 || k.N > 4096 {
		return fmt.Errorf("kernels: isort N %d outside [2,4096]", k.N)
	}
	return nil
}

// Prepare assembles the sort and writes per-run random keys.
func (k InsertionSort) Prepare(run int) (*isa.Machine, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	bl := isa.NewBuilder(k.Name(), defaultCodeBase)
	// r20 base; r1 = i; r2 = n; r3 = j; r4 = key; r5/r6 addr; r7 = a[j].
	bl.Li(20, defaultDataBase)
	bl.Li(2, int32(k.N))
	bl.Li(1, 1)
	bl.Label("outer")
	bl.Sll(5, 1, 2)
	bl.Add(5, 5, 20)
	bl.Ld(4, 5, 0) // key = a[i]
	bl.Mov(3, 1)   // j = i
	bl.Label("inner")
	bl.Li(6, 0)
	bl.Beq(3, 6, "insert") // j == 0 -> insert
	bl.Subi(6, 3, 1)
	bl.Sll(6, 6, 2)
	bl.Add(6, 6, 20)
	bl.Ld(7, 6, 0)         // a[j-1]
	bl.Blt(7, 4, "insert") // a[j-1] < key -> insert
	bl.Sll(8, 3, 2)        // a[j] = a[j-1]
	bl.Add(8, 8, 20)
	bl.St(8, 0, 7)
	bl.Subi(3, 3, 1)
	bl.Jmp("inner")
	bl.Label("insert")
	bl.Sll(8, 3, 2)
	bl.Add(8, 8, 20)
	bl.St(8, 0, 4) // a[j] = key
	bl.Addi(1, 1, 1)
	bl.Blt(1, 2, "outer")
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		return nil, err
	}

	mem := isa.NewMemory()
	src := inputRNG(k.Seed, run)
	for i := 0; i < k.N; i++ {
		v := int32(rng.Intn(src, 1<<20))
		if err := mem.Write32(uint64(defaultDataBase+4*i), uint32(v)); err != nil {
			return nil, err
		}
	}
	return isa.NewMachine(prog, mem), nil
}

// PathOf: sorting has no discrete mode paths; per-input timing
// variation is continuous.
func (k InsertionSort) PathOf(*isa.Machine) string { return "" }

// Keys reads the (sorted) array from a finished machine.
func (k InsertionSort) Keys(m *isa.Machine) []int32 {
	out := make([]int32, k.N)
	for i := range out {
		v, _ := m.Mem.Read32(uint64(defaultDataBase + 4*i))
		out[i] = int32(v)
	}
	return out
}

// VecNorm normalizes N float64 vectors of dimension 4 — an FDIV/FSQRT
// dominated kernel exercising the FPU jitter control.
type VecNorm struct {
	N    int
	Seed uint64
}

// Name identifies the kernel.
func (k VecNorm) Name() string { return fmt.Sprintf("vecnorm-%d", k.N) }

// Validate checks the count.
func (k VecNorm) Validate() error {
	if k.N < 1 || k.N > 4096 {
		return fmt.Errorf("kernels: vecnorm N %d outside [1,4096]", k.N)
	}
	return nil
}

// Prepare assembles the kernel and writes per-run random vectors.
func (k VecNorm) Prepare(run int) (*isa.Machine, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	bl := isa.NewBuilder(k.Name(), defaultCodeBase)
	// r20 base; r1 = vector index; r2 = n; r5 = vector addr.
	bl.Li(20, defaultDataBase)
	bl.Li(2, int32(k.N))
	bl.Li(1, 0)
	bl.Label("vec")
	bl.Sll(5, 1, 5) // 32 bytes per vector
	bl.Add(5, 5, 20)
	// norm2 = sum of squares of the 4 lanes.
	bl.Fcvt(1, 0)
	for lane := int32(0); lane < 4; lane++ {
		bl.Fld(2, 5, 8*lane)
		bl.Fmul(2, 2, 2)
		bl.Fadd(1, 1, 2)
	}
	bl.Fsqrt(3, 1) // norm
	// Divide each lane by the norm and store back.
	for lane := int32(0); lane < 4; lane++ {
		bl.Fld(2, 5, 8*lane)
		bl.Fdiv(2, 2, 3)
		bl.Fst(5, 8*lane, 2)
	}
	bl.Addi(1, 1, 1)
	bl.Blt(1, 2, "vec")
	bl.Halt()
	prog, err := bl.Build()
	if err != nil {
		return nil, err
	}

	mem := isa.NewMemory()
	src := inputRNG(k.Seed, run)
	for i := 0; i < 4*k.N; i++ {
		v := rng.Float64(src) + 0.1 // avoid zero vectors
		if err := mem.Write64(uint64(defaultDataBase+8*i), v); err != nil {
			return nil, err
		}
	}
	return isa.NewMachine(prog, mem), nil
}

// PathOf: single-path kernel.
func (k VecNorm) PathOf(*isa.Machine) string { return "" }

// Lane reads normalized vector i, lane l from a finished machine.
func (k VecNorm) Lane(m *isa.Machine, i, l int) float64 {
	v, _ := m.Mem.Read64(uint64(defaultDataBase + 32*i + 8*l))
	return v
}
