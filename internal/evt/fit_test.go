package evt

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestBlockMaxima(t *testing.T) {
	xs := []float64{1, 5, 2, 8, 3, 4, 9, 7, 6}
	bm, discarded, err := BlockMaxima(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 8, 9}
	if len(bm) != 3 {
		t.Fatalf("len = %d", len(bm))
	}
	if discarded != 0 {
		t.Errorf("discarded = %d, want 0 (sample divides evenly)", discarded)
	}
	for i := range want {
		if bm[i] != want[i] {
			t.Errorf("bm[%d] = %v, want %v", i, bm[i], want[i])
		}
	}
}

func TestBlockMaximaPartialBlockDropped(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 100}
	bm, discarded, err := BlockMaxima(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(bm) != 2 {
		t.Fatalf("len = %d, want 2 (trailing 100 dropped)", len(bm))
	}
	if bm[0] != 2 || bm[1] != 4 {
		t.Errorf("bm = %v", bm)
	}
	if discarded != 1 {
		t.Errorf("discarded = %d, want 1 (the trailing 100)", discarded)
	}
}

func TestBlockMaximaErrors(t *testing.T) {
	if _, _, err := BlockMaxima([]float64{1, 2}, 0); err == nil {
		t.Error("blockSize=0 accepted")
	}
	if _, _, err := BlockMaxima([]float64{1, 2}, 5); err == nil {
		t.Error("sample shorter than block accepted")
	}
}

func TestBlockMaximaBlockOne(t *testing.T) {
	xs := []float64{3, 1, 4}
	bm, _, _ := BlockMaxima(xs, 1)
	for i := range xs {
		if bm[i] != xs[i] {
			t.Errorf("block size 1 must be identity; got %v", bm)
		}
	}
}

func TestFitGumbelRecoversParameters(t *testing.T) {
	truth := Gumbel{Mu: 1000, Beta: 25}
	src := rng.NewXoroshiro128(31)
	sample := truth.Sample(src, 20000)
	for _, m := range []FitMethod{MethodPWM, MethodMoments, MethodMLE} {
		fit, err := FitGumbel(sample, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if math.Abs(fit.Mu-truth.Mu) > 1.0 {
			t.Errorf("%s: mu = %.2f, want ~%.2f", m, fit.Mu, truth.Mu)
		}
		if math.Abs(fit.Beta-truth.Beta)/truth.Beta > 0.05 {
			t.Errorf("%s: beta = %.2f, want ~%.2f", m, fit.Beta, truth.Beta)
		}
	}
}

func TestFitGumbelDefaultMethodIsPWM(t *testing.T) {
	src := rng.NewXoroshiro128(5)
	sample := Gumbel{Mu: 10, Beta: 2}.Sample(src, 500)
	def, err := FitGumbel(sample, "")
	if err != nil {
		t.Fatal(err)
	}
	pwm, _ := FitGumbel(sample, MethodPWM)
	if def != pwm {
		t.Errorf("default fit %+v != PWM fit %+v", def, pwm)
	}
}

func TestFitGumbelSmallSample(t *testing.T) {
	if _, err := FitGumbel([]float64{1, 2, 3}, MethodPWM); err == nil {
		t.Error("n=3 accepted")
	}
}

func TestFitGumbelConstantSample(t *testing.T) {
	xs := []float64{7, 7, 7, 7, 7, 7}
	for _, m := range []FitMethod{MethodPWM, MethodMoments, MethodMLE} {
		if _, err := FitGumbel(xs, m); err == nil {
			t.Errorf("%s: constant sample accepted", m)
		}
	}
}

func TestFitGumbelUnknownMethod(t *testing.T) {
	if _, err := FitGumbel([]float64{1, 2, 3, 4, 5, 6}, "bogus"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestFitGumbelMLEBeatsMomentsOnLikelihood(t *testing.T) {
	truth := Gumbel{Mu: 500, Beta: 13}
	src := rng.NewXoroshiro128(77)
	sample := truth.Sample(src, 2000)
	logLik := func(g Gumbel) float64 {
		ll := 0.0
		for _, x := range sample {
			ll += math.Log(g.PDF(x))
		}
		return ll
	}
	mle, err := FitGumbel(sample, MethodMLE)
	if err != nil {
		t.Fatal(err)
	}
	mom, _ := FitGumbel(sample, MethodMoments)
	if logLik(mle) < logLik(mom)-1e-6 {
		t.Errorf("MLE loglik %.4f < moments loglik %.4f", logLik(mle), logLik(mom))
	}
}

func TestFitGEVRecoversShape(t *testing.T) {
	// Sample from GEV with each shape and check the recovered xi sign
	// and rough magnitude.
	src := rng.NewXoroshiro128(8)
	for _, xi := range []float64{-0.2, 0.0, 0.2} {
		truth := GEV{Xi: xi, Mu: 100, Sigma: 10}
		sample := make([]float64, 20000)
		for i := range sample {
			u := rng.Float64(src)
			for u == 0 {
				u = rng.Float64(src)
			}
			x, err := truth.Quantile(u)
			if err != nil {
				// u could be exactly 1? Float64 < 1 always.
				t.Fatal(err)
			}
			sample[i] = x
		}
		fit, err := FitGEV(sample)
		if err != nil {
			t.Fatalf("xi=%v: %v", xi, err)
		}
		if math.Abs(fit.Xi-xi) > 0.05 {
			t.Errorf("xi = %.3f, want ~%.1f", fit.Xi, xi)
		}
		if math.Abs(fit.Mu-truth.Mu) > 1 {
			t.Errorf("mu = %.2f, want ~%.0f", fit.Mu, truth.Mu)
		}
		if math.Abs(fit.Sigma-truth.Sigma)/truth.Sigma > 0.1 {
			t.Errorf("sigma = %.2f, want ~%.0f", fit.Sigma, truth.Sigma)
		}
	}
}

func TestFitGEVErrors(t *testing.T) {
	if _, err := FitGEV([]float64{1, 2, 3}); err == nil {
		t.Error("n=3 accepted")
	}
	if _, err := FitGEV(make([]float64, 50)); err == nil {
		t.Error("constant sample accepted")
	}
}

func TestFitGPDRecoversExponential(t *testing.T) {
	// Exponential exceedances = GPD with xi=0.
	src := rng.NewXoroshiro128(12)
	xs := make([]float64, 50000)
	for i := range xs {
		u := rng.Float64(src)
		for u == 0 {
			u = rng.Float64(src)
		}
		xs[i] = 100 - 5*math.Log(u) // shifted exponential, scale 5
	}
	gpd, n, err := FitGPD(xs, 105)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1000 {
		t.Fatalf("only %d exceedances", n)
	}
	if math.Abs(gpd.Xi) > 0.05 {
		t.Errorf("xi = %.3f, want ~0", gpd.Xi)
	}
	if math.Abs(gpd.Sigma-5)/5 > 0.1 {
		t.Errorf("sigma = %.3f, want ~5", gpd.Sigma)
	}
}

func TestFitGPDTooFewExceedances(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if _, _, err := FitGPD(xs, 4.5); err == nil {
		t.Error("accepted with 1 exceedance")
	}
}

func TestFitPoT(t *testing.T) {
	src := rng.NewXoroshiro128(3)
	truth := Gumbel{Mu: 1000, Beta: 20}
	xs := truth.Sample(src, 20000)
	m, err := FitPoT(xs, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Rate-0.1) > 0.02 {
		t.Errorf("rate = %.3f, want ~0.1", m.Rate)
	}
	// The PoT model's 1e-3 exceedance bound should be near the true
	// Gumbel's (both are light-tailed fits of the same data).
	potQ, err := m.QuantileSF(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	gumQ, _ := truth.QuantileSF(1e-3)
	if math.Abs(potQ-gumQ)/gumQ > 0.05 {
		t.Errorf("PoT 1e-3 bound %.1f vs Gumbel %.1f", potQ, gumQ)
	}
}

func TestFitPoTBadQuantile(t *testing.T) {
	if _, err := FitPoT([]float64{1, 2, 3}, 1.5); err == nil {
		t.Error("q=1.5 accepted")
	}
	if _, err := FitPoT([]float64{1, 2, 3}, 0); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestExceedanceModelBelowThreshold(t *testing.T) {
	m := ExceedanceModel{Tail: GPD{Xi: 0, U: 100, Sigma: 5}, Rate: 0.1}
	if got := m.SF(50); got != 0.1 {
		t.Errorf("SF below threshold = %v, want rate", got)
	}
	x, err := m.QuantileSF(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if x != 100 {
		t.Errorf("QuantileSF(q>rate) = %v, want threshold", x)
	}
	if _, err := m.QuantileSF(0); err == nil {
		t.Error("q=0 accepted")
	}
}

func TestGumbelFitUpperBoundsObservations(t *testing.T) {
	// The fitted tail at the empirical max should give a plausible
	// (non-vanishing) exceedance probability: the pWCET curve must
	// upper-bound the observations, i.e. SF(max) >= ~1/(3n).
	src := rng.NewXoroshiro128(99)
	sample := Gumbel{Mu: 2000, Beta: 40}.Sample(src, 3000)
	fit, err := FitGumbel(sample, MethodPWM)
	if err != nil {
		t.Fatal(err)
	}
	maxv := sample[0]
	for _, v := range sample {
		if v > maxv {
			maxv = v
		}
	}
	if sf := fit.SF(maxv); sf < 1.0/float64(10*len(sample)) {
		t.Errorf("SF(max)=%g too small: fitted tail does not cover observations", sf)
	}
}
