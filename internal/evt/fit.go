package evt

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// BlockMaxima partitions xs into consecutive blocks of size blockSize
// (in observation order — order matters, so callers pass the raw
// measurement series) and returns the maximum of each complete block.
// A trailing partial block is discarded, as in the MBPTA process;
// discarded reports how many trailing observations were dropped
// (len(xs) mod blockSize) so reports never over-state the sample size.
func BlockMaxima(xs []float64, blockSize int) (maxima []float64, discarded int, err error) {
	if blockSize < 1 {
		return nil, 0, fmt.Errorf("%w: block size %d", ErrBadParam, blockSize)
	}
	if len(xs) < blockSize {
		return nil, 0, fmt.Errorf("%w: %d observations < block size %d", ErrBadSample, len(xs), blockSize)
	}
	n := len(xs) / blockSize
	out := make([]float64, n)
	for b := 0; b < n; b++ {
		m := xs[b*blockSize]
		for _, v := range xs[b*blockSize+1 : (b+1)*blockSize] {
			if v > m {
				m = v
			}
		}
		out[b] = m
	}
	return out, len(xs) - n*blockSize, nil
}

// FitMethod selects the Gumbel parameter estimator.
type FitMethod string

// Available estimators. PWM is the MBPTA literature default: it is
// robust on the small block-maxima samples the convergence loop starts
// from and has no iterative failure modes.
const (
	MethodPWM     FitMethod = "pwm"
	MethodMoments FitMethod = "moments"
	MethodMLE     FitMethod = "mle"
)

// FitGumbel estimates Gumbel parameters from a sample of (block) maxima.
func FitGumbel(maxima []float64, method FitMethod) (Gumbel, error) {
	if len(maxima) < 5 {
		return Gumbel{}, fmt.Errorf("%w: need >=5 maxima, have %d", ErrBadSample, len(maxima))
	}
	if constantSample(maxima) {
		return Gumbel{}, fmt.Errorf("%w: constant maxima (no jitter to model)", ErrBadSample)
	}
	switch method {
	case MethodPWM, "":
		return fitGumbelPWM(maxima)
	case MethodMoments:
		return fitGumbelMoments(maxima)
	case MethodMLE:
		return fitGumbelMLE(maxima)
	default:
		return Gumbel{}, fmt.Errorf("%w: unknown fit method %q", ErrBadParam, method)
	}
}

func constantSample(xs []float64) bool {
	for _, x := range xs[1:] {
		if x != xs[0] {
			return false
		}
	}
	return true
}

// fitGumbelPWM uses probability-weighted moments (Landwehr et al. 1979):
// beta = (2 b1 - b0) / ln 2, mu = b0 - gamma*beta, where b0 is the
// sample mean and b1 = sum_{i} (i-1)/(n-1) x_(i) / n over the sorted
// sample.
func fitGumbelPWM(maxima []float64) (Gumbel, error) {
	s := append([]float64(nil), maxima...)
	sort.Float64s(s)
	n := len(s)
	var b0, b1 float64
	for i, x := range s {
		b0 += x
		b1 += float64(i) / float64(n-1) * x
	}
	b0 /= float64(n)
	b1 /= float64(n)
	beta := (2*b1 - b0) / math.Ln2
	if beta <= 0 {
		return Gumbel{}, fmt.Errorf("%w: PWM produced non-positive scale %g", ErrBadSample, beta)
	}
	return Gumbel{Mu: b0 - EulerGamma*beta, Beta: beta}, nil
}

// fitGumbelMoments matches mean and variance:
// beta = s*sqrt(6)/pi, mu = mean - gamma*beta.
func fitGumbelMoments(maxima []float64) (Gumbel, error) {
	m, err := stats.Mean(maxima)
	if err != nil {
		return Gumbel{}, err
	}
	sd, err := stats.StdDev(maxima)
	if err != nil {
		return Gumbel{}, err
	}
	beta := sd * math.Sqrt(6) / math.Pi
	if beta <= 0 {
		return Gumbel{}, fmt.Errorf("%w: zero variance", ErrBadSample)
	}
	return Gumbel{Mu: m - EulerGamma*beta, Beta: beta}, nil
}

// fitGumbelMLE solves the one-dimensional profile likelihood equation
// for beta by Newton iteration with bisection safeguards:
//
//	beta = mean(x) - sum(x e^{-x/beta}) / sum(e^{-x/beta})
//
// then mu = -beta ln( mean(e^{-x/beta}) ).
func fitGumbelMLE(maxima []float64) (Gumbel, error) {
	m, _ := stats.Mean(maxima)
	sd, _ := stats.StdDev(maxima)
	beta := sd * math.Sqrt(6) / math.Pi // moments start
	if beta <= 0 {
		return Gumbel{}, fmt.Errorf("%w: zero variance", ErrBadSample)
	}
	// g(beta) = beta - mean + S1/S0 where S1 = sum x e^{-x/b}, S0 = sum e^{-x/b}.
	g := func(b float64) float64 {
		var s0, s1 float64
		for _, x := range maxima {
			// Shift by m for numerical stability; the ratio S1/S0 is
			// shift-invariant in the exponent.
			e := math.Exp(-(x - m) / b)
			s0 += e
			s1 += x * e
		}
		return b - m + s1/s0
	}
	lo, hi := beta/100, beta*100
	glo := g(lo)
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		gm := g(mid)
		if math.Abs(gm) < 1e-12*math.Max(1, m) || (hi-lo) < 1e-14*beta {
			beta = mid
			break
		}
		if (gm < 0) == (glo < 0) {
			lo, glo = mid, gm
		} else {
			hi = mid
		}
		beta = mid
	}
	if beta <= 0 || math.IsNaN(beta) {
		return Gumbel{}, fmt.Errorf("%w: MLE did not converge", ErrBadSample)
	}
	var s0 float64
	for _, x := range maxima {
		s0 += math.Exp(-(x - m) / beta)
	}
	mu := m - beta*math.Log(s0/float64(len(maxima)))
	return Gumbel{Mu: mu, Beta: beta}, nil
}

// FitGEV estimates GEV parameters by probability-weighted moments
// (Hosking, Wallis & Wood 1985). The analyzer uses the fitted shape xi
// as a tail diagnostic: MBPTA requires xi <= 0 (light or bounded tail).
func FitGEV(maxima []float64) (GEV, error) {
	if len(maxima) < 10 {
		return GEV{}, fmt.Errorf("%w: need >=10 maxima for GEV, have %d", ErrBadSample, len(maxima))
	}
	if constantSample(maxima) {
		return GEV{}, fmt.Errorf("%w: constant maxima", ErrBadSample)
	}
	s := append([]float64(nil), maxima...)
	sort.Float64s(s)
	n := len(s)
	var b0, b1, b2 float64
	for i, x := range s {
		fi := float64(i)
		b0 += x
		b1 += fi / float64(n-1) * x
		if n > 2 {
			b2 += fi * (fi - 1) / (float64(n-1) * float64(n-2)) * x
		}
	}
	b0 /= float64(n)
	b1 /= float64(n)
	b2 /= float64(n)
	// Hosking's approximation for the shape.
	c := (2*b1-b0)/(3*b2-b0) - math.Ln2/math.Log(3)
	xi := -(7.8590*c + 2.9554*c*c) // note: Hosking's k = -xi
	k := -xi
	var sigma, mu float64
	if math.Abs(k) < 1e-8 {
		// Gumbel limit.
		g, err := fitGumbelPWM(maxima)
		if err != nil {
			return GEV{}, err
		}
		return GEV{Xi: 0, Mu: g.Mu, Sigma: g.Beta}, nil
	}
	gamma1k := math.Gamma(1 + k)
	sigma = (2*b1 - b0) * k / (gamma1k * (1 - math.Pow(2, -k)))
	mu = b0 + sigma*(gamma1k-1)/k
	if sigma <= 0 || math.IsNaN(sigma) || math.IsNaN(mu) || math.IsNaN(xi) {
		return GEV{}, fmt.Errorf("%w: GEV PWM produced invalid parameters", ErrBadSample)
	}
	return GEV{Xi: xi, Mu: mu, Sigma: sigma}, nil
}

// FitGPD estimates GPD parameters over the exceedances of xs above the
// threshold u, by probability-weighted moments (Hosking & Wallis 1987).
// Returns the model and the number of exceedances used.
func FitGPD(xs []float64, u float64) (GPD, int, error) {
	var exc []float64
	for _, x := range xs {
		if x > u {
			exc = append(exc, x-u)
		}
	}
	if len(exc) < 10 {
		return GPD{}, len(exc), fmt.Errorf("%w: only %d exceedances above %g", ErrBadSample, len(exc), u)
	}
	sort.Float64s(exc)
	n := len(exc)
	var b0, b1 float64
	for i, x := range exc {
		b0 += x
		// PWM beta_1 with plotting position (i - 0.35)/n.
		b1 += (1 - (float64(i)+0.65)/float64(n)) * x
	}
	b0 /= float64(n)
	b1 /= float64(n)
	if b0 <= 0 {
		return GPD{}, n, fmt.Errorf("%w: degenerate exceedances", ErrBadSample)
	}
	xi := 2 - b0/(b0-2*b1)
	sigma := 2 * b0 * b1 / (b0 - 2*b1)
	if sigma <= 0 || math.IsNaN(sigma) || math.IsNaN(xi) {
		return GPD{}, n, fmt.Errorf("%w: GPD PWM produced invalid parameters", ErrBadSample)
	}
	return GPD{Xi: xi, U: u, Sigma: sigma}, n, nil
}

// ExceedanceModel composes a GPD tail with the empirical exceedance rate
// of the threshold, so SF gives *unconditional* per-observation
// exceedance probabilities comparable with a Gumbel-per-block model.
type ExceedanceModel struct {
	Tail GPD
	Rate float64 // P(X > u), estimated as (#exceedances)/n
}

// SF returns P(X > x) = Rate * P(X > x | X > u) for x above the
// threshold and the (conservative) Rate itself below it.
func (m ExceedanceModel) SF(x float64) float64 {
	if x <= m.Tail.U {
		return m.Rate
	}
	return m.Rate * m.Tail.SF(x)
}

// QuantileSF inverts SF for q < Rate.
func (m ExceedanceModel) QuantileSF(q float64) (float64, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("%w: exceedance probability %v", ErrBadParam, q)
	}
	if q >= m.Rate {
		return m.Tail.U, nil
	}
	return m.Tail.QuantileSF(q / m.Rate)
}

// String describes the composite model.
func (m ExceedanceModel) String() string {
	return fmt.Sprintf("PoT{rate=%.4g, %s}", m.Rate, m.Tail)
}

var _ TailModel = ExceedanceModel{}

// FitPoT builds an ExceedanceModel using the q-quantile of xs as the
// threshold (q in (0,1), e.g. 0.9).
func FitPoT(xs []float64, q float64) (ExceedanceModel, error) {
	if q <= 0 || q >= 1 {
		return ExceedanceModel{}, fmt.Errorf("%w: threshold quantile %v", ErrBadParam, q)
	}
	u, err := stats.Quantile(xs, q)
	if err != nil {
		return ExceedanceModel{}, err
	}
	gpd, nexc, err := FitGPD(xs, u)
	if err != nil {
		return ExceedanceModel{}, err
	}
	return ExceedanceModel{Tail: gpd, Rate: float64(nexc) / float64(len(xs))}, nil
}
