package evt

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.10g, want %.10g (tol %g)", name, got, want, tol)
	}
}

func TestGumbelCDFKnownValues(t *testing.T) {
	g := Gumbel{Mu: 0, Beta: 1}
	// F(0) = exp(-1).
	approx(t, "F(0)", g.CDF(0), math.Exp(-1), 1e-15)
	// F(mu + beta*ln(ln 2)) ... median: F^-1(0.5) = -ln(ln 2).
	med, _ := g.Quantile(0.5)
	approx(t, "median", med, -math.Log(math.Ln2), 1e-12)
	approx(t, "F(med)", g.CDF(med), 0.5, 1e-12)
}

func TestGumbelSFPrecisionInFarTail(t *testing.T) {
	g := Gumbel{Mu: 100, Beta: 5}
	// At the 1e-15 exceedance quantile, SF must return ~1e-15, which a
	// naive 1-CDF would round to 0.
	x, err := g.QuantileSF(1e-15)
	if err != nil {
		t.Fatal(err)
	}
	sf := g.SF(x)
	if sf < 0.5e-15 || sf > 2e-15 {
		t.Errorf("SF at 1e-15 quantile = %g", sf)
	}
}

func TestGumbelQuantileRoundTrip(t *testing.T) {
	g := Gumbel{Mu: 1000, Beta: 42}
	for _, p := range []float64{1e-6, 0.01, 0.5, 0.99, 1 - 1e-9} {
		x, err := g.Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, "CDF(Q(p))", g.CDF(x), p, 1e-9)
	}
	for _, q := range []float64{1e-15, 1e-12, 1e-9, 1e-6, 1e-3, 0.1, 0.9} {
		x, err := g.QuantileSF(q)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(g.SF(x)-q) / q
		if rel > 1e-6 {
			t.Errorf("SF(QSF(%g)) relative error %g", q, rel)
		}
	}
}

func TestGumbelQuantileDomain(t *testing.T) {
	g := Gumbel{Mu: 0, Beta: 1}
	for _, p := range []float64{0, 1, -1, 2, math.NaN()} {
		if _, err := g.Quantile(p); err == nil {
			t.Errorf("Quantile(%v) accepted", p)
		}
		if _, err := g.QuantileSF(p); err == nil {
			t.Errorf("QuantileSF(%v) accepted", p)
		}
	}
}

func TestGumbelMoments(t *testing.T) {
	g := Gumbel{Mu: 10, Beta: 2}
	approx(t, "mean", g.Mean(), 10+2*EulerGamma, 1e-12)
	approx(t, "stddev", g.StdDev(), 2*math.Pi/math.Sqrt(6), 1e-12)
}

func TestGumbelPDFIntegratesToOne(t *testing.T) {
	g := Gumbel{Mu: 5, Beta: 3}
	lo, _ := g.Quantile(1e-10)
	hi, _ := g.QuantileSF(1e-10)
	const steps = 100000
	h := (hi - lo) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * g.PDF(lo+float64(i)*h)
	}
	approx(t, "integral", sum*h, 1, 1e-6)
}

func TestGumbelValid(t *testing.T) {
	if !(Gumbel{Mu: 0, Beta: 1}).Valid() {
		t.Error("valid params rejected")
	}
	for _, g := range []Gumbel{{0, 0}, {0, -1}, {math.NaN(), 1}, {0, math.NaN()}, {math.Inf(1), 1}} {
		if g.Valid() {
			t.Errorf("%+v accepted", g)
		}
	}
}

func TestGumbelSFMonotoneProperty(t *testing.T) {
	g := Gumbel{Mu: 50, Beta: 7}
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 200)
		b = math.Mod(math.Abs(b), 200)
		if a > b {
			a, b = b, a
		}
		return g.SF(a) >= g.SF(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGEVReducesToGumbel(t *testing.T) {
	gev := GEV{Xi: 0, Mu: 10, Sigma: 2}
	gum := Gumbel{Mu: 10, Beta: 2}
	for _, x := range []float64{0, 5, 10, 15, 30} {
		approx(t, "CDF", gev.CDF(x), gum.CDF(x), 1e-12)
		approx(t, "SF", gev.SF(x), gum.SF(x), 1e-12)
		approx(t, "PDF", gev.PDF(x), gum.PDF(x), 1e-12)
	}
	q1, _ := gev.Quantile(0.9)
	q2, _ := gum.Quantile(0.9)
	approx(t, "Quantile", q1, q2, 1e-12)
	q1, _ = gev.QuantileSF(1e-9)
	q2, _ = gum.QuantileSF(1e-9)
	approx(t, "QuantileSF", q1, q2, 1e-9)
}

func TestGEVFrechetSupport(t *testing.T) {
	// xi > 0: lower endpoint at mu - sigma/xi.
	g := GEV{Xi: 0.5, Mu: 0, Sigma: 1}
	lowEnd := g.Mu - g.Sigma/g.Xi // -2
	if got := g.CDF(lowEnd - 1); got != 0 {
		t.Errorf("CDF below lower endpoint = %v", got)
	}
	if got := g.SF(lowEnd - 1); got != 1 {
		t.Errorf("SF below lower endpoint = %v", got)
	}
	if g.PDF(lowEnd-1) != 0 {
		t.Error("PDF below support nonzero")
	}
}

func TestGEVWeibullSupport(t *testing.T) {
	// xi < 0: upper endpoint at mu + sigma/|xi|.
	g := GEV{Xi: -0.5, Mu: 0, Sigma: 1}
	upEnd := 2.0
	if got := g.CDF(upEnd + 1); got != 1 {
		t.Errorf("CDF above upper endpoint = %v", got)
	}
	if got := g.SF(upEnd + 1); got != 0 {
		t.Errorf("SF above upper endpoint = %v", got)
	}
}

func TestGEVQuantileRoundTrip(t *testing.T) {
	for _, xi := range []float64{-0.3, -0.1, 0.1, 0.3} {
		g := GEV{Xi: xi, Mu: 100, Sigma: 10}
		for _, p := range []float64{0.01, 0.5, 0.99} {
			x, err := g.Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			approx(t, "roundtrip", g.CDF(x), p, 1e-9)
		}
		x, err := g.QuantileSF(1e-6)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(g.SF(x)-1e-6) / 1e-6
		if rel > 1e-6 {
			t.Errorf("xi=%v: QSF roundtrip rel err %g", xi, rel)
		}
	}
}

func TestGPDExponentialLimit(t *testing.T) {
	g := GPD{Xi: 0, U: 10, Sigma: 2}
	// SF(u + sigma) = e^-1.
	approx(t, "SF", g.SF(12), math.Exp(-1), 1e-12)
	approx(t, "CDF+SF", g.CDF(15)+g.SF(15), 1, 1e-12)
	if g.SF(9) != 1 || g.CDF(9) != 0 {
		t.Error("below threshold: SF != 1 or CDF != 0")
	}
}

func TestGPDBoundedTail(t *testing.T) {
	// xi < 0 gives a finite upper endpoint u + sigma/|xi|.
	g := GPD{Xi: -0.5, U: 0, Sigma: 1}
	end := 2.0
	if g.SF(end+0.1) != 0 {
		t.Errorf("SF beyond endpoint = %v", g.SF(end+0.1))
	}
	if g.CDF(end+0.1) != 1 {
		t.Errorf("CDF beyond endpoint = %v", g.CDF(end+0.1))
	}
}

func TestGPDQuantileSFRoundTrip(t *testing.T) {
	for _, xi := range []float64{-0.3, 0, 0.3} {
		g := GPD{Xi: xi, U: 100, Sigma: 5}
		for _, q := range []float64{1e-9, 1e-6, 0.01, 0.5} {
			x, err := g.QuantileSF(q)
			if err != nil {
				t.Fatal(err)
			}
			rel := math.Abs(g.SF(x)-q) / q
			if rel > 1e-9 {
				t.Errorf("xi=%v q=%g: rel err %g", xi, q, rel)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []string{
		Gumbel{1, 2}.String(),
		GEV{0.1, 1, 2}.String(),
		GPD{0.1, 1, 2}.String(),
		ExceedanceModel{Tail: GPD{0, 1, 2}, Rate: 0.1}.String(),
	} {
		if s == "" {
			t.Error("empty String()")
		}
	}
}
