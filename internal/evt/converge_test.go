package evt

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSampleMatchesDistribution(t *testing.T) {
	g := Gumbel{Mu: 100, Beta: 10}
	src := rng.NewXoroshiro128(21)
	xs := g.Sample(src, 50000)
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if math.Abs(mean-g.Mean()) > 0.5 {
		t.Errorf("sample mean %.2f, want ~%.2f", mean, g.Mean())
	}
	// Empirical fraction above the 0.9 quantile should be ~0.1.
	q90, _ := g.Quantile(0.9)
	above := 0
	for _, x := range xs {
		if x > q90 {
			above++
		}
	}
	frac := float64(above) / float64(len(xs))
	if math.Abs(frac-0.1) > 0.01 {
		t.Errorf("fraction above q90 = %.4f", frac)
	}
}

func TestCRPSDistanceZeroForIdentical(t *testing.T) {
	g := Gumbel{Mu: 10, Beta: 2}
	d, err := CRPSDistance(g, g, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self-distance = %g", d)
	}
}

func TestCRPSDistancePositiveAndSymmetric(t *testing.T) {
	a := Gumbel{Mu: 10, Beta: 2}
	b := Gumbel{Mu: 12, Beta: 2}
	d1, err := CRPSDistance(a, b, -10, 60)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := CRPSDistance(b, a, -10, 60)
	if d1 <= 0 {
		t.Errorf("distance = %g, want > 0", d1)
	}
	approx(t, "symmetry", d1, d2, 1e-12)
}

func TestCRPSDistanceBadRange(t *testing.T) {
	g := Gumbel{Mu: 0, Beta: 1}
	if _, err := CRPSDistance(g, g, 5, 5); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := CRPSDistance(g, g, math.NaN(), 1); err == nil {
		t.Error("NaN range accepted")
	}
}

func TestGumbelCRPSScalesWithSeparation(t *testing.T) {
	base := Gumbel{Mu: 1000, Beta: 20}
	near := Gumbel{Mu: 1001, Beta: 20}
	far := Gumbel{Mu: 1100, Beta: 20}
	dNear, err := GumbelCRPS(base, near)
	if err != nil {
		t.Fatal(err)
	}
	dFar, _ := GumbelCRPS(base, far)
	if dNear >= dFar {
		t.Errorf("near distance %g >= far distance %g", dNear, dFar)
	}
}

func TestGumbelCRPSInvalid(t *testing.T) {
	if _, err := GumbelCRPS(Gumbel{0, -1}, Gumbel{0, 1}); err == nil {
		t.Error("invalid Gumbel accepted")
	}
}

func TestConvergenceCriterionStableFits(t *testing.T) {
	c := NewConvergenceCriterion()
	g := Gumbel{Mu: 100, Beta: 5}
	done, err := c.Observe(g)
	if err != nil || done {
		t.Fatalf("first observation: done=%v err=%v", done, err)
	}
	// Identical fits converge after Streak=2 further observations.
	done, _ = c.Observe(g)
	if done {
		t.Fatal("converged after a single comparison; want streak of 2")
	}
	done, _ = c.Observe(g)
	if !done {
		t.Fatal("did not converge on identical fits")
	}
	if len(c.History()) != 2 {
		t.Errorf("history length %d, want 2", len(c.History()))
	}
}

func TestConvergenceCriterionResetsStreakOnJump(t *testing.T) {
	c := NewConvergenceCriterion()
	a := Gumbel{Mu: 100, Beta: 5}
	b := Gumbel{Mu: 200, Beta: 5}
	c.Observe(a)
	c.Observe(a)            // streak 1
	done, _ := c.Observe(b) // jump: streak resets
	if done {
		t.Fatal("converged across a parameter jump")
	}
	done, _ = c.Observe(b) // streak 1
	if done {
		t.Fatal("converged with streak 1")
	}
	done, _ = c.Observe(b) // streak 2
	if !done {
		t.Fatal("did not converge after stabilizing")
	}
}

func TestConvergenceCriterionInvalidFit(t *testing.T) {
	c := NewConvergenceCriterion()
	if _, err := c.Observe(Gumbel{Mu: 0, Beta: -1}); err == nil {
		t.Error("invalid fit accepted")
	}
}

func TestConvergenceCriterionReset(t *testing.T) {
	c := NewConvergenceCriterion()
	g := Gumbel{Mu: 1, Beta: 1}
	c.Observe(g)
	c.Observe(g)
	c.Observe(g)
	c.Reset()
	if len(c.History()) != 0 {
		t.Error("history survives Reset")
	}
	done, _ := c.Observe(g)
	if done {
		t.Error("converged immediately after Reset")
	}
}

func TestConvergenceOnRealCampaign(t *testing.T) {
	// Simulated campaign: batches of 100 Gumbel samples; the criterion
	// should converge well before 5,000 total runs and the final fit
	// should be close to truth.
	truth := Gumbel{Mu: 3000, Beta: 30}
	src := rng.NewXoroshiro128(2)
	c := NewConvergenceCriterion()
	var all []float64
	converged := false
	batches := 0
	for batches = 0; batches < 50; batches++ {
		all = append(all, truth.Sample(src, 100)...)
		fit, err := FitGumbel(all, MethodPWM)
		if err != nil {
			t.Fatal(err)
		}
		done, err := c.Observe(fit)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			converged = true
			break
		}
	}
	if !converged {
		t.Fatalf("no convergence in %d batches (history %v)", batches, c.History())
	}
	fit, _ := FitGumbel(all, MethodPWM)
	if math.Abs(fit.Mu-truth.Mu) > 10 || math.Abs(fit.Beta-truth.Beta) > 5 {
		t.Errorf("converged fit %v far from truth %v", fit, truth)
	}
}
