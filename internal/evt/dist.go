// Package evt implements the extreme-value machinery of MBPTA: the
// Gumbel, Fréchet/Weibull (via GEV) and generalized-Pareto families,
// block-maxima extraction, parameter fitting (probability-weighted
// moments, method of moments, maximum likelihood), pWCET quantile
// inversion and the CRPS-based convergence criterion of the
// Cucu-Grosjean et al. (ECRTS 2012) MBPTA process that the paper applies.
//
// MBPTA convention: the pWCET curve plots, for each execution-time bound
// x, the probability that one run of the program exceeds x — i.e. the
// survival function 1-F(x) of the fitted extreme-value distribution,
// rescaled from per-block to per-run where needed.
package evt

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadParam reports invalid distribution parameters.
var ErrBadParam = errors.New("evt: invalid distribution parameter")

// ErrBadSample reports an unusable input sample.
var ErrBadSample = errors.New("evt: unusable sample")

// EulerGamma is the Euler–Mascheroni constant, used by moment-based
// Gumbel estimators.
const EulerGamma = 0.5772156649015328606

// Gumbel is the type-I extreme value distribution with location mu and
// scale beta > 0. It is the limiting distribution of block maxima for
// light-tailed parents and the distribution MBPTA fits to execution-time
// maxima on time-randomized platforms.
type Gumbel struct {
	Mu   float64 // location
	Beta float64 // scale, > 0
}

// Valid reports whether the parameters are admissible.
func (g Gumbel) Valid() bool {
	return g.Beta > 0 && !math.IsNaN(g.Mu) && !math.IsInf(g.Mu, 0) &&
		!math.IsNaN(g.Beta) && !math.IsInf(g.Beta, 0)
}

// CDF returns F(x) = exp(-exp(-(x-mu)/beta)).
func (g Gumbel) CDF(x float64) float64 {
	return math.Exp(-math.Exp(-(x - g.Mu) / g.Beta))
}

// SF returns the survival (exceedance) function 1 - F(x), computed via
// expm1 so that probabilities down to ~1e-300 keep full precision —
// essential when querying pWCET at cutoffs like 1e-15.
func (g Gumbel) SF(x float64) float64 {
	return -math.Expm1(-math.Exp(-(x - g.Mu) / g.Beta))
}

// PDF returns the density at x.
func (g Gumbel) PDF(x float64) float64 {
	z := (x - g.Mu) / g.Beta
	return math.Exp(-z-math.Exp(-z)) / g.Beta
}

// Quantile returns F^{-1}(p) = mu - beta ln(-ln p) for p in (0,1).
func (g Gumbel) Quantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: quantile probability %v", ErrBadParam, p)
	}
	return g.Mu - g.Beta*math.Log(-math.Log(p)), nil
}

// QuantileSF returns the execution-time bound exceeded with probability
// q: SF^{-1}(q). For tiny q it evaluates via log1p to preserve precision
// (Quantile(1-q) would collapse to Quantile(1) below q ~ 1e-16).
func (g Gumbel) QuantileSF(q float64) (float64, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("%w: exceedance probability %v", ErrBadParam, q)
	}
	// SF(x)=q  <=>  exp(-z)= -ln(1-q)  <=>  z = -ln(-log1p(-q)).
	return g.Mu - g.Beta*math.Log(-math.Log1p(-q)), nil
}

// Mean returns mu + beta*gamma.
func (g Gumbel) Mean() float64 { return g.Mu + g.Beta*EulerGamma }

// StdDev returns beta*pi/sqrt(6).
func (g Gumbel) StdDev() float64 { return g.Beta * math.Pi / math.Sqrt(6) }

// String formats the parameters for reports.
func (g Gumbel) String() string {
	return fmt.Sprintf("Gumbel(mu=%.4g, beta=%.4g)", g.Mu, g.Beta)
}

// GEV is the generalized extreme value distribution with shape xi
// (xi = 0 is Gumbel, xi > 0 Fréchet, xi < 0 reversed Weibull), location
// mu and scale sigma > 0. MBPTA soundness arguments require xi <= 0
// (bounded or exponential tails); GEV is provided so the analyzer can
// *detect* heavy tails and refuse them.
type GEV struct {
	Xi    float64
	Mu    float64
	Sigma float64
}

// Valid reports whether the parameters are admissible.
func (g GEV) Valid() bool {
	return g.Sigma > 0 && !math.IsNaN(g.Xi) && !math.IsNaN(g.Mu) && !math.IsNaN(g.Sigma)
}

// gevZ returns 1 + xi*(x-mu)/sigma, clamped at the support boundary.
func (g GEV) gevZ(x float64) float64 {
	return 1 + g.Xi*(x-g.Mu)/g.Sigma
}

// CDF returns the GEV distribution function at x.
func (g GEV) CDF(x float64) float64 {
	if math.Abs(g.Xi) < 1e-12 {
		return Gumbel{Mu: g.Mu, Beta: g.Sigma}.CDF(x)
	}
	z := g.gevZ(x)
	if z <= 0 {
		if g.Xi > 0 {
			return 0 // below the lower endpoint of a Fréchet-type
		}
		return 1 // above the upper endpoint of a Weibull-type
	}
	return math.Exp(-math.Pow(z, -1/g.Xi))
}

// SF returns 1 - CDF with expm1 precision in the far tail.
func (g GEV) SF(x float64) float64 {
	if math.Abs(g.Xi) < 1e-12 {
		return Gumbel{Mu: g.Mu, Beta: g.Sigma}.SF(x)
	}
	z := g.gevZ(x)
	if z <= 0 {
		if g.Xi > 0 {
			return 1
		}
		return 0
	}
	return -math.Expm1(-math.Pow(z, -1/g.Xi))
}

// PDF returns the density at x.
func (g GEV) PDF(x float64) float64 {
	if math.Abs(g.Xi) < 1e-12 {
		return Gumbel{Mu: g.Mu, Beta: g.Sigma}.PDF(x)
	}
	z := g.gevZ(x)
	if z <= 0 {
		return 0
	}
	t := math.Pow(z, -1/g.Xi)
	return t / z * math.Exp(-t) / g.Sigma
}

// Quantile returns F^{-1}(p).
func (g GEV) Quantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("%w: quantile probability %v", ErrBadParam, p)
	}
	if math.Abs(g.Xi) < 1e-12 {
		return Gumbel{Mu: g.Mu, Beta: g.Sigma}.Quantile(p)
	}
	return g.Mu + g.Sigma*(math.Pow(-math.Log(p), -g.Xi)-1)/g.Xi, nil
}

// QuantileSF returns the bound exceeded with probability q.
func (g GEV) QuantileSF(q float64) (float64, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("%w: exceedance probability %v", ErrBadParam, q)
	}
	if math.Abs(g.Xi) < 1e-12 {
		return Gumbel{Mu: g.Mu, Beta: g.Sigma}.QuantileSF(q)
	}
	return g.Mu + g.Sigma*(math.Pow(-math.Log1p(-q), -g.Xi)-1)/g.Xi, nil
}

// String formats the parameters for reports.
func (g GEV) String() string {
	return fmt.Sprintf("GEV(xi=%.4g, mu=%.4g, sigma=%.4g)", g.Xi, g.Mu, g.Sigma)
}

// GPD is the generalized Pareto distribution over exceedances above a
// threshold u, with shape xi and scale sigma > 0. Used by the
// peaks-over-threshold variant of the analyzer.
type GPD struct {
	Xi    float64
	U     float64 // threshold (location)
	Sigma float64
}

// Valid reports whether the parameters are admissible.
func (g GPD) Valid() bool {
	return g.Sigma > 0 && !math.IsNaN(g.Xi) && !math.IsNaN(g.U) && !math.IsNaN(g.Sigma)
}

// CDF returns P(X <= x | X > u) for x >= u.
func (g GPD) CDF(x float64) float64 {
	if x <= g.U {
		return 0
	}
	z := (x - g.U) / g.Sigma
	if math.Abs(g.Xi) < 1e-12 {
		return -math.Expm1(-z)
	}
	w := 1 + g.Xi*z
	if w <= 0 {
		// Beyond the finite upper endpoint (xi<0).
		return 1
	}
	return 1 - math.Pow(w, -1/g.Xi)
}

// SF returns the conditional exceedance probability 1-CDF.
func (g GPD) SF(x float64) float64 {
	if x <= g.U {
		return 1
	}
	z := (x - g.U) / g.Sigma
	if math.Abs(g.Xi) < 1e-12 {
		return math.Exp(-z)
	}
	w := 1 + g.Xi*z
	if w <= 0 {
		return 0
	}
	return math.Pow(w, -1/g.Xi)
}

// QuantileSF returns the value exceeded with conditional probability q.
func (g GPD) QuantileSF(q float64) (float64, error) {
	if q <= 0 || q >= 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("%w: exceedance probability %v", ErrBadParam, q)
	}
	if math.Abs(g.Xi) < 1e-12 {
		return g.U - g.Sigma*math.Log(q), nil
	}
	return g.U + g.Sigma*(math.Pow(q, -g.Xi)-1)/g.Xi, nil
}

// String formats the parameters for reports.
func (g GPD) String() string {
	return fmt.Sprintf("GPD(xi=%.4g, u=%.4g, sigma=%.4g)", g.Xi, g.U, g.Sigma)
}

// TailModel is the common interface the analyzer uses for any fitted
// tail: Gumbel, GEV or a GPD-over-threshold composite.
type TailModel interface {
	// SF returns the probability that one observation exceeds x.
	SF(x float64) float64
	// QuantileSF returns the smallest x exceeded with probability <= q.
	QuantileSF(q float64) (float64, error)
	// String describes the fitted model.
	String() string
}

var (
	_ TailModel = Gumbel{}
	_ TailModel = GEV{}
	_ TailModel = GPD{}
)
