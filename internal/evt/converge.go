package evt

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Sample draws n Gumbel variates from src by inversion. Used by tests
// and by the synthetic-workload examples.
func (g Gumbel) Sample(src rng.Source, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := rng.Float64(src)
		// Guard against u == 0 (log of zero).
		for u == 0 {
			u = rng.Float64(src)
		}
		out[i] = g.Mu - g.Beta*math.Log(-math.Log(u))
	}
	return out
}

// CRPSDistance computes a continuous-rank-probability-style distance
// between two fitted tail models: the integral of |F1(x) - F2(x)| dx
// over a range covering both distributions, normalized by the location
// scale so the result is a dimensionless relative discrepancy. The
// ECRTS-2012 MBPTA process declares convergence when this distance
// between the fits of consecutive iterations falls below a small
// threshold (0.001).
func CRPSDistance(a, b TailModel, lo, hi float64) (float64, error) {
	if !(hi > lo) || math.IsNaN(lo) || math.IsNaN(hi) {
		return 0, fmt.Errorf("%w: integration range [%g,%g]", ErrBadParam, lo, hi)
	}
	const steps = 2048
	h := (hi - lo) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		x := lo + float64(i)*h
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * math.Abs(a.SF(x)-b.SF(x))
	}
	scale := math.Abs(lo) + math.Abs(hi)
	if scale == 0 {
		scale = 1
	}
	return sum * h / scale * 2, nil
}

// GumbelCRPS computes the normalized CRPS distance between two Gumbel
// fits over their joint effective support (quantiles 1e-4 .. 1-1e-9).
func GumbelCRPS(a, b Gumbel) (float64, error) {
	if !a.Valid() || !b.Valid() {
		return 0, fmt.Errorf("%w: invalid Gumbel parameters", ErrBadParam)
	}
	aLo, _ := a.Quantile(1e-4)
	bLo, _ := b.Quantile(1e-4)
	aHi, _ := a.QuantileSF(1e-9)
	bHi, _ := b.QuantileSF(1e-9)
	lo, hi := math.Min(aLo, bLo), math.Max(aHi, bHi)
	return CRPSDistance(a, b, lo, hi)
}

// ConvergenceCriterion implements the iterative stop rule of the MBPTA
// process: after each batch of runs the tail is refitted, and the
// campaign stops once the distance between consecutive fits stays below
// Threshold for Streak consecutive batches.
type ConvergenceCriterion struct {
	Threshold float64 // maximum allowed relative CRPS distance (default 1e-3)
	Streak    int     // required consecutive passes (default 2)

	prev    *Gumbel
	current int
	history []float64
}

// NewConvergenceCriterion returns a criterion with the MBPTA defaults.
func NewConvergenceCriterion() *ConvergenceCriterion {
	return &ConvergenceCriterion{Threshold: 1e-3, Streak: 2}
}

// Observe feeds the Gumbel fit of the latest iteration and reports
// whether the campaign has converged.
func (c *ConvergenceCriterion) Observe(fit Gumbel) (bool, error) {
	if !fit.Valid() {
		return false, fmt.Errorf("%w: invalid fit", ErrBadParam)
	}
	threshold := c.Threshold
	if threshold <= 0 {
		threshold = 1e-3
	}
	streak := c.Streak
	if streak <= 0 {
		streak = 2
	}
	if c.prev == nil {
		c.prev = &fit
		return false, nil
	}
	d, err := GumbelCRPS(*c.prev, fit)
	if err != nil {
		return false, err
	}
	c.history = append(c.history, d)
	c.prev = &fit
	if d < threshold {
		c.current++
	} else {
		c.current = 0
	}
	return c.current >= streak, nil
}

// History returns the sequence of observed inter-iteration distances —
// the data behind the convergence trace of experiment E5.
func (c *ConvergenceCriterion) History() []float64 {
	return append([]float64(nil), c.history...)
}

// Reset clears the criterion state for a new campaign.
func (c *ConvergenceCriterion) Reset() {
	c.prev = nil
	c.current = 0
	c.history = nil
}
