// Package profiling wires the standard runtime/pprof CPU and heap
// profiles into the command-line tools, so hot-path regressions in the
// simulator can be diagnosed on the real campaign workloads rather
// than only on micro-benchmarks:
//
//	experiments -exp e2 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling as requested and returns a stop function that
// must run before the process exits. An empty path disables the
// corresponding profile; Start with both paths empty returns a no-op
// stop. The CPU profile streams from Start until stop; the heap
// profile is captured at stop time after a garbage collection, so it
// reflects live steady-state allocations rather than transient
// start-up garbage.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profiling: close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profiling: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profiling: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
