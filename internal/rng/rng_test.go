package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func allKinds() []Kind {
	return []Kind{KindXoroshiro, KindMWC, KindLFSR, KindSplitMix}
}

func TestNewKnownKinds(t *testing.T) {
	for _, k := range allKinds() {
		s, err := New(k, 42)
		if err != nil {
			t.Fatalf("New(%q): %v", k, err)
		}
		if s == nil {
			t.Fatalf("New(%q): nil source", k)
		}
	}
}

func TestNewDefaultKind(t *testing.T) {
	s, err := New("", 1)
	if err != nil {
		t.Fatalf("New(\"\"): %v", err)
	}
	if _, ok := s.(*Xoroshiro128); !ok {
		t.Errorf("default kind = %T, want *Xoroshiro128", s)
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New("mersenne", 1); err == nil {
		t.Error("New(unknown) succeeded, want error")
	}
}

func TestSeedDeterminism(t *testing.T) {
	for _, k := range allKinds() {
		a, _ := New(k, 12345)
		b, _ := New(k, 12345)
		for i := 0; i < 100; i++ {
			if av, bv := a.Uint64(), b.Uint64(); av != bv {
				t.Fatalf("%s: output %d differs: %#x vs %#x", k, i, av, bv)
			}
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	for _, k := range allKinds() {
		a, _ := New(k, 1)
		b, _ := New(k, 2)
		same := 0
		for i := 0; i < 64; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		if same > 2 {
			t.Errorf("%s: seeds 1 and 2 share %d/64 outputs", k, same)
		}
	}
}

func TestReseedRestartsStream(t *testing.T) {
	for _, k := range allKinds() {
		s, _ := New(k, 7)
		var first [8]uint64
		for i := range first {
			first[i] = s.Uint64()
		}
		s.Seed(7)
		for i := range first {
			if got := s.Uint64(); got != first[i] {
				t.Fatalf("%s: after reseed output %d = %#x, want %#x", k, i, got, first[i])
			}
		}
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	for _, k := range allKinds() {
		s, _ := New(k, 0)
		zeros := 0
		for i := 0; i < 32; i++ {
			if s.Uint64() == 0 {
				zeros++
			}
		}
		if zeros > 1 {
			t.Errorf("%s: zero seed produced %d zero outputs in 32", k, zeros)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := NewXoroshiro128(99)
	for _, n := range []int{1, 2, 3, 7, 16, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := Intn(s, n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	Intn(NewXoroshiro128(1), 0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared goodness of fit over 10 buckets, 100k draws.
	s := NewXoroshiro128(2024)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[Intn(s, n)]++
	}
	exp := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// 9 dof, 99.9% critical value ~ 27.88.
	if chi2 > 27.88 {
		t.Errorf("Intn uniformity chi2 = %.2f > 27.88 (counts %v)", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewMWC(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := Float64(s)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %.4f, want ~0.5", mean)
	}
}

func TestBoolBalance(t *testing.T) {
	s := NewXoroshiro128(3)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Bool(s) {
			trues++
		}
	}
	if math.Abs(float64(trues)/n-0.5) > 0.01 {
		t.Errorf("Bool true fraction = %.4f, want ~0.5", float64(trues)/n)
	}
}

func TestMul64AgainstBig(t *testing.T) {
	// Cross-check the 128-bit multiply against decomposed arithmetic.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via 32-bit split computed independently.
		a0, a1 := a&0xFFFFFFFF, a>>32
		b0, b1 := b&0xFFFFFFFF, b>>32
		lo00 := a0 * b0
		m1 := a1*b0 + lo00>>32
		m2 := a0*b1 + m1&0xFFFFFFFF
		wantHi := a1*b1 + m1>>32 + m2>>32
		wantLo := a * b
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHealthGoodGenerators(t *testing.T) {
	for _, k := range []Kind{KindXoroshiro, KindMWC, KindSplitMix} {
		s, _ := New(k, 77)
		rep := CheckHealth(s)
		if !rep.Pass {
			t.Errorf("%s: healthy generator failed battery: %v", k, rep.Failures)
		}
	}
}

func TestHealthDetectsStuckSource(t *testing.T) {
	rep := CheckHealth(stuckSource{})
	if rep.Pass {
		t.Error("stuck-at-zero source passed the battery")
	}
}

func TestHealthDetectsAlternatingSource(t *testing.T) {
	rep := CheckHealth(&alternatingSource{})
	if rep.Pass {
		t.Error("0101... source passed the battery")
	}
}

type stuckSource struct{}

func (stuckSource) Uint64() uint64 { return 0 }
func (stuckSource) Seed(uint64)    {}

type alternatingSource struct{}

func (*alternatingSource) Uint64() uint64 { return 0xAAAAAAAAAAAAAAAA }
func (*alternatingSource) Seed(uint64)    {}

func TestCheckedPassesHealthySource(t *testing.T) {
	c := NewChecked(NewXoroshiro128(11), 0)
	for i := 0; i < 10000; i++ {
		c.Uint64()
	}
	if err := c.Err(); err != nil {
		t.Errorf("healthy source flagged: %v", err)
	}
	if !c.LastReport().Pass {
		t.Error("startup battery failed for healthy source")
	}
}

func TestCheckedRepetitionCount(t *testing.T) {
	c := NewChecked(stuckSource{}, 0)
	for i := 0; i < 5; i++ {
		c.Uint64()
	}
	if c.Err() == nil {
		t.Error("repetition count did not trip on stuck source")
	}
}

func TestCheckedSeedClearsLatch(t *testing.T) {
	// Trip the latch with a stuck source wrapped in a switchable shim.
	sw := &switchable{stuck: true, inner: NewXoroshiro128(1)}
	c := &Checked{src: sw}
	for i := 0; i < 5; i++ {
		c.Uint64()
	}
	if c.Err() == nil {
		t.Fatal("latch did not trip")
	}
	sw.stuck = false
	c.Seed(42)
	for i := 0; i < 100; i++ {
		c.Uint64()
	}
	if err := c.Err(); err != nil {
		t.Errorf("latch not cleared by Seed: %v", err)
	}
}

type switchable struct {
	stuck bool
	inner Source
}

func (s *switchable) Uint64() uint64 {
	if s.stuck {
		return 0xDEAD
	}
	return s.inner.Uint64()
}
func (s *switchable) Seed(seed uint64) { s.inner.Seed(seed) }

func TestCheckedPeriodicBattery(t *testing.T) {
	// A source that is healthy at startup then degenerates should be
	// caught by the periodic battery.
	sw := &switchable{stuck: false, inner: NewXoroshiro128(8)}
	c := NewChecked(sw, 256)
	if c.Err() != nil {
		t.Fatalf("startup: %v", c.Err())
	}
	sw.stuck = true
	for i := 0; i < 1024 && c.Err() == nil; i++ {
		c.Uint64()
	}
	if c.Err() == nil {
		t.Error("periodic battery did not detect degeneration")
	}
}

func TestLFSRPeriodProgress(t *testing.T) {
	// The LFSR must not return to its seed state quickly.
	l := NewLFSR(1)
	start := l.state
	for i := 0; i < 10000; i++ {
		l.Uint64()
		if l.state == start {
			t.Fatalf("LFSR state repeated after %d words", i+1)
		}
	}
}

func TestEquidistributionHighBits(t *testing.T) {
	// High bits of each generator should be roughly balanced.
	for _, k := range []Kind{KindXoroshiro, KindMWC, KindSplitMix} {
		s, _ := New(k, 99)
		ones := 0
		const n = 20000
		for i := 0; i < n; i++ {
			if s.Uint64()>>63 == 1 {
				ones++
			}
		}
		frac := float64(ones) / n
		if math.Abs(frac-0.5) > 0.02 {
			t.Errorf("%s: top-bit one fraction %.4f", k, frac)
		}
	}
}

func BenchmarkXoroshiro128(b *testing.B) {
	s := NewXoroshiro128(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkMWC(b *testing.B) {
	s := NewMWC(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkIntnPow2(b *testing.B) {
	s := NewXoroshiro128(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Intn(s, 256)
	}
	_ = sink
}

func BenchmarkIntnNonPow2(b *testing.B) {
	s := NewXoroshiro128(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += Intn(s, 100)
	}
	_ = sink
}
