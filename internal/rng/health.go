package rng

import (
	"fmt"
	"math/bits"
)

// The health tests below follow the FIPS 140-2 single-bit-stream tests
// (monobit, poker, runs, long run) plus the SP 800-90B repetition-count
// test. The IEC-61508 SIL3 PRNG of the paper embeds comparable on-line
// self-checks; a randomized cache whose PRNG silently degenerates would
// void the probabilistic WCET argument, so the platform models consume
// randomness through a Checked wrapper that continuously samples its
// generator.

// HealthReport summarizes one execution of the test battery over a
// 20,000-bit stream (the FIPS 140-2 sample size).
type HealthReport struct {
	Ones       int     // monobit count of one bits
	Poker      float64 // poker test statistic X
	Runs       [6]int  // runs of length 1..5 and >=6, per polarity summed
	GapRuns    [6]int  // runs of zeros
	LongestRun int     // longest run of identical bits
	Pass       bool    // overall verdict
	Failures   []string
}

// String renders the report for logs and CLI output.
func (r HealthReport) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = fmt.Sprintf("FAIL %v", r.Failures)
	}
	return fmt.Sprintf("health{ones=%d poker=%.2f longest=%d %s}",
		r.Ones, r.Poker, r.LongestRun, verdict)
}

// fips bit-stream length: 20,000 bits = 2,500 bytes = 312.5 uint64s.
const fipsBits = 20000

// CheckHealth runs the FIPS 140-2 battery on 20,000 bits drawn from s and
// reports the outcome. The generator state advances.
func CheckHealth(s Source) HealthReport {
	var stream []uint64
	for got := 0; got < fipsBits; got += 64 {
		stream = append(stream, s.Uint64())
	}
	return checkBits(stream)
}

func checkBits(words []uint64) HealthReport {
	var r HealthReport

	// Monobit: count of ones in the first 20,000 bits must lie in
	// (9,725, 10,275).
	bitsSeen := 0
	for _, w := range words {
		take := 64
		if fipsBits-bitsSeen < 64 {
			take = fipsBits - bitsSeen
			w >>= uint(64 - take)
		}
		r.Ones += bits.OnesCount64(w)
		bitsSeen += take
		if bitsSeen >= fipsBits {
			break
		}
	}

	// Poker: partition 20,000 bits into 5,000 nibbles, X =
	// 16/5000 * sum(f_i^2) - 5000 must lie in (2.16, 46.17).
	var freq [16]int
	nibbles := 0
	for _, w := range words {
		for sh := 0; sh < 64 && nibbles < fipsBits/4; sh += 4 {
			freq[(w>>uint(sh))&0xF]++
			nibbles++
		}
		if nibbles >= fipsBits/4 {
			break
		}
	}
	sum := 0
	for _, f := range freq {
		sum += f * f
	}
	r.Poker = 16.0/5000.0*float64(sum) - 5000.0

	// Runs and long-run over the same 20,000 bits.
	prev := -1
	runLen := 0
	bitsSeen = 0
	record := func() {
		if runLen == 0 {
			return
		}
		idx := runLen
		if idx > 6 {
			idx = 6
		}
		if prev == 1 {
			r.Runs[idx-1]++
		} else {
			r.GapRuns[idx-1]++
		}
		if runLen > r.LongestRun {
			r.LongestRun = runLen
		}
	}
	for _, w := range words {
		for i := 63; i >= 0 && bitsSeen < fipsBits; i-- {
			b := int(w>>uint(i)) & 1
			if b == prev {
				runLen++
			} else {
				record()
				prev, runLen = b, 1
			}
			bitsSeen++
		}
		if bitsSeen >= fipsBits {
			break
		}
	}
	record()

	// FIPS 140-2 acceptance intervals.
	r.Pass = true
	fail := func(name string) {
		r.Pass = false
		r.Failures = append(r.Failures, name)
	}
	if r.Ones <= 9725 || r.Ones >= 10275 {
		fail("monobit")
	}
	if r.Poker <= 2.16 || r.Poker >= 46.17 {
		fail("poker")
	}
	lo := [6]int{2315, 1114, 527, 240, 103, 103}
	hi := [6]int{2685, 1386, 723, 384, 209, 209}
	for i := 0; i < 6; i++ {
		if r.Runs[i] < lo[i] || r.Runs[i] > hi[i] {
			fail(fmt.Sprintf("runs(1s,len=%d)", i+1))
		}
		if r.GapRuns[i] < lo[i] || r.GapRuns[i] > hi[i] {
			fail(fmt.Sprintf("runs(0s,len=%d)", i+1))
		}
	}
	if r.LongestRun >= 26 {
		fail("long-run")
	}
	return r
}

// Checked wraps a Source with an SP 800-90B-style repetition-count test
// executed on every output word, plus a periodic full FIPS battery. Once a
// test trips, Err reports ErrUnhealthy; outputs keep flowing (the hardware
// analogue raises a fault flag rather than halting the clock) so callers
// can decide whether to abort the measurement campaign.
type Checked struct {
	src         Source
	last        uint64
	repeat      int
	outputs     uint64
	batteryEvry uint64
	err         error
	lastReport  HealthReport
}

// repetitionCutoff: with 64-bit outputs, even 3 identical consecutive
// words has probability ~2^-128 for a healthy source; the standard cutoff
// C = 1 + ceil(-log2(alpha)/H) with alpha=2^-20, H=64 gives 2. We allow
// one repeat and flag at the second.
const repetitionCutoff = 3

// NewChecked wraps src; a full health battery runs at construction and
// every batteryEvery outputs (0 disables periodic batteries).
func NewChecked(src Source, batteryEvery uint64) *Checked {
	c := &Checked{src: src, batteryEvry: batteryEvery}
	c.lastReport = CheckHealth(src)
	if !c.lastReport.Pass {
		c.err = fmt.Errorf("%w: startup battery: %v", ErrUnhealthy, c.lastReport.Failures)
	}
	return c
}

// Seed reseeds the underlying source and clears the failure latch.
func (c *Checked) Seed(seed uint64) {
	c.src.Seed(seed)
	c.last, c.repeat, c.outputs, c.err = 0, 0, 0, nil
}

// Uint64 returns the next output while running the repetition-count test.
func (c *Checked) Uint64() uint64 {
	v := c.src.Uint64()
	if c.outputs > 0 && v == c.last {
		c.repeat++
		if c.repeat+1 >= repetitionCutoff && c.err == nil {
			c.err = fmt.Errorf("%w: repetition count (value %#x repeated)", ErrUnhealthy, v)
		}
	} else {
		c.repeat = 0
	}
	c.last = v
	c.outputs++
	if c.batteryEvry > 0 && c.outputs%c.batteryEvry == 0 {
		c.lastReport = CheckHealth(c.src)
		if !c.lastReport.Pass && c.err == nil {
			c.err = fmt.Errorf("%w: periodic battery: %v", ErrUnhealthy, c.lastReport.Failures)
		}
	}
	return v
}

// Err reports whether any online test has tripped since the last Seed.
func (c *Checked) Err() error { return c.err }

// LastReport returns the most recent full battery report.
func (c *Checked) LastReport() HealthReport { return c.lastReport }
