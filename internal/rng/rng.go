// Package rng provides the pseudo-random number generators that drive the
// time-randomized hardware of the MBPTA-compliant platform.
//
// The paper builds on a pseudo-random number generator "that has been shown
// to provide enough randomization for MBPTA" and that is IEC-61508 SIL3
// compliant (Agirre et al., DSD 2015). That generator is a hardware block;
// here we provide software generators with the same contract:
//
//   - deterministic reseeding per run (the measurement protocol sets a new
//     seed after each binary reload),
//   - statistical quality sufficient for randomized placement/replacement,
//   - online health tests in the style of safety standards (monobit, poker,
//     runs, long-run, repetition count) so a failed generator is detected
//     rather than silently degrading the probabilistic argument.
//
// All generators implement Source and are deliberately NOT safe for
// concurrent use: each simulated hardware block owns its own generator,
// mirroring the per-resource PRNG instances of the real design.
package rng

import (
	"errors"
	"fmt"
)

// Source is the interface implemented by all generators in this package.
// It is a subset of math/rand.Source64 plus convenience helpers used by
// the hardware models.
type Source interface {
	// Uint64 returns the next 64 pseudo-random bits.
	Uint64() uint64
	// Seed re-initializes the generator deterministically from seed.
	Seed(seed uint64)
}

// Uint32 derives 32 bits from a Source.
func Uint32(s Source) uint32 { return uint32(s.Uint64() >> 32) }

// Intn returns a uniformly distributed integer in [0, n) drawn from s.
// It panics if n <= 0. Uses Lemire's multiply-shift rejection method to
// avoid modulo bias, which matters because cache set counts are powers of
// two but way counts and arbitration windows need not be.
func Intn(s Source, n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	// Fast path for powers of two: mask.
	if un&(un-1) == 0 {
		return int(s.Uint64() & (un - 1))
	}
	// Rejection sampling on the high bits.
	for {
		v := s.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func Float64(s Source) float64 {
	// 53 random bits scaled into [0,1).
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func Bool(s Source) bool { return s.Uint64()&1 == 1 }

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + lo1>>32
	lo = a * b
	return hi, lo
}

// SplitMix64 is the seeding generator recommended for initializing the
// state of other generators. It is itself a full-period 2^64 generator.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Seed resets the generator state.
func (s *SplitMix64) Seed(seed uint64) { s.state = seed }

// Uint64 advances the generator and returns 64 pseudo-random bits.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Xoroshiro128 implements xoroshiro128** — small state, excellent
// statistical quality, and cheap enough to model a per-resource hardware
// PRNG. This is the default generator for the randomized caches and TLBs.
type Xoroshiro128 struct {
	s0, s1 uint64
}

// NewXoroshiro128 returns a generator seeded from seed via SplitMix64,
// following the reference seeding procedure.
func NewXoroshiro128(seed uint64) *Xoroshiro128 {
	x := &Xoroshiro128{}
	x.Seed(seed)
	return x
}

// Seed re-initializes the state from seed, guaranteeing a non-zero state.
// The seeding SplitMix64 is a stack value so reseeding allocates nothing
// (platforms reseed every run).
func (x *Xoroshiro128) Seed(seed uint64) {
	sm := SplitMix64{state: seed}
	x.s0 = sm.Uint64()
	x.s1 = sm.Uint64()
	if x.s0 == 0 && x.s1 == 0 {
		// The all-zero state is the one fixed point; perturb it.
		x.s0 = 0x9E3779B97F4A7C15
	}
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 advances the generator and returns 64 pseudo-random bits.
func (x *Xoroshiro128) Uint64() uint64 {
	s0, s1 := x.s0, x.s1
	result := rotl(s0*5, 7) * 9
	s1 ^= s0
	x.s0 = rotl(s0, 24) ^ s1 ^ (s1 << 16)
	x.s1 = rotl(s1, 37)
	return result
}

// Float64 is the concrete-receiver variant of the package-level helper:
// callers holding a stack-allocated Xoroshiro128 avoid the interface
// conversion (and the resulting heap escape) in allocation-free paths.
// Must stay in lockstep with Float64(Source).
func (x *Xoroshiro128) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Intn is the concrete-receiver variant of Intn(Source, int): same
// algorithm, same draw sequence, no interface escape. Must stay in
// lockstep with Intn(Source, int).
func (x *Xoroshiro128) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	un := uint64(n)
	if un&(un-1) == 0 {
		return int(x.Uint64() & (un - 1))
	}
	for {
		v := x.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// MWC is a multiply-with-carry generator. MWC designs are popular for
// hardware PRNGs because they need one multiplier and one adder; the
// IEC-61508 study evaluated generators of this complexity class.
type MWC struct {
	x, c uint64
}

// mwcA is the MWC multiplier; chosen so that a*2^64-1 and (a*2^64-2)/2 are
// prime, giving a period near 2^127.
const mwcA = 0xFFEBB71D94FCDAF9

// NewMWC returns an MWC generator seeded from seed.
func NewMWC(seed uint64) *MWC {
	m := &MWC{}
	m.Seed(seed)
	return m
}

// Seed re-initializes the state from seed, avoiding the degenerate
// all-zero and all-ones states.
func (m *MWC) Seed(seed uint64) {
	sm := SplitMix64{state: seed}
	m.x = sm.Uint64()
	m.c = sm.Uint64() % (mwcA - 1)
	if m.x == 0 && m.c == 0 {
		m.x = 1
	}
}

// Uint64 advances the generator and returns 64 pseudo-random bits.
func (m *MWC) Uint64() uint64 {
	hi, lo := mul64(m.x, mwcA)
	lo += m.c
	if lo < m.c {
		hi++
	}
	m.x, m.c = lo, hi
	return lo
}

// LFSR is a 64-bit Galois linear-feedback shift register. It is the
// weakest generator here — provided because LFSRs are the classic hardware
// randomization primitive and the health tests must be able to flag
// structured output when an LFSR is misused bit-serially.
type LFSR struct {
	state uint64
}

// lfsrTaps is the feedback polynomial x^64+x^63+x^61+x^60+1 (maximal).
const lfsrTaps = 0xD800000000000000

// NewLFSR returns an LFSR seeded with seed (zero is mapped to 1, as the
// zero state is absorbing).
func NewLFSR(seed uint64) *LFSR {
	l := &LFSR{}
	l.Seed(seed)
	return l
}

// Seed re-initializes the register; the absorbing zero state is avoided.
func (l *LFSR) Seed(seed uint64) {
	if seed == 0 {
		seed = 1
	}
	l.state = seed
}

// Uint64 clocks the register 64 times and returns the collected bits.
func (l *LFSR) Uint64() uint64 {
	var out uint64
	s := l.state
	for i := 0; i < 64; i++ {
		bit := s & 1
		s >>= 1
		if bit != 0 {
			s ^= lfsrTaps
		}
		out = out<<1 | bit
	}
	l.state = s
	return out
}

// Kind names a generator family for construction by configuration.
type Kind string

// Generator families available to platform configurations.
const (
	KindXoroshiro Kind = "xoroshiro128**"
	KindMWC       Kind = "mwc"
	KindLFSR      Kind = "lfsr"
	KindSplitMix  Kind = "splitmix64"
)

// New constructs a generator of the given kind seeded with seed.
func New(kind Kind, seed uint64) (Source, error) {
	switch kind {
	case KindXoroshiro, "":
		return NewXoroshiro128(seed), nil
	case KindMWC:
		return NewMWC(seed), nil
	case KindLFSR:
		return NewLFSR(seed), nil
	case KindSplitMix:
		return NewSplitMix64(seed), nil
	default:
		return nil, fmt.Errorf("rng: unknown generator kind %q", kind)
	}
}

// ErrUnhealthy is returned by Checked sources whose online health tests
// have tripped.
var ErrUnhealthy = errors.New("rng: generator failed online health tests")
