package pwcetd_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/pwcetd"
	"repro/pkg/mbpta"
)

// startService spins up a service over its own small fabric pool and
// returns a client against an httptest server.
func startService(t *testing.T, poolCfg fabric.Config) *mbpta.ServiceClient {
	t.Helper()
	pool := fabric.NewPool(poolCfg)
	t.Cleanup(pool.Close)
	svc, err := pwcetd.New(pwcetd.Config{Pool: pool})
	if err != nil {
		t.Fatalf("pwcetd.New: %v", err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return mbpta.NewServiceClient(ts.URL, ts.Client())
}

func params(t *testing.T, v any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestServiceCampaignLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs measurement campaigns")
	}
	c := startService(t, fabric.Config{Executors: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := mbpta.CampaignSpec{
		Workload: mbpta.WorkloadSpec{Kind: "crc32", Params: params(t, map[string]any{"Bytes": 512, "Seed": 7})},
		Runs:     400,
		Batch:    100,
		BaseSeed: 42,
	}
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if id == "" {
		t.Fatal("empty campaign ID")
	}

	st, err := c.Wait(ctx, id, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("state %q (error %q), want done", st.State, st.Error)
	}
	if st.RunsDone != 400 || st.RunsTotal != 400 {
		t.Errorf("runs %d/%d, want 400/400", st.RunsDone, st.RunsTotal)
	}
	if st.Fingerprint == "" {
		t.Error("finished campaign has no fingerprint")
	}

	rep, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(rep.Workload, "crc32") || rep.Platform == "" {
		t.Errorf("report identity: workload %q platform %q", rep.Workload, rep.Platform)
	}
	if rep.Fingerprint != st.Fingerprint {
		t.Errorf("report fingerprint %q != status fingerprint %q", rep.Fingerprint, st.Fingerprint)
	}

	// The analysis either completed (gate passed: quantiles answer and
	// cache) or rejected the gate (state done, error recorded) — both
	// are valid service outcomes; the quantile endpoint must agree.
	if rep.GatePass != nil && *rep.GatePass {
		v1, err := c.PWCET(ctx, id, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := c.PWCET(ctx, id, 1e-9) // cached second query
		if err != nil {
			t.Fatal(err)
		}
		if v1 != v2 || v1 <= 0 {
			t.Errorf("pWCET(1e-9) = %g then %g", v1, v2)
		}
		if len(rep.PWCET) == 0 {
			t.Error("analyzed report carries no pWCET ladder")
		}
	} else if st.Error == "" && rep.GatePass == nil {
		t.Error("no analysis and no recorded error")
	}
}

// TestServiceMatchesLocalFingerprint proves the service's fabric
// execution is bit-identical to a local single-process campaign of the
// same spec.
func TestServiceMatchesLocalFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs measurement campaigns")
	}
	c := startService(t, fabric.Config{Executors: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	kernel := map[string]any{"Bytes": 256, "Seed": 3}
	id, err := c.Submit(ctx, mbpta.CampaignSpec{
		Workload:    mbpta.WorkloadSpec{Kind: "crc32", Params: params(t, kernel)},
		Runs:        90,
		Batch:       30,
		BaseSeed:    9,
		MeasureOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("state %q (error %q)", st.State, st.Error)
	}

	w, err := mbpta.BuiltinWorkloads().Build(mbpta.WorkloadSpec{Kind: "crc32", Params: params(t, kernel)})
	if err != nil {
		t.Fatal(err)
	}
	local, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), w,
		mbpta.WithRuns(90), mbpta.WithBatchSize(30), mbpta.WithBaseSeed(9),
		mbpta.WithParallelism(1), mbpta.MeasureOnly())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.Fingerprint, local.Fingerprint(); got != want {
		t.Errorf("service fingerprint %s != local %s", got, want)
	}
}

// TestServiceStress multiplexes well over 100 concurrent campaigns
// over a pool far smaller than the campaign count: admission
// backpressure bounds the in-flight set, fair lease scheduling lets
// every admitted campaign progress, and all of them must finish with
// deterministic results (same spec => same fingerprint). This is the
// acceptance stress test of the service layer.
func TestServiceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 120 measurement campaigns")
	}
	pool := fabric.NewPool(fabric.Config{Executors: 4, MaxSessions: 8, SessionLeases: 2})
	t.Cleanup(pool.Close)
	svc, err := pwcetd.New(pwcetd.Config{Pool: pool})
	if err != nil {
		t.Fatalf("pwcetd.New: %v", err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	c := mbpta.NewServiceClient(ts.URL, ts.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	const campaigns = 120
	kinds := []string{"crc32", "isort", "vecnorm"}
	ids := make([]string, campaigns)
	var wg sync.WaitGroup
	errs := make(chan error, campaigns)
	for i := 0; i < campaigns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := mbpta.CampaignSpec{
				Workload:    mbpta.WorkloadSpec{Kind: kinds[i%len(kinds)]},
				Runs:        40,
				Batch:       20,
				BaseSeed:    uint64(1 + i%len(kinds)), // same kind+seed => same fingerprint
				MeasureOnly: true,
			}
			id, err := c.Submit(ctx, spec)
			if err != nil {
				errs <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// While the flood drains, the pool must stay inside its admission
	// bound (backpressure) — observed via the service's pool endpoint.
	stats, err := c.PoolStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Admitted > 8 {
		t.Errorf("admission bound violated: %d campaigns admitted, MaxSessions 8", stats.Admitted)
	}

	fps := make(map[string]string) // kind -> fingerprint
	for i, id := range ids {
		st, err := c.Wait(ctx, id, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != "done" {
			t.Fatalf("campaign %s: state %q (error %q)", id, st.State, st.Error)
		}
		if st.RunsDone != 40 {
			t.Errorf("campaign %s: %d runs done, want 40", id, st.RunsDone)
		}
		kind := kinds[i%len(kinds)]
		if prev, ok := fps[kind]; ok {
			if st.Fingerprint != prev {
				t.Errorf("campaign %s (%s): fingerprint diverged under load:\n  %s\n  %s",
					id, kind, st.Fingerprint, prev)
			}
		} else {
			fps[kind] = st.Fingerprint
		}
	}

	// Per-campaign telemetry is scrapeable: the Prometheus exposition
	// carries service counters and a labelled section per campaign.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, fmt.Sprintf("campaigns_done_total %d", campaigns)) {
		t.Errorf("/metrics missing campaigns_done_total %d:\n%.600s", campaigns, body)
	}
	if !strings.Contains(body, `campaign_runs_done{campaign="`+ids[0]+`"} 40`) {
		t.Errorf("/metrics missing per-campaign sample for %s", ids[0])
	}
	if !strings.Contains(body, "pool_sessions") {
		t.Error("/metrics missing pool gauges")
	}
}

func TestServiceAPIErrors(t *testing.T) {
	c := startService(t, fabric.Config{Executors: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Unknown workload kind and unknown platform are submit-time errors.
	if _, err := c.Submit(ctx, mbpta.CampaignSpec{
		Workload: mbpta.WorkloadSpec{Kind: "no-such-kernel"},
	}); err == nil || !strings.Contains(err.Error(), "unknown workload kind") {
		t.Errorf("unknown kind: %v", err)
	}
	if _, err := c.Submit(ctx, mbpta.CampaignSpec{
		Platform: "SPARC", Workload: mbpta.WorkloadSpec{Kind: "crc32"},
	}); err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Errorf("unknown platform: %v", err)
	}

	// Unknown campaign IDs 404 on every read endpoint.
	if _, err := c.Status(ctx, "c999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("status of unknown ID: %v", err)
	}
	if _, err := c.Report(ctx, "c999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("report of unknown ID: %v", err)
	}

	// A real campaign rejects malformed quantiles and pre-completion
	// report reads with the documented statuses.
	id, err := c.Submit(ctx, mbpta.CampaignSpec{
		Workload: mbpta.WorkloadSpec{Kind: "crc32"}, Runs: 20, Batch: 10, MeasureOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWCET(ctx, id, 0); err == nil || !strings.Contains(err.Error(), "exceedance probability") {
		t.Errorf("q=0: %v", err)
	}
	st, err := c.Wait(ctx, id, 20*time.Millisecond)
	if err != nil || st.State != "done" {
		t.Fatalf("small campaign: %v, state %v", err, st.State)
	}
	// Measure-only campaigns have no analysis to query.
	if _, err := c.PWCET(ctx, id, 1e-9); err == nil || !strings.Contains(err.Error(), "no analysis") {
		t.Errorf("pwcet on measure-only campaign: %v", err)
	}
}

// TestServiceFaultCampaign submits a mitigated fault campaign: it must
// execute locally (the injection layer is not pool-schedulable), report
// the outcome tallies, and match the fingerprint of the same campaign
// run in-process.
func TestServiceFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs measurement campaigns")
	}
	c := startService(t, fabric.Config{Executors: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	spec := mbpta.CampaignSpec{
		Workload:    mbpta.WorkloadSpec{Kind: "crc32", Params: params(t, map[string]any{"Bytes": 512, "Seed": 7})},
		Runs:        120,
		BaseSeed:    42,
		MeasureOnly: true,
		FaultRate:   0.5,
		Mitigation:  "ecc",
		Hazard:      "weibull",
	}
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("state %q (error %q)", st.State, st.Error)
	}
	rep, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FaultClean == 0 {
		t.Error("fault campaign reports zero clean runs")
	}
	if rep.FaultClean+sumOutcomes(rep.FaultQuarantined) != 120 {
		t.Errorf("outcome tallies do not add up: clean %d + quarantined %v != 120",
			rep.FaultClean, rep.FaultQuarantined)
	}
	if sumOutcomes(rep.FaultMitigated) == 0 {
		t.Error("ECC at rate 0.5 over 120 runs corrected nothing")
	}

	// Bit-identity with the same campaign run directly in-process.
	w, err := fabric.BuiltinRegistry().Build(spec.Workload)
	if err != nil {
		t.Fatal(err)
	}
	local, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), w,
		mbpta.WithRuns(120), mbpta.WithBaseSeed(42), mbpta.MeasureOnly(),
		mbpta.WithFaultInjection(mbpta.FaultConfig{
			Rate:       0.5,
			Mitigation: mbpta.Mitigation{Kind: mbpta.MitigationECC},
			Hazard:     mbpta.Hazard{Kind: mbpta.HazardWeibull},
		}))
	if err != nil {
		t.Fatal(err)
	}
	if fp := local.Fingerprint(); fp != st.Fingerprint {
		t.Errorf("service fingerprint %q != local %q", st.Fingerprint, fp)
	}
}

func sumOutcomes(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func TestServiceFaultSpecValidation(t *testing.T) {
	c := startService(t, fabric.Config{Executors: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w := mbpta.WorkloadSpec{Kind: "crc32", Params: params(t, map[string]any{"Bytes": 64, "Seed": 1})}
	for _, spec := range []mbpta.CampaignSpec{
		{Workload: w, FaultRate: -1},
		{Workload: w, Mitigation: "ecc"},               // mitigation without a rate
		{Workload: w, Hazard: "orbit"},                 // hazard without a rate
		{Workload: w, FaultRate: 1, Mitigation: "x"},   // unknown scheme
		{Workload: w, FaultRate: 1, Hazard: "sunspot"}, // unknown profile
	} {
		if _, err := c.Submit(ctx, spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
}
