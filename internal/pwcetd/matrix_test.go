package pwcetd_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/matrix"
	"repro/internal/pwcetd"
)

// startMatrixService spins up a service with a matrix cache directory.
func startMatrixService(t *testing.T) *httptest.Server {
	t.Helper()
	pool := fabric.NewPool(fabric.Config{Executors: 2})
	t.Cleanup(pool.Close)
	svc, err := pwcetd.New(pwcetd.Config{
		Pool:           pool,
		MatrixCacheDir: filepath.Join(t.TempDir(), "cache"),
	})
	if err != nil {
		t.Fatalf("pwcetd.New: %v", err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func submitMatrix(t *testing.T, ts *httptest.Server, spec matrix.Spec) string {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := ts.Client().Post(ts.URL+"/api/v1/matrix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return out["id"]
}

func waitMatrix(t *testing.T, ts *httptest.Server, id string) pwcetd.MatrixStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := ts.Client().Get(ts.URL + "/api/v1/matrix/" + id)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		var st pwcetd.MatrixStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("matrix %s still running after deadline", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestMatrixAPI submits the same small matrix twice: the first pass
// simulates everything, the second (analysis-only tweak) replays from
// the shared cache with zero re-simulated runs and identical
// fingerprints.
func TestMatrixAPI(t *testing.T) {
	ts := startMatrixService(t)
	spec := matrix.Spec{
		Name:      "api-test",
		Platforms: []string{"RAND"},
		Workloads: []fabric.WorkloadSpec{{Kind: "crc32", Params: json.RawMessage(`{"Bytes":256,"Seed":1}`)}},
		Runs:      100,
		Batch:     25,
		BaseSeed:  7,
		Analysis:  matrix.AnalysisSpec{BlockSize: 10},
	}

	id1 := submitMatrix(t, ts, spec)
	st1 := waitMatrix(t, ts, id1)
	if st1.State != "done" {
		t.Fatalf("first matrix %s: %+v", id1, st1)
	}
	if st1.SimulatedRuns != 100 || st1.CachedRuns != 0 {
		t.Fatalf("first pass: %d simulated, %d cached; want 100, 0", st1.SimulatedRuns, st1.CachedRuns)
	}

	spec.Analysis.Quantiles = []float64{1e-6}
	id2 := submitMatrix(t, ts, spec)
	st2 := waitMatrix(t, ts, id2)
	if st2.State != "done" {
		t.Fatalf("second matrix %s: %+v", id2, st2)
	}
	if st2.SimulatedRuns != 0 || st2.CachedRuns != 100 {
		t.Fatalf("second pass: %d simulated, %d cached; want 0, 100", st2.SimulatedRuns, st2.CachedRuns)
	}

	var reps [2]matrix.Report
	for i, id := range []string{id1, id2} {
		resp, err := ts.Client().Get(fmt.Sprintf("%s/api/v1/matrix/%s/report", ts.URL, id))
		if err != nil {
			t.Fatalf("report %s: %v", id, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %s status %d", id, resp.StatusCode)
		}
		err = json.NewDecoder(resp.Body).Decode(&reps[i])
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode report %s: %v", id, err)
		}
	}
	for i := range reps[0].Cells {
		if reps[0].Cells[i].Fingerprint != reps[1].Cells[i].Fingerprint {
			t.Errorf("cell %s: cached replay fingerprint differs from fresh run",
				reps[0].Cells[i].Label)
		}
	}

	// The listing shows both, in submission order.
	resp, err := ts.Client().Get(ts.URL + "/api/v1/matrix")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	defer resp.Body.Close()
	var list []pwcetd.MatrixStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list) != 2 || list[0].ID != id1 || list[1].ID != id2 {
		t.Fatalf("listing = %+v", list)
	}
}

// TestMatrixAPIRejectsBadSpec: an unexpandable spec fails at submit
// time with 400, not asynchronously.
func TestMatrixAPIRejectsBadSpec(t *testing.T) {
	ts := startMatrixService(t)
	resp, err := ts.Client().Post(ts.URL+"/api/v1/matrix", "application/json",
		bytes.NewReader([]byte(`{"platforms":["XYZ"],"workloads":[{"kind":"crc32"}]}`)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec accepted with status %d", resp.StatusCode)
	}
}
