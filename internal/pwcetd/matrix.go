package pwcetd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/matrix"
)

// matrixJob is one submitted scenario matrix's lifecycle record.
type matrixJob struct {
	id   string
	spec matrix.Spec
	done chan struct{}

	mu            sync.Mutex
	state         string // "running" -> "done" | "failed"
	cellsDone     int
	cellsTotal    int
	cachedRuns    int
	simulatedRuns int
	errText       string
	rep           *matrix.Report
}

// MatrixStatus is the wire status of a submitted matrix.
type MatrixStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`
	// CellsDone/CellsTotal track streamed per-cell completion.
	CellsDone  int `json:"cells_done"`
	CellsTotal int `json:"cells_total"`
	// CachedRuns/SimulatedRuns are the dedup provenance totals so far.
	CachedRuns    int    `json:"cached_runs"`
	SimulatedRuns int    `json:"simulated_runs"`
	Error         string `json:"error,omitempty"`
}

// SubmitMatrix validates spec, registers a matrix job and starts
// executing it: cells fan out over the shared fabric pool, and when the
// service was configured with a cache directory, simulation dedupes
// through the content-addressed run cache across cells and across
// submissions.
func (s *Server) SubmitMatrix(spec matrix.Spec) (string, error) {
	cells, err := matrix.Expand(spec)
	if err != nil {
		return "", err
	}

	s.mu.Lock()
	s.mseq++
	j := &matrixJob{
		id:         fmt.Sprintf("m%06d", s.mseq),
		spec:       spec,
		done:       make(chan struct{}),
		state:      "running",
		cellsTotal: len(cells),
	}
	s.matrices[j.id] = j
	s.morder = append(s.morder, j.id)
	s.mu.Unlock()

	s.metrics.Counter("matrices_submitted_total").Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.executeMatrix(j)
	}()
	return j.id, nil
}

// executeMatrix runs one matrix on the pool and records its outcome.
func (s *Server) executeMatrix(j *matrixJob) {
	runner := &matrix.Runner{
		Pool:     s.pool,
		Cache:    s.matrixCache,
		Registry: s.reg,
		Progress: func(p matrix.CellProgress) {
			if p.State == matrix.CellStart {
				return
			}
			j.mu.Lock()
			j.cellsDone++
			j.cachedRuns += p.CachedRuns
			j.simulatedRuns += p.SimulatedRuns
			j.mu.Unlock()
		},
	}
	rep, err := runner.Run(s.ctx, j.spec)

	j.mu.Lock()
	j.rep = rep
	if rep != nil {
		// The matrix completed; a per-cell error rides along in the
		// report and the status, like campaign advisories.
		j.state = "done"
		j.cachedRuns = rep.CachedRuns
		j.simulatedRuns = rep.SimulatedRuns
		if err != nil {
			j.errText = err.Error()
		}
	} else {
		j.state = "failed"
		j.errText = err.Error()
	}
	state := j.state
	j.mu.Unlock()

	if state == "done" {
		s.metrics.Counter("matrices_done_total").Inc()
	} else {
		s.metrics.Counter("matrices_failed_total").Inc()
	}
	close(j.done)
}

func (j *matrixJob) status() MatrixStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return MatrixStatus{
		ID:            j.id,
		Name:          j.spec.Name,
		State:         j.state,
		CellsDone:     j.cellsDone,
		CellsTotal:    j.cellsTotal,
		CachedRuns:    j.cachedRuns,
		SimulatedRuns: j.simulatedRuns,
		Error:         j.errText,
	}
}

func (s *Server) handleMatrixSubmit(w http.ResponseWriter, r *http.Request) {
	var spec matrix.Spec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode matrix spec: %w", err))
		return
	}
	id, err := s.SubmitMatrix(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *Server) handleMatrixList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*matrixJob, 0, len(s.morder))
	for _, id := range s.morder {
		jobs = append(jobs, s.matrices[id])
	}
	s.mu.Unlock()
	out := make([]MatrixStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookupMatrix(id string) (*matrixJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.matrices[id]
	return j, ok
}

func (s *Server) handleMatrixStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupMatrix(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown matrix %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleMatrixReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupMatrix(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown matrix %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	state, rep := j.state, j.rep
	j.mu.Unlock()
	if state != "done" || rep == nil {
		writeErr(w, http.StatusConflict, fmt.Errorf("matrix %s is %s", j.id, state))
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
