package pwcetd_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/pwcetd"
	"repro/pkg/mbpta"
)

// runGatedCampaign submits one clean campaign against a service with
// the given config and returns its report.
func runGatedCampaign(t *testing.T, cfg pwcetd.Config, spec mbpta.CampaignSpec) mbpta.ServiceReport {
	t.Helper()
	pool := fabric.NewPool(fabric.Config{Executors: 4})
	t.Cleanup(pool.Close)
	cfg.Pool = pool
	svc, err := pwcetd.New(cfg)
	if err != nil {
		t.Fatalf("pwcetd.New: %v", err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	c := mbpta.NewServiceClient(ts.URL, ts.Client())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	id, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, id, 25*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("state %q (error %q), want done", st.State, st.Error)
	}
	rep, err := c.Report(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestServiceQuantileGateReport: a spec-level opt-in surfaces the
// nine-decile verdict in the service report; without the opt-in (and
// without a service-wide policy) the fields stay absent.
func TestServiceQuantileGateReport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs measurement campaigns")
	}
	spec := mbpta.CampaignSpec{
		Workload: mbpta.WorkloadSpec{Kind: "tvca", Params: params(t, map[string]any{"Frames": 8})},
		Runs:     400,
		Batch:    100,
		BaseSeed: 42,
	}

	plain := runGatedCampaign(t, pwcetd.Config{}, spec)
	if plain.QGatePass != nil || plain.QGateLeakP != nil {
		t.Errorf("ungated report carries gate fields: pass=%v leakP=%v", plain.QGatePass, plain.QGateLeakP)
	}

	spec.QuantileGate = true
	gated := runGatedCampaign(t, pwcetd.Config{}, spec)
	if gated.QGatePass == nil || gated.QGateLeakP == nil {
		t.Fatalf("gated report misses gate fields: pass=%v leakP=%v", gated.QGatePass, gated.QGateLeakP)
	}
	if !*gated.QGatePass {
		t.Error("gate failed on a clean time-randomized campaign")
	}
	if *gated.QGateLeakP > 0.5 {
		t.Errorf("posterior leak probability %.3f on a clean campaign", *gated.QGateLeakP)
	}
}

// TestServiceQuantileGatePolicy: the service-wide -quantile-gate
// policy screens campaigns whose specs did not opt in.
func TestServiceQuantileGatePolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs measurement campaigns")
	}
	spec := mbpta.CampaignSpec{
		Workload: mbpta.WorkloadSpec{Kind: "tvca", Params: params(t, map[string]any{"Frames": 8})},
		Runs:     400,
		Batch:    100,
		BaseSeed: 42,
	}
	rep := runGatedCampaign(t, pwcetd.Config{QuantileGate: true, QuantileAlpha: 0.01}, spec)
	if rep.QGatePass == nil {
		t.Fatal("service-wide policy did not gate the campaign")
	}
	if !*rep.QGatePass {
		t.Error("gate failed on a clean time-randomized campaign")
	}
}
