// Package pwcetd is the long-lived pWCET analysis service: an HTTP
// front end over a shared campaign-fabric pool. Clients submit
// campaign specs (platform + workload + budget) and poll for status,
// the finished report and cached pWCET quantiles; many concurrent
// campaigns multiplex over the pool's executors with fair scheduling
// and bounded backpressure, and per-campaign telemetry is exposed at
// /metrics. The wire types and a client live in pkg/mbpta
// (CampaignSpec, ServiceClient); cmd/pwcetd is the daemon.
//
// API (JSON):
//
//	POST /api/v1/campaigns                 spec -> {"id": "c000001"}
//	GET  /api/v1/campaigns                 all campaign statuses
//	GET  /api/v1/campaigns/{id}            status (state, runs done, fingerprint)
//	GET  /api/v1/campaigns/{id}/report     finished report (409 while running)
//	GET  /api/v1/campaigns/{id}/pwcet?q=   pWCET at exceedance probability q
//	POST /api/v1/matrix                    matrix.Spec -> {"id": "m000001"}
//	GET  /api/v1/matrix                    all matrix statuses
//	GET  /api/v1/matrix/{id}               status (cells done, cached vs simulated runs)
//	GET  /api/v1/matrix/{id}/report        finished comparative report (409 while running)
//	GET  /api/v1/pool                      fabric pool stats
//	GET  /metrics, /metrics.json           service + per-campaign telemetry
//	GET  /healthz                          liveness
package pwcetd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"repro/internal/fabric"
	"repro/internal/matrix"
	"repro/internal/telemetry"
	"repro/pkg/mbpta"
)

// Standard exceedance-probability cutoffs reported by default (the
// paper's ladder).
var defaultCutoffs = []float64{1e-6, 1e-9, 1e-12, 1e-15}

// Config assembles a Server.
type Config struct {
	// Pool is the campaign fabric the service executes on (required;
	// the caller owns its lifecycle).
	Pool *fabric.Pool
	// Registry resolves workload specs (default BuiltinRegistry).
	Registry *fabric.Registry
	// MatrixCacheDir, when non-empty, enables the content-addressed run
	// cache for matrix submissions: cells sharing simulation-relevant
	// configuration (within one matrix or across submissions) share one
	// set of raw runs.
	MatrixCacheDir string
	// QuantileGate, when true, screens every submitted campaign with the
	// nine-decile identical-distribution gate at QuantileAlpha
	// (0 = the default 0.01) — a service-wide policy; specs can still
	// request the gate individually.
	QuantileGate  bool
	QuantileAlpha float64
}

// Server is the pWCET analysis service. Create with New, mount
// Handler, Close when done.
type Server struct {
	pool    *fabric.Pool
	reg     *fabric.Registry
	metrics *telemetry.Registry

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	seq       int
	running   int
	campaigns map[string]*campaign
	order     []string // submission order, for listings and /metrics

	matrixCache *matrix.Cache // nil when no cache dir was configured
	mseq        int
	matrices    map[string]*matrixJob
	morder      []string

	qgate      bool    // service-wide quantile-gate policy
	qgateAlpha float64 // its family-wise alpha (0 = gate default)
}

// campaign is one submitted campaign's lifecycle record.
type campaign struct {
	id       string
	spec     mbpta.CampaignSpec
	platform string
	workload string
	// mitigation/hazard are the spec's parsed fault-layer selectors
	// (zero values when the spec requested no injection).
	mitigation mbpta.Mitigation
	hazard     mbpta.Hazard
	tele       *telemetry.Registry
	done       chan struct{}

	mu          sync.Mutex
	state       string // "running" -> "done" | "failed"
	runsDone    int
	runsTotal   int
	converged   bool
	fingerprint string
	rule        string
	errText     string
	rep         *mbpta.CampaignReport
	quantiles   map[float64]float64
}

// New starts a service over cfg.Pool. The pool may be shared with
// other frontends; the service only adds sessions to it. A bad matrix
// cache directory fails the service at construction rather than every
// matrix submission.
func New(cfg Config) (*Server, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = fabric.BuiltinRegistry()
	}
	var cache *matrix.Cache
	if cfg.MatrixCacheDir != "" {
		var err error
		if cache, err = matrix.NewCache(cfg.MatrixCacheDir); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		pool:        cfg.Pool,
		reg:         reg,
		metrics:     telemetry.New(),
		ctx:         ctx,
		cancel:      cancel,
		campaigns:   make(map[string]*campaign),
		matrixCache: cache,
		matrices:    make(map[string]*matrixJob),
		qgate:       cfg.QuantileGate,
		qgateAlpha:  cfg.QuantileAlpha,
	}, nil
}

// Close cancels every running campaign and waits for their goroutines.
// The fabric pool is not closed; the caller owns it.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// Submit validates spec, registers a campaign and starts executing it
// on the fabric pool. It returns immediately with the campaign ID;
// admission backpressure (the pool's MaxSessions bound) is absorbed by
// the campaign goroutine, not the submitter.
func (s *Server) Submit(spec mbpta.CampaignSpec) (string, error) {
	if spec.Runs < 0 || spec.Batch < 0 {
		return "", fmt.Errorf("pwcetd: negative runs (%d) or batch size (%d)", spec.Runs, spec.Batch)
	}
	if spec.FaultRate < 0 {
		return "", fmt.Errorf("pwcetd: negative fault rate %g", spec.FaultRate)
	}
	if spec.FaultRate == 0 && (spec.Mitigation != "" || spec.Hazard != "") {
		return "", fmt.Errorf("pwcetd: mitigation/hazard require fault_rate > 0")
	}
	mitigation, err := mbpta.ParseMitigation(spec.Mitigation)
	if err != nil {
		return "", fmt.Errorf("pwcetd: %w", err)
	}
	hazard, err := mbpta.ParseHazard(spec.Hazard)
	if err != nil {
		return "", fmt.Errorf("pwcetd: %w", err)
	}
	cfg, err := fabric.NamedPlatform(spec.Platform)
	if err != nil {
		return "", err
	}
	w, err := s.reg.Build(spec.Workload)
	if err != nil {
		return "", err
	}
	if s.qgate && !spec.QuantileGate {
		spec.QuantileGate, spec.QuantileAlpha = true, s.qgateAlpha
	}
	runsTotal := spec.Runs
	if runsTotal == 0 {
		runsTotal = 3000 // the engine's default budget
	}

	s.mu.Lock()
	s.seq++
	c := &campaign{
		id:         fmt.Sprintf("c%06d", s.seq),
		spec:       spec,
		platform:   cfg.Name,
		workload:   w.Name(),
		mitigation: mitigation,
		hazard:     hazard,
		tele:       telemetry.New(),
		done:       make(chan struct{}),
		state:      "running",
		runsTotal:  runsTotal,
		quantiles:  make(map[float64]float64),
	}
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.running++
	s.metrics.Gauge("campaigns_running").Set(float64(s.running))
	s.mu.Unlock()

	s.metrics.Counter("campaigns_submitted_total").Inc()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.execute(c, cfg, w)
	}()
	return c.id, nil
}

// execute runs one campaign on the pool and records its outcome.
func (s *Server) execute(c *campaign, cfg mbpta.PlatformConfig, w mbpta.Workload) {
	opts := []mbpta.CampaignOption{
		mbpta.WithTelemetry(c.tele),
		mbpta.WithProgress(func(p mbpta.Progress) {
			c.mu.Lock()
			c.runsDone = p.TotalRuns
			c.mu.Unlock()
		}),
	}
	if c.spec.FaultRate > 0 {
		// The injection layer wraps the board's run loop and is not
		// pool-schedulable; fault campaigns execute on local workers.
		opts = append(opts, mbpta.WithFaultInjection(mbpta.FaultConfig{
			Rate:       c.spec.FaultRate,
			Mitigation: c.mitigation,
			Hazard:     c.hazard,
			Telemetry:  c.tele,
		}))
	} else {
		opts = append(opts, mbpta.WithExecutorPool(s.pool))
	}
	if c.spec.Runs > 0 {
		opts = append(opts, mbpta.WithRuns(c.spec.Runs))
	}
	if c.spec.Batch > 0 {
		opts = append(opts, mbpta.WithBatchSize(c.spec.Batch))
	}
	if c.spec.BaseSeed != 0 {
		opts = append(opts, mbpta.WithBaseSeed(c.spec.BaseSeed))
	}
	if c.spec.MeasureOnly {
		opts = append(opts, mbpta.MeasureOnly())
	}
	if c.spec.QuantileGate {
		opts = append(opts, mbpta.WithQuantileGate(c.spec.QuantileAlpha))
	}
	rep, err := mbpta.Campaign(s.ctx, cfg, w, opts...)

	c.mu.Lock()
	c.rep = rep
	if rep != nil {
		// Measurements exist (possibly alongside a gate rejection or a
		// not-converged verdict); the campaign is done, the error is
		// advisory.
		c.state = "done"
		c.fingerprint = rep.Fingerprint()
		c.converged = rep.Converged
		c.runsDone = rep.StopRuns
		c.rule = rep.Rule
		if err != nil {
			c.errText = err.Error()
		}
	} else {
		c.state = "failed"
		c.errText = err.Error()
	}
	state := c.state
	c.mu.Unlock()

	s.mu.Lock()
	s.running--
	s.metrics.Gauge("campaigns_running").Set(float64(s.running))
	s.mu.Unlock()
	if state == "done" {
		s.metrics.Counter("campaigns_done_total").Inc()
	} else {
		s.metrics.Counter("campaigns_failed_total").Inc()
	}
	close(c.done)
}

// status snapshots a campaign's wire status.
func (c *campaign) status() mbpta.CampaignStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return mbpta.CampaignStatus{
		ID:          c.id,
		State:       c.state,
		RunsDone:    c.runsDone,
		RunsTotal:   c.runsTotal,
		Converged:   c.converged,
		Fingerprint: c.fingerprint,
		Error:       c.errText,
	}
}

// pwcet answers a quantile query from the finished report, caching
// computed values.
func (c *campaign) pwcet(q float64) (float64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.state != "done" {
		return 0, fmt.Errorf("campaign %s is %s", c.id, c.state)
	}
	if v, ok := c.quantiles[q]; ok {
		return v, nil
	}
	if c.rep.Analysis == nil {
		return 0, fmt.Errorf("campaign %s has no analysis (measure-only or analysis failed)", c.id)
	}
	v, err := c.rep.Analysis.PWCET(q)
	if err != nil {
		return 0, err
	}
	c.quantiles[q] = v
	return v, nil
}

// report builds the finished campaign's wire report.
func (c *campaign) report() (mbpta.ServiceReport, error) {
	st := c.status()
	if st.State != "done" {
		return mbpta.ServiceReport{}, fmt.Errorf("campaign %s is %s", c.id, st.State)
	}
	c.mu.Lock()
	rep := c.rep
	c.mu.Unlock()
	out := mbpta.ServiceReport{
		CampaignStatus: st,
		Platform:       c.platform,
		Workload:       c.workload,
		Rule:           rep.Rule,
	}
	if c.spec.FaultRate > 0 {
		out.FaultClean = rep.Faults.Clean
		out.FaultQuarantined = rep.Faults.ByOutcome
		out.FaultMitigated = rep.Faults.Mitigated
		out.FaultClamped = rep.Faults.ClampedRuns
	}
	if rep.Analysis != nil {
		pass := true
		for _, p := range rep.Analysis.Paths {
			if !p.IID.Pass {
				pass = false
			}
		}
		out.GatePass = &pass
		qChecked, qpass, leakP := false, true, 0.0
		for _, p := range rep.Analysis.Paths {
			if p.QGate == nil {
				continue
			}
			qChecked = true
			qpass = qpass && p.QGate.Pass
			if p.QGate.LeakProbability > leakP {
				leakP = p.QGate.LeakProbability
			}
		}
		if qChecked {
			out.QGatePass, out.QGateLeakP = &qpass, &leakP
		}
		out.PWCET = make(map[string]float64, len(defaultCutoffs))
		for _, q := range defaultCutoffs {
			if v, err := c.pwcet(q); err == nil {
				out.PWCET[strconv.FormatFloat(q, 'e', -1, 64)] = v
			}
		}
	}
	return out, nil
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/report", s.handleReport)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/pwcet", s.handlePWCET)
	mux.HandleFunc("POST /api/v1/matrix", s.handleMatrixSubmit)
	mux.HandleFunc("GET /api/v1/matrix", s.handleMatrixList)
	mux.HandleFunc("GET /api/v1/matrix/{id}", s.handleMatrixStatus)
	mux.HandleFunc("GET /api/v1/matrix/{id}/report", s.handleMatrixReport)
	mux.HandleFunc("GET /api/v1/pool", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.pool.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.writeMetrics(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, s.metricsJSON())
	})
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec mbpta.CampaignSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decode campaign spec: %w", err))
		return
	}
	id, err := s.Submit(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	all := s.all()
	out := make([]mbpta.CampaignStatus, 0, len(all))
	for _, c := range all {
		out = append(out, c.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, c.status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	rep, err := c.report()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handlePWCET(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown campaign %q", r.PathValue("id")))
		return
	}
	q, err := strconv.ParseFloat(r.URL.Query().Get("q"), 64)
	if err != nil || q <= 0 || q >= 1 {
		writeErr(w, http.StatusBadRequest,
			fmt.Errorf("query parameter q must be an exceedance probability in (0,1), got %q", r.URL.Query().Get("q")))
		return
	}
	v, err := c.pwcet(q)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, mbpta.PWCETAnswer{ID: c.id, Q: q, Cycles: v})
}

func (s *Server) lookup(id string) (*campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// all returns the campaigns in submission order.
func (s *Server) all() []*campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*campaign, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.campaigns[id])
	}
	return out
}

// refreshPoolGauges mirrors the fabric pool snapshot into the service
// registry so scrapes see live pool pressure.
func (s *Server) refreshPoolGauges() {
	st := s.pool.Stats()
	s.metrics.Gauge("pool_executors").Set(float64(st.Executors))
	s.metrics.Gauge("pool_sessions").Set(float64(st.Sessions))
	s.metrics.Gauge("pool_queued_leases").Set(float64(st.QueuedLeases))
	s.metrics.Gauge("pool_running_leases").Set(float64(st.RunningLeases))
	s.metrics.Gauge("pool_admitted").Set(float64(st.Admitted))
}

// writeMetrics renders the service registry followed by every
// campaign's registry, each sample labelled with its campaign ID
// (Prometheus text format; campaign instruments are exported untyped).
func (s *Server) writeMetrics(w io.Writer) error {
	s.refreshPoolGauges()
	if err := s.metrics.WriteProm(w); err != nil {
		return err
	}
	for _, c := range s.all() {
		st := c.status()
		if _, err := fmt.Fprintf(w, "# campaign %s: %s %s on %s\n", st.ID, st.State, c.workload, c.platform); err != nil {
			return err
		}
		snap := c.tele.Snapshot()
		snap["campaign_runs_done"] = float64(st.RunsDone)
		snap["campaign_runs_total"] = float64(st.RunsTotal)
		names := make([]string, 0, len(snap))
		for n := range snap {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			_, err := fmt.Fprintf(w, "%s{campaign=%q} %s\n",
				telemetry.SanitizeName(n), st.ID, strconv.FormatFloat(snap[n], 'g', -1, 64))
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// metricsJSON flattens service and per-campaign instruments into one
// map (campaign instruments prefixed "<id>.").
func (s *Server) metricsJSON() map[string]float64 {
	s.refreshPoolGauges()
	out := s.metrics.Snapshot()
	for _, c := range s.all() {
		st := c.status()
		for n, v := range c.tele.Snapshot() {
			out[st.ID+"."+n] = v
		}
		out[st.ID+".campaign_runs_done"] = float64(st.RunsDone)
		out[st.ID+".campaign_runs_total"] = float64(st.RunsTotal)
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
