// Package fpu models the floating-point unit latency behaviour the
// paper controls. On the baseline (deterministic, operation-mode)
// platform, FDIV and FSQRT take a variable number of cycles depending on
// the values operated — the classic SRT-style early-termination
// behaviour of the GRFPU. Controlling that jitter with plain MBTA would
// require the user to prove their test vectors exercise the worst
// latency; instead, the MBPTA-compliant build *fixes* both operations at
// their highest latency during the analysis phase, so the analysis-time
// behaviour is jitterless and upper-bounds operation.
package fpu

import (
	"fmt"
	"math"
)

// Mode selects the latency behaviour.
type Mode string

// Operating modes. ModeAnalysis is the MBPTA-compliant setting (fixed
// worst-case latency); ModeOperation is the deployed/deterministic
// setting (operand-dependent latency).
const (
	ModeAnalysis  Mode = "analysis"
	ModeOperation Mode = "operation"
)

// Latencies gives the cycle cost of each FPU operation class. Min/Max
// bound the variable-latency operations; fixed-latency operations have
// Min == Max. Values follow the GRFPU datasheet orders of magnitude.
type Latencies struct {
	Add     int // fadd/fsub/fcmp/fmov/conversions
	Mul     int
	DivMin  int
	DivMax  int
	SqrtMin int
	SqrtMax int
}

// DefaultLatencies returns the GRFPU-like defaults used by the platform
// configurations. Add/Mul are the *effective* issue-to-use costs in the
// in-order pipeline: the GRFPU is pipelined, so independent operations
// overlap and only the dependency distance (2 cycles) is charged.
// FDIV and FSQRT are not pipelined and their full latency applies:
// FDIV 15..25, FSQRT 22..30 depending on operands.
func DefaultLatencies() Latencies {
	return Latencies{Add: 2, Mul: 2, DivMin: 15, DivMax: 25, SqrtMin: 22, SqrtMax: 30}
}

// Validate checks the latency table.
func (l Latencies) Validate() error {
	if l.Add < 1 || l.Mul < 1 {
		return fmt.Errorf("fpu: add/mul latency must be >= 1 (%+v)", l)
	}
	if l.DivMin < 1 || l.DivMax < l.DivMin {
		return fmt.Errorf("fpu: invalid div latency range [%d,%d]", l.DivMin, l.DivMax)
	}
	if l.SqrtMin < 1 || l.SqrtMax < l.SqrtMin {
		return fmt.Errorf("fpu: invalid sqrt latency range [%d,%d]", l.SqrtMin, l.SqrtMax)
	}
	return nil
}

// Stats counts analysis-mode worst-case latency substitutions — the
// mechanism that makes the MBPTA build's FDIV/FSQRT jitterless. On the
// operation-mode (DET) build both counts stay zero.
type Stats struct {
	DivWorstCase  uint64 // FDIVs charged DivMax regardless of operands
	SqrtWorstCase uint64 // FSQRTs charged SqrtMax regardless of the operand
}

// FPU is the latency model instance.
type FPU struct {
	lat   Latencies
	mode  Mode
	stats Stats
}

// New builds an FPU model.
func New(lat Latencies, mode Mode) (*FPU, error) {
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	switch mode {
	case ModeAnalysis, ModeOperation:
	default:
		return nil, fmt.Errorf("fpu: unknown mode %q", mode)
	}
	return &FPU{lat: lat, mode: mode}, nil
}

// Mode returns the configured mode.
func (f *FPU) Mode() Mode { return f.mode }

// Stats returns the substitution counters accumulated so far.
func (f *FPU) Stats() Stats { return f.stats }

// ResetStats zeroes the substitution counters.
func (f *FPU) ResetStats() { f.stats = Stats{} }

// Latencies returns the latency table.
func (f *FPU) Latencies() Latencies { return f.lat }

// AddLatency returns the (fixed) latency of add-class operations.
func (f *FPU) AddLatency() int { return f.lat.Add }

// MulLatency returns the (fixed) latency of multiplies.
func (f *FPU) MulLatency() int { return f.lat.Mul }

// DivLatency returns the cycles of an FDIV of dividend/divisor. In
// analysis mode it is the worst case regardless of operands.
func (f *FPU) DivLatency(dividend, divisor float64) int {
	if f.mode == ModeAnalysis {
		f.stats.DivWorstCase++
		return f.lat.DivMax
	}
	return scaleLatency(f.lat.DivMin, f.lat.DivMax, divOperandWork(dividend, divisor))
}

// SqrtLatency returns the cycles of an FSQRT of x. In analysis mode it
// is the worst case regardless of the operand.
func (f *FPU) SqrtLatency(x float64) int {
	if f.mode == ModeAnalysis {
		f.stats.SqrtWorstCase++
		return f.lat.SqrtMax
	}
	return scaleLatency(f.lat.SqrtMin, f.lat.SqrtMax, sqrtOperandWork(x))
}

// divOperandWork maps operand values to a work fraction in [0,1]
// mirroring SRT early termination: "easy" operands (exact powers of
// two, zero dividend, equal operands) finish at the minimum latency;
// full-precision quotients take the maximum. The model keys on the
// number of significant bits in the quotient's mantissa.
func divOperandWork(dividend, divisor float64) float64 {
	if dividend == 0 || math.IsNaN(dividend) || math.IsNaN(divisor) ||
		math.IsInf(dividend, 0) || math.IsInf(divisor, 0) || divisor == 0 {
		return 0 // special cases terminate immediately
	}
	q := dividend / divisor
	return mantissaWork(q)
}

// sqrtOperandWork is the analogue for square roots.
func sqrtOperandWork(x float64) float64 {
	if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return mantissaWork(math.Sqrt(x))
}

// mantissaWork returns the fraction of the 52 mantissa bits of v that
// are significant (position of the lowest set bit): results expressible
// in few bits terminate early.
func mantissaWork(v float64) float64 {
	bits := math.Float64bits(v)
	mant := bits & ((1 << 52) - 1)
	if mant == 0 {
		return 0 // exact power of two
	}
	// Lowest set bit position: trailing zeros of the mantissa.
	tz := 0
	for mant&1 == 0 {
		mant >>= 1
		tz++
	}
	sig := 52 - tz
	return float64(sig) / 52
}

func scaleLatency(min, max int, work float64) int {
	if work < 0 {
		work = 0
	}
	if work > 1 {
		work = 1
	}
	return min + int(math.Round(work*float64(max-min)))
}
