package fpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func newFPU(t *testing.T, mode Mode) *FPU {
	t.Helper()
	f, err := New(DefaultLatencies(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidate(t *testing.T) {
	if err := DefaultLatencies().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Latencies{
		{Add: 0, Mul: 1, DivMin: 1, DivMax: 1, SqrtMin: 1, SqrtMax: 1},
		{Add: 1, Mul: 1, DivMin: 5, DivMax: 4, SqrtMin: 1, SqrtMax: 1},
		{Add: 1, Mul: 1, DivMin: 1, DivMax: 1, SqrtMin: 9, SqrtMax: 8},
		{Add: 1, Mul: 1, DivMin: 0, DivMax: 1, SqrtMin: 1, SqrtMax: 1},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, l)
		}
	}
	if _, err := New(DefaultLatencies(), "warp"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestAnalysisModeIsFixedWorstCase(t *testing.T) {
	f := newFPU(t, ModeAnalysis)
	lat := f.Latencies()
	src := rng.NewXoroshiro128(4)
	for i := 0; i < 500; i++ {
		a := (rng.Float64(src) - 0.5) * 1e6
		b := (rng.Float64(src) - 0.5) * 1e6
		if got := f.DivLatency(a, b); got != lat.DivMax {
			t.Fatalf("analysis div latency %d != max %d for %v/%v", got, lat.DivMax, a, b)
		}
		if got := f.SqrtLatency(math.Abs(a)); got != lat.SqrtMax {
			t.Fatalf("analysis sqrt latency %d != max %d for %v", got, lat.SqrtMax, a)
		}
	}
}

func TestOperationModeIsWithinBounds(t *testing.T) {
	f := newFPU(t, ModeOperation)
	lat := f.Latencies()
	src := rng.NewXoroshiro128(9)
	for i := 0; i < 2000; i++ {
		a := (rng.Float64(src) - 0.5) * 1e6
		b := (rng.Float64(src)-0.5)*1e6 + 1e-9
		d := f.DivLatency(a, b)
		if d < lat.DivMin || d > lat.DivMax {
			t.Fatalf("div latency %d outside [%d,%d]", d, lat.DivMin, lat.DivMax)
		}
		s := f.SqrtLatency(math.Abs(a))
		if s < lat.SqrtMin || s > lat.SqrtMax {
			t.Fatalf("sqrt latency %d outside [%d,%d]", s, lat.SqrtMin, lat.SqrtMax)
		}
	}
}

func TestOperationModeEasyOperandsAreFast(t *testing.T) {
	f := newFPU(t, ModeOperation)
	lat := f.Latencies()
	// Power-of-two quotients terminate at the minimum.
	if got := f.DivLatency(8, 2); got != lat.DivMin {
		t.Errorf("8/2 latency %d, want min %d", got, lat.DivMin)
	}
	if got := f.DivLatency(0, 3); got != lat.DivMin {
		t.Errorf("0/3 latency %d, want min %d", got, lat.DivMin)
	}
	if got := f.DivLatency(1, 0); got != lat.DivMin {
		t.Errorf("1/0 (inf) latency %d, want min %d", got, lat.DivMin)
	}
	if got := f.SqrtLatency(4); got != lat.SqrtMin {
		t.Errorf("sqrt(4) latency %d, want min %d", got, lat.SqrtMin)
	}
	if got := f.SqrtLatency(-1); got != lat.SqrtMin {
		t.Errorf("sqrt(-1) latency %d, want min %d", got, lat.SqrtMin)
	}
}

func TestOperationModeHardOperandsAreSlow(t *testing.T) {
	f := newFPU(t, ModeOperation)
	lat := f.Latencies()
	// 1/3 has a full-precision repeating mantissa.
	if got := f.DivLatency(1, 3); got != lat.DivMax {
		t.Errorf("1/3 latency %d, want max %d", got, lat.DivMax)
	}
	if got := f.SqrtLatency(2); got != lat.SqrtMax {
		t.Errorf("sqrt(2) latency %d, want max %d", got, lat.SqrtMax)
	}
}

func TestOperationModeActuallyJitters(t *testing.T) {
	f := newFPU(t, ModeOperation)
	src := rng.NewXoroshiro128(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		a := rng.Float64(src) * 100
		b := rng.Float64(src)*100 + 0.001
		seen[f.DivLatency(a, b)] = true
	}
	if len(seen) < 2 {
		t.Errorf("operation-mode div produced a single latency %v", seen)
	}
}

func TestAnalysisUpperBoundsOperationProperty(t *testing.T) {
	// The paper's core FPU claim: analysis-mode latency upper-bounds
	// operation-mode latency for every operand pair.
	an := newFPU(t, ModeAnalysis)
	op := newFPU(t, ModeOperation)
	f := func(a, b float64) bool {
		if op.DivLatency(a, b) > an.DivLatency(a, b) {
			return false
		}
		return op.SqrtLatency(math.Abs(a)) <= an.SqrtLatency(math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFixedLatencyAccessors(t *testing.T) {
	f := newFPU(t, ModeOperation)
	if f.AddLatency() != 2 || f.MulLatency() != 2 {
		t.Errorf("add/mul = %d/%d", f.AddLatency(), f.MulLatency())
	}
	if f.Mode() != ModeOperation {
		t.Errorf("mode = %v", f.Mode())
	}
}
