// The timing-leak oracle: measure the secret-dependent probe workload
// for both secret values on the deterministic and the time-randomized
// platform, and compare the two timing distributions per platform with
// the nine-decile quantile gate. On DET the secret selects between a
// conflict-free and a set-thrashing walk, so the distributions separate
// and the gate reports a leak with high posterior probability; on RAND
// random-modulo placement maps both walks to i.i.d. uniform sets and
// the gate finds nothing — the paper's time-randomization argument
// restated as a side-channel property.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/stats"
)

// LeakParams configures the leak oracle.
type LeakParams struct {
	// Runs per secret variant (per platform); 0 selects 400.
	Runs int
	// Seed is the probe's input seed and the campaigns' base seed.
	Seed uint64
	// Parallel campaign workers (0 = GOMAXPROCS).
	Parallel int
	// Alpha is the quantile gate's family-wise false-positive budget
	// (0 = the default 0.01).
	Alpha float64
	// Lines and Passes shape the probe walk (0 = the defaults 48 and 8).
	Lines, Passes int
}

func (p LeakParams) withDefaults() LeakParams {
	if p.Runs == 0 {
		p.Runs = 400
	}
	if p.Seed == 0 {
		p.Seed = 20170327
	}
	if p.Lines == 0 {
		p.Lines = 48
	}
	if p.Passes == 0 {
		p.Passes = 8
	}
	return p
}

// LeakProbe is the oracle's verdict for one platform: the full decile
// comparison of the two secrets' timing distributions.
type LeakProbe struct {
	Platform string
	Gate     stats.QuantileGateReport
}

// Leaks reports whether the gate distinguished the secrets.
func (p LeakProbe) Leaks() bool { return !p.Gate.Pass }

// LeakComparison pairs the DET and RAND verdicts.
type LeakComparison struct {
	Params LeakParams
	DET    LeakProbe
	RAND   LeakProbe
}

// Separated reports the expected outcome — the deterministic platform
// leaks the secret and the time-randomized one does not.
func (c *LeakComparison) Separated() bool {
	return c.DET.Leaks() && !c.RAND.Leaks()
}

// RunLeakOracle measures both secret variants on both platforms and
// compares the per-platform timing distributions with the quantile
// gate. The same base seed drives both variants, so run i of secret 0
// and run i of secret 1 differ only in the stride word.
func RunLeakOracle(ctx context.Context, p LeakParams) (*LeakComparison, error) {
	p = p.withDefaults()
	out := &LeakComparison{Params: p}
	for _, pl := range []struct {
		cfg   platform.Config
		probe *LeakProbe
	}{
		{platform.DET(), &out.DET},
		{platform.RAND(), &out.RAND},
	} {
		probe, err := runLeakProbe(ctx, pl.cfg, p)
		if err != nil {
			return nil, err
		}
		*pl.probe = probe
	}
	return out, nil
}

// runLeakProbe measures the two secrets on one platform and gates the
// resulting distributions against each other.
func runLeakProbe(ctx context.Context, cfg platform.Config, p LeakParams) (LeakProbe, error) {
	var times [2][]float64
	for secret := 0; secret <= 1; secret++ {
		w := kernels.SecretDep{Lines: p.Lines, Passes: p.Passes, Secret: secret, Seed: p.Seed}
		c, err := platform.StreamCampaign(ctx, cfg, w, platform.StreamOptions{
			MaxRuns:  p.Runs,
			Parallel: p.Parallel,
			BaseSeed: p.Seed,
		}, nil)
		if err != nil {
			return LeakProbe{}, fmt.Errorf("experiments: leak probe %s secret %d: %w", cfg.Name, secret, err)
		}
		times[secret] = c.Times()
	}
	gate, err := stats.CompareQuantiles(times[0], times[1], stats.QuantileGateOptions{Alpha: p.Alpha})
	if err != nil {
		return LeakProbe{}, fmt.Errorf("experiments: leak gate %s: %w", cfg.Name, err)
	}
	return LeakProbe{Platform: cfg.Name, Gate: gate}, nil
}
