package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/evt"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestRenderE1(t *testing.T) {
	var buf bytes.Buffer
	RenderE1(&buf, &E1Result{
		Independence: stats.TestResult{Name: "LB", PValue: 0.83, Alpha: 0.05},
		IdentDist:    stats.TestResult{Name: "KS", PValue: 0.45, Alpha: 0.05},
		Pass:         true,
	})
	out := buf.String()
	for _, want := range []string{"0.8300", "0.4500", "PASSED"} {
		if !strings.Contains(out, want) {
			t.Errorf("E1 output lacks %q:\n%s", want, out)
		}
	}
	buf.Reset()
	RenderE1(&buf, &E1Result{Pass: false})
	if !strings.Contains(buf.String(), "FAILED") {
		t.Error("failed gate not rendered")
	}

	// With a quantile-gate report the E1 table gains the verdict rows,
	// and a failing gate additionally prints its decile table.
	buf.Reset()
	passing := &stats.QuantileGateReport{Alpha: 0.01, Pass: true, LeakProbability: 0.08,
		Deciles: make([]stats.DecileResult, 9)}
	RenderE1(&buf, &E1Result{Pass: true, QGate: passing})
	out = buf.String()
	for _, want := range []string{"quantile gate", "pass - 0/9 deciles differ", "0.080"} {
		if !strings.Contains(out, want) {
			t.Errorf("gated E1 output lacks %q:\n%s", want, out)
		}
	}
	buf.Reset()
	failing := &stats.QuantileGateReport{Alpha: 0.01, Pass: false, Leaks: 3, LeakProbability: 0.99,
		Deciles: make([]stats.DecileResult, 9)}
	RenderE1(&buf, &E1Result{Pass: false, QGate: failing})
	out = buf.String()
	for _, want := range []string{"FAIL - 3/9 deciles differ", "first half vs second half", "FAILED"} {
		if !strings.Contains(out, want) {
			t.Errorf("failing gated E1 output lacks %q:\n%s", want, out)
		}
	}
}

func fabricatedAnalysis(t *testing.T) *core.Result {
	t.Helper()
	// A small genuine analysis so the curve has an Observed ECDF.
	times := evt.Gumbel{Mu: 1000, Beta: 20}.Sample(newTestSource(), 1000)
	res, err := core.NewAnalyzer(core.Options{}).Analyze(times)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRenderE2(t *testing.T) {
	res := fabricatedAnalysis(t)
	deep, err := res.PWCET(1e-16)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := res.Curve(950, deep, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := &E2Result{
		Analysis: res, Curve: curve, HWM: 1100,
		PWCET: map[float64]float64{1e-6: 1150, 1e-15: 1250},
	}
	var buf bytes.Buffer
	if err := RenderE2(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 2", "observed HWM", "pWCET @ 1e-06", "1e-15"} {
		if !strings.Contains(out, want) {
			t.Errorf("E2 output lacks %q", want)
		}
	}
}

func TestRenderE3(t *testing.T) {
	r := &E3Result{
		DETAvg: 100, RANDAvg: 101, DETHWM: 110,
		Margin20: 132, Margin50: 165,
		PWCET:         map[float64]float64{1e-6: 120, 1e-15: 140},
		RatioAtCutoff: map[float64]float64{1e-6: 1.09, 1e-15: 1.27},
	}
	var buf bytes.Buffer
	if err := RenderE3(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "DET HWM +50%", "pWCET @ 1e-06", "1.090"} {
		if !strings.Contains(out, want) {
			t.Errorf("E3 output lacks %q:\n%s", want, out)
		}
	}
}

func TestRenderE4(t *testing.T) {
	var buf bytes.Buffer
	RenderE4(&buf, &E4Result{
		DET:              stats.Summary{Mean: 100, StdDev: 1},
		RAND:             stats.Summary{Mean: 102, StdDev: 5},
		RelativeOverhead: 0.02,
	})
	if !strings.Contains(buf.String(), "+2.00%") {
		t.Errorf("E4 output:\n%s", buf.String())
	}
}

func TestRenderE5(t *testing.T) {
	var buf bytes.Buffer
	RenderE5(&buf, &E5Result{
		Trace: []core.ConvergencePoint{
			{Runs: 100, Fit: evt.Gumbel{Mu: 1, Beta: 2}},
			{Runs: 200, Fit: evt.Gumbel{Mu: 1, Beta: 2}, Distance: 1e-4, Done: true},
		},
		StopAt: 200,
	})
	out := buf.String()
	if !strings.Contains(out, "criterion satisfied") || !strings.Contains(out, "200 runs") {
		t.Errorf("E5 output:\n%s", out)
	}
	buf.Reset()
	RenderE5(&buf, &E5Result{Trace: []core.ConvergencePoint{{Runs: 100, Fit: evt.Gumbel{Mu: 1, Beta: 2}}}})
	if !strings.Contains(buf.String(), "never") {
		t.Error("non-convergence not rendered")
	}
}

func TestRenderE6(t *testing.T) {
	var buf bytes.Buffer
	RenderE6(&buf, &E6Result{
		DivAnalysis: 25, DivOpMin: 15, DivOpMax: 25,
		SqrtAnalysis: 30, SqrtOpMin: 22, SqrtOpMax: 30,
		UpperBoundsHold: true, Samples: 100,
	})
	out := buf.String()
	if !strings.Contains(out, "15..25") || !strings.Contains(out, "holds") {
		t.Errorf("E6 output:\n%s", out)
	}
	buf.Reset()
	RenderE6(&buf, &E6Result{DivAnalysis: 1, DivOpMax: 2, SqrtAnalysis: 1, UpperBoundsHold: false})
	if !strings.Contains(buf.String(), "VIOLATED") {
		t.Error("violation not rendered")
	}
}

func TestRenderE7(t *testing.T) {
	var buf bytes.Buffer
	err := RenderE7(&buf, &E7Result{
		DETByLayout:   []float64{100, 110, 105},
		DETSpread:     0.10,
		RANDQuantile:  115,
		CoverFraction: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "10.00%") || !strings.Contains(out, "100%") {
		t.Errorf("E7 output:\n%s", out)
	}
}

func TestRenderE8(t *testing.T) {
	var buf bytes.Buffer
	err := RenderE8(&buf, &E8Result{
		MeanByCoRunners:     []float64{100, 105, 112},
		SlowdownByCoRunners: []float64{1, 1.05, 1.12},
		PWCET1e12:           []float64{140, 150, 160},
		IIDPass:             true,
		Runs:                300,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1.120x") || !strings.Contains(out, "passes") {
		t.Errorf("E8 output:\n%s", out)
	}
}

// newTestSource gives the render tests a fixed randomness source.
func newTestSource() *rng.Xoroshiro128 { return rng.NewXoroshiro128(1234) }

func TestCSVExports(t *testing.T) {
	res := fabricatedAnalysis(t)
	deep, _ := res.PWCET(1e-16)
	curve, err := res.Curve(950, deep, 20)
	if err != nil {
		t.Fatal(err)
	}
	e2 := &E2Result{Analysis: res, Curve: curve, HWM: 1100,
		PWCET: map[float64]float64{1e-6: 1150}}
	e3 := &E3Result{DETAvg: 1, RANDAvg: 2, DETHWM: 3, Margin20: 4, Margin50: 5,
		PWCET: map[float64]float64{1e-6: 6}, RatioAtCutoff: map[float64]float64{1e-6: 2}}
	e5 := &E5Result{Trace: []core.ConvergencePoint{{Runs: 100, Fit: evt.Gumbel{Mu: 1, Beta: 2}}}}
	e7 := &E7Result{DETByLayout: []float64{10, 11}, RANDQuantile: 12}

	var buf bytes.Buffer
	if err := ExportE2CSV(&buf, e2); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "cycles,projected_exceedance,observed_exceedance\n") {
		t.Errorf("e2 csv header: %q", buf.String()[:60])
	}
	buf.Reset()
	if err := ExportE3CSV(&buf, e3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "det_hwm_plus50,5") || !strings.Contains(buf.String(), "pwcet_1e-06,6") {
		t.Errorf("e3 csv:\n%s", buf.String())
	}
	buf.Reset()
	if err := ExportE5CSV(&buf, e5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "100,1,2,0") {
		t.Errorf("e5 csv:\n%s", buf.String())
	}
	buf.Reset()
	if err := ExportE7CSV(&buf, e7); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "rand_pwcet_1e-3,12") {
		t.Errorf("e7 csv:\n%s", buf.String())
	}

	dir := t.TempDir()
	files, err := WriteAllCSV(dir, e2, e3, e5, e7)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Errorf("files written: %v", files)
	}
	// Nil results are skipped.
	files, err = WriteAllCSV(dir, nil, e3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0] != "fig3_comparison.csv" {
		t.Errorf("selective export: %v", files)
	}
}

func TestRenderDistributions(t *testing.T) {
	e := testEnv(t)
	var buf bytes.Buffer
	if err := RenderDistributions(&buf, e, 8); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "DET execution-time distribution") ||
		!strings.Contains(out, "RAND execution-time distribution") {
		t.Errorf("distributions output:\n%s", out)
	}
}
