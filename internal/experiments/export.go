package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/report"
)

// CSV exporters: the figures as plain data series, for regeneration
// with external plotting tools (gnuplot/matplotlib). Each function
// writes one file's content to w.

// ExportE2CSV writes the Figure-2 curve: time, projected exceedance,
// observed exceedance.
func ExportE2CSV(w io.Writer, r *E2Result) error {
	t := make([]float64, len(r.Curve))
	proj := make([]float64, len(r.Curve))
	obs := make([]float64, len(r.Curve))
	for i, pt := range r.Curve {
		t[i], proj[i], obs[i] = pt.Time, pt.Projected, pt.Observed
	}
	return report.CSV(w, []string{"cycles", "projected_exceedance", "observed_exceedance"}, t, proj, obs)
}

// ExportE3CSV writes the Figure-3 bars: label, cycles.
func ExportE3CSV(w io.Writer, r *E3Result) error {
	fmt.Fprintln(w, "bar,cycles")
	rows := []struct {
		label string
		v     float64
	}{
		{"det_avg", r.DETAvg},
		{"rand_avg", r.RANDAvg},
		{"det_hwm", r.DETHWM},
		{"det_hwm_plus20", r.Margin20},
		{"det_hwm_plus50", r.Margin50},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%s,%g\n", row.label, row.v)
	}
	for _, q := range cutoffsOf(r.PWCET) {
		fmt.Fprintf(w, "pwcet_%.0e,%g\n", q, r.PWCET[q])
	}
	return nil
}

// ExportE5CSV writes the convergence trace: runs, mu, beta, distance.
func ExportE5CSV(w io.Writer, r *E5Result) error {
	runs := make([]float64, len(r.Trace))
	mu := make([]float64, len(r.Trace))
	beta := make([]float64, len(r.Trace))
	dist := make([]float64, len(r.Trace))
	for i, pt := range r.Trace {
		runs[i] = float64(pt.Runs)
		mu[i] = pt.Fit.Mu
		beta[i] = pt.Fit.Beta
		dist[i] = pt.Distance
	}
	return report.CSV(w, []string{"runs", "gumbel_mu", "gumbel_beta", "crps_distance"},
		runs, mu, beta, dist)
}

// ExportE7CSV writes the layout ablation: layout index, DET cycles,
// plus the RAND bound as the final row.
func ExportE7CSV(w io.Writer, r *E7Result) error {
	fmt.Fprintln(w, "layout,cycles")
	for i, v := range r.DETByLayout {
		fmt.Fprintf(w, "%d,%g\n", i, v)
	}
	fmt.Fprintf(w, "rand_pwcet_1e-3,%g\n", r.RANDQuantile)
	return nil
}

// WriteAllCSV exports every figure's data into dir (created if needed).
// Experiments whose results are nil are skipped; the returned list
// names the files written.
func WriteAllCSV(dir string, e2 *E2Result, e3 *E3Result, e5 *E5Result, e7 *E7Result) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	save := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		written = append(written, name)
		return nil
	}
	if e2 != nil {
		if err := save("fig2_pwcet_curve.csv", func(w io.Writer) error { return ExportE2CSV(w, e2) }); err != nil {
			return written, err
		}
	}
	if e3 != nil {
		if err := save("fig3_comparison.csv", func(w io.Writer) error { return ExportE3CSV(w, e3) }); err != nil {
			return written, err
		}
	}
	if e5 != nil {
		if err := save("convergence.csv", func(w io.Writer) error { return ExportE5CSV(w, e5) }); err != nil {
			return written, err
		}
	}
	if e7 != nil {
		if err := save("layout_ablation.csv", func(w io.Writer) error { return ExportE7CSV(w, e7) }); err != nil {
			return written, err
		}
	}
	sort.Strings(written)
	return written, nil
}
