// Package experiments regenerates every table and figure of the
// paper's evaluation (DESIGN.md experiment index E1..E7). Each
// experiment is a function over a shared Env that lazily runs and
// caches the measurement campaigns, so invoking several experiments
// reuses the same 3,000-run campaigns exactly as the paper does.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fpu"
	"repro/internal/mbta"
	"repro/internal/platform"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/tvca"
	"repro/internal/wal"
)

// Params configures a full evaluation run.
type Params struct {
	// Runs per campaign; the paper uses 3,000.
	Runs int
	// Seed is the base seed for the per-run seed derivation.
	Seed uint64
	// Parallel campaign workers (0 = GOMAXPROCS).
	Parallel int
	// TVCA is the workload configuration.
	TVCA tvca.Config
	// Analyzer options (zero value = paper defaults).
	Analysis core.Options
	// Converge switches the RAND campaign to the streaming engine with
	// a pWCET-delta stop rule: Runs becomes the budget and the campaign
	// stops as soon as pWCET(1e-12) is stable, instead of always paying
	// the fixed protocol size. The DET campaign stays fixed-size (it is
	// a baseline, not an MBPTA input).
	Converge bool
	// ConvergeTol is the relative pWCET-delta tolerance of the stop
	// rule (0 = default 0.01).
	ConvergeTol float64
	// FaultRate, when positive, attaches the deterministic SEU injector
	// to the RAND campaign at that expected-upsets-per-run rate: faulted
	// runs are classified (masked / timing-perturbed / wrong-output /
	// hung) and quarantined, so every experiment's analysis sees clean
	// measurements only. The DET campaign stays fault-free — it is the
	// industrial baseline, not an MBPTA input. FaultSummary reports the
	// outcome tally after the campaign has run.
	FaultRate float64
	// Mitigation layers a fault-mitigation scheme (scrub, ECC,
	// lockstep) over the injector when FaultRate is positive: recovered
	// runs stay in the analyzed series with their recovery overhead
	// charged as cycles. The zero value keeps plain quarantine.
	Mitigation faults.Mitigation
	// Hazard selects the time-varying upset-rate profile when FaultRate
	// is positive (zero value: constant).
	Hazard faults.Hazard
	// Telemetry, when non-nil, attaches the observability layer to the
	// RAND campaign: simulator and campaign instruments are harvested
	// at batch barriers, the i.i.d. gate publishes its p-values, and
	// the streaming analyzer (Converge mode) publishes the pWCET
	// trajectory. Nil keeps every campaign untelemetered and
	// bit-identical to earlier revisions.
	Telemetry *telemetry.Registry
	// Journal, when set, makes the RAND campaign crash-safe: every
	// completed run and a per-batch checkpoint are written to an
	// append-only checksummed WAL at this path, fsynced once per batch.
	// The empty string (default) does no durability work at all.
	Journal string
	// Resume continues the campaign journaled at Journal instead of
	// starting over: already-journaled runs are not re-executed, and the
	// completed campaign is bit-identical to an uninterrupted one. The
	// journal's identity record must match the configured campaign.
	Resume bool
}

// DefaultParams returns the paper's evaluation setup.
func DefaultParams() Params {
	return Params{
		Runs: 3000,
		Seed: 20170327, // DATE 2017 conference date
		TVCA: tvca.DefaultConfig(),
	}
}

// Env caches the shared campaigns.
type Env struct {
	P         Params
	app       *tvca.App
	rand      *platform.CampaignResult
	det       *platform.CampaignResult
	randConv  *ConvergeInfo
	randFault *faults.Summary
	// randInj is the RAND campaign's injector while one is attached —
	// the only holder of the clamped-draw tally.
	randInj *faults.Injector
}

// ConvergeInfo summarizes an early-stopped RAND campaign.
type ConvergeInfo struct {
	Converged bool
	StopRuns  int
	MaxRuns   int
	Rule      string
	Snapshots []core.Snapshot
}

// RunsSaved returns how many of the budgeted runs the stop rule
// avoided.
func (ci *ConvergeInfo) RunsSaved() int { return ci.MaxRuns - ci.StopRuns }

// NewEnv validates params and builds the workload.
func NewEnv(p Params) (*Env, error) {
	if p.Runs < 500 {
		return nil, fmt.Errorf("experiments: %d runs too few for the MBPTA protocol (need >= 500)", p.Runs)
	}
	app, err := tvca.New(p.TVCA)
	if err != nil {
		return nil, err
	}
	return &Env{P: p, app: app}, nil
}

// App returns the workload.
func (e *Env) App() *tvca.App { return e.app }

// RAND returns the (cached) campaign on the time-randomized platform.
// With Params.Converge it streams batches through the online analyzer
// and stops at pWCET-delta convergence; RANDConvergence then reports
// where it stopped.
func (e *Env) RAND() (*platform.CampaignResult, error) {
	if e.rand == nil {
		if e.P.Converge {
			return e.randConverged()
		}
		so, err := e.randStreamOptions()
		if err != nil {
			return nil, err
		}
		// One barrier at the end, as in earlier revisions — except when
		// journaling, where the engine default granularity (250) bounds
		// the re-execution window after a crash.
		so.BatchSize = e.P.Runs
		if e.P.Journal != "" {
			so.BatchSize = 0
			cleanup, err := e.wireJournal(&so, nil, nil, nil)
			if err != nil {
				return nil, err
			}
			defer cleanup()
		}
		c, err := platform.StreamCampaign(context.Background(), platform.RAND(), e.app, so, nil)
		if err != nil {
			return nil, err
		}
		e.setRAND(c)
	}
	return e.rand, nil
}

// wireJournal attaches the WAL durability layer to so: Create for a
// fresh campaign, recover-and-resume under Params.Resume. state
// provides the per-barrier checkpoint payload (nil journals runs
// without analyzer state); onResume runs after recovery with the plan
// and the mutable resume state (to restore analyzer state); publish
// re-emits the analysis event of one replayed batch (nil when the
// campaign has no online analyzer). The returned func closes the
// journal.
func (e *Env) wireJournal(so *platform.StreamOptions, state func() ([]byte, error), onResume func(*wal.ResumePlan, *platform.ResumeState) error, publish func(batch int)) (func() error, error) {
	// Normalize the batch size the same way the engine will, so the
	// journaled identity record holds the effective value.
	if so.BatchSize <= 0 {
		so.BatchSize = 250
	}
	if so.BatchSize > so.MaxRuns {
		so.BatchSize = so.MaxRuns
	}
	meta := wal.Meta{
		Platform:  platform.RAND().Name,
		Workload:  e.app.Name(),
		BaseSeed:  so.BaseSeed,
		MaxRuns:   so.MaxRuns,
		BatchSize: so.BatchSize,
	}
	if !e.P.Resume {
		jw, err := wal.Create(e.P.Journal, meta, e.P.Telemetry)
		if err != nil {
			return nil, err
		}
		j := wal.NewCampaignJournal(jw, state)
		so.Journal = j
		return j.Close, nil
	}
	plan, err := wal.PrepareResume(e.P.Journal, e.P.Telemetry)
	if err != nil {
		return nil, err
	}
	if err := plan.Meta.Validate(meta); err != nil {
		plan.Writer.Close()
		return nil, err
	}
	j := wal.NewCampaignJournal(plan.Writer, state)
	rs := plan.Resume
	if onResume != nil {
		if err := onResume(plan, &rs); err != nil {
			plan.Writer.Close()
			return nil, err
		}
	}
	so.Journal = j
	so.Resume = &rs
	if e.P.Telemetry != nil {
		// Re-emit the journaled batches' event stream so a resumed
		// campaign's telemetry matches an uninterrupted one.
		reg, rsCopy, batch := e.P.Telemetry, rs, so.BatchSize
		so.Replay = func() {
			for i := 0; i < rsCopy.StartBatch; i++ {
				start := i * batch
				end := start + batch
				if end > rsCopy.Delivered {
					end = rsCopy.Delivered
				}
				platform.ReplayBatch(reg, platform.Batch{Index: i, Start: start, Results: rsCopy.Prefix[start:end]})
				if publish != nil {
					publish(i)
				}
			}
		}
	}
	return j.Close, nil
}

// randStreamOptions assembles the RAND campaign's stream options,
// attaching the SEU injector when Params.FaultRate asks for it.
func (e *Env) randStreamOptions() (platform.StreamOptions, error) {
	so := platform.StreamOptions{
		MaxRuns:   e.P.Runs,
		Parallel:  e.P.Parallel,
		BaseSeed:  e.P.Seed,
		Telemetry: e.P.Telemetry,
	}
	if e.P.FaultRate > 0 {
		inj, err := faults.New(faults.Config{
			Rate:       e.P.FaultRate,
			Mitigation: e.P.Mitigation,
			Hazard:     e.P.Hazard,
			Telemetry:  e.P.Telemetry,
		})
		if err != nil {
			return so, err
		}
		e.randInj = inj
		so.Runner = inj.Runner()
	}
	return so, nil
}

// setRAND caches the campaign and its fault-outcome tally.
func (e *Env) setRAND(c *platform.CampaignResult) {
	e.rand = c
	if e.P.FaultRate > 0 {
		s := faults.Summarize(c.Results)
		if e.randInj != nil {
			s.ClampedRuns = e.randInj.ClampedRuns()
		}
		e.randFault = &s
	}
}

// FaultSummary returns the RAND campaign's run-outcome tally, or nil
// when fault injection is off (or the campaign has not run yet).
func (e *Env) FaultSummary() *faults.Summary { return e.randFault }

// randConverged collects the RAND campaign through the streaming
// engine with a pWCET(1e-12)-delta stop rule.
func (e *Env) randConverged() (*platform.CampaignResult, error) {
	rule := core.PWCETDelta(1e-12, e.P.ConvergeTol, 2)
	so, err := e.randStreamOptions()
	if err != nil {
		return nil, err
	}
	online := core.NewOnlineAnalyzer(e.P.Analysis, rule)
	if e.P.Journal != "" {
		cleanup, jerr := e.wireJournal(&so,
			func() ([]byte, error) { return online.MarshalState() },
			func(plan *wal.ResumePlan, rs *platform.ResumeState) error {
				if plan.State == nil {
					return nil
				}
				restored, rerr := core.RestoreOnlineAnalyzer(e.P.Analysis, rule, plan.State)
				if rerr != nil {
					return fmt.Errorf("experiments: restore analyzer state from %s: %w", e.P.Journal, rerr)
				}
				online = restored
				rs.Stopped = online.Done()
				return nil
			},
			func(batch int) { online.PublishSnapshot(batch) })
		if jerr != nil {
			return nil, jerr
		}
		defer cleanup()
	}
	online.SetTelemetry(e.P.Telemetry)
	sink := func(b platform.Batch) (bool, error) {
		obs := make([]core.Observation, len(b.Results))
		for i, r := range b.Results {
			obs[i] = core.Observation{
				Cycles:    float64(r.Cycles),
				Path:      r.Path,
				Outcome:   r.Outcome,
				Mitigated: platform.MitigatedOutcome(r.Outcome),
			}
		}
		snap, err := online.ObserveBatch(obs)
		if err != nil {
			return false, err
		}
		return snap.Done, nil
	}
	c, err := platform.StreamCampaign(context.Background(), platform.RAND(), e.app, so, sink)
	if err != nil {
		return nil, err
	}
	e.setRAND(c)
	e.randConv = &ConvergeInfo{
		Converged: online.Done(),
		StopRuns:  len(c.Results),
		MaxRuns:   e.P.Runs,
		Rule:      rule.Name(),
		Snapshots: online.Snapshots(),
	}
	return e.rand, nil
}

// RANDConvergence returns the early-stopping summary of the RAND
// campaign, or nil when Params.Converge is off (or the campaign has
// not run yet).
func (e *Env) RANDConvergence() *ConvergeInfo { return e.randConv }

// DET returns the (cached) campaign on the deterministic platform.
func (e *Env) DET() (*platform.CampaignResult, error) {
	if e.det == nil {
		c, err := platform.StreamCampaign(context.Background(), platform.DET(), e.app,
			platform.StreamOptions{
				MaxRuns: e.P.Runs, BatchSize: e.P.Runs,
				BaseSeed: e.P.Seed + 1, Parallel: e.P.Parallel,
			}, nil)
		if err != nil {
			return nil, err
		}
		e.det = c
	}
	return e.det, nil
}

// analyze runs the MBPTA pipeline on the RAND campaign (per-path).
func (e *Env) analyze() (*core.Result, error) {
	c, err := e.RAND()
	if err != nil {
		return nil, err
	}
	return core.NewAnalyzer(e.P.Analysis).AnalyzeByPath(c.TimesByPath())
}

// E1Result is the i.i.d. table of §III ("Fulfilling the i.i.d.
// properties"): the paper reports p-values 0.83 (Ljung-Box) and 0.45
// (KS) for TVCA on the randomized platform.
type E1Result struct {
	Independence stats.TestResult
	IdentDist    stats.TestResult
	// QGate is the nine-decile split-half gate on the full series,
	// present only when the campaign opted in (Analysis.QuantileGate);
	// its verdict is folded into Pass.
	QGate *stats.QuantileGateReport
	Pass  bool
}

// E1IID runs the i.i.d. gate on the RAND campaign's full series. With
// Analysis.QuantileGate the nine-decile gate runs alongside and both
// must pass.
func E1IID(e *Env) (*E1Result, error) {
	c, err := e.RAND()
	if err != nil {
		return nil, err
	}
	rep, err := stats.CheckIID(c.Times(), 0.05)
	if err != nil {
		return nil, err
	}
	r := &E1Result{Independence: rep.Independence, IdentDist: rep.IdentDist, Pass: rep.Pass}
	if e.P.Analysis.QuantileGate {
		switch qg, err := stats.CheckQuantileGate(c.Times(), stats.QuantileGateOptions{Alpha: e.P.Analysis.QuantileGateAlpha}); {
		case errors.Is(err, stats.ErrTooFew):
			// Below the gate's sample floor: record nothing.
		case err != nil:
			return nil, fmt.Errorf("quantile gate: %w", err)
		default:
			r.QGate = &qg
			r.Pass = r.Pass && qg.Pass
		}
	}
	pass := 0.0
	if r.Pass {
		pass = 1
	}
	e.P.Telemetry.Gauge("analysis_gate_ljungbox_p").Set(rep.Independence.PValue)
	e.P.Telemetry.Gauge("analysis_gate_ks_p").Set(rep.IdentDist.PValue)
	e.P.Telemetry.Gauge("analysis_gate_pass").Set(pass)
	return r, nil
}

// E2Result is the pWCET curve of Figure 2: observed exceedance tail
// plus the projected (fitted) curve down to deep probabilities.
type E2Result struct {
	Analysis *core.Result
	Curve    []core.CurvePoint
	HWM      float64
	// Bounds at the probabilities the figure's Y axis spans.
	PWCET map[float64]float64
}

// E2PWCETCurve analyzes the RAND campaign and samples the curve.
func E2PWCETCurve(e *Env) (*E2Result, error) {
	res, err := e.analyze()
	if err != nil {
		return nil, err
	}
	c, _ := e.RAND()
	hwm, err := stats.Max(c.Times())
	if err != nil {
		return nil, err
	}
	deep, err := res.PWCET(1e-16)
	if err != nil {
		return nil, err
	}
	lo, _ := stats.Quantile(c.Times(), 0.01)
	curve, err := res.Curve(lo, deep, 200)
	if err != nil {
		return nil, err
	}
	out := &E2Result{Analysis: res, Curve: curve, HWM: hwm, PWCET: map[float64]float64{}}
	for _, q := range []float64{1e-3, 1e-6, 1e-9, 1e-12, 1e-15} {
		v, err := res.PWCET(q)
		if err != nil {
			return nil, err
		}
		out.PWCET[q] = v
	}
	return out, nil
}

// E3Result is Figure 3: MBPTA pWCET estimates next to the
// deterministic-platform observations and the industrial
// HWM-plus-margin practice.
type E3Result struct {
	DETAvg, RANDAvg float64
	DETHWM          float64
	Margin20        float64 // DET HWM * 1.2
	Margin50        float64 // DET HWM * 1.5
	PWCET           map[float64]float64
	// RatioAtCutoff = pWCET(cutoff)/DETHWM, the paper's "starting with
	// an increase of 50% for a cutoff probability of 1e-6".
	RatioAtCutoff map[float64]float64
}

// E3Comparison runs both campaigns and assembles the comparison.
func E3Comparison(e *Env) (*E3Result, error) {
	det, err := e.DET()
	if err != nil {
		return nil, err
	}
	randc, err := e.RAND()
	if err != nil {
		return nil, err
	}
	base, err := mbta.Analyze(det.Times())
	if err != nil {
		return nil, err
	}
	res, err := e.analyze()
	if err != nil {
		return nil, err
	}
	randAvg, err := stats.Mean(randc.Times())
	if err != nil {
		return nil, err
	}
	out := &E3Result{
		DETAvg:        base.Mean,
		RANDAvg:       randAvg,
		DETHWM:        base.HWM,
		PWCET:         map[float64]float64{},
		RatioAtCutoff: map[float64]float64{},
	}
	if out.Margin20, err = base.WCET(0.2); err != nil {
		return nil, err
	}
	if out.Margin50, err = base.WCET(0.5); err != nil {
		return nil, err
	}
	for _, q := range []float64{1e-6, 1e-9, 1e-12, 1e-15} {
		v, err := res.PWCET(q)
		if err != nil {
			return nil, err
		}
		out.PWCET[q] = v
		out.RatioAtCutoff[q] = v / base.HWM
	}
	return out, nil
}

// E4Result is the average-performance comparison of §III: the paper
// observes "no noticeable difference" between DET and RAND means.
type E4Result struct {
	DET, RAND        stats.Summary
	RelativeOverhead float64 // (RAND.Mean - DET.Mean)/DET.Mean
}

// E4AvgPerformance compares the campaign means.
func E4AvgPerformance(e *Env) (*E4Result, error) {
	det, err := e.DET()
	if err != nil {
		return nil, err
	}
	randc, err := e.RAND()
	if err != nil {
		return nil, err
	}
	ds, err := stats.Summarize(det.Times())
	if err != nil {
		return nil, err
	}
	rs, err := stats.Summarize(randc.Times())
	if err != nil {
		return nil, err
	}
	return &E4Result{DET: ds, RAND: rs, RelativeOverhead: (rs.Mean - ds.Mean) / ds.Mean}, nil
}

// E5Result is the convergence trace behind the paper's statement that
// 3,000 runs "satisfied the convergence criteria".
type E5Result struct {
	Trace  []core.ConvergencePoint
	StopAt int // run count at which the criterion allowed stopping
}

// E5Convergence replays the incremental protocol over the RAND series.
func E5Convergence(e *Env) (*E5Result, error) {
	c, err := e.RAND()
	if err != nil {
		return nil, err
	}
	an := core.NewAnalyzer(e.P.Analysis)
	// Re-fit every 2 blocks: fine enough granularity that the stop rule
	// has several comparison points even on reduced campaigns.
	batch := 2 * an.Options().BlockSize
	trace, stopAt, err := an.ConvergenceTrace(c.Times(), batch)
	if err != nil {
		return nil, err
	}
	return &E5Result{Trace: trace, StopAt: stopAt}, nil
}

// E6Result quantifies the FPU jitter control of §II: analysis-mode
// latency is fixed at the worst case and upper-bounds every
// operation-mode latency.
type E6Result struct {
	DivAnalysis     int // constant analysis-mode FDIV latency
	DivOpMin        int
	DivOpMax        int
	SqrtAnalysis    int
	SqrtOpMin       int
	SqrtOpMax       int
	UpperBoundsHold bool
	Samples         int
}

// E6FPUJitter sweeps operand values through both FPU modes.
func E6FPUJitter(e *Env) (*E6Result, error) {
	lat := fpu.DefaultLatencies()
	analysis, err := fpu.New(lat, fpu.ModeAnalysis)
	if err != nil {
		return nil, err
	}
	operation, err := fpu.New(lat, fpu.ModeOperation)
	if err != nil {
		return nil, err
	}
	src := rng.NewXoroshiro128(e.P.Seed)
	out := &E6Result{
		DivAnalysis:     analysis.DivLatency(1, 3),
		SqrtAnalysis:    analysis.SqrtLatency(2),
		DivOpMin:        math.MaxInt32,
		SqrtOpMin:       math.MaxInt32,
		UpperBoundsHold: true,
		Samples:         10000,
	}
	for i := 0; i < out.Samples; i++ {
		a := (rng.Float64(src) - 0.5) * 1e6
		b := (rng.Float64(src)-0.5)*1e6 + 1e-9
		d := operation.DivLatency(a, b)
		s := operation.SqrtLatency(math.Abs(a))
		if d < out.DivOpMin {
			out.DivOpMin = d
		}
		if d > out.DivOpMax {
			out.DivOpMax = d
		}
		if s < out.SqrtOpMin {
			out.SqrtOpMin = s
		}
		if s > out.SqrtOpMax {
			out.SqrtOpMax = s
		}
		if d > out.DivAnalysis || s > out.SqrtAnalysis {
			out.UpperBoundsHold = false
		}
	}
	return out, nil
}

// E7Result is the memory-layout ablation behind §II's random-placement
// claim: on DET, the link-time layout determines cache placement and
// hence execution time (which classical MBTA must enumerate); on RAND,
// a single binary re-rolls its placement every run, covering layouts
// probabilistically.
type E7Result struct {
	// DETByLayout: execution time of the same program relinked at
	// different base addresses, on the deterministic platform (one run
	// each; DET is input-deterministic given the layout).
	DETByLayout []float64
	DETSpread   float64 // (max-min)/min across layouts
	// RAND pWCET at 1e-3 from a single layout's campaign, and the
	// fraction of DET layout times it upper-bounds.
	RANDQuantile  float64
	CoverFraction float64
}

// E7PlacementAblation sweeps link-time layouts on DET and checks that
// the RAND distribution from one layout covers them.
func E7PlacementAblation(e *Env, layouts int) (*E7Result, error) {
	if layouts < 2 {
		return nil, fmt.Errorf("experiments: need >= 2 layouts, got %d", layouts)
	}
	out := &E7Result{}
	// Same inputs for every layout: fix run index 0.
	for l := 0; l < layouts; l++ {
		cfg := e.P.TVCA
		cfg.CodeBase = 0x10000 + uint64(l)*0x2340  // shift text
		cfg.DataBase = 0x100000 + uint64(l)*0x4CC0 // shift data
		app, err := tvca.New(cfg)
		if err != nil {
			return nil, err
		}
		p, err := platform.New(platform.DET())
		if err != nil {
			return nil, err
		}
		r, err := p.Run(app, 0, 1)
		if err != nil {
			return nil, err
		}
		out.DETByLayout = append(out.DETByLayout, float64(r.Cycles))
	}
	mn, _ := stats.Min(out.DETByLayout)
	mx, _ := stats.Max(out.DETByLayout)
	out.DETSpread = (mx - mn) / mn
	res, err := e.analyze()
	if err != nil {
		return nil, err
	}
	if out.RANDQuantile, err = res.PWCET(1e-3); err != nil {
		return nil, err
	}
	covered := 0
	for _, v := range out.DETByLayout {
		if v <= out.RANDQuantile {
			covered++
		}
	}
	out.CoverFraction = float64(covered) / float64(layouts)
	return out, nil
}
