package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/stats"
)

// E8 extends the paper's single-application evaluation to the 4-core
// usage the reference architecture permits: TVCA is measured while
// memory-streaming co-runners execute on the other cores (full
// co-simulation, not synthetic traffic). MBPTA's promise is that the
// analysis remains applicable — the randomized platform keeps the
// contended execution times i.i.d., and the pWCET estimate simply
// shifts up to absorb the interference.

// StreamerWorkload is a pathological co-runner: an endless sweep over
// a buffer larger than the DL1, missing on every line — near-worst-case
// bus pressure.
type StreamerWorkload struct {
	Lines int32 // lines per sweep
}

// Name identifies the co-runner.
func (s StreamerWorkload) Name() string { return "mem-streamer" }

// Prepare builds the sweep kernel (identical every iteration).
func (s StreamerWorkload) Prepare(run int) (*isa.Machine, error) {
	lines := s.Lines
	if lines <= 0 {
		lines = 1024
	}
	b := isa.NewBuilder("streamer", 0x8000)
	b.Li(1, 0x400000)
	b.Li(2, 0)
	b.Li(3, lines)
	b.Label("loop")
	b.Ld(4, 1, 0)
	b.Addi(1, 1, 32)
	b.Addi(2, 2, 1)
	b.Blt(2, 3, "loop")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	return isa.NewMachine(p, isa.NewMemory()), nil
}

// PathOf reports the single path.
func (s StreamerWorkload) PathOf(*isa.Machine) string { return "" }

// Reload re-initializes a prepared machine in place
// (platform.Reloader): the kernel never writes its program or data
// memory, so resetting the registers restores the exact Prepare state.
func (s StreamerWorkload) Reload(m *isa.Machine, run int) error {
	m.Reset()
	return nil
}

// TraceStable declares the sweep's event stream run-invariant
// (platform.TraceStable): straight-line loop, no data-dependent control
// flow or FP operands, so co-simulation boards may record one iteration
// and replay it.
func (s StreamerWorkload) TraceStable() bool { return true }

// E8Result quantifies multicore contention on the RAND platform.
type E8Result struct {
	// MeanByCoRunners[k] is the mean measured execution time with k
	// streaming co-runners (k = 0..3).
	MeanByCoRunners []float64
	// SlowdownByCoRunners[k] = mean(k) / mean(0).
	SlowdownByCoRunners []float64
	// IIDPass reports whether the contended campaign (max co-runners)
	// still passes the i.i.d. gate — MBPTA stays applicable.
	IIDPass bool
	// PWCET1e12 per co-runner count (from a reduced fit), showing the
	// bound absorbing the interference.
	PWCET1e12 []float64
	Runs      int
}

// E8Contention measures TVCA under 0..maxCoRunners streaming
// co-runners, with runsPer runs per configuration (co-simulation is
// ~4x slower than single-core, so this experiment uses its own,
// smaller campaign).
func E8Contention(e *Env, maxCoRunners, runsPer int) (*E8Result, error) {
	if maxCoRunners < 1 || maxCoRunners > 3 {
		return nil, fmt.Errorf("experiments: co-runners %d outside [1,3]", maxCoRunners)
	}
	if runsPer < 300 {
		return nil, fmt.Errorf("experiments: %d runs per configuration too few (need >= 300)", runsPer)
	}
	out := &E8Result{Runs: runsPer}
	var contended []float64
	for k := 0; k <= maxCoRunners; k++ {
		co := make([]platform.Workload, k)
		for i := range co {
			co[i] = StreamerWorkload{Lines: 1024}
		}
		mcc, err := platform.NewMulticore(platform.RAND(), co)
		if err != nil {
			return nil, err
		}
		times := make([]float64, runsPer)
		for run := 0; run < runsPer; run++ {
			r, err := mcc.Run(e.App(), run, platform.DeriveRunSeed(e.P.Seed+uint64(k), run))
			if err != nil {
				return nil, err
			}
			times[run] = float64(r.Measured.Cycles)
		}
		mean, err := stats.Mean(times)
		if err != nil {
			return nil, err
		}
		out.MeanByCoRunners = append(out.MeanByCoRunners, mean)
		out.SlowdownByCoRunners = append(out.SlowdownByCoRunners, mean/out.MeanByCoRunners[0])
		fitBound, err := fitReduced(times)
		if err != nil {
			return nil, err
		}
		out.PWCET1e12 = append(out.PWCET1e12, fitBound)
		if k == maxCoRunners {
			contended = times
		}
	}
	rep, err := stats.CheckIID(contended, 0.05)
	if err != nil {
		return nil, err
	}
	out.IIDPass = rep.Pass
	return out, nil
}

// fitReduced fits a small-block Gumbel tail suited to the reduced
// per-configuration campaigns and returns pWCET(1e-12).
func fitReduced(times []float64) (float64, error) {
	res, err := core.NewAnalyzer(core.Options{BlockSize: 25}).Analyze(times)
	if err != nil {
		return 0, err
	}
	return res.PWCET(1e-12)
}

// RenderE8 prints the contention experiment.
func RenderE8(w io.Writer, r *E8Result) error {
	bars := make([]report.Bar, len(r.MeanByCoRunners))
	for k, m := range r.MeanByCoRunners {
		bars[k] = report.Bar{Label: fmt.Sprintf("%d co-runner(s) mean", k), Value: m}
	}
	if err := report.BarChart(w,
		"E8 (extension) - TVCA under co-simulated memory-streaming co-runners (cycles)",
		50, bars); err != nil {
		return err
	}
	rows := make([][2]string, 0, len(r.SlowdownByCoRunners)+1)
	for k := range r.SlowdownByCoRunners {
		rows = append(rows, [2]string{
			fmt.Sprintf("slowdown with %d co-runner(s)", k),
			fmt.Sprintf("%.3fx   pWCET(1e-12)=%.0f", r.SlowdownByCoRunners[k], r.PWCET1e12[k]),
		})
	}
	verdict := "passes (MBPTA applicable under contention)"
	if !r.IIDPass {
		verdict = "FAILS"
	}
	rows = append(rows, [2]string{"i.i.d. gate on the contended campaign", verdict})
	report.Table(w, "", rows)
	return nil
}
