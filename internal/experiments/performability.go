// E11, the performability sweep: run the TVCA workload on the
// time-randomized platform under a fixed SEU rate while sweeping the
// mitigation scheme (none, scrub, ECC, lockstep) against the hazard
// profile (constant, Weibull wear-out, orbit-phase), and report the
// pWCET bound next to the dependability outcome mix for every cell.
// Mitigation buys dependability — recovered runs stay in the analyzed
// series instead of being quarantined — and pays for it in cycles, so
// the bound and the wrong-output/hung rates move in opposite
// directions: that tradeoff, read across one table, is performability.
package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/pkg/mbpta"
)

// PerformabilityParams configures the E11 sweep.
type PerformabilityParams struct {
	// Runs per cell; 0 selects 600.
	Runs int
	// Seed is every cell's campaign base seed (0 = 20170327): all cells
	// share one fault schedule per hazard, so the mitigation axis is the
	// only thing that varies within a hazard row.
	Seed uint64
	// Parallel campaign workers (0 = the engine default).
	Parallel int
	// Rate is the expected upsets per run (Poisson mean; 0 = 0.8).
	Rate float64
	// Quantile is the exceedance probability the bound is read at
	// (0 = 1e-12).
	Quantile float64
	// Frames sizes the TVCA workload (0 = 8; must be a multiple of 4).
	Frames int
	// Mitigations and Hazards override the swept axes; nil selects the
	// full grid (the four mitigation kinds, the three hazard profiles).
	Mitigations []faults.Mitigation
	Hazards     []faults.Hazard
}

func (p PerformabilityParams) withDefaults() PerformabilityParams {
	if p.Runs == 0 {
		p.Runs = 600
	}
	if p.Seed == 0 {
		p.Seed = 20170327
	}
	if p.Rate == 0 {
		p.Rate = 0.8
	}
	if p.Quantile == 0 {
		p.Quantile = 1e-12
	}
	if p.Frames == 0 {
		p.Frames = 8
	}
	if p.Mitigations == nil {
		p.Mitigations = []faults.Mitigation{
			{},
			{Kind: faults.MitigationScrub},
			{Kind: faults.MitigationECC},
			{Kind: faults.MitigationLockstep},
		}
	}
	if p.Hazards == nil {
		p.Hazards = []faults.Hazard{
			{Kind: faults.HazardConstant},
			{Kind: faults.HazardWeibull},
			{Kind: faults.HazardOrbit},
		}
	}
	return p
}

// PerformabilityCell is one (mitigation, hazard) campaign's verdict.
type PerformabilityCell struct {
	Mitigation faults.Mitigation
	Hazard     faults.Hazard
	// Bound is pWCET(Quantile) when Fitted, else the clean-run
	// high-water mark — the same fallback the scenario matrix uses when
	// a cell has no tail fit.
	Bound  float64
	Fitted bool
	// Faults is the campaign's outcome tally: clean, mitigated (by
	// class), quarantined (by class), and the fault-cap clamp count.
	Faults faults.Summary
	// Fingerprint is the campaign report's canonical digest; the
	// unmitigated constant-hazard cell must match a plain
	// rate-only fault campaign bit for bit.
	Fingerprint string
	// Advisory records a non-fatal analysis verdict (i.i.d. gate
	// rejection, non-convergence); the cell keeps its measurement.
	Advisory string
}

// Label names the cell the way the scenario matrix would:
// mitigation@hazard.
func (c PerformabilityCell) Label() string {
	return c.Mitigation.String() + "@" + c.Hazard.String()
}

// WrongOutputRate and HungRate are the cell's residual failure rates —
// the dependability side of the performability tradeoff.
func (c PerformabilityCell) WrongOutputRate() float64 {
	return c.outcomeRate(faults.OutcomeWrongOutput)
}
func (c PerformabilityCell) HungRate() float64 { return c.outcomeRate(faults.OutcomeHung) }

func (c PerformabilityCell) outcomeRate(o string) float64 {
	if c.Faults.Total == 0 {
		return 0
	}
	return float64(c.Faults.ByOutcome[o]) / float64(c.Faults.Total)
}

// E11Result is the finished sweep, cells in hazard-major order.
type E11Result struct {
	Params PerformabilityParams
	Cells  []PerformabilityCell
}

// CellAt returns the cell for (mitigation kind, hazard kind), or nil.
// Zero-value kinds are canonicalized: "" matches "none" and "constant"
// respectively, so the default axes resolve under either spelling.
func (r *E11Result) CellAt(m faults.MitigationKind, h faults.HazardKind) *PerformabilityCell {
	canonM := func(k faults.MitigationKind) faults.MitigationKind {
		if k == "" {
			return faults.MitigationNone
		}
		return k
	}
	canonH := func(k faults.HazardKind) faults.HazardKind {
		if k == "" {
			return faults.HazardConstant
		}
		return k
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if canonM(c.Mitigation.Kind) == canonM(m) && canonH(c.Hazard.Kind) == canonH(h) {
			return c
		}
	}
	return nil
}

// RunPerformability executes the E11 sweep: one faulted RAND campaign
// per (mitigation, hazard) cell, every cell sharing the run budget,
// base seed, and upset rate. Analysis verdicts (gate rejection,
// non-convergence) are advisory — the cell falls back to its clean-run
// high-water mark — while measurement failures abort the sweep.
func RunPerformability(ctx context.Context, p PerformabilityParams) (*E11Result, error) {
	p = p.withDefaults()
	cfg := mbpta.DefaultTVCAConfig()
	cfg.Frames = p.Frames
	app, err := mbpta.NewTVCA(cfg)
	if err != nil {
		return nil, err
	}
	out := &E11Result{Params: p}
	for _, hz := range p.Hazards {
		for _, mi := range p.Mitigations {
			cell, err := runPerformabilityCell(ctx, app, p, mi, hz)
			if err != nil {
				return nil, fmt.Errorf("experiments: performability %s@%s: %w", mi, hz, err)
			}
			out.Cells = append(out.Cells, cell)
		}
	}
	return out, nil
}

func runPerformabilityCell(ctx context.Context, app mbpta.Workload, p PerformabilityParams, mi faults.Mitigation, hz faults.Hazard) (PerformabilityCell, error) {
	cell := PerformabilityCell{Mitigation: mi, Hazard: hz}
	opts := []mbpta.CampaignOption{
		mbpta.WithRuns(p.Runs),
		mbpta.WithBaseSeed(p.Seed),
		mbpta.WithFaultInjection(mbpta.FaultConfig{Rate: p.Rate, Mitigation: mi, Hazard: hz}),
	}
	if p.Parallel > 0 {
		opts = append(opts, mbpta.WithParallelism(p.Parallel))
	}
	rep, err := mbpta.Campaign(ctx, mbpta.RANDPlatform(), app, opts...)
	if err != nil {
		if rep == nil {
			return cell, err
		}
		cell.Advisory = err.Error()
	}
	cell.Fingerprint = rep.Fingerprint()
	cell.Faults = rep.Faults
	if rep.Analysis != nil {
		if b, perr := rep.Analysis.PWCET(p.Quantile); perr == nil && !math.IsNaN(b) && !math.IsInf(b, 0) {
			cell.Bound, cell.Fitted = b, true
		}
	}
	if !cell.Fitted {
		for _, r := range rep.Campaign.Results {
			if !r.Quarantined() && float64(r.Cycles) > cell.Bound {
				cell.Bound = float64(r.Cycles)
			}
		}
	}
	return cell, nil
}
