package experiments

import (
	"context"
	"strings"
	"testing"
)

// goldenLeakParams is the pinned oracle configuration of the golden
// test and `make leak-check`: defaults except the run count.
var goldenLeakParams = LeakParams{Runs: 200}

// The golden verdict: under the pinned seed the deterministic platform
// must leak the secret with near-certain posterior and the
// time-randomized platform must not, and both gate reports must stay
// bit-identical (fingerprints pinned like the campaign goldens).
func TestLeakOracleGolden(t *testing.T) {
	c, err := RunLeakOracle(context.Background(), goldenLeakParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.DET.Gate.LeakProbability; got < 0.999 {
		t.Errorf("DET leak probability %.6f < 0.999", got)
	}
	if c.DET.Gate.Pass {
		t.Error("DET gate passed — the deterministic platform must leak")
	}
	if got := c.RAND.Gate.LeakProbability; got > 0.5 {
		t.Errorf("RAND leak probability %.6f > 0.5", got)
	}
	if !c.RAND.Gate.Pass {
		t.Errorf("RAND gate failed: %s", c.RAND.Gate.String())
	}
	if !c.Separated() {
		t.Error("Separated() = false")
	}
	if got, want := c.DET.Gate.Fingerprint(), "682982f035003913110e4ac8667f3bdb"; got != want {
		t.Errorf("DET gate fingerprint %s, want %s", got, want)
	}
	if got, want := c.RAND.Gate.Fingerprint(), "69f7f408ed135d3c290316e982fb38de"; got != want {
		t.Errorf("RAND gate fingerprint %s, want %s", got, want)
	}
}

func TestRenderLeak(t *testing.T) {
	c, err := RunLeakOracle(context.Background(), goldenLeakParams)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	RenderLeak(&buf, c)
	out := buf.String()
	for _, want := range []string{
		"Timing-leak oracle",
		"DET - secret 0 vs secret 1",
		"RAND - secret 0 vs secret 1",
		"LEAK",
		"quantile gate PASS",
		"quantile gate FAIL",
		"time-randomization closes the channel",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}
