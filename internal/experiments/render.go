package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/report"
	"repro/internal/stats"
)

// cutoffsOf returns the map keys in decreasing probability order.
func cutoffsOf(m map[float64]float64) []float64 {
	out := make([]float64, 0, len(m))
	for q := range m {
		out = append(out, q)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// RenderE1 prints the i.i.d. table of §III.
func RenderE1(w io.Writer, r *E1Result) {
	verdict := "PASSED - MBPTA enabled"
	if !r.Pass {
		verdict = "FAILED - MBPTA not applicable"
	}
	rows := [][2]string{
		{"Ljung-Box (independence) p-value", fmt.Sprintf("%.4f", r.Independence.PValue)},
		{"Kolmogorov-Smirnov (ident. dist.) p-value", fmt.Sprintf("%.4f", r.IdentDist.PValue)},
		{"significance level", fmt.Sprintf("%.2f", r.Independence.Alpha)},
	}
	if g := r.QGate; g != nil {
		q := fmt.Sprintf("pass - 0/%d deciles differ", len(g.Deciles))
		if !g.Pass {
			q = fmt.Sprintf("FAIL - %d/%d deciles differ", g.Leaks, len(g.Deciles))
		}
		rows = append(rows,
			[2]string{fmt.Sprintf("quantile gate (split-half, FWER %.2g)", g.Alpha), q},
			[2]string{"quantile gate posterior P(shift)", fmt.Sprintf("%.3f", g.LeakProbability)},
		)
	}
	rows = append(rows, [2]string{"verdict", verdict})
	report.Table(w, "E1 - i.i.d. properties (paper: Ljung-Box 0.83, KS 0.45, both pass)", rows)
	if g := r.QGate; g != nil && !g.Pass {
		fmt.Fprintln(w)
		report.QuantileGateTable(w, "quantile gate - first half vs second half", *g)
	}
}

// RenderE2 prints Figure 2: the pWCET curve against the observed tail.
func RenderE2(w io.Writer, r *E2Result) error {
	var projT, projP, obsT, obsP []float64
	for _, pt := range r.Curve {
		projT = append(projT, pt.Time)
		projP = append(projP, pt.Projected)
		if pt.Observed > 0 {
			obsT = append(obsT, pt.Time)
			obsP = append(obsP, pt.Observed)
		}
	}
	err := report.ExceedancePlot(w,
		"E2 / Figure 2 - pWCET estimate for TVCA (projection tightly upper-bounds observations)",
		1e-16, 72, 17,
		report.Series{Name: "pWCET projection", Times: projT, Probs: projP},
		report.Series{Name: "observed", Times: obsT, Probs: obsP})
	if err != nil {
		return err
	}
	rows := [][2]string{{"observed HWM", fmt.Sprintf("%.0f cycles", r.HWM)}}
	for _, q := range cutoffsOf(r.PWCET) {
		rows = append(rows, [2]string{
			fmt.Sprintf("pWCET @ %.0e", q),
			fmt.Sprintf("%.0f cycles (%.3fx HWM)", r.PWCET[q], r.PWCET[q]/r.HWM),
		})
	}
	report.Table(w, "", rows)
	return nil
}

// RenderE3 prints Figure 3: MBPTA vs. industrial DET practice.
func RenderE3(w io.Writer, r *E3Result) error {
	bars := []report.Bar{
		{Label: "DET avg", Value: r.DETAvg},
		{Label: "RAND avg", Value: r.RANDAvg},
		{Label: "DET HWM", Value: r.DETHWM},
		{Label: "DET HWM +20%", Value: r.Margin20},
		{Label: "DET HWM +50%", Value: r.Margin50},
	}
	for _, q := range cutoffsOf(r.PWCET) {
		bars = append(bars, report.Bar{
			Label: fmt.Sprintf("pWCET @ %.0e", q),
			Value: r.PWCET[q],
		})
	}
	if err := report.BarChart(w,
		"E3 / Figure 3 - MBPTA vs DET observed execution times (cycles)", 50, bars); err != nil {
		return err
	}
	rows := make([][2]string, 0, len(r.RatioAtCutoff))
	for _, q := range cutoffsOf(r.RatioAtCutoff) {
		rows = append(rows, [2]string{
			fmt.Sprintf("pWCET(%.0e) / DET HWM", q),
			fmt.Sprintf("%.3f", r.RatioAtCutoff[q]),
		})
	}
	report.Table(w, "Ratios (paper: ~1.5x at 1e-6, growing slowly, same order of magnitude):", rows)
	return nil
}

// RenderE4 prints the average-performance table.
func RenderE4(w io.Writer, r *E4Result) {
	report.Table(w, "E4 - average performance (paper: no noticeable DET/RAND difference)", [][2]string{
		{"DET mean", fmt.Sprintf("%.0f cycles (stddev %.0f)", r.DET.Mean, r.DET.StdDev)},
		{"RAND mean", fmt.Sprintf("%.0f cycles (stddev %.0f)", r.RAND.Mean, r.RAND.StdDev)},
		{"relative overhead", fmt.Sprintf("%+.2f%%", 100*r.RelativeOverhead)},
	})
}

// RenderE5 prints the convergence trace.
func RenderE5(w io.Writer, r *E5Result) {
	rows := make([][2]string, 0, len(r.Trace)+1)
	for _, pt := range r.Trace {
		mark := ""
		if pt.Done {
			mark = "  <- criterion satisfied"
		}
		rows = append(rows, [2]string{
			fmt.Sprintf("runs=%d", pt.Runs),
			fmt.Sprintf("fit=%s  dist=%.2e%s", pt.Fit, pt.Distance, mark),
		})
	}
	if r.StopAt > 0 {
		rows = append(rows, [2]string{"stop allowed at", fmt.Sprintf("%d runs", r.StopAt)})
	} else {
		rows = append(rows, [2]string{"stop allowed at", "never (collect more runs)"})
	}
	report.Table(w, "E5 - convergence of the tail fit (paper: 3,000 runs satisfied the criterion)", rows)
}

// RenderE6 prints the FPU jitter-control table.
func RenderE6(w io.Writer, r *E6Result) {
	verdict := "holds for every sampled operand pair"
	if !r.UpperBoundsHold {
		verdict = "VIOLATED"
	}
	report.Table(w, "E6 - FPU jitter control (paper SSII: analysis-mode fixed latency upper-bounds operation)", [][2]string{
		{"FDIV operation-mode latency", fmt.Sprintf("%d..%d cycles (operand-dependent)", r.DivOpMin, r.DivOpMax)},
		{"FDIV analysis-mode latency", fmt.Sprintf("%d cycles (fixed)", r.DivAnalysis)},
		{"FSQRT operation-mode latency", fmt.Sprintf("%d..%d cycles (operand-dependent)", r.SqrtOpMin, r.SqrtOpMax)},
		{"FSQRT analysis-mode latency", fmt.Sprintf("%d cycles (fixed)", r.SqrtAnalysis)},
		{"upper-bound property", fmt.Sprintf("%s (%d samples)", verdict, r.Samples)},
	})
}

// RenderE7 prints the placement ablation.
func RenderE7(w io.Writer, r *E7Result) error {
	bars := make([]report.Bar, len(r.DETByLayout)+1)
	for i, v := range r.DETByLayout {
		bars[i] = report.Bar{Label: fmt.Sprintf("DET layout %d", i), Value: v}
	}
	bars[len(r.DETByLayout)] = report.Bar{Label: "RAND pWCET@1e-3", Value: r.RANDQuantile}
	if err := report.BarChart(w,
		"E7 - memory-layout sensitivity: same binary, shifted link addresses (cycles)", 50, bars); err != nil {
		return err
	}
	report.Table(w, "", [][2]string{
		{"DET spread across layouts", fmt.Sprintf("%.2f%%", 100*r.DETSpread)},
		{"layouts covered by RAND bound", fmt.Sprintf("%.0f%%", 100*r.CoverFraction)},
	})
	return nil
}

// RenderDistributions prints side-by-side execution-time histograms of
// the DET and RAND campaigns — the visual counterpart of E4: the DET
// distribution is a needle, the RAND distribution a spread of the same
// mean.
func RenderDistributions(w io.Writer, e *Env, bins int) error {
	det, err := e.DET()
	if err != nil {
		return err
	}
	randc, err := e.RAND()
	if err != nil {
		return err
	}
	// Common binning over the joint range so the shapes are comparable.
	all := append(append([]float64(nil), det.Times()...), randc.Times()...)
	joint, err := stats.NewHistogram(all, bins)
	if err != nil {
		return err
	}
	binOf := func(x float64) int {
		i := int((x - joint.Lo) / joint.Width)
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		return i
	}
	count := func(ts []float64) []int {
		counts := make([]int, bins)
		for _, x := range ts {
			counts[binOf(x)]++
		}
		return counts
	}
	if err := report.HistogramChart(w, "DET execution-time distribution (cycles)",
		40, joint.Lo, joint.Width, count(det.Times())); err != nil {
		return err
	}
	return report.HistogramChart(w, "RAND execution-time distribution (cycles)",
		40, joint.Lo, joint.Width, count(randc.Times()))
}

// RenderE11 prints the performability sweep: one row per
// mitigation×hazard cell, the pWCET bound next to the residual failure
// rates, followed by the campaign provenance line.
func RenderE11(w io.Writer, r *E11Result) {
	fmt.Fprintf(w, "E11 - performability sweep: %d runs/cell, Poisson(%.2g) upsets, seed %d\n\n",
		r.Params.Runs, r.Params.Rate, r.Params.Seed)
	rows := make([]report.PerformabilityRow, len(r.Cells))
	clamped := 0
	for i, c := range r.Cells {
		rows[i] = report.PerformabilityRow{
			Label:       c.Label(),
			Bound:       c.Bound,
			Fitted:      c.Fitted,
			Clean:       c.Faults.Clean,
			Mitigated:   c.Faults.MitigatedTotal(),
			Quarantined: c.Faults.Quarantined(),
			WrongOutput: c.WrongOutputRate(),
			Hung:        c.HungRate(),
		}
		clamped += c.Faults.ClampedRuns
	}
	report.PerformabilityTable(w,
		"mitigation cost vs dependability (recovery priced in cycles; failures shrink)",
		r.Params.Quantile, rows)
	if clamped > 0 {
		fmt.Fprintf(w, "\n%d fault schedules clamped at the per-run cap across the sweep\n", clamped)
	}
	advisories := 0
	for _, c := range r.Cells {
		if c.Advisory != "" {
			advisories++
		}
	}
	if advisories > 0 {
		fmt.Fprintf(w, "\n%d cells carry an advisory analysis verdict and report their clean-run HWM\n", advisories)
	}
}

// RenderLeak prints the leak oracle's verdict: one decile table per
// platform and the comparative summary line.
func RenderLeak(w io.Writer, c *LeakComparison) {
	fmt.Fprintf(w, "Timing-leak oracle - secretdep-%dx%d, %d runs per secret, alpha %.2g\n\n",
		c.Params.Lines, c.Params.Passes, c.Params.Runs, c.DET.Gate.Alpha)
	for _, p := range []LeakProbe{c.DET, c.RAND} {
		report.QuantileGateTable(w, fmt.Sprintf("%s - secret 0 vs secret 1", p.Platform), p.Gate)
		fmt.Fprintln(w)
	}
	verdict := "platforms NOT separated - unexpected"
	if c.Separated() {
		verdict = "DET leaks the secret, RAND does not - time-randomization closes the channel"
	}
	report.Table(w, "", [][2]string{
		{"DET posterior leak probability", fmt.Sprintf("%.4f", c.DET.Gate.LeakProbability)},
		{"RAND posterior leak probability", fmt.Sprintf("%.4f", c.RAND.Gate.LeakProbability)},
		{"verdict", verdict},
	})
}
