package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/platform"
	"repro/internal/report"
	"repro/internal/stats"
)

// E9 (extension) checks that the MBPTA pipeline generalizes beyond the
// TVCA case study, across workload classes with different jitter
// profiles: cache-pressured floating-point (matmul), table-driven
// integer (CRC-32), input-dependent control flow (insertion sort) and
// FPU-dominated (vector normalization). For each kernel the campaign
// must pass the i.i.d. gate and produce a valid per-run bound; kernels
// whose randomized-platform execution is jitterless (footprint within
// the caches, fixed-latency operations only) are identified as such —
// their measurement is exact and needs no probabilistic argument.

// E9Kernel is the per-kernel outcome.
type E9Kernel struct {
	Name       string
	N          int
	Mean       float64
	HWM        float64
	Jitterless bool    // all runs identical: measurement = exact WCET
	IIDPass    bool    // i.i.d. gate (true for jitterless by convention)
	PWCET1e12  float64 // fitted bound, or the constant for jitterless
}

// E9Result aggregates the generality experiment.
type E9Result struct {
	Kernels []E9Kernel
	Runs    int
}

// E9Generality runs each kernel campaign on the RAND platform.
func E9Generality(e *Env, runsPer int) (*E9Result, error) {
	if runsPer < 300 {
		return nil, fmt.Errorf("experiments: %d runs per kernel too few (need >= 300)", runsPer)
	}
	workloads := []platform.Workload{
		kernels.MatMul{N: 28, Seed: e.P.Seed}, // 3x28x28x8 = 18.8KB > DL1
		kernels.CRC32{Bytes: 24 * 1024, Seed: e.P.Seed},
		kernels.InsertionSort{N: 512, Seed: e.P.Seed},
		kernels.VecNorm{N: 256, Seed: e.P.Seed},
	}
	out := &E9Result{Runs: runsPer}
	for _, w := range workloads {
		c, err := platform.StreamCampaign(context.Background(), platform.RAND(), w,
			platform.StreamOptions{
				MaxRuns: runsPer, BatchSize: runsPer,
				BaseSeed: e.P.Seed + 77, Parallel: e.P.Parallel,
			}, nil)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name(), err)
		}
		times := c.Times()
		k := E9Kernel{Name: w.Name(), N: len(times)}
		if k.Mean, err = stats.Mean(times); err != nil {
			return nil, err
		}
		if k.HWM, err = stats.Max(times); err != nil {
			return nil, err
		}
		lo, err := stats.Min(times)
		if err != nil {
			return nil, err
		}
		if lo == k.HWM {
			k.Jitterless = true
			k.IIDPass = true
			k.PWCET1e12 = k.HWM
			out.Kernels = append(out.Kernels, k)
			continue
		}
		rep, err := stats.CheckIID(times, 0.05)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name(), err)
		}
		k.IIDPass = rep.Pass
		res, err := core.NewAnalyzer(core.Options{BlockSize: 25}).Analyze(times)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name(), err)
		}
		if k.PWCET1e12, err = res.PWCET(1e-12); err != nil {
			return nil, err
		}
		out.Kernels = append(out.Kernels, k)
	}
	return out, nil
}

// RenderE9 prints the generality table.
func RenderE9(w io.Writer, r *E9Result) {
	rows := make([][2]string, 0, len(r.Kernels))
	for _, k := range r.Kernels {
		var desc string
		if k.Jitterless {
			desc = fmt.Sprintf("jitterless: exact WCET %.0f cycles", k.PWCET1e12)
		} else {
			gate := "gate pass"
			if !k.IIDPass {
				gate = "GATE FAIL"
			}
			desc = fmt.Sprintf("%s, mean %.0f, HWM %.0f, pWCET(1e-12) %.0f (%.3fx HWM)",
				gate, k.Mean, k.HWM, k.PWCET1e12, k.PWCET1e12/k.HWM)
		}
		rows = append(rows, [2]string{k.Name, desc})
	}
	report.Table(w, fmt.Sprintf("E9 (extension) - MBPTA across workload classes (%d runs each on RAND)", r.Runs), rows)
}
