package experiments

import (
	"sync"
	"testing"

	"repro/internal/tvca"
)

var (
	sharedEnvOnce sync.Once
	sharedEnv     *Env
	sharedEnvErr  error
)

// testEnv returns a reduced-but-valid evaluation environment: fewer
// runs and a shorter major frame than the paper's 3,000x16, sized so
// tests finish quickly while every statistical stage still has enough
// data. The env is shared across tests — campaigns are cached per env,
// and the experiment functions only read them — so the TVCA campaigns
// run once per test binary instead of once per test (which matters
// under the race detector's ~10x slowdown).
func testEnv(t *testing.T) *Env {
	t.Helper()
	sharedEnvOnce.Do(func() {
		p := DefaultParams()
		p.Runs = 600
		cfg := tvca.DefaultConfig()
		cfg.Frames = 8
		p.TVCA = cfg
		sharedEnv, sharedEnvErr = NewEnv(p)
	})
	if sharedEnvErr != nil {
		t.Fatal(sharedEnvErr)
	}
	return sharedEnv
}

func TestNewEnvRejectsTinyCampaign(t *testing.T) {
	p := DefaultParams()
	p.Runs = 100
	if _, err := NewEnv(p); err == nil {
		t.Error("100-run campaign accepted")
	}
}

func TestE1IIDPassesOnRAND(t *testing.T) {
	e := testEnv(t)
	r, err := E1IID(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Errorf("i.i.d. gate failed on RAND:\n%s\n%s", r.Independence, r.IdentDist)
	}
	if r.Independence.PValue < 0.05 || r.IdentDist.PValue < 0.05 {
		t.Errorf("p-values %.3f / %.3f below 0.05",
			r.Independence.PValue, r.IdentDist.PValue)
	}
}

func TestE2CurveShape(t *testing.T) {
	e := testEnv(t)
	r, err := E2PWCETCurve(e)
	if err != nil {
		t.Fatal(err)
	}
	// pWCET estimates increase as the cutoff decreases.
	if !(r.PWCET[1e-3] < r.PWCET[1e-6] && r.PWCET[1e-6] < r.PWCET[1e-12] &&
		r.PWCET[1e-12] < r.PWCET[1e-15]) {
		t.Errorf("pWCET not increasing: %v", r.PWCET)
	}
	// The projection upper-bounds the observations: pWCET(1/N) >= ~HWM.
	if r.PWCET[1e-3] < r.HWM*0.95 {
		t.Errorf("pWCET(1e-3) = %.0f far below HWM %.0f", r.PWCET[1e-3], r.HWM)
	}
	// Same order of magnitude (the paper's qualitative claim).
	if r.PWCET[1e-15] > 10*r.HWM {
		t.Errorf("pWCET(1e-15) = %.0f an order of magnitude beyond HWM %.0f",
			r.PWCET[1e-15], r.HWM)
	}
	if len(r.Curve) != 200 {
		t.Errorf("curve points = %d", len(r.Curve))
	}
}

func TestE3ComparisonShape(t *testing.T) {
	e := testEnv(t)
	r, err := E3Comparison(e)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 3's qualitative content: averages similar, margins above
	// HWM, pWCET estimates within the same order of magnitude as the
	// HWM and growing with deeper cutoffs.
	if r.DETHWM <= r.DETAvg {
		t.Error("HWM <= mean")
	}
	if r.Margin50 != r.DETHWM*1.5 || r.Margin20 != r.DETHWM*1.2 {
		t.Error("margins wrong")
	}
	if r.PWCET[1e-6] >= r.PWCET[1e-15] {
		t.Error("pWCET not growing with cutoff depth")
	}
	for q, ratio := range r.RatioAtCutoff {
		if ratio < 0.9 || ratio > 10 {
			t.Errorf("pWCET(%g)/HWM = %.2f outside same-order band", q, ratio)
		}
	}
}

func TestE4AveragesClose(t *testing.T) {
	e := testEnv(t)
	r, err := E4AvgPerformance(e)
	if err != nil {
		t.Fatal(err)
	}
	// "no noticeable difference": a few percent at most.
	if r.RelativeOverhead > 0.05 || r.RelativeOverhead < -0.05 {
		t.Errorf("relative overhead %.3f outside +-5%%", r.RelativeOverhead)
	}
}

func TestE5ConvergesWithinCampaign(t *testing.T) {
	e := testEnv(t)
	r, err := E5Convergence(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace) == 0 {
		t.Fatal("empty trace")
	}
	if r.StopAt == 0 {
		t.Error("campaign did not converge")
	}
}

func TestE6FPUUpperBound(t *testing.T) {
	e := testEnv(t)
	r, err := E6FPUJitter(e)
	if err != nil {
		t.Fatal(err)
	}
	if !r.UpperBoundsHold {
		t.Error("analysis-mode latency failed to upper-bound operation mode")
	}
	if r.DivOpMin >= r.DivOpMax {
		t.Error("operation-mode FDIV shows no jitter")
	}
	if r.DivAnalysis != r.DivOpMax {
		t.Errorf("analysis FDIV %d != operation max %d", r.DivAnalysis, r.DivOpMax)
	}
}

func TestE7LayoutAblation(t *testing.T) {
	e := testEnv(t)
	r, err := E7PlacementAblation(e, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.DETByLayout) != 8 {
		t.Fatalf("%d layouts", len(r.DETByLayout))
	}
	// The layout must matter on DET...
	if r.DETSpread <= 0 {
		t.Error("no layout sensitivity on DET")
	}
	// ...and the RAND tail bound should cover most layouts.
	if r.CoverFraction < 0.75 {
		t.Errorf("RAND 1e-3 bound covers only %.0f%% of layouts", 100*r.CoverFraction)
	}
	if _, err := E7PlacementAblation(e, 1); err == nil {
		t.Error("1 layout accepted")
	}
}

func TestCampaignsCached(t *testing.T) {
	e := testEnv(t)
	c1, err := e.RAND()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.RAND()
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("RAND campaign not cached")
	}
}

func TestE8ContentionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("co-simulation campaign")
	}
	if raceEnabled {
		// The campaign concurrency E8 exercises is race-tested in
		// internal/platform and pkg/mbpta; the co-simulator itself is
		// single-goroutine and too slow under the detector.
		t.Skip("co-simulation campaign too slow under the race detector")
	}
	// E8 uses its own small co-simulated campaigns; shrink the workload
	// further to keep the test fast.
	p := DefaultParams()
	p.Runs = 600
	cfg := tvca.DefaultConfig()
	cfg.Frames = 4
	cfg.Sensors = 16
	cfg.Taps = 16
	p.TVCA = cfg
	e, err := NewEnv(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := E8Contention(e, 2, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.MeanByCoRunners) != 3 {
		t.Fatalf("configs = %d", len(r.MeanByCoRunners))
	}
	// Slowdown is monotone in co-runner count and > 1 with contention.
	for k := 1; k < len(r.SlowdownByCoRunners); k++ {
		if r.SlowdownByCoRunners[k] < r.SlowdownByCoRunners[k-1] {
			t.Errorf("slowdown not monotone: %v", r.SlowdownByCoRunners)
		}
	}
	if r.SlowdownByCoRunners[2] <= 1.0 {
		t.Errorf("2 streaming co-runners produced no slowdown: %v", r.SlowdownByCoRunners)
	}
	// MBPTA remains applicable under contention.
	if !r.IIDPass {
		t.Error("contended campaign failed the i.i.d. gate")
	}
	// Each configuration's pWCET bound upper-bounds its own campaign
	// (cross-configuration comparisons at 1e-12 are fit-noise-dominated
	// on these reduced campaigns, so they are not asserted).
	for k := range r.PWCET1e12 {
		if r.PWCET1e12[k] < r.MeanByCoRunners[k] {
			t.Errorf("config %d: pWCET %.0f below its own mean %.0f",
				k, r.PWCET1e12[k], r.MeanByCoRunners[k])
		}
	}
	if _, err := E8Contention(e, 9, 300); err == nil {
		t.Error("9 co-runners accepted")
	}
	if _, err := E8Contention(e, 2, 10); err == nil {
		t.Error("10 runs accepted")
	}
}

func TestE9GeneralityShape(t *testing.T) {
	if raceEnabled {
		t.Skip("kernel campaigns too slow under the race detector")
	}
	e := testEnv(t)
	r, err := E9Generality(e, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Kernels) != 4 {
		t.Fatalf("%d kernels", len(r.Kernels))
	}
	for _, k := range r.Kernels {
		if !k.IIDPass {
			t.Errorf("%s failed the i.i.d. gate on RAND", k.Name)
		}
		if k.PWCET1e12 < k.HWM {
			t.Errorf("%s: pWCET %.0f below HWM %.0f", k.Name, k.PWCET1e12, k.HWM)
		}
		if k.Mean <= 0 {
			t.Errorf("%s: mean %v", k.Name, k.Mean)
		}
	}
	if _, err := E9Generality(e, 10); err == nil {
		t.Error("10 runs accepted")
	}
}

func TestE1IIDQuantileGate(t *testing.T) {
	e := testEnv(t)
	if _, err := e.RAND(); err != nil { // populate the campaign cache first
		t.Fatal(err)
	}
	plain, err := E1IID(e)
	if err != nil {
		t.Fatal(err)
	}
	if plain.QGate != nil {
		t.Error("E1 carries a quantile-gate report without the opt-in")
	}

	// Same cached campaign, gated analysis options.
	ge := *e
	ge.P.Analysis.QuantileGate = true
	r, err := E1IID(&ge)
	if err != nil {
		t.Fatal(err)
	}
	if r.QGate == nil {
		t.Fatal("opt-in E1 misses the quantile-gate report")
	}
	if !r.QGate.Pass || !r.Pass {
		t.Errorf("quantile gate failed on the RAND campaign:\n%s", r.QGate)
	}
	if r.QGate.LeakProbability > 0.5 {
		t.Errorf("posterior P(shift) %.3f on a clean split", r.QGate.LeakProbability)
	}
}
