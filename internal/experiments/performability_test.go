package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/faults"
)

// e11Params keeps the sweep small: two mitigation schemes against two
// hazard profiles at 60 runs per cell.
func e11Params() PerformabilityParams {
	return PerformabilityParams{
		Runs: 60,
		Rate: 1.5,
		Mitigations: []faults.Mitigation{
			{},
			{Kind: faults.MitigationECC},
		},
		Hazards: []faults.Hazard{
			{Kind: faults.HazardConstant},
			{Kind: faults.HazardOrbit},
		},
	}
}

func TestE11SweepShape(t *testing.T) {
	r, err := RunPerformability(context.Background(), e11Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("%d cells, want 2x2 = 4", len(r.Cells))
	}
	seen := map[string]bool{}
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Bound <= 0 {
			t.Errorf("%s: bound %g", c.Label(), c.Bound)
		}
		if c.Fingerprint == "" {
			t.Errorf("%s: empty fingerprint", c.Label())
		}
		if c.Faults.Total != 60 {
			t.Errorf("%s: %d runs tallied, want 60", c.Label(), c.Faults.Total)
		}
		if seen[c.Label()] {
			t.Errorf("duplicate cell label %s", c.Label())
		}
		seen[c.Label()] = true
	}
	for _, want := range []string{"none@constant", "ecc@constant", "none@orbit", "ecc@orbit"} {
		if !seen[want] {
			t.Errorf("missing cell %s (have %v)", want, seen)
		}
	}
	// CellAt resolves under both the zero-value and the canonical kind.
	if r.CellAt(faults.MitigationNone, faults.HazardConstant) == nil {
		t.Error("CellAt(none, constant) = nil for a zero-value cell")
	}
	if r.CellAt("", "") != r.CellAt(faults.MitigationNone, faults.HazardConstant) {
		t.Error("CellAt zero-value spelling disagrees with canonical spelling")
	}
	// ECC recovers array upsets the unmitigated cell quarantines, so
	// within each hazard row its analyzed population is strictly larger.
	for _, hz := range []faults.HazardKind{faults.HazardConstant, faults.HazardOrbit} {
		none, ecc := r.CellAt(faults.MitigationNone, hz), r.CellAt(faults.MitigationECC, hz)
		if ecc.Faults.MitigatedTotal() == 0 {
			t.Errorf("%s: ECC mitigated nothing at rate 1.5", ecc.Label())
		}
		if ecc.Faults.Clean <= none.Faults.Clean {
			t.Errorf("%s: ECC clean %d not above unmitigated clean %d",
				ecc.Label(), ecc.Faults.Clean, none.Faults.Clean)
		}
	}
}

func TestRenderE11(t *testing.T) {
	r, err := RunPerformability(context.Background(), e11Params())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderE11(&sb, r)
	out := sb.String()
	for _, want := range []string{
		"E11", "pWCET@1e-12", "none@constant", "ecc@orbit", "wrong-output", "hung",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
