//go:build race

package experiments

// raceEnabled reports whether the test binary was built with the race
// detector, so the slowest co-simulation tests can scale down: the
// detector's ~10x slowdown pushes them past the per-package test
// timeout when the whole suite runs in parallel.
const raceEnabled = true
