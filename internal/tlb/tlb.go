// Package tlb models the instruction and data translation lookaside
// buffers of the platform: 64-entry fully-associative TLBs whose
// replacement policy was changed to random in the MBPTA-compliant build
// of the processor (the paper randomizes ITLB and DTLB replacement).
//
// Address translation itself is identity (the case study runs bare-metal
// with a flat mapping); what matters for timing is hit/miss behaviour
// and the page-table-walk cost on a miss.
package tlb

import (
	"fmt"

	"repro/internal/rng"
)

// Replacement selects the victim policy.
type Replacement string

// Replacement policies.
const (
	ReplaceLRU    Replacement = "lru"
	ReplaceRandom Replacement = "random"
	ReplaceFIFO   Replacement = "fifo"
)

// Config describes one TLB.
type Config struct {
	Name        string
	Entries     int
	PageBytes   int
	Replacement Replacement
	// WalkAccesses is the number of memory accesses a miss costs (the
	// depth of the page-table walk); each goes to the bus/DRAM.
	WalkAccesses int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb %q: non-positive entries %d", c.Name, c.Entries)
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("tlb %q: page size %d not a positive power of two", c.Name, c.PageBytes)
	}
	if c.WalkAccesses < 1 {
		return fmt.Errorf("tlb %q: walk accesses %d < 1", c.Name, c.WalkAccesses)
	}
	switch c.Replacement {
	case ReplaceLRU, ReplaceRandom, ReplaceFIFO:
	default:
		return fmt.Errorf("tlb %q: unknown replacement %q", c.Name, c.Replacement)
	}
	return nil
}

// Stats counts TLB events.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MissRatio returns misses / total.
func (s Stats) MissRatio() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Misses) / float64(tot)
}

type entry struct {
	valid bool
	vpn   uint64
	stamp uint64 // recency (LRU) or insertion order (FIFO)
}

// TLB is one translation buffer. Not safe for concurrent use; each core
// owns its TLBs.
type TLB struct {
	cfg       Config
	entries   []entry
	clock     uint64
	rnd       rng.Source
	stats     Stats
	pageShift uint
}

// New builds a TLB. src is required for random replacement.
func New(cfg Config, src rng.Source) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replacement == ReplaceRandom && src == nil {
		return nil, fmt.Errorf("tlb %q: random replacement requires an rng source", cfg.Name)
	}
	shift := uint(0)
	for p := cfg.PageBytes; p > 1; p >>= 1 {
		shift++
	}
	return &TLB{cfg: cfg, entries: make([]entry, cfg.Entries), rnd: src, pageShift: shift}, nil
}

// Config returns the TLB configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Flush invalidates all entries (per-run protocol).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
}

// Lookup translates addr, returning true on hit. On a miss the entry is
// filled (the walk cost is charged by the timing model, which sees the
// miss and issues Config().WalkAccesses memory accesses).
func (t *TLB) Lookup(addr uint64) bool {
	vpn := addr >> t.pageShift
	t.clock++
	free := -1
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			if t.cfg.Replacement == ReplaceLRU {
				e.stamp = t.clock
			}
			t.stats.Hits++
			return true
		}
		if !e.valid && free < 0 {
			free = i
		}
	}
	t.stats.Misses++
	if free >= 0 {
		t.entries[free] = entry{valid: true, vpn: vpn, stamp: t.clock}
		return false
	}
	var victim int
	switch t.cfg.Replacement {
	case ReplaceRandom:
		victim = rng.Intn(t.rnd, len(t.entries))
	default: // LRU and FIFO both evict the oldest stamp; they differ in
		// whether Lookup refreshes it (LRU does, FIFO does not).
		victim = 0
		for i := 1; i < len(t.entries); i++ {
			if t.entries[i].stamp < t.entries[victim].stamp {
				victim = i
			}
		}
	}
	t.entries[victim] = entry{valid: true, vpn: vpn, stamp: t.clock}
	return false
}

// InjectEntryFault flips bit number bit of the virtual page number
// stored in entry idx — a single-event upset in the TLB tag array. For
// a valid entry this both drops the original translation (a later
// lookup re-walks) and may alias a different page onto the entry. As
// translation is identity in the model, the upset perturbs timing only.
// Coordinates are reduced modulo the geometry so any values are safe.
func (t *TLB) InjectEntryFault(idx, bit int) {
	e := t.faultEntry(idx)
	e.vpn ^= 1 << (uint(bit) % 64)
}

// InjectStateFault flips the valid bit of entry idx — an upset in the
// state array (a translation vanishes, or a stale frame resurfaces).
func (t *TLB) InjectStateFault(idx int) {
	e := t.faultEntry(idx)
	e.valid = !e.valid
}

func (t *TLB) faultEntry(idx int) *entry {
	if idx < 0 {
		idx = -idx
	}
	return &t.entries[idx%len(t.entries)]
}

// Probe reports residency without side effects.
func (t *TLB) Probe(addr uint64) bool {
	vpn := addr >> t.pageShift
	for _, e := range t.entries {
		if e.valid && e.vpn == vpn {
			return true
		}
	}
	return false
}
