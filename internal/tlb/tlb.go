// Package tlb models the instruction and data translation lookaside
// buffers of the platform: 64-entry fully-associative TLBs whose
// replacement policy was changed to random in the MBPTA-compliant build
// of the processor (the paper randomizes ITLB and DTLB replacement).
//
// Address translation itself is identity (the case study runs bare-metal
// with a flat mapping); what matters for timing is hit/miss behaviour
// and the page-table-walk cost on a miss.
package tlb

import (
	"fmt"

	"repro/internal/rng"
)

// Replacement selects the victim policy.
type Replacement string

// Replacement policies.
const (
	ReplaceLRU    Replacement = "lru"
	ReplaceRandom Replacement = "random"
	ReplaceFIFO   Replacement = "fifo"
)

// Config describes one TLB.
type Config struct {
	Name        string
	Entries     int
	PageBytes   int
	Replacement Replacement
	// WalkAccesses is the number of memory accesses a miss costs (the
	// depth of the page-table walk); each goes to the bus/DRAM.
	WalkAccesses int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb %q: non-positive entries %d", c.Name, c.Entries)
	}
	if c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0 {
		return fmt.Errorf("tlb %q: page size %d not a positive power of two", c.Name, c.PageBytes)
	}
	if c.WalkAccesses < 1 {
		return fmt.Errorf("tlb %q: walk accesses %d < 1", c.Name, c.WalkAccesses)
	}
	switch c.Replacement {
	case ReplaceLRU, ReplaceRandom, ReplaceFIFO:
	default:
		return fmt.Errorf("tlb %q: unknown replacement %q", c.Name, c.Replacement)
	}
	return nil
}

// Stats counts TLB events.
type Stats struct {
	Hits    uint64
	Misses  uint64
	MRUHits uint64 // hits served by the last-page or micro-cache fast paths
}

// MissRatio returns misses / total.
func (s Stats) MissRatio() float64 {
	tot := s.Hits + s.Misses
	if tot == 0 {
		return 0
	}
	return float64(s.Misses) / float64(tot)
}

type entry struct {
	valid bool
	vpn   uint64
	stamp uint64 // recency (LRU) or insertion order (FIFO)
}

// replKind is the pre-resolved replacement dispatch tag, so the per-
// instruction Lookup path compares integers instead of policy strings.
type replKind uint8

const (
	replLRU replKind = iota
	replRandom
	replFIFO
)

// mruSlots sizes the direct-mapped translation micro-cache (vpn ->
// entry index). It is a pure software acceleration: every slot is
// verified against the backing entry before use, so a hit through the
// micro-cache is exactly a hit the associative scan would have found.
const mruSlots = 16

// TLB is one translation buffer. Not safe for concurrent use; each core
// owns its TLBs.
type TLB struct {
	cfg       Config
	entries   []entry
	clock     uint64
	rnd       rng.Source
	stats     Stats
	pageShift uint
	repl      replKind

	// Translation micro-cache: maps vpn (direct-mapped on its low bits)
	// to the entry index where it was last found. Entries are verified
	// on use, so stale slots cost nothing but a fallback scan. The
	// associative scan always finds the FIRST matching entry, and absent
	// fault injection valid vpns are unique, so replaying the recorded
	// index is behaviourally identical to the scan. Fault injection can
	// forge duplicate vpns (a flipped tag aliasing another page), where
	// first-match order matters for LRU stamping — mruOff disables the
	// micro-cache from the first injected upset until the next Flush.
	mruVPN [mruSlots]uint64
	mruIdx [mruSlots]int32
	mruOff bool

	// Single-entry record of the immediately preceding lookup. If the
	// current vpn equals it, the previous Lookup hit or filled this very
	// vpn and nothing has run since that could evict it, so this lookup
	// is a hit at the recorded index with no verification load needed
	// (vpns are unique absent faults; mruOff covers faults). Instruction
	// fetch streams stay on one 4 KiB page for ~1k instructions, making
	// this the dominant path.
	lastVPN uint64
	lastIdx int32 // -1 = no record
}

// New builds a TLB. src is required for random replacement.
func New(cfg Config, src rng.Source) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replacement == ReplaceRandom && src == nil {
		return nil, fmt.Errorf("tlb %q: random replacement requires an rng source", cfg.Name)
	}
	shift := uint(0)
	for p := cfg.PageBytes; p > 1; p >>= 1 {
		shift++
	}
	t := &TLB{cfg: cfg, entries: make([]entry, cfg.Entries), rnd: src, pageShift: shift, lastIdx: -1}
	switch cfg.Replacement {
	case ReplaceRandom:
		t.repl = replRandom
	case ReplaceFIFO:
		t.repl = replFIFO
	default:
		t.repl = replLRU
	}
	t.clearMRU()
	return t, nil
}

func (t *TLB) clearMRU() {
	for i := range t.mruIdx {
		t.mruIdx[i] = -1
	}
	t.lastIdx = -1
}

// Config returns the TLB configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns a copy of the counters.
func (t *TLB) Stats() Stats { return t.stats }

// ResetStats zeroes the counters.
func (t *TLB) ResetStats() { t.stats = Stats{} }

// Flush invalidates all entries (per-run protocol).
func (t *TLB) Flush() {
	clear(t.entries)
	t.clearMRU()
	t.mruOff = false
}

// Lookup translates addr, returning true on hit. On a miss the entry is
// filled (the walk cost is charged by the timing model, which sees the
// miss and issues Config().WalkAccesses memory accesses).
func (t *TLB) Lookup(addr uint64) bool {
	vpn := addr >> t.pageShift
	t.clock++
	// Fastest path: same page as the immediately preceding lookup — a
	// guaranteed hit at the recorded index (see the lastVPN invariant).
	if vpn == t.lastVPN && t.lastIdx >= 0 && !t.mruOff {
		if t.repl == replLRU {
			t.entries[t.lastIdx].stamp = t.clock
		}
		t.stats.Hits++
		t.stats.MRUHits++
		return true
	}
	// Fast path: the micro-cache remembers where this vpn was last
	// found. The slot is verified against the live entry, so a hit here
	// is exactly the hit the scan below would return.
	if !t.mruOff {
		h := int(vpn) & (mruSlots - 1)
		if idx := t.mruIdx[h]; idx >= 0 && t.mruVPN[h] == vpn {
			e := &t.entries[idx]
			if e.valid && e.vpn == vpn {
				if t.repl == replLRU {
					e.stamp = t.clock
				}
				t.stats.Hits++
				t.stats.MRUHits++
				t.noteMRU(vpn, idx)
				return true
			}
		}
	}
	free := -1
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			if t.repl == replLRU {
				e.stamp = t.clock
			}
			t.stats.Hits++
			t.noteMRU(vpn, int32(i))
			return true
		}
		if !e.valid && free < 0 {
			free = i
		}
	}
	t.stats.Misses++
	if free >= 0 {
		t.entries[free] = entry{valid: true, vpn: vpn, stamp: t.clock}
		t.noteMRU(vpn, int32(free))
		return false
	}
	var victim int
	switch t.repl {
	case replRandom:
		victim = rng.Intn(t.rnd, len(t.entries))
	default: // LRU and FIFO both evict the oldest stamp; they differ in
		// whether Lookup refreshes it (LRU does, FIFO does not).
		victim = 0
		for i := 1; i < len(t.entries); i++ {
			if t.entries[i].stamp < t.entries[victim].stamp {
				victim = i
			}
		}
	}
	t.entries[victim] = entry{valid: true, vpn: vpn, stamp: t.clock}
	t.noteMRU(vpn, int32(victim))
	return false
}

// noteMRU records where vpn lives, in both the direct-mapped slot table
// and the single-entry last-lookup record (which every lookup must
// refresh for its invariant to hold). The scan finds first matches, and
// a fill only ever happens when no valid entry holds vpn, so the
// recorded index is always the first (and only) match while faults are
// absent.
func (t *TLB) noteMRU(vpn uint64, idx int32) {
	h := int(vpn) & (mruSlots - 1)
	t.mruVPN[h] = vpn
	t.mruIdx[h] = idx
	t.lastVPN, t.lastIdx = vpn, idx
}

// InjectEntryFault flips bit number bit of the virtual page number
// stored in entry idx — a single-event upset in the TLB tag array. For
// a valid entry this both drops the original translation (a later
// lookup re-walks) and may alias a different page onto the entry. As
// translation is identity in the model, the upset perturbs timing only.
// Coordinates are reduced modulo the geometry so any values are safe.
func (t *TLB) InjectEntryFault(idx, bit int) {
	e := t.faultEntry(idx)
	e.vpn ^= 1 << (uint(bit) % 64)
	// A flipped tag can alias an existing vpn; duplicate matches must
	// resolve in scan order, so bypass the micro-cache until re-flushed.
	t.mruOff = true
}

// InjectStateFault flips the valid bit of entry idx — an upset in the
// state array (a translation vanishes, or a stale frame resurfaces).
func (t *TLB) InjectStateFault(idx int) {
	e := t.faultEntry(idx)
	e.valid = !e.valid
	t.mruOff = true
}

// Scrub invalidates entry idx — the scrubbing engine's repair action
// for an entry flagged by a parity/ECC sweep. Dropping a translation is
// always architecturally safe (the worst case is a re-walk), so
// scrubbing converts a potentially aliased upset into a bounded timing
// effect. Idempotent; the index is reduced modulo the geometry like the
// fault injectors'.
func (t *TLB) Scrub(idx int) {
	t.faultEntry(idx).valid = false
	t.mruOff = true
}

func (t *TLB) faultEntry(idx int) *entry {
	if idx < 0 {
		idx = -idx
	}
	return &t.entries[idx%len(t.entries)]
}

// Probe reports residency without side effects.
func (t *TLB) Probe(addr uint64) bool {
	vpn := addr >> t.pageShift
	for _, e := range t.entries {
		if e.valid && e.vpn == vpn {
			return true
		}
	}
	return false
}
