package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func cfg(r Replacement) Config {
	return Config{Name: "DTLB", Entries: 64, PageBytes: 4096, Replacement: r, WalkAccesses: 2}
}

func newTLB(t *testing.T, c Config, seed uint64) *TLB {
	t.Helper()
	tl, err := New(c, rng.NewXoroshiro128(seed))
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestConfigValidate(t *testing.T) {
	if err := cfg(ReplaceLRU).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "entries", Entries: 0, PageBytes: 4096, Replacement: ReplaceLRU, WalkAccesses: 1},
		{Name: "page", Entries: 4, PageBytes: 1000, Replacement: ReplaceLRU, WalkAccesses: 1},
		{Name: "walk", Entries: 4, PageBytes: 4096, Replacement: ReplaceLRU, WalkAccesses: 0},
		{Name: "policy", Entries: 4, PageBytes: 4096, Replacement: "bogus", WalkAccesses: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted", c.Name)
		}
	}
}

func TestRandomRequiresRNG(t *testing.T) {
	if _, err := New(cfg(ReplaceRandom), nil); err == nil {
		t.Error("random replacement without rng accepted")
	}
	if _, err := New(cfg(ReplaceLRU), nil); err != nil {
		t.Errorf("LRU without rng rejected: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	for _, r := range []Replacement{ReplaceLRU, ReplaceRandom, ReplaceFIFO} {
		tl := newTLB(t, cfg(r), 1)
		if tl.Lookup(0x1234) {
			t.Errorf("%s: cold lookup hit", r)
		}
		if !tl.Lookup(0x1FFF) {
			t.Errorf("%s: same-page lookup missed", r)
		}
		if tl.Lookup(0x2000) {
			t.Errorf("%s: next page hit", r)
		}
	}
}

func TestCapacityAndLRUEviction(t *testing.T) {
	small := Config{Name: "T", Entries: 4, PageBytes: 4096, Replacement: ReplaceLRU, WalkAccesses: 2}
	tl := newTLB(t, small, 0)
	pages := []uint64{0, 1, 2, 3}
	for _, p := range pages {
		tl.Lookup(p << 12)
	}
	tl.Lookup(0 << 12) // refresh page 0
	tl.Lookup(9 << 12) // evicts page 1 (LRU)
	if !tl.Probe(0 << 12) {
		t.Error("refreshed page evicted")
	}
	if tl.Probe(1 << 12) {
		t.Error("LRU page survived")
	}
}

func TestFIFOEvictionIgnoresRecency(t *testing.T) {
	small := Config{Name: "T", Entries: 4, PageBytes: 4096, Replacement: ReplaceFIFO, WalkAccesses: 2}
	tl := newTLB(t, small, 0)
	for p := uint64(0); p < 4; p++ {
		tl.Lookup(p << 12)
	}
	tl.Lookup(0 << 12) // hit; FIFO does not refresh
	tl.Lookup(9 << 12) // evicts page 0 (oldest insertion)
	if tl.Probe(0 << 12) {
		t.Error("FIFO kept the oldest insertion")
	}
	if !tl.Probe(1 << 12) {
		t.Error("page 1 evicted out of order")
	}
}

func TestRandomEvictionCoversAllEntries(t *testing.T) {
	small := Config{Name: "T", Entries: 4, PageBytes: 4096, Replacement: ReplaceRandom, WalkAccesses: 2}
	tl := newTLB(t, small, 5)
	evicted := make(map[uint64]bool)
	for trial := 0; trial < 300 && len(evicted) < 4; trial++ {
		tl.Flush()
		for p := uint64(0); p < 4; p++ {
			tl.Lookup(p << 12)
		}
		tl.Lookup(99 << 12)
		for p := uint64(0); p < 4; p++ {
			if !tl.Probe(p << 12) {
				evicted[p] = true
			}
		}
	}
	if len(evicted) < 4 {
		t.Errorf("random replacement only evicted %v", evicted)
	}
}

func TestFlushAndStats(t *testing.T) {
	tl := newTLB(t, cfg(ReplaceLRU), 0)
	tl.Lookup(0x1000)
	tl.Lookup(0x1000)
	st := tl.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
	if mr := st.MissRatio(); mr != 0.5 {
		t.Errorf("miss ratio %v", mr)
	}
	tl.Flush()
	if tl.Probe(0x1000) {
		t.Error("entry survived flush")
	}
	tl.ResetStats()
	if tl.Stats() != (Stats{}) {
		t.Error("stats survived reset")
	}
	if (Stats{}).MissRatio() != 0 {
		t.Error("empty ratio != 0")
	}
}

func TestWorkingSetWithinCapacityAlwaysHitsSecondPass(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.NewXoroshiro128(seed)
		tl, err := New(cfg(ReplaceRandom), src)
		if err != nil {
			return false
		}
		// 64 pages = exactly capacity; second pass must be all hits.
		for p := uint64(0); p < 64; p++ {
			tl.Lookup(p << 12)
		}
		tl.ResetStats()
		for p := uint64(0); p < 64; p++ {
			tl.Lookup(p << 12)
		}
		return tl.Stats().Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
