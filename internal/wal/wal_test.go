package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

var testMeta = Meta{Platform: "RAND", Workload: "tvca", BaseSeed: 42, MaxRuns: 100, BatchSize: 10}

// writeJournal builds a journal of nBatches batches of batchSize runs,
// one checkpoint per batch, and returns its path.
func writeJournal(t *testing.T, nBatches, batchSize int, reg *telemetry.Registry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "campaign.wal")
	w, err := Create(path, testMeta, reg)
	if err != nil {
		t.Fatal(err)
	}
	run := 0
	for b := 0; b < nBatches; b++ {
		for i := 0; i < batchSize; i++ {
			rr := RunRecord{
				Run: run, Seed: uint64(run) * 0x9E37, Cycles: 1000 + uint64(run),
				Instructions: 500 + uint64(run), Path: "p1",
			}
			if run%7 == 3 {
				rr.Outcome, rr.Faults = "masked", 2
			}
			if err := w.AppendRun(rr); err != nil {
				t.Fatal(err)
			}
			run++
		}
		ck := Checkpoint{Batch: b, Runs: run, State: []byte(`{"batch":` + string(rune('0'+b)) + `}`)}
		if err := w.AppendCheckpoint(ck); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	reg := telemetry.New()
	path := writeJournal(t, 4, 10, reg)
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Meta != testMeta {
		t.Errorf("meta = %+v, want %+v", rec.Meta, testMeta)
	}
	if len(rec.Runs) != 40 {
		t.Fatalf("recovered %d runs, want 40", len(rec.Runs))
	}
	if rec.Truncated {
		t.Error("clean journal reported truncated")
	}
	for i, r := range rec.Runs {
		if r.Run != i {
			t.Fatalf("run %d has index %d", i, r.Run)
		}
		if i%7 == 3 && (r.Outcome != "masked" || r.Faults != 2) {
			t.Errorf("run %d outcome = %q faults = %d, want masked/2", i, r.Outcome, r.Faults)
		}
		if r.Cycles != 1000+uint64(i) || r.Path != "p1" {
			t.Errorf("run %d fields corrupted: %+v", i, r)
		}
	}
	if rec.Checkpoint == nil || rec.Checkpoint.Batch != 3 || rec.Checkpoint.Runs != 40 {
		t.Errorf("last checkpoint = %+v, want batch 3 runs 40", rec.Checkpoint)
	}
	if len(rec.Checkpoints) != 4 {
		t.Errorf("found %d checkpoint marks, want 4", len(rec.Checkpoints))
	}
	if got := reg.Counter("wal_records_total").Value(); got != 45 { // 1 meta + 40 runs + 4 ckpts
		t.Errorf("wal_records_total = %d, want 45", got)
	}
	if got := reg.Counter("wal_fsyncs_total").Value(); got == 0 {
		t.Error("wal_fsyncs_total = 0")
	}
}

// TestTornTailEveryOffset truncates the journal at every byte length
// and checks recovery never fails and never invents data: the
// recovered prefix is always a checkpoint-consistent prefix of the
// original, and recovery at barrier-aligned offsets is lossless.
func TestTornTailEveryOffset(t *testing.T) {
	path := writeJournal(t, 3, 5, nil)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	barrier := make(map[int64]int) // offset -> runs at that barrier
	for _, m := range ref.Checkpoints {
		barrier[m.End] = m.Runs
	}
	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(dir, "cut.wal")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := Recover(p)
		if cut < headerSize {
			if err == nil {
				t.Fatalf("cut %d: headerless journal recovered", cut)
			}
			if !IsCorrupt(err) {
				t.Fatalf("cut %d: error %v is not a CorruptError", cut, err)
			}
			continue
		}
		if err != nil {
			// Inside the meta record: unrecoverable, must name an offset.
			var ce *CorruptError
			if !IsCorrupt(err) {
				t.Fatalf("cut %d: error %v is not a CorruptError", cut, err)
			}
			_ = ce
			continue
		}
		if want, ok := barrier[int64(cut)]; ok && len(rec.Runs) != want {
			t.Fatalf("cut at barrier %d: recovered %d runs, want %d", cut, len(rec.Runs), want)
		}
		for i, r := range rec.Runs {
			if r.Run != i {
				t.Fatalf("cut %d: run %d has index %d", cut, i, r.Run)
			}
		}
		if rec.ValidSize > int64(cut) {
			t.Fatalf("cut %d: ValidSize %d exceeds file size", cut, rec.ValidSize)
		}
	}
}

// TestCorruptMidFileTruncatesToCheckpoint flips one byte inside the
// second batch's records: recovery must drop everything from the
// corruption on, ending at a checkpoint.
func TestCorruptMidFileTruncatesToCheckpoint(t *testing.T) {
	path := writeJournal(t, 3, 5, nil)
	ref, _ := Recover(path)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte just after the first checkpoint.
	target := ref.Checkpoints[0].End + 10
	full[target] ^= 0xFF
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated {
		t.Fatal("corruption not reported")
	}
	if rec.CorruptOffset < ref.Checkpoints[0].End || rec.CorruptOffset >= int64(len(full)) {
		t.Errorf("corrupt offset %d outside expected range", rec.CorruptOffset)
	}
	if len(rec.Runs) != 5 || rec.Checkpoint == nil || rec.Checkpoint.Runs != 5 {
		t.Errorf("recovered %d runs (ckpt %+v), want truncation to the batch-0 checkpoint", len(rec.Runs), rec.Checkpoint)
	}
	if rec.ValidSize != ref.Checkpoints[0].End {
		t.Errorf("ValidSize = %d, want %d", rec.ValidSize, ref.Checkpoints[0].End)
	}
}

// TestCorruptBeforeAnyCheckpoint drops back to an empty (but
// resumable) journal.
func TestCorruptBeforeAnyCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	w, err := Create(path, testMeta, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.AppendRun(RunRecord{Run: i, Cycles: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, _ := os.ReadFile(path)
	full[len(full)-2] ^= 1 // corrupt the last run record
	os.WriteFile(path, full, 0o644)
	rec, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Truncated || len(rec.Runs) != 0 || rec.Checkpoint != nil {
		t.Errorf("want empty truncated recovery, got %d runs truncated=%v", len(rec.Runs), rec.Truncated)
	}
	// The journal must still be appendable from scratch.
	w2, rec2, err := OpenAppend(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Runs) != 0 {
		t.Fatalf("OpenAppend recovered %d runs, want 0", len(rec2.Runs))
	}
	if err := w2.AppendRun(RunRecord{Run: 0, Cycles: 7}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	rec3, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Runs) != 1 || rec3.Runs[0].Cycles != 7 || rec3.Truncated {
		t.Errorf("post-repair recovery = %+v", rec3)
	}
}

func TestOpenAppendContinues(t *testing.T) {
	path := writeJournal(t, 2, 5, nil)
	w, rec, err := OpenAppend(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Runs) != 10 || w.Runs() != 10 {
		t.Fatalf("recovered %d runs (writer %d), want 10", len(rec.Runs), w.Runs())
	}
	if err := w.AppendRun(RunRecord{Run: 10, Cycles: 99}); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCheckpoint(Checkpoint{Batch: 2, Runs: 11}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rec2, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Runs) != 11 || rec2.Checkpoint.Batch != 2 {
		t.Errorf("continued journal: %d runs, ckpt %+v", len(rec2.Runs), rec2.Checkpoint)
	}
}

func TestAppendOrderEnforced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "o.wal")
	w, err := Create(path, testMeta, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.AppendRun(RunRecord{Run: 1}); err == nil {
		t.Error("out-of-order run record accepted")
	}
	if err := w.AppendCheckpoint(Checkpoint{Batch: 0, Runs: 5}); err == nil {
		t.Error("inconsistent checkpoint accepted")
	}
}

func TestMetaValidate(t *testing.T) {
	if err := testMeta.Validate(testMeta); err != nil {
		t.Errorf("identical meta rejected: %v", err)
	}
	other := testMeta
	other.BaseSeed++
	if err := testMeta.Validate(other); err == nil {
		t.Error("mismatched meta accepted")
	}
}

func TestNotAJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.csv")
	if err := os.WriteFile(path, []byte("run,cycles\n0,100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Recover(path)
	if !IsCorrupt(err) {
		t.Fatalf("recovering a CSV returned %v, want CorruptError", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("offset 0")) {
		t.Errorf("error %q does not name the bad offset", err)
	}
}

func TestRunRecordCodecRoundTrip(t *testing.T) {
	cases := []RunRecord{
		{},
		{Run: 0, Seed: ^uint64(0), Cycles: 1 << 62, Instructions: 3, Faults: 4096, Path: "loop-a", Outcome: "hung"},
		{Run: 1 << 30, Path: string(make([]byte, 0xFFFF))},
	}
	for i, rr := range cases {
		payload, err := encodeRun(nil, rr)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := decodeRun(payload)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != rr {
			t.Errorf("case %d: round trip %+v != %+v", i, got, rr)
		}
	}
	if _, err := encodeRun(nil, RunRecord{Run: -1}); err == nil {
		t.Error("negative run index encoded")
	}
}
