package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// CorruptError reports unrecoverable journal corruption: a damaged
// header or meta record, from which no campaign identity can be
// established. Offset names the first bad byte so operators can
// inspect the file.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: %s: unrecoverable corruption at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// IsCorrupt reports whether err is an unrecoverable-corruption error.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// CheckpointMark locates one valid checkpoint inside the journal —
// tooling (and the crash-at-every-barrier tests) use the End offsets
// as the exact byte positions a barrier-aligned crash would leave.
type CheckpointMark struct {
	Batch int
	Runs  int
	End   int64 // file offset one past the checkpoint record
}

// Recovered is the usable content of a journal: the longest valid
// prefix of records, already validated for continuity.
type Recovered struct {
	Meta Meta
	// Runs is the completed measurement prefix, in run order with no
	// gaps. It extends past the last checkpoint when the journal ends
	// with cleanly flushed run records (a cancellation flush); after
	// detected corruption it is truncated to the last checkpoint.
	Runs []RunRecord
	// Checkpoint is the last valid checkpoint, nil when none was
	// written before the crash.
	Checkpoint *Checkpoint
	// Checkpoints marks every valid checkpoint in order.
	Checkpoints []CheckpointMark
	// ValidSize is the byte length of the usable prefix; OpenAppend
	// truncates the file here before resuming.
	ValidSize int64
	// Truncated reports that corruption (torn tail, flipped bits, or
	// out-of-order records) was found and everything from
	// CorruptOffset on was discarded.
	Truncated     bool
	CorruptOffset int64
}

// Recover scans the journal at path and returns its longest valid
// prefix. Torn tails and corrupted records do not fail recovery: the
// scan stops at the first invalid byte and the result is truncated to
// the last valid checkpoint (run records after that checkpoint are
// kept only when the tail is clean, i.e. the file simply ended after
// fully written run records). Only a damaged header or meta record —
// which leaves no campaign to resume — returns an error (a
// *CorruptError naming the bad offset).
func Recover(path string) (*Recovered, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open journal: %w", err)
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<16)
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, &CorruptError{Path: path, Offset: 0, Reason: "short or missing header"}
	}
	if string(hdr[:8]) != magic {
		return nil, &CorruptError{Path: path, Offset: 0, Reason: "bad magic (not a campaign journal)"}
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != version {
		return nil, &CorruptError{Path: path, Offset: 8, Reason: fmt.Sprintf("unsupported journal version %d", v)}
	}

	rec := &Recovered{ValidSize: headerSize}
	off := int64(headerSize)
	sawMeta := false
	metaEnd := int64(headerSize)
	corrupt := func(reason string) (*Recovered, error) {
		if !sawMeta {
			return nil, &CorruptError{Path: path, Offset: off, Reason: reason}
		}
		rec.Truncated = true
		rec.CorruptOffset = off
		// Trust nothing past the last checkpoint: truncate the run
		// prefix (and the valid size) back to it.
		if rec.Checkpoint != nil {
			rec.Runs = rec.Runs[:rec.Checkpoint.Runs]
			rec.ValidSize = rec.Checkpoints[len(rec.Checkpoints)-1].End
		} else {
			rec.Runs = nil
			rec.ValidSize = metaEnd
		}
		return rec, nil
	}

	for {
		frame := make([]byte, 5)
		if _, err := io.ReadFull(br, frame); err != nil {
			if err == io.EOF {
				return rec, nil // clean end of journal
			}
			return corrupt("torn record header")
		}
		kind := frame[0]
		plen := binary.LittleEndian.Uint32(frame[1:])
		if plen > maxPayload {
			return corrupt(fmt.Sprintf("record length %d exceeds limit", plen))
		}
		body := make([]byte, int(plen)+4)
		if _, err := io.ReadFull(br, body); err != nil {
			return corrupt("torn record payload")
		}
		payload := body[:plen]
		wantCRC := binary.LittleEndian.Uint32(body[plen:])
		crc := crc32.ChecksumIEEE(frame)
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != wantCRC {
			return corrupt("record checksum mismatch")
		}
		recEnd := off + int64(frameSize) + int64(plen)

		switch kind {
		case kindMeta:
			if sawMeta {
				return corrupt("duplicate meta record")
			}
			m, err := decodeMeta(payload)
			if err != nil {
				return corrupt(err.Error())
			}
			rec.Meta = m
			sawMeta = true
			metaEnd = recEnd
		case kindRun:
			if !sawMeta {
				return corrupt("run record before meta")
			}
			r, err := decodeRun(payload)
			if err != nil {
				return corrupt(err.Error())
			}
			if r.Run != len(rec.Runs) {
				return corrupt(fmt.Sprintf("run records out of order: got run %d, want %d", r.Run, len(rec.Runs)))
			}
			rec.Runs = append(rec.Runs, r)
		case kindCheckpoint:
			if !sawMeta {
				return corrupt("checkpoint record before meta")
			}
			c, err := decodeCheckpoint(payload)
			if err != nil {
				return corrupt(err.Error())
			}
			if c.Runs != len(rec.Runs) {
				return corrupt(fmt.Sprintf("checkpoint run count %d disagrees with %d journaled runs", c.Runs, len(rec.Runs)))
			}
			rec.Checkpoint = &c
			rec.Checkpoints = append(rec.Checkpoints, CheckpointMark{Batch: c.Batch, Runs: c.Runs, End: recEnd})
		default:
			return corrupt(fmt.Sprintf("unknown record kind %d", kind))
		}
		off = recEnd
		rec.ValidSize = off
	}
}
