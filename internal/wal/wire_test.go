package wal

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := []RunRecord{
		{Run: 0, Seed: 7, Cycles: 100, Instructions: 40, Path: "p0", Outcome: ""},
		{Run: 1, Seed: 9, Cycles: 200, Instructions: 80, Path: "", Outcome: "hung"},
	}
	for _, r := range recs {
		payload, err := EncodeRunRecord(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(&buf, KindRun, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := WriteFrame(&buf, 0x11, []byte("lease")); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	for i := range recs {
		kind, payload, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if kind != KindRun {
			t.Fatalf("frame %d kind %d", i, kind)
		}
		got, err := DecodeRunRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if got != recs[i] {
			t.Fatalf("frame %d: got %+v want %+v", i, got, recs[i])
		}
	}
	kind, payload, err := fr.Next()
	if err != nil || kind != 0x11 || string(payload) != "lease" {
		t.Fatalf("control frame: kind %d payload %q err %v", kind, payload, err)
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at clean boundary, got %v", err)
	}
}

func TestFrameReaderRejectsCorruption(t *testing.T) {
	frame := AppendFrame(nil, KindRun, []byte("payload"))
	flipped := append([]byte(nil), frame...)
	flipped[6] ^= 0x40 // inside the payload
	if _, _, err := NewFrameReader(bytes.NewReader(flipped)).Next(); err == nil ||
		!strings.Contains(err.Error(), "CRC") {
		t.Fatalf("want CRC error, got %v", err)
	}
	// A frame cut mid-payload is an unexpected EOF, never a clean one.
	if _, _, err := NewFrameReader(bytes.NewReader(frame[:len(frame)-3])).Next(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF on torn frame, got %v", err)
	}
}

func TestMetaValidateMismatch(t *testing.T) {
	base := Meta{Platform: "RAND", Workload: "tvca", BaseSeed: 42, MaxRuns: 100, BatchSize: 25}
	if err := base.Validate(base); err != nil {
		t.Fatalf("identical meta: %v", err)
	}
	cases := []struct {
		field  string
		mutate func(Meta) Meta
	}{
		{"Platform", func(m Meta) Meta { m.Platform = "DET"; return m }},
		{"Workload", func(m Meta) Meta { m.Workload = "other"; return m }},
		{"BaseSeed", func(m Meta) Meta { m.BaseSeed++; return m }},
		{"MaxRuns", func(m Meta) Meta { m.MaxRuns++; return m }},
		{"BatchSize", func(m Meta) Meta { m.BatchSize++; return m }},
	}
	for _, tc := range cases {
		err := base.Validate(tc.mutate(base))
		if err == nil {
			t.Fatalf("%s mismatch not detected", tc.field)
		}
		if !errors.Is(err, ErrJournalMismatch) {
			t.Fatalf("%s: error %v does not match ErrJournalMismatch", tc.field, err)
		}
		var me *MismatchError
		if !errors.As(err, &me) || me.Field != tc.field {
			t.Fatalf("%s: error %v does not name the field", tc.field, err)
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Fatalf("%s: message %q does not name the field", tc.field, err)
		}
	}
}
